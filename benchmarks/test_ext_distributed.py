"""Extension: distributed-memory scaling (McLendon lineage, ref [15]).

Strong-scaling study of BSP ECL-SCC vs distributed FB-Trim over 1..32
virtual ranks on a deep-DAG mesh graph.  Reported per rank count:
supersteps (synchronization points), total messages, and alpha-beta model
time.  The structural claim: FB's superstep count tracks the DAG depth /
BFS levels and is insensitive to rank count, while ECL's tracks its
propagation rounds — an order of magnitude fewer on deep meshes — at the
price of wider per-round halo exchanges.
"""

from repro.bench import render_table
from repro.distributed import block_partition, distributed_ecl_scc, distributed_fbtrim
from repro.mesh import sweep_graphs
from repro.mesh.suite import large_mesh_suite

from conftest import save_and_print

RANKS = (1, 4, 16, 32)


def test_distributed_scaling(benchmark, results_dir):
    grp = large_mesh_suite(names=["toroid-hex"], num_ordinates=1, scale=0.12)[0]
    g = grp.graphs[0]
    rows = []

    def run():
        for r in RANKS:
            p = block_partition(g, r)
            ecl = distributed_ecl_scc(g, p)
            fb = distributed_fbtrim(g, p)
            rows.append(
                [
                    r,
                    round(p.edge_cut_fraction(), 3),
                    ecl.supersteps,
                    fb.supersteps,
                    ecl.cluster.total_messages,
                    fb.cluster.total_messages,
                    round(ecl.estimated_seconds * 1e3, 3),
                    round(fb.estimated_seconds * 1e3, 3),
                ]
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["ranks", "edge cut", "ECL steps", "FB steps", "ECL msgs",
         "FB msgs", "ECL ms", "FB ms"],
        rows,
        title=(
            f"Extension: distributed scaling on {g.name}"
            f" (|V|={g.num_vertices}, |E|={g.num_edges})"
        ),
    )
    save_and_print(results_dir, "ext_distributed", table)
    by_ranks = {r[0]: r for r in rows}
    # single rank: no communication at all
    assert by_ranks[1][4] == 0 and by_ranks[1][5] == 0
    # the synchronization-count gap on a deep mesh: >= 10x at every width
    for r in RANKS[1:]:
        assert by_ranks[r][2] * 10 < by_ranks[r][3], r
    # messages grow with rank count for ECL (wider halo)
    assert by_ranks[32][4] > by_ranks[4][4]
