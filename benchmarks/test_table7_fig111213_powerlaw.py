"""Table 7 + Figures 11-13: runtimes/throughput on the power-law graphs.

Paper claims checked (§5.1.3): on this input class the three codes are
*competitive* — GPU-SCC and iSpan are optimized for power-law graphs, so
ECL-SCC's advantage largely disappears (paper geomeans: 1.18x over
GPU-SCC on the Titan V, 2.07x on the A100, 1.12-3.45x over iSpan).  The
assertion is deliberately two-sided: ECL-SCC must NOT dominate here the
way it does on meshes.
"""

from repro.bench import run_algorithm, runtime_table, throughput_figures
from repro.device import A100

from conftest import save_and_print


def test_table7_and_figs111213(benchmark, results_dir, powerlaw_graphs):
    groups = [(g.name, [g]) for g, _ in powerlaw_graphs]
    res = benchmark.pedantic(
        lambda: runtime_table(groups, table_name="table7"), rounds=1, iterations=1
    )
    fig = throughput_figures(res, figure_name="figs11-13")
    save_and_print(results_dir, "table7_powerlaw_runtimes", res.rendered, res)
    save_and_print(results_dir, "fig11to13_powerlaw_throughput", fig.rendered, fig)

    s = fig.series
    for dev in ("Titan V", "A100"):
        ratio = s[f"ECL-SCC {dev}"]["geomean"] / s[f"GPU-SCC {dev}"]["geomean"]
        # competitive, not dominant (paper: 1.18x / 2.07x).  At reduced
        # scale GPU-SCC's depth-dependent rounds shrink faster than
        # ECL-SCC's log-depth rounds, so the band is wider downward here;
        # REPRO_FULL=1 moves the ratio toward the paper's (EXPERIMENTS.md).
        assert 0.2 < ratio < 8.0, (dev, ratio)
    # GPU-SCC wins at least one power-law input (paper: 4 of 10 on Titan V)
    ecl, li = s["ECL-SCC Titan V"], s["GPU-SCC Titan V"]
    assert any(li[k] > ecl[k] for k in ecl if k != "geomean")
    # iSpan is far closer here than on meshes
    assert s["ECL-SCC A100"]["geomean"] < 20 * s["iSpan Xeon"]["geomean"]


def test_ecl_kernel_powerlaw(benchmark, powerlaw_graphs):
    g = next(g for g, _ in powerlaw_graphs if g.name == "flickr")
    benchmark(lambda: run_algorithm(g, "ecl-scc", A100))
