"""Extension: atomic vs atomic-free Phase 2 (paper §3.4).

"Phase 2 can easily be implemented with two atomic max operations.
However ... we opted for a faster atomic-free implementation."  We
implement both and measure the gap the authors describe: the atomic
variant issues two atomic RMWs per edge per round, which serialize on
the memory subsystem, while the shipped kernel's monotonic unsynchronized
writes cost plain stores.
"""

from repro.bench import render_table
from repro.core import ecl_scc
from repro.core.options import EclOptions
from repro.device import A100
from repro.graph.suite import powerlaw_suite
from repro.mesh.suite import small_mesh_suite

from conftest import save_and_print

ATOMIC = EclOptions(atomic_phase2=True)


def _workloads():
    meshes = small_mesh_suite(names=["toroid-hex", "torch-hex"], num_ordinates=1)
    power = powerlaw_suite(names=["flickr", "soc-LiveJournal1"], scale=1 / 32)
    out = [(grp.name, grp.graphs[0]) for grp in meshes]
    out += [(g.name, g) for g, _ in power]
    return out


def test_atomic_vs_atomic_free(benchmark, results_dir):
    rows = []

    def run():
        for name, g in _workloads():
            free = ecl_scc(g, device=A100)
            atom = ecl_scc(g, options=ATOMIC, device=A100)
            rows.append(
                [
                    name,
                    round(free.estimated_seconds * 1e3, 4),
                    round(atom.estimated_seconds * 1e3, 4),
                    round(atom.estimated_seconds / free.estimated_seconds, 2),
                    atom.device.counters.atomics,
                ]
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["graph", "atomic-free ms", "atomic ms", "slowdown", "atomics issued"],
        rows,
        title="Extension: two-atomic-max Phase 2 vs the shipped atomic-free kernel (A100)",
    )
    save_and_print(results_dir, "ext_atomic", table)
    # the paper's stated reason for rejecting the atomic variant
    for r in rows:
        assert r[2] >= r[1], r       # atomic never faster
        assert r[4] > 0              # and it really issued atomics
    assert any(r[3] > 1.2 for r in rows)  # measurably slower somewhere
