"""Microbenchmarks of the building-block kernels (Python wall time).

Not a paper table — these track the implementation's own hot paths so
regressions in the NumPy formulations (reduceat segment-max, worklist
compaction, CSR construction, Tarjan) are visible in CI.
"""

import numpy as np
import pytest

from repro.baselines import tarjan_scc
from repro.core import ALL_ON, DoubleBufferWorklist, EdgeGrouping, Signatures, phase3_filter
from repro.device import A100, VirtualDevice
from repro.graph import CSRGraph, rmat_graph
from repro.mesh import beam_hex, build_sweep_graph, ordinates_3d


@pytest.fixture(scope="module")
def medium_graph():
    return rmat_graph(14, 8, seed=7)


def test_csr_construction(benchmark, medium_graph):
    src, dst = medium_graph.edges()
    benchmark(lambda: CSRGraph.from_edges(src, dst, medium_graph.num_vertices))


def test_transpose(benchmark, medium_graph):
    benchmark(lambda: medium_graph.reverse_copy())


def test_edge_grouping_build(benchmark, medium_graph):
    src, dst = medium_graph.edges()
    benchmark(lambda: EdgeGrouping.build(src, dst))


def test_relax_round(benchmark, medium_graph):
    src, dst = medium_graph.edges()
    grouping = EdgeGrouping.build(src, dst)
    sigs = Signatures.identity(medium_graph.num_vertices)

    def round_():
        grouping.relax(sigs, compress=True)

    benchmark(round_)


def test_phase3_compaction(benchmark, medium_graph):
    src, dst = medium_graph.edges()
    sigs = Signatures.identity(medium_graph.num_vertices)

    def run():
        wl = DoubleBufferWorklist(src.copy(), dst.copy())
        phase3_filter(wl, sigs, VirtualDevice(A100), ALL_ON)

    benchmark(run)


def test_tarjan_oracle(benchmark, medium_graph):
    benchmark(lambda: tarjan_scc(medium_graph))


def test_sweep_graph_construction(benchmark):
    mesh = beam_hex(4)
    omega = ordinates_3d(1)[0]
    benchmark(lambda: build_sweep_graph(mesh, omega))
