"""Extension: the available-parallelism argument of §1, quantified.

The paper motivates ECL-SCC by the low parallelism of BFS/trim-based
codes on mesh graphs ("initially low parallelism of FB and FB-Trim can
be an issue on GPUs that require 100,000s of threads").  This experiment
measures, per input class:

* FB's BFS frontier width per level (from the max-degree pivot);
* Trim-1's best-case peel width per round (condensation level sizes);
* ECL-SCC's constant full-worklist width (|E| every round).

and summarizes each profile's work-weighted parallelism.
"""

import numpy as np

from repro.analysis import parallelism_summary
from repro.analysis.profiles import bfs_frontier_profile, peel_profile
from repro.baselines import tarjan_scc
from repro.bench import render_table
from repro.core import EclOptions, ecl_scc
from repro.device import A100, VirtualDevice
from repro.graph.suite import powerlaw_suite
from repro.mesh.suite import small_mesh_suite

from conftest import save_and_print


def measured_ecl_profile(g) -> np.ndarray:
    """Per-round active-edge widths from an instrumented sync-engine run."""
    dev = VirtualDevice(A100, profile=True)
    ecl_scc(g, options=EclOptions(async_phase2=False), device=dev)
    widths = np.asarray([e for e, _ in dev.launch_history if e > 0])
    return widths


def _inputs():
    mesh = small_mesh_suite(names=["torch-tet"], num_ordinates=1)[0].graphs[0]
    pl, _ = powerlaw_suite(names=["soc-LiveJournal1"], scale=1 / 32)[0]
    return [("torch-tet (mesh)", mesh), ("soc-LiveJournal1 (power-law)", pl)]


def test_parallelism_profiles(benchmark, results_dir):
    rows = []
    details = {}

    def run():
        for name, g in _inputs():
            labels = tarjan_scc(g)
            deg = g.out_degree() + g.in_degree()
            pivot = int(np.argmax(deg))
            bfs = bfs_frontier_profile(g, pivot)
            peel = peel_profile(g, labels)
            details[name] = (bfs, peel)
            for kind, prof in (("FB frontier", bfs), ("Trim peel", peel)):
                s = parallelism_summary(prof, saturation=g.num_edges // 10)
                rows.append(
                    [name, kind, s["steps"], int(s["max_width"]),
                     round(s["weighted_parallelism"], 1),
                     round(s["saturated_fraction"], 3)]
                )
            ecl = measured_ecl_profile(g)
            s = parallelism_summary(ecl, saturation=g.num_edges // 10)
            rows.append(
                [name, "ECL-SCC round (measured)", s["steps"],
                 int(s["max_width"]), round(s["weighted_parallelism"], 1),
                 round(s["saturated_fraction"], 3)]
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["input", "phase", "steps", "max width", "weighted width", "saturated frac"],
        rows,
        title="Extension: available parallelism per step (paper §1 motivation)",
    )
    save_and_print(results_dir, "ext_parallelism", table)

    mesh_bfs, mesh_peel = details["torch-tet (mesh)"]
    # ECL keeps nearly the whole worklist active: its measured weighted
    # width dwarfs FB's on the mesh
    mesh_rows = {r[1]: r for r in rows if r[0] == "torch-tet (mesh)"}
    assert (
        mesh_rows["ECL-SCC round (measured)"][4]
        > 20 * mesh_rows["FB frontier"][4]
    )
    pl_bfs, _ = details["soc-LiveJournal1 (power-law)"]
    g_mesh = _inputs()[0][1]
    # the mesh's BFS/trim profiles are hundreds of steps of thin fronts
    assert mesh_bfs.size > 50 and mesh_peel.size > 50
    assert mesh_bfs.max() < g_mesh.num_edges / 10
    # the power-law BFS saturates in a handful of levels
    assert pl_bfs.size < 30
    assert pl_bfs.max() > 0.2 * _inputs()[1][1].num_edges
