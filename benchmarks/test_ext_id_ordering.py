"""Extension: sensitivity of ECL-SCC to the vertex-ID distribution.

The paper's expected-complexity argument (§3) assumes "the vertex IDs are
randomly distributed", so outer iterations halve the DAG depth and path
compression traverses cycles in O(log c) rounds.  Mesh generators emit
*structured* numberings, the adversarial case for max-ID propagation
(signatures crawl along monotone ID runs).  This experiment measures the
gap and shows that a random relabelling — an O(V) preprocessing pass —
recovers the expected behaviour, a practical recipe the paper implies but
never states.
"""

import numpy as np

from repro.bench import render_table
from repro.core import ecl_scc
from repro.device import A100
from repro.graph import cycle_graph, permute_random, relabel
from repro.mesh.suite import large_mesh_suite

from conftest import save_and_print


def _workloads():
    out = [("cycle-128k", cycle_graph(2**17))]
    klein = large_mesh_suite(names=["klein-bottle"], num_ordinates=1, scale=0.08)
    out.append(("klein-bottle", klein[0].graphs[0]))
    return out


def test_id_ordering_sensitivity(benchmark, results_dir):
    rows = []

    def run():
        for name, g in _workloads():
            seq = ecl_scc(g, device=A100)
            gp, _ = permute_random(g, seed=7)
            rnd = ecl_scc(gp, device=A100)
            rev = ecl_scc(
                relabel(g, np.arange(g.num_vertices)[::-1].copy()), device=A100
            )
            rows.append(
                [
                    name,
                    seq.propagation_rounds,
                    rev.propagation_rounds,
                    rnd.propagation_rounds,
                    round(seq.estimated_seconds * 1e3, 3),
                    round(rnd.estimated_seconds * 1e3, 3),
                    round(seq.estimated_seconds / rnd.estimated_seconds, 1),
                ]
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["graph", "rounds (seq IDs)", "rounds (reversed)", "rounds (random)",
         "ms (seq)", "ms (random)", "speedup"],
        rows,
        title="Extension: ECL-SCC vs vertex-ID distribution (A100 model)",
    )
    save_and_print(results_dir, "ext_id_ordering", table)
    for r in rows:
        # random IDs need far fewer propagation rounds than sequential
        assert r[3] < r[1] / 3, r
        # and the model runtime improves correspondingly
        assert r[6] >= 2.0, r
