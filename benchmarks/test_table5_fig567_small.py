"""Table 5 + Figures 5-7: runtimes/throughput on the small mesh graphs.

Six columns: ECL-SCC and GPU-SCC on the Titan V / A100 models, iSpan on
the Ryzen / Xeon models.  The paper's qualitative claims checked here:

* Figs 5-6: ECL-SCC outperforms GPU-SCC on (nearly) all mesh groups —
  geomean 6.2x (Titan V) / 6.5x (A100) in the paper; the factor is larger
  at reduced scale because small inputs are launch-bound (EXPERIMENTS.md).
* Fig 7: ECL-SCC on either GPU model is orders of magnitude faster than
  iSpan on either CPU model (paper: ~4400x geomean).
"""

from repro.bench import geometric_mean, run_algorithm, runtime_table, throughput_figures
from repro.device import A100

from conftest import save_and_print


def test_table5_and_figs567(benchmark, results_dir, small_meshes):
    groups = [(g.name, g.graphs) for g in small_meshes]
    res = benchmark.pedantic(
        lambda: runtime_table(groups, table_name="table5"), rounds=1, iterations=1
    )
    fig = throughput_figures(res, figure_name="figs5-7")
    save_and_print(results_dir, "table5_small_runtimes", res.rendered, res)
    save_and_print(results_dir, "fig5to7_small_throughput", fig.rendered, fig)

    s = fig.series
    # Fig 5/6: ECL-SCC beats GPU-SCC on every small mesh group and in geomean
    for dev in ("Titan V", "A100"):
        ecl = s[f"ECL-SCC {dev}"]
        li = s[f"GPU-SCC {dev}"]
        assert ecl["geomean"] > 2.0 * li["geomean"], dev
        wins = sum(ecl[k] > li[k] for k in ecl if k != "geomean")
        assert wins >= len(ecl) - 2  # paper: all but beam-hex
    # Fig 7: ECL-SCC (GPU) vs iSpan (CPU): orders of magnitude
    assert s["ECL-SCC A100"]["geomean"] > 30 * s["iSpan Xeon"]["geomean"]
    assert s["ECL-SCC Titan V"]["geomean"] > 30 * s["iSpan Ryzen"]["geomean"]
    # A100 >= Titan V for ECL-SCC
    assert s["ECL-SCC A100"]["geomean"] >= s["ECL-SCC Titan V"]["geomean"]


def test_ecl_kernel_small_mesh(benchmark, small_meshes):
    """pytest-benchmark target: one full ECL-SCC run (wall time)."""
    g = next(grp for grp in small_meshes if grp.name == "toroid-hex").graphs[0]
    benchmark(lambda: run_algorithm(g, "ecl-scc", A100))
