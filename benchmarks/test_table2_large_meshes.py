"""Table 2: properties of the large mesh graphs (klein-bottle,
mobius-strip, torch, toroid, twist-hex) at the active scale."""

from repro.bench import mesh_table_properties

from conftest import save_and_print


def test_table2_large_mesh_properties(benchmark, results_dir, large_meshes):
    res = benchmark.pedantic(
        lambda: mesh_table_properties("large"), rounds=1, iterations=1
    )
    save_and_print(results_dir, "table2_large_meshes", res.rendered)
    rows = {r["graph"]: r for r in res.rows}
    # Table 2's class structure:
    # twist-hex: one SCC spanning the mesh, DAG depth 1, every ordinate
    assert rows["twist-hex"]["min_sccs"] == rows["twist-hex"]["max_sccs"] == 1
    assert rows["twist-hex"]["min_largest"] == rows["twist-hex"]["vertices"]
    assert rows["twist-hex"]["max_depth"] == 1
    # klein-bottle: giant SCC ~ |V| for all ordinates, shallow DAG
    assert rows["klein-bottle"]["min_largest"] > 0.9 * rows["klein-bottle"]["vertices"]
    assert rows["klein-bottle"]["max_depth"] <= 4
    # mobius-strip: wildly variable across ordinates (1 .. |V| SCCs)
    assert rows["mobius-strip"]["min_sccs"] < 10
    assert rows["mobius-strip"]["max_sccs"] == rows["mobius-strip"]["vertices"]
    # torch/toroid: many trivial SCCs plus small clusters
    assert rows["torch-tet"]["max_largest"] <= 64
    assert rows["toroid-hex"]["min_size1"] > 0.9 * rows["toroid-hex"]["vertices"]
