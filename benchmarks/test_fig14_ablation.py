"""Figure 14: performance impact of disabling each ECL-SCC optimization.

Six configurations (all on; one of async / SCC-edge-removal / path
compression / persistent threads disabled; all off) over the three input
classes on the A100 model, exactly like the paper's figure.

Shape assertions (paper §5.2):
* async helps on all three input classes;
* removing completed-SCC edges helps mainly on power-law inputs;
* disabling all four optimizations at least halves throughput.

The persistent-thread effect needs inputs whose worklists exceed the
device's resident capacity (A100: ~221k edges at one edge per thread);
the suites here are sized accordingly.
"""

from repro.bench import ablation_figure
from repro.graph.suite import powerlaw_suite
from repro.mesh.suite import large_mesh_suite, small_mesh_suite

from conftest import save_and_print


def _classes():
    small = small_mesh_suite(names=["toroid-hex", "torch-hex"], num_ordinates=2)
    large = large_mesh_suite(names=["torch-hex", "toroid-wedge"], num_ordinates=2, scale=0.35)
    power = powerlaw_suite(names=["flickr", "soc-LiveJournal1", "web-Google"], scale=1 / 16)
    return [
        ("small meshes", [g for grp in small for g in grp.graphs]),
        ("large meshes", [g for grp in large for g in grp.graphs]),
        ("power-law", [g for g, _ in power]),
    ]


def test_fig14_optimization_ablation(benchmark, results_dir):
    classes = _classes()
    res = benchmark.pedantic(
        lambda: ablation_figure(classes), rounds=1, iterations=1
    )
    save_and_print(results_dir, "fig14_ablation", res.rendered, res)
    s = res.series
    for cls in ("small meshes", "large meshes", "power-law"):
        base = s["all on"][cls]
        # async helps everywhere (its removal hurts)
        assert s["no async"][cls] < base, cls
        # disabling everything costs at least 2x (paper: >2x on all classes)
        assert s["all off"][cls] < 0.55 * base, cls
    # SCC-edge removal matters more on power-law than on meshes
    drop_pl = s["no SCC-edge removal"]["power-law"] / s["all on"]["power-law"]
    drop_sm = s["no SCC-edge removal"]["small meshes"] / s["all on"]["small meshes"]
    assert drop_pl < drop_sm + 0.05
