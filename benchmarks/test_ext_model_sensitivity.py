"""Extension: sensitivity of the conclusions to the device model.

The virtual-device constants (launch latency, memory bandwidth) are the
reproduction's main modelling assumption.  This experiment reruns *no*
algorithms: it takes the operation counters from one pass over a mesh
and a power-law input and re-prices them under a grid of hypothetical
GPUs — launch latency from 1 to 20 us and bandwidth from 0.5x to 4x the
A100 — to show that the paper's qualitative conclusions hold across the
whole plausible hardware range:

* ECL-SCC > GPU-SCC on the mesh for every (latency, bandwidth) cell;
* the mesh advantage *grows* with launch latency (GPU-SCC is
  launch-bound there) and shrinks with bandwidth.
"""

from dataclasses import replace

import numpy as np

from repro.bench import render_table, run_algorithm
from repro.device import A100, CostModel, KernelCounters
from repro.device.costmodel import working_set_of_graph
from repro.graph.suite import powerlaw_suite
from repro.mesh.suite import small_mesh_suite

from conftest import save_and_print

LATENCIES_US = (1.0, 5.0, 20.0)
BANDWIDTH_X = (0.5, 1.0, 4.0)


def _counters_from(run) -> KernelCounters:
    c = KernelCounters()
    for key, value in run.counters.items():
        if key != "notes":
            setattr(c, key, value)
    return c


def test_model_sensitivity(benchmark, results_dir):
    mesh_g = small_mesh_suite(names=["toroid-hex"], num_ordinates=1)[0].graphs[0]
    pl_g, _ = powerlaw_suite(names=["soc-LiveJournal1"], scale=1 / 64)[0]
    rows = []

    def run():
        runs = {}
        for g, tag in ((mesh_g, "mesh"), (pl_g, "power-law")):
            for algo in ("ecl-scc", "gpu-scc"):
                runs[(tag, algo)] = run_algorithm(g, algo, A100)
        for lat in LATENCIES_US:
            for bwx in BANDWIDTH_X:
                spec = replace(A100, launch_us=lat, mem_bw_gbs=A100.mem_bw_gbs * bwx)
                model = CostModel(spec)
                cells = {}
                for (tag, algo), r in runs.items():
                    g = mesh_g if tag == "mesh" else pl_g
                    ws = working_set_of_graph(g.num_vertices, g.num_edges)
                    cells[(tag, algo)] = model.estimate(
                        _counters_from(r), working_set_bytes=ws
                    ).total
                rows.append(
                    [
                        lat, bwx,
                        round(cells[("mesh", "gpu-scc")] / cells[("mesh", "ecl-scc")], 1),
                        round(
                            cells[("power-law", "gpu-scc")]
                            / cells[("power-law", "ecl-scc")],
                            2,
                        ),
                    ]
                )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["launch us", "bandwidth x", "mesh speedup (ECL/GPU-SCC)",
         "power-law speedup"],
        rows,
        title="Extension: ECL-SCC speedup vs hypothetical GPU parameters",
    )
    save_and_print(results_dir, "ext_model_sensitivity", table)

    by = {(r[0], r[1]): (r[2], r[3]) for r in rows}
    # ECL-SCC wins the mesh in every cell of the grid — the paper's core
    # claim is robust to the modelling constants
    assert all(v[0] > 1.0 for v in by.values())
    # the mesh advantage grows with launch latency (launch-bound GPU-SCC)
    assert by[(20.0, 1.0)][0] > by[(1.0, 1.0)][0]
    # the power-law contest contains a genuine crossover within the grid:
    # bandwidth-starved GPUs favour GPU-SCC, bandwidth-rich ones ECL-SCC
    pl = [v[1] for v in by.values()]
    assert min(pl) < 1.0 < max(pl)
    # and bandwidth monotonically helps ECL-SCC there
    assert by[(5.0, 4.0)][1] > by[(5.0, 1.0)][1] > by[(5.0, 0.5)][1]