"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index), prints the rendered block, and saves it
under ``results/``.  Suites are session-scoped so the expensive graph
construction happens once.

Scale: defaults are laptop-sized (see repro.mesh.suite / repro.graph.suite
docstrings); set ``REPRO_FULL=1`` for paper-scale inputs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.graph.suite import powerlaw_suite
from repro.mesh.suite import large_mesh_suite, small_mesh_suite

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_print(results_dir: Path, name: str, rendered: str, result=None) -> None:
    print("\n" + rendered)
    (results_dir / f"{name}.txt").write_text(rendered + "\n")
    if result is not None:
        from repro.bench import export_json

        export_json(result, results_dir / f"{name}.json")


@pytest.fixture(scope="session")
def small_meshes():
    return small_mesh_suite()


@pytest.fixture(scope="session")
def large_meshes():
    return large_mesh_suite()


@pytest.fixture(scope="session")
def powerlaw_graphs():
    return powerlaw_suite()
