"""Table 6 + Figures 8-10: runtimes/throughput on the large mesh graphs.

Paper claims checked: ECL-SCC outperforms GPU-SCC on all large mesh
groups on the A100 (Fig 9; geomean 8.4x) and on all but twist-hex on the
Titan V (Fig 8); iSpan is competitive only on the two groups dominated by
one giant SCC (klein-bottle, twist-hex) and collapses on the rest
(Fig 10).
"""

from repro.bench import run_algorithm, runtime_table, throughput_figures
from repro.device import A100

from conftest import save_and_print


def test_table6_and_figs8910(benchmark, results_dir, large_meshes):
    groups = [(g.name, g.graphs) for g in large_meshes]
    res = benchmark.pedantic(
        lambda: runtime_table(groups, table_name="table6"), rounds=1, iterations=1
    )
    fig = throughput_figures(res, figure_name="figs8-10")
    save_and_print(results_dir, "table6_large_runtimes", res.rendered, res)
    save_and_print(results_dir, "fig8to10_large_throughput", fig.rendered, fig)

    s = fig.series
    # Fig 9: on the A100 model, ECL-SCC wins every group
    ecl, li = s["ECL-SCC A100"], s["GPU-SCC A100"]
    for k in ecl:
        if k != "geomean":
            assert ecl[k] > li[k], k
    assert ecl["geomean"] > 2.0 * li["geomean"]
    # Fig 10: iSpan performs best on the giant-SCC groups and collapses
    # on the small-SCC deep-DAG groups (torch/toroid); mobius-strip sits
    # between the classes (half its ordinates are giant-SCC here)
    iy = s["iSpan Xeon"]
    giant = {"klein-bottle", "twist-hex"}
    deep = {"torch-hex", "torch-tet", "toroid-hex", "toroid-wedge"}
    assert min(iy[k] for k in giant) > 3 * max(iy[k] for k in deep)
    # and ECL still dominates iSpan overall
    assert ecl["geomean"] > 20 * iy["geomean"]


def test_ecl_kernel_large_mesh(benchmark, large_meshes):
    g = next(grp for grp in large_meshes if grp.name == "torch-hex").graphs[0]
    benchmark(lambda: run_algorithm(g, "ecl-scc", A100))
