"""Table 3: properties of the ten power-law graphs (synthetic stand-ins).

The planted structure must reproduce each SuiteSparse graph's published
class: giant-SCC fraction, trivial-SCC count, size-2 count, DAG depth.
"""

from repro.bench import powerlaw_table_properties

from conftest import save_and_print


def test_table3_powerlaw_properties(benchmark, results_dir):
    res = benchmark.pedantic(powerlaw_table_properties, rounds=1, iterations=1)
    save_and_print(results_dir, "table3_powerlaw", res.rendered)
    rows = {r["graph"]: r for r in res.rows}
    # class checks against Table 3 (scaled):
    assert rows["cage14"]["sccs"] == 1                      # one SCC = all
    assert rows["cage14"]["dag_depth"] == 1
    assert rows["com-Youtube"]["largest"] == 1              # all trivial
    assert rows["com-Youtube"]["dag_depth"] > 20            # deep DAG
    assert rows["Freescale2"]["size2"] > 500                # many 2-SCCs
    assert rows["Freescale2"]["dag_depth"] == 1
    assert rows["wiki-Talk"]["largest"] < 0.1 * rows["wiki-Talk"]["vertices"]
    for name in ("circuit5M", "Freescale1", "soc-LiveJournal1", "wikipedia"):
        assert rows[name]["largest"] > 0.5 * rows[name]["vertices"], name
    # hubs exist (power-law signature)
    assert rows["circuit5M"]["max_din"] > 100
    assert rows["wiki-Talk"]["max_dout"] > 100
