"""Extension: the 4-signature (2 max + 2 min) variant of §3.3.

The paper describes but rejects this variant (it halves the expected
iteration count at the cost of doubling signature memory).  We implement
it and measure the trade-off the authors declined to ship.
"""

from repro.bench import render_table, run_algorithm
from repro.core import ecl_scc, minmax_scc
from repro.device import A100
from repro.graph.suite import powerlaw_suite
from repro.mesh.suite import small_mesh_suite

from conftest import save_and_print


def _workloads():
    meshes = small_mesh_suite(names=["toroid-hex", "torch-hex"], num_ordinates=2)
    power = powerlaw_suite(names=["web-Google", "flickr"], scale=1 / 64)
    out = [(grp.name, g) for grp in meshes for g in grp.graphs[:1]]
    out += [(g.name, g) for g, _ in power]
    return out


def test_minmax_variant_tradeoff(benchmark, results_dir):
    rows = []

    def run():
        for name, g in _workloads():
            base = ecl_scc(g, device=A100)
            quad = minmax_scc(g, device=A100)
            rows.append(
                [
                    name,
                    base.outer_iterations,
                    quad.outer_iterations,
                    round(base.estimated_seconds * 1e3, 4),
                    round(quad.estimated_seconds * 1e3, 4),
                ]
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["graph", "iters (max)", "iters (min/max)", "ms (max)", "ms (min/max)"],
        rows,
        title="Extension: 4-signature min/max variant vs shipped 2-signature",
    )
    save_and_print(results_dir, "ext_minmax", table)
    # the variant's whole point: it never needs more outer iterations
    for r in rows:
        assert r[2] <= r[1], r
