"""§5.1.4: the expanded (replicated 10x) twist-hex and toroid-hex meshes.

The paper replicates both meshes 10x to exceed cache capacity and shows
the speedup trends hold: ECL-SCC stays ahead of GPU-SCC (78.5x on the
expanded toroid-hex) and iSpan (1.4x on expanded twist-hex, timeout on
expanded toroid-hex).
"""

from repro.bench import expanded_meshes

from conftest import save_and_print


def test_expanded_meshes(benchmark, results_dir):
    res = benchmark.pedantic(
        lambda: expanded_meshes(copies=10, scale=0.25), rounds=1, iterations=1
    )
    save_and_print(results_dir, "expanded_meshes", res.rendered)
    rows = {r["graph"]: r for r in res.rows}
    twist = rows["twist-hex-x10"]
    toroid = rows["toroid-hex-x10"]
    # §5.1.4's conclusion: the speedup trends hold beyond cache capacity —
    # ECL-SCC stays fastest on both expanded meshes, decisively so on the
    # many-small-SCCs toroid (paper: GPU-SCC 78.5x slower, iSpan timed
    # out after 3 hours; our model lands at >100x for both there).
    for row in (twist, toroid):
        assert row["ECL-SCC A100"] * 3 < row["GPU-SCC A100"], row["graph"]
        assert row["ECL-SCC A100"] * 3 < row["iSpan Xeon"], row["graph"]
    assert toroid["GPU-SCC A100"] > 20 * toroid["ECL-SCC A100"]
    assert toroid["iSpan Xeon"] > 50 * toroid["ECL-SCC A100"]
    # the GPU baseline loses more ground on toroid than on twist (the
    # giant-SCC case is its optimized regime)
    gpu_ratio_twist = twist["GPU-SCC A100"] / twist["ECL-SCC A100"]
    gpu_ratio_toroid = toroid["GPU-SCC A100"] / toroid["ECL-SCC A100"]
    assert gpu_ratio_twist < gpu_ratio_toroid
