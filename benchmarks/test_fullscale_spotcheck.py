"""Paper-scale spot check: two small-mesh groups at their exact Table 1
sizes (one ordinate each), demonstrating that the reduced-scale factor
inflation documented in EXPERIMENTS.md vanishes with size.

Known anchor: GPU-SCC on beam-hex at 262,144 vertices — paper throughput
58 Mv/s (0.0045 s on the A100), our model ~65 Mv/s.
"""

from repro.bench import render_table, run_algorithm
from repro.device import A100, XEON_6226R
from repro.mesh.suite import SMALL_MESH_SPECS, build_group

from conftest import save_and_print


def test_fullscale_small_meshes(benchmark, results_dir):
    rows = []

    def run():
        for name in ("beam-hex", "toroid-hex"):
            spec = next(s for s in SMALL_MESH_SPECS if s.name == name)
            grp = build_group(spec, scale=1.0, num_ordinates=1)
            g = grp.graphs[0]
            cells = {}
            for algo, dev in (
                ("ecl-scc", A100), ("gpu-scc", A100), ("ispan", XEON_6226R)
            ):
                r = run_algorithm(g, algo, dev, verify=algo == "ecl-scc")
                cells[algo] = r
                rows.append(
                    [name, g.num_vertices, algo, dev.name,
                     round(r.model_seconds, 4),
                     round(r.model_throughput_mvs, 2)]
                )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["mesh", "vertices", "algorithm", "device", "model s", "Mv/s"],
        rows,
        title="Paper-scale spot check (Table 1 sizes, 1 ordinate)",
    )
    save_and_print(results_dir, "fullscale_spotcheck", table)

    by = {(r[0], r[2]): r[5] for r in rows}
    # anchor: GPU-SCC on beam-hex within 2x of the paper's 58 Mv/s
    assert 29 < by[("beam-hex", "gpu-scc")] < 116
    # ECL-SCC still leads both comparison codes at full scale
    for mesh in ("beam-hex", "toroid-hex"):
        assert by[(mesh, "ecl-scc")] > by[(mesh, "gpu-scc")]
        assert by[(mesh, "ecl-scc")] > by[(mesh, "ispan")]
    # toroid ECL/GPU ratio within an order of magnitude of the paper's 9.7x
    ratio = by[("toroid-hex", "ecl-scc")] / by[("toroid-hex", "gpu-scc")]
    assert 3 < ratio < 100
