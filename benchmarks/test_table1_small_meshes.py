"""Table 1: properties of the small mesh graphs.

Regenerates the paper's Table 1 at the active scale (per-group vertex and
edge counts, degree bounds, SCC statistics, DAG depth across ordinates)
and benchmarks the property-extraction pipeline on one representative
group.
"""

from repro.analysis import scc_statistics
from repro.baselines import tarjan_scc
from repro.bench import mesh_table_properties

from conftest import save_and_print


def test_table1_small_mesh_properties(benchmark, results_dir, small_meshes):
    res = benchmark.pedantic(
        lambda: mesh_table_properties("small"), rounds=1, iterations=1
    )
    save_and_print(results_dir, "table1_small_meshes", res.rendered)
    rows = {r["graph"]: r for r in res.rows}
    # Table 1's structural classes must reproduce at scale:
    assert rows["beam-hex"]["max_largest"] == 1          # all-trivial
    assert rows["star"]["max_largest"] == 1              # all-trivial
    assert rows["star"]["min_depth"] > rows["beam-hex"]["min_depth"]
    assert rows["torch-tet"]["max_size2"] > 100          # many 2-SCCs
    assert 1 < rows["toroid-hex"]["max_largest"] <= 2000  # small clusters
    assert rows["torch-hex"]["max_dout"] <= 6            # low constant degree


def test_scc_stats_kernel(benchmark, small_meshes):
    """pytest-benchmark target: the statistics kernel on one mesh graph."""
    g = small_meshes[0].graphs[0]
    labels = tarjan_scc(g)
    benchmark(lambda: scc_statistics(g, labels, with_depth=False))
