"""Extension: the full algorithm shootout.

Every SCC code in the library (the paper's three contenders plus the
wider lineage: Hong '13, Multistep '14, Orzan coloring, FB-Trim, plain
FB, and the serial oracles) on one representative input per class, each
on its natural device model.  Not a paper table — a map of where ECL-SCC
sits in the whole design space.
"""

from repro.bench import format_seconds, render_table, run_algorithm
from repro.device import A100, XEON_6226R
from repro.graph.suite import powerlaw_suite
from repro.mesh.suite import small_mesh_suite

from conftest import save_and_print

GPU_ALGOS = ("ecl-scc", "ecl-scc-minmax", "gpu-scc", "coloring")
CPU_ALGOS = ("ispan", "hong", "multistep", "fb-trim", "fb", "tarjan")


def test_algorithm_shootout(benchmark, results_dir):
    mesh_grp = small_mesh_suite(names=["toroid-hex"], num_ordinates=1)[0]
    mesh_g = mesh_grp.graphs[0].with_name("toroid-hex")
    pl_g, _ = powerlaw_suite(names=["soc-LiveJournal1"], scale=1 / 64)[0]
    rows = []

    def run():
        for g in (mesh_g, pl_g):
            for algo in GPU_ALGOS:
                r = run_algorithm(g, algo, A100, verify=True)
                rows.append([g.name, algo, "A100", format_seconds(r.model_seconds),
                             round(r.model_throughput_mvs, 2)])
            for algo in CPU_ALGOS:
                r = run_algorithm(g, algo, XEON_6226R, verify=algo != "tarjan")
                rows.append([g.name, algo, "Xeon", format_seconds(r.model_seconds),
                             round(r.model_throughput_mvs, 2)])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["graph", "algorithm", "device", "model s", "Mv/s"],
        rows,
        title="Extension: full algorithm shootout (one input per class)",
    )
    save_and_print(results_dir, "ext_shootout", table)

    by = {(r[0], r[1]): r[4] for r in rows}
    mesh = mesh_g.name
    # ECL-SCC leads every other parallel code on the mesh input
    ecl = by[(mesh, "ecl-scc")]
    for algo in ("gpu-scc", "coloring", "ispan", "hong", "multistep", "fb-trim", "fb"):
        assert ecl > by[(mesh, algo)], algo
    # the lineage ordering on meshes: multistep/coloring-style codes sit
    # between recursive FB and ECL
    assert by[(mesh, "multistep")] >= by[(mesh, "fb")]
