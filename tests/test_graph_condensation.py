"""Unit tests for repro.graph.condensation."""

import numpy as np
import pytest

from repro.errors import GraphValidationError
from repro.graph import (
    CSRGraph,
    compact_labels,
    condense,
    cycle_graph,
    dag_chain_of_cliques,
    dag_depth,
    grid_dag,
    path_graph,
    scc_ladder,
    topological_levels,
)
from repro.baselines import tarjan_scc


class TestCompactLabels:
    def test_dense_output(self):
        out = compact_labels(np.array([7, 3, 7, 9]))
        assert out.tolist() == [1, 0, 1, 2]

    def test_empty(self):
        assert compact_labels(np.array([], dtype=np.int64)).size == 0


class TestCondense:
    def test_cycle_condenses_to_point(self):
        g = cycle_graph(5)
        dag, dense = condense(g, tarjan_scc(g))
        assert dag.num_vertices == 1
        assert dag.num_edges == 0
        assert np.all(dense == 0)

    def test_path_condenses_to_itself(self):
        g = path_graph(4)
        dag, _ = condense(g, tarjan_scc(g))
        assert dag.num_vertices == 4
        assert dag.num_edges == 3

    def test_duplicate_inter_edges_removed(self):
        # two SCCs joined by two parallel edges
        g = CSRGraph.from_edges([0, 1, 0, 0], [1, 0, 2, 2], num_vertices=3)
        dag, _ = condense(g, tarjan_scc(g))
        assert dag.num_edges == 1

    def test_condensation_is_acyclic(self):
        g = dag_chain_of_cliques(6, 4, seed=1)
        dag, _ = condense(g, tarjan_scc(g))
        topological_levels(dag)  # raises on a cycle

    def test_label_length_check(self):
        with pytest.raises(GraphValidationError):
            condense(cycle_graph(3), np.array([0, 1]))


class TestTopologicalLevels:
    def test_path_levels(self):
        g = path_graph(5)
        assert topological_levels(g).tolist() == [0, 1, 2, 3, 4]

    def test_diamond(self):
        g = CSRGraph.from_adjacency([[1, 2], [3], [3], []])
        assert topological_levels(g).tolist() == [0, 1, 1, 2]

    def test_longest_path_wins(self):
        # 0->3 direct and 0->1->2->3: 3 must land at level 3
        g = CSRGraph.from_adjacency([[1, 3], [2], [3], []])
        assert topological_levels(g)[3] == 3

    def test_cycle_detected(self):
        with pytest.raises(GraphValidationError, match="cycle"):
            topological_levels(cycle_graph(4))

    def test_isolated_vertices_level0(self):
        assert topological_levels(CSRGraph.empty(3)).tolist() == [0, 0, 0]


class TestDagDepth:
    def test_paper_conventions(self):
        # a single SCC has depth 1 (twist-hex row of Table 2)
        g = cycle_graph(6)
        assert dag_depth(g, tarjan_scc(g)) == 1

    def test_path(self):
        g = path_graph(7)
        assert dag_depth(g, tarjan_scc(g)) == 7

    def test_ladder(self):
        g = scc_ladder(5)
        assert dag_depth(g, tarjan_scc(g)) == 5

    def test_grid(self):
        g = grid_dag(3, 4)
        assert dag_depth(g, tarjan_scc(g)) == 6

    def test_empty_graph(self):
        g = CSRGraph.empty(0)
        assert dag_depth(g, np.array([], dtype=np.int64)) == 0

    def test_edgeless_vertices(self):
        g = CSRGraph.empty(5)
        assert dag_depth(g, np.arange(5)) == 1
