"""Tests for boundary-face extraction and mesh quality metrics."""

import numpy as np
import pytest

from repro.mesh import (
    beam_hex,
    boundary_faces,
    hex_to_tets,
    klein_bottle,
    mesh_quality,
    mobius_strip,
    star,
    structured_hex_grid,
    toroid_hex,
    toroid_wedge,
    torch_hex,
    torch_tet,
    twist_hex,
)


class TestBoundaryFaces:
    def test_box_count(self):
        # surface quads of an (a, b, c) grid: 2(ab + bc + ca)
        m = structured_hex_grid((3, 2, 2))
        assert boundary_faces(m).num_faces == 2 * (3 * 2 + 2 * 2 + 3 * 2)

    def test_single_element(self):
        m = structured_hex_grid((1, 1, 1))
        assert boundary_faces(m).num_faces == 6

    def test_faces_belong_to_owner(self):
        m = structured_hex_grid((2, 2, 1))
        bf = boundary_faces(m)
        for k in range(bf.num_faces):
            owner_nodes = set(m.cells[bf.element[k]].tolist())
            face_nodes = set(bf.nodes[k][: bf.node_counts[k]].tolist())
            assert face_nodes <= owner_nodes

    def test_tet_split_boundary(self):
        hexm = structured_hex_grid((2, 2, 2))
        tets = hex_to_tets(hexm)
        # every boundary quad splits into 2 boundary triangles
        assert boundary_faces(tets).num_faces == 2 * boundary_faces(hexm).num_faces

    def test_periodic_toroid_boundary(self):
        # torus welded in 2 of 3 directions: only the radial sides remain:
        # 2 * (poloidal cells * toroidal cells)
        n = 2
        m = toroid_hex(n)
        assert boundary_faces(m).num_faces == 2 * (4 * n) * (12 * n)

    def test_identified_a_side_excluded(self):
        # klein bottle: the fully-glued surface keeps only the partner-side
        # records (one per identification, see boundary_faces docstring)
        m = klein_bottle(4)
        ea, _, _, _ = m.identified_faces
        assert boundary_faces(m).num_faces == ea.size

    def test_star_boundary(self):
        n = 4
        m = star(n)  # welded annulus: inner + outer rims only
        assert boundary_faces(m).num_faces == 2 * 5 * n


class TestMeshQuality:
    def test_unit_grid(self):
        q = mesh_quality(structured_hex_grid((2, 2, 2)))
        assert q.is_valid
        assert q.max_aspect_ratio == pytest.approx(1.0)
        assert q.min_edge_length == pytest.approx(0.5)

    def test_anisotropic_grid(self):
        q = mesh_quality(structured_hex_grid((4, 2, 1), (1.0, 1.0, 1.0)))
        assert q.max_aspect_ratio == pytest.approx(4.0)

    @pytest.mark.parametrize(
        "builder,n",
        [
            (beam_hex, 2), (star, 4), (torch_hex, 2), (torch_tet, 2),
            (toroid_hex, 2), (toroid_wedge, 2), (mobius_strip, 6),
            (klein_bottle, 4), (twist_hex, 2),
        ],
        ids=lambda x: getattr(x, "__name__", str(x)),
    )
    def test_all_builders_noninverted(self, builder, n):
        """No named mesh may contain orientation-inconsistent elements —
        the guard that jitter/transform amplitudes stay geometric."""
        q = mesh_quality(builder(n))
        assert q.inverted_elements == 0
        assert q.min_edge_length > 0

    def test_detects_folded_element(self):
        m = structured_hex_grid((2, 1, 1))
        pts = m.base_points.copy()
        # collapse one element by swapping two x-planes of nodes
        pts[:, 0] = np.where(pts[:, 0] == 0.5, -1.0, pts[:, 0])
        from repro.mesh import ElementType, Mesh

        bad = Mesh(pts, m.cells, ElementType.HEX)
        q = mesh_quality(bad)
        assert q.inverted_elements > 0
        assert not q.is_valid
