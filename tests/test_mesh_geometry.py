"""Tests for face quadrature normals (straight and curved geometry)."""

import numpy as np
import pytest

from repro.errors import MeshError
from repro.mesh import (
    ElementType,
    Mesh,
    face_quadrature_normals,
    interior_faces,
    quadrature_points_1d,
    structured_hex_grid,
    triangle_quadrature,
    hex_to_tets,
)
from repro.mesh.builders import parametric_quad_grid


def unit(v):
    return v / np.linalg.norm(v, axis=-1, keepdims=True)


class TestQuadraturePoints:
    def test_gauss_1d_inside(self):
        for n in (1, 2, 3, 4):
            q = quadrature_points_1d(n)
            assert q.size == n
            assert np.all((q > 0) & (q < 1))

    def test_gauss_symmetric(self):
        q = quadrature_points_1d(2)
        assert np.allclose(q[0] + q[1], 1.0)

    def test_gauss_unsupported(self):
        with pytest.raises(MeshError):
            quadrature_points_1d(9)

    def test_triangle_points_barycentric(self):
        for n in (1, 2, 3):
            b = triangle_quadrature(n)
            assert np.allclose(b.sum(axis=1), 1.0)
            assert np.all(b > 0)

    def test_triangle_unsupported(self):
        with pytest.raises(MeshError):
            triangle_quadrature(7)


class TestStraightNormals:
    def test_hex_grid_axis_normals(self):
        m = structured_hex_grid((2, 1, 1))
        fs = interior_faces(m)
        normals = face_quadrature_normals(m, fs)
        # the single interior face is the x = 0.5 plane, outward from elem1
        n = unit(normals[0])
        expected = np.array([1.0, 0, 0]) if fs.elem1[0] == 0 else np.array([-1.0, 0, 0])
        assert np.allclose(n, expected)

    def test_constant_across_quad_points(self):
        m = structured_hex_grid((2, 2, 2))
        fs = interior_faces(m)
        normals = unit(face_quadrature_normals(m, fs, points_per_dim=3))
        spread = np.abs(normals - normals[:, :1, :]).max()
        assert spread < 1e-12  # planar faces: identical at all points

    def test_points_outward_from_elem1(self):
        m = structured_hex_grid((3, 3, 3))
        fs = interior_faces(m)
        normals = unit(face_quadrature_normals(m, fs))
        c = m.element_centroids()
        away = unit(c[fs.elem2] - c[fs.elem1])
        dots = np.einsum("fqe,fe->fq", normals, away)
        assert np.all(dots > 0.9)

    def test_tet_normals_outward(self):
        m = hex_to_tets(structured_hex_grid((2, 2, 2)))
        fs = interior_faces(m)
        normals = unit(face_quadrature_normals(m, fs))
        c = m.element_centroids()
        away = unit(c[fs.elem2] - c[fs.elem1])
        dots = np.einsum("fqe,fe->fq", normals, away)
        assert np.all(dots > 0.0)

    def test_2d_quad_edges_outward(self):
        m = parametric_quad_grid((3, 3), lambda U, V: np.stack([U, V], axis=-1))
        fs = interior_faces(m)
        normals = unit(face_quadrature_normals(m, fs))
        c = m.element_centroids()
        away = unit(c[fs.elem2] - c[fs.elem1])
        dots = np.einsum("fqe,fe->fq", normals, away)
        assert np.all(dots > 0.9)

    def test_empty_faceset(self):
        m = structured_hex_grid((1, 1, 1))
        fs = interior_faces(m)
        out = face_quadrature_normals(m, fs)
        assert out.shape[0] == 0


class TestCurvedNormals:
    def test_transform_bends_normals(self):
        m0 = structured_hex_grid((4, 1, 1), (4.0, 1.0, 1.0))
        # shift x by a function of y: tilts the x-plane interior faces
        bend = lambda p: np.stack(
            [p[..., 0] + 0.2 * np.sin(2.0 * p[..., 1]), p[..., 1], p[..., 2]],
            axis=-1,
        )
        m = Mesh(m0.base_points, m0.cells, ElementType.HEX, transform=bend)
        fs = interior_faces(m)
        n_straight = unit(face_quadrature_normals(m0, fs))
        n_curved = unit(face_quadrature_normals(m, fs))
        assert np.abs(n_curved - n_straight).max() > 0.01

    def test_quadrature_normal_variation_on_curved_face(self):
        # strong nonlinear shear: normals must differ across one face
        m0 = structured_hex_grid((2, 1, 1), (2.0, 1.0, 1.0))
        shear = lambda p: np.stack(
            [p[..., 0] + 0.5 * p[..., 1] ** 2 * p[..., 2], p[..., 1], p[..., 2]],
            axis=-1,
        )
        m = Mesh(m0.base_points, m0.cells, ElementType.HEX, transform=shear)
        fs = interior_faces(m)
        normals = unit(face_quadrature_normals(m, fs, points_per_dim=2))
        spread = np.abs(normals - normals[:, :1, :]).max()
        assert spread > 1e-3

    def test_rigid_rotation_exact(self):
        # a rigid transform must rotate normals exactly (FD pushforward)
        theta = 0.7
        R = np.array(
            [
                [np.cos(theta), -np.sin(theta), 0],
                [np.sin(theta), np.cos(theta), 0],
                [0, 0, 1],
            ]
        )
        m0 = structured_hex_grid((2, 2, 1))
        m = Mesh(m0.base_points, m0.cells, ElementType.HEX, transform=lambda p: p @ R.T)
        fs = interior_faces(m0)
        n0 = unit(face_quadrature_normals(m0, fs))
        n1 = unit(face_quadrature_normals(m, fs))
        assert np.allclose(n1, n0 @ R.T, atol=1e-8)
