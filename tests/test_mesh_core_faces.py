"""Tests for the Mesh container and interior-face extraction."""

import numpy as np
import pytest

from repro.errors import MeshError, MeshTopologyError
from repro.mesh import (
    ElementType,
    Mesh,
    hex_to_tets,
    hex_to_wedges,
    interior_faces,
    structured_hex_grid,
)
from repro.mesh.builders import parametric_quad_grid


class TestMeshContainer:
    def test_basic_properties(self):
        m = structured_hex_grid((2, 3, 4))
        assert m.num_elements == 24
        assert m.num_points == 3 * 4 * 5
        assert m.embedding_dim == 3
        assert m.element_dim == 3
        assert not m.is_curved

    def test_cell_range_checked(self):
        with pytest.raises(MeshTopologyError):
            Mesh(np.zeros((2, 3)), np.array([[0, 1, 2, 5]]), ElementType.QUAD)

    def test_cell_width_checked(self):
        with pytest.raises(MeshError, match="cells"):
            Mesh(np.zeros((8, 3)), np.arange(6).reshape(1, 6), ElementType.HEX)

    def test_embedding_dim_checked(self):
        with pytest.raises(MeshError, match="embedding"):
            Mesh(np.zeros((8, 2)), np.arange(8).reshape(1, 8), ElementType.HEX)

    def test_points_shape_checked(self):
        with pytest.raises(MeshError):
            Mesh(np.zeros((4,)), np.array([[0, 1, 2, 3]]), ElementType.QUAD)

    def test_transform_applied_and_cached(self):
        m = structured_hex_grid((1, 1, 1))
        shifted = Mesh(
            m.base_points, m.cells, ElementType.HEX, transform=lambda p: p + 1.0
        )
        assert np.allclose(shifted.points, m.base_points + 1.0)
        assert shifted.points is shifted.points  # cached

    def test_transform_shape_guard(self):
        m = structured_hex_grid((1, 1, 1))
        bad = Mesh(
            m.base_points, m.cells, ElementType.HEX,
            transform=lambda p: p[:, :2] if p.ndim == 2 else p,
        )
        with pytest.raises(MeshError, match="shape"):
            _ = bad.points

    def test_centroids(self):
        m = structured_hex_grid((1, 1, 1))
        assert np.allclose(m.element_centroids(), [[0.5, 0.5, 0.5]])

    def test_bounding_box(self):
        m = structured_hex_grid((2, 2, 2), (2.0, 4.0, 6.0))
        lo, hi = m.bounding_box()
        assert np.allclose(lo, 0) and np.allclose(hi, [2, 4, 6])

    def test_identified_faces_validated(self):
        m = structured_hex_grid((2, 1, 1))
        with pytest.raises(MeshTopologyError):
            Mesh(
                m.base_points, m.cells, ElementType.HEX,
                identified_faces=(
                    np.array([0]), np.array([5]),
                    np.zeros((1, 4), dtype=np.int64), np.array([4]),
                ),
            )


class TestInteriorFaces:
    def test_hex_grid_face_count(self):
        # interior faces of an (a,b,c) grid: (a-1)bc + a(b-1)c + ab(c-1)
        m = structured_hex_grid((3, 4, 5))
        fs = interior_faces(m)
        assert fs.num_faces == 2 * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4

    def test_single_element_no_faces(self):
        m = structured_hex_grid((1, 1, 1))
        assert interior_faces(m).num_faces == 0

    def test_elem_pairs_are_neighbours(self):
        m = structured_hex_grid((4, 1, 1))
        fs = interior_faces(m)
        assert fs.num_faces == 3
        pairs = sorted(
            (min(a, b), max(a, b)) for a, b in zip(fs.elem1, fs.elem2)
        )
        assert pairs == [(0, 1), (1, 2), (2, 3)]

    def test_face_nodes_belong_to_elem1(self):
        m = structured_hex_grid((2, 2, 2))
        fs = interior_faces(m)
        for k in range(fs.num_faces):
            e1_nodes = set(m.cells[fs.elem1[k]].tolist())
            face_nodes = set(fs.nodes[k][: fs.node_counts[k]].tolist())
            assert face_nodes <= e1_nodes

    def test_tet_split_conforming(self):
        """The 6-tet split of a structured grid must produce 2x3x(shared
        quad faces) + internal tet faces, with no non-manifold faces."""
        m = hex_to_tets(structured_hex_grid((2, 2, 2)))
        fs = interior_faces(m)  # raises on non-manifold
        assert fs.num_faces > 0
        assert (fs.node_counts == 3).all()

    def test_wedge_split_conforming(self):
        m = hex_to_wedges(structured_hex_grid((2, 2, 2)))
        fs = interior_faces(m)
        assert set(np.unique(fs.node_counts)) <= {3, 4}

    def test_tet_count(self):
        m = hex_to_tets(structured_hex_grid((2, 1, 1)))
        assert m.num_elements == 12

    def test_wedge_count(self):
        m = hex_to_wedges(structured_hex_grid((3, 1, 1)))
        assert m.num_elements == 6

    def test_split_requires_hex(self):
        q = parametric_quad_grid(
            (2, 2), lambda U, V: np.stack([U, V], axis=-1)
        )
        with pytest.raises(MeshError):
            hex_to_tets(q)
        with pytest.raises(MeshError):
            hex_to_wedges(q)

    def test_identified_faces_appended(self):
        m = structured_hex_grid((1, 1, 3))
        base = interior_faces(m).num_faces
        glued = Mesh(
            m.base_points, m.cells, ElementType.HEX,
            identified_faces=(
                np.array([2]), np.array([0]),
                m.cells[2, 4:8].reshape(1, 4), np.array([4]),
            ),
        )
        fs = interior_faces(glued)
        assert fs.num_faces == base + 1
        assert fs.elem1[-1] == 2 and fs.elem2[-1] == 0
