"""Tests for SciPy/NetworkX interop and the third-party SCC oracles."""

import numpy as np
import networkx as nx
import pytest
from scipy import sparse

from repro.baselines import kosaraju_scc, tarjan_scc
from repro.core import ecl_scc
from repro.errors import GraphFormatError
from repro.graph import (
    CSRGraph,
    build_powerlaw,
    cycle_graph,
    from_networkx,
    from_scipy_sparse,
    random_gnm,
    scipy_scc,
    to_networkx,
    to_scipy_sparse,
)


class TestScipyInterop:
    def test_roundtrip_dedups(self):
        g = CSRGraph.from_edges([0, 0, 1], [1, 1, 0])
        back = from_scipy_sparse(to_scipy_sparse(g))
        assert back.same_structure(g.dedup())

    def test_multiplicity_summed(self):
        g = CSRGraph.from_edges([0, 0], [1, 1], num_vertices=2)
        m = to_scipy_sparse(g)
        assert m[0, 1] == 2

    def test_from_any_format(self):
        g = cycle_graph(5)
        coo = to_scipy_sparse(g).tocoo()
        assert from_scipy_sparse(coo).same_structure(g)

    def test_explicit_zeros_dropped(self):
        m = sparse.csr_matrix(np.array([[0, 1], [0, 0]], dtype=float))
        m.data[...] = 0.0  # make the stored entry an explicit zero
        g = from_scipy_sparse(m)
        assert g.num_edges == 0

    def test_nonsquare_rejected(self):
        with pytest.raises(GraphFormatError):
            from_scipy_sparse(sparse.csr_matrix((2, 3)))

    def test_dense_rejected(self):
        with pytest.raises(GraphFormatError):
            from_scipy_sparse(np.zeros((2, 2)))


class TestNetworkxInterop:
    def test_roundtrip_multigraph(self):
        g = CSRGraph.from_edges([0, 0, 1], [1, 1, 2])
        back = from_networkx(to_networkx(g))
        assert back.same_structure(g)

    def test_from_digraph_with_labels(self):
        d = nx.DiGraph()
        d.add_edge("a", "b")
        d.add_edge("b", "a")
        g = from_networkx(d)
        assert g.num_vertices == 2
        assert np.unique(tarjan_scc(g)).size == 1

    def test_wrong_type_rejected(self):
        with pytest.raises(GraphFormatError):
            from_networkx(nx.Graph())

    def test_isolated_nodes_preserved(self):
        d = nx.DiGraph()
        d.add_nodes_from(range(4))
        d.add_edge(0, 1)
        assert from_networkx(d).num_vertices == 4


class TestThirdPartyOracles:
    """Our oracles cross-checked against two compiled/foreign codes."""

    def test_scipy_agrees_with_tarjan(self, all_graphs):
        for g in all_graphs:
            assert np.array_equal(scipy_scc(g), tarjan_scc(g)), g

    def test_scipy_agrees_on_powerlaw(self):
        for name in ("wikipedia", "Freescale2", "com-Youtube"):
            g, _ = build_powerlaw(name, scale=1 / 256, seed=0)
            assert np.array_equal(scipy_scc(g), tarjan_scc(g)), name

    def test_ecl_agrees_with_scipy(self, random_graphs):
        for g in random_graphs:
            assert np.array_equal(ecl_scc(g).labels, scipy_scc(g))

    def test_networkx_agrees_with_kosaraju(self, random_graphs):
        for g in random_graphs[:6]:
            labels = np.empty(g.num_vertices, dtype=np.int64)
            for comp in nx.strongly_connected_components(to_networkx(g)):
                rep = max(comp)
                for v in comp:
                    labels[v] = rep
            assert np.array_equal(labels, kosaraju_scc(g))

    def test_scipy_empty(self):
        assert scipy_scc(CSRGraph.empty(0)).size == 0
