"""Tests for the Phase-2 propagation engines."""

import numpy as np
import pytest

from repro.core import (
    ALL_ON,
    BlockPartition,
    EclOptions,
    EdgeGrouping,
    Signatures,
    propagate_async,
    propagate_sync,
)
from repro.device import A100, VirtualDevice
from repro.errors import ConvergenceError
from repro.graph import cycle_graph, path_graph, permute_random


def run_sync(graph, opts):
    src, dst = graph.edges()
    sigs = Signatures.identity(graph.num_vertices)
    dev = VirtualDevice(A100)
    grouping = EdgeGrouping.build(src, dst)
    rounds = propagate_sync(sigs, grouping, dev, opts, graph.num_vertices)
    return sigs, rounds, dev


def run_async(graph, opts, blocks=4):
    src, dst = graph.edges()
    sigs = Signatures.identity(graph.num_vertices)
    dev = VirtualDevice(A100)
    bounds = np.linspace(0, src.size, blocks + 1).astype(np.int64)
    part = BlockPartition.build(src, dst, bounds)
    launches, rounds = propagate_async(sigs, part, dev, opts, graph.num_vertices)
    return sigs, launches, rounds, dev


SYNC_PLAIN = EclOptions(async_phase2=False, path_compression=False)
SYNC_COMPRESS = EclOptions(async_phase2=False, path_compression=True)


class TestFixedPointValues:
    """At the fixed point, sig_in/sig_out must equal the true max over
    ancestors/descendants — checked exactly on analysable graphs."""

    def test_path_graph(self):
        g = path_graph(6)
        sigs, _, _ = run_sync(g, SYNC_PLAIN)
        # ancestors of v on a path: 0..v -> max ancestor is v itself
        assert sigs.sig_in.tolist() == [0, 1, 2, 3, 4, 5]
        # descendants of v: v..5 -> max descendant is 5
        assert sigs.sig_out.tolist() == [5] * 6

    def test_cycle_graph(self):
        g = cycle_graph(5)
        sigs, _, _ = run_sync(g, SYNC_PLAIN)
        assert (sigs.sig_in == 4).all()
        assert (sigs.sig_out == 4).all()

    @pytest.mark.parametrize("opts", [SYNC_PLAIN, SYNC_COMPRESS])
    def test_compression_same_fixed_point(self, opts):
        g, _ = permute_random(cycle_graph(40), seed=2)
        sigs, _, _ = run_sync(g, opts)
        assert (sigs.sig_in == 39).all()
        assert (sigs.sig_out == 39).all()

    def test_async_same_fixed_point(self):
        g, _ = permute_random(cycle_graph(64), seed=1)
        s_sync, _, _ = run_sync(g, SYNC_COMPRESS)
        s_async, _, _, _ = run_async(g, ALL_ON, blocks=5)
        assert np.array_equal(s_sync.sig_in, s_async.sig_in)
        assert np.array_equal(s_sync.sig_out, s_async.sig_out)


class TestRoundCounts:
    def test_plain_cycle_is_linear(self):
        g = cycle_graph(64)
        _, rounds, _ = run_sync(g, SYNC_PLAIN)
        assert rounds >= 60  # value must walk the whole cycle

    def test_compression_is_logarithmic_on_permuted_cycle(self):
        g, _ = permute_random(cycle_graph(1024), seed=0)
        _, rounds, _ = run_sync(g, SYNC_COMPRESS)
        assert rounds < 40  # ~log2(1024) + constant, not ~1024

    def test_async_fewer_launches_than_sync_rounds(self):
        g, _ = permute_random(cycle_graph(256), seed=3)
        _, sync_rounds, _ = run_sync(g, SYNC_PLAIN)
        _, launches, _, _ = run_async(
            g, EclOptions(path_compression=False), blocks=4
        )
        assert launches < sync_rounds

    def test_sync_counts_one_launch_per_round(self):
        g = path_graph(20)
        _, rounds, dev = run_sync(g, SYNC_PLAIN)
        assert dev.counters.kernel_launches == rounds


class TestEdgeGrouping:
    def test_build_groups(self):
        src = np.array([2, 0, 2, 1])
        dst = np.array([0, 1, 1, 2])
        grp = EdgeGrouping.build(src, dst)
        assert grp.group_src.tolist() == [0, 1, 2]
        assert grp.touched.tolist() == [0, 1, 2]
        assert grp.num_edges == 4

    def test_relax_single_edge(self):
        grp = EdgeGrouping.build(np.array([0]), np.array([1]))
        sigs = Signatures.identity(2)
        changed = grp.relax(sigs, compress=False)
        assert changed
        assert sigs.sig_out[0] == 1  # u_out <- max(u_out, v_out)
        assert sigs.sig_in[1] == 1   # v_in stays (u_in=0 < 1)

    def test_relax_idempotent_at_fixpoint(self):
        grp = EdgeGrouping.build(np.array([0]), np.array([1]))
        sigs = Signatures.identity(2)
        grp.relax(sigs, compress=False)
        assert not grp.relax(sigs, compress=False)


class TestSafetyBounds:
    def test_round_bound_raises(self):
        g = cycle_graph(100)
        opts = EclOptions(async_phase2=False, path_compression=False, max_rounds=3)
        with pytest.raises(ConvergenceError):
            run_sync(g, opts)
