"""Tests for the Phase-2 propagation engines."""

import numpy as np
import pytest

from repro.core import (
    ALL_ON,
    BlockPartition,
    EclOptions,
    EdgeGrouping,
    Signatures,
    VertexFrontier,
    engine_options,
    propagate_async,
    propagate_frontier,
    propagate_sync,
)
from repro.device import A100, VirtualDevice
from repro.engine import get_backend
from repro.errors import AlgorithmError, ConvergenceError
from repro.graph import cycle_graph, path_graph, permute_random


def run_sync(graph, opts):
    src, dst = graph.edges()
    sigs = Signatures.identity(graph.num_vertices)
    dev = VirtualDevice(A100)
    grouping = EdgeGrouping.build(src, dst)
    rounds = propagate_sync(sigs, grouping, dev, opts, graph.num_vertices)
    return sigs, rounds, dev


def run_async(graph, opts, blocks=4):
    src, dst = graph.edges()
    sigs = Signatures.identity(graph.num_vertices)
    dev = VirtualDevice(A100)
    bounds = np.linspace(0, src.size, blocks + 1).astype(np.int64)
    part = BlockPartition.build(src, dst, bounds)
    launches, rounds = propagate_async(sigs, part, dev, opts, graph.num_vertices)
    return sigs, launches, rounds, dev


SYNC_PLAIN = EclOptions(async_phase2=False, path_compression=False)
SYNC_COMPRESS = EclOptions(async_phase2=False, path_compression=True)


class TestFixedPointValues:
    """At the fixed point, sig_in/sig_out must equal the true max over
    ancestors/descendants — checked exactly on analysable graphs."""

    def test_path_graph(self):
        g = path_graph(6)
        sigs, _, _ = run_sync(g, SYNC_PLAIN)
        # ancestors of v on a path: 0..v -> max ancestor is v itself
        assert sigs.sig_in.tolist() == [0, 1, 2, 3, 4, 5]
        # descendants of v: v..5 -> max descendant is 5
        assert sigs.sig_out.tolist() == [5] * 6

    def test_cycle_graph(self):
        g = cycle_graph(5)
        sigs, _, _ = run_sync(g, SYNC_PLAIN)
        assert (sigs.sig_in == 4).all()
        assert (sigs.sig_out == 4).all()

    @pytest.mark.parametrize("opts", [SYNC_PLAIN, SYNC_COMPRESS])
    def test_compression_same_fixed_point(self, opts):
        g, _ = permute_random(cycle_graph(40), seed=2)
        sigs, _, _ = run_sync(g, opts)
        assert (sigs.sig_in == 39).all()
        assert (sigs.sig_out == 39).all()

    def test_async_same_fixed_point(self):
        g, _ = permute_random(cycle_graph(64), seed=1)
        s_sync, _, _ = run_sync(g, SYNC_COMPRESS)
        s_async, _, _, _ = run_async(g, ALL_ON, blocks=5)
        assert np.array_equal(s_sync.sig_in, s_async.sig_in)
        assert np.array_equal(s_sync.sig_out, s_async.sig_out)


class TestRoundCounts:
    def test_plain_cycle_is_linear(self):
        g = cycle_graph(64)
        _, rounds, _ = run_sync(g, SYNC_PLAIN)
        assert rounds >= 60  # value must walk the whole cycle

    def test_compression_is_logarithmic_on_permuted_cycle(self):
        g, _ = permute_random(cycle_graph(1024), seed=0)
        _, rounds, _ = run_sync(g, SYNC_COMPRESS)
        assert rounds < 40  # ~log2(1024) + constant, not ~1024

    def test_async_fewer_launches_than_sync_rounds(self):
        g, _ = permute_random(cycle_graph(256), seed=3)
        _, sync_rounds, _ = run_sync(g, SYNC_PLAIN)
        _, launches, _, _ = run_async(
            g, EclOptions(path_compression=False), blocks=4
        )
        assert launches < sync_rounds

    def test_sync_counts_one_launch_per_round(self):
        g = path_graph(20)
        _, rounds, dev = run_sync(g, SYNC_PLAIN)
        assert dev.counters.kernel_launches == rounds


class TestEdgeGrouping:
    def test_build_groups(self):
        src = np.array([2, 0, 2, 1])
        dst = np.array([0, 1, 1, 2])
        grp = EdgeGrouping.build(src, dst)
        assert grp.group_src.tolist() == [0, 1, 2]
        assert grp.touched.tolist() == [0, 1, 2]
        assert grp.num_edges == 4

    def test_relax_single_edge(self):
        grp = EdgeGrouping.build(np.array([0]), np.array([1]))
        sigs = Signatures.identity(2)
        changed = grp.relax(sigs, compress=False)
        assert changed
        assert sigs.sig_out[0] == 1  # u_out <- max(u_out, v_out)
        assert sigs.sig_in[1] == 1   # v_in stays (u_in=0 < 1)

    def test_relax_idempotent_at_fixpoint(self):
        grp = EdgeGrouping.build(np.array([0]), np.array([1]))
        sigs = Signatures.identity(2)
        grp.relax(sigs, compress=False)
        assert not grp.relax(sigs, compress=False)


def run_frontier(graph, opts, seed=None):
    src, dst = graph.edges()
    n = graph.num_vertices
    sigs = Signatures.identity(n)
    dev = VirtualDevice(A100)
    grouping = EdgeGrouping.build(src, dst)
    if seed is None:
        seed = np.unique(np.concatenate([src, dst])) if src.size else np.array([], dtype=np.int64)
    launches, rounds = propagate_frontier(
        sigs, grouping, dev, opts, n, seed=seed, backend=get_backend("dense")
    )
    return sigs, launches, rounds, dev


FRONTIER = engine_options("frontier")


class TestFrontierEngine:
    def test_same_fixed_point_as_sync(self):
        g, _ = permute_random(cycle_graph(64), seed=4)
        s_sync, _, _ = run_sync(g, SYNC_COMPRESS)
        s_front, _, _, _ = run_frontier(g, FRONTIER)
        assert np.array_equal(s_sync.sig_in, s_front.sig_in)
        assert np.array_equal(s_sync.sig_out, s_front.sig_out)

    def test_no_compression_fixed_point(self):
        g = path_graph(9)
        s_sync, _, _ = run_sync(g, SYNC_PLAIN)
        s_front, _, _, _ = run_frontier(g, FRONTIER.disabling("path_compression"))
        assert np.array_equal(s_sync.sig_in, s_front.sig_in)
        assert np.array_equal(s_sync.sig_out, s_front.sig_out)

    def test_empty_seed_skips_drain_launch(self):
        g = path_graph(5)
        sigs, launches, rounds, dev = run_frontier(
            g, FRONTIER, seed=np.array([], dtype=np.int64)
        )
        # the host reads back an empty worklist after the compaction
        # launch and never issues the drain launch
        assert (launches, rounds) == (1, 0)
        assert dev.counters.kernel_launches == 1
        assert np.array_equal(sigs.sig_in, np.arange(5))

    def test_two_launches_regardless_of_rounds(self):
        g = cycle_graph(50)
        _, launches, rounds, dev = run_frontier(
            g, FRONTIER.disabling("path_compression")
        )
        assert launches == 2
        assert dev.counters.kernel_launches == 2
        assert rounds >= 45  # plain relaxation still walks the cycle
        assert dev.counters.rounds == rounds

    def test_partial_seed_converges_from_invalidated_state(self):
        # quiesce fully, regress one vertex, reseed only it: the
        # frontier must re-derive the fixed point from that seed alone
        g = cycle_graph(12)
        sigs, _, _, _ = run_frontier(g, FRONTIER)
        assert (sigs.sig_in == 11).all()
        src, dst = g.edges()
        grouping = EdgeGrouping.build(src, dst)
        sigs.sig_in[3] = 3
        sigs.sig_out[3] = 3
        dev = VirtualDevice(A100)
        propagate_frontier(
            sigs, grouping, dev, FRONTIER, 12,
            seed=np.array([3]), backend=get_backend("dense"),
        )
        assert (sigs.sig_in == 11).all() and (sigs.sig_out == 11).all()

    def test_persistent_grid_clamp(self):
        g = cycle_graph(200)
        _, _, _, dev = run_frontier(g, FRONTIER)
        cap = VirtualDevice(A100).grid_blocks(persistent=True)
        assert dev.counters.blocks_scheduled <= 2 * cap


class TestVertexFrontier:
    def test_seeded_dedups_and_sorts(self):
        f = VertexFrontier.seeded(np.array([3, 1, 3, 2]), 5)
        assert f.vertices.tolist() == [1, 2, 3]
        assert f.size == 3 and f.generation == 0

    def test_seeded_rejects_out_of_range(self):
        with pytest.raises(AlgorithmError):
            VertexFrontier.seeded(np.array([5]), 5)
        with pytest.raises(AlgorithmError):
            VertexFrontier.seeded(np.array([-1]), 5)

    def test_advance_swaps_buffers(self):
        f = VertexFrontier.seeded(np.array([0]), 4)
        changed = np.array([False, True, False, True])
        f.advance(changed)
        assert f.vertices.tolist() == [1, 3]
        assert f.vertices.dtype == np.int64
        assert f.generation == 1
        f.advance(np.zeros(4, dtype=bool))
        assert f.size == 0 and f.generation == 2


class TestSafetyBounds:
    def test_round_bound_raises(self):
        g = cycle_graph(100)
        opts = EclOptions(async_phase2=False, path_compression=False, max_rounds=3)
        with pytest.raises(ConvergenceError):
            run_sync(g, opts)

    def test_async_honors_explicit_max_rounds(self):
        # regression: the async engine once used an ad-hoc 3|V|+16 bound
        # and ignored max_rounds entirely; it must go through
        # opts.rounds_bound like every other engine
        g = cycle_graph(100)
        opts = EclOptions(path_compression=False, max_rounds=3)
        with pytest.raises(ConvergenceError) as ei:
            run_async(g, opts)
        # same partial-progress payload as the sync engine
        assert ei.value.iterations == 3
        assert ei.value.sig_in.shape == (100,)
        assert ei.value.active_count > 0

    def test_frontier_honors_explicit_max_rounds(self):
        g = cycle_graph(100)
        opts = engine_options(
            "frontier", EclOptions(path_compression=False, max_rounds=3)
        )
        with pytest.raises(ConvergenceError) as ei:
            run_frontier(g, opts)
        assert ei.value.iterations == 3

    def test_auto_bound_is_engine_safe(self):
        # the shared auto bound must cover the async engine's worst case
        # (a value crossing a block boundary only advances per launch)
        assert EclOptions().rounds_bound(100) == 316
