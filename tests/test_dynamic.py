"""Tests for repro.dynamic: incremental SCC maintenance.

The load-bearing contract is *bit-identity*: after any interleaving of
batched insertions, deletions and queries, ``DynamicGraph.labels`` must
equal a cold ECL-SCC solve of the then-current graph exactly — the
max-member labelling is canonical, so equality is array equality, not
partition equivalence.  The hypothesis test drives that contract across
engine x backend and under monotone fault plans.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import CSRGraph, DynamicGraph
from repro.core import ecl_scc
from repro.core.options import engine_options
from repro.device import A100, VirtualDevice
from repro.dynamic import (
    DynamicCheckpoint,
    EdgeLog,
    UnionFind,
    UpdateReport,
    generate_edge_log,
    replay,
)
from repro.errors import (
    AlgorithmError,
    GraphFormatError,
    GraphValidationError,
    VerificationError,
)
from repro.faults import FaultPlan
from repro.graph import cycle_graph, path_graph, random_gnm
from repro.trace import Tracer


def cold_labels(src, dst, n):
    return ecl_scc(CSRGraph.from_edges(src, dst, n)).labels


# ----------------------------------------------------------------------
# basics: the mutable handle
# ----------------------------------------------------------------------
class TestDynamicGraphBasics:
    def test_query_matches_cold_solve_statically(self):
        g = random_gnm(50, 150, seed=1)
        dg = DynamicGraph(g)
        res = dg.query()
        assert np.array_equal(res.labels, ecl_scc(g).labels)
        assert res.num_sccs == ecl_scc(g).num_sccs

    def test_insert_merges_components(self):
        dg = DynamicGraph(path_graph(3))  # 0 -> 1 -> 2, three SCCs
        assert dg.num_sccs == 3
        report = dg.insert_edges([2], [0])
        assert dg.num_sccs == 1
        assert report.op == "insert"
        assert report.merged_components >= 1
        assert np.array_equal(dg.labels, np.array([2, 2, 2]))

    def test_intra_component_insert_is_noop(self):
        dg = DynamicGraph(cycle_graph(4))
        labels_before = dg.labels.copy()
        report = dg.insert_edges([0], [2])
        assert report.merged_components == 0
        assert report.labels_changed == 0
        assert np.array_equal(dg.labels, labels_before)

    def test_delete_splits_component(self):
        dg = DynamicGraph(cycle_graph(4))
        assert dg.num_sccs == 1
        report = dg.delete_edges([1], [2])
        assert dg.num_sccs == 4
        assert report.op == "delete"
        assert report.split_components >= 1
        assert np.array_equal(dg.labels, np.arange(4))

    def test_redundant_delete_keeps_component(self):
        # 2-cycle plus a chord: deleting the chord cannot split
        dg = DynamicGraph(CSRGraph.from_edges([0, 1, 0], [1, 0, 1], 2))
        report = dg.delete_edges([0], [1])
        assert dg.num_sccs == 1
        assert report.labels_changed == 0

    def test_inter_component_delete_is_label_noop(self):
        dg = DynamicGraph(path_graph(3))
        labels_before = dg.labels.copy()
        report = dg.delete_edges([0], [1])
        assert np.array_equal(dg.labels, labels_before)
        assert report.invalidated == 0

    def test_self_loop_delete_never_splits(self):
        dg = DynamicGraph(CSRGraph.from_edges([0, 0, 1], [0, 1, 0], 2))
        report = dg.delete_edges([0], [0])
        assert dg.num_sccs == 1
        assert report.split_components == 0

    def test_insert_delete_reinsert_no_stale_dag_edge(self):
        # regression (hypothesis): the condensation cache is built lazily
        # during the first inter-component insert; the inserted edges must
        # not be counted twice (once by the build, once by add_pairs), or
        # deleting one later leaves a phantom DAG edge that merges
        # components on the next insert
        dg = DynamicGraph(CSRGraph.from_edges([0], [0], 7))
        dg.insert_edges([6], [0])   # builds the cache during this insert
        dg.delete_edges([6], [0])   # must fully retire the DAG edge
        dg.insert_edges([0], [6])   # 0 -> 6 alone must NOT merge {0, 6}
        assert dg.num_sccs == 7
        cold = ecl_scc(dg.graph())
        assert np.array_equal(dg.labels, cold.labels)

    def test_generation_and_history(self):
        dg = DynamicGraph(cycle_graph(3))
        assert dg.generation == 0
        dg.insert_edges([0], [2])
        dg.delete_edges([0], [2])
        assert dg.generation == 2
        assert [r.op for r in dg.history] == ["insert", "delete"]
        assert all(isinstance(r, UpdateReport) for r in dg.history)
        assert [r.generation for r in dg.history] == [1, 2]

    def test_update_cost_is_charged(self):
        dg = DynamicGraph(cycle_graph(8))
        before = dg.model_seconds()
        dg.insert_edges([0], [4])
        mid = dg.model_seconds()
        dg.delete_edges([0], [4])
        assert before < mid < dg.model_seconds()

    def test_apply_deletions_then_insertions(self):
        dg = DynamicGraph(cycle_graph(4))
        reports = dg.apply(deletions=([1], [2]), insertions=([2], [1]))
        assert [r.op for r in reports] == ["delete", "insert"]
        # 0->1, 2->3->0 survive; 2->1 replaces 1->2: cycle broken
        assert np.array_equal(
            dg.labels, cold_labels([0, 2, 3, 2], [1, 3, 0, 1], 4)
        )

    def test_labels_shortcut_skips_cold_solve(self):
        g = cycle_graph(5)
        known = ecl_scc(g).labels
        dg = DynamicGraph(g, labels=known)
        assert dg.device.counters.kernel_launches == 0
        assert np.array_equal(dg.query().labels, known)

    def test_labels_shortcut_validates_size(self):
        with pytest.raises(GraphValidationError):
            DynamicGraph(cycle_graph(5), labels=np.zeros(3, dtype=np.int64))

    def test_unknown_engine_rejected(self):
        with pytest.raises(AlgorithmError, match="valid choices"):
            DynamicGraph(cycle_graph(3), engine="warp")

    def test_batch_validation(self):
        dg = DynamicGraph(cycle_graph(3))
        with pytest.raises(GraphFormatError, match="equal length"):
            dg.insert_edges([0, 1], [2])
        with pytest.raises(GraphFormatError, match="endpoints"):
            dg.insert_edges([0], [7])
        with pytest.raises(GraphFormatError, match="endpoints"):
            dg.delete_edges([-1], [0])

    def test_add_vertices(self):
        dg = DynamicGraph(cycle_graph(3))
        new = dg.add_vertices(2)
        assert list(new) == [3, 4]
        assert dg.num_vertices == 5
        assert np.array_equal(dg.labels[3:], new)  # own singleton SCCs
        dg.insert_edges([2, 3], [3, 0])  # thread them into the cycle
        assert dg.num_sccs == 2
        assert np.array_equal(
            dg.labels, cold_labels([0, 1, 2, 2, 3], [1, 2, 0, 3, 0], 5)
        )

    def test_graph_snapshot_is_current(self):
        dg = DynamicGraph(path_graph(3))
        dg.insert_edges([2], [0])
        snap = dg.graph()
        assert snap.num_edges == 3
        assert np.array_equal(dg.labels, ecl_scc(snap).labels)


# ----------------------------------------------------------------------
# multiset deletion semantics
# ----------------------------------------------------------------------
class TestMultisetDeletes:
    def test_duplicate_edge_single_delete_keeps_cycle(self):
        dg = DynamicGraph(
            CSRGraph.from_edges([0, 1, 1], [1, 0, 0], 2)  # 1->0 twice
        )
        dg.delete_edges([1], [0])
        assert dg.num_edges == 2
        assert dg.num_sccs == 1  # the second instance still closes it

    def test_deleting_both_instances_splits(self):
        dg = DynamicGraph(CSRGraph.from_edges([0, 1, 1], [1, 0, 0], 2))
        dg.delete_edges([1, 1], [0, 0])
        assert dg.num_edges == 1
        assert dg.num_sccs == 2

    def test_nonresident_delete_raises(self):
        dg = DynamicGraph(cycle_graph(3))
        with pytest.raises(GraphValidationError, match="cannot delete"):
            dg.delete_edges([0], [2])

    def test_overdraw_raises_and_batch_is_atomic(self):
        dg = DynamicGraph(cycle_graph(3))
        with pytest.raises(GraphValidationError):
            dg.delete_edges([0, 0], [1, 1])
        # the failed batch must not have removed the resident instance
        assert dg.num_edges == 3
        assert dg.generation == 0


# ----------------------------------------------------------------------
# randomized interleaving (seeded, non-hypothesis fast path)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_interleaved_updates_stay_bit_identical(seed):
    rng = np.random.default_rng(seed)
    n = 40
    g = random_gnm(n, 120, seed=seed)
    dg = DynamicGraph(g)
    edges = list(zip(*(a.tolist() for a in g.edges())))
    for _ in range(20):
        op = rng.integers(0, 3)
        if op == 0 and len(edges) > 5:
            take = rng.choice(len(edges), size=int(rng.integers(1, 4)),
                              replace=False)
            batch = [edges[i] for i in take]
            for i in sorted(map(int, take), reverse=True):
                edges.pop(i)
            dg.delete_edges([e[0] for e in batch], [e[1] for e in batch])
        elif op == 1:
            k = int(rng.integers(1, 4))
            s = rng.integers(0, n, size=k)
            d = rng.integers(0, n, size=k)
            edges += list(zip(s.tolist(), d.tolist()))
            dg.insert_edges(s, d)
        else:
            dg.query()
        assert np.array_equal(
            dg.labels,
            cold_labels([e[0] for e in edges], [e[1] for e in edges], n),
        )


# ----------------------------------------------------------------------
# the property test: any interleaving, engine x backend, under faults
# ----------------------------------------------------------------------
@st.composite
def update_scripts(draw, max_n=16, max_m=40, max_steps=6):
    """A base digraph plus a script of insert/delete/query steps.

    Deletions are drawn as indices into the resident edge list at
    execution time (modulo its current size), so every delete targets a
    resident edge by construction.
    """
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    steps = []
    for _ in range(draw(st.integers(0, max_steps))):
        kind = draw(st.sampled_from(["insert", "delete", "query"]))
        if kind == "insert":
            k = draw(st.integers(1, 4))
            steps.append((
                "insert",
                draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k)),
                draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k)),
            ))
        elif kind == "delete":
            k = draw(st.integers(1, 3))
            steps.append((
                "delete",
                draw(st.lists(st.integers(0, 10 ** 6), min_size=k, max_size=k)),
                None,
            ))
        else:
            steps.append(("query", None, None))
    return n, src, dst, steps


@pytest.mark.parametrize(
    "engine,backend,faulted",
    [
        ("frontier", "frontier", False),
        ("frontier", "dense", False),
        ("sync", "dense", False),
        ("async", "frontier", False),
        ("frontier", "frontier", True),
        ("adaptive", "frontier", False),
        ("adaptive", "dense", False),
        ("adaptive", "frontier", True),
    ],
)
@given(script=update_scripts())
@settings(max_examples=25, deadline=None)
def test_property_interleaving_bit_identical(engine, backend, faulted, script):
    n, src, dst, steps = script
    faults = FaultPlan.monotone(7) if faulted else None
    opts = engine_options(engine)
    dg = DynamicGraph(
        CSRGraph.from_edges(src, dst, n),
        engine=engine, backend=backend, faults=faults,
    )
    edges = list(zip(src, dst))
    for kind, a, b in steps:
        if kind == "insert":
            edges += list(zip(a, b))
            dg.insert_edges(a, b)
        elif kind == "delete":
            if not edges:
                continue
            picks = sorted({i % len(edges) for i in a}, reverse=True)
            batch = [edges[i] for i in picks]
            for i in picks:
                edges.pop(i)
            dg.delete_edges([e[0] for e in batch], [e[1] for e in batch])
        else:
            dg.query()
        cold = ecl_scc(
            CSRGraph.from_edges(
                [e[0] for e in edges], [e[1] for e in edges], n
            ),
            options=opts,
        )
        assert np.array_equal(dg.labels, cold.labels)


# ----------------------------------------------------------------------
# checkpoint / restore
# ----------------------------------------------------------------------
class TestCheckpointRestore:
    def test_restore_rolls_back_state(self):
        dg = DynamicGraph(cycle_graph(5))
        ck = dg.checkpoint()
        assert isinstance(ck, DynamicCheckpoint)
        dg.delete_edges([0], [1])
        dg.insert_edges([0, 2], [3, 0])
        dg.restore(ck)
        assert dg.generation == 0
        assert dg.num_edges == 5
        assert dg.num_sccs == 1
        assert len(dg.history) == 0
        assert np.array_equal(dg.labels, ecl_scc(cycle_graph(5)).labels)

    def test_replay_after_restore_is_counter_identical(self):
        dg = DynamicGraph(random_gnm(30, 90, seed=4), tracer=Tracer())
        ck = dg.checkpoint()
        dg.insert_edges([1, 2], [3, 4])
        dg.delete_edges([1], [3])
        first = dg.device.counters.snapshot()
        dg.restore(ck)
        dg.insert_edges([1, 2], [3, 4])
        dg.delete_edges([1], [3])
        assert dg.device.counters.snapshot() == first

    def test_restore_truncates_ledger(self):
        tr = Tracer()
        dg = DynamicGraph(cycle_graph(6), tracer=tr)
        ck = dg.checkpoint()
        dg.delete_edges([2], [3])
        dg.restore(ck)
        assert len(dg.device.ledger.records) == ck.ledger_len

    def test_checkpoint_nbytes(self):
        dg = DynamicGraph(cycle_graph(4))
        ck = dg.checkpoint()
        assert ck.nbytes == ck.src.nbytes + ck.dst.nbytes + ck.labels.nbytes


# ----------------------------------------------------------------------
# ledger / trace integration
# ----------------------------------------------------------------------
def test_update_kernels_attributed_to_dynamic_spans():
    tr = Tracer()
    dg = DynamicGraph(cycle_graph(8), tracer=tr)
    dg.insert_edges([0], [4])
    dg.delete_edges([0], [4])
    dg.query()
    roots = {r.path[0] for r in tr.trace.launches if r.path}
    assert {"dynamic-cold-solve", "dynamic-insert",
            "dynamic-delete", "dynamic-query"} <= roots


# ----------------------------------------------------------------------
# edge logs and replay
# ----------------------------------------------------------------------
class TestEdgeLog:
    def test_generation_is_deterministic(self):
        g = random_gnm(30, 80, seed=2)
        a = generate_edge_log(g, events=50, seed=11)
        b = generate_edge_log(g, events=50, seed=11)
        for field in ("time", "op", "src", "dst"):
            assert np.array_equal(getattr(a, field), getattr(b, field))
        c = generate_edge_log(g, events=50, seed=12)
        assert not (
            np.array_equal(a.op, c.op)
            and np.array_equal(a.src, c.src)
            and np.array_equal(a.dst, c.dst)
        )

    def test_timestamps_nondecreasing_and_validated(self):
        g = random_gnm(20, 40, seed=0)
        log = generate_edge_log(g, events=30, seed=0)
        assert np.all(np.diff(log.time) >= 0)
        with pytest.raises(GraphFormatError, match="nondecreasing"):
            EdgeLog(
                base=g,
                time=np.array([2, 1]), op=np.array([1, 1], dtype=np.int8),
                src=np.array([0, 0]), dst=np.array([1, 1]),
            )
        with pytest.raises(GraphFormatError, match="equal length"):
            EdgeLog(
                base=g,
                time=np.array([1]), op=np.array([1, 1], dtype=np.int8),
                src=np.array([0, 0]), dst=np.array([1, 1]),
            )

    def test_insert_fraction_extremes(self):
        g = random_gnm(20, 40, seed=0)
        all_ins = generate_edge_log(g, events=20, seed=0, insert_fraction=1.0)
        assert np.all(all_ins.op == 1)
        all_del = generate_edge_log(g, events=20, seed=0, insert_fraction=0.0)
        assert np.all(all_del.op == -1)

    def test_batches_cover_the_log(self):
        g = random_gnm(20, 40, seed=0)
        log = generate_edge_log(g, events=25, seed=0)
        spans = list(log.batches(10))
        assert spans == [(0, 10), (10, 20), (20, 25)]
        with pytest.raises(GraphFormatError):
            list(log.batches(0))

    def test_final_graph_matches_event_application(self):
        g = random_gnm(25, 70, seed=3)
        log = generate_edge_log(g, events=40, seed=3)
        final = log.final_graph()
        deltas = int(np.sum(log.op))
        assert final.num_edges == g.num_edges + deltas


class TestReplay:
    def test_replay_verifies_bit_identity(self):
        g = random_gnm(64, 256, seed=5)
        log = generate_edge_log(g, events=40, seed=5)
        result = replay(log, batch_size=8, engine="frontier",
                        device=A100, verify=True)
        assert result.verified
        assert result.num_events == 40
        assert len(result.batches) == 5
        assert result.incremental_seconds > 0
        assert result.recompute_seconds > 0
        final = ecl_scc(log.final_graph())
        assert result.final_num_sccs == final.num_sccs

    def test_replay_under_monotone_faults(self):
        g = random_gnm(40, 140, seed=6)
        log = generate_edge_log(g, events=24, seed=6)
        result = replay(
            log, batch_size=6, engine="frontier", device=A100,
            faults=FaultPlan.monotone(3), verify=True,
        )
        assert result.verified

    def test_net_effect_cancellation(self):
        # an edge inserted then deleted inside one batch must cancel
        g = cycle_graph(4)
        log = EdgeLog(
            base=g,
            time=np.array([1, 2]),
            op=np.array([1, -1], dtype=np.int8),
            src=np.array([0, 0]),
            dst=np.array([2, 2]),
        )
        result = replay(log, batch_size=2, device=A100, verify=True)
        assert result.batches[0].inserts == 1
        assert result.batches[0].deletes == 1
        assert result.final_num_sccs == 1

    def test_speedup_definition(self):
        g = random_gnm(48, 160, seed=8)
        log = generate_edge_log(g, events=20, seed=8)
        result = replay(log, batch_size=5, device=A100)
        assert result.speedup == pytest.approx(
            result.recompute_seconds / result.incremental_seconds
        )


# ----------------------------------------------------------------------
# union-find
# ----------------------------------------------------------------------
class TestUnionFind:
    def test_roots_carry_max_label(self):
        labels = np.array([5, 9, 2, 7])
        uf = UnionFind(labels)
        uf.union(0, 2)
        uf.union(1, 3)
        roots = uf.roots()
        assert labels[roots[0]] == 5 and labels[roots[2]] == 5
        assert labels[roots[1]] == 9 and labels[roots[3]] == 9
        assert uf.merges == 2

    def test_union_is_idempotent(self):
        uf = UnionFind(np.array([1, 2]))
        assert uf.union(0, 1)
        assert not uf.union(0, 1)
        assert uf.merges == 1
