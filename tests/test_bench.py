"""Tests for the benchmark harness (timing, throughput, runners, render)."""

import numpy as np
import pytest

from repro.bench import (
    RUNTIME_COLUMNS,
    format_seconds,
    geometric_mean,
    median_time,
    render_series,
    render_table,
    run_algorithm,
    runtime_table,
    throughput_figures,
    throughput_mvs,
)
from repro.device import A100, XEON_6226R
from repro.errors import AlgorithmError
from repro.graph import cycle_graph, scc_ladder


class TestTiming:
    def test_median_of_fast_runs(self):
        t = median_time(lambda: None, repeats=5)
        assert t.repeats == 5
        assert t.min_s <= t.median_s <= t.max_s

    def test_slow_run_reduces_repeats(self):
        import time

        calls = []
        t = median_time(
            lambda: (calls.append(1), time.sleep(0.02))[0],
            repeats=9,
            slow_threshold_s=0.01,
        )
        assert t.repeats == 3

    def test_very_slow_single_run(self):
        import time

        t = median_time(lambda: time.sleep(0.02), repeats=9, slow_threshold_s=0.001)
        assert t.repeats == 1


class TestThroughput:
    def test_mvs(self):
        assert throughput_mvs(2_000_000, 2.0) == pytest.approx(1.0)

    def test_mvs_invalid(self):
        with pytest.raises(ValueError):
            throughput_mvs(10, 0.0)

    def test_geomean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_geomean_empty(self):
        assert geometric_mean([]) == 0.0

    def test_geomean_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestRunners:
    def test_run_ecl(self):
        g = cycle_graph(50).with_name("c50")
        r = run_algorithm(g, "ecl-scc", A100, verify=True)
        assert r.algorithm == "ecl-scc"
        assert r.device == "A100"
        assert r.graph_name == "c50"
        assert r.num_sccs == 1
        assert r.model_seconds > 0
        assert r.model_throughput_mvs > 0
        assert r.wall is None

    def test_run_with_wall_timing(self):
        g = scc_ladder(20)
        r = run_algorithm(g, "gpu-scc", A100, time_wall=True, repeats=3)
        assert r.wall is not None
        assert r.wall_throughput_mvs > 0

    @pytest.mark.parametrize(
        "algo", ["ecl-scc", "ecl-scc-minmax", "gpu-scc", "ispan", "hong",
                 "fb", "fb-trim", "tarjan", "kosaraju"],
    )
    def test_all_algorithms_run(self, algo):
        g = scc_ladder(8)
        r = run_algorithm(g, algo, XEON_6226R)
        assert r.num_sccs == 8

    def test_unknown_algorithm(self):
        with pytest.raises(AlgorithmError):
            run_algorithm(cycle_graph(3), "dijkstra", A100)

    def test_oracles_serial_cost(self):
        g = cycle_graph(100)
        r = run_algorithm(g, "tarjan", XEON_6226R)
        assert r.counters["serial_work"] > 0


class TestFormatting:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [30, 0.001]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert all(len(l) == len(lines[1]) for l in lines[1:])

    def test_format_seconds(self):
        assert format_seconds(0.0123) == "0.0123"
        assert format_seconds(123.4) == "123.4"
        assert format_seconds(float("nan")) == "-"

    def test_render_series(self):
        out = render_series({"s1": {"a": 1.0, "b": 2.0}}, title="F")
        assert "F" in out and "a:" in out and "s1" in out
        assert out.count("|") == 2

    def test_render_series_nan(self):
        out = render_series({"s": {"x": float("nan")}})
        assert "-" in out


class TestExperimentPlumbing:
    def test_runtime_table_and_figures(self):
        groups = [("ladder", [scc_ladder(16), scc_ladder(16)])]
        cols = (RUNTIME_COLUMNS[1], RUNTIME_COLUMNS[4])  # ECL A100, iSpan Ryzen
        res = runtime_table(groups, table_name="mini", columns=cols)
        assert len(res.rows) == 1
        assert res.rows[0]["ECL-SCC A100"] > 0
        fig = throughput_figures(res, figure_name="figmini", columns=cols)
        assert "geomean" in fig.series["ECL-SCC A100"]
        assert fig.series["ECL-SCC A100"]["ladder"] > 0
