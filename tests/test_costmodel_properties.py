"""Property tests for the cost model: more work can never cost less."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.device import A100, XEON_6226R, CostModel, KernelCounters

counts = st.integers(min_value=0, max_value=10**9)
COMMON = dict(max_examples=50, deadline=None)


def make(launches, edges, atomics, serial, streamed):
    c = KernelCounters()
    for _ in range(min(launches, 50)):
        c.launch()
    c.kernel_launches = launches
    c.global_barriers = launches
    c.edge_work = edges
    c.bytes_moved = edges * 24
    c.bytes_streamed = streamed
    c.atomics = atomics
    c.serial_work = serial
    return c


@given(counts, counts, counts, counts, counts, counts)
@settings(**COMMON)
def test_monotone_in_every_counter(l1, e1, a1, s1, st1, delta):
    for spec in (A100, XEON_6226R):
        model = CostModel(spec)
        base = model.estimate(make(l1, e1, a1, s1, st1)).total
        for bumped in (
            make(l1 + delta, e1, a1, s1, st1),
            make(l1, e1 + delta, a1, s1, st1),
            make(l1, e1, a1 + delta, s1, st1),
            make(l1, e1, a1, s1 + delta, st1),
            make(l1, e1, a1, s1, st1 + delta),
        ):
            assert model.estimate(bumped).total >= base - 1e-15


@given(counts, counts)
@settings(**COMMON)
def test_nonnegative_and_finite(l1, e1):
    est = CostModel(A100).estimate(make(l1, e1, 0, 0, 0))
    for term in est.as_dict().values():
        assert term >= 0.0
        assert np.isfinite(term)


@given(st.floats(min_value=1e3, max_value=1e12))
@settings(max_examples=30, deadline=None)
def test_cache_boost_never_hurts(ws):
    c = make(10, 10**7, 0, 0, 0)
    small = CostModel(A100).estimate(c, working_set_bytes=min(ws, 1e6)).total
    large = CostModel(A100).estimate(c, working_set_bytes=max(ws, 1e9)).total
    assert small <= large + 1e-15
