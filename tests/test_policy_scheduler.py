"""Policy registry, adaptive scheduler, and decision-log determinism.

The PR-7 contract under test: Phase-2 propagation is a per-round policy
choice (``repro.engine.policy``), the adaptive scheduler picks the
policy each round from backend-invariant statistics
(``repro.engine.scheduler``), labels stay bit-identical to the dense
engine for *any* policy schedule, and the decision log replays exactly
across backends, under monotone fault plans, and through
checkpoint/restore.
"""

import numpy as np
import pytest

from repro.baselines import tarjan_scc
from repro.bench import run_algorithm
from repro.core import Signatures, ecl_scc, engine_options
from repro.core.propagation import EdgeGrouping
from repro.device.executor import VirtualDevice
from repro.device.spec import A100
from repro.engine.policy import (
    DEFAULT_POLICIES,
    PropagationPolicy,
    RoundState,
    RoundStats,
    get_policy,
    policy_names,
    register_policy,
)
from repro.engine.primitives import build_vertex_incidence
from repro.engine.scheduler import (
    DENSITY_THRESHOLD,
    LAUNCH_BOUND_RATIO,
    AdaptiveScheduler,
    PolicyDecision,
)
from repro.errors import AlgorithmError
from repro.faults import FaultPlan
from repro.graph import CSRGraph, cycle_graph, random_gnm, scc_ladder
from repro.trace import Tracer


# ---------------------------------------------------------------------------
# registry + direction axis
# ---------------------------------------------------------------------------

class TestPolicyRegistry:
    def test_shipped_policies(self):
        assert set(policy_names()) >= {"dense", "frontier", "dense-push"}
        assert DEFAULT_POLICIES == ("dense", "frontier")

    def test_direction_axis(self):
        assert get_policy("dense").direction == "pull"
        assert get_policy("frontier").direction == "push"
        # dense-push: dense coverage, push direction — the axis is a
        # registration choice, not a driver special case
        assert get_policy("dense-push").direction == "push"

    def test_unknown_policy_raises_listing_registry(self):
        with pytest.raises(AlgorithmError, match="dense"):
            get_policy("warp")

    def test_register_validates(self):
        bad = PropagationPolicy()
        with pytest.raises(AlgorithmError):
            register_policy(bad)
        bad.name = "sideways"
        bad.direction = "diagonal"
        with pytest.raises(AlgorithmError):
            register_policy(bad)

    def test_round_cost_orders_by_density(self):
        """Sparse frontiers favor the frontier policy, saturated ones the
        dense sweep — the closed form behind DENSITY_THRESHOLD."""
        dense, frontier = get_policy("dense"), get_policy("frontier")
        ws = 1e9  # out of cache, both sides on raw DRAM bandwidth
        sparse = RoundStats(frontier_size=4, degree_sum=16,
                            worklist_edges=10_000, touched=8_000,
                            num_vertices=5_000, compress=False)
        saturated = RoundStats(frontier_size=5_000, degree_sum=20_000,
                               worklist_edges=10_000, touched=8_000,
                               num_vertices=5_000, compress=False)
        assert frontier.round_cost(sparse, A100, ws) < \
            dense.round_cost(sparse, A100, ws)
        assert dense.round_cost(saturated, A100, ws) < \
            frontier.round_cost(saturated, A100, ws)
        assert 0.0 < DENSITY_THRESHOLD < 1.0


# ---------------------------------------------------------------------------
# fixed-point schedule independence (any per-round policy mix)
# ---------------------------------------------------------------------------

def _run_policy_schedule(graph: CSRGraph, schedule, *, compress=True):
    """Drive raw policy rounds to a fixed point; return the signatures.

    *schedule* maps the round number to a policy name — the adversarial
    version of what the adaptive scheduler does.
    """
    n = graph.num_vertices
    src, dst = graph.edges()
    sigs = Signatures.identity(n)
    grouping = EdgeGrouping.build(src, dst)
    indptr, edge_ids = build_vertex_incidence(src, dst, n)
    dev = VirtualDevice(A100)
    state = RoundState(
        sigs=sigs, grouping=grouping, indptr=indptr, edge_ids=edge_ids,
        frontier=np.arange(n, dtype=np.int64), num_vertices=n,
        compress=compress,
    )
    for rounds in range(3 * n + 16):
        if not state.frontier.size:
            break
        policy = get_policy(schedule(rounds))
        changed_v = policy.run_round(state, dev)
        state.frontier = np.flatnonzero(changed_v)
    else:
        pytest.fail("no fixed point within the round bound")
    return state.sigs


@pytest.mark.parametrize("compress", (False, True))
def test_any_policy_schedule_reaches_same_fixed_point(compress):
    """dense / frontier / dense-push / alternating mixes all converge to
    bit-identical signatures — the monotone-join argument the adaptive
    engine's label guarantee rests on."""
    schedules = {
        "all-dense": lambda r: "dense",
        "all-frontier": lambda r: "frontier",
        "all-dense-push": lambda r: "dense-push",
        "alternating": lambda r: ("dense", "frontier", "dense-push")[r % 3],
    }
    for g in (cycle_graph(17), scc_ladder(6), random_gnm(60, 240, seed=2)):
        ref = None
        for name, schedule in schedules.items():
            sigs = _run_policy_schedule(g, schedule, compress=compress)
            if ref is None:
                ref = sigs
            else:
                assert np.array_equal(sigs.sig_in, ref.sig_in), name
                assert np.array_equal(sigs.sig_out, ref.sig_out), name


def test_dense_push_labels_through_scheduler():
    """A scheduler restricted to dense-push still yields Tarjan labels
    (the policy is registered but outside DEFAULT_POLICIES)."""
    sched_policies = ("dense-push",)
    for g in (cycle_graph(9), random_gnm(40, 150, seed=4)):
        sched = AdaptiveScheduler(
            A100, num_vertices=g.num_vertices, num_edges=g.num_edges,
            policies=sched_policies,
        )
        assert [p.name for p in sched.policies] == ["dense-push"]
        # full adaptive run restricted via the registry-level check:
        # dense-push rounds mixed into an ecl run stay correct
        sigs = _run_policy_schedule(g, lambda r: "dense-push")
        ref = _run_policy_schedule(g, lambda r: "dense")
        assert np.array_equal(sigs.sig_in, ref.sig_in)


# ---------------------------------------------------------------------------
# adaptive engine: labels + launch parity + performance gate
# ---------------------------------------------------------------------------

class TestAdaptiveEngine:
    def test_labels_match_tarjan_and_dense(self, all_graphs):
        for g in all_graphs:
            adaptive = ecl_scc(g, options=engine_options("adaptive"))
            dense = ecl_scc(g, options=engine_options("async"))
            assert np.array_equal(adaptive.labels, dense.labels)
            assert np.array_equal(adaptive.labels, tarjan_scc(g))

    def test_decision_log_on_result(self):
        g = random_gnm(80, 300, seed=1)
        res = ecl_scc(g, options=engine_options("adaptive"))
        assert res.decision_log is not None and len(res.decision_log) > 0
        assert all(isinstance(d, PolicyDecision) for d in res.decision_log)
        # static engines carry no log
        assert ecl_scc(g, options=engine_options("frontier")).decision_log is None

    def test_adaptive_beats_or_matches_static(self):
        """The bench gate's invariant at test scale: adaptive total
        model seconds <= min(dense, frontier) + 2% per workload."""
        for g in (scc_ladder(8), random_gnm(120, 500, seed=3),
                  cycle_graph(65)):
            seconds = {}
            for engine in ("async", "frontier", "adaptive"):
                dev = VirtualDevice(A100)
                ecl_scc(g, options=engine_options(engine), device=dev)
                seconds[engine] = dev.estimate(
                    g.num_vertices, g.num_edges, signatures=2
                ).total
            best_static = min(seconds["async"], seconds["frontier"])
            assert seconds["adaptive"] <= best_static * 1.02, seconds

    def test_scan_is_charged_device_work(self):
        """The density scan is honest: a scanning decision moves the
        device counters (vertex work + bytes), not just Python state."""
        g = random_gnm(50, 80, seed=0)  # sparse: scheduler keeps scanning
        res = ecl_scc(g, options=engine_options("adaptive"))
        scanned = [d for d in res.decision_log if d.scanned]
        assert scanned, "expected at least one scanned decision"
        dev = VirtualDevice(A100)
        sched = AdaptiveScheduler(A100, num_vertices=8, num_edges=8)
        before = dev.counters.snapshot()
        sched.decide(
            dev, frontier=np.array([0, 1]),
            indptr=np.zeros(9, dtype=np.int64), worklist_edges=8,
            touched=8, num_vertices=8, compress=True, outer=1, round_no=1,
        )
        after = dev.counters.snapshot()
        assert after["vertex_work"] - before["vertex_work"] == 2
        assert after["bytes_moved"] > before["bytes_moved"]
        assert after["kernel_launches"] == before["kernel_launches"]


# ---------------------------------------------------------------------------
# scheduler unit behavior
# ---------------------------------------------------------------------------

class TestSchedulerUnit:
    def _decide(self, sched, dev, *, frontier, round_no=1, recovery=False):
        n = sched.num_vertices
        return sched.decide(
            dev, frontier=frontier,
            indptr=np.zeros(n + 1, dtype=np.int64),
            worklist_edges=4, touched=4, num_vertices=n, compress=False,
            outer=1, round_no=round_no, recovery=recovery,
        )

    def test_initial_ratio_is_zero_and_first_round_scans(self):
        sched = AdaptiveScheduler(A100, num_vertices=4, num_edges=4)
        assert sched.launch_ratio == 0.0
        dev = VirtualDevice(A100)
        self._decide(sched, dev, frontier=np.array([0, 1]))
        assert sched.decisions[0].scanned

    def test_lock_needs_round_evidence(self):
        """Launch-only tallies must NOT engage lock mode: before the
        first accounted round the ratio is degenerately 1.0."""
        sched = AdaptiveScheduler(A100, num_vertices=4, num_edges=4)
        sched.note_launches(5)
        assert sched.launch_ratio == 1.0
        dev = VirtualDevice(A100)
        self._decide(sched, dev, frontier=np.array([0]))
        assert sched.decisions[-1].scanned  # still scanned: no evidence

    def test_lock_engages_on_launch_bound_evidence(self):
        sched = AdaptiveScheduler(A100, num_vertices=4, num_edges=4)
        sched.note_launches(100)
        sched._round_s = 1e-9  # tiny accounted round: ratio ~ 1.0
        assert sched.launch_ratio >= LAUNCH_BOUND_RATIO
        dev = VirtualDevice(A100)
        decision = self._decide(sched, dev, frontier=np.array([0]))
        assert decision.name == "frontier"
        assert not sched.decisions[-1].scanned

    def test_recovery_forces_frontier_without_tally_update(self):
        sched = AdaptiveScheduler(A100, num_vertices=4, num_edges=4)
        dev = VirtualDevice(A100)
        before = (sched._launch_s, sched._round_s)
        d = self._decide(sched, dev, frontier=np.array([0, 1]), recovery=True)
        assert d.name == "frontier"
        rec = sched.decisions[-1]
        assert rec.recovery and not rec.scanned
        assert (sched._launch_s, sched._round_s) == before

    def test_account_round_is_snapshot_delta_based(self):
        sched = AdaptiveScheduler(A100, num_vertices=100, num_edges=400)
        dev = VirtualDevice(A100)
        before = dev.counters.snapshot()
        dev.work(edges=400, bytes_per_edge=24, streamed_bytes=400 * 16)
        sched.account_round(before, dev.counters.snapshot())
        assert sched._round_s > 0.0

    def test_snapshot_restore_roundtrip(self):
        sched = AdaptiveScheduler(A100, num_vertices=8, num_edges=8)
        dev = VirtualDevice(A100)
        self._decide(sched, dev, frontier=np.array([0, 1]))
        sched.note_launches(2, blocks=4)
        snap = sched.state_snapshot()
        self._decide(sched, dev, frontier=np.array([2]), round_no=2)
        sched.note_launches(9)
        assert len(sched.decisions) == 2
        sched.restore_state(snap)
        assert len(sched.decisions) == 1
        assert sched.state_snapshot() == snap

    def test_decision_to_dict(self):
        sched = AdaptiveScheduler(A100, num_vertices=8, num_edges=8)
        dev = VirtualDevice(A100)
        self._decide(sched, dev, frontier=np.array([0, 1]))
        d = sched.decisions[0].to_dict()
        assert {"outer", "round", "policy", "frontier_size", "density",
                "avg_degree", "launch_ratio", "scanned",
                "recovery"} <= set(d)


# ---------------------------------------------------------------------------
# decision-log determinism: goldens, backends, faults, checkpoints
# ---------------------------------------------------------------------------

def _flickr():
    from repro.graph.suite import powerlaw_suite

    return powerlaw_suite(names=["flickr"], scale=1 / 32)[0][0]


def _toroid_o0():
    from repro.mesh.suite import small_mesh_suite

    grp = list(small_mesh_suite(names=["toroid-hex"], num_ordinates=1))[0]
    return grp.graphs[0]


def _decision_key(log, *, include_recovery=False):
    return [
        (d.outer, d.round, d.policy, d.scanned)
        for d in log
        if include_recovery or not d.recovery
    ]


#: golden per-round decision log on the flickr stand-in (A100, defaults):
#: dense opener, one locked round, dense while the frontier saturates,
#: then frontier for the long sparse tail and the second iteration.
GOLDEN_FLICKR_DECISIONS = (
    [(1, 1, "dense", True), (1, 2, "frontier", False),
     (1, 3, "dense", True), (1, 4, "dense", True), (1, 5, "dense", True)]
    + [(1, r, "frontier", True) for r in range(6, 28)]
    + [(2, 1, "frontier", True), (2, 2, "frontier", True)]
)

#: compact golden for toroid-hex:o0 (289 decisions): the dense opener,
#: the per-policy totals, and the scan/lock split.
GOLDEN_TOROID_SUMMARY = {
    "decisions": 289,
    "first": (1, 1, "dense", True),
    "picks": {"dense": 1, "frontier": 288},
    "scanned": 17,
}


class TestDecisionDeterminism:
    def test_flickr_golden_log_across_backends(self):
        g = _flickr()
        logs = {}
        for backend in ("dense", "frontier"):
            res = run_algorithm(
                g, "ecl-scc", A100, engine="adaptive", backend=backend
            )
            logs[backend] = _decision_key(res.decision_log)
        assert logs["dense"] == GOLDEN_FLICKR_DECISIONS
        assert logs["frontier"] == GOLDEN_FLICKR_DECISIONS

    def test_toroid_golden_summary_across_backends(self):
        g = _toroid_o0()
        keys = {}
        for backend in ("dense", "frontier"):
            res = run_algorithm(
                g, "ecl-scc", A100, engine="adaptive", backend=backend
            )
            key = _decision_key(res.decision_log)
            picks: "dict[str, int]" = {}
            for _, _, policy, _ in key:
                picks[policy] = picks.get(policy, 0) + 1
            assert {
                "decisions": len(key),
                "first": key[0],
                "picks": picks,
                "scanned": sum(1 for k in key if k[3]),
            } == GOLDEN_TOROID_SUMMARY
            keys[backend] = key
        assert keys["dense"] == keys["frontier"]

    def test_monotone_fault_plan_preserves_main_decisions(self):
        """Fault-injected re-propagation (recovery=True decisions) must
        not perturb the main per-round decision sequence."""
        plan = FaultPlan.monotone(seed=5, rate=0.8)
        for g in (scc_ladder(8), random_gnm(60, 220, seed=3), _flickr()):
            clean = run_algorithm(g, "ecl-scc", A100, engine="adaptive")
            faulted = run_algorithm(
                g, "ecl-scc", A100, engine="adaptive", faults=plan
            )
            assert np.array_equal(faulted.labels, clean.labels)
            assert _decision_key(faulted.decision_log) == _decision_key(
                clean.decision_log
            )
            recoveries = [d for d in faulted.decision_log if d.recovery]
            if faulted.fault_report.faults_injected:
                assert all(
                    d.policy == "frontier" and not d.scanned
                    for d in recoveries
                )

    def test_chaos_crash_restore_replays_decisions(self):
        """A crash-restore truncates the decision log with the counters,
        so the completed run's log matches the fault-free run's exactly
        (bit-identical labels and counters are asserted elsewhere)."""
        g = scc_ladder(10)
        clean = run_algorithm(g, "ecl-scc", A100, engine="adaptive")
        chaotic = run_algorithm(
            g, "ecl-scc", A100, engine="adaptive", faults=FaultPlan.chaos(1)
        )
        assert chaotic.fault_report.restores >= 1
        assert np.array_equal(chaotic.labels, clean.labels)
        assert _decision_key(chaotic.decision_log) == _decision_key(
            clean.decision_log
        )

    def test_scheduler_events_in_trace(self):
        g = random_gnm(80, 300, seed=1)
        tr = Tracer()
        res = run_algorithm(g, "ecl-scc", A100, engine="adaptive", tracer=tr)
        trace = tr.finish()
        picks = sum(
            int(ev.value) for ev in trace.events
            if ev.kind == "counter" and ev.name == "scheduler:pick"
        )
        assert picks == len(res.decision_log)
        # per-policy round attrs land on the phase2 spans
        attrs = [
            s.attrs for s in trace.spans if s.name == "phase2-propagate"
        ]
        assert attrs and any(
            "rounds_dense" in a or "rounds_frontier" in a for a in attrs
        )


# ---------------------------------------------------------------------------
# profile + distributed integration
# ---------------------------------------------------------------------------

def test_profile_folds_scheduler_picks():
    from repro.profile import profile_run

    g = random_gnm(100, 400, seed=2)
    tr = Tracer()
    res = run_algorithm(g, "ecl-scc", A100, engine="adaptive", tracer=tr)
    tr.finish()
    report = profile_run(res)
    folded: "dict[str, int]" = {}
    for ph in report.phases:
        for policy, count in ph.decisions.items():
            folded[policy] = folded.get(policy, 0) + count
        assert "decisions" in ph.to_dict()
    by_policy: "dict[str, int]" = {}
    for d in res.decision_log:
        by_policy[d.policy] = by_policy.get(d.policy, 0) + 1
    assert folded == by_policy


def test_distributed_adaptive_matches_static_engines():
    from repro.distributed import block_partition, distributed_ecl_scc
    from repro.distributed.cluster import ClusterSpec

    for g in (random_gnm(120, 480, seed=6), cycle_graph(33)):
        part = block_partition(g, 4)
        spec = ClusterSpec(num_ranks=4)
        results = {
            engine: distributed_ecl_scc(g, part, spec, engine=engine)
            for engine in ("dense", "frontier", "adaptive")
        }
        ref = results["dense"]
        for engine, res in results.items():
            assert np.array_equal(res.labels, ref.labels), engine
            assert res.supersteps == ref.supersteps, engine
        tr = Tracer()
        distributed_ecl_scc(g, part, spec, engine="adaptive", tracer=tr)
        trace = tr.finish()
        assert trace.sum_counter("scheduler:pick") > 0


def test_distributed_adaptive_rejects_unknown_engine():
    from repro.distributed import block_partition, distributed_ecl_scc
    from repro.distributed.cluster import ClusterSpec

    g = cycle_graph(8)
    with pytest.raises(AlgorithmError):
        distributed_ecl_scc(
            g, block_partition(g, 2), ClusterSpec(num_ranks=2),
            engine="warp",
        )
