"""Failure injection: malformed inputs must fail loudly, never corrupt.

Every entry point is fed inconsistent data; the contract is a typed
exception from :mod:`repro.errors` (or a built-in TypeError), never a
silent wrong answer, hang, or segfault-style numpy error.
"""

import numpy as np
import pytest

from repro.core import EclOptions, ecl_scc
from repro.errors import (
    AlgorithmError,
    ConvergenceError,
    DeviceError,
    FaultError,
    FaultPlanError,
    GraphFormatError,
    MeshError,
    RankLossError,
    ReproError,
    VerificationError,
)
from repro.graph import CSRGraph, EdgeList, cycle_graph
from repro.mesh import Mesh, ElementType
from repro.types import NO_VERTEX


class TestGraphInputs:
    def test_indptr_truncated(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 1]), np.array([0, 1]))

    def test_float_edges(self):
        with pytest.raises(TypeError):
            CSRGraph.from_edges(np.array([0.5]), np.array([1.0]))

    def test_negative_vertex_count(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges([0], [1], num_vertices=-5)

    def test_noninteger_vertex_space(self):
        with pytest.raises(GraphFormatError):
            EdgeList([0, 1], [1, 2], num_vertices=1)

    def test_huge_vertex_id(self):
        # IDs beyond the declared space must be rejected, not wrapped
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges([2**40], [0], num_vertices=10)


class TestAlgorithmGuards:
    def test_ecl_iteration_cap(self):
        g = cycle_graph(50)
        opts = EclOptions(max_rounds=2, async_phase2=False, path_compression=False)
        with pytest.raises(ConvergenceError):
            ecl_scc(g, options=opts)

    def test_convergence_error_is_repro_error(self):
        assert issubclass(ConvergenceError, ReproError)
        assert issubclass(ConvergenceError, AlgorithmError)

    def test_verification_error_is_assertionlike(self):
        assert issubclass(VerificationError, AssertionError)

    def test_options_reject_nonsense(self):
        with pytest.raises(AlgorithmError):
            EclOptions(block_edges=-3)


class TestFaultPayloads:
    """Failure exceptions carry structured state, not just messages."""

    def test_convergence_error_payload(self):
        g = cycle_graph(50)
        opts = EclOptions(max_rounds=2, async_phase2=False, path_compression=False)
        with pytest.raises(ConvergenceError) as exc:
            ecl_scc(g, options=opts)
        err = exc.value
        assert err.iterations == 2
        assert err.sig_in is not None and err.sig_in.size == 50
        assert err.sig_out is not None and err.sig_out.size == 50
        assert 0 < err.active_count <= 50
        state = err.partial_state()
        assert state["iterations"] == 2
        assert state["active_count"] == err.active_count

    def test_convergence_error_outer_loop_payload(self):
        g = cycle_graph(30)
        opts = EclOptions(max_outer_iterations=1, remove_scc_edges=False,
                          path_compression=False, async_phase2=False,
                          max_rounds=3)
        with pytest.raises(ConvergenceError) as exc:
            ecl_scc(g, options=opts)
        # either bound may trip first; both must attach progress
        assert exc.value.iterations is not None

    def test_atomic_engine_attaches_payload(self):
        g = cycle_graph(40)
        opts = EclOptions(atomic_phase2=True, max_rounds=2,
                          path_compression=False)
        with pytest.raises(ConvergenceError) as exc:
            ecl_scc(g, options=opts)
        assert exc.value.iterations == 2
        assert exc.value.sig_in is not None

    def test_partial_labels_are_no_vertex_where_unknown(self):
        g = cycle_graph(20)
        opts = EclOptions(max_rounds=1, async_phase2=False,
                          path_compression=False)
        with pytest.raises(ConvergenceError) as exc:
            ecl_scc(g, options=opts)
        labels = exc.value.labels
        if labels is not None:
            assert (labels == NO_VERTEX).all()  # nothing completed yet

    def test_fault_plan_error_is_typed(self):
        from repro import FaultPlan

        with pytest.raises(FaultPlanError):
            FaultPlan(stale_read_rate=2.0)
        assert issubclass(FaultPlanError, FaultError)
        assert issubclass(FaultPlanError, ValueError)
        assert issubclass(RankLossError, FaultError)
        assert issubclass(FaultError, ReproError)

    def test_negative_superstep_is_device_error(self):
        from repro.distributed.cluster import ClusterSpec, VirtualCluster

        cluster = VirtualCluster(ClusterSpec(num_ranks=3))
        with pytest.raises(DeviceError):
            cluster.superstep([1.0, 2.0, -3.0])

    def test_rank_loss_error_payload(self):
        from repro import FaultPlan
        from repro.distributed import block_partition, distributed_ecl_scc
        from repro.graph import random_gnm

        g = random_gnm(30, 90, seed=5)
        plan = FaultPlan(
            seed=0, rank_crash_superstep=1, rank_recover_after=5,
            max_retries=2, failover=False,
        )
        with pytest.raises(RankLossError) as exc:
            distributed_ecl_scc(g, block_partition(g, 3), faults=plan)
        err = exc.value
        assert err.rank == 0
        assert err.retries == 2
        assert err.labels is not None
        assert err.fault_report is not None


class TestMeshInputs:
    def test_wrong_cell_arity(self):
        pts = np.zeros((8, 3))
        with pytest.raises(MeshError):
            Mesh(pts, np.arange(4).reshape(1, 4), ElementType.HEX)

    def test_dangling_node_reference(self):
        pts = np.zeros((3, 2))
        from repro.errors import MeshTopologyError

        with pytest.raises(MeshTopologyError):
            Mesh(pts, np.array([[0, 1, 2, 9]]), ElementType.QUAD)

    def test_nonmanifold_detected(self):
        # three quads sharing one edge
        from repro.mesh import interior_faces
        from repro.errors import MeshTopologyError

        pts = np.array(
            [[0, 0], [1, 0], [1, 1], [0, 1], [2, 0], [2, 1], [1, -1], [0, -1]],
            dtype=float,
        )
        cells = np.array(
            [[0, 1, 2, 3], [1, 4, 5, 2], [1, 2, 5, 4]]  # edge (1,2) thrice
        )
        m = Mesh(pts, cells, ElementType.QUAD)
        with pytest.raises(MeshTopologyError):
            interior_faces(m)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [GraphFormatError, MeshError, AlgorithmError, VerificationError],
    )
    def test_all_catchable_as_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_graph_errors_are_value_errors(self):
        assert issubclass(GraphFormatError, ValueError)
