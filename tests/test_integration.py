"""Integration tests: full pipelines across subsystems."""

import numpy as np
import pytest

from repro.analysis import scc_statistics, verify_labels
from repro.baselines import gpu_scc, ispan_scc, tarjan_scc
from repro.bench import run_algorithm
from repro.core import ecl_scc
from repro.device import A100, TITAN_V, XEON_6226R
from repro.graph import build_powerlaw, permute_random, replicate
from repro.mesh import sweep_graphs, toroid_wedge, torch_hex
from repro.mesh.suite import build_group, SMALL_MESH_SPECS
from repro.sweep import solve_transport_sweep, sweep_schedule


class TestMeshToSweepPipeline:
    def test_full_pipeline_torch(self):
        mesh = torch_hex(2)
        for omega, g in sweep_graphs(mesh, 2):
            res = ecl_scc(g)
            verify_labels(g, res.labels)
            sch = sweep_schedule(g, res.labels)
            assert sch.validate_against(g, res.labels)
            out = solve_transport_sweep(g, sch, res.labels)
            assert out.residual < 1e-9

    def test_wedge_pipeline(self):
        mesh = toroid_wedge(2)
        _, g = sweep_graphs(mesh, 1)[0]
        res = ecl_scc(g)
        verify_labels(g, res.labels)

    def test_suite_group_instantiation(self):
        spec = SMALL_MESH_SPECS[0]  # beam-hex
        grp = build_group(spec, scale=0.1, num_ordinates=2)
        assert grp.name == "beam-hex"
        assert grp.num_ordinates == 2
        for g in grp.graphs:
            s = scc_statistics(g, tarjan_scc(g), with_depth=False)
            assert s.largest_scc == 1  # all-trivial class


class TestCrossAlgorithmConsistency:
    def test_all_codes_on_mesh_graph(self):
        mesh = torch_hex(2)
        _, g = sweep_graphs(mesh, 1)[0]
        truth = tarjan_scc(g)
        assert np.array_equal(ecl_scc(g).labels, truth)
        assert np.array_equal(gpu_scc(g)[0], truth)
        assert np.array_equal(ispan_scc(g)[0], truth)

    def test_all_codes_on_powerlaw(self):
        g, _ = build_powerlaw("web-Google", scale=1 / 256, seed=1)
        truth = tarjan_scc(g)
        assert np.array_equal(ecl_scc(g).labels, truth)
        assert np.array_equal(gpu_scc(g)[0], truth)
        assert np.array_equal(ispan_scc(g)[0], truth)

    def test_id_permutation_invariance(self):
        """SCC partitions are invariant under vertex relabelling."""
        g, _ = build_powerlaw("flickr", scale=1 / 512, seed=0)
        h, mapping = permute_random(g, seed=9)
        lg = ecl_scc(g).labels
        lh = ecl_scc(h).labels
        # vertex v in g corresponds to mapping[v] in h
        from repro.analysis import partitions_equal

        assert partitions_equal(lg, lh[mapping])


class TestPaperShapeClaims:
    """The headline performance relationships, at test scale."""

    def test_ecl_beats_gpuscc_on_mesh(self):
        mesh = toroid_wedge(3)
        _, g = sweep_graphs(mesh, 1)[0]
        ecl = run_algorithm(g, "ecl-scc", A100)
        li = run_algorithm(g, "gpu-scc", A100)
        assert ecl.model_seconds < li.model_seconds / 2

    def test_ecl_gpu_beats_ispan_cpu_on_mesh(self):
        mesh = toroid_wedge(3)
        _, g = sweep_graphs(mesh, 1)[0]
        ecl = run_algorithm(g, "ecl-scc", A100)
        isp = run_algorithm(g, "ispan", XEON_6226R)
        assert ecl.model_seconds < isp.model_seconds / 10

    def test_competitive_on_powerlaw(self):
        """On power-law inputs the gap must be small (within ~4x either
        way), matching §5.1.3's 'on par' claim."""
        g, _ = build_powerlaw("flickr", scale=1 / 64, seed=0)
        ecl = run_algorithm(g, "ecl-scc", A100)
        li = run_algorithm(g, "gpu-scc", A100)
        ratio = ecl.model_seconds / li.model_seconds
        assert 0.1 < ratio < 4.0

    def test_a100_not_slower_than_titanv(self):
        g, _ = build_powerlaw("wikipedia", scale=1 / 128, seed=0)
        t = run_algorithm(g, "ecl-scc", TITAN_V).model_seconds
        a = run_algorithm(g, "ecl-scc", A100).model_seconds
        assert a <= t * 1.01

    def test_expanded_mesh_replication(self):
        """§5.1.4: SCC count scales with the replication factor."""
        mesh = toroid_wedge(2)
        _, g = sweep_graphs(mesh, 1)[0]
        base = ecl_scc(g).num_sccs
        big = replicate(g, 4)
        assert ecl_scc(big).num_sccs == 4 * base
