"""Unit tests for repro.graph.io (MatrixMarket, edge list, DIMACS)."""

import numpy as np
import pytest

from repro.errors import IOFormatError
from repro.graph import (
    CSRGraph,
    cycle_graph,
    random_gnm,
    read_dimacs,
    read_edge_list,
    read_matrix_market,
    write_dimacs,
    write_edge_list,
    write_matrix_market,
)


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path):
        g = random_gnm(30, 80, seed=0)
        p = tmp_path / "g.mtx"
        write_matrix_market(p, g)
        h = read_matrix_market(p)
        assert h.same_structure(g)

    def test_roundtrip_empty(self, tmp_path):
        g = CSRGraph.empty(4)
        p = tmp_path / "e.mtx"
        write_matrix_market(p, g)
        h = read_matrix_market(p)
        assert h.num_vertices == 4
        assert h.num_edges == 0

    def test_symmetric_expansion(self, tmp_path):
        p = tmp_path / "s.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 2\n1 2\n2 3\n"
        )
        g = read_matrix_market(p)
        assert g.num_edges == 4  # both directions

    def test_symmetric_diagonal_once(self, tmp_path):
        p = tmp_path / "d.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "2 2 2\n1 1\n1 2\n"
        )
        g = read_matrix_market(p)
        assert g.num_edges == 3  # self-loop once, off-diagonal twice

    def test_values_ignored(self, tmp_path):
        p = tmp_path / "v.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% comment line\n"
            "2 2 2\n1 2 3.5\n2 1 -1.0\n"
        )
        g = read_matrix_market(p)
        assert g.num_edges == 2

    def test_bad_header(self, tmp_path):
        p = tmp_path / "bad.mtx"
        p.write_text("not a matrix market file\n1 1 0\n")
        with pytest.raises(IOFormatError, match="header"):
            read_matrix_market(p)

    def test_truncated_body(self, tmp_path):
        p = tmp_path / "t.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n"
        )
        with pytest.raises(IOFormatError, match="expected 5"):
            read_matrix_market(p)

    def test_unsupported_format(self, tmp_path):
        p = tmp_path / "a.mtx"
        p.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
        with pytest.raises(IOFormatError):
            read_matrix_market(p)


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        g = random_gnm(25, 60, seed=1)
        p = tmp_path / "g.txt"
        write_edge_list(p, g)
        assert read_edge_list(p).same_structure(g)

    def test_comments_skipped(self, tmp_path):
        p = tmp_path / "c.txt"
        p.write_text("# SNAP style header\n0 1\n1 2\n")
        g = read_edge_list(p)
        assert g.num_edges == 2

    def test_one_based(self, tmp_path):
        p = tmp_path / "ob.txt"
        p.write_text("1 2\n2 3\n")
        g = read_edge_list(p, zero_based=False)
        assert g.num_vertices == 3
        assert g.neighbors(0).tolist() == [1]

    def test_garbage_rejected(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("hello world\n")
        with pytest.raises(IOFormatError):
            read_edge_list(p)

    def test_negative_rejected(self, tmp_path):
        p = tmp_path / "n.txt"
        p.write_text("0 1\n-1 2\n")
        with pytest.raises(IOFormatError, match="negative"):
            read_edge_list(p)


class TestDimacs:
    def test_roundtrip(self, tmp_path):
        g = cycle_graph(9)
        p = tmp_path / "g.gr"
        write_dimacs(p, g)
        assert read_dimacs(p).same_structure(g)

    def test_isolated_vertices_preserved(self, tmp_path):
        g = CSRGraph.from_edges([0], [1], num_vertices=5)
        p = tmp_path / "iso.gr"
        write_dimacs(p, g)
        assert read_dimacs(p).num_vertices == 5

    def test_missing_problem_line(self, tmp_path):
        p = tmp_path / "m.gr"
        p.write_text("c only a comment\n")
        with pytest.raises(IOFormatError, match="problem"):
            read_dimacs(p)

    def test_unexpected_line(self, tmp_path):
        p = tmp_path / "u.gr"
        p.write_text("p sp 2 1\nx nonsense\n")
        with pytest.raises(IOFormatError):
            read_dimacs(p)
