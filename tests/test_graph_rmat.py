"""Unit tests for repro.graph.rmat."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import preferential_attachment_digraph, rmat_graph
from repro.baselines import tarjan_scc


class TestRmat:
    def test_size(self):
        g = rmat_graph(8, 4, seed=0)
        assert g.num_vertices == 256
        assert g.num_edges == 1024

    def test_deterministic(self):
        a = rmat_graph(7, 3, seed=9)
        b = rmat_graph(7, 3, seed=9)
        assert a.same_structure(b)

    def test_seed_changes_graph(self):
        a = rmat_graph(7, 3, seed=1)
        b = rmat_graph(7, 3, seed=2)
        assert not a.same_structure(b)

    def test_heavy_tail(self):
        g = rmat_graph(12, 8, seed=0, permute=False)
        deg = g.out_degree()
        # R-MAT with default skew produces hubs far above the mean
        assert deg.max() > 8 * deg.mean()

    def test_permute_preserves_degree_multiset(self):
        g1 = rmat_graph(8, 4, seed=5, permute=False)
        g2 = rmat_graph(8, 4, seed=5, permute=True)
        assert sorted(g1.out_degree().tolist()) == sorted(g2.out_degree().tolist())

    def test_dedup_option(self):
        g = rmat_graph(6, 16, seed=0, dedup=True)
        s, d = g.edges()
        keys = s * g.num_vertices + d
        assert np.unique(keys).size == keys.size

    def test_scale_bounds(self):
        with pytest.raises(GraphFormatError):
            rmat_graph(0, 4)
        with pytest.raises(GraphFormatError):
            rmat_graph(29, 4)

    def test_probability_bounds(self):
        with pytest.raises(GraphFormatError):
            rmat_graph(5, 4, a=0.9, b=0.2, c=0.2)


class TestPreferentialAttachment:
    def test_size(self):
        g = preferential_attachment_digraph(500, 3, seed=0)
        assert g.num_vertices == 500
        assert g.num_edges >= 3 * 499  # base edges plus reciprocations

    def test_reciprocation_creates_nontrivial_sccs(self):
        g = preferential_attachment_digraph(800, 4, back_prob=0.5, seed=1)
        _, counts = np.unique(tarjan_scc(g), return_counts=True)
        assert counts.max() > 10

    def test_no_backedges_means_dag(self):
        g = preferential_attachment_digraph(300, 3, back_prob=0.0, seed=2)
        labels = tarjan_scc(g)
        assert np.unique(labels).size == 300

    def test_args_validated(self):
        with pytest.raises(GraphFormatError):
            preferential_attachment_digraph(1, 3)
        with pytest.raises(GraphFormatError):
            preferential_attachment_digraph(10, 0)
