"""Systematic engine-equivalence matrices.

Every Phase-2 engine (sync / async / atomic / frontier) under every
combination of path compression and persistent threads must produce
identical labels on a shared corpus — the strongest regression net for
the propagation code.

The backend x algorithm matrix below extends the net across the shared
``repro.engine`` primitive layer: every algorithm must produce Tarjan's
labels under every registered accounting backend, and under the default
dense backend the kernel-launch counts must stay bit-identical to the
golden counts captured on the pre-engine tree (an A100 run over the same
corpus) — any accidental change to the accounting shows up here.
"""

import itertools

import numpy as np
import pytest

from repro.baselines import tarjan_scc
from repro.bench.runners import _DISPATCH
from repro.core import EclOptions, ecl_scc, engine_options
from repro.device.spec import A100
from repro.engine import backend_names
from repro.graph import permute_random, cycle_graph

ENGINES = ("sync", "async", "atomic", "frontier", "adaptive")
FLAGS = list(itertools.product((False, True), repeat=2))  # compression, persistent


def make_options(engine: str, compression: bool, persistent: bool) -> EclOptions:
    return engine_options(
        engine,
        EclOptions(
            path_compression=compression,
            persistent_threads=persistent,
        ),
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("compression,persistent", FLAGS)
def test_engine_matrix_labels(engine, compression, persistent, all_graphs):
    opts = make_options(engine, compression, persistent)
    for g in all_graphs:
        res = ecl_scc(g, options=opts)
        assert np.array_equal(res.labels, tarjan_scc(g)), (
            engine, compression, persistent, g,
        )


@pytest.mark.parametrize("engine", ENGINES)
def test_engines_with_randomized_ids(engine, random_graphs):
    opts = make_options(engine, True, True)
    for g in random_graphs[:6]:
        res = ecl_scc(g, options=opts, randomize_ids=True, seed=3)
        assert np.array_equal(res.labels, tarjan_scc(g))


# kernel-launch counts per (algorithm, corpus graph) captured before the
# engine refactor (A100; corpus = corpus_small() + corpus_random())
GOLDEN_LAUNCHES = {
    "ecl-scc": [0, 2, 2, 4, 5, 7, 5, 5, 5, 5, 7, 5, 10, 7, 15, 10, 12, 12,
                12, 10, 12, 12, 12, 10, 10, 12, 10],
    "ecl-scc-minmax": [0, 2, 2, 4, 5, 5, 5, 5, 6, 20, 14, 5, 16, 13, 21, 18,
                       20, 14, 14, 23, 18, 15, 19, 17, 17, 14, 17],
    "gpu-scc": [0, 4, 4, 6, 8, 4, 8, 8, 10, 38, 12, 8, 55, 10, 38, 36, 54,
                25, 65, 23, 61, 24, 54, 30, 50, 25, 55],
    "ispan": [0, 4, 4, 5, 7, 4, 7, 7, 9, 37, 12, 7, 55, 10, 38, 31, 54, 24,
              65, 22, 56, 23, 54, 29, 50, 24, 55],
    "hong": [0, 4, 4, 8, 6, 4, 10, 10, 12, 40, 12, 10, 52, 10, 38, 36, 52,
             27, 61, 25, 59, 26, 54, 40, 57, 27, 55],
    "multistep": [0, 4, 4, 8, 6, 4, 10, 10, 12, 40, 12, 10, 20, 10, 26, 34,
                  35, 27, 36, 25, 31, 26, 42, 31, 39, 27, 42],
    "coloring": [0, 3, 3, 3, 5, 3, 5, 5, 7, 35, 3, 5, 5, 3, 13, 25, 24, 23,
                 25, 28, 20, 23, 31, 23, 18, 25, 33],
    "fb": [0, 0, 12, 0, 5, 4, 5, 5, 7, 35, 60, 5, 50, 85, 34, 38, 48, 32,
           49, 59, 49, 37, 45, 49, 54, 43, 51],
    "fb-trim": [0, 5, 5, 7, 7, 5, 9, 9, 11, 39, 13, 9, 64, 11, 32, 35, 42,
                26, 44, 23, 49, 28, 57, 38, 46, 28, 44],
}


# frontier-engine launch counts on the same corpus (A100, dense
# backend): one fused compaction(+re-init) launch plus one drain launch
# per non-empty Phase 2 — element-wise at or below the dense ecl-scc
# golden counts above, which is the engine's whole point
GOLDEN_FRONTIER_LAUNCHES = [0, 2, 2, 4, 4, 6, 4, 4, 4, 4, 6, 4, 8, 6, 12,
                            8, 10, 10, 10, 8, 10, 10, 10, 8, 8, 10, 8]


@pytest.mark.parametrize("engine", ("frontier", "adaptive"))
def test_frontier_golden_launches(engine, all_graphs):
    """Frontier AND adaptive reproduce the frontier golden launch counts.

    The adaptive engine's launch parity is structural: dense rounds are
    in-kernel work inside the drain (no extra launch), and the density
    scan is charged as work, so whichever policies the scheduler picks,
    the launch count equals the static frontier engine's exactly.
    """
    from repro.device.executor import VirtualDevice

    assert len(GOLDEN_FRONTIER_LAUNCHES) == len(all_graphs)
    opts = engine_options(engine)
    for i, g in enumerate(all_graphs):
        dev = VirtualDevice(A100)
        res = ecl_scc(g, options=opts, device=dev)
        launches = res.device.counters.kernel_launches
        assert launches == GOLDEN_FRONTIER_LAUNCHES[i], (i, launches)
        assert launches <= GOLDEN_LAUNCHES["ecl-scc"][i], i


@pytest.mark.parametrize("backend", backend_names())
@pytest.mark.parametrize("algorithm", sorted(GOLDEN_LAUNCHES))
def test_backend_algorithm_matrix(algorithm, backend, all_graphs):
    """Labels match Tarjan under every backend; launch counts match the
    pre-refactor goldens under the default dense backend."""
    golden = GOLDEN_LAUNCHES[algorithm]
    assert len(golden) == len(all_graphs), "corpus drifted; recapture goldens"
    fn = _DISPATCH[algorithm]
    for i, g in enumerate(all_graphs):
        res = fn(g, A100, None, None, backend)
        assert np.array_equal(res.labels, tarjan_scc(g).labels), (
            algorithm, backend, i,
        )
        if backend == "dense":
            launches = res.device.counters.kernel_launches
            assert launches == golden[i], (algorithm, i, launches, golden[i])


class TestRandomizeIds:
    def test_labels_refer_to_original_ids(self):
        g = cycle_graph(12)
        res = ecl_scc(g, randomize_ids=True)
        assert (res.labels == 11).all()

    def test_cuts_rounds_on_sequential_cycle(self):
        g = cycle_graph(4096)
        plain = ecl_scc(g)
        rand = ecl_scc(g, randomize_ids=True, seed=1)
        assert np.array_equal(plain.labels, rand.labels)
        assert rand.propagation_rounds < plain.propagation_rounds / 5

    def test_seed_determinism(self):
        g, _ = permute_random(cycle_graph(64), seed=0)
        a = ecl_scc(g, randomize_ids=True, seed=7)
        b = ecl_scc(g, randomize_ids=True, seed=7)
        assert a.propagation_rounds == b.propagation_rounds
        assert np.array_equal(a.labels, b.labels)

    def test_permutation_seed_round_trip(self):
        from repro.engine import normalize_labels_to_max

        g, _ = permute_random(cycle_graph(64), seed=0)
        res = ecl_scc(g, randomize_ids=True, seed=7)
        assert res.permutation_seed == 7
        assert ecl_scc(g).permutation_seed is None
        # the recorded seed is enough to reproduce the exact run: rebuild
        # the permutation, run unrandomized, and map the labels back
        permuted, mapping = permute_random(g, res.permutation_seed)
        inner = ecl_scc(permuted)
        assert np.array_equal(
            normalize_labels_to_max(inner.labels[mapping]), res.labels
        )

    def test_trivial_graphs(self):
        from repro.graph import CSRGraph

        res = ecl_scc(CSRGraph.empty(1), randomize_ids=True)
        assert res.labels.tolist() == [0]
        res = ecl_scc(CSRGraph.empty(0), randomize_ids=True)
        assert res.labels.size == 0
