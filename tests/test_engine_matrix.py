"""Systematic engine-equivalence matrix.

Every Phase-2 engine (sync / async / atomic) under every combination of
path compression and persistent threads must produce identical labels on
a shared corpus — the strongest regression net for the propagation code.
"""

import itertools

import numpy as np
import pytest

from repro.baselines import tarjan_scc
from repro.core import EclOptions, ecl_scc
from repro.graph import permute_random, cycle_graph

ENGINES = ("sync", "async", "atomic")
FLAGS = list(itertools.product((False, True), repeat=2))  # compression, persistent


def make_options(engine: str, compression: bool, persistent: bool) -> EclOptions:
    return EclOptions(
        async_phase2=(engine == "async"),
        atomic_phase2=(engine == "atomic"),
        path_compression=compression,
        persistent_threads=persistent,
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("compression,persistent", FLAGS)
def test_engine_matrix_labels(engine, compression, persistent, all_graphs):
    opts = make_options(engine, compression, persistent)
    for g in all_graphs:
        res = ecl_scc(g, options=opts)
        assert np.array_equal(res.labels, tarjan_scc(g)), (
            engine, compression, persistent, g,
        )


@pytest.mark.parametrize("engine", ENGINES)
def test_engines_with_randomized_ids(engine, random_graphs):
    opts = make_options(engine, True, True)
    for g in random_graphs[:6]:
        res = ecl_scc(g, options=opts, randomize_ids=True, seed=3)
        assert np.array_equal(res.labels, tarjan_scc(g))


class TestRandomizeIds:
    def test_labels_refer_to_original_ids(self):
        g = cycle_graph(12)
        res = ecl_scc(g, randomize_ids=True)
        assert (res.labels == 11).all()

    def test_cuts_rounds_on_sequential_cycle(self):
        g = cycle_graph(4096)
        plain = ecl_scc(g)
        rand = ecl_scc(g, randomize_ids=True, seed=1)
        assert np.array_equal(plain.labels, rand.labels)
        assert rand.propagation_rounds < plain.propagation_rounds / 5

    def test_seed_determinism(self):
        g, _ = permute_random(cycle_graph(64), seed=0)
        a = ecl_scc(g, randomize_ids=True, seed=7)
        b = ecl_scc(g, randomize_ids=True, seed=7)
        assert a.propagation_rounds == b.propagation_rounds
        assert np.array_equal(a.labels, b.labels)

    def test_trivial_graphs(self):
        from repro.graph import CSRGraph

        res = ecl_scc(CSRGraph.empty(1), randomize_ids=True)
        assert res.labels.tolist() == [0]
        res = ecl_scc(CSRGraph.empty(0), randomize_ids=True)
        assert res.labels.size == 0
