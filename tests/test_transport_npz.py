"""Tests for multi-ordinate transport and the npz graph format."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, IOFormatError
from repro.graph import cycle_graph, random_gnm, read_npz, write_npz
from repro.mesh import beam_hex, star, toroid_hex
from repro.sweep import TransportProblem, TransportSolution, solve_transport


class TestTransport:
    def test_converges_on_cyclic_mesh(self):
        sol = solve_transport(
            TransportProblem(toroid_hex(2), num_ordinates=4, sigma_s=0.5)
        )
        assert sol.flux_residual < 1e-10
        assert np.all(sol.scalar_flux > 0)
        assert len(sol.num_sccs_per_ordinate) == 4
        assert sol.scc_detect_model_seconds > 0

    def test_no_scattering_one_pass(self):
        sol = solve_transport(
            TransportProblem(beam_hex(2), num_ordinates=4, sigma_s=0.0)
        )
        assert sol.source_iterations <= 2

    def test_more_scattering_more_iterations(self):
        lo = solve_transport(
            TransportProblem(star(4), num_ordinates=4, sigma_s=0.2)
        )
        hi = solve_transport(
            TransportProblem(star(4), num_ordinates=4, sigma_s=1.2)
        )
        assert hi.source_iterations > lo.source_iterations

    def test_flux_bounds(self):
        """Provable pointwise bounds: q/sigma_t <= phi <= q/(sigma_t -
        sigma_s - coupling*max_in_degree) for the model solver."""
        p = TransportProblem(beam_hex(2), num_ordinates=4, sigma_s=0.5)
        sol = solve_transport(p)
        lo = 1.0 / p.sigma_t
        max_in = 3  # beam-hex sweep graphs have in-degree <= 3
        hi = 1.0 / (p.sigma_t - p.sigma_s - p.coupling * max_in)
        assert sol.scalar_flux.min() >= lo - 1e-12
        assert sol.scalar_flux.max() <= hi + 1e-12

    def test_scattering_ratio_validated(self):
        with pytest.raises(ConvergenceError):
            TransportProblem(beam_hex(1), sigma_t=1.0, sigma_s=1.5)

    def test_schedule_depths_reported(self):
        sol = solve_transport(
            TransportProblem(beam_hex(2), num_ordinates=2, sigma_s=0.0)
        )
        assert all(d >= 1 for d in sol.schedule_depths)

    def test_tight_budget_raises(self):
        with pytest.raises(ConvergenceError, match="source iteration"):
            solve_transport(
                TransportProblem(star(3), num_ordinates=2, sigma_s=1.5,
                                 sigma_t=1.6),
                max_source_iterations=2,
            )


class TestNpz:
    def test_roundtrip(self, tmp_path):
        g = random_gnm(60, 150, seed=4).with_name("rt")
        p = tmp_path / "g.npz"
        write_npz(p, g)
        h = read_npz(p)
        assert h.same_structure(g)
        assert h.name == "rt"

    def test_roundtrip_empty(self, tmp_path):
        from repro.graph import CSRGraph

        p = tmp_path / "e.npz"
        write_npz(p, CSRGraph.empty(5))
        assert read_npz(p).num_vertices == 5

    def test_bad_file(self, tmp_path):
        p = tmp_path / "junk.npz"
        np.savez(p, foo=np.arange(3))
        with pytest.raises(IOFormatError):
            read_npz(p)

    def test_cli_npz_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        p = tmp_path / "c.npz"
        write_npz(p, cycle_graph(9))
        assert main(["scc", str(p), "--verify"]) == 0
        assert "SCCs:             1" in capsys.readouterr().out
