"""Unit tests for repro.graph.edgelist.EdgeList."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import CSRGraph, EdgeList


class TestConstruction:
    def test_basic(self):
        wl = EdgeList([0, 1], [1, 2])
        assert wl.num_edges == 2
        assert wl.num_vertices == 3

    def test_explicit_vertex_count(self):
        wl = EdgeList([0], [1], num_vertices=9)
        assert wl.num_vertices == 9

    def test_mismatched(self):
        with pytest.raises(GraphFormatError):
            EdgeList([0, 1], [1])

    def test_out_of_range(self):
        with pytest.raises(GraphFormatError):
            EdgeList([0], [4], num_vertices=2)

    def test_from_graph_roundtrip(self):
        g = CSRGraph.from_edges([2, 0, 1], [0, 1, 2])
        wl = EdgeList.from_graph(g)
        assert wl.to_graph().same_structure(g)

    def test_empty(self):
        wl = EdgeList.empty(4)
        assert len(wl) == 0
        assert wl.num_vertices == 4


class TestOperations:
    def test_select(self):
        wl = EdgeList([0, 1, 2], [1, 2, 0])
        out = wl.select(np.array([True, False, True]))
        assert out.src.tolist() == [0, 2]

    def test_select_bad_mask(self):
        wl = EdgeList([0], [1])
        with pytest.raises(GraphFormatError):
            wl.select(np.array([1, 0]))
        with pytest.raises(GraphFormatError):
            wl.select(np.array([True, False]))

    def test_reversed(self):
        wl = EdgeList([0, 1], [1, 2]).reversed()
        assert wl.src.tolist() == [1, 2]
        assert wl.dst.tolist() == [0, 1]

    def test_concatenate(self):
        a = EdgeList([0], [1], num_vertices=3)
        b = EdgeList([1], [2], num_vertices=3)
        c = a.concatenate(b)
        assert c.num_edges == 2

    def test_concatenate_mismatched_space(self):
        a = EdgeList([0], [1], num_vertices=2)
        b = EdgeList([0], [1], num_vertices=3)
        with pytest.raises(GraphFormatError):
            a.concatenate(b)

    def test_dedup(self):
        wl = EdgeList([0, 0, 1], [1, 1, 0]).dedup()
        assert wl.num_edges == 2

    def test_sorted_by_src(self):
        wl = EdgeList([2, 0, 1], [0, 1, 2]).sorted_by_src()
        assert wl.src.tolist() == [0, 1, 2]

    def test_sorted_by_dst(self):
        wl = EdgeList([2, 0, 1], [0, 1, 2]).sorted_by_dst()
        assert wl.dst.tolist() == [0, 1, 2]

    def test_arrays_view(self):
        wl = EdgeList([0], [1])
        s, d = wl.arrays()
        assert s is wl.src and d is wl.dst
