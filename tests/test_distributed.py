"""Tests for the virtual distributed-memory substrate."""

import numpy as np
import pytest

from repro.baselines import tarjan_scc
from repro.distributed import (
    ClusterSpec,
    Partition,
    VirtualCluster,
    block_partition,
    distributed_ecl_scc,
    distributed_fbtrim,
    random_partition,
)
from repro.errors import ConvergenceError, DeviceError, GraphValidationError
from repro.graph import CSRGraph, cycle_graph, path_graph, planted_scc_graph, scc_ladder
from repro.mesh import sweep_graphs, toroid_hex


class TestPartition:
    def test_block_sizes_balanced(self):
        g = cycle_graph(10)
        p = block_partition(g, 3)
        sizes = p.rank_sizes()
        assert sizes.sum() == 10
        assert sizes.max() - sizes.min() <= 1

    def test_block_cut_small_on_path(self):
        g = path_graph(100)
        p = block_partition(g, 4)
        assert p.num_cut_edges == 3  # one cut per slab boundary

    def test_random_cut_larger(self):
        g = path_graph(500)
        b = block_partition(g, 8)
        r = random_partition(g, 8, seed=1)
        assert r.num_cut_edges > 5 * b.num_cut_edges

    def test_single_rank_no_cut(self):
        g = cycle_graph(20)
        p = block_partition(g, 1)
        assert p.num_cut_edges == 0
        assert p.edge_cut_fraction() == 0.0

    def test_invalid_ranks(self):
        with pytest.raises(GraphValidationError):
            block_partition(cycle_graph(4), 0)

    def test_owner_validation(self):
        g = cycle_graph(4)
        with pytest.raises(GraphValidationError):
            Partition.__new__  # direct construction not exercised; use _build path
            from repro.distributed.partition import _build

            _build(g, np.array([0, 0, 9, 0]), 2)


class TestCluster:
    def test_superstep_accounting(self):
        c = VirtualCluster(ClusterSpec(num_ranks=4))
        c.superstep(np.array([100.0, 200, 50, 0]), messages=np.array([1, 2, 0, 0]),
                    bytes_out=np.array([16, 32, 0, 0]))
        assert c.supersteps == 1
        assert c.total_messages == 3
        assert c.total_bytes == 48
        # latency term uses the max over ranks
        assert c.latency_seconds == pytest.approx(2 * 2e-6)
        assert c.estimated_seconds > 0

    def test_scalar_broadcast(self):
        c = VirtualCluster(ClusterSpec(num_ranks=2))
        c.superstep(10.0, messages=1, bytes_out=8)
        assert c.total_messages == 2  # one per rank

    def test_spec_validation(self):
        with pytest.raises(DeviceError):
            ClusterSpec(num_ranks=0)
        with pytest.raises(DeviceError):
            ClusterSpec(num_ranks=2, alpha_us=0)

    def test_summary_keys(self):
        c = VirtualCluster(ClusterSpec(num_ranks=2))
        assert set(c.summary()) >= {"ranks", "supersteps", "estimated_s"}


class TestDistributedCorrectness:
    @pytest.mark.parametrize("ranks", [1, 2, 4, 7])
    def test_ecl_matches_tarjan(self, ranks, random_graphs):
        for g in random_graphs[:6]:
            p = block_partition(g, ranks)
            res = distributed_ecl_scc(g, p)
            assert np.array_equal(res.labels, tarjan_scc(g)), (ranks, g)

    @pytest.mark.parametrize("ranks", [1, 3, 5])
    def test_fbtrim_matches_tarjan(self, ranks, random_graphs):
        for g in random_graphs[:6]:
            p = block_partition(g, ranks)
            res = distributed_fbtrim(g, p)
            assert np.array_equal(res.labels, tarjan_scc(g)), (ranks, g)

    def test_partition_independence(self):
        g, _ = planted_scc_graph([4, 2, 6, 1, 3], extra_dag_edges=8, seed=3)
        a = distributed_ecl_scc(g, block_partition(g, 4))
        b = distributed_ecl_scc(g, random_partition(g, 4, seed=9))
        assert np.array_equal(a.labels, b.labels)

    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_frontier_reuse_is_a_pure_work_optimization(self, ranks, random_graphs):
        # same labels, supersteps, and halo messages as the dense sweep;
        # strictly-no-worse BSP critical path (skipped edges are the
        # quiescent ones, so the iterates are identical round by round)
        for g in random_graphs[:6]:
            p = block_partition(g, ranks)
            dense = distributed_ecl_scc(g, p)
            front = distributed_ecl_scc(g, p, frontier=True)
            assert np.array_equal(front.labels, dense.labels)
            assert front.supersteps == dense.supersteps
            assert front.cluster.total_messages == dense.cluster.total_messages
            assert (
                front.cluster.estimated_seconds
                <= dense.cluster.estimated_seconds + 1e-15
            )

    def test_empty_graph(self):
        g = CSRGraph.empty(0)
        res = distributed_ecl_scc(g, block_partition(g, 2))
        assert res.num_sccs == 0

    def test_rank_mismatch_rejected(self):
        g = cycle_graph(6)
        p = block_partition(g, 2)
        with pytest.raises(ConvergenceError):
            distributed_ecl_scc(g, p, ClusterSpec(num_ranks=3))
        with pytest.raises(ConvergenceError):
            distributed_fbtrim(g, p, ClusterSpec(num_ranks=3))


class TestDistributedCosts:
    def test_random_partition_costs_more_communication(self):
        g = scc_ladder(300)
        a = distributed_ecl_scc(g, block_partition(g, 8))
        b = distributed_ecl_scc(g, random_partition(g, 8, seed=2))
        assert b.cluster.total_messages > a.cluster.total_messages

    def test_ecl_fewer_supersteps_than_fb_on_deep_mesh(self):
        """The headline: FB pays a superstep per BFS level and per residual
        task (~DAG depth in total); ECL pays one per propagation round.
        On a deep mesh the synchronization-count gap is enormous, while
        per-superstep ECL ships a wider halo — the latency/volume
        trade-off the scaling benchmark quantifies."""
        mesh = toroid_hex(3)
        _, g = sweep_graphs(mesh, 1)[0]
        p = block_partition(g, 8)
        ecl = distributed_ecl_scc(g, p)
        fb = distributed_fbtrim(g, p)
        assert np.array_equal(ecl.labels, fb.labels)
        assert ecl.supersteps < fb.supersteps / 10
        # estimated times stay within the same regime (no runaway)
        assert ecl.estimated_seconds < 5 * fb.estimated_seconds

    def test_more_ranks_more_messages_same_result(self):
        g = cycle_graph(256)
        r2 = distributed_ecl_scc(g, block_partition(g, 2))
        r8 = distributed_ecl_scc(g, block_partition(g, 8))
        assert np.array_equal(r2.labels, r8.labels)
        assert r8.cluster.total_messages >= r2.cluster.total_messages
