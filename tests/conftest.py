"""Shared fixtures and graph corpora for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    complete_digraph,
    cycle_graph,
    dag_chain_of_cliques,
    grid_dag,
    path_graph,
    planted_scc_graph,
    random_gnm,
    scc_ladder,
)


def corpus_small() -> "list[CSRGraph]":
    """Hand-built graphs covering structural corner cases."""
    return [
        CSRGraph.empty(0),
        CSRGraph.empty(1),
        CSRGraph.empty(5),
        CSRGraph.from_adjacency([[0]]),                   # single self-loop
        CSRGraph.from_adjacency([[1], [0]]),              # 2-cycle
        CSRGraph.from_adjacency([[1], []]),               # single edge
        CSRGraph.from_adjacency([[1, 1], [0]]),           # duplicate edges
        CSRGraph.from_adjacency([[0, 1], [1, 0]]),        # loops + 2-cycle
        cycle_graph(3),
        cycle_graph(17),
        path_graph(9),
        complete_digraph(5),
        scc_ladder(6),
        grid_dag(4, 5),
        dag_chain_of_cliques(5, 3, seed=0),
    ]


def corpus_random(count: int = 6) -> "list[CSRGraph]":
    out = []
    for seed in range(count):
        out.append(random_gnm(40 + 10 * seed, 100 + 30 * seed, seed=seed))
        g, _ = planted_scc_graph(
            [3, 1, 5, 2, 7, 1, 1, 4], extra_dag_edges=10, seed=seed
        )
        out.append(g)
    return out


@pytest.fixture(scope="session")
def small_graphs():
    return corpus_small()


@pytest.fixture(scope="session")
def random_graphs():
    return corpus_random()


@pytest.fixture(scope="session")
def all_graphs(small_graphs, random_graphs):
    return small_graphs + random_graphs


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
