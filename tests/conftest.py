"""Shared fixtures and graph corpora for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, planted_scc_graph, random_gnm
from repro.graph.suite import engine_corpus


def corpus_small() -> "list[CSRGraph]":
    """Hand-built graphs covering structural corner cases.

    Delegates to :func:`repro.graph.suite.engine_corpus` (the canonical
    27-graph definition shared with the ``repro bench engines`` gate):
    the first 15 entries are the hand-built corner cases.
    """
    return [g for _, g in engine_corpus()[:15]]


def corpus_random(count: int = 6) -> "list[CSRGraph]":
    if count == 6:
        # the canonical seeded tail of the shared engine corpus
        return [g for _, g in engine_corpus()[15:]]
    out = []
    for seed in range(count):
        out.append(random_gnm(40 + 10 * seed, 100 + 30 * seed, seed=seed))
        g, _ = planted_scc_graph(
            [3, 1, 5, 2, 7, 1, 1, 4], extra_dag_edges=10, seed=seed
        )
        out.append(g)
    return out


@pytest.fixture(scope="session")
def small_graphs():
    return corpus_small()


@pytest.fixture(scope="session")
def random_graphs():
    return corpus_random()


@pytest.fixture(scope="session")
def all_graphs(small_graphs, random_graphs):
    return small_graphs + random_graphs


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
