"""Property-based tests for the mesh machinery."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import tarjan_scc
from repro.graph import dag_depth
from repro.mesh import (
    boundary_faces,
    build_sweep_graph,
    hex_to_tets,
    hex_to_wedges,
    interior_faces,
    mesh_quality,
    refine_uniform,
    structured_hex_grid,
)

dims = st.integers(min_value=1, max_value=4)
COMMON = dict(max_examples=25, deadline=None)


@given(dims, dims, dims)
@settings(**COMMON)
def test_grid_face_count_formula(a, b, c):
    m = structured_hex_grid((a, b, c))
    expect = (a - 1) * b * c + a * (b - 1) * c + a * b * (c - 1)
    assert interior_faces(m).num_faces == expect


@given(dims, dims, dims)
@settings(**COMMON)
def test_grid_boundary_formula(a, b, c):
    m = structured_hex_grid((a, b, c))
    assert boundary_faces(m).num_faces == 2 * (a * b + b * c + c * a)


@given(dims, dims, dims)
@settings(**COMMON)
def test_interior_plus_boundary_counts_all(a, b, c):
    m = structured_hex_grid((a, b, c))
    # every hex has 6 faces; each interior face is shared by 2
    assert 2 * interior_faces(m).num_faces + boundary_faces(m).num_faces == 6 * a * b * c


@given(dims, dims, dims)
@settings(max_examples=15, deadline=None)
def test_refinement_counts(a, b, c):
    m = structured_hex_grid((a, b, c))
    r = refine_uniform(m)
    assert r.num_elements == 8 * m.num_elements
    assert r.num_points == (2 * a + 1) * (2 * b + 1) * (2 * c + 1)
    assert mesh_quality(r).inverted_elements == 0


@given(dims, dims, dims)
@settings(max_examples=15, deadline=None)
def test_splits_conforming_and_valid(a, b, c):
    m = structured_hex_grid((a, b, c))
    for split in (hex_to_tets, hex_to_wedges):
        s = split(m)
        interior_faces(s)  # raises on non-manifold
        assert mesh_quality(s).inverted_elements == 0


def _generic_component():
    # axis-aligned (near-zero-component) ordinates are genuinely
    # degenerate for axis-aligned grids: the dot products are exact zeros
    # plus floating noise, so edge directions become arbitrary.  The
    # library's ordinate sets avoid axis alignment for the same reason.
    return st.one_of(
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=-1.0, max_value=-0.05),
    )


@given(dims, dims, dims, _generic_component(), _generic_component(), _generic_component())
@settings(max_examples=20, deadline=None)
def test_straight_grid_sweep_is_acyclic(a, b, c, ox, oy, oz):
    """Any *generic* ordinate over a straight box grid yields an acyclic
    sweep graph whose edge count equals the interior face count."""
    norm = np.sqrt(ox * ox + oy * oy + oz * oz)
    omega = np.asarray([ox, oy, oz]) / norm
    m = structured_hex_grid((a, b, c))
    g = build_sweep_graph(m, omega)
    labels = tarjan_scc(g)
    assert np.unique(labels).size == g.num_vertices
    assert g.num_edges == interior_faces(m).num_faces


@given(dims, dims, dims)
@settings(max_examples=15, deadline=None)
def test_sweep_depth_bounded_by_manhattan_diameter(a, b, c):
    """A straight grid's sweep DAG depth is at most a+b+c-2 (the Manhattan
    diameter in elements) plus one."""
    m = structured_hex_grid((a, b, c))
    omega = np.asarray([0.62, 0.54, 0.57])
    omega = omega / np.linalg.norm(omega)
    g = build_sweep_graph(m, omega)
    labels = tarjan_scc(g)
    assert dag_depth(g, labels) <= (a - 1) + (b - 1) + (c - 1) + 1
