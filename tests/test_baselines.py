"""Tests for the oracles, trims, reach primitives, and comparison codes."""

import numpy as np
import pytest

from repro.baselines import (
    active_degrees,
    colored_fb_rounds,
    fb_scc,
    fbtrim_scc,
    frontier_expand,
    gpu_scc,
    hong_scc,
    ispan_scc,
    kosaraju_scc,
    masked_bfs,
    normalize_labels_to_max,
    tarjan_scc,
    trim1,
    trim2,
    trim3,
)
from repro.device import A100, XEON_6226R, VirtualDevice
from repro.graph import (
    CSRGraph,
    complete_digraph,
    cycle_graph,
    disjoint_union,
    path_graph,
    scc_ladder,
)
from repro.types import NO_VERTEX, VERTEX_DTYPE


class TestOracles:
    def test_tarjan_kosaraju_agree(self, all_graphs):
        for g in all_graphs:
            assert np.array_equal(tarjan_scc(g), kosaraju_scc(g)), g

    def test_tarjan_cycle(self):
        assert (tarjan_scc(cycle_graph(5)) == 4).all()

    def test_tarjan_path(self):
        assert tarjan_scc(path_graph(4)).tolist() == [0, 1, 2, 3]

    def test_tarjan_deep_graph_no_recursion_limit(self):
        # 50k-vertex path: a recursive DFS would blow the stack
        g = path_graph(50_000)
        labels = tarjan_scc(g)
        assert labels[-1] == 49_999

    def test_normalize_labels(self):
        out = normalize_labels_to_max(np.array([7, 7, 3, 3, 9]))
        assert out.tolist() == [1, 1, 3, 3, 4]

    def test_normalize_empty(self):
        assert normalize_labels_to_max(np.array([], dtype=np.int64)).size == 0


class TestTrims:
    def test_active_degrees_respect_mask(self):
        g = cycle_graph(4)
        active = np.array([True, True, False, True])
        ind, outd = active_degrees(g, active)
        assert outd[1] == 0  # 1 -> 2 is dead (2 inactive)
        assert ind[3] == 0   # 2 -> 3 is dead

    def test_trim1_peels_path(self):
        g = path_graph(6)
        active = np.ones(6, dtype=bool)
        labels = np.full(6, NO_VERTEX, dtype=VERTEX_DTYPE)
        removed, rounds = trim1(g, active, labels, VirtualDevice(A100))
        assert removed == 6
        assert not active.any()
        assert labels.tolist() == [0, 1, 2, 3, 4, 5]
        assert rounds >= 2  # peeling takes multiple rounds on a path

    def test_trim1_leaves_cycle(self):
        g = cycle_graph(5)
        active = np.ones(5, dtype=bool)
        labels = np.full(5, NO_VERTEX, dtype=VERTEX_DTYPE)
        removed, _ = trim1(g, active, labels, VirtualDevice(A100))
        assert removed == 0
        assert active.all()

    def test_trim2_isolated_pair(self):
        g = CSRGraph.from_edges([0, 1], [1, 0])
        active = np.ones(2, dtype=bool)
        labels = np.full(2, NO_VERTEX, dtype=VERTEX_DTYPE)
        n = trim2(g, active, labels, VirtualDevice(A100))
        assert n == 1
        assert labels.tolist() == [1, 1]

    def test_trim2_skips_pair_with_external_edge(self):
        g = CSRGraph.from_edges([0, 1, 0], [1, 0, 2], num_vertices=3)
        active = np.ones(3, dtype=bool)
        labels = np.full(3, NO_VERTEX, dtype=VERTEX_DTYPE)
        assert trim2(g, active, labels, VirtualDevice(A100)) == 0

    def test_trim3_isolated_triangle(self):
        g = CSRGraph.from_edges([0, 1, 2], [1, 2, 0])
        active = np.ones(3, dtype=bool)
        labels = np.full(3, NO_VERTEX, dtype=VERTEX_DTYPE)
        assert trim3(g, active, labels, VirtualDevice(A100)) == 3
        assert labels.tolist() == [2, 2, 2]

    @pytest.mark.parametrize(
        "edges",
        [
            [(0, 1), (1, 2), (2, 0)],                                  # cycle
            [(0, 1), (1, 2), (2, 0), (1, 0)],                          # +1 chord
            [(0, 1), (1, 2), (2, 0), (1, 0), (2, 1)],                  # +2 chords
            [(0, 1), (1, 2), (2, 0), (1, 0), (2, 1), (0, 2)],          # complete
            [(0, 1), (1, 0), (1, 2), (2, 1)],                          # bidi path
        ],
        ids=["cycle", "chord1", "chord2", "complete", "bidipath"],
    )
    def test_trim3_all_five_patterns(self, edges):
        g = CSRGraph.from_edges([e[0] for e in edges], [e[1] for e in edges], 3)
        active = np.ones(3, dtype=bool)
        labels = np.full(3, NO_VERTEX, dtype=VERTEX_DTYPE)
        assert trim3(g, active, labels, VirtualDevice(A100)) == 3
        assert labels.tolist() == [2, 2, 2]

    def test_trim3_skips_non_scc_triple(self):
        g = CSRGraph.from_edges([0, 1], [1, 2], num_vertices=3)  # open path
        active = np.ones(3, dtype=bool)
        labels = np.full(3, NO_VERTEX, dtype=VERTEX_DTYPE)
        assert trim3(g, active, labels, VirtualDevice(A100)) == 0

    def test_trim3_skips_triple_with_external_edge(self):
        g = CSRGraph.from_edges([0, 1, 2, 0], [1, 2, 0, 3], num_vertices=4)
        active = np.ones(4, dtype=bool)
        labels = np.full(4, NO_VERTEX, dtype=VERTEX_DTYPE)
        assert trim3(g, active, labels, VirtualDevice(A100)) == 0


class TestReach:
    def test_frontier_expand(self):
        g = CSRGraph.from_adjacency([[1, 2], [2], []])
        out = frontier_expand(g, np.array([0, 1]))
        assert sorted(out.tolist()) == [1, 2, 2]

    def test_masked_bfs_levels(self):
        g = path_graph(5)
        dev = VirtualDevice(A100)
        visited, levels = masked_bfs(g, np.array([0]), np.ones(5, bool), dev)
        assert visited.all()
        assert levels == 5  # 4 expansions + final empty check

    def test_masked_bfs_mask(self):
        g = path_graph(5)
        mask = np.array([True, True, False, True, True])
        visited, _ = masked_bfs(g, np.array([0]), mask, VirtualDevice(A100))
        assert visited.tolist() == [True, True, False, False, False]

    def test_masked_bfs_serial_cost(self):
        g = path_graph(10)
        dev = VirtualDevice(XEON_6226R)
        masked_bfs(g, np.array([0]), np.ones(10, bool), dev, serial_level_cost=100)
        assert dev.counters.serial_work >= 900

    def test_colored_fb_full_decomposition(self, all_graphs):
        for g in all_graphs:
            labels = np.full(g.num_vertices, NO_VERTEX, dtype=VERTEX_DTYPE)
            active = np.ones(g.num_vertices, dtype=bool)
            colored_fb_rounds(g, active, labels, VirtualDevice(A100))
            assert np.array_equal(labels, tarjan_scc(g)), g


class TestComparisonCodes:
    @pytest.mark.parametrize(
        "algo", [fb_scc, fbtrim_scc, gpu_scc, ispan_scc, hong_scc],
        ids=["fb", "fbtrim", "gpu_scc", "ispan", "hong"],
    )
    def test_matches_tarjan(self, algo, all_graphs):
        for g in all_graphs:
            labels, _ = algo(g)
            assert np.array_equal(labels, tarjan_scc(g)), g

    def test_gpu_scc_launches_grow_with_depth(self):
        shallow = disjoint_union([complete_digraph(4)] * 8)
        deep = scc_ladder(64)
        _, dev_s = gpu_scc(shallow, device=A100)
        _, dev_d = gpu_scc(deep, device=A100)
        assert dev_d.counters.kernel_launches > dev_s.counters.kernel_launches

    def test_ispan_serial_work_on_deep_graphs(self):
        g = scc_ladder(100)
        _, dev = ispan_scc(g, device=XEON_6226R)
        assert dev.counters.serial_work > 0

    def test_fb_pivot_first(self):
        g = cycle_graph(7)
        labels, _ = fb_scc(g, pivot="first")
        assert np.array_equal(labels, tarjan_scc(g))

    def test_empty_graphs(self):
        for algo in (fb_scc, fbtrim_scc, gpu_scc, ispan_scc, hong_scc):
            labels, _ = algo(CSRGraph.empty(0))
            assert labels.size == 0
