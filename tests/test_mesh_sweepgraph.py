"""Tests for sweep-graph construction (§4.1) and the mesh suite classes.

These tests assert the *structural signatures* the paper's Tables 1-2
attribute to each mesh family — the properties the whole evaluation
rests on.
"""

import numpy as np
import pytest

from repro.baselines import tarjan_scc
from repro.errors import MeshError
from repro.graph import dag_depth
from repro.mesh import (
    SweepGraphBuilder,
    beam_hex,
    build_sweep_graph,
    klein_bottle,
    mobius_strip,
    ordinates_2d,
    ordinates_3d,
    star,
    structured_hex_grid,
    sweep_graphs,
    toroid_hex,
    torch_tet,
    twist_hex,
)


def scc_summary(g):
    labels = tarjan_scc(g)
    uniq, counts = np.unique(labels, return_counts=True)
    return {
        "sccs": uniq.size,
        "largest": int(counts.max()),
        "size2": int((counts == 2).sum()),
        "labels": labels,
    }


class TestConstruction:
    def test_vertex_is_element(self):
        m = structured_hex_grid((3, 2, 2))
        g = build_sweep_graph(m, np.array([0.3, 0.5, 0.8]))
        assert g.num_vertices == m.num_elements

    def test_one_edge_per_plain_face(self):
        m = structured_hex_grid((3, 3, 3))
        g = build_sweep_graph(m, np.array([0.3, 0.5, 0.8]))
        # straight grid, generic ordinate: exactly one direction per face
        from repro.mesh import interior_faces

        assert g.num_edges == interior_faces(m).num_faces

    def test_opposite_ordinate_reverses(self):
        m = structured_hex_grid((3, 3, 3))
        omega = np.array([0.3, 0.5, 0.8])
        a = build_sweep_graph(m, omega)
        b = build_sweep_graph(m, -omega)
        assert a.reverse_copy().same_structure(b)

    def test_ordinate_dim_checked(self):
        m = structured_hex_grid((2, 2, 2))
        with pytest.raises(MeshError, match="dim"):
            build_sweep_graph(m, np.array([1.0, 0.0]))

    def test_builder_reuse(self):
        m = beam_hex(2)
        b = SweepGraphBuilder(m)
        for omega in ordinates_3d(3):
            g = b.build(omega)
            assert g.num_vertices == m.num_elements

    def test_sweep_graphs_count(self):
        m = beam_hex(2)
        out = sweep_graphs(m, 5)
        assert len(out) == 5

    def test_straight_grid_no_reentrant(self):
        m = structured_hex_grid((3, 3, 3))
        b = SweepGraphBuilder(m)
        assert b.num_reentrant_candidates == 0


class TestMeshClassSignatures:
    """Tables 1-2: each family's SCC class must reproduce."""

    def test_beam_hex_all_trivial(self):
        for _, g in sweep_graphs(beam_hex(3), 3):
            s = scc_summary(g)
            assert s["sccs"] == g.num_vertices
            assert s["largest"] == 1

    def test_beam_hex_deep_dag(self):
        _, g = sweep_graphs(beam_hex(3), 1)[0]
        s = scc_summary(g)
        assert dag_depth(g, s["labels"]) > 20

    def test_star_all_trivial_deep(self):
        _, g = sweep_graphs(star(8), 1)[0]
        s = scc_summary(g)
        assert s["largest"] == 1
        assert dag_depth(g, s["labels"]) > 30

    def test_torch_tet_small_sccs(self):
        counts = []
        for _, g in sweep_graphs(torch_tet(2), 3):
            s = scc_summary(g)
            counts.append(s["size2"])
            assert 1 < s["largest"] <= 64  # small clusters only
        assert max(counts) > 10  # plenty of size-2 SCCs

    def test_toroid_hex_small_scc_clusters(self):
        for _, g in sweep_graphs(toroid_hex(3), 2):
            s = scc_summary(g)
            assert s["largest"] <= 32
            assert s["sccs"] < g.num_vertices  # some cycles exist

    def test_twist_hex_single_giant_scc(self):
        for _, g in sweep_graphs(twist_hex(2), 4):
            s = scc_summary(g)
            assert s["sccs"] == 1
            assert s["largest"] == g.num_vertices

    def test_klein_bottle_giant_scc(self):
        for _, g in sweep_graphs(klein_bottle(6), 4):
            s = scc_summary(g)
            assert s["largest"] > 0.9 * g.num_vertices

    def test_mobius_bimodal(self):
        giants = trivials = 0
        for _, g in sweep_graphs(mobius_strip(8), 8):
            s = scc_summary(g)
            if s["largest"] > 0.5 * g.num_vertices:
                giants += 1
            elif s["largest"] == 1:
                trivials += 1
        assert giants >= 2
        assert trivials >= 2

    def test_mesh_degrees_small(self):
        """Mesh sweep graphs have near-constant small degree (Tables 1-2)."""
        for mesh in (beam_hex(2), toroid_hex(2), twist_hex(2)):
            _, g = sweep_graphs(mesh, 1)[0]
            assert g.out_degree().max() <= 6
            assert g.in_degree().max() <= 6
