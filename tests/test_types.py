"""Unit tests for repro.types."""

import numpy as np
import pytest

from repro.types import (
    NO_VERTEX,
    VERTEX_DTYPE,
    as_indptr_array,
    as_vertex_array,
    check_1d,
    is_sorted,
)


class TestAsVertexArray:
    def test_list_input(self):
        a = as_vertex_array([1, 2, 3])
        assert a.dtype == VERTEX_DTYPE
        assert a.tolist() == [1, 2, 3]

    def test_int32_widened(self):
        a = as_vertex_array(np.array([1, 2], dtype=np.int32))
        assert a.dtype == VERTEX_DTYPE

    def test_preserves_int64_contiguous(self):
        src = np.array([5, 6, 7], dtype=np.int64)
        out = as_vertex_array(src)
        assert out.dtype == VERTEX_DTYPE
        assert out.flags.c_contiguous

    def test_float_rejected(self):
        with pytest.raises(TypeError, match="integer"):
            as_vertex_array(np.array([1.0, 2.0]))

    def test_bool_rejected(self):
        with pytest.raises(TypeError, match="integer"):
            as_vertex_array(np.array([True, False]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            as_vertex_array(np.zeros((2, 2), dtype=np.int64))

    def test_empty_ok(self):
        assert as_vertex_array([]).size == 0

    def test_noncontiguous_made_contiguous(self):
        a = np.arange(10, dtype=np.int64)[::2]
        out = as_vertex_array(a)
        assert out.flags.c_contiguous
        assert out.tolist() == [0, 2, 4, 6, 8]


class TestAsIndptrArray:
    def test_basic(self):
        a = as_indptr_array([0, 2, 4])
        assert a.dtype == np.int64

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            as_indptr_array(np.array([0.0, 1.0]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            as_indptr_array(np.zeros((2, 3), dtype=np.int64))


class TestIsSorted:
    def test_sorted(self):
        assert is_sorted(np.array([1, 2, 2, 3]))

    def test_unsorted(self):
        assert not is_sorted(np.array([2, 1]))

    def test_empty_and_single(self):
        assert is_sorted(np.array([], dtype=np.int64))
        assert is_sorted(np.array([7]))


class TestCheck1d:
    def test_passthrough(self):
        a = np.arange(3)
        assert check_1d(a, "x") is a

    def test_non_array(self):
        with pytest.raises(TypeError):
            check_1d([1, 2], "x")

    def test_wrong_ndim(self):
        with pytest.raises(ValueError):
            check_1d(np.zeros((2, 2)), "x")


def test_no_vertex_sentinel():
    assert NO_VERTEX == -1
    assert NO_VERTEX.dtype == VERTEX_DTYPE
