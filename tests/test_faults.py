"""Chaos tests for :mod:`repro.faults`.

The matrix the subsystem promises (docs/robustness.md):

* **monotone** plans (stale reads, lost updates, message drops/dups/
  delays) leave the labels bit-identical to a fault-free run on every
  backend and engine — only the cost changes;
* **corrupting** plans (bit-flips, crashes, rank crashes) recover to
  verified-correct labels through checkpoint/restart, bounded retry,
  failover, and verification-guarded self-healing;
* every injected fault and recovery action is visible as a trace event
  and charged to the cost model.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import FaultPlan, ecl_scc
from repro.analysis.verify import fixed_point_offenders
from repro.baselines import tarjan_scc
from repro.bench import run_algorithm
from repro.core import EclOptions
from repro.device import A100, VirtualDevice
from repro.distributed import block_partition, distributed_ecl_scc
from repro.distributed.cluster import ClusterSpec, VirtualCluster
from repro.errors import (
    AlgorithmError,
    DeviceError,
    FaultError,
    FaultPlanError,
    RankLossError,
    ReproError,
)
from repro.faults import (
    CORRUPTING_FAULT_KINDS,
    MONOTONE_FAULT_KINDS,
    CheckpointStore,
    FaultInjector,
    backoff_seconds,
    heal_labels,
)
from repro.graph import CSRGraph, cycle_graph
from repro.graph.generators import random_gnm, scc_ladder
from repro.trace import Tracer

#: the engine x backend grid of the chaos matrix
ENGINES = {
    "sync": dict(async_phase2=False),
    "async": dict(async_phase2=True),
    "atomic": dict(atomic_phase2=True),
    "frontier": dict(engine="frontier"),
    "adaptive": dict(engine="adaptive"),
}
BACKENDS = ("dense", "frontier")


def matrix_graphs():
    return [scc_ladder(8), random_gnm(40, 120, seed=3), cycle_graph(17)]


# ---------------------------------------------------------------------------
# FaultPlan: validation + serialization
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = FaultPlan.chaos(seed=11)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_dict_roundtrip(self):
        plan = FaultPlan.monotone(seed=4, rate=0.7)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"seed": 1, "cosmic_ray_rate": 0.5})

    def test_bad_json_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("not json at all {")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("[1, 2]")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(stale_read_rate=1.5),
            dict(message_drop_rate=-0.1),
            dict(victim_fraction=0.0),
            dict(bitflips=-1),
            dict(checkpoint_every=0),
            dict(max_retries=0),
            dict(backoff_base_us=0.0),
            dict(crash_iteration=0),
            dict(rank_crash_rank=-2),
        ],
    )
    def test_invalid_knobs_raise(self, kwargs):
        with pytest.raises(FaultPlanError):
            FaultPlan(**kwargs)

    def test_presets_and_classes(self):
        assert FaultPlan.monotone(3).is_monotone
        assert not FaultPlan.chaos(3).is_monotone
        assert FaultPlan.chaos(3).has_engine_faults
        assert FaultPlan.chaos(3).has_cluster_faults
        assert not set(MONOTONE_FAULT_KINDS) & set(CORRUPTING_FAULT_KINDS)

    def test_seeded_rng_is_deterministic(self):
        plan = FaultPlan.monotone(42)
        assert plan.rng().random() == plan.rng().random()
        assert plan.with_seed(7).seed == 7

    def test_every_preset_json_roundtrips(self):
        from repro.faults import PRESET_PLAN_NAMES, preset_plan

        for name in PRESET_PLAN_NAMES:
            plan = preset_plan(name, seed=13)
            assert FaultPlan.from_json(plan.to_json()) == plan, name
            assert FaultPlan.from_dict(plan.to_dict()) == plan, name

    def test_unknown_preset_rejected(self):
        from repro.faults import preset_plan

        with pytest.raises(FaultPlanError):
            preset_plan("nope", seed=0)

    def test_serve_presets_carry_serve_faults(self):
        from repro.faults import preset_plan

        assert preset_plan("serve-crash", 0).has_serve_faults
        assert preset_plan("serve-delay", 0).has_serve_faults
        assert not FaultPlan(seed=0).has_serve_faults


# ---------------------------------------------------------------------------
# chaos matrix: monotone invariance (fault kind x engine x backend)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_monotone_plan_is_label_invariant(engine, backend):
    opts = EclOptions(backend=backend, **ENGINES[engine])
    plan = FaultPlan.monotone(seed=5, rate=0.8)
    for g in matrix_graphs():
        clean = ecl_scc(g, options=opts)
        tracer = Tracer()
        res = ecl_scc(g, options=opts, faults=plan, tracer=tracer)
        assert np.array_equal(res.labels, clean.labels)
        rep = res.fault_report
        assert rep is not None and rep.plan == plan
        assert res.status == ("recovered" if rep.faults_injected else "clean")
        # every recorded fault is a monotone kind and visible in the trace
        trace = tracer.finish()
        for kind, count in rep.counts.items():
            if kind.startswith("recovery:"):
                continue
            assert kind in MONOTONE_FAULT_KINDS
            assert trace.sum_counter(f"fault:{kind}") == count


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_engine_faults_charge_extra_work(engine, backend):
    g = scc_ladder(8)
    opts = EclOptions(backend=backend, **ENGINES[engine])
    clean = ecl_scc(g, options=opts)
    res = ecl_scc(
        g, options=opts,
        faults=FaultPlan(seed=2, stale_read_rate=1.0, lost_update_rate=1.0),
    )
    assert res.fault_report.faults_injected > 0
    # regressed signatures force re-propagation: strictly more rounds,
    # and the extra rounds hit the device counters
    assert res.propagation_rounds > clean.propagation_rounds
    snap, ref = res.device.counters.snapshot(), clean.device.counters.snapshot()
    assert snap["kernel_launches"] > ref["kernel_launches"]


# ---------------------------------------------------------------------------
# chaos matrix: corrupting plans recover to verified-correct labels
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_chaos_plan_recovers_correct_labels(engine, backend):
    g = scc_ladder(10)
    truth = tarjan_scc(g).labels
    opts = EclOptions(backend=backend, **ENGINES[engine])
    tracer = Tracer()
    res = ecl_scc(g, options=opts, faults=FaultPlan.chaos(seed=1), tracer=tracer)
    assert np.array_equal(res.labels, truth)
    rep = res.fault_report
    assert res.status == "recovered"
    assert rep.checkpoints_saved > 0
    assert rep.restores >= 1          # crash_iteration=2 fired
    assert rep.heal_passes >= 1       # bitflips=2 healed
    trace = tracer.finish()
    assert trace.sum_counter("fault:crash") == 1
    assert trace.sum_counter("recovery:restore") == rep.restores
    assert trace.sum_counter("recovery:checkpoint") == rep.checkpoints_saved
    assert trace.sum_counter("recovery:self-heal") == rep.heal_passes


def test_crash_restore_is_bit_identical():
    """Checkpoint -> crash -> restore reproduces the no-crash run exactly:
    same labels *and* same device counters (wasted work is discarded on
    restore, re-executed work recharges identically)."""
    g = scc_ladder(12)
    crash = FaultPlan(seed=9, crash_iteration=2, checkpoint_every=1)
    no_crash = FaultPlan(seed=9, checkpoint_every=1)
    a = ecl_scc(g, faults=crash)
    b = ecl_scc(g, faults=no_crash)
    assert a.fault_report.restores == 1
    assert b.fault_report.restores == 0
    assert np.array_equal(a.labels, b.labels)
    assert a.device.counters.snapshot() == b.device.counters.snapshot()


def test_checkpoint_cadence_and_charging():
    g = scc_ladder(12)
    sparse = ecl_scc(g, faults=FaultPlan(seed=0, checkpoint_every=3))
    dense = ecl_scc(g, faults=FaultPlan(seed=0, checkpoint_every=1))
    assert 0 < sparse.fault_report.checkpoints_saved
    assert sparse.fault_report.checkpoints_saved < dense.fault_report.checkpoints_saved
    # saves stream the checkpoint image through the device
    assert dense.device.counters.notes["faults:checkpoint_bytes"] > 0


def test_restore_without_checkpoint_raises():
    store = CheckpointStore(cadence=1)
    with pytest.raises(FaultError):
        store.restore(
            labels=np.zeros(4, dtype=np.int64),
            active=np.ones(4, dtype=bool),
            wl=None,
            device=VirtualDevice(A100),
            crashed_at=1,
        )


# ---------------------------------------------------------------------------
# verification guard + self-healing
# ---------------------------------------------------------------------------

def two_scc_graph():
    # {0,1,2} and {3,4} strongly connected, bridge 2 -> 3
    return CSRGraph.from_edges(
        [0, 1, 2, 2, 3, 4], [1, 2, 0, 3, 4, 3], 5
    )


def test_offender_detection_is_exact():
    g = two_scc_graph()
    labels = tarjan_scc(g).labels
    assert fixed_point_offenders(g, labels).size == 0
    corrupt = labels.copy()
    corrupt[0] ^= 1  # flip one bit of vertex 0's label
    offenders = fixed_point_offenders(g, corrupt)
    # vertex 0's entire class is condemned; the other SCC survives
    assert 0 in offenders
    assert set(offenders) <= {0, 1, 2}


def test_heal_labels_repairs_corruption():
    g = two_scc_graph()
    truth = tarjan_scc(g).labels
    corrupt = truth.copy()
    corrupt[1] ^= 2
    healed = heal_labels(g, corrupt, device=VirtualDevice(A100))
    assert np.array_equal(healed, truth)


def test_bitflips_are_healed_end_to_end():
    g = random_gnm(50, 160, seed=7)
    truth = tarjan_scc(g).labels
    res = ecl_scc(g, faults=FaultPlan(seed=3, bitflips=4))
    assert np.array_equal(res.labels, truth)
    assert res.fault_report.healed_vertices > 0


# ---------------------------------------------------------------------------
# hypothesis properties
# ---------------------------------------------------------------------------

@st.composite
def digraphs(draw, max_n=20, max_m=60):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return CSRGraph.from_edges(src, dst, n)


@given(digraphs(), st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_any_monotone_plan_never_changes_labels(g, seed):
    plan = FaultPlan.monotone(seed, rate=0.9)
    assert np.array_equal(
        ecl_scc(g, faults=plan).labels, ecl_scc(g).labels
    )


@given(digraphs(), st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_crash_restore_determinism(g, seed):
    """Property form of the bit-identity contract on arbitrary digraphs."""
    a = ecl_scc(g, faults=FaultPlan(seed=seed, crash_iteration=2))
    b = ecl_scc(g, faults=FaultPlan(seed=seed))
    assert np.array_equal(a.labels, b.labels)
    assert a.device.counters.snapshot() == b.device.counters.snapshot()


# ---------------------------------------------------------------------------
# cluster layer: validation, stragglers, retry accounting
# ---------------------------------------------------------------------------

class TestVirtualCluster:
    def test_negative_superstep_rejected(self):
        cluster = VirtualCluster(ClusterSpec(num_ranks=2))
        with pytest.raises(DeviceError):
            cluster.superstep(-1.0)
        with pytest.raises(DeviceError):
            cluster.superstep(1.0, messages=-5)
        with pytest.raises(DeviceError):
            cluster.superstep(1.0, bytes_out=-5)
        assert cluster.supersteps == 0

    def test_straggler_validation(self):
        with pytest.raises(DeviceError):
            ClusterSpec(num_ranks=2, stragglers=(1.0,))
        with pytest.raises(DeviceError):
            ClusterSpec(num_ranks=2, stragglers=(1.0, 0.5))

    def test_stragglers_stretch_critical_path(self):
        fast = VirtualCluster(ClusterSpec(num_ranks=4))
        slow = VirtualCluster(
            ClusterSpec(num_ranks=4, stragglers=(1.0, 1.0, 1.0, 8.0))
        )
        ops = np.full(4, 1e6)
        fast.superstep(ops)
        slow.superstep(ops)
        assert slow.compute_seconds == pytest.approx(8 * fast.compute_seconds)
        assert slow.last_superstep_seconds > fast.last_superstep_seconds

    def test_charge_retry_accounting(self):
        cluster = VirtualCluster(ClusterSpec(num_ranks=2))
        base = cluster.estimated_seconds
        cluster.charge_retry(0.25)
        assert cluster.retry_supersteps == 1
        assert cluster.estimated_seconds == pytest.approx(base + 0.25)
        assert cluster.summary()["backoff_s"] == pytest.approx(0.25)
        with pytest.raises(DeviceError):
            cluster.charge_retry(-1.0)


def test_backoff_is_exponential_with_floor():
    plan = FaultPlan(seed=0, backoff_base_us=100.0)
    waits = [backoff_seconds(plan, k) for k in range(4)]
    assert waits == [pytest.approx(100e-6 * 2**k) for k in range(4)]
    assert backoff_seconds(plan, 0, floor_s=0.5) == 0.5


def test_backoff_without_jitter_is_bit_identical():
    """Regression: plans without jitter (and calls without an rng) keep
    the exact pre-jitter schedule — bit-identical, not approximately."""
    plan = FaultPlan(seed=0, backoff_base_us=50.0)
    jittery = FaultPlan(seed=0, backoff_base_us=50.0, backoff_jitter=0.25)
    for k in range(5):
        exact = plan.backoff_base_us * 1e-6 * 2**k
        assert backoff_seconds(plan, k) == exact
        # an rng on a jitter-free plan changes nothing...
        assert backoff_seconds(plan, k, rng=plan.rng()) == exact
        # ...and a jittery plan without an rng stays deterministic too
        assert backoff_seconds(jittery, k) == exact


def test_backoff_jitter_is_seeded_and_bounded():
    plan = FaultPlan(seed=9, backoff_base_us=50.0, backoff_jitter=0.25)
    a = [backoff_seconds(plan, k, rng=plan.rng()) for k in range(6)]
    b = [backoff_seconds(plan, k, rng=plan.rng()) for k in range(6)]
    assert a == b                       # same seed -> same jitter draws
    for k, wait in enumerate(a):
        base = plan.backoff_base_us * 1e-6 * 2**k
        assert base * 0.75 <= wait <= base * 1.25
    assert any(w != plan.backoff_base_us * 1e-6 * 2**k for k, w in enumerate(a))


# ---------------------------------------------------------------------------
# distributed chaos: message faults, rank crash, failover
# ---------------------------------------------------------------------------

def dist_fixture(num_ranks=4):
    g = random_gnm(60, 200, seed=1)
    return g, block_partition(g, num_ranks)


def test_distributed_message_faults_are_label_invariant():
    g, part = dist_fixture()
    plan = FaultPlan(
        seed=3, message_drop_rate=0.5, message_dup_rate=0.5,
        message_delay_rate=0.5,
    )
    clean = distributed_ecl_scc(g, part)
    tracer = Tracer()
    res = distributed_ecl_scc(g, part, faults=plan, tracer=tracer)
    assert np.array_equal(res.labels, clean.labels)
    rep = res.fault_report
    assert rep.faults_injected > 0
    assert res.status == "recovered"
    # dropped/duplicated messages are charged on top of the real traffic
    assert res.cluster.total_messages > clean.cluster.total_messages
    trace = tracer.finish()
    injected = sum(
        trace.sum_counter(f"fault:{k}")
        for k in ("message-drop", "message-dup", "message-delay")
    )
    assert injected == rep.faults_injected


def test_rank_crash_retries_and_recovers():
    g, part = dist_fixture()
    plan = FaultPlan(seed=0, rank_crash_superstep=2, rank_recover_after=1)
    clean = distributed_ecl_scc(g, part)
    res = distributed_ecl_scc(g, part, faults=plan)
    assert np.array_equal(res.labels, clean.labels)
    rep = res.fault_report
    assert rep.retries >= 1
    assert rep.failovers == 0
    assert res.status == "recovered"
    assert res.cluster.backoff_seconds > 0
    assert res.cluster.retry_supersteps == rep.retries


def test_rank_loss_fails_over_and_degrades():
    g, part = dist_fixture()
    plan = FaultPlan(
        seed=0, rank_crash_superstep=2, rank_crash_rank=1,
        rank_recover_after=10, max_retries=2, failover=True,
    )
    res = distributed_ecl_scc(g, part, faults=plan)
    assert res.status == "degraded"
    assert res.fault_report.failovers == 1
    assert np.array_equal(res.labels, tarjan_scc(g).labels)


def test_rank_loss_without_failover_raises_structured():
    g, part = dist_fixture()
    plan = FaultPlan(
        seed=0, rank_crash_superstep=2, rank_crash_rank=1,
        rank_recover_after=10, max_retries=2, failover=False,
    )
    with pytest.raises(RankLossError) as exc:
        distributed_ecl_scc(g, part, faults=plan)
    err = exc.value
    assert err.rank == 1
    assert err.retries == 2
    assert err.superstep is not None
    assert err.labels is not None and err.labels.size == g.num_vertices
    assert err.fault_report is not None
    assert err.fault_report.retries == 2
    assert isinstance(err, FaultError) and isinstance(err, ReproError)


# ---------------------------------------------------------------------------
# run_algorithm / report plumbing
# ---------------------------------------------------------------------------

def test_run_algorithm_threads_faults():
    g = scc_ladder(6)
    res = run_algorithm(
        g, "ecl-scc", A100, faults=FaultPlan.monotone(seed=2), verify=True
    )
    assert res.status in ("clean", "recovered")
    assert res.fault_report is not None


def test_run_algorithm_rejects_faults_for_baselines():
    g = cycle_graph(5)
    with pytest.raises(AlgorithmError):
        run_algorithm(g, "fb", A100, faults=FaultPlan.monotone(seed=0))


def test_fault_report_serializes():
    g = scc_ladder(8)
    res = ecl_scc(g, faults=FaultPlan.chaos(seed=1))
    d = res.fault_report.as_dict()
    assert d["plan"] == FaultPlan.chaos(seed=1).to_dict()
    assert d["faults_injected"] == res.fault_report.faults_injected
    assert all(
        set(e) == {"kind", "site", "step", "detail"} for e in d["events"]
    )


def test_event_cap_counts_keep_accumulating():
    plan = FaultPlan(seed=0, stale_read_rate=1.0, max_engine_faults=1000)
    injector = FaultInjector(plan)
    for i in range(400):
        injector._record("stale-read", "engine:phase2", i)
    assert len(injector.report.events) == 256
    assert injector.report.events_dropped == 144
    assert injector.report.counts["stale-read"] == 400
