"""Tests for the structured tracing subsystem (``repro.trace``):
span nesting, JSONL round-trips, the NullTracer zero-overhead contract,
and the trace-vs-EclResult count invariants."""

import itertools

import numpy as np
import pytest

from repro.baselines import (
    coloring_scc,
    fb_scc,
    fbtrim_scc,
    gpu_scc,
    hong_scc,
    ispan_scc,
    kosaraju_scc,
    multistep_scc,
    tarjan_scc,
)
from repro.bench import run_algorithm
from repro.core import ecl_scc, minmax_scc
from repro.device import A100
from repro.distributed import block_partition, distributed_ecl_scc
from repro.graph import cycle_graph, planted_scc_graph, random_gnm, scc_ladder
from repro.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    dumps_jsonl,
    ensure_tracer,
    load_jsonl,
    loads_jsonl,
    render_summary,
)
from repro.trace.tracer import _NULL_SPAN


def fake_clock():
    """Deterministic clock: 0.0, 1.0, 2.0, ..."""
    counter = itertools.count()
    return lambda: float(next(counter))


class TestSpanNesting:
    def test_nesting_and_ordering(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("outer", index=1):
            with tr.span("a"):
                pass
            with tr.span("b"):
                tr.counter("hits", 2)
        trace = tr.finish()
        outer, a, b = trace.spans
        assert [s.name for s in trace.spans] == ["outer", "a", "b"]
        assert outer.parent_id is None and outer.depth == 0
        assert a.parent_id == outer.span_id and a.depth == 1
        assert b.parent_id == outer.span_id and b.depth == 1
        # deterministic clock: starts/ends are strictly ordered
        assert outer.t_start < a.t_start < a.t_end < b.t_start
        assert b.t_end < outer.t_end
        assert outer.attrs == {"index": 1}
        (ev,) = trace.events
        assert ev.name == "hits" and ev.value == 2.0
        assert ev.span_id == b.span_id

    def test_set_attrs_and_duration(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("p") as sp:
            sp.set(rounds=3).set(edges=10)
        rec = tr.trace.spans[0]
        assert rec.attrs == {"rounds": 3, "edges": 10}
        assert rec.closed and rec.duration == 1.0

    def test_explicit_close(self):
        tr = Tracer(clock=fake_clock())
        h = tr.span("manual")
        assert tr.current_span_id == h.record.span_id
        h.close()
        assert tr.current_span_id is None
        assert h.record.closed
        h.close()  # double close is a no-op
        assert h.record.t_end == 1.0

    def test_finish_closes_open_spans(self):
        tr = Tracer(clock=fake_clock())
        tr.span("left-open")
        trace = tr.finish()
        assert trace.spans[0].closed

    def test_helpers(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("outer"):
            with tr.span("inner"):
                pass
            with tr.span("inner"):
                pass
        trace = tr.finish()
        assert trace.count_spans("inner") == 2
        assert [s.name for s in trace.roots()] == ["outer"]
        kids = trace.children_of(trace.spans[0])
        assert [s.name for s in kids] == ["inner", "inner"]
        assert trace.span_path(trace.spans[1]) == ("outer", "inner")


class TestJsonlRoundTrip:
    def make_trace(self):
        tr = Tracer(clock=fake_clock(), meta={"algo": "test", "n": 5})
        with tr.span("outer", index=np.int64(1)):
            with tr.span("inner", edges=np.int32(7)) as sp:
                tr.counter("work", np.float64(2.5), engine="sync")
                tr.gauge("level", 9, depth=1)
                sp.set(rounds=2)
        tr.span("open-at-dump")  # never closed
        return tr.trace

    def test_round_trip_preserves_everything(self):
        trace = self.make_trace()
        back = loads_jsonl(dumps_jsonl(trace))
        assert back.meta == trace.meta
        assert len(back.spans) == len(trace.spans)
        assert len(back.events) == len(trace.events)
        for orig, rt in zip(trace.spans, back.spans):
            assert (orig.name, orig.span_id, orig.parent_id, orig.depth) == (
                rt.name, rt.span_id, rt.parent_id, rt.depth
            )
            assert orig.attrs == rt.attrs
            assert orig.t_start == rt.t_start
            assert (np.isnan(orig.t_end) and np.isnan(rt.t_end)) or (
                orig.t_end == rt.t_end
            )
        for orig, rt in zip(trace.events, back.events):
            assert (orig.name, orig.kind, orig.value, orig.t, orig.span_id) == (
                rt.name, rt.kind, rt.value, rt.t, rt.span_id
            )
            assert orig.attrs == rt.attrs

    def test_numpy_scalars_serialize_plain(self):
        text = dumps_jsonl(self.make_trace())
        assert "np.int64" not in text and "float64" not in text

    def test_file_round_trip(self, tmp_path):
        from repro.trace import dump_jsonl

        trace = self.make_trace()
        path = tmp_path / "trace.jsonl"
        dump_jsonl(trace, path)
        back = load_jsonl(path)
        assert back.count_spans("inner") == 1
        assert back.sum_counter("work") == 2.5

    def test_summary_renders(self):
        text = render_summary(self.make_trace())
        assert "outer" in text and "inner" in text
        assert "work" in text and "level" in text


class TestNullTracerOverhead:
    def test_null_tracer_never_reads_clock(self):
        # the poisoned clock raises if any disabled path touches it
        tr = NullTracer()
        with tr.span("x", index=1) as sp:
            sp.set(rounds=2)
            tr.counter("c", 5, engine="sync")
            tr.gauge("g", 1.0)
        tr.finish()
        with pytest.raises(AssertionError):
            tr._clock()

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("x"):
            NULL_TRACER.counter("c")
            NULL_TRACER.gauge("g", 1)
        assert not NULL_TRACER.trace.spans
        assert not NULL_TRACER.trace.events

    def test_shared_span_handle(self):
        # one reusable handle — no allocation per span on the disabled path
        a = NULL_TRACER.span("a")
        b = NULL_TRACER.span("b", attr=1)
        assert a is b is _NULL_SPAN
        assert a.set(x=1) is a and a.record is None
        a.close()

    def test_ensure_tracer(self):
        assert ensure_tracer(None) is NULL_TRACER
        tr = Tracer()
        assert ensure_tracer(tr) is tr
        assert not NULL_TRACER.enabled and tr.enabled

    def test_untraced_runs_have_no_trace(self):
        g = scc_ladder(6)
        assert ecl_scc(g).trace is None
        assert tarjan_scc(g).trace is None
        assert gpu_scc(g).trace is None


class TestEclTraceCounts:
    """The acceptance invariants: span counts equal EclResult counts."""

    @pytest.mark.parametrize("algo", [ecl_scc, minmax_scc])
    def test_phase_spans_match_result_counts(self, algo):
        for g in (
            scc_ladder(12),
            cycle_graph(9),
            planted_scc_graph([4, 1, 6, 2, 5], extra_dag_edges=8, seed=3)[0],
            random_gnm(60, 180, seed=1),
        ):
            tr = Tracer()
            res = algo(g, tracer=tr)
            trace = tr.finish()
            assert res.trace is trace
            assert trace.count_spans("outer-iteration") == res.outer_iterations
            for phase in ("phase1-init", "phase2-propagate", "phase3-filter"):
                assert trace.count_spans(phase) == res.outer_iterations
            assert (
                trace.sum_counter("relaxation-round") == res.propagation_rounds
            )

    def test_phase_spans_nest_in_outer(self):
        tr = Tracer()
        ecl_scc(scc_ladder(8), tracer=tr)
        trace = tr.finish()
        outer_ids = {s.span_id for s in trace.find_spans("outer-iteration")}
        for phase in ("phase1-init", "phase2-propagate", "phase3-filter"):
            for s in trace.find_spans(phase):
                assert s.parent_id in outer_ids

    def test_traced_run_matches_untraced(self):
        g = random_gnm(50, 150, seed=7)
        plain = ecl_scc(g)
        traced = ecl_scc(g, tracer=Tracer())
        assert np.array_equal(plain.labels, traced.labels)
        assert plain.outer_iterations == traced.outer_iterations
        assert plain.propagation_rounds == traced.propagation_rounds

    def test_edge_filter_counters(self):
        tr = Tracer()
        res = ecl_scc(scc_ladder(10), tracer=tr)
        trace = tr.finish()
        kept = trace.sum_counter("edges-kept")
        removed = trace.sum_counter("edges-removed")
        assert kept + removed > 0
        # the last filter pass leaves edges_final edges
        assert removed > 0 or kept == res.edges_final


class TestBaselineTraces:
    BASELINES = [
        (tarjan_scc, "tarjan-dfs"),
        (kosaraju_scc, "kosaraju-pass1"),
        (fb_scc, "fb-task"),
        (fbtrim_scc, "trim"),
        (gpu_scc, "phase1-trim"),
        (ispan_scc, "phase1-trim"),
        (hong_scc, "phase1-trim"),
        (multistep_scc, "step1-trim"),
        (coloring_scc, "outer-iteration"),
    ]

    @pytest.mark.parametrize(
        "fn,span", BASELINES, ids=[f.__name__ for f, _ in BASELINES]
    )
    def test_baseline_emits_spans(self, fn, span):
        g = planted_scc_graph([3, 5, 1, 4], extra_dag_edges=6, seed=0)[0]
        tr = Tracer()
        res = fn(g, tracer=tr)
        trace = tr.finish()
        assert res.trace is trace
        assert trace.count_spans(span) >= 1
        truth = tarjan_scc(g)
        assert np.array_equal(np.asarray(res), np.asarray(truth))


class TestDistributedTrace:
    def test_superstep_spans_match_counts(self):
        g = planted_scc_graph([6, 3, 8, 2, 5], extra_dag_edges=12, seed=2)[0]
        part = block_partition(g, 4)
        tr = Tracer()
        res = distributed_ecl_scc(g, part, tracer=tr)
        trace = tr.finish()
        assert res.trace is trace
        assert trace.count_spans("superstep") == res.supersteps
        assert trace.count_spans("outer-iteration") == res.outer_iterations
        kinds = {s.attrs["kind"] for s in trace.find_spans("superstep")}
        assert kinds == {"phase1-init", "phase2-exchange", "phase3-filter"}
        plain = distributed_ecl_scc(g, part)
        assert np.array_equal(plain.labels, res.labels)

    def test_halo_counters_match_cluster(self):
        g = random_gnm(80, 240, seed=5)
        part = block_partition(g, 4)
        tr = Tracer()
        res = distributed_ecl_scc(g, part, tracer=tr)
        total = tr.finish().sum_counter("halo-messages")
        assert total == res.cluster.summary()["total_messages"]


class TestRunAlgorithmTrace:
    def test_run_algorithm_carries_trace(self):
        g = scc_ladder(8)
        tr = Tracer()
        rr = run_algorithm(g, "ecl-scc", A100, tracer=tr)
        assert rr.trace is tr.trace
        assert rr.trace.count_spans("outer-iteration") >= 1

    def test_wall_repeats_run_untraced(self):
        g = scc_ladder(6)
        tr = Tracer()
        rr = run_algorithm(g, "ecl-scc", A100, tracer=tr, time_wall=True, repeats=3)
        # exactly one traced run despite 3 timed repeats
        outer = rr.trace.count_spans("outer-iteration")
        single = ecl_scc(g).outer_iterations
        assert outer == single

    def test_untraced_run_algorithm(self):
        rr = run_algorithm(scc_ladder(5), "tarjan", A100)
        assert rr.trace is None


class TestTraceCli:
    def test_trace_subcommand_counts_match(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run.jsonl"
        assert main(["trace", "ladder:16", "--jsonl", str(path)]) == 0
        out = capsys.readouterr().out
        assert "outer-iteration" in out
        trace = load_jsonl(path)
        res = ecl_scc(scc_ladder(16))
        assert trace.count_spans("outer-iteration") == res.outer_iterations
        assert trace.count_spans("phase2-propagate") == res.outer_iterations
        assert trace.sum_counter("relaxation-round") == res.propagation_rounds

    def test_trace_load_mode(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run.jsonl"
        assert main(["trace", "cycle:12", "--jsonl", str(path),
                     "--no-summary"]) == 0
        capsys.readouterr()
        assert main(["trace", "--load", str(path)]) == 0
        assert "outer-iteration" in capsys.readouterr().out

    def test_trace_unknown_workload(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["trace", "no-such-workload"])
