"""Tests for :mod:`repro.obs` — the unified observability pipeline.

The contract (docs/observability.md §10):

* streaming log-bucket histograms answer any quantile within one bucket
  width of the nearest-rank sorted-list value, on any input stream;
* every terminal job's decision history folds into a phase timeline
  whose segments are ordered, non-overlapping, and **contiguous** —
  shared breakpoints, first segment starting at ``submit_s``, last
  ending at ``finish_s`` — so the decomposition spans the end-to-end
  latency bit-exactly, under every chaos plan;
* the Perfetto export is valid Chrome-trace JSON (``json.loads``
  round-trip, well-formed ``ph``/``ts``/``dur``) whose job-phase lanes
  carry the exact simulated endpoints;
* SLO evaluation passes a loose spec and fails a tightened one, with
  burn-rate alerts preceding exhaustion;
* trace JSONL schema v3 round-trips ``sample``/``timeline`` lines,
  still accepts v2/v1 files, and still rejects newer schemas.
"""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import preset_plan
from repro.graph import cycle_graph
from repro.obs import (
    ObsRecorder,
    PHASE_OF_DECISION,
    Sample,
    Segment,
    SeriesRegistry,
    SLObjective,
    SLOSpec,
    StreamingHistogram,
    dump_perfetto,
    evaluate_slo,
    export_perfetto,
    job_timeline,
)
from repro.serve import (
    JobKind,
    JobSpec,
    SccService,
    ServeBenchConfig,
    run_serve_bench,
)
from repro.serve.bench import _percentile
from repro.trace import SCHEMA_VERSION, SampleRecord, TimelineRecord, Trace


# ---------------------------------------------------------------------------
# streaming histogram: bounded-error quantiles
# ---------------------------------------------------------------------------

class TestStreamingHistogram:
    def test_empty_quantile_is_none(self):
        assert StreamingHistogram().quantile(0.5) is None

    def test_growth_validation(self):
        with pytest.raises(ValueError):
            StreamingHistogram(1.0)
        with pytest.raises(ValueError):
            StreamingHistogram(0.5)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            StreamingHistogram().observe(-1.0)

    def test_quantile_range_validation(self):
        h = StreamingHistogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_zeros_get_their_own_bucket(self):
        h = StreamingHistogram()
        for _ in range(9):
            h.observe(0.0)
        h.observe(100.0)
        assert h.quantile(0.5) == 0.0
        assert h.quantile(1.0) == pytest.approx(100.0, rel=h.quantile_error)

    def test_error_bound_is_sqrt_growth(self):
        h = StreamingHistogram(1.21)
        assert h.quantile_error == pytest.approx(math.sqrt(1.21) - 1.0)

    @given(
        values=st.lists(
            st.floats(min_value=1e-9, max_value=1e9,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=300,
        ),
        q=st.sampled_from([0.0, 0.01, 0.5, 0.9, 0.99, 0.999, 1.0]),
        growth=st.sampled_from([1.02, 1.04, 1.25, 2.0]),
    )
    @settings(max_examples=150, deadline=None)
    def test_quantile_within_one_bucket_of_nearest_rank(
        self, values, q, growth
    ):
        """The sketch's core guarantee, property-style.

        For any stream and any q, the histogram quantile lands in the
        same bucket as the nearest-rank order statistic — so it is
        within one bucket width absolutely and ``sqrt(growth) - 1``
        relatively.
        """
        h = StreamingHistogram(growth)
        for v in values:
            h.observe(v)
        exact = sorted(values)[
            max(1, min(len(values), math.ceil(q * len(values)))) - 1
        ]
        est = h.quantile(q)
        lo, hi = h.bucket_bounds(exact)
        assert lo <= est < hi or est == pytest.approx(exact)
        assert abs(est - exact) < h.bucket_width(exact)
        assert abs(est - exact) <= h.quantile_error * max(est, exact)

    def test_as_dict_round_trips_counts(self):
        h = StreamingHistogram()
        for v in (0.0, 1.0, 2.0, 4.0):
            h.observe(v)
        d = h.as_dict()
        assert d["total"] == 4 and d["zeros"] == 1
        assert sum(d["buckets"].values()) == 3
        assert d["min"] == 0.0 and d["max"] == 4.0


# ---------------------------------------------------------------------------
# series registry
# ---------------------------------------------------------------------------

class TestSeriesRegistry:
    def test_kind_is_fixed_per_series(self):
        reg = SeriesRegistry()
        reg.counter("jobs", 0.0, 1.0)
        with pytest.raises(ValueError, match="is a counter"):
            reg.gauge("jobs", 1.0, 2.0)

    def test_counter_must_not_decrease(self):
        reg = SeriesRegistry()
        reg.counter("jobs", 0.0, 5.0)
        with pytest.raises(ValueError, match="decreased"):
            reg.counter("jobs", 1.0, 4.0)

    def test_time_must_not_go_backwards(self):
        reg = SeriesRegistry()
        reg.gauge("depth", 1.0, 3.0)
        with pytest.raises(ValueError, match="backwards"):
            reg.gauge("depth", 0.5, 3.0)

    def test_duplicate_points_dedup(self):
        reg = SeriesRegistry()
        reg.gauge("depth", 1.0, 3.0)
        reg.gauge("depth", 1.0, 3.0)
        assert len(reg) == 1
        reg.gauge("depth", 1.0, 4.0)  # same t, new value: kept
        assert len(reg) == 2

    def test_queries_and_as_dict(self):
        reg = SeriesRegistry()
        reg.gauge("depth", 0.0, 1.0)
        reg.gauge("depth", 1.0, 5.0)
        reg.counter("done", 1.0, 2.0)
        assert reg.names() == ["depth", "done"]
        assert reg.kind_of("depth") == "gauge"
        assert reg.peak("depth") == 5.0
        assert reg.last("done") == Sample("done", "counter", 1.0, 2.0)
        d = reg.as_dict()
        assert d["depth"]["points"] == [[0.0, 1.0], [1.0, 5.0]]
        assert d["done"]["kind"] == "counter"


# ---------------------------------------------------------------------------
# timelines: the bit-exact decomposition property, across chaos plans
# ---------------------------------------------------------------------------

def _assert_exact_decomposition(tl, art):
    """Ordered, non-overlapping, contiguous, spanning exactly."""
    segs = tl.segments
    assert segs[0].t0 == art["submit_s"]
    assert segs[-1].t1 == art["finish_s"]
    for a, b in zip(segs, segs[1:]):
        assert a.t1 == b.t0          # shared breakpoint, bit-exact
        assert a.t0 <= a.t1          # ordered, non-overlapping
    # because breakpoints are shared floats, the telescoping sum *is*
    # terminal_time - submit_time with no arithmetic involved
    assert segs[-1].t1 - segs[0].t0 == art["latency_s"]


@given(
    seed=st.integers(0, 2**16),
    plan_name=st.sampled_from([None, "serve-crash", "serve-delay"]),
    cache_on=st.booleans(),
)
@settings(max_examples=12, deadline=None)
def test_timeline_decomposition_is_exact_under_chaos(
    seed, plan_name, cache_on
):
    """Every job, every chaos plan: the timeline spans latency exactly.

    Crash/retry ladders, delays, coalesced reads and merged updates,
    cache hits, sheds, budget rejections — whatever path a job takes,
    its segments are ordered, non-overlapping, contiguous, and their
    span equals ``finish_s - submit_s`` bit-for-bit.
    """
    plan = preset_plan(plan_name, seed) if plan_name else None
    cfg = ServeBenchConfig(
        scenario="tl-prop", num_graphs=2, graph_vertices=40,
        graph_edges=120, num_jobs=12, workers=2, queue_capacity=4,
        plan=plan, cache_enabled=cache_on, coalesce_enabled=cache_on,
        seed=seed,
    )
    obs = ObsRecorder()
    run_serve_bench(cfg, obs=obs)
    report = obs.report
    assert len(obs.timelines) == len(report.jobs)
    by_id = {tl.job_id: tl for tl in obs.timelines}
    for job in report.jobs:
        art = job.artifact()
        tl = by_id[job.id]
        _assert_exact_decomposition(tl, art)
        # rebuilding from the JSON-safe artifact gives the same timeline
        assert job_timeline(art).as_dict() == tl.as_dict()
        assert set(tl.by_phase()) <= set(PHASE_OF_DECISION.values())


class TestTimelineEdges:
    def test_in_flight_job_rejected(self):
        svc = SccService(workers=1, queue_capacity=2)
        svc.register_graph("g0", cycle_graph(6))
        job = svc.submit(JobSpec("t0", JobKind.SOLVE, "g0"))
        with pytest.raises(ValueError, match="not terminal"):
            job_timeline(job)
        svc.run()
        tl = job_timeline(job)
        _assert_exact_decomposition(tl, job.artifact())

    def test_unknown_decision_fails_loud(self):
        art = {
            "id": 0, "tenant": "t", "workload": "g:solve", "state": "done",
            "submit_s": 0.0, "finish_s": 1.0, "latency_s": 1.0,
            "decisions": [
                {"t": 0.0, "decision": "submit"},
                {"t": 0.5, "decision": "teleport"},
                {"t": 1.0, "decision": "done"},
            ],
        }
        with pytest.raises(ValueError, match="teleport"):
            job_timeline(art)

    def test_segment_validation(self):
        with pytest.raises(ValueError, match="backwards"):
            Segment("x", 1.0, 0.5)

    def test_adjacent_same_phase_segments_merge(self):
        art = {
            "id": 1, "tenant": "t", "workload": "g:solve", "state": "done",
            "submit_s": 0.0, "finish_s": 3.0, "latency_s": 3.0,
            "decisions": [
                {"t": 0.0, "decision": "submit"},
                {"t": 1.0, "decision": "admit"},
                {"t": 1.5, "decision": "coalesce_requeue"},  # still queued
                {"t": 2.0, "decision": "dispatch"},
                {"t": 3.0, "decision": "complete"},
                {"t": 3.0, "decision": "done"},
            ],
        }
        tl = job_timeline(art)
        assert [s.phase for s in tl.segments] == [
            "admission", "queued", "execute"
        ]
        _assert_exact_decomposition(tl, art)


# ---------------------------------------------------------------------------
# the recorder on a live service
# ---------------------------------------------------------------------------

class TestObsRecorder:
    def run_observed(self, **kwargs):
        obs = ObsRecorder()
        svc = SccService(workers=2, queue_capacity=8, observer=obs, **kwargs)
        svc.register_graph("g0", cycle_graph(12))
        for i in range(6):
            svc.submit(JobSpec(f"t{i % 2}", JobKind.SOLVE, "g0"),
                       at=0.0005 * i)
        report = svc.run()
        obs.finalize(report)
        return obs, report

    def test_series_sampled_and_counters_monotone(self):
        obs, report = self.run_observed()
        assert obs.events_observed > 0
        reg = obs.registry
        assert "queue_depth" in reg.names()
        assert "metric:completed" in reg.names()
        done = [s.value for s in reg.series("metric:completed")]
        assert done == sorted(done) and done[-1] == report.metrics["completed"]
        peak = reg.peak("queue_depth")
        assert peak is not None and peak <= report.queue_peak_depth

    def test_latency_histogram_counts_done_jobs(self):
        obs, report = self.run_observed()
        assert obs.latency_hist.total == report.by_state().get("done", 0)
        assert len(obs.timelines) == len(report.jobs)

    def test_cache_hit_rate_gauge(self):
        obs, _ = self.run_observed(cache_enabled=True)
        assert "cache_hit_rate" in obs.registry.names()

    def test_summary_is_json_safe(self):
        obs, _ = self.run_observed()
        doc = json.loads(json.dumps(obs.summary()))
        assert doc["events_observed"] == obs.events_observed
        assert doc["latency_ms"]["p50"] is not None
        assert doc["quantile_error"] == obs.latency_hist.quantile_error

    def test_quantiles_ms_key_shapes(self):
        obs, _ = self.run_observed()
        q = obs.quantiles_ms(0.5, 0.99, 0.999)
        assert set(q) == {"p50", "p99", "p999"}


# ---------------------------------------------------------------------------
# bench rows: histogram quantiles replace the sorted list
# ---------------------------------------------------------------------------

SMALL = ServeBenchConfig(
    scenario="obs-test", num_graphs=2, graph_vertices=40, graph_edges=120,
    num_jobs=14, workers=2, queue_capacity=4, seed=0,
)


class TestBenchQuantiles:
    @pytest.mark.parametrize("plan_name", [None, "serve-crash", "serve-delay"])
    def test_row_p99_within_one_bucket_of_sorted_list(self, plan_name):
        """The PR acceptance bound, on every bench scenario."""
        plan = preset_plan(plan_name, 0) if plan_name else None
        cfg = ServeBenchConfig(**{
            **SMALL.__dict__,
            "scenario": f"obs-{plan_name or 'clean'}", "plan": plan,
        })
        obs = ObsRecorder()
        row = run_serve_bench(cfg, obs=obs)
        latencies = obs.report.done_latencies()
        if not latencies:
            assert row["p99_ms"] is None
            return
        for q, key in ((50, "p50_ms"), (99, "p99_ms"), (99.9, "p999_ms")):
            exact_s = _percentile(latencies, q)
            hist_s = row[key] / 1e3
            assert abs(hist_s - exact_s) < obs.latency_hist.bucket_width(
                exact_s
            )
        assert row["quantile_error"] == obs.latency_hist.quantile_error
        assert row["p50_ms"] <= row["p99_ms"] <= row["p999_ms"]

    def test_rows_stay_deterministic_with_recorder(self):
        a = run_serve_bench(SMALL)
        b = run_serve_bench(SMALL, obs=ObsRecorder())
        assert json.dumps(a, sort_keys=True, default=str) == \
            json.dumps(b, sort_keys=True, default=str)

    def test_old_baseline_rows_without_new_keys_still_gate(self):
        """BENCH_pr8/pr9 rows lack p999_ms/quantile_error — the serve
        gate must not require them of the baseline side."""
        from repro.cli import _serve_row_failures

        row = run_serve_bench(SMALL)
        old = {k: v for k, v in row.items()
               if k not in ("p999_ms", "quantile_error")}
        base = {(old["algorithm"], old.get("engine"), old["graph"]): old}
        failures = _serve_row_failures([row], base, tolerance=0.05)
        assert failures == []


# ---------------------------------------------------------------------------
# perfetto export
# ---------------------------------------------------------------------------

_VALID_PH = {"M", "X", "C", "b", "e"}


class TestPerfettoExport:
    def export(self, cfg=SMALL):
        obs = ObsRecorder()
        run_serve_bench(cfg, obs=obs)
        return obs, export_perfetto(obs.report, recorder=obs)

    def test_round_trips_through_json(self, tmp_path):
        obs, obj = self.export()
        path = tmp_path / "trace.json"
        dumped = dump_perfetto(obs.report, path, recorder=obs)
        back = json.loads(path.read_text())
        assert back == json.loads(json.dumps(obj)) == \
            json.loads(json.dumps(dumped))
        assert back["displayTimeUnit"] == "ms"

    def test_events_are_well_formed(self):
        _, obj = self.export()
        events = obj["traceEvents"]
        assert events, "export produced no events"
        for ev in events:
            assert ev["ph"] in _VALID_PH
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
            if ev["ph"] != "M":
                assert isinstance(ev["ts"], float) and ev["ts"] >= 0.0
            if ev["ph"] == "X":
                assert isinstance(ev["dur"], float) and ev["dur"] >= 0.0
            if ev["ph"] in ("b", "e"):
                assert "id" in ev and "cat" in ev

    def test_async_pairs_balance(self):
        _, obj = self.export()
        opens: "dict[tuple, int]" = {}
        for ev in obj["traceEvents"]:
            if ev["ph"] == "b":
                key = (ev["cat"], ev["id"], ev["name"])
                opens[key] = opens.get(key, 0) + 1
            elif ev["ph"] == "e":
                key = (ev["cat"], ev["id"], ev["name"])
                opens[key] = opens.get(key, 0) - 1
        assert all(v == 0 for v in opens.values())

    def test_job_lane_segments_sum_exactly_to_latency(self):
        """The acceptance criterion: per-job track segments sum exactly
        to the reported latency, read back from the exported JSON."""
        obs, obj = self.export()
        events = json.loads(json.dumps(obj))["traceEvents"]
        lanes: "dict[str, list]" = {}
        for ev in events:
            if ev["ph"] == "b" and ev["cat"] == "job-phase":
                lanes.setdefault(ev["id"], []).append(ev["args"])
        assert lanes
        by_id = {job.id: job for job in obs.report.jobs}
        for jid, segs in lanes.items():
            segs.sort(key=lambda a: a["t0"])
            for a, b in zip(segs, segs[1:]):
                assert a["t1"] == b["t0"]
            job = by_id[int(jid)]
            assert segs[0]["t0"] == job.submit_s
            assert segs[-1]["t1"] == job.finish_s
            assert segs[-1]["t1"] - segs[0]["t0"] == job.latency_s

    def test_solve_jobs_carry_data_plane_spans(self):
        obs, obj = self.export()
        spans = [e for e in obj["traceEvents"]
                 if e["ph"] == "X" and e.get("cat") == "span"]
        executed_solves = [
            j for j in obs.report.jobs
            if str(j.state) == "done" and j.spec.kind is JobKind.SOLVE
            and any("t_dispatch" in d and not d.get("crashed")
                    for d in j.attempts_detail)
        ]
        if executed_solves:  # job-id correlation down to launch charges
            assert spans
            assert any("launches" in s["args"] for s in spans)
            jobs_with_spans = {s["args"]["job"] for s in spans}
            assert jobs_with_spans <= {j.id for j in executed_solves}
            attempts = {
                e["args"]["job"]: e for e in obj["traceEvents"]
                if e["ph"] == "X" and e.get("cat") == "attempt"
                and not e["args"]["crashed"]
            }
            for s in spans:  # nested inside the owning attempt slice
                owner = attempts[s["args"]["job"]]
                assert s["ts"] >= owner["ts"] - 1e-6
                assert s["ts"] + s["dur"] <= owner["ts"] + owner["dur"] + 1e-6


# ---------------------------------------------------------------------------
# SLOs
# ---------------------------------------------------------------------------

class TestSLO:
    def observed_report(self):
        obs = ObsRecorder()
        run_serve_bench(SMALL, obs=obs)
        return obs.report

    def test_spec_json_round_trip(self):
        spec = SLOSpec.from_json((
            '{"name": "s", "alert_burn_rate": 2.0, "window_frac": 0.25,'
            ' "objectives": [{"name": "o", "kind": "latency",'
            ' "target": 0.9, "threshold_ms": 1.0}]}'
        ))
        assert SLOSpec.from_json(spec.to_json()) == spec

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            SLObjective("x", "throughput", 0.9)
        with pytest.raises(ValueError, match="target"):
            SLObjective("x", "availability", 0.0)
        with pytest.raises(ValueError, match="threshold_ms"):
            SLObjective("x", "latency", 0.9)
        with pytest.raises(ValueError, match="no objectives"):
            SLOSpec("empty", ())

    def test_loose_spec_passes_and_tight_spec_fails(self):
        """Both directions of the obs-slo gate, on the same run."""
        report = self.observed_report()
        loose = SLOSpec("loose", (
            SLObjective("lat", "latency", 0.5, threshold_ms=1e6),
            SLObjective("avail", "availability", 0.01),
        ))
        tight = SLOSpec("tight", (
            SLObjective("lat", "latency", 0.999, threshold_ms=1e-9),
        ))
        ok = evaluate_slo(loose, report)
        assert ok.ok and all(r.bad <= r.allowed_bad for r in ok.results)
        bad = evaluate_slo(tight, report)
        assert not bad.ok
        r = bad.results[0]
        assert r.budget_consumed > 1.0
        assert any(a["type"] == "exhausted" for a in r.alerts)

    def test_evaluate_accepts_report_dict(self):
        report = self.observed_report()
        spec = SLOSpec("d", (SLObjective("a", "availability", 0.01),))
        assert evaluate_slo(spec, report.to_dict()).ok == \
            evaluate_slo(spec, report).ok

    def test_burn_alert_precedes_exhaustion(self):
        def art(i, t, state, lat):
            return {"state": state, "finish_s": t, "latency_s": lat}
        # 20 done jobs, the last 6 slow: budget (10%) exhausted at #3
        jobs = [art(i, 0.01 * i, "done", 0.0001) for i in range(14)]
        jobs += [art(14 + i, 0.14 + 0.001 * i, "done", 9.9) for i in range(6)]
        report = {"makespan_s": 0.15, "jobs": jobs}
        spec = SLOSpec("b", (
            SLObjective("lat", "latency", 0.9, threshold_ms=1.0),
        ))
        res = evaluate_slo(spec, report).results[0]
        assert not res.ok and res.bad == 6
        assert res.allowed_bad == pytest.approx(2.0)
        kinds = [a["type"] for a in res.alerts]
        assert "burn" in kinds and kinds[-1] == "exhausted"
        burn_t = next(a["t"] for a in res.alerts if a["type"] == "burn")
        exhausted_t = next(
            a["t"] for a in res.alerts if a["type"] == "exhausted"
        )
        assert burn_t <= exhausted_t

    def test_committed_spec_passes_on_its_ci_scenario(self):
        """SLO_serve.json is calibrated for the default zipf-clean
        scenario the ``obs-slo`` CI job runs — the gate must exit 0."""
        from pathlib import Path

        from repro.cli import main

        spec_path = Path(__file__).resolve().parent.parent / "SLO_serve.json"
        spec = SLOSpec.from_json(spec_path.read_text())
        assert spec.name == "serve-default"
        assert main(["obs", "slo", "--spec", str(spec_path)]) == 0


# ---------------------------------------------------------------------------
# trace JSONL schema v3
# ---------------------------------------------------------------------------

class TestSchemaV3:
    def sample_trace(self):
        trace = Trace(meta={"scenario": "t"})
        trace.samples.append(SampleRecord("queue_depth", "gauge", 0.5, 3.0))
        trace.samples.append(SampleRecord("metric:done", "counter", 1.0, 7.0))
        trace.timelines.append(TimelineRecord(
            job_id=4, tenant="t0", workload="g0:solve", state="done",
            submit_s=0.0, finish_s=1.5,
            segments=(("admission", 0.0, 0.25), ("queued", 0.25, 1.0),
                      ("execute", 1.0, 1.5)),
        ))
        return trace

    def test_round_trip(self):
        trace = self.sample_trace()
        back = Trace.from_jsonl_str(trace.to_jsonl_str())
        assert back.schema == SCHEMA_VERSION == 3
        assert back.samples == trace.samples
        assert back.timelines == trace.timelines

    def test_recorder_to_trace_round_trips(self):
        obs = ObsRecorder()
        run_serve_bench(SMALL, obs=obs)
        trace = obs.to_trace(Trace(meta={"scenario": "obs-test"}))
        assert len(trace.samples) == len(obs.registry.samples)
        assert len(trace.timelines) == len(obs.timelines)
        back = Trace.from_jsonl_str(trace.to_jsonl_str())
        assert back.samples == trace.samples
        assert back.timelines == trace.timelines

    def test_v2_reader_acceptance(self):
        """A v2 file (spans/launches, no obs lines) still loads."""
        text = "\n".join([
            '{"type": "meta", "schema": 2, "meta": {}}',
            '{"type": "span", "id": 0, "parent": null, "depth": 0,'
            ' "name": "outer", "t0": 0.0, "t1": 1.0, "attrs": {}}',
            '{"type": "launch", "seq": 0, "kind": "launch",'
            ' "path": ["outer"], "span": 0, "kernel_launches": 1}',
        ])
        back = Trace.from_jsonl_str(text)
        assert back.schema == 2
        assert len(back.spans) == 1 and len(back.launches) == 1
        assert back.samples == [] and back.timelines == []

    def test_newer_schema_rejected(self):
        with pytest.raises(ValueError, match="newer than the supported"):
            Trace.from_jsonl_str('{"type": "meta", "schema": 4, "meta": {}}')

    def test_unknown_line_type_rejected(self):
        with pytest.raises(ValueError, match="unknown record type"):
            Trace.from_jsonl_str('{"type": "sampl", "series": "x"}')


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestObsCli:
    ARGS = ["--jobs", "10", "--graphs", "2", "--workers", "2", "--queue", "4"]

    def test_report_smoke(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "obs.json"
        assert main(["obs", "report", *self.ARGS, "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert "series" in doc and "timelines" in doc
        assert "phase decomposition" in capsys.readouterr().out

    def test_export_smoke(self, tmp_path):
        from repro.cli import main

        trace_json = tmp_path / "trace.json"
        trace_jsonl = tmp_path / "trace.jsonl"
        assert main([
            "obs", "export", *self.ARGS,
            "--out", str(trace_json), "--jsonl", str(trace_jsonl),
        ]) == 0
        obj = json.loads(trace_json.read_text())
        assert obj["traceEvents"]
        back = Trace.from_jsonl(trace_jsonl)
        assert back.schema == 3 and back.samples and back.timelines

    def test_slo_gate_both_directions(self, tmp_path):
        from repro.cli import main

        loose = tmp_path / "loose.json"
        loose.write_text(SLOSpec("loose", (
            SLObjective("avail", "availability", 0.01),
        )).to_json())
        tight = tmp_path / "tight.json"
        tight.write_text(SLOSpec("tight", (
            SLObjective("lat", "latency", 0.999, threshold_ms=1e-9),
        )).to_json())
        assert main(["obs", "slo", *self.ARGS, "--spec", str(loose)]) == 0
        assert main(["obs", "slo", *self.ARGS, "--spec", str(tight)]) == 1
