"""Reference-element orientation tests: FACES orderings must be outward.

These lock down the convention the whole geometry pipeline relies on:
the right-hand-rule normal of each face's first three nodes points out of
the unit element.
"""

import numpy as np
import pytest

from repro.mesh import ELEMENT_DIM, FACES, NODES_PER_ELEMENT, ElementType

UNIT_COORDS = {
    ElementType.QUAD: np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float),
    ElementType.HEX: np.array(
        [
            [0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0],
            [0, 0, 1], [1, 0, 1], [1, 1, 1], [0, 1, 1],
        ],
        dtype=float,
    ),
    ElementType.TET: np.array(
        [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float
    ),
    ElementType.WEDGE: np.array(
        [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 0, 1], [0, 1, 1]],
        dtype=float,
    ),
}


@pytest.mark.parametrize("etype", list(ElementType))
def test_node_counts(etype):
    assert max(max(f) for f in FACES[etype]) < NODES_PER_ELEMENT[etype]
    assert UNIT_COORDS[etype].shape[0] == NODES_PER_ELEMENT[etype]


@pytest.mark.parametrize("etype", [ElementType.HEX, ElementType.TET, ElementType.WEDGE])
def test_3d_faces_point_outward(etype):
    coords = UNIT_COORDS[etype]
    centroid = coords.mean(axis=0)
    for face in FACES[etype]:
        p = coords[list(face)]
        normal = np.cross(p[1] - p[0], p[2] - p[0])
        face_center = p.mean(axis=0)
        assert np.dot(normal, face_center - centroid) > 0, (etype, face)


def test_quad_edges_ccw_outward():
    coords = UNIT_COORDS[ElementType.QUAD]
    centroid = coords.mean(axis=0)
    for a, b in FACES[ElementType.QUAD]:
        t = coords[b] - coords[a]
        outward = np.array([t[1], -t[0]])
        edge_center = 0.5 * (coords[a] + coords[b])
        assert np.dot(outward, edge_center - centroid) > 0


@pytest.mark.parametrize("etype", list(ElementType))
def test_every_element_face_cover(etype):
    """Each node appears on at least one face; 3-D faces cover all nodes."""
    nodes = set()
    for f in FACES[etype]:
        nodes.update(f)
    assert nodes == set(range(NODES_PER_ELEMENT[etype]))


def test_element_dims():
    assert ELEMENT_DIM[ElementType.QUAD] == 2
    assert ELEMENT_DIM[ElementType.HEX] == 3
    assert ELEMENT_DIM[ElementType.TET] == 3
    assert ELEMENT_DIM[ElementType.WEDGE] == 3
