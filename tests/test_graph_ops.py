"""Unit tests for repro.graph.ops."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    CSRGraph,
    add_edges,
    cycle_graph,
    disjoint_union,
    induced_subgraph,
    permute_random,
    relabel,
    remove_edges_mask,
    replicate,
)
from repro.baselines import tarjan_scc


class TestRelabel:
    def test_identity(self):
        g = cycle_graph(4)
        h = relabel(g, np.arange(4))
        assert h.same_structure(g)

    def test_swap(self):
        g = CSRGraph.from_edges([0], [1], num_vertices=2)
        h = relabel(g, np.array([1, 0]))
        assert h.neighbors(1).tolist() == [0]

    def test_non_permutation_rejected(self):
        g = cycle_graph(3)
        with pytest.raises(GraphFormatError, match="permutation"):
            relabel(g, np.array([0, 0, 1]))

    def test_out_of_range_rejected(self):
        g = cycle_graph(3)
        with pytest.raises(GraphFormatError):
            relabel(g, np.array([0, 1, 5]))

    def test_wrong_length(self):
        with pytest.raises(GraphFormatError, match="length"):
            relabel(cycle_graph(3), np.array([0, 1]))

    def test_preserves_scc_structure(self):
        g = cycle_graph(8)
        h, mapping = permute_random(g, seed=3)
        lg = tarjan_scc(g)
        lh = tarjan_scc(h)
        # cycle stays one SCC under any relabelling
        assert np.unique(lg).size == np.unique(lh).size == 1


class TestInducedSubgraph:
    def test_by_ids(self):
        g = CSRGraph.from_edges([0, 1, 2, 3], [1, 2, 3, 0])
        sub, orig = induced_subgraph(g, np.array([0, 1, 2]))
        assert sub.num_vertices == 3
        assert sub.num_edges == 2  # 0->1, 1->2 survive
        assert orig.tolist() == [0, 1, 2]

    def test_by_mask(self):
        g = CSRGraph.from_edges([0, 1], [1, 2])
        sub, orig = induced_subgraph(g, np.array([True, True, False]))
        assert sub.num_edges == 1
        assert orig.tolist() == [0, 1]

    def test_duplicate_ids_rejected(self):
        g = cycle_graph(3)
        with pytest.raises(GraphFormatError, match="unique"):
            induced_subgraph(g, np.array([0, 0]))

    def test_bad_mask_length(self):
        g = cycle_graph(3)
        with pytest.raises(GraphFormatError):
            induced_subgraph(g, np.array([True, False]))


class TestRemoveAddEdges:
    def test_remove_mask(self):
        g = CSRGraph.from_edges([0, 1, 2], [1, 2, 0])
        h = remove_edges_mask(g, np.array([False, True, False]))
        assert h.num_edges == 2

    def test_remove_wrong_size(self):
        g = cycle_graph(3)
        with pytest.raises(GraphFormatError):
            remove_edges_mask(g, np.array([True]))

    def test_add_edges(self):
        g = CSRGraph.empty(3)
        h = add_edges(g, np.array([0]), np.array([2]))
        assert h.num_edges == 1
        assert h.neighbors(0).tolist() == [2]


class TestUnionReplicate:
    def test_disjoint_union_counts(self):
        g = disjoint_union([cycle_graph(3), cycle_graph(4)])
        assert g.num_vertices == 7
        assert g.num_edges == 7
        labels = tarjan_scc(g)
        assert np.unique(labels).size == 2

    def test_disjoint_union_empty_list(self):
        assert disjoint_union([]).num_vertices == 0

    def test_replicate_scc_count(self):
        g = cycle_graph(5)
        big = replicate(g, 10)
        assert big.num_vertices == 50
        assert big.num_edges == 50
        assert np.unique(tarjan_scc(big)).size == 10

    def test_replicate_one_copy_identity(self):
        g = cycle_graph(4)
        assert replicate(g, 1).same_structure(g)

    def test_replicate_invalid(self):
        with pytest.raises(GraphFormatError):
            replicate(cycle_graph(3), 0)
