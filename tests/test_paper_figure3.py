"""Fidelity test: the paper's Fig. 3 worked example, step by step.

The paper illustrates ECL-SCC on a 12-vertex, 15-edge graph with two
unreachable clusters.  §3.1-3.2 make concrete claims about the run:

* after Phase 2 of iteration 1, the "max" SCCs of both clusters (the ones
  containing vertices 9 and 11) satisfy ``v_in == v_out`` and every other
  vertex does not;
* iteration 1's Phase 3 separates those SCCs out;
* the final signatures identify each SCC by its max member, with all
  intra-SCC edges intact and all inter-SCC edges removed.

The exact edge list of Fig. 3a is not fully legible from the figure, so
this test constructs *a* 12-vertex/15-edge graph with the same SCC
structure the text describes (clusters {left: list-like with SCCs
{3,5},{2,9} and trivial 0,7} and {right: SCCs {1,4,6,8,10,11}}) and
checks the §3.2 claims mechanically.
"""

import numpy as np

from repro.core import ALL_ON, EclOptions, Signatures, ecl_scc
from repro.core.propagation import EdgeGrouping, propagate_sync
from repro.core.worklist import DoubleBufferWorklist, phase3_filter
from repro.device import A100, VirtualDevice
from repro.graph import CSRGraph
from repro.baselines import tarjan_scc

EDGES = [
    (0, 3), (3, 5), (5, 3),          # left cluster: 0 -> SCC {3,5}
    (5, 7), (7, 9),                  # ... -> 7 -> SCC {2,9}
    (9, 2), (2, 9),
    (1, 4), (4, 6), (6, 1),          # right cluster: SCC {1,4,6,8,10,11}
    (4, 8), (8, 10), (10, 4),
    (6, 11), (11, 6),
]


def build():
    src, dst = zip(*EDGES)
    return CSRGraph.from_edges(src, dst, 12, name="fig3")


def test_shape():
    g = build()
    assert g.num_vertices == 12
    assert g.num_edges == 15


def test_final_sccs():
    g = build()
    truth = tarjan_scc(g)
    res = ecl_scc(g)
    assert np.array_equal(res.labels, truth)
    # SCC structure the figure describes
    assert res.labels[3] == res.labels[5] == 5
    assert res.labels[2] == res.labels[9] == 9
    for v in (1, 4, 6, 8, 10, 11):
        assert res.labels[v] == 11
    assert res.labels[0] == 0 and res.labels[7] == 7
    assert res.num_sccs == 5


def test_phase2_identifies_max_sccs_first():
    """§3.2.1: after the first Phase-2 fixed point, exactly the max SCC of
    each cluster satisfies v_in == v_out."""
    g = build()
    sigs = Signatures.identity(12)
    src, dst = g.edges()
    grouping = EdgeGrouping.build(src, dst)
    propagate_sync(
        sigs, grouping, VirtualDevice(A100),
        EclOptions(async_phase2=False), 12,
    )
    done = sigs.completed()
    # left cluster's max SCC is {2, 9}; right cluster's is the big one
    expected_done = {2, 9, 1, 4, 6, 8, 10, 11}
    assert set(np.flatnonzero(done).tolist()) == expected_done
    # every member of a max SCC carries the cluster's max ID
    assert sigs.sig_in[2] == sigs.sig_in[9] == 9
    for v in (1, 4, 6, 8, 10, 11):
        assert sigs.sig_in[v] == 11
    # ancestors of the max SCC carry its ID in v_out but not v_in
    for v in (0, 3, 5, 7):
        assert sigs.sig_out[v] == 9
        assert sigs.sig_in[v] != 9


def test_phase3_separates_max_sccs():
    """§3.2.1: iteration 1's edge removal detaches the max SCCs."""
    g = build()
    sigs = Signatures.identity(12)
    src, dst = g.edges()
    grouping = EdgeGrouping.build(src, dst)
    dev = VirtualDevice(A100)
    propagate_sync(sigs, grouping, dev, EclOptions(async_phase2=False), 12)
    wl = DoubleBufferWorklist(src.copy(), dst.copy())
    phase3_filter(wl, sigs, dev, ALL_ON)
    survivors = set(zip(wl.src.tolist(), wl.dst.tolist()))
    # no surviving edge touches a completed (max-SCC) vertex
    done = set(np.flatnonzero(sigs.completed()).tolist())
    assert all(u not in done and v not in done for u, v in survivors)
    # intra-SCC edges of the *unfinished* SCC {3,5} survive
    assert (3, 5) in survivors and (5, 3) in survivors


def test_never_removes_intra_scc_edges():
    """§3.2.1's final guarantee, on this graph, for every iteration."""
    g = build()
    truth = tarjan_scc(g)
    res = ecl_scc(g, options=ALL_ON.disabling("remove_scc_edges"))
    # with plain Phase 3, exactly the intra-SCC edges remain at the end
    src, dst = g.edges()
    intra = int(np.count_nonzero(truth[src] == truth[dst]))
    assert res.edges_final == intra == 12


def test_converges_in_few_iterations():
    """the text: 'terminates after repeating these three phases a couple
    more times' — single digits, not |V|."""
    res = ecl_scc(build())
    assert res.outer_iterations <= 4
