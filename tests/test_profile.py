"""Tests for the kernel-grain profiling layer (``repro.profile``):
ledger completeness, per-phase attribution summing to the device total,
roofline classification of the paper's performance claims, trace
diffing, schema versioning, and the CLI surface."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import fb_scc, gpu_scc, ispan_scc
from repro.bench import run_algorithm
from repro.core import ecl_scc, minmax_scc
from repro.core.options import engine_options
from repro.device import A100, XEON_6226R, VirtualDevice
from repro.distributed import block_partition, distributed_ecl_scc
from repro.distributed.cluster import ClusterSpec
from repro.faults import FaultPlan
from repro.graph import random_gnm, scc_ladder
from repro.profile import (
    CLASSIFICATIONS,
    aggregate_counters,
    attribute_launches,
    build_profile,
    diff_traces,
    profile_cluster,
    profile_run,
    render_cluster_profile,
    render_diff,
    render_profile,
    to_prometheus,
)
from repro.trace import (
    SCHEMA_VERSION,
    NullTracer,
    Tracer,
    dumps_jsonl,
    loads_jsonl,
    render_summary,
)


def flickr_32():
    from repro.graph.suite import powerlaw_suite

    (g, _), = powerlaw_suite(names=["flickr"], scale=1 / 32)
    return g


# ---------------------------------------------------------------------------
# ledger mechanics
# ---------------------------------------------------------------------------

class TestLedger:
    def test_ledger_covers_every_counter(self):
        g = random_gnm(120, 400, seed=1)
        tr = Tracer()
        res = ecl_scc(g, tracer=tr)
        tr.finish()
        agg = aggregate_counters(res.trace.launches).snapshot()
        assert agg == res.device.counters.snapshot()

    def test_null_tracer_attaches_nothing(self):
        g = scc_ladder(12)
        res = ecl_scc(g, tracer=NullTracer())
        assert res.device.ledger is None
        assert res.trace is None

    def test_tracing_does_not_perturb_counters(self):
        g = random_gnm(90, 300, seed=2)
        tr = Tracer()
        traced = ecl_scc(g, tracer=tr)
        tr.finish()
        untraced = ecl_scc(g)
        assert traced.device.counters.snapshot() == \
            untraced.device.counters.snapshot()

    def test_records_carry_span_paths(self):
        g = scc_ladder(8)
        tr = Tracer()
        res = ecl_scc(g, tracer=tr)
        tr.finish()
        paths = {rec.path for rec in res.trace.launches}
        assert ("outer-iteration", "phase1-init") in paths
        assert ("outer-iteration", "phase2-propagate") in paths
        kinds = {rec.kind for rec in res.trace.launches}
        assert kinds <= {"launch", "work", "serial", "round"}

    def test_oracle_serial_charge_is_ledgered(self):
        g = scc_ladder(10)
        tr = Tracer()
        rr = run_algorithm(g, "tarjan", A100, tracer=tr)
        tr.finish()
        agg = aggregate_counters(rr.trace.launches).snapshot()
        assert agg == rr.counters
        assert agg["serial_work"] > 0
        (rec,) = [r for r in rr.trace.launches if r.kind == "serial"]
        assert rec.path[-1] == "serial-oracle"


# ---------------------------------------------------------------------------
# attribution sums to the device estimate
# ---------------------------------------------------------------------------

ENGINES = ("sync", "async", "atomic", "frontier", "adaptive")
BACKENDS = ("dense", "frontier")
DEVICES = (A100, XEON_6226R)


class TestAttributionSum:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("device", DEVICES, ids=lambda d: d.name)
    def test_matrix_sums_to_device_seconds(self, engine, backend, device):
        g = random_gnm(150, 500, seed=5)
        tr = Tracer()
        res = ecl_scc(
            g, options=engine_options(engine), device=device,
            backend=backend, tracer=tr,
        )
        tr.finish()
        report = profile_run(res)
        assert report.attributed_seconds == pytest.approx(
            report.device_seconds, rel=1e-9
        )
        assert report.device_seconds == res.device.seconds

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(2, 60),
        m=st.integers(0, 200),
        seed=st.integers(0, 2**16),
        engine=st.sampled_from(ENGINES),
        device=st.sampled_from(DEVICES),
    )
    def test_property_attribution_is_exact(self, n, m, seed, engine, device):
        g = random_gnm(n, m, seed=seed)
        tr = Tracer()
        res = ecl_scc(
            g, options=engine_options(engine), device=device, tracer=tr
        )
        tr.finish()
        report = profile_run(res)
        assert report.attributed_seconds == pytest.approx(
            report.device_seconds, rel=1e-9
        )

    def test_baselines_and_minmax_sum(self):
        g = random_gnm(100, 350, seed=9)
        for fn in (gpu_scc, ispan_scc, fb_scc, minmax_scc):
            tr = Tracer()
            res = fn(g, tracer=tr)
            tr.finish()
            report = profile_run(res)
            assert report.attributed_seconds == pytest.approx(
                report.device_seconds, rel=1e-9
            ), fn.__name__

    def test_faulted_runs_stay_exact(self):
        g = flickr_32()
        for plan in (FaultPlan.monotone(0), FaultPlan.chaos(0)):
            tr = Tracer()
            rr = run_algorithm(g, "ecl-scc", A100, tracer=tr, faults=plan)
            tr.finish()
            agg = aggregate_counters(rr.trace.launches).snapshot()
            assert agg == rr.counters  # bit-identical through crash/heal
            report = profile_run(rr)
            assert report.attributed_seconds == pytest.approx(
                report.device_seconds, rel=1e-9
            )


# ---------------------------------------------------------------------------
# golden report + the paper's classification claims
# ---------------------------------------------------------------------------

class TestGoldenToroidHex:
    """Pinned ProfileReport for ecl-scc (dense/sync) on toroid-hex:o0."""

    GOLDEN = {
        "outer-iteration/phase1-init": (18, 0, "launch-overhead-bound"),
        "outer-iteration/phase2-propagate": (35, 311, "launch-overhead-bound"),
        "outer-iteration": (18, 0, "launch-overhead-bound"),
        "outer-iteration/phase3-filter": (17, 0, "launch-overhead-bound"),
    }

    def test_golden_report(self):
        from repro.mesh.suite import small_mesh_suite

        grp, = small_mesh_suite(names=["toroid-hex"], num_ordinates=1)
        tr = Tracer()
        rr = run_algorithm(grp.graphs[0], "ecl-scc", A100, tracer=tr)
        tr.finish()
        report = profile_run(rr)
        got = {
            ph.name: (ph.launches, ph.rounds, ph.classification)
            for ph in report.phases
        }
        assert got == self.GOLDEN
        assert report.binding == "launch-overhead-bound"
        assert report.attributed_seconds == pytest.approx(
            rr.model_seconds, rel=1e-9
        )


class TestPaperClaims:
    """Machine-checked §5 claims: ECL-SCC's Phase 2 is bandwidth-bound on
    power-law graphs; the recursive baselines drown in launch overhead."""

    def test_ecl_phase2_is_irregular_bandwidth_bound(self):
        g = flickr_32()
        tr = Tracer()
        rr = run_algorithm(g, "ecl-scc", A100, tracer=tr)
        tr.finish()
        report = profile_run(rr)
        phase2 = report.phase("phase2-propagate")
        assert phase2.classification == "irregular-bandwidth-bound"

    def test_fb_and_ispan_are_launch_overhead_bound(self):
        g = flickr_32()
        for algo in ("fb", "ispan"):
            tr = Tracer()
            rr = run_algorithm(g, algo, A100, tracer=tr)
            tr.finish()
            assert profile_run(rr).binding == "launch-overhead-bound", algo

    def test_serial_oracle_is_serial_bound(self):
        tr = Tracer()
        rr = run_algorithm(scc_ladder(20), "tarjan", A100, tracer=tr)
        tr.finish()
        assert profile_run(rr).binding == "serial-bound"


# ---------------------------------------------------------------------------
# report exports
# ---------------------------------------------------------------------------

class TestReportExports:
    def make_report(self):
        tr = Tracer()
        res = ecl_scc(scc_ladder(16), tracer=tr)
        tr.finish()
        return profile_run(res)

    def test_json_round_trip(self):
        report = self.make_report()
        payload = json.loads(report.to_json())
        assert payload["device"] == "A100"
        assert payload["binding"] == report.binding
        names = [ph["phase"] for ph in payload["phases"]]
        assert "outer-iteration/phase2-propagate" in names
        total = sum(ph["total_seconds"] for ph in payload["phases"])
        assert total == pytest.approx(payload["device_seconds"], rel=1e-9)

    def test_prometheus_exposition(self):
        text = to_prometheus(self.make_report())
        assert "# TYPE repro_profile_phase_seconds gauge" in text
        assert 'phase="outer-iteration/phase2-propagate"' in text
        assert 'resource="launch"' in text
        assert text.splitlines()[-1].startswith("repro_profile_device_seconds")

    def test_render_mentions_every_phase(self):
        report = self.make_report()
        text = render_profile(report)
        for ph in report.phases:
            assert ph.name in text
        assert "binding:" in text

    def test_phase_lookup(self):
        report = self.make_report()
        assert report.phase("phase1-init").launches > 0
        with pytest.raises(KeyError):
            report.phase("nonexistent-phase")

    def test_classification_vocabulary(self):
        assert set(CLASSIFICATIONS.values()) == {
            "launch-overhead-bound", "irregular-bandwidth-bound",
            "streaming-bound", "atomic-bound", "serial-bound",
            "compute-bound",
        }


# ---------------------------------------------------------------------------
# schema versioning + diffing
# ---------------------------------------------------------------------------

def traced_run(graph, **kwargs):
    tr = Tracer(
        meta={
            "device": "A100",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        }
    )
    run_algorithm(graph, "ecl-scc", A100, tracer=tr, **kwargs)
    return tr.finish()


class TestSchemaAndDiff:
    def test_jsonl_header_declares_schema(self):
        trace = traced_run(scc_ladder(8))
        head = json.loads(dumps_jsonl(trace).splitlines()[0])
        assert head["type"] == "meta"
        assert head["schema"] == SCHEMA_VERSION == 3

    def test_launch_records_round_trip(self):
        trace = traced_run(scc_ladder(8))
        back = loads_jsonl(dumps_jsonl(trace))
        assert back.schema == trace.schema
        assert len(back.launches) == len(trace.launches)
        assert back.launches == trace.launches

    def test_legacy_headerless_trace_is_schema_1(self):
        trace = traced_run(scc_ladder(8))
        body = "\n".join(
            ln for ln in dumps_jsonl(trace).splitlines()
            if json.loads(ln)["type"] != "meta"
        )
        back = loads_jsonl(body)
        assert back.schema == 1
        assert len(back.spans) == len(trace.spans)

    def test_future_schema_is_rejected(self):
        with pytest.raises(ValueError, match="newer than the supported"):
            loads_jsonl('{"type": "meta", "schema": 99, "meta": {}}')

    def test_diff_rejects_mixed_schemas(self):
        a = traced_run(scc_ladder(8))
        b = traced_run(scc_ladder(8))
        b.schema = 1
        with pytest.raises(ValueError, match="mixed trace schema"):
            diff_traces(a, b)

    def test_diff_explains_regression(self):
        base = traced_run(scc_ladder(16))
        new = traced_run(scc_ladder(48))
        diff = diff_traces(base, new)
        assert diff.new_total > diff.base_total
        top = diff.top_regression
        assert top is not None and top.delta > 0
        assert top.phase == "outer-iteration/phase2-propagate"
        assert "bytes_moved" in top.explain()
        text = render_diff(diff)
        assert "top regressed phase" in text
        payload = diff.to_dict()
        assert payload["top_regression"]["phase"] == top.phase

    def test_diff_of_identical_traces_has_no_regression(self):
        base = traced_run(scc_ladder(16))
        new = traced_run(scc_ladder(16))
        diff = diff_traces(base, new)
        assert diff.top_regression is None
        assert "no phase regressed" in render_diff(diff)


# ---------------------------------------------------------------------------
# summary self time
# ---------------------------------------------------------------------------

class TestSummarySelfTime:
    def test_self_time_excludes_children(self):
        import itertools

        counter = itertools.count()
        tr = Tracer(clock=lambda: float(next(counter)))
        with tr.span("outer"):      # t 0..5: total 5
            with tr.span("inner"):  # t 1..2: total 1
                pass
            with tr.span("inner"):  # t 3..4: total 1
                pass
        trace = tr.finish()
        text = render_summary(trace)
        header = next(ln for ln in text.splitlines() if "total" in ln)
        assert "self" in header
        from repro.trace.summary import summarize_spans

        stats = {"/".join(ps.path): ps for ps in summarize_spans(trace)}
        assert stats["outer"].total == 5.0
        assert stats["outer"].self_total == 3.0
        assert stats["outer/inner"].self_total == 2.0


# ---------------------------------------------------------------------------
# cluster profiles
# ---------------------------------------------------------------------------

class TestClusterProfile:
    def test_per_phase_and_straggler_summary(self):
        g = random_gnm(300, 1200, seed=11)
        spec = ClusterSpec(num_ranks=4, stragglers=(1.0, 1.0, 2.5, 1.0))
        res = distributed_ecl_scc(g, block_partition(g, 4), spec)
        prof = profile_cluster(res.cluster)
        assert prof.ranks == 4
        assert set(prof.phases) <= {
            "phase1-init", "phase2-exchange", "phase3-filter",
        }
        assert prof.critical_seconds == pytest.approx(
            sum(ph["seconds"] for ph in prof.phases.values())
        )
        assert prof.imbalance >= 1.0
        assert 0.0 <= prof.idle_fraction < 1.0
        text = render_cluster_profile(prof)
        assert "imbalance" in text and "phase2-exchange" in text

    def test_compute_straggler_is_detected(self):
        # a pure-compute workload so the straggler factor dominates
        from repro.distributed.cluster import VirtualCluster

        spec = ClusterSpec(num_ranks=4, stragglers=(1.0, 1.0, 3.0, 1.0))
        cluster = VirtualCluster(spec)
        for _ in range(5):
            cluster.superstep(np.full(4, 1e6), label="work")
        prof = profile_cluster(cluster)
        assert prof.slowest_rank == 2
        assert prof.stragglers == [2]
        assert prof.imbalance == pytest.approx(2.0)  # 3.0 / mean(1,1,3,1)

    def test_to_dict_is_json_serializable(self):
        g = scc_ladder(12)
        res = distributed_ecl_scc(g, block_partition(g, 2))
        payload = json.loads(json.dumps(profile_cluster(res.cluster).to_dict()))
        assert payload["ranks"] == 2


# ---------------------------------------------------------------------------
# checkpoint/restore keeps ledger and counters aligned
# ---------------------------------------------------------------------------

class TestRecoveryLedger:
    def test_crash_restore_truncates_ledger(self):
        g = flickr_32()
        plan = FaultPlan.monotone(0)
        tr = Tracer()
        faulted = run_algorithm(g, "ecl-scc", A100, tracer=tr, faults=plan)
        tr.finish()
        clean = run_algorithm(g, "ecl-scc", A100)
        # the checkpoint charges are extra, but ledger == counters holds
        agg = aggregate_counters(faulted.trace.launches).snapshot()
        assert agg == faulted.counters
        assert np.array_equal(faulted.labels, clean.labels)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestProfileCli:
    def test_profile_table(self, capsys):
        from repro.cli import main

        assert main(["profile", "ladder:16"]) == 0
        out = capsys.readouterr().out
        assert "phase2-propagate" in out
        assert "classification" in out

    def test_profile_json(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "profile.json"
        assert main(["profile", "ladder:16", "--json", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["binding"]
        total = sum(ph["total_seconds"] for ph in payload["phases"])
        assert total == pytest.approx(payload["device_seconds"], rel=1e-9)

    def test_profile_prometheus_stdout(self, capsys):
        from repro.cli import main

        assert main(["profile", "ladder:16", "--prom"]) == 0
        assert "repro_profile_device_seconds" in capsys.readouterr().out

    def test_profile_mesh_workload(self, capsys):
        from repro.cli import main

        assert main(["profile", "mesh:toroid-hex:0"]) == 0
        assert "binding:" in capsys.readouterr().out

    def test_profile_distributed(self, capsys):
        from repro.cli import main

        assert main([
            "profile", "ladder:16", "--ranks", "2",
            "--stragglers", "1.0,1.5",
        ]) == 0
        assert "imbalance" in capsys.readouterr().out

    def test_trace_diff_cli(self, tmp_path, capsys):
        from repro.cli import main

        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        for path, rungs in ((a, "16"), (b, "48")):
            assert main([
                "trace", f"ladder:{rungs}", "--jsonl", str(path),
                "--no-summary",
            ]) == 0
        assert main(["trace", "diff", str(a), str(b)]) == 0
        assert "top regressed phase" in capsys.readouterr().out

    def test_trace_diff_needs_two_files(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="exactly two"):
            main(["trace", "diff"])

    def test_smoke_rows_include_profile_counters(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "smoke.json"
        assert main(["bench", "smoke", "--json", str(out_file)]) == 0
        rows = json.loads(out_file.read_text())["results"]
        ecl = [r for r in rows if r["algorithm"] == "ecl-scc"]
        for row in ecl:
            for key in ("bytes_streamed", "global_barriers", "atomics",
                        "rounds"):
                assert key in row, key
            assert "phases" in row

    def test_compare_accepts_pre_profiling_baseline(self, tmp_path, capsys):
        from repro.cli import _bench_compare

        baseline = {
            "results": [
                {
                    "algorithm": "ecl-scc", "graph": "g", "num_sccs": 3,
                    "model_seconds": 1.0,
                },
            ]
        }
        path = tmp_path / "base.json"
        path.write_text(json.dumps(baseline))
        row = {
            "algorithm": "ecl-scc", "graph": "g", "num_sccs": 3,
            "model_seconds": 1.0, "bytes_moved": 10, "kernel_launches": 2,
            "phases": {"p2": {"seconds": 0.9, "launches": 1,
                              "classification": "launch-overhead-bound"}},
        }
        assert _bench_compare([row], str(path), 0.05) == 0
        bad = dict(row, model_seconds=2.0)
        assert _bench_compare([bad], str(path), 0.05) == 1
        out = capsys.readouterr().out
        assert "top regressed phase: p2" in out
