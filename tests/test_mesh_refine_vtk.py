"""Tests for uniform refinement and VTK export."""

import numpy as np
import pytest

from repro.baselines import tarjan_scc
from repro.errors import MeshError
from repro.graph import dag_depth
from repro.mesh import (
    beam_hex,
    hex_to_tets,
    hex_to_wedges,
    interior_faces,
    klein_bottle,
    refine_uniform,
    star,
    structured_hex_grid,
    sweep_graphs,
    toroid_hex,
    write_vtk,
)


class TestRefine:
    def test_hex_counts_and_nodes(self):
        m = structured_hex_grid((2, 3, 1))
        r = refine_uniform(m)
        assert r.num_elements == 8 * m.num_elements
        # a refined structured grid equals the (2a, 2b, 2c) grid
        assert r.num_points == 5 * 7 * 3

    def test_quad_counts(self):
        m = star(4)
        r = refine_uniform(m)
        assert r.num_elements == 4 * m.num_elements

    @pytest.mark.parametrize("split", [hex_to_tets, hex_to_wedges])
    def test_split_meshes_refine_conformally(self, split):
        m = split(structured_hex_grid((2, 2, 1)))
        r = refine_uniform(m)
        assert r.num_elements == 8 * m.num_elements
        interior_faces(r)  # raises MeshTopologyError on non-manifold output

    def test_refined_grid_conformal(self):
        r = refine_uniform(structured_hex_grid((2, 2, 2)))
        fs = interior_faces(r)
        # (4,4,4) structured grid interior face count
        assert fs.num_faces == 3 * (3 * 4 * 4)

    def test_zero_times_is_identity(self):
        m = beam_hex(2)
        assert refine_uniform(m, 0) is m

    def test_multiple_times(self):
        m = structured_hex_grid((1, 1, 1))
        assert refine_uniform(m, 2).num_elements == 64

    def test_negative_times(self):
        with pytest.raises(MeshError):
            refine_uniform(beam_hex(1), -1)

    def test_identified_mesh_refused(self):
        with pytest.raises(MeshError, match="identified"):
            refine_uniform(klein_bottle(3))

    def test_transform_carried(self):
        m = toroid_hex(2)
        r = refine_uniform(m)
        assert r.is_curved and r.order == m.order

    def test_geometry_conserved(self):
        """Refined base geometry covers the same bounding box."""
        m = structured_hex_grid((2, 2, 2), (3.0, 2.0, 1.0))
        r = refine_uniform(m)
        lo0, hi0 = m.bounding_box()
        lo1, hi1 = r.bounding_box()
        assert np.allclose(lo0, lo1) and np.allclose(hi0, hi1)

    def test_refined_sweep_graph_class_preserved(self):
        """Refining beam-hex keeps all-trivial SCCs and deepens the DAG."""
        m = beam_hex(2)
        r = refine_uniform(m)
        _, g0 = sweep_graphs(m, 1)[0]
        _, g1 = sweep_graphs(r, 1)[0]
        l0, l1 = tarjan_scc(g0), tarjan_scc(g1)
        assert np.unique(l1).size == g1.num_vertices  # still all-trivial
        assert dag_depth(g1, l1) > dag_depth(g0, l0)


class TestVtk:
    def test_write_and_structure(self, tmp_path):
        m = structured_hex_grid((2, 1, 1))
        p = tmp_path / "m.vtk"
        write_vtk(p, m)
        txt = p.read_text().splitlines()
        assert txt[0].startswith("# vtk DataFile")
        assert "DATASET UNSTRUCTURED_GRID" in txt
        assert f"POINTS {m.num_points} double" in txt
        assert f"CELL_TYPES {m.num_elements}" in txt
        assert txt.count("12") >= 2  # hexahedron type code rows

    def test_cell_data_int_and_float(self, tmp_path):
        m = star(2)
        p = tmp_path / "s.vtk"
        write_vtk(
            p, m,
            cell_data={
                "scc": np.arange(m.num_elements),
                "flux": np.linspace(0, 1, m.num_elements),
            },
        )
        txt = p.read_text()
        assert "SCALARS scc int 1" in txt
        assert "SCALARS flux double 1" in txt

    def test_2d_points_padded(self, tmp_path):
        m = star(2)
        p = tmp_path / "s.vtk"
        write_vtk(p, m)
        # every point line has 3 coordinates
        lines = p.read_text().splitlines()
        start = lines.index(f"POINTS {m.num_points} double") + 1
        assert all(len(l.split()) == 3 for l in lines[start : start + m.num_points])

    def test_bad_cell_data_shape(self, tmp_path):
        m = star(2)
        with pytest.raises(MeshError, match="one value per element"):
            write_vtk(tmp_path / "x.vtk", m, cell_data={"bad": np.zeros(3)})

    def test_base_points_option(self, tmp_path):
        m = toroid_hex(2)
        a = tmp_path / "curved.vtk"
        b = tmp_path / "straight.vtk"
        write_vtk(a, m, use_curved_points=True)
        write_vtk(b, m, use_curved_points=False)
        assert a.read_text() != b.read_text()
