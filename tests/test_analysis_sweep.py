"""Tests for analysis (stats, verification) and the sweep application."""

import numpy as np
import pytest

from repro.analysis import (
    assert_valid_scc_labels,
    partitions_equal,
    scc_size_histogram,
    scc_statistics,
    verify_labels,
)
from repro.baselines import tarjan_scc
from repro.core import ecl_scc
from repro.errors import VerificationError
from repro.graph import CSRGraph, cycle_graph, path_graph, scc_ladder
from repro.mesh import sweep_graphs, toroid_hex, twist_hex
from repro.sweep import solve_transport_sweep, sweep_schedule


class TestPartitionsEqual:
    def test_identical(self):
        a = np.array([0, 0, 1])
        assert partitions_equal(a, a)

    def test_renamed(self):
        assert partitions_equal(np.array([0, 0, 1]), np.array([9, 9, 4]))

    def test_coarser_rejected(self):
        assert not partitions_equal(np.array([0, 0, 1]), np.array([0, 0, 0]))

    def test_finer_rejected(self):
        assert not partitions_equal(np.array([0, 0, 0]), np.array([0, 1, 2]))

    def test_shape_mismatch(self):
        assert not partitions_equal(np.array([0]), np.array([0, 1]))

    def test_empty(self):
        assert partitions_equal(np.array([]), np.array([]))


class TestVerifyLabels:
    def test_accepts_correct(self):
        g = cycle_graph(5)
        verify_labels(g, tarjan_scc(g))

    def test_rejects_wrong(self):
        g = cycle_graph(5)
        with pytest.raises(VerificationError):
            verify_labels(g, np.arange(5))

    def test_rejects_bad_length(self):
        with pytest.raises(VerificationError):
            verify_labels(cycle_graph(5), np.zeros(3, dtype=np.int64))

    def test_custom_oracle(self):
        g = path_graph(4)
        verify_labels(g, np.arange(4), oracle=lambda gg: np.arange(4))

    def test_assert_valid_structure(self):
        assert_valid_scc_labels(np.array([2, 2, 2, 3]))
        assert_valid_scc_labels(np.array([1, 1]))
        assert_valid_scc_labels(np.array([], dtype=np.int64))

    def test_assert_invalid_rep(self):
        with pytest.raises(VerificationError):
            assert_valid_scc_labels(np.array([1, 0]))  # rep 1 labelled 0? labels[1]=0 != 1

    def test_assert_out_of_range(self):
        with pytest.raises(VerificationError):
            assert_valid_scc_labels(np.array([0, 5]))


class TestSccStats:
    def test_ladder(self):
        g = scc_ladder(4)
        s = scc_statistics(g, tarjan_scc(g))
        assert s.num_sccs == 4
        assert s.size2_sccs == 4
        assert s.size1_sccs == 0
        assert s.largest_scc == 2
        assert s.dag_depth == 4

    def test_without_depth(self):
        g = cycle_graph(4)
        s = scc_statistics(g, tarjan_scc(g), with_depth=False)
        assert s.dag_depth == 0

    def test_histogram(self):
        labels = np.array([0, 0, 1, 2, 2, 2])
        sizes, counts = scc_size_histogram(labels)
        assert sizes.tolist() == [1, 2, 3]
        assert counts.tolist() == [1, 1, 1]

    def test_as_row_keys(self):
        g = cycle_graph(3)
        row = scc_statistics(g, tarjan_scc(g)).as_row()
        assert row["sccs"] == 1 and row["largest"] == 3


class TestSweepSchedule:
    def test_path_schedule(self):
        g = path_graph(4)
        sch = sweep_schedule(g, tarjan_scc(g))
        assert sch.depth == 4
        assert [lv.tolist() for lv in sch.levels] == [[0], [1], [2], [3]]
        assert sch.num_nontrivial == 0

    def test_cycle_one_level(self):
        g = cycle_graph(5)
        sch = sweep_schedule(g, tarjan_scc(g))
        assert sch.depth == 1
        assert sch.num_nontrivial == 1

    def test_validate_against(self):
        g = scc_ladder(5)
        labels = tarjan_scc(g)
        sch = sweep_schedule(g, labels)
        assert sch.validate_against(g, labels)

    def test_max_parallelism(self):
        g = CSRGraph.from_adjacency([[2], [2], []])
        sch = sweep_schedule(g, tarjan_scc(g))
        assert sch.max_parallelism() == 2


class TestTransportSweep:
    def test_acyclic_exact(self):
        g = path_graph(5)
        labels = tarjan_scc(g)
        sch = sweep_schedule(g, labels)
        res = solve_transport_sweep(g, sch, labels, sigma_t=2.0, coupling=0.5)
        # psi[0]=0.5, psi[k] = (1 + 0.5 psi[k-1]) / 2
        expect = [0.5]
        for _ in range(4):
            expect.append((1 + 0.5 * expect[-1]) / 2)
        assert np.allclose(res.psi, expect)
        assert res.scc_inner_iterations == 0
        assert res.residual < 1e-12

    def test_cyclic_converges(self):
        g = cycle_graph(6)
        labels = tarjan_scc(g)
        sch = sweep_schedule(g, labels)
        res = solve_transport_sweep(g, sch, labels)
        assert res.scc_inner_iterations > 0
        assert res.residual < 1e-10
        # symmetric cycle: constant flux psi = q / (sigma - c)
        assert np.allclose(res.psi, 1.0 / (2.0 - 0.45))

    def test_mesh_end_to_end(self):
        mesh = toroid_hex(2)
        _, g = sweep_graphs(mesh, 1)[0]
        labels = ecl_scc(g).labels
        sch = sweep_schedule(g, labels)
        assert sch.validate_against(g, labels)
        res = solve_transport_sweep(g, sch, labels)
        assert res.residual < 1e-9
        assert np.all(res.psi > 0)

    def test_giant_scc_mesh(self):
        mesh = twist_hex(2)
        _, g = sweep_graphs(mesh, 1)[0]
        labels = ecl_scc(g).labels
        sch = sweep_schedule(g, labels)
        res = solve_transport_sweep(g, sch, labels, coupling=0.3)
        assert res.levels_processed == 1
        assert res.residual < 1e-9
