"""Tests for discrete ordinates and coordinate transforms."""

import numpy as np
import pytest

from repro.errors import MeshError
from repro.mesh import (
    compose,
    klein_map,
    level_symmetric_s4,
    level_symmetric_s6,
    mobius_map,
    ordinates_2d,
    ordinates_3d,
    ordinates_for,
    sinusoidal_wobble,
    torus_map,
    twist_about_z,
)


class TestOrdinates:
    def test_2d_unit_vectors(self):
        o = ordinates_2d(8)
        assert o.shape == (8, 2)
        assert np.allclose(np.linalg.norm(o, axis=1), 1.0)

    def test_2d_distinct(self):
        o = ordinates_2d(16)
        assert np.unique(np.round(o, 8), axis=0).shape[0] == 16

    def test_2d_not_axis_aligned(self):
        o = ordinates_2d(4)
        assert np.abs(o).min() > 1e-3

    def test_3d_unit_vectors(self):
        o = ordinates_3d(30)
        assert o.shape == (30, 3)
        assert np.allclose(np.linalg.norm(o, axis=1), 1.0)

    def test_3d_well_spread(self):
        o = ordinates_3d(61)
        dots = o @ o.T - 2 * np.eye(61)
        assert dots.max() < 0.999  # no duplicated directions

    def test_3d_covers_hemispheres(self):
        o = ordinates_3d(32)
        assert (o[:, 2] > 0).any() and (o[:, 2] < 0).any()

    def test_invalid_count(self):
        with pytest.raises(MeshError):
            ordinates_2d(0)
        with pytest.raises(MeshError):
            ordinates_3d(0)

    def test_dispatch(self):
        assert ordinates_for(2, 4).shape == (4, 2)
        assert ordinates_for(3, 4).shape == (4, 3)
        with pytest.raises(MeshError):
            ordinates_for(4, 4)

    def test_level_symmetric_sets(self):
        for s, count in ((level_symmetric_s4(), 24), (level_symmetric_s6(), 48)):
            assert s.shape == (count, 3)
            assert np.allclose(np.linalg.norm(s, axis=1), 1.0, atol=1e-6)
            # octant symmetry: negating any axis permutes the set
            for ax in range(3):
                flipped = s.copy()
                flipped[:, ax] *= -1
                a = np.sort(np.round(s, 6).view("f8").reshape(count, 3), axis=0)
                b = np.sort(np.round(flipped, 6), axis=0)
                assert np.allclose(a, b)


class TestTransforms:
    def test_twist_preserves_z_and_radius(self):
        t = twist_about_z(2.0, 10.0)
        p = np.array([[1.0, 0.0, 5.0], [0.5, 0.5, 2.0]])
        q = t(p)
        assert np.allclose(q[:, 2], p[:, 2])
        assert np.allclose(
            np.hypot(q[:, 0], q[:, 1]), np.hypot(p[:, 0], p[:, 1])
        )

    def test_twist_angle(self):
        t = twist_about_z(1.0, 4.0)  # one turn over z in [0, 4]
        q = t(np.array([[1.0, 0.0, 1.0]]))
        ang = np.arctan2(q[0, 1], q[0, 0])
        assert np.isclose(ang, np.pi / 2)

    def test_wobble_smooth_and_bounded(self):
        w = sinusoidal_wobble(0.1, 3.0)
        p = np.random.default_rng(0).random((100, 3))
        q = w(p)
        assert np.abs(q - p).max() <= 0.2 + 1e-12

    def test_wobble_zero_amplitude_identity(self):
        w = sinusoidal_wobble(0.0, 3.0)
        p = np.random.default_rng(1).random((10, 3))
        assert np.allclose(w(p), p)

    def test_torus_map_periodicity(self):
        t = torus_map(2.0, 0.5, (1.0, 1.0, 1.0))
        a = t(np.array([[0.0, 0.3, 0.2]]))
        b = t(np.array([[1.0, 0.3, 0.2]]))  # poloidal wrap
        assert np.allclose(a, b)

    def test_mobius_map_half_twist_identification(self):
        m = mobius_map(2.0, 0.8, 1.0)
        a = m(np.array([[1.0, 0.3]]))
        b = m(np.array([[0.0, -0.3]]))
        assert np.allclose(a, b, atol=1e-12)

    def test_klein_map_identification(self):
        k = klein_map(1.0, 1.0, 1.0)
        a = k(np.array([[1.0, 0.25]]))
        b = k(np.array([[0.0, -0.25]]))
        assert np.allclose(a, b, atol=1e-12)

    def test_compose(self):
        f = compose(lambda p: p + 1.0, lambda p: p * 2.0)
        assert np.allclose(f(np.zeros((1, 3))), 2.0)
