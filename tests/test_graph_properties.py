"""Unit tests for repro.graph.properties."""

import numpy as np

from repro.graph import (
    CSRGraph,
    bfs_levels,
    bfs_reach,
    cycle_graph,
    degree_stats,
    disjoint_union,
    graph_diameter_estimate,
    grid_dag,
    path_graph,
    weakly_connected_components,
)


class TestDegreeStats:
    def test_basic(self):
        g = CSRGraph.from_edges([0, 0, 1], [1, 2, 2])
        s = degree_stats(g)
        assert s.num_vertices == 3
        assert s.num_edges == 3
        assert s.avg_degree == 1.0
        assert s.max_out_degree == 2
        assert s.max_in_degree == 2

    def test_empty(self):
        s = degree_stats(CSRGraph.empty(0))
        assert s.avg_degree == 0.0
        assert s.max_in_degree == 0

    def test_as_row(self):
        row = degree_stats(cycle_graph(4)).as_row()
        assert row["avg_deg"] == 1.0
        assert row["vertices"] == 4


class TestBfs:
    def test_reach_full_cycle(self):
        g = cycle_graph(6)
        vis = bfs_reach(g, np.array([2]))
        assert vis.all()

    def test_reach_path_forward_only(self):
        g = path_graph(5)
        vis = bfs_reach(g, np.array([2]))
        assert vis.tolist() == [False, False, True, True, True]

    def test_reach_respects_mask(self):
        g = path_graph(5)
        mask = np.array([True, True, True, False, True])
        vis = bfs_reach(g, np.array([0]), mask=mask)
        assert vis.tolist() == [True, True, True, False, False]

    def test_reach_source_outside_mask(self):
        g = path_graph(3)
        mask = np.array([False, True, True])
        vis = bfs_reach(g, np.array([0]), mask=mask)
        assert not vis.any()

    def test_multi_source(self):
        g = disjoint_union([path_graph(3), path_graph(3)])
        vis = bfs_reach(g, np.array([0, 3]))
        assert vis.sum() == 6

    def test_levels(self):
        g = path_graph(4)
        assert bfs_levels(g, 0).tolist() == [0, 1, 2, 3]
        assert bfs_levels(g, 2).tolist() == [-1, -1, 0, 1]

    def test_levels_cycle(self):
        g = cycle_graph(4)
        assert bfs_levels(g, 0).tolist() == [0, 1, 2, 3]


class TestWeakComponents:
    def test_two_components(self):
        g = disjoint_union([cycle_graph(3), path_graph(4)])
        labels = weakly_connected_components(g)
        assert np.unique(labels).size == 2

    def test_direction_ignored(self):
        # anti-parallel path is still weakly connected
        g = CSRGraph.from_edges([1, 1], [0, 2])
        labels = weakly_connected_components(g)
        assert np.unique(labels).size == 1

    def test_isolated_vertices(self):
        g = CSRGraph.empty(4)
        labels = weakly_connected_components(g)
        assert np.unique(labels).size == 4

    def test_labels_are_min_ids(self):
        g = CSRGraph.from_edges([3], [4], num_vertices=5)
        labels = weakly_connected_components(g)
        assert labels[3] == labels[4] == 3


class TestDiameterEstimate:
    def test_lower_bound_on_path(self):
        g = path_graph(20)
        est = graph_diameter_estimate(g, samples=8, seed=0)
        assert 0 < est <= 19

    def test_grid(self):
        g = grid_dag(5, 5)
        assert graph_diameter_estimate(g, samples=8) <= 8

    def test_empty(self):
        assert graph_diameter_estimate(CSRGraph.empty(0)) == 0
