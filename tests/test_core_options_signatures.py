"""Tests for EclOptions and the Signatures helper."""

import numpy as np
import pytest

from repro.core import ALL_OFF, ALL_ON, EclOptions, Signatures, ablation_variants
from repro.errors import AlgorithmError


class TestOptions:
    def test_defaults_all_on(self):
        o = EclOptions()
        assert o.async_phase2 and o.remove_scc_edges
        assert o.path_compression and o.persistent_threads

    def test_all_off(self):
        assert not ALL_OFF.async_phase2
        assert not ALL_OFF.persistent_threads

    def test_disabling(self):
        o = ALL_ON.disabling("async_phase2")
        assert not o.async_phase2
        assert o.path_compression  # others untouched

    def test_disabling_unknown(self):
        with pytest.raises(AlgorithmError):
            ALL_ON.disabling("warp_specialization")

    def test_ablation_variants_match_figure14(self):
        v = ablation_variants()
        assert set(v) == {
            "all on", "no async", "no SCC-edge removal",
            "no path compression", "no persistent threads", "all off",
        }
        assert v["all on"] == ALL_ON
        assert v["all off"] == ALL_OFF

    def test_bounds_auto(self):
        o = EclOptions()
        assert o.outer_bound(10) == 12
        # the engine-safe auto round bound: the async engine's
        # cross-launch round total can exceed |V| + 2 (a value crossing a
        # block boundary only advances at the next launch)
        assert o.rounds_bound(10) == 46

    def test_bounds_explicit(self):
        o = EclOptions(max_outer_iterations=5, max_rounds=7)
        assert o.outer_bound(1000) == 5
        assert o.rounds_bound(1000) == 7

    def test_invalid_block_edges(self):
        with pytest.raises(AlgorithmError):
            EclOptions(block_edges=0)

    def test_invalid_bounds(self):
        with pytest.raises(AlgorithmError):
            EclOptions(max_rounds=-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            ALL_ON.async_phase2 = False  # type: ignore[misc]

    def test_engine_validated(self):
        from repro.core.options import ENGINE_NAMES

        for name in ENGINE_NAMES:
            assert EclOptions(engine=name).engine == name
        with pytest.raises(AlgorithmError):
            EclOptions(engine="warp")

    def test_replace_revalidates_engine(self):
        """dataclasses.replace() copies go back through __post_init__, so
        an invalid engine name cannot be smuggled past construction —
        the single-validation-path guarantee of the engine registry."""
        import dataclasses

        base = EclOptions(engine="adaptive")
        copy = dataclasses.replace(base, path_compression=False)
        assert copy.engine == "adaptive"
        with pytest.raises(AlgorithmError):
            dataclasses.replace(base, engine="hyperwarp")


class TestSignatures:
    def test_identity_init(self):
        s = Signatures.identity(5)
        assert s.sig_in.tolist() == [0, 1, 2, 3, 4]
        assert s.sig_out.tolist() == [0, 1, 2, 3, 4]

    def test_reinit(self):
        s = Signatures.identity(4)
        s.sig_in[:] = 3
        s.reinit()
        assert s.sig_in.tolist() == [0, 1, 2, 3]

    def test_completed(self):
        s = Signatures.identity(3)
        s.sig_out[1] = 2
        assert s.completed().tolist() == [True, False, True]

    def test_pointer_jump_progress(self):
        s = Signatures.identity(4)
        # chain 0 -> 1 -> 2 -> 3 in the out-signature
        s.sig_out = np.array([1, 2, 3, 3])
        changed = s.pointer_jump()
        assert changed
        assert s.sig_out.tolist() == [2, 3, 3, 3]

    def test_pointer_jump_fixed_point(self):
        s = Signatures.identity(4)
        assert not s.pointer_jump()

    def test_feedback_cross_rule(self):
        # v=0 with in=2 (ancestor 2), out=1 (descendant 1):
        # descendant 1 absorbs v's in (2); ancestor 2 absorbs v's out (1)
        s = Signatures.identity(3)
        s.sig_in = np.array([2, 1, 2])
        s.sig_out = np.array([1, 1, 2])
        changed = s.feedback(np.array([0]))
        assert changed
        assert s.sig_in[1] == 2      # in[out[0]] absorbed in[0]
        assert s.sig_out[2] >= 1     # out[in[0]] absorbed out[0] (no-op here)

    def test_feedback_monotone(self):
        s = Signatures.identity(6)
        rng = np.random.default_rng(0)
        s.sig_in = np.sort(rng.integers(0, 6, 6))  # arbitrary but valid IDs
        before_in = s.sig_in.copy()
        before_out = s.sig_out.copy()
        s.feedback()
        assert np.all(s.sig_in >= before_in)
        assert np.all(s.sig_out >= before_out)

    def test_feedback_no_change_returns_false(self):
        s = Signatures.identity(3)
        assert not s.feedback()
