"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph import cycle_graph, scc_ladder, write_edge_list, write_matrix_market


@pytest.fixture
def graph_file(tmp_path):
    p = tmp_path / "ladder.mtx"
    write_matrix_market(p, scc_ladder(10))
    return str(p)


class TestScc:
    def test_basic(self, graph_file, capsys):
        assert main(["scc", graph_file]) == 0
        out = capsys.readouterr().out
        assert "SCCs:             10" in out
        assert "model runtime" in out

    def test_all_algorithms(self, graph_file, capsys):
        for algo in ("tarjan", "gpu-scc", "ispan", "fb", "fb-trim"):
            assert main(["scc", graph_file, "--algo", algo]) == 0
            assert "SCCs:             10" in capsys.readouterr().out

    def test_verify_and_device(self, graph_file, capsys):
        assert main(["scc", graph_file, "--verify", "--device", "Titan V"]) == 0
        out = capsys.readouterr().out
        assert "Titan V" in out
        assert "match Tarjan" in out

    def test_wall_timing(self, graph_file, capsys):
        assert main(["scc", graph_file, "--time", "--repeats", "3"]) == 0
        assert "wall runtime" in capsys.readouterr().out

    def test_labels_output(self, graph_file, tmp_path, capsys):
        out_file = tmp_path / "labels.txt"
        assert main(["scc", graph_file, "--output", str(out_file)]) == 0
        labels = np.loadtxt(out_file, dtype=np.int64)
        assert labels.size == 20

    def test_edge_list_input(self, tmp_path, capsys):
        p = tmp_path / "c.edges"
        write_edge_list(p, cycle_graph(7))
        assert main(["scc", str(p)]) == 0
        assert "SCCs:             1" in capsys.readouterr().out

    def test_unknown_extension(self, tmp_path):
        p = tmp_path / "g.weird"
        p.write_text("0 1\n")
        with pytest.raises(SystemExit):
            main(["scc", str(p)])

    def test_forced_format(self, tmp_path, capsys):
        p = tmp_path / "g.weird"
        write_edge_list(p, cycle_graph(5))
        assert main(["scc", str(p), "--format", "edges"]) == 0


class TestStats:
    def test_stats(self, graph_file, capsys):
        assert main(["stats", graph_file]) == 0
        out = capsys.readouterr().out
        assert "sccs       10" in out
        assert "dag_depth  10" in out

    def test_no_depth(self, graph_file, capsys):
        assert main(["stats", graph_file, "--no-depth"]) == 0
        assert "dag_depth  0" in capsys.readouterr().out


class TestGen:
    def test_gen_powerlaw(self, tmp_path, capsys):
        out = tmp_path / "g.mtx"
        assert main(
            ["gen", "powerlaw", "flickr", str(out), "--scale", "0.002"]
        ) == 0
        assert out.exists()
        assert "planted" in capsys.readouterr().out

    def test_gen_mesh(self, tmp_path, capsys):
        out = tmp_path / "m.edges"
        assert main(
            ["gen", "mesh", "beam-hex", str(out), "--scale", "0.08"]
        ) == 0
        assert out.exists()

    def test_gen_unknown_mesh(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown mesh"):
            main(["gen", "mesh", "sphere", str(tmp_path / "x.mtx")])

    def test_gen_roundtrip_scc_count(self, tmp_path, capsys):
        out = tmp_path / "g.mtx"
        main(["gen", "powerlaw", "cage14", str(out), "--scale", "0.002"])
        capsys.readouterr()
        main(["scc", str(out), "--verify"])
        assert "SCCs:             1" in capsys.readouterr().out


class TestMisc:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "A100" in out and "Xeon" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "toroid-hex", "--ordinates", "2", "--scale", "0.12"]) == 0
        out = capsys.readouterr().out
        assert "residual" in out

    def test_bench_table3_smoke(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        # keep it fast: run table3 through the CLI at the default scale
        assert main(["bench", "table3"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestEngineSelection:
    @pytest.mark.parametrize("engine", ["sync", "async", "atomic", "frontier"])
    def test_scc_engine_flag(self, graph_file, engine, capsys):
        assert main(["scc", graph_file, "--engine", engine, "--verify"]) == 0
        assert "SCCs" in capsys.readouterr().out

    def test_run_algorithm_rejects_engine_for_baselines(self):
        from repro.bench import run_algorithm
        from repro.device.spec import A100
        from repro.errors import AlgorithmError

        with pytest.raises(AlgorithmError):
            run_algorithm(cycle_graph(4), "fb", A100, engine="frontier")

    def test_bench_compare_gate(self, tmp_path, capsys):
        import json

        from repro.cli import _bench_compare

        base = {
            "results": [{
                "algorithm": "ecl-scc", "graph": "g", "num_sccs": 3,
                "model_seconds": 1.0, "bytes_moved": 100,
                "kernel_launches": 5,
            }]
        }
        path = tmp_path / "base.json"
        path.write_text(json.dumps(base))
        row = dict(base["results"][0])
        assert _bench_compare([dict(row, model_seconds=1.02)], str(path), 0.05) == 0
        assert "pass" in capsys.readouterr().out
        # >5% model_seconds regression fails
        assert _bench_compare([dict(row, model_seconds=1.2)], str(path), 0.05) == 1
        assert "FAIL" in capsys.readouterr().out
        # a num_sccs mismatch fails even when fast
        assert _bench_compare(
            [dict(row, num_sccs=4, model_seconds=0.5)], str(path), 0.05
        ) == 1


class TestDistributedCli:
    def test_distributed_runs(self, graph_file, capsys):
        assert main(["distributed", graph_file, "--ranks", "4"]) == 0
        out = capsys.readouterr().out
        assert "ecl-scc" in out and "fb-trim" in out and "supersteps" in out

    def test_random_partition_flag(self, graph_file, capsys):
        assert main(
            ["distributed", graph_file, "--ranks", "4", "--random-partition"]
        ) == 0
        assert "edge cut" in capsys.readouterr().out

    def test_randomize_ids_flag(self, graph_file, capsys):
        assert main(["scc", graph_file, "--randomize-ids", "--verify"]) == 0
        assert "SCCs:             10" in capsys.readouterr().out


class TestSeedEverywhere:
    def test_every_subcommand_accepts_seed(self):
        """--seed comes from one shared parent parser: every subcommand
        must parse it and default it to 0."""
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, __import__("argparse")._SubParsersAction)
        )
        assert set(sub.choices) >= {
            "scc", "stats", "gen", "bench", "trace", "dynamic", "chaos",
            "serve", "devices", "sweep", "distributed", "profile",
        }
        for name, sp in sub.choices.items():
            flags = {f for a in sp._actions for f in a.option_strings}
            assert "--seed" in flags, f"{name} lost --seed"
            defaults = {
                a.dest: a.default for a in sp._actions if a.dest == "seed"
            }
            assert defaults == {"seed": 0}, f"{name} changed the default"

    def test_seed_threads_through(self, graph_file, capsys):
        assert main(["scc", graph_file, "--seed", "3"]) == 0
        capsys.readouterr()
        assert main(["devices", "--seed", "7"]) == 0
