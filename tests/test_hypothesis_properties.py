"""Property-based tests (hypothesis) for the core invariants.

Strategy: generate random digraphs of several shapes and check the
library's fundamental contracts — algorithm equivalence, condensation
acyclicity, Phase-3 soundness, trim soundness, signature monotonicity.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis import partitions_equal
from repro.baselines import (coloring_scc, kosaraju_scc, multistep_scc, tarjan_scc, trim1, trim2, trim3)
from repro.core import (
    ALL_OFF,
    ALL_ON,
    EdgeGrouping,
    Signatures,
    ecl_scc,
    ecl_scc_reference,
    minmax_scc,
)
from repro.device import A100, VirtualDevice
from repro.graph import CSRGraph, condense, dag_depth, topological_levels
from repro.types import NO_VERTEX, VERTEX_DTYPE


@st.composite
def digraphs(draw, max_n=24, max_m=80):
    """Random digraph as (n, src, dst) with duplicates and self-loops."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    return CSRGraph.from_edges(src, dst, n)


@st.composite
def sparse_digraphs(draw, max_n=40):
    """Mesh-like sparse digraphs: out-degree <= 3."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    edges = []
    for v in range(n):
        deg = draw(st.integers(0, 3))
        for _ in range(deg):
            edges.append((v, draw(st.integers(0, n - 1))))
    if edges:
        src, dst = zip(*edges)
    else:
        src, dst = [], []
    return CSRGraph.from_edges(src, dst, n)


COMMON = dict(max_examples=60, deadline=None)


@given(digraphs())
@settings(**COMMON)
def test_ecl_equals_tarjan(g):
    assert np.array_equal(ecl_scc(g).labels, tarjan_scc(g))


@given(sparse_digraphs())
@settings(**COMMON)
def test_ecl_equals_tarjan_sparse(g):
    assert np.array_equal(ecl_scc(g).labels, tarjan_scc(g))


@given(digraphs(max_n=16, max_m=48))
@settings(max_examples=30, deadline=None)
def test_all_off_and_minmax_and_reference_agree(g):
    truth = tarjan_scc(g)
    assert np.array_equal(ecl_scc(g, options=ALL_OFF).labels, truth)
    assert np.array_equal(ecl_scc_reference(g), truth)
    assert np.array_equal(minmax_scc(g).labels, truth)


@given(digraphs())
@settings(**COMMON)
def test_oracles_agree(g):
    assert np.array_equal(tarjan_scc(g), kosaraju_scc(g))


@given(digraphs(max_n=18, max_m=50))
@settings(max_examples=40, deadline=None)
def test_coloring_and_multistep_agree(g):
    truth = tarjan_scc(g)
    assert np.array_equal(coloring_scc(g)[0], truth)
    assert np.array_equal(multistep_scc(g)[0], truth)


@given(digraphs())
@settings(**COMMON)
def test_condensation_is_acyclic(g):
    labels = tarjan_scc(g)
    dag, dense = condense(g, labels)
    topological_levels(dag)  # raises GraphValidationError on a cycle
    # every vertex maps into the dag's vertex range
    if dense.size:
        assert dense.max() < max(dag.num_vertices, 1)


@given(digraphs())
@settings(**COMMON)
def test_labels_are_max_member_ids(g):
    labels = ecl_scc(g).labels
    n = g.num_vertices
    for rep in np.unique(labels):
        members = np.flatnonzero(labels == rep)
        assert members.max() == rep


@given(digraphs())
@settings(**COMMON)
def test_reversal_preserves_sccs(g):
    a = tarjan_scc(g)
    b = tarjan_scc(g.reverse_copy())
    assert partitions_equal(a, b)


@given(digraphs())
@settings(**COMMON)
def test_dag_depth_bounds(g):
    labels = tarjan_scc(g)
    d = dag_depth(g, labels)
    k = np.unique(labels).size
    assert (0 if g.num_vertices == 0 else 1) <= d <= max(k, 1)


@given(digraphs(max_m=60))
@settings(**COMMON)
def test_trim_soundness(g):
    """Trim-1/2 must only remove genuinely trivial/size-2 SCCs and label
    them exactly as Tarjan would."""
    truth = tarjan_scc(g)
    labels = np.full(g.num_vertices, NO_VERTEX, dtype=VERTEX_DTYPE)
    active = np.ones(g.num_vertices, dtype=bool)
    dev = VirtualDevice(A100)
    trim1(g, active, labels, dev)
    trim2(g, active, labels, dev)
    removed = ~active
    assert np.array_equal(labels[removed], truth[removed])


@given(digraphs(max_m=60))
@settings(**COMMON)
def test_trim3_soundness(g):
    """Trim-3 must only remove genuine size-3 SCCs with Tarjan's labels."""
    truth = tarjan_scc(g)
    labels = np.full(g.num_vertices, NO_VERTEX, dtype=VERTEX_DTYPE)
    active = np.ones(g.num_vertices, dtype=bool)
    removed = trim3(g, active, labels, VirtualDevice(A100))
    assert removed % 3 == 0
    rm = ~active
    assert np.array_equal(labels[rm], truth[rm])
    # removed vertices are exactly size-3 components of the truth
    for v in np.flatnonzero(rm):
        assert int(np.count_nonzero(truth == truth[v])) == 3


@given(digraphs(max_m=60))
@settings(**COMMON)
def test_signature_monotonicity(g):
    """One relaxation round never decreases any signature value."""
    if g.num_edges == 0:
        return
    src, dst = g.edges()
    grouping = EdgeGrouping.build(src, dst)
    sigs = Signatures.identity(g.num_vertices)
    for _ in range(4):
        before_in = sigs.sig_in.copy()
        before_out = sigs.sig_out.copy()
        grouping.relax(sigs, compress=True)
        assert np.all(sigs.sig_in >= before_in)
        assert np.all(sigs.sig_out >= before_out)


@given(digraphs(max_m=60))
@settings(max_examples=40, deadline=None)
def test_phase3_never_splits_an_scc(g):
    """§3.2.1: after any number of full outer iterations, intra-SCC edges
    survive.  Run one iteration manually and check."""
    if g.num_edges == 0:
        return
    truth = tarjan_scc(g)
    src, dst = g.edges()
    grouping = EdgeGrouping.build(src, dst)
    sigs = Signatures.identity(g.num_vertices)
    dev = VirtualDevice(A100)
    from repro.core import propagate_sync
    from repro.core.options import EclOptions

    propagate_sync(sigs, grouping, dev, EclOptions(async_phase2=False), g.num_vertices)
    keep = (sigs.sig_in[src] == sigs.sig_in[dst]) & (
        sigs.sig_out[src] == sigs.sig_out[dst]
    )
    intra = truth[src] == truth[dst]
    assert np.all(keep[intra])  # no intra-SCC edge is ever removed


@given(digraphs())
@settings(**COMMON)
def test_completion_counts_sum_to_n(g):
    res = ecl_scc(g)
    assert sum(res.completed_per_iteration) == g.num_vertices


@given(st.integers(2, 200))
@settings(max_examples=30, deadline=None)
def test_cycle_any_size(n):
    g = CSRGraph.from_edges(
        np.arange(n, dtype=np.int64), (np.arange(n, dtype=np.int64) + 1) % n, n
    )
    res = ecl_scc(g)
    assert res.num_sccs == 1
    assert (res.labels == n - 1).all()


# ---------------------------------------------------------------------------
# frontier Phase-2 engine: cross-iteration reuse reaches the dense fixed point
# ---------------------------------------------------------------------------


@given(digraphs(), st.integers(0, 2**10))
@settings(**COMMON)
def test_frontier_fixed_point_under_edge_removal(g, seed):
    """Frontier labels equal the dense engine's after random edge removals.

    Removing edges perturbs the worklist exactly the way Phase 3 does
    between iterations, so this exercises the invalidated-seed path on
    arbitrary survivor subsets — and the randomized-ID variant exercises
    the permutation_seed path on top.
    """
    from repro.core import engine_options

    rng = np.random.default_rng(seed)
    src, dst = g.edges()
    if src.size:
        keep = rng.random(src.size) < 0.6
        g = CSRGraph.from_edges(src[keep], dst[keep], g.num_vertices)
    dense = ecl_scc(g, options=engine_options("sync"))
    front = ecl_scc(g, options=engine_options("frontier"))
    assert np.array_equal(front.labels, dense.labels)
    permuted = ecl_scc(
        g, options=engine_options("frontier"),
        randomize_ids=True, seed=seed % 97,
    )
    if g.num_vertices > 1:
        assert permuted.permutation_seed == seed % 97
    assert np.array_equal(permuted.labels, dense.labels)


@given(digraphs(max_n=16, max_m=40), st.integers(0, 255))
@settings(max_examples=30, deadline=None)
def test_frontier_fixed_point_under_monotone_faults(g, seed):
    """Monotone fault presets regress signatures mid-run; the frontier's
    regressed-vertex reseeding must still converge to the dense labels."""
    from repro.core import engine_options
    from repro.faults import FaultPlan

    dense = ecl_scc(g, options=engine_options("sync"))
    faulted = ecl_scc(
        g, options=engine_options("frontier"),
        faults=FaultPlan.monotone(seed=seed),
    )
    assert np.array_equal(faulted.labels, dense.labels)
