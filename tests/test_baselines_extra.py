"""Tests for the coloring (Orzan) and Multistep (Slota) baselines."""

import numpy as np
import pytest

from repro.baselines import coloring_scc, multistep_scc, tarjan_scc
from repro.bench import run_algorithm
from repro.device import A100, XEON_6226R
from repro.graph import (
    CSRGraph,
    build_powerlaw,
    cycle_graph,
    path_graph,
    scc_ladder,
)
from repro.mesh import sweep_graphs, torch_hex


class TestColoring:
    def test_matches_tarjan(self, all_graphs):
        for g in all_graphs:
            labels, _ = coloring_scc(g)
            assert np.array_equal(labels, tarjan_scc(g)), g

    def test_single_cycle(self):
        labels, _ = coloring_scc(cycle_graph(12))
        assert (labels == 11).all()

    def test_root_is_max_member(self):
        g = scc_ladder(6)
        labels, _ = coloring_scc(g)
        for rep in np.unique(labels):
            assert np.flatnonzero(labels == rep).max() == rep

    def test_counts_propagation_rounds(self):
        g = cycle_graph(40)
        _, dev = coloring_scc(g)
        # max-color propagation around a cycle crawls ~diameter rounds
        # (no pointer jumping in the classic coloring scheme)
        assert dev.counters.rounds >= 20

    def test_empty(self):
        labels, _ = coloring_scc(CSRGraph.empty(0))
        assert labels.size == 0


class TestMultistep:
    def test_matches_tarjan(self, all_graphs):
        for g in all_graphs:
            labels, _ = multistep_scc(g)
            assert np.array_equal(labels, tarjan_scc(g)), g

    def test_without_trim2(self, random_graphs):
        for g in random_graphs[:4]:
            labels, _ = multistep_scc(g, use_trim2=False)
            assert np.array_equal(labels, tarjan_scc(g))

    def test_powerlaw(self):
        g, _ = build_powerlaw("soc-LiveJournal1", scale=1 / 256, seed=0)
        labels, _ = multistep_scc(g)
        assert np.array_equal(labels, tarjan_scc(g))

    def test_mesh(self):
        _, g = sweep_graphs(torch_hex(2), 1)[0]
        labels, _ = multistep_scc(g)
        assert np.array_equal(labels, tarjan_scc(g))

    def test_empty(self):
        labels, _ = multistep_scc(CSRGraph.empty(3))
        assert labels.tolist() == [0, 1, 2]


class TestRunnerIntegration:
    @pytest.mark.parametrize("algo", ["coloring", "multistep"])
    def test_run_algorithm(self, algo):
        g = scc_ladder(9)
        r = run_algorithm(g, algo, XEON_6226R, verify=False)
        assert r.num_sccs == 9
        assert r.model_seconds > 0

    def test_multistep_between_fb_and_ecl_on_powerlaw(self):
        """Sanity on the cost ordering: Multistep's coloring phase beats
        plain recursive FB on a high-SCC-count input."""
        g, _ = build_powerlaw("wiki-Talk", scale=1 / 128, seed=0)
        ms = run_algorithm(g, "multistep", A100)
        fb = run_algorithm(g, "fb", A100)
        assert ms.model_seconds < fb.model_seconds
