"""Unit tests for repro.graph.generators — planted structure must verify."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    complete_digraph,
    cycle_graph,
    dag_chain_of_cliques,
    dag_depth,
    grid_dag,
    path_graph,
    planted_scc_graph,
    random_gnm,
    random_gnp,
    random_tournament,
    scc_ladder,
)
from repro.baselines import tarjan_scc
from repro.analysis import partitions_equal


class TestDeterministicShapes:
    def test_cycle_one_scc(self):
        g = cycle_graph(11)
        assert np.unique(tarjan_scc(g)).size == 1

    def test_cycle_minimum_size(self):
        with pytest.raises(GraphFormatError):
            cycle_graph(0)

    def test_path_all_trivial(self):
        g = path_graph(6)
        labels = tarjan_scc(g)
        assert np.unique(labels).size == 6
        assert dag_depth(g, labels) == 6

    def test_complete_digraph(self):
        g = complete_digraph(6)
        assert g.num_edges == 30
        assert np.unique(tarjan_scc(g)).size == 1

    def test_ladder_structure(self):
        g = scc_ladder(8)
        labels = tarjan_scc(g)
        _, counts = np.unique(labels, return_counts=True)
        assert (counts == 2).all()
        assert dag_depth(g, labels) == 8

    def test_grid_dag_depth(self):
        g = grid_dag(6, 7)
        labels = tarjan_scc(g)
        assert np.unique(labels).size == 42
        assert dag_depth(g, labels) == 12

    def test_chain_of_cliques(self):
        g = dag_chain_of_cliques(9, 5, seed=4)
        labels = tarjan_scc(g)
        uniq, counts = np.unique(labels, return_counts=True)
        assert uniq.size == 9
        assert (counts == 5).all()
        assert dag_depth(g, labels) == 9


class TestPlanted:
    @pytest.mark.parametrize("seed", range(5))
    def test_planted_matches_truth(self, seed):
        sizes = [1, 3, 2, 8, 1, 5, 2]
        g, truth = planted_scc_graph(sizes, extra_dag_edges=12, seed=seed)
        labels = tarjan_scc(g)
        assert partitions_equal(labels, truth)

    def test_planted_sizes(self):
        sizes = [4, 4, 4]
        g, truth = planted_scc_graph(sizes, seed=0)
        _, counts = np.unique(tarjan_scc(g), return_counts=True)
        assert sorted(counts.tolist()) == [4, 4, 4]

    def test_planted_all_trivial(self):
        g, truth = planted_scc_graph([1] * 10, extra_dag_edges=15, seed=2)
        assert np.unique(tarjan_scc(g)).size == 10


class TestRandomGenerators:
    def test_gnm_shape(self):
        g = random_gnm(100, 300, seed=1)
        assert g.num_vertices == 100
        assert g.num_edges == 300

    def test_gnm_no_self_loops_by_default(self):
        g = random_gnm(50, 500, seed=2)
        s, d = g.edges()
        assert not np.any(s == d)

    def test_gnm_self_loops_allowed(self):
        g = random_gnm(10, 2000, seed=3, self_loops=True)
        s, d = g.edges()
        assert np.any(s == d)

    def test_gnm_deterministic(self):
        a = random_gnm(30, 60, seed=7)
        b = random_gnm(30, 60, seed=7)
        assert a.same_structure(b)

    def test_gnp(self):
        g = random_gnp(40, 0.1, seed=1)
        assert g.num_vertices == 40
        s, d = g.edges()
        assert not np.any(s == d)

    def test_gnp_guard(self):
        with pytest.raises(GraphFormatError):
            random_gnp(100_000, 0.5)

    def test_tournament(self):
        n = 12
        g = random_tournament(n, seed=5)
        assert g.num_edges == n * (n - 1) // 2
        # tournaments of moderate size are a.s. strongly connected
        assert np.unique(tarjan_scc(g)).size == 1
