"""Meta-test: every public symbol carries a docstring.

Deliverable (e) of the reproduction requires doc comments on every
public item; this test makes that property un-regressable.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.graph",
    "repro.mesh",
    "repro.core",
    "repro.baselines",
    "repro.device",
    "repro.analysis",
    "repro.sweep",
    "repro.distributed",
    "repro.bench",
    "repro.errors",
    "repro.types",
    "repro.cli",
]


def public_symbols():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        for name in getattr(pkg, "__all__", []):
            yield pkg_name, name, getattr(pkg, name)


@pytest.mark.parametrize(
    "pkg,name,obj",
    list(public_symbols()),
    ids=[f"{p}.{n}" for p, n, _ in public_symbols()],
)
def test_public_symbol_documented(pkg, name, obj):
    if not (inspect.isclass(obj) or inspect.isfunction(obj) or inspect.ismodule(obj)):
        pytest.skip("constant")
    doc = inspect.getdoc(obj)
    assert doc and doc.strip(), f"{pkg}.{name} lacks a docstring"


def test_packages_documented():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        assert (pkg.__doc__ or "").strip(), f"{pkg_name} lacks a module docstring"


def test_public_functions_have_annotated_signatures():
    """Public functions expose inspectable signatures (no *args black
    boxes) — a proxy for API quality."""
    for pkg, name, obj in public_symbols():
        if inspect.isfunction(obj):
            sig = inspect.signature(obj)
            assert sig is not None
