"""Structural tests for the nine named mesh builders (Table 4 classes)."""

import numpy as np
import pytest

from repro.mesh import (
    ElementType,
    beam_hex,
    interior_faces,
    jitter_points,
    klein_bottle,
    mobius_strip,
    star,
    structured_hex_grid,
    toroid_hex,
    toroid_wedge,
    torch_hex,
    torch_tet,
    twist_hex,
)


class TestStructuredGrids:
    def test_beam_hex_type(self):
        m = beam_hex(2)
        assert m.element_type is ElementType.HEX
        assert not m.is_curved

    def test_beam_hex_element_formula(self):
        for n in (1, 2, 3):
            assert beam_hex(n).num_elements == 8 * n**3

    def test_structured_grid_extents(self):
        m = structured_hex_grid((2, 2, 2), (4.0, 2.0, 1.0))
        lo, hi = m.bounding_box()
        assert np.allclose(hi - lo, [4.0, 2.0, 1.0])

    def test_star_counts_and_dim(self):
        m = star(6)
        assert m.element_type is ElementType.QUAD
        assert m.embedding_dim == 2
        assert m.num_elements == 5 * 36

    def test_star_welded_seam(self):
        # angular seam welded: every element has 2-4 neighbours, and the
        # face count matches a welded annulus: nt*(nr-1) radial + nt*nr ang
        n = 4
        m = star(n)
        nt, nr = 5 * n, n
        fs = interior_faces(m)
        assert fs.num_faces == nt * (nr - 1) + nt * nr


class TestTorch:
    def test_torch_hex_counts(self):
        m = torch_hex(2)
        assert m.num_elements == 24 * 4 * 16
        assert m.element_type is ElementType.HEX
        assert m.is_curved  # the cylinder transform

    def test_torch_tet_counts(self):
        m = torch_tet(2)
        assert m.num_elements == 6 * 24 * 4 * 16
        assert m.element_type is ElementType.TET

    def test_jitter_deterministic(self):
        p = np.random.default_rng(0).random((50, 3))
        a = jitter_points(p, 0.01)
        b = jitter_points(p, 0.01)
        assert np.array_equal(a, b)
        assert np.abs(a - p).max() <= 0.01 + 1e-12

    def test_jitter_fixed_mask(self):
        p = np.random.default_rng(1).random((20, 3))
        fixed = np.zeros(20, dtype=bool)
        fixed[:5] = True
        a = jitter_points(p, 0.05, fixed=fixed)
        assert np.array_equal(a[:5], p[:5])
        assert np.abs(a[5:] - p[5:]).max() > 0


class TestToroid:
    def test_toroid_hex_periodic_weld(self):
        n = 3
        m = toroid_hex(n)
        # welded in poloidal (4n) and toroidal (12n) directions:
        # nodes = 4n * (n+1) * 12n
        assert m.num_points == 4 * n * (n + 1) * 12 * n
        assert m.num_elements == 48 * n**3
        assert m.order == 3 and m.is_curved

    def test_toroid_wedge_counts(self):
        m = toroid_wedge(3)
        assert m.element_type is ElementType.WEDGE
        assert m.num_elements == 2 * 48 * 27

    def test_toroid_interior_face_count(self):
        # fully periodic in 2 of 3 directions
        n = 2
        m = toroid_hex(n)
        a, b, c = 4 * n, n, 12 * n
        expected = a * b * c + a * (b - 1) * c + a * b * c  # x,z periodic
        assert interior_faces(m).num_faces == expected


class TestIdentifiedGeometries:
    def test_twist_hex_identified_faces(self):
        n = 2
        m = twist_hex(n)
        assert m.identified_faces is not None
        ea, eb, nodes, counts = m.identified_faces
        assert ea.size == (2 * n) ** 2  # one glued face per cross-section cell
        assert (counts == 4).all()

    def test_twist_hex_rotation_bijective(self):
        m = twist_hex(2, twists=3)
        _, eb, _, _ = m.identified_faces
        assert np.unique(eb).size == eb.size

    def test_twist_identity_when_four_twists(self):
        # 4 quarter turns = identity pairing of cross-section cells
        m = twist_hex(2, twists=4)
        ea, eb, _, _ = m.identified_faces
        # elem (i,j,last) pairs with elem (i,j,0)
        nz = 32
        assert np.array_equal(eb, ea - (nz - 1))

    def test_mobius_reflected_pairing(self):
        n = 4
        m = mobius_strip(n)
        ea, eb, _, counts = m.identified_faces
        assert ea.size == n  # nv pairs
        assert (counts == 2).all()
        assert np.unique(eb).size == eb.size

    def test_klein_two_seams(self):
        n = 4
        m = klein_bottle(n)
        ea, eb, _, _ = m.identified_faces
        assert ea.size == 2 * n + 2 * n  # x seam (nv) + y seam (nu)

    def test_klein_counts(self):
        m = klein_bottle(5)
        assert m.num_elements == 10 * 10
        assert m.element_type is ElementType.QUAD
        assert m.embedding_dim == 2
