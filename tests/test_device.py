"""Tests for the virtual device layer: specs, counters, cost model."""

import numpy as np
import pytest

from repro.device import (
    A100,
    ALL_DEVICES,
    RYZEN_2950X,
    TITAN_V,
    XEON_6226R,
    CostModel,
    DeviceSpec,
    KernelCounters,
    VirtualDevice,
    device_by_name,
    estimate_runtime,
    working_set_of_graph,
)
from repro.device.costmodel import CACHE_BOOST, IRREGULAR_EFF
from repro.device.executor import THREADS_PER_BLOCK
from repro.errors import DeviceError


class TestSpecs:
    def test_paper_parameters(self):
        # §4 hardware description, verbatim
        assert TITAN_V.lanes == 5120 and TITAN_V.sms == 80
        assert TITAN_V.mem_bw_gbs == 652.0
        assert A100.lanes == 6912 and A100.sms == 108
        assert A100.mem_bw_gbs == 1555.0 and A100.l2_mb == 40.0
        assert RYZEN_2950X.lanes == 32 and RYZEN_2950X.sms == 16
        assert XEON_6226R.lanes == 64 and XEON_6226R.sms == 32

    def test_threads_resident(self):
        assert A100.threads_resident == 108 * 2048
        assert XEON_6226R.threads_resident == 64

    def test_lookup(self):
        assert device_by_name("a100") is A100
        assert device_by_name("Titan V") is TITAN_V
        with pytest.raises(DeviceError):
            device_by_name("H100")

    def test_validation(self):
        with pytest.raises(DeviceError):
            DeviceSpec("x", "tpu", 1, 1, 1.0, 1.0, 1.0, 1.0)
        with pytest.raises(DeviceError):
            DeviceSpec("x", "gpu", 0, 1, 1.0, 1.0, 1.0, 1.0)
        with pytest.raises(DeviceError):
            DeviceSpec("x", "gpu", 1, 1, -1.0, 1.0, 1.0, 1.0)


class TestCounters:
    def test_launch_accumulates(self):
        c = KernelCounters()
        c.launch(edges=100, bytes_per_edge=10)
        c.launch(vertices=50, bytes_per_vertex=8, atomics=5)
        assert c.kernel_launches == 2
        assert c.edge_work == 100
        assert c.vertex_work == 50
        assert c.bytes_moved == 1000 + 400
        assert c.atomics == 5
        assert c.global_barriers == 2

    def test_merge(self):
        a, b = KernelCounters(), KernelCounters()
        a.launch(edges=10)
        b.launch(edges=20)
        b.serial(7)
        b.note("x", 1.0)
        a.merge(b)
        assert a.edge_work == 30
        assert a.serial_work == 7
        assert a.notes["x"] == 1.0

    def test_snapshot_keys(self):
        snap = KernelCounters().snapshot()
        assert set(snap) == {
            "kernel_launches", "global_barriers", "edge_work", "vertex_work",
            "bytes_moved", "atomics", "serial_work", "rounds",
            "blocks_scheduled", "bytes_streamed",
        }


class TestCostModel:
    def test_gpu_launch_term(self):
        c = KernelCounters()
        for _ in range(100):
            c.launch()
        est = CostModel(A100).estimate(c)
        # 100 launches at 5us plus 100 single-block dispatches at 25ns
        assert est.launch == pytest.approx(100 * 5e-6 + 100 * 25e-9)
        assert est.total >= est.launch

    def test_gpu_block_dispatch_term(self):
        few, many = KernelCounters(), KernelCounters()
        few.launch(edges=1_000_000, bytes_per_edge=0, blocks=432)
        many.launch(edges=1_000_000, bytes_per_edge=0)  # ~1954 blocks
        t_few = CostModel(A100).estimate(few).launch
        t_many = CostModel(A100).estimate(many).launch
        assert t_many > t_few

    def test_gpu_memory_term(self):
        c = KernelCounters()
        c.launch(edges=10_000_000, bytes_per_edge=24)
        big_ws = 1e9  # exceeds L2 -> no cache boost
        est = CostModel(A100).estimate(c, working_set_bytes=big_ws)
        expect = 240e6 / (1555e9 * IRREGULAR_EFF)
        assert est.memory == pytest.approx(expect)

    def test_cache_boost_small_working_set(self):
        c = KernelCounters()
        c.launch(edges=1_000_000, bytes_per_edge=24)
        small = CostModel(A100).estimate(c, working_set_bytes=1e6)
        large = CostModel(A100).estimate(c, working_set_bytes=1e9)
        assert small.memory == pytest.approx(large.memory / CACHE_BOOST)

    def test_cpu_roofline(self):
        c = KernelCounters()
        c.launch(edges=1_000_000, bytes_per_edge=0)
        est = CostModel(XEON_6226R).estimate(c, working_set_bytes=1e9)
        # compute-bound: memory column zeroed
        assert est.compute > 0 and est.memory == 0

    def test_cpu_memory_bound(self):
        c = KernelCounters()
        c.launch(edges=1000, bytes_per_edge=100_000)
        est = CostModel(RYZEN_2950X).estimate(c, working_set_bytes=1e9)
        assert est.memory > 0 and est.compute == 0

    def test_serial_term(self):
        c = KernelCounters()
        c.serial(2_900_000_000 * 2)  # 1 second at Xeon clock x ipc
        est = CostModel(XEON_6226R).estimate(c)
        assert est.serial == pytest.approx(1.0)

    def test_faster_device_is_faster(self):
        c = KernelCounters()
        c.launch(edges=50_000_000, bytes_per_edge=24)
        t_titan = estimate_runtime(c, TITAN_V, working_set_bytes=1e9)
        t_a100 = estimate_runtime(c, A100, working_set_bytes=1e9)
        assert t_a100 < t_titan

    def test_working_set_formula(self):
        ws = working_set_of_graph(100, 200, signatures=2)
        assert ws == 8.0 * (101 + 600 + 200)

    def test_breakdown_dict(self):
        c = KernelCounters()
        c.launch(edges=10)
        d = CostModel(A100).estimate(c).as_dict()
        assert d["total"] == pytest.approx(
            d["launch"] + d["memory"] + d["compute"] + d["atomic"] + d["serial"]
        )


class TestVirtualDevice:
    def test_partition_persistent_caps_blocks(self):
        dev = VirtualDevice(A100)
        bounds = dev.partition_edges(10_000_000, persistent=True)
        assert bounds.size - 1 == A100.threads_resident // THREADS_PER_BLOCK

    def test_partition_small_input(self):
        dev = VirtualDevice(A100)
        bounds = dev.partition_edges(1000, persistent=True)
        assert bounds[0] == 0 and bounds[-1] == 1000
        assert bounds.size - 1 <= 2

    def test_partition_empty(self):
        dev = VirtualDevice(A100)
        assert dev.partition_edges(0, persistent=True).tolist() == [0]

    def test_blocks_for(self):
        dev = VirtualDevice(A100)
        assert dev.blocks_for(1) == 1
        assert dev.blocks_for(512) == 1
        assert dev.blocks_for(513) == 2

    def test_grid_blocks_requires_persistent(self):
        dev = VirtualDevice(A100)
        with pytest.raises(DeviceError):
            dev.grid_blocks(persistent=False)

    def test_estimate_passthrough(self):
        dev = VirtualDevice(A100)
        dev.launch(edges=10)
        est = dev.estimate(100, 10)
        assert est.total > 0
