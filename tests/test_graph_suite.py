"""Tests for the synthetic SuiteSparse stand-ins (Table 3).

The generator plants exact structure; these tests assert that Tarjan
measures exactly what was planted — the suite's core guarantee.
"""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import POWER_LAW_SPECS, build_powerlaw, dag_depth, default_scale, powerlaw_suite
from repro.baselines import tarjan_scc

SCALE = 1 / 256  # tiny but structurally faithful


@pytest.mark.parametrize("spec", POWER_LAW_SPECS, ids=lambda s: s.name)
def test_planted_structure_verifies(spec):
    g, planted = build_powerlaw(spec.name, scale=SCALE, seed=0)
    labels = tarjan_scc(g)
    uniq, counts = np.unique(labels, return_counts=True)
    assert uniq.size == planted["num_sccs"]
    assert counts.max() == planted["largest"]
    assert int((counts == 1).sum()) == planted["size1"]
    assert int((counts == 2).sum()) == planted["size2"]


@pytest.mark.parametrize("spec", POWER_LAW_SPECS, ids=lambda s: s.name)
def test_scaled_sizes_track_paper(spec):
    g, planted = build_powerlaw(spec.name, scale=SCALE, seed=0)
    assert abs(g.num_vertices - spec.vertices * SCALE) / (spec.vertices * SCALE) < 0.2
    # edge counts may deviate more (giant-share heuristics) but stay same order
    assert g.num_edges > 0.3 * spec.edges * SCALE
    assert g.num_edges < 3.0 * spec.edges * SCALE


def test_giant_fraction_classes():
    """Giant-SCC fraction must match each graph's class."""
    for name, expect_giant in [("cage14", True), ("com-Youtube", False), ("wiki-Talk", False)]:
        g, _ = build_powerlaw(name, scale=SCALE, seed=0)
        labels = tarjan_scc(g)
        _, counts = np.unique(labels, return_counts=True)
        frac = counts.max() / g.num_vertices
        if expect_giant:
            assert frac > 0.9, name
        else:
            assert frac < 0.2, name


def test_youtube_is_deep_dag():
    g, _ = build_powerlaw("com-Youtube", scale=SCALE, seed=0)
    labels = tarjan_scc(g)
    assert np.unique(labels).size == g.num_vertices  # all trivial
    assert dag_depth(g, labels) > 20


def test_freescale2_has_many_size2():
    g, planted = build_powerlaw("Freescale2", scale=1 / 64, seed=0)
    labels = tarjan_scc(g)
    _, counts = np.unique(labels, return_counts=True)
    assert int((counts == 2).sum()) == planted["size2"] > 100


def test_hub_degrees_scale():
    spec = next(s for s in POWER_LAW_SPECS if s.name == "circuit5M")
    g, _ = build_powerlaw("circuit5M", scale=SCALE, seed=0)
    # circuit5M's hub has degree ~0.23 |V|; the stand-in must keep a hub
    assert g.out_degree().max() > 0.05 * g.num_vertices


def test_unknown_name_rejected():
    with pytest.raises(GraphFormatError, match="unknown"):
        build_powerlaw("not-a-graph")


def test_powerlaw_suite_subset():
    suite = powerlaw_suite(scale=SCALE, names=["flickr", "wiki-Talk"])
    assert [g.name for g, _ in suite] == ["flickr", "wiki-Talk"]


def test_default_scale_env(monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    assert default_scale() == 1.0 / 32.0
    monkeypatch.setenv("REPRO_FULL", "1")
    assert default_scale() == 1.0


def test_determinism():
    a, _ = build_powerlaw("flickr", scale=SCALE, seed=3)
    b, _ = build_powerlaw("flickr", scale=SCALE, seed=3)
    assert a.same_structure(b)
