"""Tests for bow-tie decomposition and parallelism profiles."""

import numpy as np
import pytest

from repro.analysis import (
    bfs_frontier_profile,
    bowtie_decomposition,
    parallelism_summary,
    peel_profile,
)
from repro.baselines import tarjan_scc
from repro.graph import CSRGraph, build_powerlaw, cycle_graph, path_graph, scc_ladder


class TestBowTie:
    def test_canonical_bowtie(self):
        # IN (0) -> CORE {1,2} -> OUT (3); 4 disconnected
        g = CSRGraph.from_edges([0, 1, 2, 2], [1, 2, 1, 3], num_vertices=5)
        bt = bowtie_decomposition(g, tarjan_scc(g))
        assert bt.core.tolist() == [False, True, True, False, False]
        assert bt.in_component.tolist() == [True, False, False, False, False]
        assert bt.out_component.tolist() == [False, False, False, True, False]
        assert bt.other.tolist() == [False, False, False, False, True]

    def test_regions_partition(self):
        g, _ = build_powerlaw("web-Google", scale=1 / 256, seed=0)
        bt = bowtie_decomposition(g, tarjan_scc(g))
        total = (
            bt.core.astype(int) + bt.in_component.astype(int)
            + bt.out_component.astype(int) + bt.other.astype(int)
        )
        assert (total == 1).all()

    def test_fractions_sum_to_one(self):
        g = cycle_graph(6)
        bt = bowtie_decomposition(g, tarjan_scc(g))
        assert sum(bt.fractions().values()) == pytest.approx(1.0)
        assert bt.fractions()["core"] == 1.0

    def test_empty_graph(self):
        g = CSRGraph.empty(0)
        bt = bowtie_decomposition(g, np.empty(0, dtype=np.int64))
        assert bt.core.size == 0


class TestProfiles:
    def test_bfs_profile_path(self):
        g = path_graph(5)
        prof = bfs_frontier_profile(g, 0)
        # each level has exactly one vertex with out-degree 1 (last has 0)
        assert prof.tolist() == [1, 1, 1, 1, 0]

    def test_bfs_profile_star_out(self):
        g = CSRGraph.from_adjacency([[1, 2, 3], [], [], []])
        prof = bfs_frontier_profile(g, 0)
        assert prof.tolist() == [3, 0]

    def test_bfs_profile_unreached_source(self):
        g = CSRGraph.empty(3)
        prof = bfs_frontier_profile(g, 1)
        assert prof.tolist() == [0]

    def test_peel_profile_ladder(self):
        g = scc_ladder(4)
        prof = peel_profile(g, tarjan_scc(g))
        assert prof.tolist() == [2, 2, 2, 2]  # one 2-SCC per level

    def test_peel_profile_single_scc(self):
        g = cycle_graph(9)
        prof = peel_profile(g, tarjan_scc(g))
        assert prof.tolist() == [9]

    def test_summary_fields(self):
        s = parallelism_summary(np.array([10, 20, 30]), saturation=25)
        assert s["steps"] == 3
        assert s["max_width"] == 30
        assert s["saturated_fraction"] == pytest.approx(1 / 3)
        # work-weighted width favours wide steps
        assert s["weighted_parallelism"] > s["mean_width"]

    def test_summary_empty(self):
        s = parallelism_summary(np.zeros(0, dtype=np.int64))
        assert s["steps"] == 0 and s["weighted_parallelism"] == 0.0

    def test_mesh_vs_powerlaw_shape(self):
        """The §1 claim in miniature: mesh profiles are long and thin,
        power-law profiles short and fat."""
        from repro.mesh import sweep_graphs, torch_hex

        _, mesh_g = sweep_graphs(torch_hex(2), 1)[0]
        pl_g, _ = build_powerlaw("soc-LiveJournal1", scale=1 / 256, seed=0)
        deg = mesh_g.out_degree() + mesh_g.in_degree()
        mesh_prof = bfs_frontier_profile(mesh_g, int(np.argmax(deg)))
        deg = pl_g.out_degree() + pl_g.in_degree()
        pl_prof = bfs_frontier_profile(pl_g, int(np.argmax(deg)))
        assert mesh_prof.size > 3 * pl_prof.size
        assert pl_prof.max() / pl_g.num_edges > mesh_prof.max() / mesh_g.num_edges
