"""Tests for :mod:`repro.serve` — the SCC-as-a-service control plane.

The contract (docs/serve.md):

* every submitted job reaches **exactly one** terminal state — done,
  rejected, shed, or dead-letter — with its decision history attached;
* budgets are hard limits on starting work, backpressure sheds are
  explicit and counted, retries are bounded by the fault plan, and
  circuit breakers measurably protect tail latency under crash storms;
* the whole service runs in seeded simulated time: two runs of the
  same config are byte-identical, and every completed solve/query is
  bit-identical to an unserved ``repro.solve`` of the same graph
  generation — even under chaos plans.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import solve
from repro.errors import FaultPlanError, GraphFormatError
from repro.faults import preset_plan
from repro.graph import cycle_graph, scc_ladder
from repro.graph.generators import random_gnm
from repro.serve import (
    TERMINAL_STATES,
    BoundedQueue,
    BreakerState,
    Budget,
    BudgetLedger,
    CacheEntry,
    CircuitBreaker,
    Job,
    JobKind,
    JobSpec,
    JobState,
    SccService,
    ServeBenchConfig,
    ShedPolicy,
    SolveCache,
    WorkerPool,
    run_serve_bench,
    to_prometheus,
)
from repro.serve.bench import (
    _build_graphs,
    _resolve_deletions,
    breaker_comparison,
    build_workload,
    verify_report,
)


def _job(jid=0, kind=JobKind.SOLVE, graph="g0", tenant="t0"):
    return Job(id=jid, spec=JobSpec(tenant=tenant, kind=kind, graph=graph),
               submit_s=0.0)


# ---------------------------------------------------------------------------
# unit: budgets
# ---------------------------------------------------------------------------

class TestBudget:
    def test_default_is_unlimited(self):
        ledger = BudgetLedger()
        assert ledger.check("anyone") is None
        ledger.charge("anyone", model_seconds=1e9, bytes=1e15)
        assert ledger.check("anyone") is None

    def test_hard_limit_rejects_at_limit(self):
        ledger = BudgetLedger()
        ledger.set_budget("alice", Budget(model_seconds=1.0))
        assert ledger.check("alice") is None
        ledger.charge("alice", model_seconds=1.0, bytes=0.0)
        exceeded = ledger.check("alice")
        assert exceeded is not None
        assert exceeded.tenant == "alice"
        assert exceeded.resource == "model_seconds"
        assert exceeded.limit == 1.0 and exceeded.spent >= 1.0
        # the rejection payload is structured + JSON-safe
        assert json.dumps(exceeded.as_dict())

    def test_bytes_limit(self):
        ledger = BudgetLedger()
        ledger.set_budget("bob", Budget(bytes=100.0))
        ledger.charge("bob", model_seconds=0.0, bytes=100.0)
        assert ledger.check("bob").resource == "bytes"

    def test_charges_accumulate_per_tenant(self):
        ledger = BudgetLedger()
        ledger.charge("a", model_seconds=1.0, bytes=10.0)
        ledger.charge("a", model_seconds=2.0, bytes=5.0)
        ledger.charge("b", model_seconds=0.5, bytes=1.0)
        assert ledger.spent_of("a") == {"model_seconds": 3.0, "bytes": 15.0}
        assert ledger.snapshot()["b"]["model_seconds"] == 0.5

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            Budget(model_seconds=-1.0)


# ---------------------------------------------------------------------------
# unit: bounded queue + shed policy
# ---------------------------------------------------------------------------

class TestBoundedQueue:
    def test_reject_new_sheds_arrival(self):
        q = BoundedQueue(2, policy=ShedPolicy.REJECT_NEW)
        a, b, c = (_job(i) for i in range(3))
        assert q.offer(a) is None and q.offer(b) is None
        assert q.offer(c) is c          # the arrival is the victim
        assert list(q) == [a, b]

    def test_drop_oldest_sheds_head(self):
        q = BoundedQueue(2, policy=ShedPolicy.DROP_OLDEST)
        a, b, c = (_job(i) for i in range(3))
        q.offer(a), q.offer(b)
        assert q.offer(c) is a          # the head is the victim
        assert list(q) == [b, c]

    def test_per_graph_head_of_line_blocking(self):
        q = BoundedQueue(8)
        upd_g0 = _job(0, JobKind.UPDATE, "g0")
        qry_g0 = _job(1, JobKind.QUERY, "g0")
        upd_g1 = _job(2, JobKind.UPDATE, "g1")
        for j in (upd_g0, qry_g0, upd_g1):
            q.offer(j)
        # g0 busy: its update/query stay queued, g1's update overtakes
        assert q.pop_eligible({"g0"}) is upd_g1
        assert q.pop_eligible({"g0", "g1"}) is None
        assert q.pop_eligible(set()) is upd_g0

    def test_solve_is_always_eligible(self):
        q = BoundedQueue(4)
        s = _job(0, JobKind.SOLVE, "g0")
        q.offer(_job(1, JobKind.UPDATE, "g0"))
        q.offer(s)
        assert q.pop_eligible({"g0"}) is s

    def test_peak_depth_and_validation(self):
        q = BoundedQueue(4)
        for i in range(3):
            q.offer(_job(i))
        q.pop_eligible(set())
        assert q.peak_depth == 3
        with pytest.raises(ValueError):
            BoundedQueue(0)


# ---------------------------------------------------------------------------
# unit: circuit breaker
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        br = CircuitBreaker("g0:solve", failure_threshold=3, cooldown_s=1.0)
        assert not br.record_failure(0.0) and not br.record_failure(0.1)
        assert br.state is BreakerState.CLOSED and br.allow(0.2)
        assert br.record_failure(0.2)          # third failure opens
        assert br.state is BreakerState.OPEN and br.opened == 1
        assert not br.allow(0.5)               # still cooling down

    def test_half_open_admits_one_probe(self):
        br = CircuitBreaker("w", failure_threshold=1, cooldown_s=1.0)
        br.record_failure(0.0)
        assert br.allow(1.5)                   # past cooldown -> probe
        assert br.state is BreakerState.HALF_OPEN
        assert not br.allow(1.6)               # only one probe at a time

    def test_probe_success_closes(self):
        br = CircuitBreaker("w", failure_threshold=1, cooldown_s=1.0)
        br.record_failure(0.0)
        assert br.allow(1.5)
        br.record_success(2.0)
        assert br.state is BreakerState.CLOSED
        assert br.closed_after_probe == 1
        assert br.allow(2.1)

    def test_probe_failure_reopens(self):
        br = CircuitBreaker("w", failure_threshold=1, cooldown_s=1.0)
        br.record_failure(0.0)
        assert br.allow(1.5)
        assert br.record_failure(2.0)
        assert br.state is BreakerState.OPEN and br.reopened == 1
        assert not br.allow(2.5)               # new cooldown from reopen

    def test_success_resets_failure_streak(self):
        br = CircuitBreaker("w", failure_threshold=3, cooldown_s=1.0)
        br.record_failure(0.0), br.record_failure(0.1)
        br.record_success(0.2)
        assert not br.record_failure(0.3)      # streak restarted
        assert br.state is BreakerState.CLOSED

    def test_as_dict_and_transitions(self):
        br = CircuitBreaker("w", failure_threshold=1, cooldown_s=1.0)
        br.record_failure(0.0)
        d = br.as_dict()
        assert d["workload"] == "w" and d["state"] == "open"
        assert br.transitions[0]["state"] == "open"
        assert json.dumps(d)


# ---------------------------------------------------------------------------
# unit: jobs + workers + metrics
# ---------------------------------------------------------------------------

class TestJobs:
    def test_exactly_one_terminal_transition(self):
        job = _job()
        job.finish(1.0, JobState.DONE)
        assert job.terminal and job.latency_s == 1.0
        with pytest.raises(RuntimeError):
            job.finish(2.0, JobState.SHED)

    def test_terminal_states_are_exactly_four(self):
        assert TERMINAL_STATES == {
            JobState.DONE, JobState.REJECTED, JobState.SHED,
            JobState.DEAD_LETTER,
        }
        assert not JobState.RUNNING.terminal

    def test_workload_key(self):
        assert _job(kind=JobKind.QUERY, graph="g3").spec.workload == "g3:query"

    def test_artifact_is_json_safe(self):
        job = _job()
        job.record(0.0, "admit")
        job.finish(0.5, JobState.SHED, reason="backpressure")
        art = job.artifact()
        assert art["state"] == "shed" and art["reason"] == "backpressure"
        assert json.dumps(art)


class TestWorkerPool:
    def test_acquire_is_deterministic_and_wip_limited(self):
        pool = WorkerPool(3, wip_limit=2)
        a, b = pool.acquire(), pool.acquire()
        assert (a.id, b.id) == (0, 1)
        assert pool.acquire() is None          # WIP limit, not pool size
        pool.release(a, busy_s=2.0)
        assert pool.acquire().id == 0          # lowest idle id again
        assert pool.utilization(10.0) == pytest.approx(2.0 / 30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


def test_prometheus_exposition_format():
    svc = SccService(workers=1, queue_capacity=2)
    svc.register_graph("g0", cycle_graph(8))
    svc.submit(JobSpec("t0", JobKind.SOLVE, "g0"))
    svc.run()
    text = svc.to_prometheus()
    assert "# HELP repro_serve_submitted_total" in text
    assert "# TYPE repro_serve_submitted_total counter" in text
    assert "repro_serve_submitted_total 1" in text
    assert "repro_serve_completed_total 1" in text
    assert to_prometheus(svc.metrics) == text


def test_gauge_help_mirrors_counter_help():
    from repro.serve.metrics import (
        COUNTER_HELP,
        GAUGE_HELP,
        ServiceMetrics,
    )

    svc = SccService(workers=1, queue_capacity=2)
    svc.register_graph("g0", cycle_graph(8))
    svc.submit(JobSpec("t0", JobKind.SOLVE, "g0"))
    svc.run()
    text = svc.to_prometheus()
    # every emitted gauge has a curated HELP line, same contract as
    # counters — nothing falls through to the generic text
    for name, help_text in GAUGE_HELP.items():
        if f"repro_serve_{name} " in text:
            assert f"# HELP repro_serve_{name} {help_text}" in text
    assert "# HELP repro_serve_queue_peak_depth" in text
    assert "# TYPE repro_serve_queue_peak_depth gauge" in text
    assert not set(GAUGE_HELP) & set(COUNTER_HELP)

    # unknown names fall back to the generic line instead of dropping
    m = ServiceMetrics()
    m.gauge("bespoke_depth", 3.5)
    m.incr("bespoke_events")
    custom = to_prometheus(m)
    assert "# HELP repro_serve_bespoke_depth service gauge bespoke_depth" \
        in custom
    assert ("# HELP repro_serve_bespoke_events_total"
            " service counter bespoke_events") in custom


# ---------------------------------------------------------------------------
# end to end: the control plane
# ---------------------------------------------------------------------------

class TestServiceEndToEnd:
    def test_clean_run_all_done_and_bit_identical(self):
        g = scc_ladder(8)
        svc = SccService(workers=2, queue_capacity=8)
        svc.register_graph("main", g)
        for i in range(4):
            svc.submit(JobSpec(f"tenant-{i % 2}", JobKind.SOLVE, "main"),
                       at=0.001 * i)
        report = svc.run()
        assert report.by_state() == {"done": 4}
        expected = solve(g).labels
        for job in report.jobs:
            assert np.array_equal(job.result.labels, expected)
            assert job.decisions[-1]["decision"] == "done"
        # the first solve pays; the repeats ride the short-circuit layer
        # (cache hit or coalesced onto the in-flight leader) for free
        spent = svc.ledger.snapshot()
        assert spent["tenant-0"]["model_seconds"] > 0
        m = report.metrics
        assert m["dispatched"] < 4
        assert m["cache_hits"] + m["coalesced_reads"] == 4 - m["dispatched"]

    def test_budget_rejection_is_structured(self):
        svc = SccService(workers=1, queue_capacity=8)
        svc.register_graph("g0", cycle_graph(16))
        svc.set_budget("cheap", Budget(model_seconds=0.0))  # nothing starts
        job = svc.submit(JobSpec("cheap", JobKind.SOLVE, "g0"))
        rich = svc.submit(JobSpec("rich", JobKind.SOLVE, "g0"), at=0.001)
        report = svc.run()
        assert job.state is JobState.REJECTED
        assert job.error["resource"] == "model_seconds"
        assert rich.state is JobState.DONE
        assert report.metrics["rejected_budget"] == 1

    def test_backpressure_shed_is_explicit(self):
        # short-circuit layer off: identical solves would otherwise
        # coalesce onto one leader and the queue would never fill
        svc = SccService(workers=1, wip_limit=1, queue_capacity=1,
                         cache_enabled=False, coalesce_enabled=False)
        svc.register_graph("g0", cycle_graph(32))
        jobs = [
            svc.submit(JobSpec("t", JobKind.SOLVE, "g0")) for _ in range(6)
        ]
        report = svc.run()
        states = report.by_state()
        assert states["shed"] >= 1 and states["done"] >= 1
        assert states["shed"] == report.metrics["shed_backpressure"]
        for job in jobs:
            if job.state is JobState.SHED:
                assert job.reason == "backpressure"

    def test_deadline_dead_letters_before_burning_a_worker(self):
        svc = SccService(workers=1, queue_capacity=8)
        svc.register_graph("g0", cycle_graph(64))
        first = svc.submit(JobSpec("t", JobKind.SOLVE, "g0"))
        late = svc.submit(
            JobSpec("t", JobKind.SOLVE, "g0", deadline_s=1e-12)
        )
        svc.run()
        assert first.state is JobState.DONE
        assert late.state is JobState.DEAD_LETTER
        assert late.reason == "deadline"
        assert late.attempts == 0              # never dispatched

    def test_update_then_query_sees_new_generation(self):
        g = cycle_graph(10)
        svc = SccService(workers=1, queue_capacity=8)
        svc.register_graph("g0", g)
        # deleting one cycle edge splits the single SCC into 10
        upd = svc.submit(
            JobSpec("t", JobKind.UPDATE, "g0", delete_edges=([0], [1]))
        )
        qry = svc.submit(JobSpec("t", JobKind.QUERY, "g0"), at=1.0)
        svc.run()
        assert upd.state is JobState.DONE and qry.state is JobState.DONE
        assert len(np.unique(np.asarray(qry.result))) == 10

    def test_crash_plan_retries_are_bounded(self):
        plan = preset_plan("serve-crash", seed=5)
        # short-circuit layer off: identical solves would coalesce
        # down to a couple of dispatches and starve the crash draws
        svc = SccService(workers=2, queue_capacity=16, faults=plan,
                         cache_enabled=False, coalesce_enabled=False)
        svc.register_graph("g0", scc_ladder(6))
        for i in range(10):
            svc.submit(JobSpec("t", JobKind.SOLVE, "g0"), at=0.0005 * i)
        report = svc.run()
        assert report.metrics["crashed"] > 0
        assert report.metrics["retries"] > 0
        for job in report.jobs:
            assert job.state in TERMINAL_STATES
            assert job.attempts <= plan.max_retries + 1
        # crashed attempts are still charged
        assert svc.ledger.spent_of("t")["model_seconds"] > 0

    def test_unknown_graph_rejected_at_submit(self):
        svc = SccService()
        with pytest.raises(GraphFormatError):
            svc.submit(JobSpec("t", JobKind.SOLVE, "nope"))
        svc.register_graph("g0", cycle_graph(4))
        with pytest.raises(GraphFormatError):
            svc.register_graph("g0", cycle_graph(4))


# ---------------------------------------------------------------------------
# bench + chaos harness
# ---------------------------------------------------------------------------

SMALL = ServeBenchConfig(
    scenario="test", num_graphs=2, graph_vertices=40, graph_edges=120,
    num_jobs=14, workers=2, queue_capacity=4, seed=0,
)


class TestBench:
    def test_clean_bench_row_shape(self):
        row = run_serve_bench(SMALL, verify=True)
        assert row["algorithm"] == "serve-bench" and row["graph"] == "test"
        assert row["jobs"] == 14
        assert sum(row["by_state"].values()) == 14
        assert row["throughput_jps"] > 0 and row["p99_ms"] >= row["p50_ms"]
        assert row["verified"]["ok"]
        assert json.dumps(row, default=str)

    def test_bench_is_deterministic(self):
        a = run_serve_bench(SMALL)
        b = run_serve_bench(SMALL)
        assert json.dumps(a, sort_keys=True, default=str) == \
            json.dumps(b, sort_keys=True, default=str)

    def test_chaos_crash_verifies(self):
        cfg = ServeBenchConfig(
            **{**SMALL.__dict__, "scenario": "crash",
               "plan": preset_plan("serve-crash", 0)}
        )
        row = run_serve_bench(cfg, verify=True)
        assert row["verified"]["ok"] and row["crashes"] > 0

    def test_chaos_delay_verifies(self):
        cfg = ServeBenchConfig(
            **{**SMALL.__dict__, "scenario": "delay",
               "plan": preset_plan("serve-delay", 0)}
        )
        row = run_serve_bench(cfg, verify=True)
        assert row["verified"]["ok"]

    def test_tenant_budget_exercises_rejection(self):
        cfg = ServeBenchConfig(
            **{**SMALL.__dict__, "scenario": "budget",
               "tenant0_budget_s": 0.0}
        )
        row = run_serve_bench(cfg, verify=True)
        assert row["reject_rate"] > 0 and row["verified"]["ok"]

    def test_breaker_win_under_crash_storm(self):
        # cache/coalescing off: the breaker win is measured on the
        # raw dispatch path (the short-circuit layer absorbs so much
        # load the nobreakers queue never backs up)
        cfg = ServeBenchConfig(
            scenario="zipf-crash", plan=preset_plan("serve-crash", 0),
            cache_enabled=False, coalesce_enabled=False,
        )
        cmp = breaker_comparison(cfg)          # raises if the win is lost
        win = cmp["breaker_win"]
        assert win["ok"]
        assert cmp["disabled"]["p99_ms"] > cmp["enabled"]["p99_ms"]
        assert cmp["disabled"]["shed_rate"] > cmp["enabled"]["shed_rate"]

    def test_breaker_comparison_needs_serve_plan(self):
        with pytest.raises(ValueError):
            breaker_comparison(SMALL)

    def test_preset_plan_unknown_name(self):
        with pytest.raises(FaultPlanError):
            preset_plan("definitely-not-a-preset", 0)


# ---------------------------------------------------------------------------
# the chaos property, across engine x backend
# ---------------------------------------------------------------------------

@given(
    seed=st.integers(0, 2**16),
    engine=st.sampled_from([None, "frontier", "adaptive"]),
    backend=st.sampled_from([None, "dense", "frontier"]),
    plan_name=st.sampled_from(["serve-crash", "serve-delay"]),
    cache_on=st.booleans(),
    merge=st.integers(1, 4),
)
@settings(max_examples=12, deadline=None)
def test_chaos_every_job_terminal_and_bit_identical(
    seed, engine, backend, plan_name, cache_on, merge
):
    """The service's safety contract, property-style.

    Under a seeded fault plan, on any engine x backend x short-circuit
    configuration: every job reaches exactly one terminal state with a
    consistent decision history, no attempt count exceeds the plan's
    retry bound, every completed solve/query — cold, cached, or
    coalesced — is bit-identical to an unserved ``repro.solve`` of the
    replayed graph at the same generation, and no cache entry outlives
    its graph's committed generation.
    """
    plan = preset_plan(plan_name, seed)
    cfg = ServeBenchConfig(
        scenario="prop", num_graphs=2, graph_vertices=40, graph_edges=120,
        num_jobs=12, workers=2, queue_capacity=4, plan=plan,
        engine=engine, backend=backend, seed=seed,
    )
    graphs = _build_graphs(cfg)
    initial_edges = {name: g.edges() for name, g in graphs.items()}
    mean = float(
        solve(graphs["g0"], engine=engine, backend=backend).model_seconds
    )
    svc = SccService(
        workers=cfg.workers, queue_capacity=cfg.queue_capacity,
        engine=engine, backend=backend, faults=plan, seed=seed,
        cache_enabled=cache_on, coalesce_enabled=cache_on,
        merge_updates=merge,
    )
    for name, g in graphs.items():
        svc.register_graph(name, g)
    for at, spec in build_workload(cfg, mean_service_s=mean):
        svc.submit(_resolve_deletions(spec, initial_edges), at=at)
    report = svc.run()

    assert len(report.jobs) == cfg.num_jobs          # no job lost
    for job in report.jobs:
        assert job.state in TERMINAL_STATES          # exactly one terminal
        assert job.finish_s is not None
        assert job.attempts <= plan.max_retries + 1  # bounded retry
    assert sum(report.by_state().values()) == cfg.num_jobs

    outcome = verify_report(report, graphs, engine=engine, backend=backend)
    assert outcome["ok"], outcome["failures"]

    if svc.cache is not None:
        # entries never survive a generation advance: whatever is left
        # in the cache is keyed at its graph's final committed
        # generation (older generations were invalidated on commit)
        for key, entry in svc.cache.entries():
            final = svc.graph_handle(key[0]).generation
            assert entry.generation == key[1] == final


@given(seed=st.integers(0, 2**16))
@settings(max_examples=8, deadline=None)
def test_service_replays_bit_for_bit(seed):
    """Same config, same seed -> byte-identical artifact streams."""
    cfg = ServeBenchConfig(
        scenario="replay", num_graphs=2, graph_vertices=30, graph_edges=90,
        num_jobs=10, workers=2, queue_capacity=3,
        plan=preset_plan("serve-crash", seed), seed=seed,
    )
    a = run_serve_bench(cfg)
    b = run_serve_bench(cfg)
    assert json.dumps(a, sort_keys=True, default=str) == \
        json.dumps(b, sort_keys=True, default=str)


def test_random_gnm_edges_support_deletion_slices():
    """The bench's disjoint-slice deletion scheme rests on edges()
    returning the construction edge list deterministically."""
    g = random_gnm(20, 60, seed=1)
    src, dst = g.edges()
    assert len(src) == 60
    src2, dst2 = random_gnm(20, 60, seed=1).edges()
    assert np.array_equal(src, src2) and np.array_equal(dst, dst2)


# ---------------------------------------------------------------------------
# unit: the generation-keyed solve cache
# ---------------------------------------------------------------------------

class TestSolveCache:
    def _entry(self, gen=0, n=8):
        return CacheEntry(
            labels=np.zeros(n, dtype=np.int64), num_sccs=1, generation=gen
        )

    def test_get_put_and_lru_eviction_by_bytes(self):
        one = self._entry().nbytes
        cache = SolveCache(max_bytes=2 * one)       # room for two entries
        ka = SolveCache.key("a", 0, None, None)
        kb = SolveCache.key("b", 0, None, None)
        kc = SolveCache.key("c", 0, None, None)
        assert cache.put(ka, self._entry()) == []
        assert cache.put(kb, self._entry()) == []
        assert cache.get(ka) is not None            # bumps a to MRU
        assert cache.put(kc, self._entry()) == [kb]  # b was LRU
        assert kb not in cache and ka in cache and kc in cache
        assert cache.stats.evictions == 1 and cache.stats.hits == 1
        assert cache.bytes == 2 * one and len(cache) == 2

    def test_oversized_entry_refused_not_evicting_everything(self):
        cache = SolveCache(max_bytes=64)            # smaller than any entry
        k = SolveCache.key("a", 0, None, None)
        assert cache.put(k, self._entry(n=64)) == []
        assert k not in cache and cache.stats.stale_puts == 1

    def test_invalidate_drops_stale_generations_only(self):
        cache = SolveCache()
        cache.put(SolveCache.key("a", 0, None, None), self._entry(gen=0))
        cache.put(SolveCache.key("a", 2, None, None), self._entry(gen=2))
        cache.put(SolveCache.key("b", 0, None, None), self._entry(gen=0))
        assert cache.invalidate("a", current_generation=2) == 1
        assert SolveCache.key("a", 0, None, None) not in cache
        assert SolveCache.key("a", 2, None, None) in cache      # current kept
        assert SolveCache.key("b", 0, None, None) in cache      # other graph
        assert cache.stats.invalidations == 1

    def test_replace_same_key_does_not_leak_bytes(self):
        cache = SolveCache()
        k = SolveCache.key("a", 0, None, None)
        cache.put(k, self._entry())
        cache.put(k, self._entry())
        assert cache.bytes == self._entry().nbytes and len(cache) == 1

    def test_as_dict_and_validation(self):
        cache = SolveCache(max_bytes=1024)
        d = cache.as_dict()
        assert d["max_bytes"] == 1024 and d["entries"] == 0
        for field in ("hits", "misses", "evictions", "invalidations"):
            assert d[field] == 0
        with pytest.raises(ValueError):
            SolveCache(max_bytes=0)


# ---------------------------------------------------------------------------
# unit: eligible-aware eviction, queued_at, requeue/extract
# ---------------------------------------------------------------------------

class TestQueueEligibleAwareEviction:
    def test_drop_oldest_prefers_blocked_victim(self):
        q = BoundedQueue(2, policy=ShedPolicy.DROP_OLDEST)
        upd_g0 = _job(0, JobKind.UPDATE, "g0")      # eligible (g0 free)
        qry_g1 = _job(1, JobKind.QUERY, "g1")       # blocked (g1 busy)
        q.offer(upd_g0), q.offer(qry_g1)
        c = _job(2)
        # the oldest job *blocked* behind a busy graph sheds first,
        # not the plain head
        assert q.offer(c, busy_graphs={"g1"}) is qry_g1
        assert list(q) == [upd_g0, c]

    def test_drop_oldest_falls_back_to_head_when_all_eligible(self):
        q = BoundedQueue(2, policy=ShedPolicy.DROP_OLDEST)
        a, b = _job(0, JobKind.UPDATE, "g0"), _job(1, JobKind.QUERY, "g1")
        q.offer(a), q.offer(b)
        assert q.offer(_job(2), busy_graphs=set()) is a

    def test_solve_never_picked_as_blocked_victim(self):
        q = BoundedQueue(2, policy=ShedPolicy.DROP_OLDEST)
        s = _job(0, JobKind.SOLVE, "g0")            # always eligible
        upd = _job(1, JobKind.UPDATE, "g0")
        q.offer(s), q.offer(upd)
        assert q.offer(_job(2), busy_graphs={"g0"}) is upd

    def test_offer_stamps_queued_at(self):
        q = BoundedQueue(1, policy=ShedPolicy.REJECT_NEW)
        a, b = _job(0), _job(1)
        q.offer(a, now=1.5)
        assert a.queued_at == 1.5
        assert q.offer(b, now=2.5) is b             # rejected arrival...
        assert b.queued_at == 2.5                   # ...still stamped

    def test_requeue_prepends_in_order_and_may_overfill(self):
        q = BoundedQueue(2)
        a, b = _job(0), _job(1)
        q.offer(a), q.offer(b)
        x, y = _job(2), _job(3)
        q.requeue([x, y])
        assert list(q) == [x, y, a, b]              # transient overfill ok
        assert len(q) == 4 and q.peak_depth == 4

    def test_extract_preserves_order_and_calls_pred_once(self):
        q = BoundedQueue(8)
        jobs = [_job(i) for i in range(5)]
        for j in jobs:
            q.offer(j)
        seen = []
        out = q.extract(lambda j: (seen.append(j.id), j.id % 2 == 0)[1])
        assert [j.id for j in out] == [0, 2, 4]
        assert [j.id for j in q] == [1, 3]
        assert seen == [0, 1, 2, 3, 4]              # exactly once, in order


# ---------------------------------------------------------------------------
# regression: the deadline expiry boundary (>= in dispatch AND retry)
# ---------------------------------------------------------------------------

class TestDeadlineBoundary:
    def _completion_time(self, g):
        """When one cold solve of *g* completes on a fresh service."""
        probe = SccService(workers=1, cache_enabled=False,
                           coalesce_enabled=False)
        probe.register_graph("g0", g)
        job = probe.submit(JobSpec("t", JobKind.SOLVE, "g0"))
        probe.run()
        return job.finish_s

    def test_dispatch_at_exact_deadline_expires(self):
        g = cycle_graph(32)
        t1 = self._completion_time(g)
        svc = SccService(workers=1, queue_capacity=8,
                         cache_enabled=False, coalesce_enabled=False)
        svc.register_graph("g0", g)
        svc.submit(JobSpec("t", JobKind.SOLVE, "g0"))
        # dequeued exactly when the worker frees at t1 == its deadline:
        # a job at its deadline is expired, not dispatched
        late = svc.submit(JobSpec("t", JobKind.SOLVE, "g0", deadline_s=t1))
        svc.run()
        assert late.state is JobState.DEAD_LETTER
        assert late.reason == "deadline"
        assert svc.metrics["deadline_expired"] == 1

    def test_retry_landing_at_exact_deadline_expires(self, monkeypatch):
        from repro.faults.plan import FaultPlan
        from repro.serve import service as service_mod

        g = cycle_graph(32)
        plan = FaultPlan(worker_crash_rate=1.0, max_retries=3)
        # pin the backoff so retry_at is exactly computable
        wait = 1e-4
        monkeypatch.setattr(service_mod, "backoff_seconds",
                            lambda *a, **k: wait)
        # probe run: when does the (always-crashing) first attempt end?
        probe = SccService(workers=1, faults=plan, cache_enabled=False,
                           coalesce_enabled=False)
        probe.register_graph("g0", g)
        pj = probe.submit(JobSpec("t", JobKind.SOLVE, "g0"))
        probe.run()
        d = pj.attempts_detail[0]
        t_crash = d["t_dispatch"] + d["service_s"] + d["delay_s"]
        # same seed => same crash draw; deadline exactly at retry_at
        svc = SccService(workers=1, faults=plan, cache_enabled=False,
                         coalesce_enabled=False)
        svc.register_graph("g0", g)
        job = svc.submit(JobSpec("t", JobKind.SOLVE, "g0",
                                 deadline_s=t_crash + wait))
        svc.run()
        # a retry landing exactly at the deadline is dead on arrival:
        # it must be dead-lettered *now*, not scheduled and re-judged
        assert job.state is JobState.DEAD_LETTER
        assert job.reason == "deadline"
        assert svc.metrics["retries"] == 0
        assert not any(dec["decision"] == "retry-scheduled"
                       for dec in job.decisions)


# ---------------------------------------------------------------------------
# end to end: the short-circuit layer (cache + coalescing)
# ---------------------------------------------------------------------------

class TestShortCircuitLayer:
    def test_cache_hit_serves_repeat_solve_free(self):
        g = scc_ladder(8)
        svc = SccService(workers=1, queue_capacity=8)
        svc.register_graph("main", g)
        first = svc.submit(JobSpec("alice", JobKind.SOLVE, "main"), at=0.0)
        svc.run()                                   # first completes, cached
        hit = svc.submit(JobSpec("bob", JobKind.SOLVE, "main"),
                         at=first.finish_s + 1.0)
        svc.run()
        assert hit.state is JobState.DONE
        assert np.array_equal(hit.result.labels, first.result.labels)
        assert svc.metrics["cache_hits"] == 1
        assert svc.metrics["dispatched"] == 1       # the hit used no worker
        # zero device cost: bob was never charged
        assert "bob" not in svc.ledger.snapshot()
        # the artifact records the hit
        assert hit.attempts_detail[-1]["cache_hit"] is True
        assert any(d["decision"] == "cache_hit" for d in hit.decisions)

    def test_coalesced_reads_split_the_charge_evenly(self):
        g = scc_ladder(8)
        svc = SccService(workers=1, queue_capacity=8)
        svc.register_graph("main", g)
        tenants = ["a", "b", "c"]
        jobs = [svc.submit(JobSpec(t, JobKind.SOLVE, "main"), at=0.0)
                for t in tenants]
        svc.run()
        assert all(j.state is JobState.DONE for j in jobs)
        assert svc.metrics["dispatched"] == 1
        assert svc.metrics["coalesced_reads"] == 2
        expected = solve(g).labels
        for j in jobs:
            assert np.array_equal(j.result.labels, expected)
        spent = svc.ledger.snapshot()
        # the one execution's charge split three ways, evenly
        assert spent["a"]["model_seconds"] == pytest.approx(
            spent["b"]["model_seconds"]) and spent["b"]["model_seconds"] == \
            pytest.approx(spent["c"]["model_seconds"])
        assert spent["a"]["model_seconds"] > 0

    def test_update_commit_invalidates_cache(self):
        g = cycle_graph(16)
        svc = SccService(workers=1, queue_capacity=8)
        svc.register_graph("g0", g)
        s1 = svc.submit(JobSpec("t", JobKind.SOLVE, "g0"), at=0.0)
        svc.run()
        assert len(svc.cache) == 1
        # break the cycle: the committed update must drop the entry
        svc.submit(JobSpec("t", JobKind.UPDATE, "g0",
                           delete_edges=([0], [1])), at=s1.finish_s + 1.0)
        svc.run()
        assert svc.cache.stats.invalidations == 1
        q = svc.submit(JobSpec("t", JobKind.QUERY, "g0"), at=1.0)
        svc.run()
        cold = solve(svc.graph_handle("g0").graph())
        assert np.array_equal(q.result.labels, cold.labels)
        assert q.result.num_sccs == 16              # cycle fully split

    def test_consecutive_updates_merge_into_one_apply(self):
        svc = SccService(workers=1, queue_capacity=16, merge_updates=4)
        svc.register_graph("big", cycle_graph(64))   # occupies the worker
        svc.register_graph("g1", cycle_graph(8))
        svc.submit(JobSpec("t", JobKind.SOLVE, "big"), at=0.0)
        ups = [
            svc.submit(JobSpec("t", JobKind.UPDATE, "g1",
                               insert_edges=([i], [(i + 3) % 8])),
                       at=1e-9 * (i + 1))
            for i in range(3)
        ]
        svc.run()
        assert all(u.state is JobState.DONE for u in ups)
        assert svc.metrics["coalesced_updates"] == 2
        # one merged apply: insertions only => generation advanced once
        assert svc.graph_handle("g1").generation == 1
        gens = [u.attempts_detail[-1]["generation"] for u in ups]
        assert gens == [1, 1, 1]                     # shared final generation
        idx = [u.attempts_detail[-1].get("merge_index") for u in ups]
        assert idx == [0, 1, 2]                      # leader first, in order
        cold = solve(svc.graph_handle("g1").graph())
        q = svc.submit(JobSpec("t", JobKind.QUERY, "g1"), at=1.0)
        svc.run()
        assert np.array_equal(q.result.labels, cold.labels)

    def test_merge_stops_at_interleaved_read(self):
        svc = SccService(workers=1, queue_capacity=16)
        svc.register_graph("big", cycle_graph(64))
        svc.register_graph("g1", cycle_graph(8))
        svc.submit(JobSpec("t", JobKind.SOLVE, "big"), at=0.0)
        u1 = svc.submit(JobSpec("t", JobKind.UPDATE, "g1",
                                insert_edges=([0], [3])), at=1e-9)
        q = svc.submit(JobSpec("t", JobKind.QUERY, "g1"), at=2e-9)
        u2 = svc.submit(JobSpec("t", JobKind.UPDATE, "g1",
                                insert_edges=([1], [4])), at=3e-9)
        svc.run()
        # program order per graph: u2 may not commit past the query
        assert svc.metrics["coalesced_updates"] == 0
        assert all(j.state is JobState.DONE for j in (u1, q, u2))
        gen_q = q.attempts_detail[-1]["generation"]
        assert _fg(u1) <= gen_q < _fg(u2)

    def test_merge_respects_delete_insert_overlap(self):
        svc = SccService(workers=1, queue_capacity=16)
        svc.register_graph("big", cycle_graph(64))
        svc.register_graph("g1", cycle_graph(8))
        svc.submit(JobSpec("t", JobKind.SOLVE, "big"), at=0.0)
        u1 = svc.submit(JobSpec("t", JobKind.UPDATE, "g1",
                                insert_edges=([0], [3])), at=1e-9)
        # u2 deletes the edge u1 inserts: merging would break apply's
        # delete-before-insert phase order, so it must not merge
        u2 = svc.submit(JobSpec("t", JobKind.UPDATE, "g1",
                                delete_edges=([0], [3])), at=2e-9)
        svc.run()
        assert svc.metrics["coalesced_updates"] == 0
        assert u1.state is JobState.DONE and u2.state is JobState.DONE
        assert _fg(u1) < _fg(u2)                    # committed sequentially
        cold = solve(svc.graph_handle("g1").graph())
        assert cold.num_sccs == 1                   # net effect: ring intact

    def test_leader_crash_requeues_followers_without_partial_commit(self):
        from repro.faults.plan import FaultPlan

        plan = FaultPlan(worker_crash_rate=1.0, max_retries=1)
        svc = SccService(workers=1, queue_capacity=16, faults=plan,
                         breakers_enabled=False)
        svc.register_graph("big", cycle_graph(64))
        svc.register_graph("g1", cycle_graph(8))
        svc.submit(JobSpec("t", JobKind.SOLVE, "big"), at=0.0)
        ups = [
            svc.submit(JobSpec("t", JobKind.UPDATE, "g1",
                               insert_edges=([i], [(i + 3) % 8])),
                       at=1e-9 * (i + 1))
            for i in range(3)
        ]
        svc.run()
        # every dispatch crashes: followers were requeued (at least
        # once), every job still reached exactly one terminal state
        assert svc.metrics["coalesce_requeued"] >= 1
        assert all(u.terminal for u in ups)
        assert all(u.state is JobState.DEAD_LETTER for u in ups)
        # crash-restore left no partial commit behind
        assert svc.graph_handle("g1").generation == 0
        assert solve(svc.graph_handle("g1").graph()).num_sccs == 1

    def test_follower_past_leader_deadline_is_not_attached(self):
        g = cycle_graph(64)
        svc = SccService(workers=1, queue_capacity=8)
        svc.register_graph("g0", g)
        first = svc.submit(JobSpec("t", JobKind.SOLVE, "g0"))
        # its deadline expires long before the in-flight leader
        # completes: attaching would knowingly deliver a dead result
        late = svc.submit(JobSpec("t", JobKind.SOLVE, "g0",
                                  deadline_s=1e-12))
        svc.run()
        assert first.state is JobState.DONE
        assert late.state is JobState.DEAD_LETTER
        assert late.reason == "deadline"
        assert svc.metrics["coalesced_reads"] == 0

    def test_shed_record_carries_queue_wait(self):
        svc = SccService(workers=1, wip_limit=1, queue_capacity=1,
                         shed_policy=ShedPolicy.DROP_OLDEST,
                         cache_enabled=False, coalesce_enabled=False)
        svc.register_graph("g0", cycle_graph(32))
        for i in range(4):
            svc.submit(JobSpec("t", JobKind.SOLVE, "g0"), at=1e-7 * i)
        report = svc.run()
        shed = [j for j in report.jobs if j.state is JobState.SHED]
        assert shed
        for j in shed:
            d = next(dec for dec in j.decisions if dec["decision"] == "shed")
            assert d["waited_s"] >= 0.0
            assert d["waited_s"] == pytest.approx(j.finish_s - j.queued_at)
        assert report.metrics.gauges["shed_wait_s_total"] >= 0.0

    def test_disabled_layer_is_inert(self):
        g = scc_ladder(8)
        svc = SccService(workers=2, queue_capacity=8,
                         cache_enabled=False, coalesce_enabled=False)
        svc.register_graph("main", g)
        for i in range(4):
            svc.submit(JobSpec("t", JobKind.SOLVE, "main"), at=0.001 * i)
        report = svc.run()
        assert report.by_state() == {"done": 4}
        assert svc.metrics["dispatched"] == 4       # nothing short-circuited
        assert svc.metrics["cache_hits"] == 0
        assert svc.metrics["coalesced_reads"] == 0
        assert report.cache is None


def _fg(job):
    """Final committed generation of a DONE job (test helper)."""
    for d in reversed(job.attempts_detail):
        if "generation" in d:
            return d["generation"]
    return 0
