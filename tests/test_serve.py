"""Tests for :mod:`repro.serve` — the SCC-as-a-service control plane.

The contract (docs/serve.md):

* every submitted job reaches **exactly one** terminal state — done,
  rejected, shed, or dead-letter — with its decision history attached;
* budgets are hard limits on starting work, backpressure sheds are
  explicit and counted, retries are bounded by the fault plan, and
  circuit breakers measurably protect tail latency under crash storms;
* the whole service runs in seeded simulated time: two runs of the
  same config are byte-identical, and every completed solve/query is
  bit-identical to an unserved ``repro.solve`` of the same graph
  generation — even under chaos plans.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import solve
from repro.errors import FaultPlanError, GraphFormatError
from repro.faults import preset_plan
from repro.graph import cycle_graph, scc_ladder
from repro.graph.generators import random_gnm
from repro.serve import (
    TERMINAL_STATES,
    BoundedQueue,
    BreakerState,
    Budget,
    BudgetLedger,
    CircuitBreaker,
    Job,
    JobKind,
    JobSpec,
    JobState,
    SccService,
    ServeBenchConfig,
    ShedPolicy,
    WorkerPool,
    run_serve_bench,
    to_prometheus,
)
from repro.serve.bench import (
    _build_graphs,
    _resolve_deletions,
    breaker_comparison,
    build_workload,
    verify_report,
)


def _job(jid=0, kind=JobKind.SOLVE, graph="g0", tenant="t0"):
    return Job(id=jid, spec=JobSpec(tenant=tenant, kind=kind, graph=graph),
               submit_s=0.0)


# ---------------------------------------------------------------------------
# unit: budgets
# ---------------------------------------------------------------------------

class TestBudget:
    def test_default_is_unlimited(self):
        ledger = BudgetLedger()
        assert ledger.check("anyone") is None
        ledger.charge("anyone", model_seconds=1e9, bytes=1e15)
        assert ledger.check("anyone") is None

    def test_hard_limit_rejects_at_limit(self):
        ledger = BudgetLedger()
        ledger.set_budget("alice", Budget(model_seconds=1.0))
        assert ledger.check("alice") is None
        ledger.charge("alice", model_seconds=1.0, bytes=0.0)
        exceeded = ledger.check("alice")
        assert exceeded is not None
        assert exceeded.tenant == "alice"
        assert exceeded.resource == "model_seconds"
        assert exceeded.limit == 1.0 and exceeded.spent >= 1.0
        # the rejection payload is structured + JSON-safe
        assert json.dumps(exceeded.as_dict())

    def test_bytes_limit(self):
        ledger = BudgetLedger()
        ledger.set_budget("bob", Budget(bytes=100.0))
        ledger.charge("bob", model_seconds=0.0, bytes=100.0)
        assert ledger.check("bob").resource == "bytes"

    def test_charges_accumulate_per_tenant(self):
        ledger = BudgetLedger()
        ledger.charge("a", model_seconds=1.0, bytes=10.0)
        ledger.charge("a", model_seconds=2.0, bytes=5.0)
        ledger.charge("b", model_seconds=0.5, bytes=1.0)
        assert ledger.spent_of("a") == {"model_seconds": 3.0, "bytes": 15.0}
        assert ledger.snapshot()["b"]["model_seconds"] == 0.5

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            Budget(model_seconds=-1.0)


# ---------------------------------------------------------------------------
# unit: bounded queue + shed policy
# ---------------------------------------------------------------------------

class TestBoundedQueue:
    def test_reject_new_sheds_arrival(self):
        q = BoundedQueue(2, policy=ShedPolicy.REJECT_NEW)
        a, b, c = (_job(i) for i in range(3))
        assert q.offer(a) is None and q.offer(b) is None
        assert q.offer(c) is c          # the arrival is the victim
        assert list(q) == [a, b]

    def test_drop_oldest_sheds_head(self):
        q = BoundedQueue(2, policy=ShedPolicy.DROP_OLDEST)
        a, b, c = (_job(i) for i in range(3))
        q.offer(a), q.offer(b)
        assert q.offer(c) is a          # the head is the victim
        assert list(q) == [b, c]

    def test_per_graph_head_of_line_blocking(self):
        q = BoundedQueue(8)
        upd_g0 = _job(0, JobKind.UPDATE, "g0")
        qry_g0 = _job(1, JobKind.QUERY, "g0")
        upd_g1 = _job(2, JobKind.UPDATE, "g1")
        for j in (upd_g0, qry_g0, upd_g1):
            q.offer(j)
        # g0 busy: its update/query stay queued, g1's update overtakes
        assert q.pop_eligible({"g0"}) is upd_g1
        assert q.pop_eligible({"g0", "g1"}) is None
        assert q.pop_eligible(set()) is upd_g0

    def test_solve_is_always_eligible(self):
        q = BoundedQueue(4)
        s = _job(0, JobKind.SOLVE, "g0")
        q.offer(_job(1, JobKind.UPDATE, "g0"))
        q.offer(s)
        assert q.pop_eligible({"g0"}) is s

    def test_peak_depth_and_validation(self):
        q = BoundedQueue(4)
        for i in range(3):
            q.offer(_job(i))
        q.pop_eligible(set())
        assert q.peak_depth == 3
        with pytest.raises(ValueError):
            BoundedQueue(0)


# ---------------------------------------------------------------------------
# unit: circuit breaker
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        br = CircuitBreaker("g0:solve", failure_threshold=3, cooldown_s=1.0)
        assert not br.record_failure(0.0) and not br.record_failure(0.1)
        assert br.state is BreakerState.CLOSED and br.allow(0.2)
        assert br.record_failure(0.2)          # third failure opens
        assert br.state is BreakerState.OPEN and br.opened == 1
        assert not br.allow(0.5)               # still cooling down

    def test_half_open_admits_one_probe(self):
        br = CircuitBreaker("w", failure_threshold=1, cooldown_s=1.0)
        br.record_failure(0.0)
        assert br.allow(1.5)                   # past cooldown -> probe
        assert br.state is BreakerState.HALF_OPEN
        assert not br.allow(1.6)               # only one probe at a time

    def test_probe_success_closes(self):
        br = CircuitBreaker("w", failure_threshold=1, cooldown_s=1.0)
        br.record_failure(0.0)
        assert br.allow(1.5)
        br.record_success(2.0)
        assert br.state is BreakerState.CLOSED
        assert br.closed_after_probe == 1
        assert br.allow(2.1)

    def test_probe_failure_reopens(self):
        br = CircuitBreaker("w", failure_threshold=1, cooldown_s=1.0)
        br.record_failure(0.0)
        assert br.allow(1.5)
        assert br.record_failure(2.0)
        assert br.state is BreakerState.OPEN and br.reopened == 1
        assert not br.allow(2.5)               # new cooldown from reopen

    def test_success_resets_failure_streak(self):
        br = CircuitBreaker("w", failure_threshold=3, cooldown_s=1.0)
        br.record_failure(0.0), br.record_failure(0.1)
        br.record_success(0.2)
        assert not br.record_failure(0.3)      # streak restarted
        assert br.state is BreakerState.CLOSED

    def test_as_dict_and_transitions(self):
        br = CircuitBreaker("w", failure_threshold=1, cooldown_s=1.0)
        br.record_failure(0.0)
        d = br.as_dict()
        assert d["workload"] == "w" and d["state"] == "open"
        assert br.transitions[0]["state"] == "open"
        assert json.dumps(d)


# ---------------------------------------------------------------------------
# unit: jobs + workers + metrics
# ---------------------------------------------------------------------------

class TestJobs:
    def test_exactly_one_terminal_transition(self):
        job = _job()
        job.finish(1.0, JobState.DONE)
        assert job.terminal and job.latency_s == 1.0
        with pytest.raises(RuntimeError):
            job.finish(2.0, JobState.SHED)

    def test_terminal_states_are_exactly_four(self):
        assert TERMINAL_STATES == {
            JobState.DONE, JobState.REJECTED, JobState.SHED,
            JobState.DEAD_LETTER,
        }
        assert not JobState.RUNNING.terminal

    def test_workload_key(self):
        assert _job(kind=JobKind.QUERY, graph="g3").spec.workload == "g3:query"

    def test_artifact_is_json_safe(self):
        job = _job()
        job.record(0.0, "admit")
        job.finish(0.5, JobState.SHED, reason="backpressure")
        art = job.artifact()
        assert art["state"] == "shed" and art["reason"] == "backpressure"
        assert json.dumps(art)


class TestWorkerPool:
    def test_acquire_is_deterministic_and_wip_limited(self):
        pool = WorkerPool(3, wip_limit=2)
        a, b = pool.acquire(), pool.acquire()
        assert (a.id, b.id) == (0, 1)
        assert pool.acquire() is None          # WIP limit, not pool size
        pool.release(a, busy_s=2.0)
        assert pool.acquire().id == 0          # lowest idle id again
        assert pool.utilization(10.0) == pytest.approx(2.0 / 30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


def test_prometheus_exposition_format():
    svc = SccService(workers=1, queue_capacity=2)
    svc.register_graph("g0", cycle_graph(8))
    svc.submit(JobSpec("t0", JobKind.SOLVE, "g0"))
    svc.run()
    text = svc.to_prometheus()
    assert "# HELP repro_serve_submitted_total" in text
    assert "# TYPE repro_serve_submitted_total counter" in text
    assert "repro_serve_submitted_total 1" in text
    assert "repro_serve_completed_total 1" in text
    assert to_prometheus(svc.metrics) == text


# ---------------------------------------------------------------------------
# end to end: the control plane
# ---------------------------------------------------------------------------

class TestServiceEndToEnd:
    def test_clean_run_all_done_and_bit_identical(self):
        g = scc_ladder(8)
        svc = SccService(workers=2, queue_capacity=8)
        svc.register_graph("main", g)
        for i in range(4):
            svc.submit(JobSpec(f"tenant-{i % 2}", JobKind.SOLVE, "main"),
                       at=0.001 * i)
        report = svc.run()
        assert report.by_state() == {"done": 4}
        expected = solve(g).labels
        for job in report.jobs:
            assert np.array_equal(job.result.labels, expected)
            assert job.decisions[-1]["decision"] == "done"
        # completed work was charged to the submitting tenants
        spent = svc.ledger.snapshot()
        assert spent["tenant-0"]["model_seconds"] > 0
        assert spent["tenant-1"]["bytes"] > 0

    def test_budget_rejection_is_structured(self):
        svc = SccService(workers=1, queue_capacity=8)
        svc.register_graph("g0", cycle_graph(16))
        svc.set_budget("cheap", Budget(model_seconds=0.0))  # nothing starts
        job = svc.submit(JobSpec("cheap", JobKind.SOLVE, "g0"))
        rich = svc.submit(JobSpec("rich", JobKind.SOLVE, "g0"), at=0.001)
        report = svc.run()
        assert job.state is JobState.REJECTED
        assert job.error["resource"] == "model_seconds"
        assert rich.state is JobState.DONE
        assert report.metrics["rejected_budget"] == 1

    def test_backpressure_shed_is_explicit(self):
        svc = SccService(workers=1, wip_limit=1, queue_capacity=1)
        svc.register_graph("g0", cycle_graph(32))
        jobs = [
            svc.submit(JobSpec("t", JobKind.SOLVE, "g0")) for _ in range(6)
        ]
        report = svc.run()
        states = report.by_state()
        assert states["shed"] >= 1 and states["done"] >= 1
        assert states["shed"] == report.metrics["shed_backpressure"]
        for job in jobs:
            if job.state is JobState.SHED:
                assert job.reason == "backpressure"

    def test_deadline_dead_letters_before_burning_a_worker(self):
        svc = SccService(workers=1, queue_capacity=8)
        svc.register_graph("g0", cycle_graph(64))
        first = svc.submit(JobSpec("t", JobKind.SOLVE, "g0"))
        late = svc.submit(
            JobSpec("t", JobKind.SOLVE, "g0", deadline_s=1e-12)
        )
        svc.run()
        assert first.state is JobState.DONE
        assert late.state is JobState.DEAD_LETTER
        assert late.reason == "deadline"
        assert late.attempts == 0              # never dispatched

    def test_update_then_query_sees_new_generation(self):
        g = cycle_graph(10)
        svc = SccService(workers=1, queue_capacity=8)
        svc.register_graph("g0", g)
        # deleting one cycle edge splits the single SCC into 10
        upd = svc.submit(
            JobSpec("t", JobKind.UPDATE, "g0", delete_edges=([0], [1]))
        )
        qry = svc.submit(JobSpec("t", JobKind.QUERY, "g0"), at=1.0)
        svc.run()
        assert upd.state is JobState.DONE and qry.state is JobState.DONE
        assert len(np.unique(np.asarray(qry.result))) == 10

    def test_crash_plan_retries_are_bounded(self):
        plan = preset_plan("serve-crash", seed=5)
        svc = SccService(workers=2, queue_capacity=16, faults=plan)
        svc.register_graph("g0", scc_ladder(6))
        for i in range(10):
            svc.submit(JobSpec("t", JobKind.SOLVE, "g0"), at=0.0005 * i)
        report = svc.run()
        assert report.metrics["crashed"] > 0
        assert report.metrics["retries"] > 0
        for job in report.jobs:
            assert job.state in TERMINAL_STATES
            assert job.attempts <= plan.max_retries + 1
        # crashed attempts are still charged
        assert svc.ledger.spent_of("t")["model_seconds"] > 0

    def test_unknown_graph_rejected_at_submit(self):
        svc = SccService()
        with pytest.raises(GraphFormatError):
            svc.submit(JobSpec("t", JobKind.SOLVE, "nope"))
        svc.register_graph("g0", cycle_graph(4))
        with pytest.raises(GraphFormatError):
            svc.register_graph("g0", cycle_graph(4))


# ---------------------------------------------------------------------------
# bench + chaos harness
# ---------------------------------------------------------------------------

SMALL = ServeBenchConfig(
    scenario="test", num_graphs=2, graph_vertices=40, graph_edges=120,
    num_jobs=14, workers=2, queue_capacity=4, seed=0,
)


class TestBench:
    def test_clean_bench_row_shape(self):
        row = run_serve_bench(SMALL, verify=True)
        assert row["algorithm"] == "serve-bench" and row["graph"] == "test"
        assert row["jobs"] == 14
        assert sum(row["by_state"].values()) == 14
        assert row["throughput_jps"] > 0 and row["p99_ms"] >= row["p50_ms"]
        assert row["verified"]["ok"]
        assert json.dumps(row, default=str)

    def test_bench_is_deterministic(self):
        a = run_serve_bench(SMALL)
        b = run_serve_bench(SMALL)
        assert json.dumps(a, sort_keys=True, default=str) == \
            json.dumps(b, sort_keys=True, default=str)

    def test_chaos_crash_verifies(self):
        cfg = ServeBenchConfig(
            **{**SMALL.__dict__, "scenario": "crash",
               "plan": preset_plan("serve-crash", 0)}
        )
        row = run_serve_bench(cfg, verify=True)
        assert row["verified"]["ok"] and row["crashes"] > 0

    def test_chaos_delay_verifies(self):
        cfg = ServeBenchConfig(
            **{**SMALL.__dict__, "scenario": "delay",
               "plan": preset_plan("serve-delay", 0)}
        )
        row = run_serve_bench(cfg, verify=True)
        assert row["verified"]["ok"]

    def test_tenant_budget_exercises_rejection(self):
        cfg = ServeBenchConfig(
            **{**SMALL.__dict__, "scenario": "budget",
               "tenant0_budget_s": 0.0}
        )
        row = run_serve_bench(cfg, verify=True)
        assert row["reject_rate"] > 0 and row["verified"]["ok"]

    def test_breaker_win_under_crash_storm(self):
        cfg = ServeBenchConfig(
            scenario="zipf-crash", plan=preset_plan("serve-crash", 0)
        )
        cmp = breaker_comparison(cfg)          # raises if the win is lost
        win = cmp["breaker_win"]
        assert win["ok"]
        assert cmp["disabled"]["p99_ms"] > cmp["enabled"]["p99_ms"]
        assert cmp["disabled"]["shed_rate"] > cmp["enabled"]["shed_rate"]

    def test_breaker_comparison_needs_serve_plan(self):
        with pytest.raises(ValueError):
            breaker_comparison(SMALL)

    def test_preset_plan_unknown_name(self):
        with pytest.raises(FaultPlanError):
            preset_plan("definitely-not-a-preset", 0)


# ---------------------------------------------------------------------------
# the chaos property, across engine x backend
# ---------------------------------------------------------------------------

@given(
    seed=st.integers(0, 2**16),
    engine=st.sampled_from([None, "frontier", "adaptive"]),
    backend=st.sampled_from([None, "dense", "frontier"]),
)
@settings(max_examples=10, deadline=None)
def test_chaos_every_job_terminal_and_bit_identical(seed, engine, backend):
    """The service's safety contract, property-style.

    Under a seeded crash plan, on any engine x backend: every job
    reaches exactly one terminal state with a consistent decision
    history, no attempt count exceeds the plan's retry bound, and
    every completed solve/query is bit-identical to an unserved
    ``repro.solve`` of the replayed graph at the same generation.
    """
    plan = preset_plan("serve-crash", seed)
    cfg = ServeBenchConfig(
        scenario="prop", num_graphs=2, graph_vertices=40, graph_edges=120,
        num_jobs=12, workers=2, queue_capacity=4, plan=plan,
        engine=engine, backend=backend, seed=seed,
    )
    graphs = _build_graphs(cfg)
    initial_edges = {name: g.edges() for name, g in graphs.items()}
    mean = float(
        solve(graphs["g0"], engine=engine, backend=backend).model_seconds
    )
    svc = SccService(
        workers=cfg.workers, queue_capacity=cfg.queue_capacity,
        engine=engine, backend=backend, faults=plan, seed=seed,
    )
    for name, g in graphs.items():
        svc.register_graph(name, g)
    for at, spec in build_workload(cfg, mean_service_s=mean):
        svc.submit(_resolve_deletions(spec, initial_edges), at=at)
    report = svc.run()

    assert len(report.jobs) == cfg.num_jobs          # no job lost
    for job in report.jobs:
        assert job.state in TERMINAL_STATES          # exactly one terminal
        assert job.finish_s is not None
        assert job.attempts <= plan.max_retries + 1  # bounded retry
    assert sum(report.by_state().values()) == cfg.num_jobs

    outcome = verify_report(report, graphs, engine=engine, backend=backend)
    assert outcome["ok"], outcome["failures"]


@given(seed=st.integers(0, 2**16))
@settings(max_examples=8, deadline=None)
def test_service_replays_bit_for_bit(seed):
    """Same config, same seed -> byte-identical artifact streams."""
    cfg = ServeBenchConfig(
        scenario="replay", num_graphs=2, graph_vertices=30, graph_edges=90,
        num_jobs=10, workers=2, queue_capacity=3,
        plan=preset_plan("serve-crash", seed), seed=seed,
    )
    a = run_serve_bench(cfg)
    b = run_serve_bench(cfg)
    assert json.dumps(a, sort_keys=True, default=str) == \
        json.dumps(b, sort_keys=True, default=str)


def test_random_gnm_edges_support_deletion_slices():
    """The bench's disjoint-slice deletion scheme rests on edges()
    returning the construction edge list deterministically."""
    g = random_gnm(20, 60, seed=1)
    src, dst = g.edges()
    assert len(src) == 60
    src2, dst2 = random_gnm(20, 60, seed=1).edges()
    assert np.array_equal(src, src2) and np.array_equal(dst, dst2)
