"""Unit tests for the experiment entry points (tiny scales)."""

import numpy as np
import pytest

from repro.bench import (
    RUNTIME_COLUMNS,
    ablation_figure,
    expanded_meshes,
    mesh_table_properties,
    powerlaw_table_properties,
    runtime_table,
    throughput_figures,
)
from repro.graph import scc_ladder


class TestPropertyTables:
    def test_table1_structure(self):
        res = mesh_table_properties(
            "small", names=["beam-hex", "toroid-hex"], scale=0.1, num_ordinates=2
        )
        assert res.name == "table1"
        assert {r["graph"] for r in res.rows} == {"beam-hex", "toroid-hex"}
        beam = next(r for r in res.rows if r["graph"] == "beam-hex")
        assert beam["max_largest"] == 1
        assert beam["N_ord"] == 2
        assert "Table 1" in res.rendered

    def test_table2_structure(self):
        res = mesh_table_properties(
            "large", names=["twist-hex"], scale=0.08, num_ordinates=1
        )
        row = res.rows[0]
        assert row["min_sccs"] == row["max_sccs"] == 1
        assert res.name == "table2"

    def test_table3_structure(self):
        res = powerlaw_table_properties(names=["cage14", "wiki-Talk"], scale=1 / 512)
        assert res.name == "table3"
        rows = {r["graph"]: r for r in res.rows}
        assert rows["cage14"]["sccs"] == 1
        assert rows["wiki-Talk"]["largest"] < rows["wiki-Talk"]["vertices"] / 2
        assert res.elapsed_s > 0


class TestRuntimeTables:
    def test_columns_and_rows(self):
        cols = (RUNTIME_COLUMNS[1], RUNTIME_COLUMNS[3])
        res = runtime_table(
            [("ladder", [scc_ladder(12)])], table_name="tX", columns=cols
        )
        assert res.rows[0]["graph"] == "ladder"
        for label, _, _ in cols:
            assert res.rows[0][label] > 0
        assert "tX" in res.rendered

    def test_ordinates_averaged(self):
        cols = (RUNTIME_COLUMNS[1],)
        res = runtime_table(
            [("pair", [scc_ladder(12), scc_ladder(12)])],
            table_name="tY", columns=cols,
        )
        runs = res.raw["runs"][("pair", "ECL-SCC A100")]
        assert len(runs) == 2

    def test_throughput_figures_geomean(self):
        cols = (RUNTIME_COLUMNS[1],)
        res = runtime_table(
            [("a", [scc_ladder(8)]), ("b", [scc_ladder(16)])],
            table_name="tZ", columns=cols,
        )
        fig = throughput_figures(res, figure_name="fZ", columns=cols)
        series = fig.series["ECL-SCC A100"]
        vals = [series["a"], series["b"]]
        assert series["geomean"] == pytest.approx(
            float(np.sqrt(vals[0] * vals[1]))
        )


class TestAblationAndExpanded:
    def test_ablation_variants_present(self):
        res = ablation_figure([("tiny", [scc_ladder(10)])])
        assert set(res.series) == {
            "all on", "no async", "no SCC-edge removal",
            "no path compression", "no persistent threads", "all off",
        }
        assert all("tiny" in v for v in res.series.values())

    def test_expanded_meshes_rows(self):
        res = expanded_meshes(copies=2, scale=0.05)
        names = {r["graph"] for r in res.rows}
        assert names == {"twist-hex-x2", "toroid-hex-x2"}
