"""Tests for the unified result API (``repro.results.AlgoResult``) and
its backward-compatibility shims for the legacy bare-array and
``(labels, device)`` tuple contracts."""

import numpy as np
import pytest

from repro.baselines import coloring_scc, gpu_scc, kosaraju_scc, tarjan_scc
from repro.core import ecl_scc
from repro.core.eclscc import EclResult
from repro.distributed import block_partition, distributed_ecl_scc
from repro.distributed.eclscc import DistributedResult
from repro.graph import planted_scc_graph, scc_ladder
from repro.results import AlgoResult, coerce_labels, count_sccs


@pytest.fixture(scope="module")
def graph():
    return planted_scc_graph([3, 5, 1, 4, 2], extra_dag_edges=6, seed=0)[0]


class TestAlgoResultFields:
    def test_every_entry_point_returns_algoresult(self, graph):
        part = block_partition(graph, 2)
        for res in (
            ecl_scc(graph),
            tarjan_scc(graph),
            kosaraju_scc(graph),
            gpu_scc(graph),
            coloring_scc(graph),
            distributed_ecl_scc(graph, part),
        ):
            assert isinstance(res, AlgoResult)
            assert res.num_sccs == count_sccs(res.labels)
            assert res.trace is None

    def test_subclass_hierarchy(self, graph):
        assert isinstance(ecl_scc(graph), EclResult)
        assert issubclass(EclResult, AlgoResult)
        assert issubclass(DistributedResult, AlgoResult)

    def test_oracles_carry_no_device(self, graph):
        assert tarjan_scc(graph).device is None
        assert gpu_scc(graph).device is not None


class TestTupleShim:
    def test_unpack_warns(self, graph):
        with pytest.warns(DeprecationWarning, match="tuple"):
            labels, dev = gpu_scc(graph)
        assert np.array_equal(labels, gpu_scc(graph).labels)
        assert dev is not None

    def test_positional_index_warns(self, graph):
        res = gpu_scc(graph)
        with pytest.warns(DeprecationWarning, match="tuple position"):
            assert res[0] is res.labels
        with pytest.warns(DeprecationWarning, match="tuple position"):
            assert res[1] is res.device

    def test_oracle_integer_index_is_labels(self, graph, recwarn):
        # oracle results were bare arrays: truth[v] means "label of v"
        truth = tarjan_scc(graph)
        assert truth[0] == truth.labels[0]
        assert truth[1] == truth.labels[1]
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_array_indexing_passes_through(self, graph):
        res = gpu_scc(graph)
        mask = res.labels == res.labels[0]
        assert np.array_equal(res[mask], res.labels[mask])
        assert np.array_equal(res[2:5], res.labels[2:5])


class TestBareArrayShim:
    def test_asarray(self, graph):
        res = tarjan_scc(graph)
        arr = np.asarray(res)
        assert arr is not None and arr.dtype == res.labels.dtype
        assert np.array_equal(arr, res.labels)
        assert np.asarray(res, dtype=np.float64).dtype == np.float64

    def test_numpy_functions(self, graph):
        res = tarjan_scc(graph)
        assert np.unique(res).size == res.num_sccs
        assert np.array_equal(tarjan_scc(graph), res.labels)

    def test_attribute_delegation_warns(self, graph):
        res = tarjan_scc(graph)
        with pytest.warns(DeprecationWarning, match="bare label array"):
            assert res.tolist() == res.labels.tolist()
        with pytest.warns(DeprecationWarning):
            assert res.size == res.labels.size

    def test_missing_attribute_raises(self, graph):
        with pytest.raises(AttributeError):
            tarjan_scc(graph).no_such_attribute

    def test_elementwise_equality(self, graph):
        res = tarjan_scc(graph)
        eq = res == res.labels
        assert isinstance(eq, np.ndarray) and eq.all()
        ne = res != res.labels[0]
        assert isinstance(ne, np.ndarray)
        assert np.array_equal(ne, res.labels != res.labels[0])

    def test_result_to_result_equality(self, graph):
        a, b = tarjan_scc(graph), kosaraju_scc(graph)
        assert a == b and not (a != b)
        assert hash(a) != hash(b)  # identity hash, still usable in sets

    def test_coerce_labels(self, graph):
        res = tarjan_scc(graph)
        assert coerce_labels(res) is np.asarray(res.labels)
        bare = np.arange(4)
        assert coerce_labels(bare) is bare


class TestLegacyCallSites:
    """The exact idioms the old test-suite/call sites used keep passing."""

    def test_verify_against_oracle(self, graph):
        labels = ecl_scc(graph).labels
        assert np.array_equal(labels, np.asarray(tarjan_scc(graph)))

    def test_tuple_style_baseline(self):
        g = scc_ladder(8)
        with pytest.warns(DeprecationWarning):
            labels, device = coloring_scc(g)
        assert count_sccs(labels) == 8
        assert device.counters.snapshot()

    def test_count_sccs_empty(self):
        assert count_sccs(np.empty(0, dtype=np.int64)) == 0


class TestStatusEnum:
    """The Status enum is string-compatible with the old literals."""

    def test_members_equal_legacy_strings(self):
        from repro.results import Status

        assert Status.CLEAN == "clean"
        assert Status.RECOVERED == "recovered"
        assert Status.DEGRADED == "degraded"
        assert str(Status.RECOVERED) == "recovered"
        assert f"{Status.DEGRADED}" == "degraded"

    def test_json_renders_bare_value(self):
        import json

        from repro.results import Status

        assert json.dumps({"status": Status.CLEAN}) == '{"status": "clean"}'

    def test_post_init_coerces_known_strings(self):
        from repro.results import Status

        res = ecl_scc(scc_ladder(4))
        assert isinstance(res.status, Status)
        assert res.status is Status.CLEAN
        res.status = "recovered"          # legacy writers assign strings
        assert AlgoResult.__post_init__(res) is None
        assert res.status is Status.RECOVERED

    def test_unknown_status_passes_through(self):
        import dataclasses

        res = ecl_scc(scc_ladder(4))
        custom = dataclasses.replace(res, status="experimental")
        assert custom.status == "experimental"

    def test_status_exported_at_top_level(self):
        import repro
        from repro.results import Status

        assert repro.Status is Status
