"""Tests for the ECL-SCC driver: correctness, iteration behaviour,
worklist dynamics, and result metadata."""

import numpy as np
import pytest

from repro.baselines import tarjan_scc
from repro.core import (
    ALL_OFF,
    ALL_ON,
    DoubleBufferWorklist,
    EclOptions,
    Signatures,
    ablation_variants,
    ecl_scc,
    ecl_scc_reference,
    minmax_scc,
    phase3_filter,
)
from repro.device import A100, TITAN_V, VirtualDevice
from repro.graph import (
    CSRGraph,
    cycle_graph,
    dag_chain_of_cliques,
    path_graph,
    permute_random,
    planted_scc_graph,
    scc_ladder,
)


class TestCorrectness:
    @pytest.mark.parametrize("variant", list(ablation_variants()))
    def test_all_variants_match_tarjan(self, variant, all_graphs):
        opts = ablation_variants()[variant]
        for g in all_graphs:
            truth = tarjan_scc(g)
            res = ecl_scc(g, options=opts)
            assert np.array_equal(res.labels, truth), (variant, g)

    def test_reference_matches_tarjan(self, all_graphs):
        for g in all_graphs:
            assert np.array_equal(ecl_scc_reference(g), tarjan_scc(g))

    def test_minmax_matches_tarjan(self, all_graphs):
        for g in all_graphs:
            assert np.array_equal(minmax_scc(g).labels, tarjan_scc(g))

    def test_optimized_matches_reference(self, random_graphs):
        for g in random_graphs:
            assert np.array_equal(ecl_scc(g).labels, ecl_scc_reference(g))

    def test_labels_are_max_member(self):
        g = cycle_graph(6)
        res = ecl_scc(g)
        assert (res.labels == 5).all()

    def test_empty_graph(self):
        res = ecl_scc(CSRGraph.empty(0))
        assert res.num_sccs == 0
        assert res.labels.size == 0

    def test_edgeless_vertices(self):
        res = ecl_scc(CSRGraph.empty(7))
        assert res.num_sccs == 7
        assert res.labels.tolist() == list(range(7))

    def test_atomic_phase2_matches_tarjan(self, all_graphs):
        opts = EclOptions(atomic_phase2=True)
        for g in all_graphs:
            res = ecl_scc(g, options=opts)
            assert np.array_equal(res.labels, tarjan_scc(g)), g

    def test_atomic_phase2_counts_atomics(self):
        g = cycle_graph(64)
        res = ecl_scc(g, options=EclOptions(atomic_phase2=True))
        base = ecl_scc(g)
        assert res.device.counters.atomics > base.device.counters.atomics
        assert np.array_equal(res.labels, base.labels)

    def test_duplicate_edges_and_self_loops(self):
        g = CSRGraph.from_edges([0, 0, 0, 1, 1], [0, 1, 1, 0, 0], num_vertices=3)
        res = ecl_scc(g)
        assert np.array_equal(res.labels, tarjan_scc(g))


class TestIterationBehaviour:
    def test_one_iteration_for_single_scc(self):
        res = ecl_scc(cycle_graph(32))
        assert res.outer_iterations == 1

    def test_deep_dag_logarithmic_iterations(self):
        """Random IDs: outer iterations ~ log(DAG depth), the paper's
        expected-complexity claim (§3)."""
        g = dag_chain_of_cliques(128, 3, seed=0)
        res = ecl_scc(g)
        assert res.outer_iterations <= 20  # log2(128)=7 plus slack, not 128

    def test_completion_monotone(self):
        g = dag_chain_of_cliques(16, 4, seed=1)
        res = ecl_scc(g)
        assert sum(res.completed_per_iteration) == g.num_vertices
        assert all(c >= 0 for c in res.completed_per_iteration)

    def test_at_least_one_scc_per_iteration(self):
        """§3.2.1: every iteration finishes >= the max SCC per cluster."""
        g, _ = planted_scc_graph([5, 3, 2, 7, 1], extra_dag_edges=6, seed=2)
        res = ecl_scc(g)
        assert all(c > 0 for c in res.completed_per_iteration)

    def test_worklist_drains_with_scc_edge_removal(self):
        g = scc_ladder(20)
        res = ecl_scc(g, options=ALL_ON)
        assert res.edges_final == 0

    def test_worklist_keeps_intra_edges_without_removal(self):
        g = cycle_graph(8)
        res = ecl_scc(g, options=ALL_ON.disabling("remove_scc_edges"))
        assert res.edges_final == g.num_edges  # intra-SCC edges retained

    def test_async_reduces_launches(self):
        g, _ = permute_random(cycle_graph(4096), seed=0)
        on = ecl_scc(g, options=ALL_ON)
        off = ecl_scc(g, options=ALL_ON.disabling("async_phase2"))
        assert on.kernel_launches < off.kernel_launches

    def test_device_estimate_attached(self):
        res = ecl_scc(cycle_graph(10), device=TITAN_V)
        assert res.device.spec is TITAN_V
        assert res.estimated_seconds > 0
        assert res.estimate.total == res.estimated_seconds

    def test_accepts_bare_spec_or_device(self):
        g = path_graph(5)
        a = ecl_scc(g, device=A100)
        b = ecl_scc(g, device=VirtualDevice(A100))
        assert np.array_equal(a.labels, b.labels)


class TestPhase3Filter:
    def _setup(self, src, dst, sig_in, sig_out):
        wl = DoubleBufferWorklist(np.asarray(src), np.asarray(dst))
        sigs = Signatures.identity(len(sig_in))
        sigs.sig_in = np.asarray(sig_in)
        sigs.sig_out = np.asarray(sig_out)
        return wl, sigs, VirtualDevice(A100)

    def test_mismatched_edge_removed(self):
        wl, sigs, dev = self._setup([0], [1], [0, 1], [0, 1])
        kept, removed = phase3_filter(wl, sigs, dev, ALL_ON)
        assert kept == 0 and removed == 1

    def test_matched_incomplete_edge_kept(self):
        # identical signatures but in != out: still part of a live cluster
        wl, sigs, dev = self._setup([0], [1], [5, 5], [7, 7])
        kept, removed = phase3_filter(wl, sigs, dev, ALL_ON)
        assert kept == 1 and removed == 0

    def test_completed_scc_edge_removed_with_option(self):
        wl, sigs, dev = self._setup([0], [1], [5, 5], [5, 5])
        kept, _ = phase3_filter(wl, sigs, dev, ALL_ON)
        assert kept == 0

    def test_completed_scc_edge_kept_without_option(self):
        wl, sigs, dev = self._setup([0], [1], [5, 5], [5, 5])
        opts = ALL_ON.disabling("remove_scc_edges")
        kept, _ = phase3_filter(wl, sigs, dev, opts)
        assert kept == 1

    def test_generation_bumps(self):
        wl, sigs, dev = self._setup([0], [1], [0, 1], [0, 1])
        g0 = wl.generation
        phase3_filter(wl, sigs, dev, ALL_ON)
        assert wl.generation == g0 + 1

    def test_atomic_count_matches_kept(self):
        wl, sigs, dev = self._setup([0, 1], [1, 0], [5, 5], [7, 7])
        kept, _ = phase3_filter(wl, sigs, dev, ALL_ON)
        assert dev.counters.atomics == kept == 2

    def test_zero_survivors_preserve_integer_dtypes(self):
        # regression: compacting to zero edges once produced float64
        # empties, poisoning every later index operation on the worklist
        wl, sigs, dev = self._setup([0, 1], [1, 0], [0, 1], [2, 3])
        kept, removed = phase3_filter(wl, sigs, dev, ALL_ON)
        assert kept == 0 and removed == 2
        assert wl.src.dtype.kind == wl.dst.dtype.kind == "i"
        assert wl.num_edges == 0

    def test_empty_worklist_is_a_noop(self):
        # fully-disconnected graph: no edges -> no launch, no charge,
        # and the generation must NOT advance (no compaction pass ran)
        empty = np.array([], dtype=np.int64)
        wl = DoubleBufferWorklist(empty, empty.copy())
        sigs = Signatures.identity(2)
        dev = VirtualDevice(A100)
        g0 = wl.generation
        kept, removed = phase3_filter(wl, sigs, dev, ALL_ON)
        assert (kept, removed) == (0, 0)
        assert wl.generation == g0
        assert dev.counters.kernel_launches == 0
        assert wl.src.dtype.kind == "i"

    def test_invalidate_marks_removed_endpoints(self):
        # frontier engine: endpoints of dropped edges feed next
        # iteration's seed set
        wl, sigs, dev = self._setup(
            [0, 2], [1, 3], [0, 1, 5, 5], [2, 3, 7, 7]
        )
        inv = np.zeros(4, dtype=bool)
        kept, removed = phase3_filter(wl, sigs, dev, ALL_ON, invalidate=inv)
        assert kept == 1 and removed == 1  # (0,1) mismatched, (2,3) kept
        assert inv.tolist() == [True, True, False, False]
