"""Tests for the JSON export of experiment results."""

import json

import numpy as np
import pytest

from repro.bench import (
    RUNTIME_COLUMNS,
    export_json,
    run_algorithm,
    runtime_table,
    to_jsonable,
)
from repro.device import A100
from repro.graph import scc_ladder


class TestToJsonable:
    def test_scalars(self):
        assert to_jsonable(np.int64(5)) == 5
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None

    def test_small_array(self):
        assert to_jsonable(np.arange(3)) == [0, 1, 2]

    def test_large_array_summarized(self):
        out = to_jsonable(np.arange(1000))
        assert out["__array__"] is True
        assert out["shape"] == [1000]
        assert out["head"] == list(range(8))

    def test_nested(self):
        out = to_jsonable({"a": [np.int64(1), {"b": np.float32(2.0)}]})
        assert out == {"a": [1, {"b": 2.0}]}

    def test_run_result(self):
        r = run_algorithm(scc_ladder(5), "ecl-scc", A100)
        out = to_jsonable(r)
        assert out["num_sccs"] == 5
        assert out["model_seconds"] > 0
        assert out["wall_median_seconds"] is None
        assert "kernel_launches" in out["counters"]

    def test_opaque_fallback(self):
        class Thing:
            def __repr__(self):
                return "<thing>"

        assert to_jsonable(Thing()) == {"__repr__": "<thing>"}


class TestExportJson:
    def test_roundtrip_runtime_table(self, tmp_path):
        groups = [("ladder", [scc_ladder(8)])]
        cols = (RUNTIME_COLUMNS[1],)
        res = runtime_table(groups, table_name="mini", columns=cols)
        p = export_json(res, tmp_path / "mini.json")
        data = json.loads(p.read_text())
        assert data["name"] == "mini"
        assert data["rows"][0]["graph"] == "ladder"
        assert data["rows"][0]["ECL-SCC A100"] > 0
        # raw run results serialized with counters
        runs = data["raw"]
        assert any("ecl-scc" in json.dumps(v) for v in runs.values())
