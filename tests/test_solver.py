"""Tests for the unified solve facade (repro.solve / repro.Solver) and
the EclOptions.engine field it rides on."""

import warnings
from dataclasses import FrozenInstanceError

import numpy as np
import pytest

import repro
from repro import EclOptions, Solver, solve
from repro.bench.runners import RunResult
from repro.core import ecl_scc
from repro.core.options import ALL_ON, ENGINE_NAMES, engine_options, validate_engine
from repro.dynamic import DynamicGraph
from repro.errors import AlgorithmError
from repro.graph import cycle_graph, random_gnm


G = random_gnm(40, 120, seed=1)


# ----------------------------------------------------------------------
# solve(): the one-call front door
# ----------------------------------------------------------------------
class TestSolve:
    def test_default_solve_is_ecl_scc(self):
        res = solve(G)
        assert isinstance(res, RunResult)
        assert res.algorithm == "ecl-scc"
        assert np.array_equal(res.labels, ecl_scc(G).labels)

    def test_positional_algorithm(self):
        res = solve(G, "tarjan")
        assert res.algorithm == "tarjan"
        assert res.num_sccs == ecl_scc(G).num_sccs

    def test_engine_keyword(self):
        res = solve(G, engine="frontier", verify=True)
        assert np.array_equal(res.labels, ecl_scc(G).labels)

    def test_unknown_engine_lists_choices(self):
        with pytest.raises(AlgorithmError) as exc:
            solve(G, engine="warp")
        for name in ENGINE_NAMES:
            assert name in str(exc.value)

    def test_exported_at_top_level(self):
        assert repro.solve is solve
        assert repro.Solver is Solver


class TestSolveLegacyShims:
    def test_algo_keyword_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="algo"):
            res = solve(G, algo="tarjan")
        assert res.algorithm == "tarjan"

    def test_algo_conflict_raises(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(AlgorithmError, match="not both"):
                solve(G, "tarjan", algo="fb")

    def test_frontier_phase2_keyword_folds_into_engine(self):
        with pytest.warns(DeprecationWarning, match="frontier_phase2"):
            res = solve(G, frontier_phase2=True)
        expected = solve(G, engine="frontier")
        assert res.model_seconds == expected.model_seconds
        assert np.array_equal(res.labels, expected.labels)

    def test_explicit_engine_wins_over_shim(self):
        with pytest.warns(DeprecationWarning):
            res = solve(G, engine="sync", frontier_phase2=True)
        expected = solve(G, engine="sync")
        assert res.model_seconds == expected.model_seconds

    def test_unknown_keyword_raises_typeerror(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            solve(G, fronteir_phase2=True)  # typo must not pass silently


# ----------------------------------------------------------------------
# Solver: frozen reusable configuration
# ----------------------------------------------------------------------
class TestSolver:
    def test_solver_is_frozen_and_reusable(self):
        s = Solver(engine="frontier")
        with pytest.raises(FrozenInstanceError):
            s.engine = "sync"
        a = s.solve(G)
        b = s.solve(G)
        assert np.array_equal(a.labels, b.labels)
        assert a.model_seconds == b.model_seconds

    def test_static_equals_degenerate_dynamic_query(self):
        s = Solver(engine="frontier")
        static = s.solve(G)
        handle = s.dynamic(G)
        assert isinstance(handle, DynamicGraph)
        assert np.array_equal(handle.query().labels, static.labels)

    def test_dynamic_requires_ecl_scc(self):
        with pytest.raises(AlgorithmError, match="ecl-scc"):
            Solver(algorithm="tarjan").dynamic(G)

    def test_solver_dynamic_stays_identical_under_updates(self):
        handle = Solver(engine="frontier").dynamic(cycle_graph(6))
        handle.delete_edges([2], [3])
        handle.insert_edges([2], [3])
        assert np.array_equal(
            handle.query().labels, ecl_scc(cycle_graph(6)).labels
        )


# ----------------------------------------------------------------------
# EclOptions.engine: the registry-backed field
# ----------------------------------------------------------------------
class TestEngineField:
    def test_engine_field_validates_on_construction(self):
        assert EclOptions(engine="frontier").phase2_engine == "frontier"
        with pytest.raises(AlgorithmError, match="valid choices"):
            EclOptions(engine="bogus")

    def test_default_engine_derives_from_ablation_flags(self):
        assert ALL_ON.phase2_engine == "async"
        assert EclOptions(async_phase2=False).phase2_engine == "sync"
        assert EclOptions(atomic_phase2=True).phase2_engine == "atomic"
        # an explicit engine overrides the flags
        assert EclOptions(atomic_phase2=True, engine="sync").phase2_engine == "sync"

    def test_engine_options_is_a_thin_shim(self):
        opts = engine_options("frontier")
        assert opts.engine == "frontier"
        base = EclOptions(path_compression=False)
        derived = engine_options("atomic", base)
        assert derived.engine == "atomic"
        assert derived.path_compression is False

    def test_engine_options_rejects_unknown_names(self):
        with pytest.raises(AlgorithmError, match="valid choices"):
            engine_options("nope")

    def test_validate_engine_passthrough(self):
        for name in ENGINE_NAMES:
            assert validate_engine(name) == name

    def test_constructor_bool_shim_warns_and_folds(self):
        with pytest.warns(DeprecationWarning, match="frontier_phase2"):
            opts = EclOptions(frontier_phase2=True)
        assert opts.engine == "frontier"
        with pytest.warns(DeprecationWarning):
            off = EclOptions(frontier_phase2=False)
        assert off.engine == ""

    def test_property_read_shim_warns(self):
        opts = engine_options("frontier")
        with pytest.warns(DeprecationWarning, match="phase2_engine"):
            assert opts.frontier_phase2 is True
        with pytest.warns(DeprecationWarning):
            assert ALL_ON.frontier_phase2 is False
