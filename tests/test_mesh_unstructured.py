"""Tests for the unstructured Delaunay tet meshes.

Scientific side-note captured here: Delaunay tetrahedralizations are
*acyclic* for the in-front-of relation of any direction (Edelsbrunner
1989), so their sweep graphs contain no SCCs at all — every torch-family
cycle in the paper must come from non-Delaunay meshing or curved
geometry, which is exactly what our curved-transform torch surrogate
models.
"""

import numpy as np
import pytest

from repro.baselines import tarjan_scc
from repro.errors import MeshError
from repro.mesh import (
    delaunay_tet_mesh,
    interior_faces,
    mesh_quality,
    sweep_graphs,
    unstructured_box_tet,
    unstructured_torch_tet,
)


class TestDelaunay:
    def test_basic_mesh(self):
        rng = np.random.default_rng(0)
        pts = rng.random((60, 3))
        m = delaunay_tet_mesh(pts)
        assert m.num_elements > 50
        interior_faces(m)  # conforming by construction

    def test_orientation_fixed(self):
        rng = np.random.default_rng(1)
        m = delaunay_tet_mesh(rng.random((40, 3)))
        q = mesh_quality(m)
        assert q.inverted_elements == 0

    def test_too_few_points(self):
        with pytest.raises(MeshError):
            delaunay_tet_mesh(np.zeros((3, 3)))

    def test_bad_shape(self):
        with pytest.raises(MeshError):
            delaunay_tet_mesh(np.zeros((10, 2)))

    def test_sliver_filter(self):
        rng = np.random.default_rng(2)
        pts = rng.random((100, 3))
        loose = delaunay_tet_mesh(pts, min_volume_fraction=0.0)
        tight = delaunay_tet_mesh(pts, min_volume_fraction=0.05)
        assert tight.num_elements <= loose.num_elements


class TestBuilders:
    def test_box_deterministic(self):
        a = unstructured_box_tet(200)
        b = unstructured_box_tet(200)
        assert a.num_elements == b.num_elements
        assert np.array_equal(a.cells, b.cells)

    def test_torch_geometry(self):
        m = unstructured_torch_tet(800)
        pts = m.points
        r = np.hypot(pts[:, 0], pts[:, 1])
        assert r.max() <= 1.0 + 1e-9          # cylinder radius bound
        assert 0 <= pts[:, 2].min() and pts[:, 2].max() <= 4.0 + 1e-9

    def test_validation(self):
        with pytest.raises(MeshError):
            unstructured_torch_tet(10)
        with pytest.raises(MeshError):
            unstructured_box_tet(4)


class TestDelaunayAcyclicity:
    """Edelsbrunner's acyclicity, observed: no SCCs for any ordinate."""

    def test_box_sweeps_acyclic(self):
        m = unstructured_box_tet(300)
        for _, g in sweep_graphs(m, 4):
            labels = tarjan_scc(g)
            assert np.unique(labels).size == g.num_vertices

    def test_torch_sweeps_acyclic(self):
        m = unstructured_torch_tet(800)
        for _, g in sweep_graphs(m, 3):
            labels = tarjan_scc(g)
            assert np.unique(labels).size == g.num_vertices

    def test_curved_torch_differs(self):
        """The contrast that justifies the torch surrogate: the curved
        structured torch has cycles, the Delaunay one cannot."""
        from repro.mesh import torch_tet

        _, g = sweep_graphs(torch_tet(2), 1)[0]
        labels = tarjan_scc(g)
        assert np.unique(labels).size < g.num_vertices
