"""Unit tests for repro.graph.csr.CSRGraph."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import CSRGraph


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges([0, 1, 2], [1, 2, 0])
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.neighbors(0).tolist() == [1]

    def test_from_edges_explicit_size(self):
        g = CSRGraph.from_edges([0], [1], num_vertices=10)
        assert g.num_vertices == 10
        assert g.out_degree().tolist() == [1] + [0] * 9

    def test_from_edges_empty(self):
        g = CSRGraph.from_edges([], [])
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_from_edges_preserves_duplicates(self):
        g = CSRGraph.from_edges([0, 0, 0], [1, 1, 2])
        assert g.num_edges == 3
        assert g.neighbors(0).tolist() == [1, 1, 2]

    def test_from_edges_mismatched_lengths(self):
        with pytest.raises(GraphFormatError, match="equal length"):
            CSRGraph.from_edges([0, 1], [1])

    def test_from_edges_out_of_range(self):
        with pytest.raises(GraphFormatError, match="endpoints"):
            CSRGraph.from_edges([0], [5], num_vertices=3)

    def test_from_edges_negative(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges([-1], [0], num_vertices=2)

    def test_from_adjacency(self):
        g = CSRGraph.from_adjacency([[1, 2], [2], []])
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.neighbors(0).tolist() == [1, 2]

    def test_empty_constructor(self):
        g = CSRGraph.empty(7)
        assert g.num_vertices == 7
        assert g.num_edges == 0

    def test_empty_negative(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.empty(-1)

    def test_direct_validation_indptr_monotone(self):
        with pytest.raises(GraphFormatError, match="nondecreasing"):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1]))

    def test_direct_validation_indptr_start(self):
        with pytest.raises(GraphFormatError, match="indptr\\[0\\]"):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_direct_validation_indptr_end(self):
        with pytest.raises(GraphFormatError, match="len\\(indices\\)"):
            CSRGraph(np.array([0, 3]), np.array([0]))

    def test_direct_validation_dest_range(self):
        with pytest.raises(GraphFormatError, match="destinations"):
            CSRGraph(np.array([0, 1]), np.array([5]))


class TestDerivedForms:
    def test_edges_roundtrip(self):
        src = [0, 0, 1, 3]
        dst = [1, 2, 3, 0]
        g = CSRGraph.from_edges(src, dst)
        s, d = g.edges()
        pairs = sorted(zip(s.tolist(), d.tolist()))
        assert pairs == sorted(zip(src, dst))

    def test_edge_sources_cached(self):
        g = CSRGraph.from_edges([0, 1], [1, 0])
        assert g.edge_sources() is g.edge_sources()

    def test_transpose(self):
        g = CSRGraph.from_edges([0, 1], [1, 2])
        t = g.transpose()
        assert t.neighbors(1).tolist() == [0]
        assert t.neighbors(2).tolist() == [1]

    def test_transpose_cached_both_ways(self):
        g = CSRGraph.from_edges([0], [1])
        assert g.transpose().transpose() is g

    def test_degrees(self):
        g = CSRGraph.from_edges([0, 0, 1], [1, 2, 2])
        assert g.out_degree().tolist() == [2, 1, 0]
        assert g.in_degree().tolist() == [0, 1, 2]

    def test_neighbors_bounds(self):
        g = CSRGraph.empty(3)
        with pytest.raises(IndexError):
            g.neighbors(3)
        with pytest.raises(IndexError):
            g.neighbors(-1)


class TestTransformations:
    def test_dedup(self):
        g = CSRGraph.from_edges([0, 0, 0, 1], [1, 1, 2, 1])
        d = g.dedup()
        assert d.num_edges == 3
        assert d.num_vertices == g.num_vertices

    def test_without_self_loops(self):
        g = CSRGraph.from_edges([0, 1, 1], [0, 1, 2])
        assert g.without_self_loops().num_edges == 1

    def test_reverse_copy_independent(self):
        g = CSRGraph.from_edges([0], [1])
        r = g.reverse_copy()
        assert r.neighbors(1).tolist() == [0]
        assert r is not g.transpose()

    def test_same_structure(self):
        a = CSRGraph.from_edges([0, 1], [1, 2])
        b = CSRGraph.from_edges([1, 0], [2, 1])
        assert a.same_structure(b)
        c = CSRGraph.from_edges([0, 1], [1, 0])
        assert not a.same_structure(c)
        assert not a.same_structure(CSRGraph.empty(3))

    def test_same_structure_multiset(self):
        a = CSRGraph.from_edges([0, 0], [1, 1])
        b = CSRGraph.from_edges([0], [1], num_vertices=2)
        assert not a.same_structure(b)

    def test_with_name(self):
        g = CSRGraph.from_edges([0], [1]).with_name("foo")
        assert g.name == "foo"
