"""Legacy setup shim.

``pip install -e .`` requires the ``wheel`` package (PEP 660 editable
builds).  On machines without it (e.g. offline), run::

    python setup.py develop

which installs the same editable package using only setuptools.
"""

from setuptools import setup

setup()
