#!/usr/bin/env python
"""Quickstart: detect SCCs with ECL-SCC and inspect the result.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CSRGraph, ecl_scc, tarjan_scc, verify_labels
from repro.core import ALL_ON
from repro.device import A100, TITAN_V


def main() -> None:
    # The paper's Fig. 3 example: 12 vertices, 15 edges, two clusters.
    edges = [
        (0, 3), (3, 5), (5, 7), (7, 9),            # the "linked list" spine
        (9, 2), (2, 9),                            # SCC {2, 9}
        (1, 4), (4, 6), (6, 1),                    # SCC {1, 4, 6}
        (4, 8), (8, 10), (10, 4),                  # ... joined: {1,4,6,8,10}
        (6, 11), (11, 6),                          # and 11 too
        (5, 3),                                    # SCC {3, 5}
    ]
    src, dst = zip(*edges)
    g = CSRGraph.from_edges(src, dst, 12, name="fig3")
    print(f"input: {g}")

    result = ecl_scc(g, options=ALL_ON, device=A100)
    print(f"labels:            {result.labels.tolist()}")
    print(f"SCC count:         {result.num_sccs}")
    print(f"outer iterations:  {result.outer_iterations}")
    print(f"kernel launches:   {result.kernel_launches}")
    print(f"model runtime:     {result.estimated_seconds * 1e6:.2f} us on A100")

    # every vertex's label is the max vertex ID in its SCC
    verify_labels(g, result.labels)  # checks against Tarjan (paper §4)
    assert np.array_equal(result.labels, tarjan_scc(g))
    print("verified against Tarjan's algorithm")

    # compare the virtual devices
    for spec in (TITAN_V, A100):
        r = ecl_scc(g, device=spec)
        print(f"  {spec.name:10s}: {r.estimated_seconds * 1e6:8.2f} us (model)")


if __name__ == "__main__":
    main()
