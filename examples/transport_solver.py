#!/usr/bin/env python
"""Full multi-ordinate transport solve with VTK visualization output.

Extends examples/radiative_transfer.py to the complete application loop:
isotropic scattering couples the ordinates, so the SCC-scheduled sweeps
iterate until the scalar flux converges (source iteration).  SCC
detection runs once per ordinate and its schedules are reused across all
iterations — amortizing exactly the cost the paper optimizes.

Writes ``results/toroid_transport.vtk`` with the converged scalar flux
and the SCC labels of the first ordinate as cell data (open in ParaView
to see the small-SCC clusters sitting on the curved faces).

Run:  python examples/transport_solver.py
"""

from pathlib import Path

import numpy as np

from repro import ecl_scc
from repro.mesh import sweep_graphs, toroid_hex, write_vtk
from repro.sweep import TransportProblem, solve_transport


def main() -> None:
    mesh = toroid_hex(4)
    problem = TransportProblem(
        mesh, num_ordinates=8, sigma_t=2.0, sigma_s=0.8, coupling=0.3
    )
    print(f"mesh: {mesh}  ({problem.num_ordinates} ordinates)")

    solution = solve_transport(problem, tol=1e-10)
    print(
        f"source iteration converged in {solution.source_iterations} iterations"
        f" (residual {solution.flux_residual:.2e})"
    )
    print(
        f"SCCs per ordinate: min {min(solution.num_sccs_per_ordinate)}"
        f" max {max(solution.num_sccs_per_ordinate)}"
        f" of {mesh.num_elements} elements"
    )
    print(
        f"schedule depths:   min {min(solution.schedule_depths)}"
        f" max {max(solution.schedule_depths)}"
    )
    print(
        f"scalar flux:       mean {np.mean(solution.scalar_flux):.4f}"
        f"  max {np.max(solution.scalar_flux):.4f}"
    )
    print(
        f"SCC detection cost (A100 model, all ordinates):"
        f" {solution.scc_detect_model_seconds * 1e3:.3f} ms"
    )

    out = Path(__file__).resolve().parent.parent / "results"
    out.mkdir(exist_ok=True)
    _, g0 = sweep_graphs(mesh, 1)[0]
    labels = ecl_scc(g0).labels
    vtk_path = out / "toroid_transport.vtk"
    write_vtk(
        vtk_path,
        mesh,
        cell_data={"scalar_flux": solution.scalar_flux, "scc": labels},
    )
    print(f"wrote {vtk_path} (open in ParaView: color by 'scc' or 'scalar_flux')")


if __name__ == "__main__":
    main()
