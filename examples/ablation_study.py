#!/usr/bin/env python
"""Reproduce Figure 14 in miniature: what each optimization buys.

Runs ECL-SCC with each of the paper's four optimizations disabled in
turn (plus all-off) over a small mesh group and a power-law graph, and
prints throughput plus the internal counters that explain the effect
(kernel launches for async, worklist sizes for SCC-edge removal,
propagation rounds for path compression).

Run:  python examples/ablation_study.py
"""

from repro.core import ablation_variants, ecl_scc
from repro.device import A100
from repro.graph import build_powerlaw
from repro.mesh.suite import small_mesh_suite


def study(name: str, graph) -> None:
    print(f"\n{name}: |V|={graph.num_vertices} |E|={graph.num_edges}")
    base = None
    for vname, opts in ablation_variants().items():
        r = ecl_scc(graph, options=opts, device=A100)
        tp = graph.num_vertices / r.estimated_seconds / 1e6
        if base is None:
            base = tp
        print(
            f"  {vname:22s} {tp:9.2f} Mv/s ({tp / base:5.2f}x)"
            f"  launches={r.kernel_launches:5d}"
            f"  rounds={r.propagation_rounds:6d}"
            f"  iters={r.outer_iterations:3d}"
        )


def main() -> None:
    grp = small_mesh_suite(names=["toroid-hex"], num_ordinates=1)[0]
    study("mesh (toroid-hex)", grp.graphs[0])
    graph, _ = build_powerlaw("flickr", scale=1 / 64, seed=0)
    study("power-law (flickr stand-in)", graph)


if __name__ == "__main__":
    main()
