#!/usr/bin/env python
"""End-to-end radiative-transfer workflow — the paper's motivating use.

Pipeline (paper §1 and §4.1):

1. build an unstructured mesh of a curved geometry (toroid, order 3);
2. for each discrete ordinate, derive the directed sweep graph
   (re-entrant faces of the curved elements create cycles);
3. detect the SCCs with ECL-SCC — the critical step that prevents
   livelock during the transport sweep;
4. contract the SCCs, topologically schedule the condensation DAG, and
5. run a model upwind transport sweep, iterating inside each cyclic SCC.

Run:  python examples/radiative_transfer.py
"""

import numpy as np

from repro import ecl_scc
from repro.mesh import toroid_hex, sweep_graphs
from repro.sweep import solve_transport_sweep, sweep_schedule


def main() -> None:
    mesh = toroid_hex(5)  # 6000 curved hex elements
    print(f"mesh: {mesh}")

    for omega, graph in sweep_graphs(mesh, num_ordinates=4):
        result = ecl_scc(graph)
        schedule = sweep_schedule(graph, result.labels)
        assert schedule.validate_against(graph, result.labels)
        sweep = solve_transport_sweep(graph, schedule, result.labels)
        print(
            f"ordinate ({omega[0]:+.2f},{omega[1]:+.2f},{omega[2]:+.2f}): "
            f"|V|={graph.num_vertices} |E|={graph.num_edges} "
            f"SCCs={result.num_sccs} (non-trivial {schedule.num_nontrivial}), "
            f"DAG depth {schedule.depth}, "
            f"sweep levels {sweep.levels_processed}, "
            f"in-SCC iterations {sweep.scc_inner_iterations}, "
            f"residual {sweep.residual:.2e}, "
            f"mean flux {np.mean(sweep.psi):.4f}"
        )

    print(
        "\nWithout SCC detection, the re-entrant faces above would make a"
        " naive upwind sweep livelock; the schedule iterates each small SCC"
        " to convergence instead (residuals ~ 1e-12)."
    )


if __name__ == "__main__":
    main()
