#!/usr/bin/env python
"""Power-law graph analysis — the other input class of the evaluation.

Builds the synthetic stand-ins for three SuiteSparse graphs (Table 3),
runs ECL-SCC and the two comparison codes on their natural devices, and
prints a bow-tie decomposition of the web-graph-like input (the classic
application of SCC detection to web graphs: the giant SCC plus its IN
and OUT components).

Run:  python examples/powerlaw_webgraph.py
"""

import numpy as np

from repro import ecl_scc
from repro.bench import run_algorithm
from repro.device import A100, XEON_6226R
from repro.graph import bfs_reach, build_powerlaw


def bowtie(graph, labels) -> None:
    """Print the IN / SCC / OUT bow-tie of the largest component."""
    uniq, counts = np.unique(labels, return_counts=True)
    giant_label = uniq[np.argmax(counts)]
    core = labels == giant_label
    seed = np.flatnonzero(core)[:1]
    everywhere = np.ones(graph.num_vertices, dtype=bool)
    fwd = bfs_reach(graph, seed, mask=everywhere)
    bwd = bfs_reach(graph.transpose(), seed, mask=everywhere)
    out_comp = fwd & ~core
    in_comp = bwd & ~core
    other = ~(core | out_comp | in_comp)
    n = graph.num_vertices
    print(
        f"    bow-tie: SCC {core.sum() / n:6.1%}  IN {in_comp.sum() / n:6.1%}"
        f"  OUT {out_comp.sum() / n:6.1%}  other {other.sum() / n:6.1%}"
    )


def main() -> None:
    for name in ("web-Google", "soc-LiveJournal1", "wiki-Talk"):
        graph, planted = build_powerlaw(name, seed=0)
        print(f"{name}: |V|={graph.num_vertices} |E|={graph.num_edges}")
        result = ecl_scc(graph, device=A100)
        print(
            f"    ECL-SCC (A100 model): {result.num_sccs} SCCs in"
            f" {result.estimated_seconds * 1e3:.3f} ms model time,"
            f" {result.outer_iterations} iterations"
        )
        for algo, spec in (("gpu-scc", A100), ("ispan", XEON_6226R)):
            r = run_algorithm(graph, algo, spec)
            print(
                f"    {algo:8s} ({spec.name} model): {r.model_seconds * 1e3:.3f} ms"
            )
        bowtie(graph, result.labels)


if __name__ == "__main__":
    main()
