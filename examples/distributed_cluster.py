#!/usr/bin/env python
"""Distributed-memory SCC detection on the virtual cluster.

Before GPUs, radiative-transfer codes detected sweep cycles with
distributed FB-Trim on MPI clusters (McLendon et al. 2005 — the paper's
ref [15]).  This example runs both that method and a BSP formulation of
ECL-SCC over 1..32 virtual ranks on a deep toroid mesh and prints the
strong-scaling table: ECL-SCC needs ~40x fewer synchronization
supersteps, while FB's narrow frontiers ship fewer total bytes — the
latency-vs-volume trade-off that decides which wins on a given fabric.

Run:  python examples/distributed_cluster.py
"""

from repro.distributed import (
    ClusterSpec,
    block_partition,
    distributed_ecl_scc,
    distributed_fbtrim,
)
from repro.mesh import sweep_graphs, toroid_hex


def main() -> None:
    mesh = toroid_hex(3)
    _, graph = sweep_graphs(mesh, 1)[0]
    print(f"graph: |V|={graph.num_vertices} |E|={graph.num_edges} (toroid sweep)")
    print(f"{'ranks':>5} {'cut':>6} | {'ECL steps':>9} {'ECL msgs':>9} {'ECL ms':>8}"
          f" | {'FB steps':>8} {'FB msgs':>8} {'FB ms':>8}")
    for ranks in (1, 2, 4, 8, 16, 32):
        part = block_partition(graph, ranks)
        spec = ClusterSpec(num_ranks=ranks)
        ecl = distributed_ecl_scc(graph, part, spec)
        fb = distributed_fbtrim(graph, part, spec)
        assert ecl.num_sccs == fb.num_sccs
        print(
            f"{ranks:>5} {part.edge_cut_fraction():>6.1%}"
            f" | {ecl.supersteps:>9} {ecl.cluster.total_messages:>9}"
            f" {ecl.estimated_seconds * 1e3:>8.2f}"
            f" | {fb.supersteps:>8} {fb.cluster.total_messages:>8}"
            f" {fb.estimated_seconds * 1e3:>8.2f}"
        )
    print(
        "\nECL-SCC's supersteps stay flat (propagation rounds) while FB pays"
        "\none per BFS level and residual task; on latency-bound fabrics the"
        "\nsuperstep count is the budget that matters."
    )


if __name__ == "__main__":
    main()
