"""Command-line interface.

Run as ``python -m repro`` (or ``python -m repro.cli``).  Subcommands:

* ``scc``      — detect SCCs in a graph file with any of the nine codes;
* ``stats``    — print Table-1/2/3-style properties of a graph file;
* ``gen``      — generate a workload (mesh sweep graph or power-law
  stand-in) and write it to a graph file;
* ``bench``    — regenerate one of the paper's tables/figures (plus the
  ``smoke`` CI run and the ``engines`` adaptive-vs-static matrix);
* ``trace``    — run one algorithm with the structured tracer and print
  a span/counter summary (optionally dumping the trace as JSONL);
* ``dynamic``  — replay a deterministic edge log through the incremental
  SCC engine (repro.dynamic) and print the incremental-vs-recompute
  crossover table;
* ``chaos``    — run ECL-SCC under a seeded fault plan (repro.faults)
  and report the injected faults, recoveries, and cost overhead;
* ``serve``    — run the SCC-as-a-service control plane (repro.serve):
  a seeded Zipf bench with the breaker-win gate, or a chaos run under
  a service-layer fault plan with full terminal-state verification;
* ``devices``  — list the virtual device models;
* ``sweep``    — run the full RTE pipeline (mesh -> SCC -> schedule ->
  model transport solve) and report per-ordinate results.

Graph file formats are inferred from the extension (.mtx Matrix Market,
.txt/.edges edge list, .gr DIMACS) or forced with ``--format``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _load_graph(path: str, fmt: str):
    from .graph import read_dimacs, read_edge_list, read_matrix_market, read_npz

    p = Path(path)
    if fmt == "auto":
        fmt = {
            ".mtx": "mtx",
            ".txt": "edges",
            ".edges": "edges",
            ".gr": "dimacs",
            ".npz": "npz",
        }.get(p.suffix.lower(), "")
        if not fmt:
            raise SystemExit(
                f"cannot infer format from {p.suffix!r}; pass --format"
            )
    if fmt == "mtx":
        return read_matrix_market(p)
    if fmt == "edges":
        return read_edge_list(p)
    if fmt == "dimacs":
        return read_dimacs(p)
    if fmt == "npz":
        return read_npz(p)
    raise SystemExit(f"unknown format {fmt!r}")


def _save_graph(graph, path: str) -> None:
    from .graph import write_dimacs, write_edge_list, write_matrix_market, write_npz

    p = Path(path)
    writer = {
        ".mtx": write_matrix_market,
        ".txt": write_edge_list,
        ".edges": write_edge_list,
        ".gr": write_dimacs,
        ".npz": write_npz,
    }.get(p.suffix.lower())
    if writer is None:
        raise SystemExit(f"unsupported output extension {p.suffix!r}")
    writer(p, graph)


def _device(name: str):
    from .device import device_by_name

    return device_by_name(name)


def _backend_choices() -> "list[str]":
    from .engine import backend_names

    return backend_names()


def _int_list(spec: str) -> "list[int]":
    """argparse type: comma-separated positive ints ("1,4,16")."""
    try:
        values = [int(v) for v in spec.split(",") if v.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {spec!r}"
        ) from None
    if not values or any(v < 1 for v in values):
        raise argparse.ArgumentTypeError(
            f"batch sizes must be positive integers, got {spec!r}"
        )
    return values


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------

def _cmd_scc(args: argparse.Namespace) -> int:
    from .bench import run_algorithm

    graph = _load_graph(args.graph, args.format)
    if args.randomize_ids:
        from .graph.ops import permute_random

        graph, _ = permute_random(graph, seed=0)
    result = run_algorithm(
        graph,
        args.algo,
        _device(args.device),
        backend=args.backend,
        engine=args.engine,
        time_wall=args.time,
        repeats=args.repeats,
        verify=args.verify,
    )
    uniq, counts = np.unique(result.labels, return_counts=True)
    print(f"graph:            {args.graph}")
    print(f"vertices/edges:   {graph.num_vertices} / {graph.num_edges}")
    print(f"algorithm:        {result.algorithm} on {result.device} (model)")
    print(f"SCCs:             {result.num_sccs}")
    print(f"largest SCC:      {int(counts.max()) if counts.size else 0}")
    print(f"trivial SCCs:     {int((counts == 1).sum())}")
    print(f"model runtime:    {result.model_seconds:.6f} s"
          f"  ({result.model_throughput_mvs:.3f} Mv/s)")
    if result.wall is not None:
        print(f"wall runtime:     {result.wall.median_s:.6f} s"
              f" (median of {result.wall.repeats})")
    if args.verify:
        print("verification:     labels match Tarjan's algorithm")
    if args.output:
        np.savetxt(args.output, result.labels, fmt="%d")
        print(f"labels written to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .analysis import scc_statistics
    from .baselines import tarjan_scc

    graph = _load_graph(args.graph, args.format)
    stats = scc_statistics(graph, tarjan_scc(graph), with_depth=not args.no_depth)
    for key, value in stats.as_row().items():
        print(f"{key:10s} {value}")
    return 0


def _cmd_gen(args: argparse.Namespace) -> int:
    if args.kind == "mesh":
        from .mesh.suite import LARGE_MESH_SPECS, SMALL_MESH_SPECS, build_group

        specs = {s.name: s for s in SMALL_MESH_SPECS}
        specs.update({s.name: s for s in LARGE_MESH_SPECS})
        if args.name not in specs:
            raise SystemExit(
                f"unknown mesh {args.name!r}; known: {sorted(specs)}"
            )
        grp = build_group(
            specs[args.name], scale=args.scale, num_ordinates=args.ordinate + 1
        )
        graph = grp.graphs[args.ordinate]
        print(
            f"{args.name} ordinate {args.ordinate}: |V|={graph.num_vertices}"
            f" |E|={graph.num_edges}"
        )
    else:
        from .graph import build_powerlaw

        graph, planted = build_powerlaw(args.name, scale=args.scale, seed=args.seed)
        print(
            f"{args.name}: |V|={graph.num_vertices} |E|={graph.num_edges}"
            f" (planted {planted['num_sccs']} SCCs, largest {planted['largest']})"
        )
    _save_graph(graph, args.output)
    print(f"written to {args.output}")
    return 0


def _bench_smoke(args: argparse.Namespace) -> int:
    """Fast cost-model smoke run: 3 codes on a mesh + power-law corpus.

    Writes one JSON document (``--json PATH``; default stdout) with the
    cost-model estimate and kernel counters per (algorithm, graph) cell.
    CI uses it to confirm the engine refactor keeps the accounting live.

    With ``--baseline PATH`` the run additionally compares against a
    previously-written smoke JSON: ``num_sccs`` must match exactly on
    every shared (algorithm, graph) cell, and ecl-scc ``model_seconds``
    must not regress by more than ``--tolerance`` (default 5%) on any
    graph.  A violation prints the offending cells and exits nonzero —
    the CI bench-regression gate.
    """
    import json

    from .bench import run_algorithm
    from .graph.suite import powerlaw_suite
    from .mesh.suite import small_mesh_suite
    from .profile import profile_run
    from .trace import Tracer

    dev = _device(args.device)
    graphs: "list[tuple[str, object]]" = []
    for grp in small_mesh_suite(names=["toroid-hex"], num_ordinates=2):
        graphs.extend(
            (f"{grp.name}:o{i}", g) for i, g in enumerate(grp.graphs)
        )
    for g, _planted in powerlaw_suite(names=["flickr"], scale=1 / 32):
        graphs.append((g.name or "flickr", g))
    engine = getattr(args, "engine", None)
    rows = []
    for gname, g in graphs:
        for algo in ("ecl-scc", "ispan", "fb"):
            # trace ecl-scc cells so the gate can attribute regressions
            # to a phase; the ledger does not perturb counters
            tracer = Tracer() if algo == "ecl-scc" else None
            res = run_algorithm(
                g, algo, dev, backend=args.backend,
                engine=engine if algo == "ecl-scc" else None,
                verify=True, tracer=tracer,
            )
            row = {
                "algorithm": algo,
                "graph": gname,
                "num_vertices": res.num_vertices,
                "num_edges": res.num_edges,
                "num_sccs": res.num_sccs,
                "model_seconds": res.model_seconds,
                "kernel_launches": res.counters.get("kernel_launches", 0),
                "bytes_moved": res.counters.get("bytes_moved", 0),
                "bytes_streamed": res.counters.get("bytes_streamed", 0),
                "global_barriers": res.counters.get("global_barriers", 0),
                "atomics": res.counters.get("atomics", 0),
                "rounds": res.counters.get("rounds", 0),
            }
            if tracer is not None:
                tracer.finish()
                report = profile_run(res)
                row["phases"] = {
                    ph.name: {
                        "seconds": ph.total,
                        "launches": ph.launches,
                        "classification": ph.classification,
                    }
                    for ph in report.phases
                }
            rows.append(row)
    # edge-log replay workload: incremental maintenance vs recompute on
    # the power-law graph's event stream (deterministic, seeded)
    from .dynamic import generate_edge_log, replay

    replay_graph_name, replay_graph = graphs[-1]
    log = generate_edge_log(replay_graph, events=120, seed=7)
    for batch_size in (12, 60):
        rep = replay(
            log, batch_size=batch_size, engine=engine,
            backend=args.backend, device=dev, verify=True,
        )
        rows.append(
            {
                "algorithm": "dynamic-replay",
                "graph": f"{replay_graph_name}:replay-b{batch_size}",
                "num_vertices": rep.num_vertices,
                "num_edges": log.final_graph().num_edges,
                "num_sccs": rep.final_num_sccs,
                "events": rep.num_events,
                "batch_size": batch_size,
                "model_seconds": rep.incremental_seconds,
                "recompute_seconds": rep.recompute_seconds,
                "speedup": rep.speedup,
                "invalidated": sum(b.invalidated for b in rep.batches),
            }
        )
    payload = {
        "device": dev.name,
        "backend": args.backend or "dense",
        "engine": engine or "default",
        "results": rows,
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.json:
        Path(args.json).write_text(text + "\n")
        print(f"smoke results written to {args.json} ({len(rows)} cells)")
    else:
        print(text)
    baseline = getattr(args, "baseline", None)
    if baseline:
        return _bench_compare(rows, baseline, getattr(args, "tolerance", 0.05))
    return 0


#: engines compared by ``repro bench engines`` (dense "async", static
#: frontier, and the adaptive per-round scheduler on top of both).
_ENGINE_MATRIX = ("async", "frontier", "adaptive")


def _engine_matrix_failures(
    rows: "list[dict]", engine_tolerance: float = 0.02
) -> "list[str]":
    """Engine-matrix gate over rows carrying an ``engine`` key.

    Two rules, applied per graph: every engine must report the same
    ``num_sccs`` (engines select *how* to propagate, never *what* is
    computed), and the adaptive engine's ``model_seconds`` must not
    exceed the best static engine's by more than *engine_tolerance*
    (default 2%) — the scheduler pays for its density scans, so it is
    allowed epsilon, not a free pass.  Returns failure strings (empty
    on pass); rows without an ``engine`` key are ignored so the gate
    composes with the smoke rows.
    """
    by_graph: "dict[str, dict[str, dict]]" = {}
    for r in rows:
        if "engine" in r and "num_sccs" in r:
            by_graph.setdefault(r["graph"], {})[r["engine"]] = r
    failures = []
    for gname, cells in by_graph.items():
        sccs = {e: r["num_sccs"] for e, r in cells.items()}
        if len(set(sccs.values())) > 1:
            failures.append(f"{gname}: num_sccs differs across engines: {sccs}")
        ad = cells.get("adaptive")
        static = {
            e: r["model_seconds"] for e, r in cells.items() if e != "adaptive"
        }
        if ad is None or not static:
            continue
        best_engine = min(static, key=static.get)
        best = static[best_engine]
        if ad["model_seconds"] > best * (1.0 + engine_tolerance):
            failures.append(
                f"{gname}: adaptive model_seconds"
                f" {ad['model_seconds']:.3e}s exceeds best static engine"
                f" ({best_engine}, {best:.3e}s)"
                f" by more than +{engine_tolerance:.0%}"
            )
    return failures


def _bench_engines(args: argparse.Namespace) -> int:
    """``repro bench engines``: the engine-comparison matrix + gate.

    Runs ecl-scc under every entry of :data:`_ENGINE_MATRIX` over the
    shared 27-graph corpus (:func:`repro.graph.suite.engine_corpus` —
    the same graphs the test suite's fixtures use), verifies every cell
    against Tarjan, and asserts on the spot that all engines produce
    bit-identical labels per graph.  The gate
    (:func:`_engine_matrix_failures`) then requires cross-engine
    ``num_sccs`` agreement and adaptive within ``--engine-tolerance``
    of the best static engine on every workload.  ``--json`` writes
    the matrix (the committed ``BENCH_pr7.json`` baseline format);
    ``--decisions`` dumps the adaptive scheduler's full per-round
    decision log per graph (the CI artifact); ``--baseline`` compares
    against a committed matrix with the smoke gate's rules on top.
    """
    import json

    from .bench import run_algorithm
    from .graph.suite import engine_corpus

    dev = _device(args.device)
    rows: "list[dict]" = []
    decision_logs: "dict[str, list]" = {}
    for gname, g in engine_corpus():
        labels_ref = None
        for engine in _ENGINE_MATRIX:
            res = run_algorithm(
                g, "ecl-scc", dev, backend=args.backend, engine=engine,
                verify=True,
            )
            if labels_ref is None:
                labels_ref = res.labels
            elif not np.array_equal(res.labels, labels_ref):
                raise SystemExit(
                    f"engine {engine!r} changed labels on {gname}"
                )
            row = {
                "algorithm": "ecl-scc",
                "engine": engine,
                "graph": gname,
                "num_vertices": res.num_vertices,
                "num_edges": res.num_edges,
                "num_sccs": res.num_sccs,
                "model_seconds": res.model_seconds,
                "kernel_launches": res.counters.get("kernel_launches", 0),
                "bytes_moved": res.counters.get("bytes_moved", 0),
                "rounds": res.counters.get("rounds", 0),
            }
            if res.decision_log is not None:
                picks: "dict[str, int]" = {}
                for d in res.decision_log:
                    picks[d.policy] = picks.get(d.policy, 0) + 1
                row["decisions"] = picks
                decision_logs[gname] = [d.to_dict() for d in res.decision_log]
            rows.append(row)
    by_graph: "dict[str, dict[str, dict]]" = {}
    for r in rows:
        by_graph.setdefault(r["graph"], {})[r["engine"]] = r
    print(f"engine matrix on {dev.name}"
          f" ({len(by_graph)} graphs x {len(_ENGINE_MATRIX)} engines):")
    print(f"  {'graph':<14s}"
          + "".join(f" {e:>12s}" for e in _ENGINE_MATRIX)
          + "  picks")
    for gname, cells in by_graph.items():
        picks = cells.get("adaptive", {}).get("decisions", {})
        pick_str = " ".join(f"{k}:{v}" for k, v in sorted(picks.items()))
        print(f"  {gname:<14s}"
              + "".join(
                  f" {cells[e]['model_seconds'] * 1e6:10.3f}us"
                  for e in _ENGINE_MATRIX
              )
              + f"  {pick_str}")
    if args.json:
        payload = {
            "device": dev.name,
            "backend": args.backend or "dense",
            "engines": list(_ENGINE_MATRIX),
            "results": rows,
        }
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"engine matrix written to {args.json} ({len(rows)} cells)")
    if getattr(args, "decisions", None):
        Path(args.decisions).write_text(
            json.dumps(decision_logs, indent=2, sort_keys=True) + "\n"
        )
        print(f"decision logs written to {args.decisions}"
              f" ({len(decision_logs)} graphs)")
    tol = getattr(args, "engine_tolerance", 0.02)
    baseline = getattr(args, "baseline", None)
    if baseline:
        # the smoke gate's comparison rules (num_sccs + model_seconds vs
        # the committed matrix) — it folds the engine gate in itself
        return _bench_compare(
            rows, baseline, getattr(args, "tolerance", 0.05),
            engine_tolerance=tol,
        )
    failures = _engine_matrix_failures(rows, tol)
    if failures:
        print("engine-matrix gate: FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"engine-matrix gate: pass"
          f" (adaptive within +{tol:.0%} of best static everywhere)")
    return 0


def _bench_compare(rows: "list[dict]", baseline: str, tolerance: float,
                   *, engine_tolerance: float = 0.02) -> int:
    """Gate the smoke/engine rows against a committed baseline JSON.

    ``num_sccs`` must match exactly on every shared cell (an engine or
    backend must never change *what* is computed); ecl-scc
    ``model_seconds`` must not exceed baseline x (1 + tolerance) on any
    graph.  ``dynamic-replay`` rows must additionally keep incremental
    maintenance cheaper than full recompute (``model_seconds <
    recompute_seconds``) — the crossover guarantee of repro.dynamic.
    Rows carrying an ``engine`` key (the ``bench engines`` matrix) are
    keyed per engine and additionally pass through
    :func:`_engine_matrix_failures`: the adaptive engine must stay
    within *engine_tolerance* of the best static engine on every
    workload.  Returns 0 on pass, 1 on violation.  Baselines written
    before the profiling layer (no ``bytes_streamed``/``phases`` keys)
    still compare; a regression's failure message names the top
    regressed phase when per-phase data is available on the new side.
    """
    import json

    base = json.loads(Path(baseline).read_text())
    base_rows = {
        (r["algorithm"], r.get("engine"), r["graph"]): r
        for r in base["results"]
    }
    failures = _engine_matrix_failures(rows, engine_tolerance)
    failures += _serve_row_failures(rows, base_rows, tolerance)
    print(f"\ncomparison vs {baseline}"
          f" (tolerance +{tolerance:.0%} on ecl-scc model_seconds):")
    print(f"  {'graph':<16s} {'base ms':>9s} {'new ms':>9s} {'ratio':>6s}"
          f" {'bytes':>6s} {'launches':>13s}")
    for row in rows:
        if row["algorithm"] == "serve-bench":
            continue  # gated by _serve_row_failures (no num_sccs/ms cells)
        if row["algorithm"] == "dynamic-replay":
            if row["model_seconds"] >= row["recompute_seconds"]:
                failures.append(
                    f"{row['graph']}: incremental updates"
                    f" ({row['model_seconds']:.3e}s) no longer beat full"
                    f" recompute ({row['recompute_seconds']:.3e}s)"
                )
        key = (row["algorithm"], row.get("engine"), row["graph"])
        b = base_rows.get(key)
        if b is None:
            continue
        label = row["graph"] + (
            f"/{row['engine']}" if row.get("engine") else ""
        )
        if row["num_sccs"] != b["num_sccs"]:
            failures.append(
                f"{label}: num_sccs {row['num_sccs']} !="
                f" baseline {b['num_sccs']}"
            )
        if row["algorithm"] != "ecl-scc":
            continue
        # degenerate corpus entries (empty graphs) estimate to 0.0s
        ratio = (
            row["model_seconds"] / b["model_seconds"]
            if b["model_seconds"] else 1.0
        )
        byte_ratio = row["bytes_moved"] / max(b.get("bytes_moved", 0), 1)
        print(f"  {label:<16s} {b['model_seconds'] * 1e3:9.3f}"
              f" {row['model_seconds'] * 1e3:9.3f} {ratio:6.2f}"
              f" {byte_ratio:6.2f} {b.get('kernel_launches', 0):>5d} ->"
              f" {row['kernel_launches']:<5d}")
        if ratio > 1.0 + tolerance:
            msg = (
                f"{label}: model_seconds regressed x{ratio:.3f}"
                f" (> +{tolerance:.0%})"
            )
            top = _top_regressed_phase(row.get("phases"), b.get("phases"))
            if top:
                msg += f"; top regressed phase: {top}"
            failures.append(msg)
    if failures:
        print("bench-regression gate: FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    print("bench-regression gate: pass")
    return 0


def _serve_row_failures(rows: "list[dict]", base_rows: "dict",
                        tolerance: float) -> "list[str]":
    """Gate rules for ``serve-bench`` rows (the serve-smoke artifact).

    Versus the baseline, per scenario: throughput must not drop more
    than *tolerance* (relative) and the backpressure shed rate must not
    rise more than *tolerance* (absolute — shed rates are fractions of
    submitted jobs); a cache-enabled row additionally must *strictly
    beat* its baseline twin on throughput with no-worse p99 when that
    baseline predates the cache (the PR9 acceptance gate).  Within the
    new rows alone, two pair rules must hold: the ``-nobreakers`` crash
    scenario must show strictly worse p99 latency and shed rate than
    its ``+breakers`` twin (the breaker win), and a ``-nocache`` twin
    must show strictly lower throughput at no-better p99 than its
    cache-enabled scenario (the cache win).
    """
    failures: "list[str]" = []
    serve_rows = [r for r in rows if r["algorithm"] == "serve-bench"]
    for row in serve_rows:
        key = (row["algorithm"], row.get("engine"), row["graph"])
        b = base_rows.get(key)
        if b is None:
            continue
        if row["throughput_jps"] < b["throughput_jps"] * (1.0 - tolerance):
            failures.append(
                f"{row['graph']}: serve throughput regressed"
                f" {b['throughput_jps']:.1f} -> {row['throughput_jps']:.1f}"
                f" jobs/s (> -{tolerance:.0%})"
            )
        if row["shed_rate"] > b["shed_rate"] + tolerance:
            failures.append(
                f"{row['graph']}: serve shed rate regressed"
                f" {b['shed_rate']:.3f} -> {row['shed_rate']:.3f}"
                f" (> +{tolerance:.2f} absolute)"
            )
        if row.get("cache_enabled") and not b.get("cache_enabled"):
            # a pre-cache baseline: the short-circuit layer must be a
            # strict improvement on the same workload.  The p99 half
            # only binds fault-free rows — under an injected fault plan
            # the cache *completes* jobs the baseline shed, so the two
            # latency populations are not comparable.
            if row["throughput_jps"] <= b["throughput_jps"]:
                failures.append(
                    f"{row['graph']}: cache win lost vs pre-cache baseline —"
                    f" throughput {b['throughput_jps']:.1f} ->"
                    f" {row['throughput_jps']:.1f} jobs/s not strictly up"
                )
            p99_b, p99_r = b["p99_ms"], row["p99_ms"]
            if (row.get("plan") is None and p99_b is not None
                    and p99_r is not None and p99_r > p99_b):
                failures.append(
                    f"{row['graph']}: cache win lost vs pre-cache baseline —"
                    f" p99 {p99_b:.4f}ms -> {p99_r:.4f}ms worsened"
                )
    by_scenario = {r["graph"]: r for r in serve_rows}
    for name, off_row in by_scenario.items():
        if not name.endswith("-nocache"):
            continue
        on_row = by_scenario.get(name[: -len("-nocache")])
        if on_row is None or not on_row.get("cache_enabled"):
            continue
        if on_row["throughput_jps"] <= off_row["throughput_jps"]:
            failures.append(
                f"{name[: -len('-nocache')]}: cache win lost — throughput"
                f" with cache ({on_row['throughput_jps']:.1f}/s) does not"
                f" beat without ({off_row['throughput_jps']:.1f}/s)"
            )
        p99_on, p99_off = on_row["p99_ms"], off_row["p99_ms"]
        if p99_on is not None and p99_off is not None and p99_on > p99_off:
            failures.append(
                f"{name[: -len('-nocache')]}: cache win lost — p99 with"
                f" cache ({p99_on:.4f}ms) worse than without"
                f" ({p99_off:.4f}ms)"
            )
    for name, on_row in by_scenario.items():
        if not name.endswith("+breakers"):
            continue
        off_row = by_scenario.get(name[: -len("+breakers")] + "-nobreakers")
        if off_row is None:
            continue
        p99_on, p99_off = on_row["p99_ms"], off_row["p99_ms"]
        if p99_on is not None and p99_off is not None and p99_off <= p99_on:
            failures.append(
                f"{name}: breaker win lost — p99 without breakers"
                f" ({p99_off:.4f}ms) no longer degrades vs with"
                f" ({p99_on:.4f}ms)"
            )
        if off_row["shed_rate"] <= on_row["shed_rate"]:
            failures.append(
                f"{name}: breaker win lost — shed rate without breakers"
                f" ({off_row['shed_rate']:.3f}) no longer degrades vs with"
                f" ({on_row['shed_rate']:.3f})"
            )
    return failures


def _top_regressed_phase(new_phases: "dict | None",
                         base_phases: "dict | None") -> "str | None":
    """Name the phase that grew the most between two smoke rows.

    Pre-profiling baselines carry no ``phases``; fall back to the new
    run's most expensive phase so the gate message still points at the
    place to look.
    """
    if not new_phases:
        return None
    if base_phases:
        deltas = {
            name: ph["seconds"] - base_phases.get(name, {}).get("seconds", 0.0)
            for name, ph in new_phases.items()
        }
        name = max(deltas, key=lambda k: deltas[k])
        if deltas[name] <= 0:
            return None
        ph = new_phases[name]
        return (f"{name} (+{deltas[name]:.3e}s,"
                f" {ph['classification']})")
    name = max(new_phases, key=lambda k: new_phases[k]["seconds"])
    ph = new_phases[name]
    return (f"{name} ({ph['seconds']:.3e}s of the run,"
            f" {ph['classification']}; baseline has no phase data)")


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.experiment == "smoke":
        return _bench_smoke(args)
    if args.experiment == "engines":
        return _bench_engines(args)
    from .bench import (
        ablation_figure,
        expanded_meshes,
        mesh_table_properties,
        powerlaw_table_properties,
        runtime_table,
        throughput_figures,
    )

    name = args.experiment
    if name == "table1":
        res = mesh_table_properties("small")
    elif name == "table2":
        res = mesh_table_properties("large")
    elif name == "table3":
        res = powerlaw_table_properties()
    elif name in ("table5", "table6"):
        from .mesh.suite import large_mesh_suite, small_mesh_suite

        suite = small_mesh_suite() if name == "table5" else large_mesh_suite()
        res = runtime_table(
            [(g.name, g.graphs) for g in suite], table_name=name
        )
        print(res.rendered)
        res = throughput_figures(res, figure_name=name + "-figures")
    elif name == "table7":
        from .graph.suite import powerlaw_suite

        res = runtime_table(
            [(g.name, [g]) for g, _ in powerlaw_suite()], table_name=name
        )
        print(res.rendered)
        res = throughput_figures(res, figure_name="table7-figures")
    elif name == "fig14":
        from .graph.suite import powerlaw_suite
        from .mesh.suite import small_mesh_suite

        small = small_mesh_suite(names=["toroid-hex", "torch-hex"], num_ordinates=2)
        power = powerlaw_suite(names=["flickr", "web-Google"], scale=1 / 32)
        res = ablation_figure(
            [
                ("meshes", [g for grp in small for g in grp.graphs]),
                ("power-law", [g for g, _ in power]),
            ]
        )
    elif name == "expanded":
        res = expanded_meshes(copies=10, scale=0.2)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown experiment {name}")
    print(res.rendered)
    print(f"[{res.elapsed_s:.1f}s]")
    return 0


def _trace_workload(args: argparse.Namespace):
    """Resolve the ``trace`` subcommand's workload argument.

    Accepts, in order of precedence: an existing graph file, a Table-3
    power-law name (``flickr``, ``wiki-Talk``, ...), or a generator spec
    (``cycle:N``, ``ladder:RUNGS``, ``gnm:N:M``, ``mesh:NAME[:ORD]``).
    """
    spec = args.workload
    if Path(spec).exists():
        return _load_graph(spec, args.format)
    from .graph.generators import cycle_graph, random_gnm, scc_ladder
    from .graph.suite import POWER_LAW_SPECS, build_powerlaw

    if spec in {s.name for s in POWER_LAW_SPECS}:
        graph, _ = build_powerlaw(spec, scale=args.scale, seed=args.seed)
        return graph
    kind, _, rest = spec.partition(":")
    try:
        if kind == "cycle":
            return cycle_graph(int(rest))
        if kind == "ladder":
            return scc_ladder(int(rest))
        if kind == "gnm":
            n, m = rest.split(":")
            return random_gnm(int(n), int(m), seed=args.seed)
        if kind == "mesh":
            from .mesh.suite import LARGE_MESH_SPECS, SMALL_MESH_SPECS, build_group

            name, _, ordn = rest.partition(":")
            meshes = {s.name: s for s in SMALL_MESH_SPECS}
            meshes.update({s.name: s for s in LARGE_MESH_SPECS})
            if name not in meshes:
                raise SystemExit(
                    f"unknown mesh {name!r}; known: {sorted(meshes)}"
                )
            ordinate = int(ordn) if ordn else 0
            grp = build_group(
                meshes[name], scale=args.scale, num_ordinates=ordinate + 1
            )
            return grp.graphs[ordinate]
    except ValueError:
        pass
    names = sorted(s.name for s in POWER_LAW_SPECS)
    raise SystemExit(
        f"unknown workload {spec!r}: not a file, power-law name"
        f" ({', '.join(names)}), or generator spec"
        " (cycle:N | ladder:RUNGS | gnm:N:M | mesh:NAME[:ORD])"
    )


def _trace_diff(args: argparse.Namespace) -> int:
    """``repro trace diff A B``: explain per-phase deltas of two traces."""
    from .profile import diff_traces, render_diff
    from .trace import load_jsonl

    paths = args.diff_paths
    if len(paths) != 2:
        raise SystemExit(
            "trace diff needs exactly two JSONL trace files:"
            " repro trace diff BASE NEW"
        )
    for p in paths:
        if not Path(p).exists():
            raise SystemExit(f"no such trace file: {p}")
    base = load_jsonl(paths[0])
    new = load_jsonl(paths[1])
    try:
        diff = diff_traces(base, new)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if args.json is not None:
        text = _json_dumps(diff.to_dict())
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text + "\n")
            print(f"diff written to {args.json}")
        return 0
    print(f"base: {paths[0]}")
    print(f"new:  {paths[1]}")
    print(render_diff(diff))
    return 0


def _json_dumps(obj) -> str:
    import json

    return json.dumps(obj, indent=2, sort_keys=True)


def _cmd_trace(args: argparse.Namespace) -> int:
    from .trace import Tracer, dump_jsonl, load_jsonl, render_summary

    if args.workload == "diff":
        return _trace_diff(args)
    if args.load:
        if not Path(args.load).exists():
            raise SystemExit(f"no such trace file: {args.load}")
        trace = load_jsonl(args.load)
        print(render_summary(trace))
        return 0
    from .bench import run_algorithm

    graph = _trace_workload(args)
    tracer = Tracer(
        meta={
            "algorithm": args.algo,
            "workload": args.workload,
            "device": args.device,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        }
    )
    result = run_algorithm(
        graph, args.algo, _device(args.device),
        backend=args.backend, engine=args.engine, tracer=tracer,
    )
    trace = tracer.finish()
    print(f"workload:         {args.workload}"
          f"  (|V|={graph.num_vertices} |E|={graph.num_edges})")
    print(f"algorithm:        {result.algorithm} on {result.device} (model)")
    print(f"SCCs:             {result.num_sccs}")
    print(f"spans recorded:   {len(trace.spans)}"
          f"  events: {len(trace.events)}")
    if args.jsonl:
        dump_jsonl(trace, args.jsonl)
        print(f"trace written to  {args.jsonl}")
    if not args.no_summary:
        print()
        print(render_summary(trace))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run one algorithm traced and print its per-phase attribution."""
    from .bench import run_algorithm
    from .profile import profile_run, render_profile, to_prometheus
    from .trace import Tracer, dump_jsonl

    graph = _trace_workload(args)
    if args.ranks:
        return _profile_distributed(args, graph)
    meta = {
        "algorithm": args.algo,
        "workload": args.workload,
        "device": args.device,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
    }
    if args.engine:
        meta["engine"] = args.engine
    if args.backend:
        meta["backend"] = args.backend
    tracer = Tracer(meta=meta)
    result = run_algorithm(
        graph, args.algo, _device(args.device),
        backend=args.backend, engine=args.engine, tracer=tracer,
    )
    tracer.finish()
    report = profile_run(result)
    if args.jsonl:
        dump_jsonl(result.trace, args.jsonl)
        print(f"trace written to {args.jsonl}")
    if args.prom is not None:
        text = to_prometheus(report)
        if args.prom == "-":
            print(text, end="")
        else:
            Path(args.prom).write_text(text)
            print(f"prometheus exposition written to {args.prom}")
        return 0
    if args.json is not None:
        text = report.to_json()
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text + "\n")
            print(f"profile written to {args.json}")
        return 0
    print(f"workload:         {args.workload}"
          f"  (|V|={graph.num_vertices} |E|={graph.num_edges})")
    print(render_profile(report))
    return 0


def _profile_distributed(args: argparse.Namespace, graph) -> int:
    """``repro profile --ranks N``: per-rank BSP profile of the
    distributed ECL-SCC run, with the straggler/imbalance summary."""
    from .distributed import block_partition, distributed_ecl_scc
    from .distributed.cluster import ClusterSpec
    from .errors import DeviceError
    from .profile import profile_cluster, render_cluster_profile

    stragglers = None
    if args.stragglers:
        stragglers = tuple(float(f) for f in args.stragglers.split(","))
    try:
        spec = ClusterSpec(num_ranks=args.ranks, stragglers=stragglers)
    except DeviceError as exc:
        raise SystemExit(f"bad --stragglers: {exc}") from exc
    res = distributed_ecl_scc(graph, block_partition(graph, args.ranks), spec)
    prof = profile_cluster(
        res.cluster,
        meta={"workload": args.workload, "algorithm": "distributed-ecl-scc"},
    )
    if args.json is not None:
        text = _json_dumps(prof.to_dict())
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text + "\n")
            print(f"profile written to {args.json}")
        return 0
    print(f"workload:         {args.workload}"
          f"  (|V|={graph.num_vertices} |E|={graph.num_edges},"
          f" SCCs={res.num_sccs})")
    print(render_cluster_profile(prof))
    return 0


def _cmd_dynamic(args: argparse.Namespace) -> int:
    """Replay a deterministic edge log and print the crossover table.

    Generates a seeded stream of edge insertions/deletions over the
    workload graph, replays it through a
    :class:`~repro.dynamic.DynamicGraph` at each requested batch size,
    and compares the incremental update cost against a cold re-solve of
    every post-batch snapshot — the measurement that shows incremental
    maintenance crossing below recompute as batches shrink.
    """
    from .dynamic import generate_edge_log, replay

    graph = _trace_workload(args)
    dev = _device(args.device)
    log = generate_edge_log(
        graph, events=args.events, seed=args.seed,
        insert_fraction=args.insert_fraction,
    )
    inserts = int(np.count_nonzero(log.op == 1))
    print(f"workload:   {args.workload}"
          f"  (|V|={graph.num_vertices} |E|={graph.num_edges})")
    print(f"events:     {log.num_events}"
          f" (insert {inserts} / delete {log.num_events - inserts},"
          f" seed {args.seed})")
    print(f"engine:     {args.engine or 'frontier'}   device: {dev.name}"
          f" (model){'   [verified]' if args.verify else ''}")
    print()
    print(f"  {'batch':>6s} {'batches':>8s} {'incr ms':>10s}"
          f" {'recomp ms':>10s} {'speedup':>8s} {'invalidated':>12s}"
          f" {'sccs':>6s}")
    results = []
    for batch_size in args.batches:
        rep = replay(
            log, batch_size=batch_size, engine=args.engine,
            backend=args.backend, device=dev, verify=args.verify,
        )
        results.append(rep)
        print(f"  {batch_size:>6d} {len(rep.batches):>8d}"
              f" {rep.incremental_seconds * 1e3:>10.4f}"
              f" {rep.recompute_seconds * 1e3:>10.4f}"
              f" {rep.speedup:>8.2f}"
              f" {sum(b.invalidated for b in rep.batches):>12d}"
              f" {rep.final_num_sccs:>6d}")
    winners = [r.batch_size for r in results if r.speedup > 1.0]
    print()
    if winners:
        print(f"crossover:  incremental wins at batch <= {max(winners)}"
              " (speedup > 1)")
    else:
        print("crossover:  recompute wins at every requested batch size")
    if args.json:
        import json

        payload = {
            "workload": args.workload,
            "device": dev.name,
            "engine": args.engine or "frontier",
            "events": log.num_events,
            "seed": args.seed,
            "results": [
                {
                    "batch_size": r.batch_size,
                    "batches": len(r.batches),
                    "incremental_seconds": r.incremental_seconds,
                    "recompute_seconds": r.recompute_seconds,
                    "speedup": r.speedup,
                    "num_sccs": r.final_num_sccs,
                }
                for r in results
            ],
        }
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"results written to {args.json}")
    return 0


def _chaos_plan(args: argparse.Namespace):
    """Resolve a ``--plan`` argument (``chaos`` and ``serve`` commands).

    Accepts any named preset (:data:`repro.faults.PRESET_PLAN_NAMES`)
    or a path to a JSON file produced by :meth:`FaultPlan.to_json`.
    """
    from .faults import PRESET_PLAN_NAMES, FaultPlan, preset_plan

    spec = args.plan
    if spec in PRESET_PLAN_NAMES:
        return preset_plan(spec, args.seed)
    if Path(spec).exists():
        return FaultPlan.from_json(Path(spec).read_text())
    raise SystemExit(
        f"unknown fault plan {spec!r}: not one of"
        f" {list(PRESET_PLAN_NAMES)} or a JSON file"
    )


def _chaos_smoke(args: argparse.Namespace) -> int:
    """Fast chaos smoke: clean vs faulted ECL-SCC on 3 corpus graphs.

    For each graph, runs a fault-free baseline plus the ``monotone`` and
    ``chaos`` presets, verifies every run against Tarjan, checks that
    monotone plans leave the labels bit-identical to the clean run, and
    writes one JSON document (``--json PATH``; default stdout) with the
    estimated-seconds overhead per cell.  CI uses it to confirm fault
    injection and recovery stay live and correctly charged.
    """
    import json

    from .bench import run_algorithm
    from .faults import FaultPlan
    from .graph.suite import powerlaw_suite
    from .mesh.suite import small_mesh_suite

    dev = _device(args.device)
    graphs: "list[tuple[str, object]]" = []
    for grp in small_mesh_suite(names=["toroid-hex"], num_ordinates=2):
        graphs.extend(
            (f"{grp.name}:o{i}", g) for i, g in enumerate(grp.graphs)
        )
    for g, _planted in powerlaw_suite(names=["flickr"], scale=1 / 32):
        graphs.append((g.name or "flickr", g))
    plans = [
        ("monotone", FaultPlan.monotone(args.seed)),
        ("chaos", FaultPlan.chaos(args.seed)),
    ]
    engine = getattr(args, "engine", None)
    rows = []
    for gname, g in graphs:
        clean = run_algorithm(
            g, "ecl-scc", dev, backend=args.backend, engine=engine, verify=True
        )
        rows.append(
            {
                "graph": gname,
                "plan": "none",
                "status": clean.status,
                "model_seconds": clean.model_seconds,
                "overhead": 1.0,
                "faults_injected": 0,
                "recoveries": 0,
            }
        )
        for pname, plan in plans:
            res = run_algorithm(
                g, "ecl-scc", dev, backend=args.backend, engine=engine,
                verify=True, faults=plan,
            )
            if pname == "monotone" and not np.array_equal(
                res.labels, clean.labels
            ):
                raise SystemExit(
                    f"monotone plan changed labels on {gname}"
                )
            rep = res.fault_report
            rows.append(
                {
                    "graph": gname,
                    "plan": pname,
                    "status": res.status,
                    "model_seconds": res.model_seconds,
                    "overhead": res.model_seconds / clean.model_seconds,
                    "faults_injected": rep.faults_injected,
                    "recoveries": rep.recoveries,
                }
            )
    payload = {
        "device": dev.name,
        "backend": args.backend or "dense",
        "seed": args.seed,
        "results": rows,
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.json:
        Path(args.json).write_text(text + "\n")
        print(f"chaos results written to {args.json} ({len(rows)} cells)")
    else:
        print(text)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.workload == "smoke":
        return _chaos_smoke(args)
    from .bench import run_algorithm
    from .trace import Tracer

    plan = _chaos_plan(args)
    graph = _trace_workload(args)
    tracer = Tracer(meta={"workload": args.workload, "plan": plan.to_dict()})
    clean = run_algorithm(
        graph, "ecl-scc", _device(args.device), backend=args.backend,
        engine=args.engine, verify=True,
    )
    res = run_algorithm(
        graph, "ecl-scc", _device(args.device),
        backend=args.backend, engine=args.engine, verify=True,
        tracer=tracer, faults=plan,
    )
    rep = res.fault_report
    print(f"workload:         {args.workload}"
          f"  (|V|={graph.num_vertices} |E|={graph.num_edges})")
    print(f"plan:             {args.plan} (seed {plan.seed})")
    print(f"status:           {res.status}")
    print(f"SCCs:             {res.num_sccs} (verified against Tarjan)")
    print(f"labels match clean run: {np.array_equal(res.labels, clean.labels)}")
    print(f"faults injected:  {rep.faults_injected}")
    for kind, count in sorted(rep.counts.items()):
        print(f"  {kind:24s} {count}")
    print(f"recoveries:       {rep.recoveries}"
          f"  (checkpoints saved {rep.checkpoints_saved},"
          f" restores {rep.restores}, heal passes {rep.heal_passes})")
    print(f"model runtime:    {res.model_seconds:.6f} s"
          f"  (clean {clean.model_seconds:.6f} s,"
          f" overhead x{res.model_seconds / clean.model_seconds:.3f})")
    if args.jsonl:
        from .trace import dump_jsonl

        dump_jsonl(tracer.finish(), args.jsonl)
        print(f"trace written to  {args.jsonl}")
    return 0


def _cmd_distributed(args: argparse.Namespace) -> int:
    from .distributed import (
        block_partition,
        distributed_ecl_scc,
        distributed_fbtrim,
        random_partition,
    )

    graph = _load_graph(args.graph, args.format)
    part_fn = random_partition if args.random_partition else block_partition
    partition = part_fn(graph, args.ranks)
    print(
        f"partition: {args.ranks} ranks,"
        f" edge cut {partition.edge_cut_fraction():.1%}"
    )
    for name, fn in (("ecl-scc", distributed_ecl_scc), ("fb-trim", distributed_fbtrim)):
        res = fn(graph, partition)
        s = res.cluster.summary()
        print(
            f"{name:8s} SCCs={res.num_sccs}  supersteps={res.supersteps}"
            f"  messages={s['total_messages']}"
            f"  est={res.estimated_seconds * 1e3:.3f} ms"
        )
    return 0


def _serve_config(args: argparse.Namespace, scenario: str, plan, *,
                  shortcircuit: "bool | None" = None):
    from .serve.bench import ServeBenchConfig

    # shortcircuit=False forces the cache+coalescing layer off for a
    # row regardless of the flags (the nocache twin and the crash
    # pair, which measure the raw dispatch path)
    cache = not args.no_cache if shortcircuit is None else shortcircuit
    coalesce = not args.no_coalesce if shortcircuit is None else shortcircuit
    return ServeBenchConfig(
        scenario=scenario,
        num_graphs=args.graphs,
        num_jobs=args.jobs,
        workers=args.workers,
        queue_capacity=args.queue,
        utilization=args.utilization,
        cache_enabled=cache,
        coalesce_enabled=coalesce,
        engine=args.engine,
        backend=args.backend,
        plan=plan,
        seed=args.seed,
    )


def _print_serve_row(row: "dict") -> None:
    p50, p99 = row["p50_ms"], row["p99_ms"]
    if p50 is None:
        print(f"  {row['graph']:<24s} done=0/{row['jobs']} (no completions)")
        return
    print(
        f"  {row['graph']:<24s} done={row['done']:3d}/{row['jobs']:<3d}"
        f" thr={row['throughput_jps']:10.1f}/s p50={p50:8.4f}ms"
        f" p99={p99:8.4f}ms"
    )
    print(
        f"  {'':<24s} shed={row['shed_rate']:.3f}"
        f" breaker-shed={row['breaker_shed_rate']:.3f}"
        f" dead-letter={row['dead_letter_rate']:.3f}"
        f" retries={row['retries']}"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """The serve control-plane bench + chaos harness.

    ``bench`` runs the four-scenario matrix (clean, crash with and
    without breakers, delay), asserts the breaker win, and writes the
    rows (the CI ``BENCH_pr8.json`` artifact); ``chaos`` drives the
    service under one fault plan with full verification (terminal
    states + label bit-identity against unserved solves).
    """
    import json as _json

    from .faults import preset_plan
    from .serve.bench import breaker_comparison, run_serve_bench

    if args.mode == "chaos":
        plan = _chaos_plan(args)
        if not plan.has_serve_faults:
            raise SystemExit(
                f"plan {args.plan!r} has no service-layer faults"
                " (worker_crash_rate or message_delay_rate)"
            )
        cfg = _serve_config(args, f"chaos-{args.plan}", plan)
        try:
            row = run_serve_bench(cfg, verify=True)
        except AssertionError as exc:
            print(f"chaos-serve: FAIL — {exc}")
            return 1
        print(f"chaos-serve under {args.plan!r} (seed {args.seed}):")
        _print_serve_row(row)
        v = row["verified"]
        print(
            f"  every job terminal; {v['checked']} solve/query result(s)"
            " bit-identical to unserved solves"
        )
        if args.json:
            Path(args.json).write_text(
                _json.dumps(row, indent=2, sort_keys=True, default=str) + "\n"
            )
            print(f"written to {args.json}")
        return 0

    # bench: the scenario matrix; the breaker win and the cache win are
    # measured here and *enforced* by the --baseline gate (the CI
    # serve-smoke job).  zipf-clean runs with the short-circuit layer
    # on (the flags' default) plus a forced-off twin so the cache win
    # is a same-workload pair; the crash pair stays cache-off — the
    # breaker win is a property of the raw dispatch path, which the
    # cache would mostly absorb at this load.
    rows = [
        run_serve_bench(_serve_config(args, "zipf-clean", None)),
        run_serve_bench(_serve_config(args, "zipf-clean-nocache", None,
                                      shortcircuit=False)),
    ]
    crash = _serve_config(
        args, "zipf-crash", preset_plan("serve-crash", args.seed),
        shortcircuit=False,
    )
    cmp = breaker_comparison(crash, require_win=False)
    rows += [cmp["enabled"], cmp["disabled"]]
    rows.append(run_serve_bench(
        _serve_config(args, "zipf-delay", preset_plan("serve-delay", args.seed))
    ))
    print(f"serve bench (seed {args.seed}):")
    for row in rows:
        _print_serve_row(row)
    win = cmp["breaker_win"]
    status = "" if win["ok"] else " (NOT a win at this load)"
    print(
        f"  breaker win: p99 x{win['p99_degradation']:.2f},"
        f" shed +{win['shed_rate_delta']:.3f} without breakers{status}"
    )
    cached, cold = rows[0], rows[1]
    if cached["cache_enabled"]:
        print(
            f"  cache win: thr {cold['throughput_jps']:.1f} ->"
            f" {cached['throughput_jps']:.1f}/s"
            f" (hits={cached['cache_hits']}"
            f" coalesced={cached['coalesced_reads']}"
            f"+{cached['coalesced_updates']})"
        )
    doc = {
        "schema": "serve-bench/1",
        "seed": args.seed,
        "breaker_win": win,
        "results": rows,
    }
    if args.json:
        Path(args.json).write_text(
            _json.dumps(doc, indent=2, sort_keys=True, default=str) + "\n"
        )
        print(f"written to {args.json}")
    if args.baseline:
        return _bench_compare(rows, args.baseline, args.tolerance)
    return 0


def _obs_run(args: argparse.Namespace):
    """One observed serve run: ``(row, recorder)`` for the obs modes."""
    from .obs import ObsRecorder
    from .serve.bench import run_serve_bench

    plan = _chaos_plan(args) if args.plan else None
    scenario = args.scenario if plan is None else f"{args.scenario}+{args.plan}"
    cfg = _serve_config(args, scenario, plan)
    obs = ObsRecorder(growth=args.growth)
    row = run_serve_bench(cfg, obs=obs)
    return row, obs


def _cmd_obs(args: argparse.Namespace) -> int:
    """The observability pipeline over one serve run.

    ``report`` prints the over-time digest (latency quantiles with
    their error bound, per-phase decomposition, sampled series);
    ``export`` writes the Chrome-trace/Perfetto ``trace.json`` (and,
    with ``--jsonl``, the schema-v3 trace with ``sample``/``timeline``
    lines); ``slo`` judges a declarative SLO spec against the run and
    exits nonzero on a violated objective — the ``obs-slo`` CI gate.
    """
    import json as _json

    row, obs = _obs_run(args)
    report = obs.report

    if args.mode == "slo":
        from .obs import SLOSpec, evaluate_slo

        if not args.spec:
            raise SystemExit("obs slo needs --spec SLO_JSON")
        spec = SLOSpec.from_json(Path(args.spec).read_text())
        outcome = evaluate_slo(spec, report)
        print(f"SLO spec {spec.name!r} over {row['graph']}"
              f" (seed {args.seed}):")
        for r in outcome.results:
            o = r.objective
            what = (
                f"latency <= {o.threshold_ms:g}ms" if o.kind == "latency"
                else "availability"
            )
            verdict = "ok" if r.ok else "VIOLATED"
            print(
                f"  {o.name:<20s} {what:<24s} target={o.target:.3%}"
                f" bad={r.bad}/{r.population}"
                f" budget={r.budget_consumed:6.1%}  {verdict}"
            )
            for alert in r.alerts:
                rate = alert["burn_rate"]
                rate_s = f" burn x{rate:.1f}" if rate is not None else ""
                print(f"    alert t={alert['t']:.4f}s"
                      f" {alert['type']}{rate_s} (bad={alert['bad']})")
        if args.json:
            Path(args.json).write_text(
                _json.dumps(outcome.as_dict(), indent=2, sort_keys=True)
                + "\n"
            )
            print(f"written to {args.json}")
        print(f"obs-slo gate: {'pass' if outcome.ok else 'FAIL'}")
        return 0 if outcome.ok else 1

    if args.mode == "export":
        from .obs import dump_perfetto

        out = args.out or "trace.json"
        obj = dump_perfetto(report, out, recorder=obs)
        print(
            f"perfetto trace written to {out}:"
            f" {len(obj['traceEvents'])} events over"
            f" {report.makespan_s:.4f}s simulated"
            f" ({len(report.jobs)} jobs, {len(obs.timelines)} timelines,"
            f" {len(obs.registry)} samples)"
        )
        if args.jsonl:
            from .trace import Trace

            trace = obs.to_trace(Trace(meta={"scenario": row["graph"],
                                             "seed": args.seed}))
            trace.to_jsonl(args.jsonl)
            print(f"schema-v{trace.schema} trace written to {args.jsonl}"
                  f" ({len(trace.samples)} sample lines,"
                  f" {len(trace.timelines)} timeline lines)")
        return 0

    # report
    _print_serve_row(row)
    q = obs.quantiles_ms(0.5, 0.9, 0.99, 0.999)
    err = obs.latency_hist.quantile_error
    parts = ", ".join(
        f"{name}={v:.4f}ms" for name, v in q.items() if v is not None
    )
    print(f"  latency ({obs.latency_hist.total} done): {parts}"
          f"  (rel err <= {err:.2%})")
    print("  phase decomposition (seconds in phase, across all jobs):")
    for phase in sorted(obs.phase_hists):
        h = obs.phase_hists[phase]
        p50 = h.quantile(0.5)
        p99 = h.quantile(0.99)
        print(f"    {phase:<12s} n={h.total:4d}"
              f" p50={p50 * 1e3:9.4f}ms p99={p99 * 1e3:9.4f}ms"
              f" max={h.max * 1e3:9.4f}ms")
    print(f"  series sampled on the simulated clock"
          f" ({len(obs.registry)} points):")
    for name in obs.registry.names():
        samples = obs.registry.series(name)
        peak = obs.registry.peak(name)
        print(f"    {name:<28s} {obs.registry.kind_of(name):<8s}"
              f" points={len(samples):4d} peak={peak:g}")
    if args.json:
        Path(args.json).write_text(
            _json.dumps(obs.summary(), indent=2, sort_keys=True,
                        default=str) + "\n"
        )
        print(f"written to {args.json}")
    return 0


def _cmd_devices(_args: argparse.Namespace) -> int:
    from .device import ALL_DEVICES

    for d in ALL_DEVICES:
        print(
            f"{d.name:12s} {d.kind:3s}  lanes={d.lanes:5d}  sms={d.sms:4d}"
            f"  clock={d.clock_ghz:.2f}GHz  bw={d.mem_bw_gbs:7.1f}GB/s"
            f"  llc={d.l2_mb:5.1f}MB  launch={d.launch_us:.0f}us"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .core import ecl_scc
    from .mesh.suite import LARGE_MESH_SPECS, SMALL_MESH_SPECS, build_group
    from .sweep import solve_transport_sweep, sweep_schedule

    specs = {s.name: s for s in SMALL_MESH_SPECS}
    specs.update({s.name: s for s in LARGE_MESH_SPECS})
    if args.mesh not in specs:
        raise SystemExit(f"unknown mesh {args.mesh!r}; known: {sorted(specs)}")
    grp = build_group(specs[args.mesh], scale=args.scale, num_ordinates=args.ordinates)
    print(f"{args.mesh}: {grp.mesh.num_elements} elements, {args.ordinates} ordinates")
    for i, graph in enumerate(grp.graphs):
        res = ecl_scc(graph)
        schedule = sweep_schedule(graph, res.labels)
        out = solve_transport_sweep(graph, schedule, res.labels)
        print(
            f"  ordinate {i}: SCCs={res.num_sccs}"
            f" (non-trivial {schedule.num_nontrivial}),"
            f" levels={schedule.depth},"
            f" inner iters={out.scc_inner_iterations},"
            f" residual={out.residual:.2e}"
        )
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for all subcommands."""
    from .bench.runners import ALGORITHM_NAMES
    from .core.options import ENGINE_NAMES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="ECL-SCC reproduction toolkit (SC '23)",
    )
    # the registry is the single source of engine names: help text is
    # derived, never hand-maintained, so new engines list automatically
    engine_list = " | ".join(ENGINE_NAMES)
    sub = parser.add_subparsers(dest="command", required=True)

    # one --seed, defined once, accepted by every subcommand: it seeds
    # whatever randomness the subcommand has (workload generators, fault
    # plans, service workloads) and is inert where there is none
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed for generators / fault plans / workloads"
        " (default 0)",
    )

    p = sub.add_parser("scc", parents=[common],
                       help="detect SCCs in a graph file")
    p.add_argument("graph", help="input graph file (.mtx/.txt/.edges/.gr)")
    p.add_argument("--algo", default="ecl-scc", choices=ALGORITHM_NAMES)
    p.add_argument("--device", default="A100",
                   help="Titan V | A100 | Ryzen 2950X | Xeon 6226R")
    p.add_argument("--format", default="auto",
                   choices=["auto", "mtx", "edges", "dimacs", "npz"])
    p.add_argument("--verify", action="store_true",
                   help="check labels against Tarjan (paper §4)")
    p.add_argument("--time", action="store_true",
                   help="also measure Python wall time (median protocol)")
    p.add_argument("--repeats", type=int, default=9)
    p.add_argument("--output", help="write per-vertex labels to this file")
    p.add_argument("--randomize-ids", action="store_true",
                   help="random internal relabelling (see docs/algorithm.md §6)")
    p.add_argument("--backend", default=None, choices=_backend_choices(),
                   help="engine accounting backend (default: dense)")
    p.add_argument("--engine", default=None,
                   choices=list(ENGINE_NAMES),
                   help=f"ecl-scc Phase-2 engine: {engine_list}"
                   " (default: options default)")
    p.set_defaults(func=_cmd_scc)

    p = sub.add_parser("stats", parents=[common], help="print SCC statistics of a graph file")
    p.add_argument("graph")
    p.add_argument("--format", default="auto",
                   choices=["auto", "mtx", "edges", "dimacs", "npz"])
    p.add_argument("--no-depth", action="store_true",
                   help="skip the (expensive) condensation DAG depth")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("gen", parents=[common], help="generate a workload graph")
    p.add_argument("kind", choices=["mesh", "powerlaw"])
    p.add_argument("name", help="mesh group or Table-3 graph name")
    p.add_argument("output", help="output file (.mtx/.txt/.edges/.gr)")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--ordinate", type=int, default=0,
                   help="which ordinate's sweep graph (meshes)")
    p.set_defaults(func=_cmd_gen)

    p = sub.add_parser("bench", parents=[common], help="regenerate a paper table/figure")
    p.add_argument(
        "experiment",
        choices=["table1", "table2", "table3", "table5", "table6", "table7",
                 "fig14", "expanded", "smoke", "engines"],
    )
    p.add_argument("--json", default=None,
                   help="(smoke/engines) write results to this JSON file")
    p.add_argument("--device", default="A100",
                   help="(smoke/engines) device model to estimate against")
    p.add_argument("--backend", default=None, choices=_backend_choices(),
                   help="(smoke/engines) engine accounting backend")
    p.add_argument("--engine", default=None,
                   choices=list(ENGINE_NAMES),
                   help=f"(smoke) ecl-scc Phase-2 engine: {engine_list}")
    p.add_argument("--baseline", default=None,
                   help="(smoke/engines) compare against this baseline JSON"
                   " and gate: exact num_sccs, bounded ecl-scc"
                   " model_seconds")
    p.add_argument("--tolerance", type=float, default=0.05,
                   help="(smoke/engines) allowed ecl-scc model_seconds"
                   " regression vs --baseline (default 0.05 = +5%%)")
    p.add_argument("--engine-tolerance", type=float, default=0.02,
                   help="(engines) allowed adaptive overhead vs the best"
                   " static engine (default 0.02 = +2%%)")
    p.add_argument("--decisions", default=None,
                   help="(engines) write the adaptive per-round decision"
                   " logs to this JSON file (the CI artifact)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "trace", parents=[common], help="run one algorithm with the structured tracer"
    )
    p.add_argument(
        "workload",
        nargs="?",
        default="ladder:64",
        help="graph file, power-law name, generator spec"
        " (cycle:N | ladder:RUNGS | gnm:N:M | mesh:NAME[:ORD]), or"
        " 'diff' to compare two JSONL traces; default ladder:64",
    )
    p.add_argument(
        "diff_paths",
        nargs="*",
        default=[],
        metavar="TRACE",
        help="(diff) the two JSONL traces to compare: BASE NEW",
    )
    p.add_argument("--algo", default="ecl-scc", choices=ALGORITHM_NAMES)
    p.add_argument("--device", default="A100",
                   help="Titan V | A100 | Ryzen 2950X | Xeon 6226R")
    p.add_argument("--format", default="auto",
                   choices=["auto", "mtx", "edges", "dimacs", "npz"])
    p.add_argument("--scale", type=float, default=None,
                   help="power-law workload scale factor")
    p.add_argument("--jsonl", help="write the trace to this JSONL file")
    p.add_argument("--load",
                   help="summarize an existing JSONL trace instead of running")
    p.add_argument("--no-summary", action="store_true",
                   help="skip the span-tree summary")
    p.add_argument("--json", nargs="?", const="-", default=None,
                   help="(diff) write the diff as JSON to PATH (or stdout)")
    p.add_argument("--backend", default=None, choices=_backend_choices(),
                   help="engine accounting backend (default: dense)")
    p.add_argument("--engine", default=None,
                   choices=list(ENGINE_NAMES),
                   help=f"ecl-scc Phase-2 engine: {engine_list}"
                   " (default: options default)")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "profile",
        parents=[common],
        help="per-phase time attribution and roofline classification",
    )
    p.add_argument(
        "workload",
        nargs="?",
        default="ladder:64",
        help="graph file, power-law name, or generator spec"
        " (cycle:N | ladder:RUNGS | gnm:N:M | mesh:NAME[:ORD]);"
        " default ladder:64",
    )
    p.add_argument("--algo", default="ecl-scc", choices=ALGORITHM_NAMES)
    p.add_argument("--device", default="A100",
                   help="Titan V | A100 | Ryzen 2950X | Xeon 6226R")
    p.add_argument("--format", default="auto",
                   choices=["auto", "mtx", "edges", "dimacs", "npz"])
    p.add_argument("--scale", type=float, default=None,
                   help="power-law workload scale factor")
    p.add_argument("--json", nargs="?", const="-", default=None,
                   help="write the ProfileReport as JSON to PATH (or stdout)")
    p.add_argument("--prom", nargs="?", const="-", default=None,
                   help="write a Prometheus text exposition to PATH"
                   " (or stdout)")
    p.add_argument("--jsonl",
                   help="also write the underlying trace to this JSONL file")
    p.add_argument("--ranks", type=int, default=0,
                   help="distributed mode: per-rank BSP profile of"
                   " distributed ECL-SCC on this many ranks")
    p.add_argument("--stragglers", default=None,
                   help="(distributed) comma-separated per-rank slowdown"
                   " factors, e.g. 1.0,1.0,1.3,1.0")
    p.add_argument("--backend", default=None, choices=_backend_choices(),
                   help="engine accounting backend (default: dense)")
    p.add_argument("--engine", default=None,
                   choices=list(ENGINE_NAMES),
                   help=f"ecl-scc Phase-2 engine: {engine_list}"
                   " (default: options default)")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "dynamic",
        parents=[common],
        help="replay an edge log through the incremental SCC engine",
    )
    p.add_argument(
        "workload",
        nargs="?",
        default="gnm:512:2048",
        help="graph file, power-law name, or generator spec"
        " (cycle:N | ladder:RUNGS | gnm:N:M | mesh:NAME[:ORD]);"
        " default gnm:512:2048",
    )
    p.add_argument("--events", type=int, default=200,
                   help="edge events to generate (default 200)")
    p.add_argument("--batches", type=_int_list, default=[1, 4, 16, 64],
                   help="comma-separated batch sizes (default 1,4,16,64)")
    p.add_argument("--insert-fraction", type=float, default=0.5,
                   help="fraction of events that insert (default 0.5)")
    p.add_argument("--device", default="A100",
                   help="Titan V | A100 | Ryzen 2950X | Xeon 6226R")
    p.add_argument("--format", default="auto",
                   choices=["auto", "mtx", "edges", "dimacs", "npz"])
    p.add_argument("--scale", type=float, default=None,
                   help="power-law workload scale factor")
    p.add_argument("--verify", action="store_true",
                   help="check every batch's labels against a cold solve")
    p.add_argument("--json", default=None,
                   help="write the crossover table to this JSON file")
    p.add_argument("--backend", default=None, choices=_backend_choices(),
                   help="engine accounting backend (default: dense)")
    p.add_argument("--engine", default=None, choices=list(ENGINE_NAMES),
                   help=f"internal re-solve engine: {engine_list}"
                   " (default: frontier)")
    p.set_defaults(func=_cmd_dynamic)

    p = sub.add_parser(
        "chaos", parents=[common], help="run ECL-SCC under a seeded fault plan"
    )
    p.add_argument(
        "workload",
        nargs="?",
        default="smoke",
        help="'smoke' (3-graph CI matrix), a graph file, power-law name,"
        " or generator spec (cycle:N | ladder:RUNGS | gnm:N:M);"
        " default smoke",
    )
    p.add_argument("--plan", default="chaos",
                   help="'monotone', 'chaos', or a FaultPlan JSON file")
    p.add_argument("--device", default="A100",
                   help="Titan V | A100 | Ryzen 2950X | Xeon 6226R")
    p.add_argument("--format", default="auto",
                   choices=["auto", "mtx", "edges", "dimacs", "npz"])
    p.add_argument("--scale", type=float, default=None,
                   help="power-law workload scale factor")
    p.add_argument("--json", default=None,
                   help="(smoke) write results to this JSON file")
    p.add_argument("--jsonl", help="write the faulted run's trace to JSONL")
    p.add_argument("--backend", default=None, choices=_backend_choices(),
                   help="engine accounting backend (default: dense)")
    p.add_argument("--engine", default=None,
                   choices=list(ENGINE_NAMES),
                   help=f"ecl-scc Phase-2 engine: {engine_list}"
                   " (default: options default)")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "serve", parents=[common],
        help="SCC-as-a-service control-plane bench + chaos harness",
    )
    p.add_argument(
        "mode", nargs="?", default="bench", choices=["bench", "chaos"],
        help="'bench': Zipf scenario matrix with the breaker-win gate;"
        " 'chaos': one fault plan with full verification",
    )
    p.add_argument("--plan", default="serve-crash",
                   help="(chaos) preset name or FaultPlan JSON file"
                   " (must carry service-layer faults)")
    p.add_argument("--jobs", type=int, default=60,
                   help="jobs in the generated workload (default 60)")
    p.add_argument("--graphs", type=int, default=4,
                   help="named graphs in the Zipf world (default 4)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker pool size (default 2)")
    p.add_argument("--queue", type=int, default=8,
                   help="bounded run-queue capacity (default 8)")
    p.add_argument("--utilization", type=float, default=1.5,
                   help="open-loop arrival rate as a multiple of service"
                   " capacity (default 1.5 = overload)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the generation-keyed solve cache")
    p.add_argument("--no-coalesce", action="store_true",
                   help="disable request coalescing (read attach +"
                   " update merging)")
    p.add_argument("--json", default=None,
                   help="write results to this JSON file")
    p.add_argument("--baseline", default=None,
                   help="(bench) compare against this baseline JSON and"
                   " gate throughput/shed-rate regressions")
    p.add_argument("--tolerance", type=float, default=0.05,
                   help="(bench) allowed throughput/shed-rate regression"
                   " vs --baseline (default 0.05)")
    p.add_argument("--backend", default=None, choices=_backend_choices(),
                   help="engine accounting backend (default: dense)")
    p.add_argument("--engine", default=None,
                   choices=list(ENGINE_NAMES),
                   help=f"data-plane Phase-2 engine: {engine_list}")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "obs", parents=[common],
        help="observability pipeline: time series, timelines, Perfetto"
        " export, SLO gate over a serve run",
    )
    p.add_argument(
        "mode", nargs="?", default="report",
        choices=["report", "export", "slo"],
        help="'report': over-time digest; 'export': Chrome-trace"
        " trace.json for ui.perfetto.dev; 'slo': judge --spec and exit"
        " nonzero on violation (the obs-slo CI gate)",
    )
    p.add_argument("--scenario", default="zipf-clean",
                   help="scenario label for the observed run"
                   " (default zipf-clean)")
    p.add_argument("--plan", default=None,
                   help="optional fault plan: preset name or FaultPlan"
                   " JSON file")
    p.add_argument("--spec", default=None,
                   help="(slo) SLO spec JSON (objectives + burn-rate"
                   " alert policy)")
    p.add_argument("--out", default=None,
                   help="(export) Perfetto trace path (default"
                   " trace.json)")
    p.add_argument("--jsonl", default=None,
                   help="(export) also write the schema-v3 JSONL trace"
                   " with sample/timeline lines")
    p.add_argument("--growth", type=float, default=1.04,
                   help="histogram bucket growth factor; quantile"
                   " relative error is sqrt(growth)-1 (default 1.04)")
    p.add_argument("--jobs", type=int, default=60,
                   help="jobs in the generated workload (default 60)")
    p.add_argument("--graphs", type=int, default=4,
                   help="named graphs in the Zipf world (default 4)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker pool size (default 2)")
    p.add_argument("--queue", type=int, default=8,
                   help="bounded run-queue capacity (default 8)")
    p.add_argument("--utilization", type=float, default=1.5,
                   help="open-loop arrival rate multiple (default 1.5)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the generation-keyed solve cache")
    p.add_argument("--no-coalesce", action="store_true",
                   help="disable request coalescing")
    p.add_argument("--json", default=None,
                   help="write the mode's JSON document to this file")
    p.add_argument("--backend", default=None, choices=_backend_choices(),
                   help="engine accounting backend (default: dense)")
    p.add_argument("--engine", default=None,
                   choices=list(ENGINE_NAMES),
                   help=f"data-plane Phase-2 engine: {engine_list}")
    p.set_defaults(func=_cmd_obs)

    p = sub.add_parser("distributed", parents=[common], help="BSP cluster run: ECL vs FB-Trim")
    p.add_argument("graph")
    p.add_argument("--ranks", type=int, default=8)
    p.add_argument("--random-partition", action="store_true")
    p.add_argument("--format", default="auto",
                   choices=["auto", "mtx", "edges", "dimacs", "npz"])
    p.set_defaults(func=_cmd_distributed)

    p = sub.add_parser("devices", parents=[common], help="list virtual device models")
    p.set_defaults(func=_cmd_devices)

    p = sub.add_parser("sweep", parents=[common], help="run the full RTE pipeline on a mesh")
    p.add_argument("mesh", help="mesh group name (e.g. toroid-hex)")
    p.add_argument("--ordinates", type=int, default=4)
    p.add_argument("--scale", type=float, default=None)
    p.set_defaults(func=_cmd_sweep)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
