"""The observer that turns a live service run into observability data.

:class:`ObsRecorder` plugs into ``SccService(observer=...)``.  The
service calls :meth:`on_event` after every simulated event it
processes; the recorder samples the control plane's state onto a
:class:`~repro.obs.timeseries.SeriesRegistry` (change-driven step
series, so flat stretches cost nothing), streams terminal-job
latencies into :class:`~repro.obs.timeseries.StreamingHistogram`
sketches, and folds each newly-terminal job's decision history into a
:class:`~repro.obs.timeline.JobTimeline`.

The coupling is duck-typed on purpose: ``repro.serve`` never imports
``repro.obs`` — any object with an ``on_event(service)`` method works
as an observer, and the recorder only touches public service surface
(``now``, ``queue``, ``pool``, ``metrics``, ``cache``, ``ledger``,
``jobs``, ``breaker_for``'s backing table).
"""

from __future__ import annotations

import math
from typing import Any

from .timeline import JobTimeline, job_timeline
from .timeseries import SeriesRegistry, StreamingHistogram

__all__ = ["ObsRecorder", "BREAKER_STATE_LEVELS"]

#: gauge encoding of circuit-breaker states (closed is healthy/low).
BREAKER_STATE_LEVELS = {"closed": 0.0, "half-open": 1.0, "open": 2.0}

#: cumulative service counters worth a time series (the rest stay
#: visible as run totals in ``ServiceMetrics``).
_SAMPLED_COUNTERS = (
    "submitted",
    "admitted",
    "dispatched",
    "completed",
    "crashed",
    "retries",
    "shed_backpressure",
    "shed_breaker",
    "dead_letter",
    "cache_hits",
    "coalesced_reads",
)


class ObsRecorder:
    """Samples an :class:`~repro.serve.service.SccService` as it runs.

    Parameters
    ----------
    growth:
        Bucket growth factor of the latency histograms; the reported
        quantiles have relative error at most ``sqrt(growth) - 1``.
    """

    def __init__(self, *, growth: float = 1.04) -> None:
        self.registry = SeriesRegistry()
        #: DONE-job end-to-end latency, seconds
        self.latency_hist = StreamingHistogram(growth)
        #: per-phase dwell time across all terminal jobs, seconds
        self.phase_hists: "dict[str, StreamingHistogram]" = {}
        self.timelines: "list[JobTimeline]" = []
        self.report: Any = None
        self._growth = growth
        self._pending: "dict[int, Any]" = {}
        self._jobs_cursor = 0
        self.events_observed = 0

    # ------------------------------------------------------------------
    # service hook
    # ------------------------------------------------------------------
    def on_event(self, service: Any) -> None:
        """Called by the service after each simulated event."""
        self.events_observed += 1
        now = service.now
        reg = self.registry
        self._gauge_changed("queue_depth", now, float(len(service.queue)))
        self._gauge_changed("wip_in_flight", now, float(service.pool.in_flight))

        counters = service.metrics.counters
        for name in _SAMPLED_COUNTERS:
            value = float(counters.get(name, 0))
            last = reg.last(f"metric:{name}")
            if last is None or last.value != value:
                reg.counter(f"metric:{name}", now, value)

        cache = service.cache
        if cache is not None:
            hits = cache.stats.hits
            misses = cache.stats.misses
            lookups = hits + misses
            if lookups:
                self._gauge_changed("cache_hit_rate", now, hits / lookups)
            self._gauge_changed("cache_bytes", now, float(cache.bytes))

        for workload, breaker in sorted(service._breakers.items()):
            level = BREAKER_STATE_LEVELS[breaker.state.value]
            self._gauge_changed(f"breaker:{workload}", now, level)

        ledger = service.ledger
        for tenant, spent in ledger.snapshot().items():
            limit = ledger.budget_of(tenant).model_seconds
            if math.isfinite(limit) and limit > 0:
                self._gauge_changed(
                    f"budget_util:{tenant}", now,
                    spent["model_seconds"] / limit,
                )

        self._sweep_jobs(service)

    def _gauge_changed(self, series: str, t: float, value: float) -> None:
        """Record a gauge point only when the level actually moved."""
        last = self.registry.last(series)
        if last is None or last.value != value:
            self.registry.gauge(series, t, value)

    def _sweep_jobs(self, service: Any) -> None:
        jobs = service.jobs
        while self._jobs_cursor < len(jobs):
            job = jobs[self._jobs_cursor]
            self._pending[job.id] = job
            self._jobs_cursor += 1
        finished = [j for j in self._pending.values() if j.terminal]
        for job in finished:
            del self._pending[job.id]
            self._on_terminal(job)

    def _on_terminal(self, job: Any) -> None:
        tl = job_timeline(job)
        self.timelines.append(tl)
        if str(job.state) == "done":
            self.latency_hist.observe(job.latency_s)
        for phase, seconds in tl.by_phase().items():
            hist = self.phase_hists.get(phase)
            if hist is None:
                hist = self.phase_hists[phase] = StreamingHistogram(self._growth)
            hist.observe(seconds)

    # ------------------------------------------------------------------
    # end of run
    # ------------------------------------------------------------------
    def finalize(self, report: Any) -> "ObsRecorder":
        """Attach the finished run's :class:`ServiceReport`."""
        self.report = report
        return self

    def quantiles_ms(self, *qs: float) -> "dict[str, float | None]":
        """DONE-latency quantiles in milliseconds, keyed ``p50``-style."""
        out: "dict[str, float | None]" = {}
        for q in qs:
            v = self.latency_hist.quantile(q)
            key = f"p{q * 100:g}".replace(".", "")
            out[key] = None if v is None else v * 1e3
        return out

    def summary(self) -> "dict[str, Any]":
        """JSON-safe digest: series, histograms, timelines, run totals."""
        phases: "dict[str, Any]" = {}
        for name in sorted(self.phase_hists):
            hist = self.phase_hists[name]
            phases[name] = {
                "total": hist.total,
                "p50_s": hist.quantile(0.5),
                "p99_s": hist.quantile(0.99),
                "max_s": hist.max,
            }
        out: "dict[str, Any]" = {
            "events_observed": self.events_observed,
            "series": self.registry.as_dict(),
            "latency_hist": self.latency_hist.as_dict(),
            "latency_ms": self.quantiles_ms(0.5, 0.99, 0.999),
            "quantile_error": self.latency_hist.quantile_error,
            "phases": phases,
            "timelines": [tl.as_dict() for tl in self.timelines],
        }
        if self.report is not None:
            out["makespan_s"] = self.report.makespan_s
            out["by_state"] = self.report.by_state()
        return out

    def to_trace(self, trace: Any) -> Any:
        """Append samples + timelines to a ``repro.trace.Trace`` (v3)."""
        from repro.trace.records import SampleRecord, TimelineRecord

        for s in self.registry.samples:
            trace.samples.append(
                SampleRecord(series=s.series, kind=s.kind, t=s.t, value=s.value)
            )
        for tl in self.timelines:
            trace.timelines.append(
                TimelineRecord(
                    job_id=tl.job_id,
                    tenant=tl.tenant,
                    workload=tl.workload,
                    state=tl.state,
                    submit_s=tl.submit_s,
                    finish_s=tl.finish_s,
                    segments=tuple(
                        (seg.phase, seg.t0, seg.t1) for seg in tl.segments
                    ),
                )
            )
        return trace
