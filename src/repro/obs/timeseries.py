"""Simulated-clock time series: counters, gauges, streaming histograms.

The serve layer's end-of-run numbers (``ServiceMetrics`` totals, a
sorted latency list) answer *what happened*; this module answers *when*.
A :class:`SeriesRegistry` records timestamped samples of named series on
the **simulated clock** — the same clock every service decision is made
on — so queue depth, WIP occupancy, budget burn, cache hit rate and
breaker state become functions of time instead of run totals.

Two sample kinds, mirroring the tracer's event kinds:

* ``counter`` — a cumulative, monotonically non-decreasing total
  (completed jobs, crashes, sheds).  The registry enforces
  monotonicity; a rate is the slope between two samples.
* ``gauge`` — an instantaneous level (queue depth, cache hit rate).

:class:`StreamingHistogram` is the bounded-error quantile sketch that
replaces end-of-run sorted-list percentiles: log-spaced buckets with
growth factor *g* hold counts only, so memory is O(log(max/min)) and
any quantile is answered with relative error at most ``sqrt(g) - 1``
(the reported value is the geometric midpoint of the bucket containing
the nearest-rank order statistic, which lies inside the same bucket).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

__all__ = ["Sample", "SeriesRegistry", "StreamingHistogram"]


@dataclass(frozen=True)
class Sample:
    """One timestamped point of a named series (simulated seconds)."""

    series: str
    kind: str  # "counter" | "gauge"
    t: float
    value: float


class SeriesRegistry:
    """Named simulated-time series of counter/gauge samples.

    A series' kind is fixed by its first sample; mixing kinds under one
    name raises ``ValueError`` (a series is either cumulative or
    instantaneous, never both).  Counter series must be non-decreasing.
    """

    def __init__(self) -> None:
        self.samples: "list[Sample]" = []
        self._kinds: "dict[str, str]" = {}
        self._last: "dict[str, Sample]" = {}

    def __len__(self) -> int:
        return len(self.samples)

    def counter(self, series: str, t: float, value: float) -> None:
        """Sample a cumulative total at simulated time *t*."""
        self._record(series, "counter", t, value)

    def gauge(self, series: str, t: float, value: float) -> None:
        """Sample an instantaneous level at simulated time *t*."""
        self._record(series, "gauge", t, value)

    def _record(self, series: str, kind: str, t: float, value: float) -> None:
        known = self._kinds.get(series)
        if known is None:
            self._kinds[series] = kind
        elif known != kind:
            raise ValueError(
                f"series {series!r} is a {known}, cannot record a {kind}"
            )
        prev = self._last.get(series)
        if prev is not None:
            if t < prev.t:
                raise ValueError(
                    f"series {series!r}: time went backwards"
                    f" ({prev.t} -> {t})"
                )
            if kind == "counter" and value < prev.value:
                raise ValueError(
                    f"counter series {series!r} decreased"
                    f" ({prev.value} -> {value})"
                )
            if prev.t == t and prev.value == value:
                return  # duplicate point: event-loop sampling dedup
        sample = Sample(series=series, kind=kind, t=float(t), value=float(value))
        self.samples.append(sample)
        self._last[series] = sample

    # ------------------------------------------------------------------
    def names(self) -> "list[str]":
        return sorted(self._kinds)

    def kind_of(self, series: str) -> "str | None":
        return self._kinds.get(series)

    def series(self, name: str) -> "list[Sample]":
        """All samples of one series, in time order."""
        return [s for s in self.samples if s.series == name]

    def last(self, name: str) -> "Sample | None":
        return self._last.get(name)

    def peak(self, name: str) -> "float | None":
        values = [s.value for s in self.samples if s.series == name]
        return max(values) if values else None

    def as_dict(self) -> "dict[str, Any]":
        """JSON-safe ``{series: {"kind": ..., "points": [[t, v], ...]}}``."""
        out: "dict[str, Any]" = {}
        for name in self.names():
            out[name] = {
                "kind": self._kinds[name],
                "points": [[s.t, s.value] for s in self.series(name)],
            }
        return out


class StreamingHistogram:
    """Log-bucket streaming histogram with bounded-error quantiles.

    Values land in bucket ``i`` when ``growth**i <= value <
    growth**(i+1)``; zeros get their own bucket.  :meth:`quantile`
    returns the geometric midpoint of the bucket holding the
    nearest-rank order statistic ``x_(ceil(q*n))``, so its relative
    error versus that order statistic is at most
    :attr:`quantile_error` ``= sqrt(growth) - 1``, and its absolute
    error at most one bucket width — regardless of how many values
    streamed through.
    """

    def __init__(self, growth: float = 1.04) -> None:
        if not growth > 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        self.counts: "dict[int, int]" = {}
        self.zeros = 0
        self.total = 0
        self.min: "float | None" = None
        self.max: "float | None" = None

    def __len__(self) -> int:
        return self.total

    def observe(self, value: float) -> None:
        """Stream one non-negative value into the sketch."""
        value = float(value)
        if not value >= 0.0:
            raise ValueError(f"histogram values must be >= 0, got {value}")
        self.total += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value == 0.0:
            self.zeros += 1
            return
        idx = self._bucket_of(value)
        self.counts[idx] = self.counts.get(idx, 0) + 1

    def _bucket_of(self, value: float) -> int:
        idx = math.floor(math.log(value) / self._log_growth)
        # float-boundary repair: guarantee growth**idx <= value
        if self.growth ** idx > value:
            idx -= 1
        elif self.growth ** (idx + 1) <= value:
            idx += 1
        return idx

    def bucket_bounds(self, value: float) -> "tuple[float, float]":
        """``[lo, hi)`` of the bucket *value* lands in (0-bucket: (0, 0))."""
        if value == 0.0:
            return (0.0, 0.0)
        idx = self._bucket_of(value)
        return (self.growth ** idx, self.growth ** (idx + 1))

    def bucket_width(self, value: float) -> float:
        """Width of the bucket containing *value* (0 for the 0-bucket)."""
        lo, hi = self.bucket_bounds(value)
        return hi - lo

    @property
    def quantile_error(self) -> float:
        """Max relative error of any reported quantile: ``sqrt(g) - 1``."""
        return math.sqrt(self.growth) - 1.0

    def quantile(self, q: float) -> "float | None":
        """Bounded-error estimate of the *q*-quantile (None when empty).

        Targets the nearest-rank order statistic ``x_(r)``,
        ``r = ceil(q * n)`` clamped to ``[1, n]``; the estimate is the
        geometric midpoint of the bucket containing ``x_(r)``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return None
        rank = max(1, min(self.total, math.ceil(q * self.total)))
        if rank <= self.zeros:
            return 0.0
        cum = self.zeros
        for idx in sorted(self.counts):
            cum += self.counts[idx]
            if cum >= rank:
                return self.growth ** (idx + 0.5)
        # unreachable: cum == total >= rank by the clamp
        raise AssertionError("rank exceeded total")  # pragma: no cover

    def as_dict(self) -> "dict[str, Any]":
        return {
            "growth": self.growth,
            "total": self.total,
            "zeros": self.zeros,
            "min": self.min,
            "max": self.max,
            "quantile_error": self.quantile_error,
            "buckets": {str(i): self.counts[i] for i in sorted(self.counts)},
        }
