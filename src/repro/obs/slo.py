"""Declarative SLOs over simulated time, with error-budget burn alerts.

An :class:`SLObjective` states a promise about a serve run:

* ``latency``     — at least ``target`` of completed (DONE) jobs finish
  within ``threshold_ms`` end-to-end.
* ``availability`` — at least ``target`` of admitted jobs (everything
  except budget-REJECTED submissions) reach DONE.

Each objective carries an **error budget**: with population *n*, at
most ``(1 - target) * n`` jobs may be *bad* before the objective is
violated.  :func:`evaluate_slo` replays the run's terminal events in
simulated-time order, charges each bad job against the budget, emits a
``burn`` alert whenever the budget consumption rate over a sliding
window exceeds ``alert_burn_rate`` (the classic multi-window burn-rate
alarm, here on the simulated clock), and an ``exhausted`` alert the
moment the budget runs out.  A spec fails — and the ``obs-slo`` CI
gate exits nonzero — iff any objective ends the run violated.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "SLObjective",
    "SLOSpec",
    "ObjectiveResult",
    "SLOReport",
    "evaluate_slo",
]

_KINDS = ("latency", "availability")


@dataclass(frozen=True)
class SLObjective:
    """One promise: ``kind`` with success ratio ``target``.

    ``threshold_ms`` is required for ``latency`` objectives (what
    counts as fast enough) and ignored for ``availability``.
    """

    name: str
    kind: str
    target: float
    threshold_ms: "float | None" = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"objective {self.name!r}: kind must be one of {_KINDS},"
                f" got {self.kind!r}"
            )
        if not 0.0 < self.target <= 1.0:
            raise ValueError(
                f"objective {self.name!r}: target must be in (0, 1],"
                f" got {self.target}"
            )
        if self.kind == "latency" and self.threshold_ms is None:
            raise ValueError(
                f"latency objective {self.name!r} needs threshold_ms"
            )

    def as_dict(self) -> "dict[str, Any]":
        out: "dict[str, Any]" = {
            "name": self.name, "kind": self.kind, "target": self.target,
        }
        if self.threshold_ms is not None:
            out["threshold_ms"] = self.threshold_ms
        return out


@dataclass(frozen=True)
class SLOSpec:
    """A named set of objectives, serializable to/from JSON."""

    name: str
    objectives: "tuple[SLObjective, ...]"
    #: burn alert fires when the sliding-window burn rate (budget
    #: consumed per window, normalized so 1.0 = "exactly on track to
    #: spend the whole budget over the run") exceeds this.
    alert_burn_rate: float = 4.0
    #: sliding window as a fraction of the run's makespan.
    window_frac: float = 0.125

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ValueError(f"spec {self.name!r} has no objectives")
        if self.alert_burn_rate <= 0:
            raise ValueError("alert_burn_rate must be > 0")
        if not 0.0 < self.window_frac <= 1.0:
            raise ValueError("window_frac must be in (0, 1]")

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "alert_burn_rate": self.alert_burn_rate,
                "window_frac": self.window_frac,
                "objectives": [o.as_dict() for o in self.objectives],
            },
            indent=2,
        ) + "\n"

    @classmethod
    def from_dict(cls, data: "dict[str, Any]") -> "SLOSpec":
        return cls(
            name=data["name"],
            alert_burn_rate=float(data.get("alert_burn_rate", 4.0)),
            window_frac=float(data.get("window_frac", 0.125)),
            objectives=tuple(
                SLObjective(
                    name=o["name"],
                    kind=o["kind"],
                    target=float(o["target"]),
                    threshold_ms=(
                        float(o["threshold_ms"])
                        if o.get("threshold_ms") is not None else None
                    ),
                )
                for o in data["objectives"]
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "SLOSpec":
        return cls.from_dict(json.loads(text))


@dataclass
class ObjectiveResult:
    """One objective's outcome over a run."""

    objective: SLObjective
    population: int
    bad: int
    allowed_bad: float
    #: fraction of the error budget consumed (may exceed 1.0)
    budget_consumed: float
    ok: bool
    #: ``{"t", "type" ("burn"|"exhausted"), "burn_rate", "bad"}`` events
    alerts: "list[dict]" = field(default_factory=list)

    def as_dict(self) -> "dict[str, Any]":
        return {
            "objective": self.objective.as_dict(),
            "population": self.population,
            "bad": self.bad,
            "allowed_bad": self.allowed_bad,
            "budget_consumed": self.budget_consumed,
            "ok": self.ok,
            "alerts": list(self.alerts),
        }


@dataclass
class SLOReport:
    """All objectives' outcomes; ``ok`` iff every objective held."""

    spec_name: str
    makespan_s: float
    results: "list[ObjectiveResult]"

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def as_dict(self) -> "dict[str, Any]":
        return {
            "spec": self.spec_name,
            "makespan_s": self.makespan_s,
            "ok": self.ok,
            "results": [r.as_dict() for r in self.results],
        }


def _bad_events(objective: SLObjective, artifacts: "list[dict]"):
    """``(population, [(t_terminal, is_bad), ...])`` for one objective."""
    events: "list[tuple[float, bool]]" = []
    for art in artifacts:
        state = art["state"]
        if objective.kind == "latency":
            if state != "done":
                continue
            bad = art["latency_s"] * 1e3 > objective.threshold_ms
        else:  # availability
            if state == "rejected":
                continue  # budget rejections are the tenant's doing
            bad = state != "done"
        events.append((art["finish_s"], bad))
    events.sort(key=lambda e: e[0])
    return len(events), events


def evaluate_slo(spec: SLOSpec, report: Any) -> SLOReport:
    """Judge every objective in *spec* against a finished serve run.

    *report* is a :class:`~repro.serve.service.ServiceReport` or its
    ``to_dict()`` form.
    """
    data = report if isinstance(report, dict) else report.to_dict()
    artifacts = data["jobs"]
    makespan = float(data["makespan_s"])
    window = max(spec.window_frac * makespan, 1e-12)

    results: "list[ObjectiveResult]" = []
    for objective in spec.objectives:
        population, events = _bad_events(objective, artifacts)
        allowed = (1.0 - objective.target) * population
        bad_times = [t for t, bad in events if bad]
        bad = len(bad_times)

        alerts: "list[dict]" = []
        if allowed > 0 and makespan > 0:
            # normalized burn rate: fraction of budget consumed in the
            # window, divided by the window's share of the run.  1.0 =
            # spending the budget exactly over the full run.
            exhausted_at: "float | None" = None
            alarming = False
            lo = 0
            for i, t in enumerate(bad_times):
                while bad_times[lo] < t - window:
                    lo += 1
                in_window = i - lo + 1
                rate = (in_window / allowed) / (window / makespan)
                if rate > spec.alert_burn_rate:
                    if not alarming:  # rising edge only
                        alerts.append({
                            "t": t, "type": "burn",
                            "burn_rate": rate, "bad": i + 1,
                        })
                    alarming = True
                else:
                    alarming = False
                if exhausted_at is None and i + 1 > allowed:
                    exhausted_at = t
            if exhausted_at is not None:
                alerts.append({
                    "t": exhausted_at, "type": "exhausted",
                    "burn_rate": None, "bad": bad,
                })
        elif bad:
            # zero budget (target == 1.0 or empty population): any bad
            # job exhausts it immediately
            alerts.append({
                "t": bad_times[0], "type": "exhausted",
                "burn_rate": None, "bad": bad,
            })

        results.append(ObjectiveResult(
            objective=objective,
            population=population,
            bad=bad,
            allowed_bad=allowed,
            budget_consumed=(bad / allowed) if allowed > 0 else (
                0.0 if bad == 0 else float("inf")
            ),
            ok=bad <= allowed,
            alerts=alerts,
        ))

    return SLOReport(
        spec_name=spec.name, makespan_s=makespan, results=results,
    )
