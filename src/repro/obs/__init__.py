"""Unified observability over ``repro.trace``/``repro.profile``/``repro.serve``.

The serve layer (PRs 8-9) makes scheduling decisions whose quality was
only visible as end-of-run totals.  This package turns a run into
*over-time* evidence, all on the **simulated clock**:

* :class:`SeriesRegistry` + :class:`StreamingHistogram`
  (``timeseries``) — counter/gauge time series and log-bucket latency
  sketches with provable quantile error (``sqrt(growth) - 1``);
* :func:`job_timeline` (``timeline``) — every job's decision history
  folded into a contiguous phase decomposition that spans its
  end-to-end latency exactly;
* :class:`ObsRecorder` (``recorder``) — the ``SccService(observer=...)``
  hook that samples the control plane as it runs;
* :func:`export_perfetto` (``perfetto``) — one ``trace.json`` for
  https://ui.perfetto.dev: worker tracks, queue lanes, per-job phase
  lanes, and data-plane kernel spans correlated by job id;
* :class:`SLOSpec` + :func:`evaluate_slo` (``slo``) — declarative
  latency/availability objectives with error-budget burn alerts, wired
  to the ``repro obs slo`` CLI and the ``obs-slo`` CI gate.

``repro.serve`` never imports this package — the observer hook is
duck-typed — so the control plane stays observability-agnostic.  See
``docs/observability.md`` §10.
"""

from .timeseries import Sample, SeriesRegistry, StreamingHistogram
from .timeline import PHASE_OF_DECISION, JobTimeline, Segment, job_timeline
from .recorder import BREAKER_STATE_LEVELS, ObsRecorder
from .perfetto import dump_perfetto, export_perfetto
from .slo import (
    ObjectiveResult,
    SLObjective,
    SLOReport,
    SLOSpec,
    evaluate_slo,
)

__all__ = [
    "Sample",
    "SeriesRegistry",
    "StreamingHistogram",
    "Segment",
    "JobTimeline",
    "PHASE_OF_DECISION",
    "job_timeline",
    "ObsRecorder",
    "BREAKER_STATE_LEVELS",
    "export_perfetto",
    "dump_perfetto",
    "SLObjective",
    "SLOSpec",
    "ObjectiveResult",
    "SLOReport",
    "evaluate_slo",
]
