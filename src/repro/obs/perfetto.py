"""Chrome-trace / Perfetto export of a serve run.

:func:`export_perfetto` renders one finished
:class:`~repro.serve.service.ServiceReport` (plus, optionally, an
:class:`~repro.obs.recorder.ObsRecorder`'s time series) into a single
Chrome Trace Event JSON object that Perfetto (https://ui.perfetto.dev)
and ``chrome://tracing`` load directly:

* **worker tracks** (pid 1, one tid per worker slot) — one complete
  ``"X"`` slice per execution attempt, crashed attempts flagged in
  ``args``; for DONE solve jobs the attempt's data-plane trace is
  nested *inside* the slice: every tracer span becomes a child slice,
  linearly rescaled from the tracer clock into the attempt's simulated
  window, with the span's aggregated :class:`LaunchRecord` counter
  deltas in ``args`` — job id correlated down to individual kernel
  charges.
* **queue lanes** (pid 2, one tid per graph) — an async ``"b"``/``"e"``
  pair per queue residency, id-keyed by job.
* **job lanes** (pid 3, one tid per job) — the job's phase timeline
  (admission/queued/execute/backoff/...) as async pairs; each event's
  ``args`` carries the *exact* simulated-second endpoints (``t0``,
  ``t1``) because the µs-integer ``ts`` field cannot be bit-exact.
* **counter tracks** (pid 0) — ``"C"`` events from the recorder's
  simulated-clock series (queue depth, WIP, cache hit rate, ...).

All ``ts``/``dur`` are simulated microseconds (Chrome's native unit).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .timeline import job_timeline

__all__ = ["export_perfetto", "dump_perfetto"]

_US = 1e6

_PID_COUNTERS = 0
_PID_WORKERS = 1
_PID_QUEUES = 2
_PID_JOBS = 3

#: LaunchRecord counter-delta fields aggregated into span args.
_LAUNCH_FIELDS = (
    "kernel_launches",
    "global_barriers",
    "edge_work",
    "vertex_work",
    "bytes_moved",
    "atomics",
    "serial_work",
    "rounds",
    "blocks_scheduled",
    "bytes_streamed",
)


def _meta(pid: int, name: str, tid: "int | None" = None,
          tname: "str | None" = None) -> "list[dict]":
    events = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": name},
    }]
    if tid is not None:
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": tname or str(tid)},
        })
    return events


def _attempt_slices(art: "dict[str, Any]") -> "list[dict]":
    """Worker ``X`` slices for one job's executed attempts."""
    events: "list[dict]" = []
    for detail in art["attempts_detail"]:
        t0 = detail.get("t_dispatch")
        if t0 is None:
            continue  # cache hits / coalesced completions never ran
        busy_s = detail["service_s"] + detail.get("delay_s", 0.0)
        events.append({
            "ph": "X",
            "name": f"job {art['id']} {art['kind']} a{detail['attempt']}",
            "cat": "attempt",
            "pid": _PID_WORKERS,
            "tid": detail["worker"],
            "ts": t0 * _US,
            "dur": busy_s * _US,
            "args": {
                "job": art["id"],
                "tenant": art["tenant"],
                "workload": art["workload"],
                "attempt": detail["attempt"],
                "crashed": bool(detail.get("crashed")),
                "t0": t0,
                "t1": t0 + busy_s,
                "charges": detail.get("charges", {}),
            },
        })
    return events


def _span_slices(job: Any) -> "list[dict]":
    """Data-plane spans of a DONE solve job, nested in its last attempt.

    The tracer runs on its own clock; spans are linearly rescaled into
    the attempt's simulated ``[t_dispatch, t_dispatch + service_s]``
    window so nesting and proportions survive, with each span's
    aggregated launch-ledger deltas attached.
    """
    result = getattr(job, "result", None)
    trace = getattr(result, "trace", None)
    if trace is None or not trace.spans:
        return []
    executed = [d for d in job.attempts_detail if "t_dispatch" in d
                and not d.get("crashed")]
    if not executed:
        return []
    detail = executed[-1]
    win0 = detail["t_dispatch"]
    win_s = detail["service_s"]
    closed = [s for s in trace.spans if s.closed]
    if not closed:
        return []
    lo = min(s.t_start for s in closed)
    hi = max(s.t_end for s in closed)
    scale = (win_s / (hi - lo)) if hi > lo else 0.0

    charges: "dict[int, dict[str, int]]" = {}
    for rec in trace.launches:
        if rec.span_id is None:
            continue
        agg = charges.setdefault(rec.span_id, {})
        for name in _LAUNCH_FIELDS:
            value = getattr(rec, name)
            if value:
                agg[name] = agg.get(name, 0) + value

    events: "list[dict]" = []
    for span in closed:
        t0 = win0 + (span.t_start - lo) * scale
        dur = span.duration * scale
        args: "dict[str, Any]" = {"job": job.id, "depth": span.depth}
        if span.span_id in charges:
            args["launches"] = charges[span.span_id]
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": "span",
            "pid": _PID_WORKERS,
            "tid": detail["worker"],
            "ts": t0 * _US,
            "dur": dur * _US,
            "args": args,
        })
    return events


def export_perfetto(report: Any, *, recorder: Any = None) -> "dict[str, Any]":
    """Render a serve run as a Chrome Trace Event JSON object.

    *report* is a :class:`~repro.serve.service.ServiceReport`;
    *recorder* (optional) an :class:`~repro.obs.recorder.ObsRecorder`
    whose time series become counter tracks.
    """
    events: "list[dict]" = []
    events += _meta(_PID_COUNTERS, "service counters")
    events += _meta(_PID_QUEUES, "graph queues")
    events += _meta(_PID_JOBS, "job phases")

    workers = (report.workers or {}).get("workers", [])
    events += _meta(_PID_WORKERS, "workers")
    for w in workers:
        events += _meta(_PID_WORKERS, "workers", tid=w["id"],
                        tname=f"worker {w['id']}")

    graph_tids: "dict[str, int]" = {}
    for job in report.jobs:
        art = job.artifact()
        events += _attempt_slices(art)
        events += _span_slices(job)

        graph = art["graph"]
        if graph not in graph_tids:
            graph_tids[graph] = len(graph_tids)
            events += _meta(_PID_QUEUES, "graph queues",
                            tid=graph_tids[graph], tname=f"queue {graph}")

        if job.terminal:
            tl = job_timeline(art)
            events += _meta(_PID_JOBS, "job phases", tid=art["id"],
                            tname=f"job {art['id']} ({art['workload']})")
            for seg in tl.segments:
                common = {
                    "cat": "job-phase",
                    "id": str(art["id"]),
                    "pid": _PID_JOBS,
                    "tid": art["id"],
                }
                events.append({
                    "ph": "b", "name": seg.phase, "ts": seg.t0 * _US,
                    "args": {"t0": seg.t0, "t1": seg.t1,
                             "state": art["state"]},
                    **common,
                })
                events.append({
                    "ph": "e", "name": seg.phase, "ts": seg.t1 * _US,
                    "args": {}, **common,
                })
                if seg.phase == "queued":
                    qcommon = {
                        "cat": "queue",
                        "id": str(art["id"]),
                        "pid": _PID_QUEUES,
                        "tid": graph_tids[graph],
                    }
                    events.append({
                        "ph": "b", "name": f"job {art['id']}",
                        "ts": seg.t0 * _US,
                        "args": {"t0": seg.t0, "t1": seg.t1}, **qcommon,
                    })
                    events.append({
                        "ph": "e", "name": f"job {art['id']}",
                        "ts": seg.t1 * _US, "args": {}, **qcommon,
                    })

    if recorder is not None:
        for s in recorder.registry.samples:
            events.append({
                "ph": "C",
                "name": s.series,
                "pid": _PID_COUNTERS,
                "tid": 0,
                "ts": s.t * _US,
                "args": {"value": s.value},
            })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "makespan_s": report.makespan_s,
            "jobs": len(report.jobs),
        },
    }


def dump_perfetto(report: Any, path: "str | Path", *,
                  recorder: Any = None) -> "dict[str, Any]":
    """Write the Chrome-trace JSON to *path*; returns the object."""
    obj = export_perfetto(report, recorder=recorder)
    Path(path).write_text(json.dumps(obj), encoding="utf-8")
    return obj
