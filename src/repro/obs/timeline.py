"""Per-job lifecycle timelines: decompose latency into phase segments.

Every :class:`~repro.serve.jobs.Job` already carries its full decision
history (``job.decisions``: timestamped control-plane decisions from
submit to terminal).  This module folds that history into a
:class:`JobTimeline` — an ordered, non-overlapping, **contiguous**
sequence of named phase segments:

    SUBMIT → admission → queued → execute → (backoff → admission →
    queued → execute)* → finalize → TERMINAL

Exactness is structural, not arithmetic: consecutive segments *share*
their breakpoint floats (``seg[i].t1 is seg[i+1].t0`` bit-for-bit), the
first segment starts at ``submit_s`` and the last ends at ``finish_s``.
So the decomposition "sums" to the end-to-end latency exactly — there
is no telescoping float error to accumulate, because nothing is summed
to verify it: the endpoints are the latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["PHASE_OF_DECISION", "Segment", "JobTimeline", "job_timeline"]

#: Phase the job is in *after* each control-plane decision.  Terminal
#: decisions (``done``/``rejected``/``shed``/``dead-letter`` written by
#: ``Job.finish``) end the timeline and contribute no segment.
PHASE_OF_DECISION = {
    "submit": "admission",            # arrival -> admission verdict
    "reject-budget": "finalize",
    "admit": "queued",
    "retry": "admission",             # re-entering admission after backoff
    "dispatch": "execute",
    "crash": "crashed",               # zero-width marker before backoff
    "retry-scheduled": "backoff",
    "cache_hit": "finalize",
    "coalesce_attach": "coalesced",   # riding on a leader's execution
    "coalesce_merge": "finalize",
    "coalesce_requeue": "queued",
    "complete": "finalize",
    "shed": "finalize",
    "dead-letter": "finalize",
    "done": "finalize",
    "rejected": "finalize",
}


@dataclass(frozen=True)
class Segment:
    """One contiguous phase of a job's life, ``[t0, t1]`` simulated s."""

    phase: str
    t0: float
    t1: float

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise ValueError(
                f"segment {self.phase} runs backwards"
                f" ({self.t0} -> {self.t1})"
            )

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> "dict[str, Any]":
        return {"phase": self.phase, "t0": self.t0, "t1": self.t1}


@dataclass(frozen=True)
class JobTimeline:
    """A terminal job's latency decomposed into contiguous segments."""

    job_id: int
    tenant: str
    workload: str
    state: str
    submit_s: float
    finish_s: float
    segments: "tuple[Segment, ...]"

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError(f"job {self.job_id}: empty timeline")
        segs = self.segments
        if segs[0].t0 != self.submit_s:
            raise ValueError(
                f"job {self.job_id}: timeline starts at {segs[0].t0},"
                f" not submit_s={self.submit_s}"
            )
        if segs[-1].t1 != self.finish_s:
            raise ValueError(
                f"job {self.job_id}: timeline ends at {segs[-1].t1},"
                f" not finish_s={self.finish_s}"
            )
        for a, b in zip(segs, segs[1:]):
            if a.t1 != b.t0:
                raise ValueError(
                    f"job {self.job_id}: gap/overlap between"
                    f" {a.phase}@{a.t1} and {b.phase}@{b.t0}"
                )
        for s in segs:
            if s.t1 < s.t0:
                raise ValueError(
                    f"job {self.job_id}: segment {s.phase} runs backwards"
                    f" ({s.t0} -> {s.t1})"
                )

    @property
    def latency_s(self) -> float:
        """End-to-end latency; equals the segment span by construction."""
        return self.finish_s - self.submit_s

    def by_phase(self) -> "dict[str, float]":
        """Total seconds spent in each phase."""
        out: "dict[str, float]" = {}
        for s in self.segments:
            out[s.phase] = out.get(s.phase, 0.0) + s.duration_s
        return out

    def as_dict(self) -> "dict[str, Any]":
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "workload": self.workload,
            "state": self.state,
            "submit_s": self.submit_s,
            "finish_s": self.finish_s,
            "segments": [s.as_dict() for s in self.segments],
        }


def job_timeline(job: Any) -> JobTimeline:
    """Fold a terminal job's decision history into a :class:`JobTimeline`.

    Accepts a live :class:`~repro.serve.jobs.Job` or its
    :meth:`~repro.serve.jobs.Job.artifact` dict.  Raises ``ValueError``
    for jobs still in flight (no terminal decision yet) or for decision
    names this module does not know (fail loud: an unknown decision
    means the service grew a phase the timeline would silently lose).
    """
    art = job if isinstance(job, dict) else job.artifact()
    finish_s = art.get("finish_s")
    if finish_s is None:
        raise ValueError(f"job {art.get('id')} is not terminal yet")
    decisions = art["decisions"]
    if not decisions:
        raise ValueError(f"job {art['id']} has no decision history")
    submit_s = art["submit_s"]

    raw: "list[Segment]" = []
    # decision i opens the phase that lasts until decision i+1; the
    # final (terminal) decision closes the timeline at finish_s.
    for cur, nxt in zip(decisions, decisions[1:]):
        name = cur["decision"]
        phase = PHASE_OF_DECISION.get(name)
        if phase is None:
            raise ValueError(
                f"job {art['id']}: unknown decision {name!r} at t={cur['t']}"
            )
        raw.append(Segment(phase=phase, t0=cur["t"], t1=nxt["t"]))

    if not raw:
        # single-decision history cannot happen (finish always follows
        # at least a submit), but guard with a zero-width admission span
        raw.append(Segment(phase="admission", t0=submit_s, t1=finish_s))

    # merge adjacent same-phase segments (shared breakpoints preserved),
    # then drop zero-width ones — removal keeps contiguity because a
    # zero-width segment's endpoints are the same float.
    merged: "list[Segment]" = []
    for seg in raw:
        if merged and merged[-1].phase == seg.phase:
            merged[-1] = Segment(phase=seg.phase, t0=merged[-1].t0, t1=seg.t1)
        else:
            merged.append(seg)
    slim = [s for s in merged if s.t1 != s.t0]
    if not slim:  # zero-latency job: keep one zero-width segment
        slim = [merged[0]] if len(merged) == 1 else [
            Segment(phase=merged[0].phase, t0=submit_s, t1=finish_s)
        ]

    return JobTimeline(
        job_id=art["id"],
        tenant=art["tenant"],
        workload=art["workload"],
        state=art["state"],
        submit_s=submit_s,
        finish_s=finish_s,
        segments=tuple(slim),
    )
