"""Legacy-VTK export of meshes and per-element fields.

``write_vtk(path, mesh, cell_data={...})`` writes an ASCII legacy VTK
unstructured grid that ParaView/VisIt open directly.  The flagship use is
visualizing SCC structure on a mesh::

    from repro import ecl_scc
    from repro.mesh import toroid_hex, sweep_graphs, write_vtk

    mesh = toroid_hex(4)
    omega, graph = sweep_graphs(mesh, 1)[0]
    labels = ecl_scc(graph).labels
    write_vtk("toroid_sccs.vtk", mesh, cell_data={"scc": labels})

2-D meshes embedded in 2-D are padded with a zero z coordinate.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Union

import numpy as np

from ..errors import MeshError
from .core import Mesh
from .elements import ElementType

__all__ = ["write_vtk", "VTK_CELL_TYPES"]

#: legacy VTK cell-type codes per element shape
VTK_CELL_TYPES = {
    ElementType.QUAD: 9,
    ElementType.HEX: 12,
    ElementType.TET: 10,
    ElementType.WEDGE: 13,
}


def write_vtk(
    path: Union[str, Path],
    mesh: Mesh,
    *,
    cell_data: "Mapping[str, np.ndarray] | None" = None,
    use_curved_points: bool = True,
) -> None:
    """Write *mesh* (and optional per-element scalar fields) as legacy VTK.

    ``use_curved_points`` exports the transformed node coordinates;
    pass False to inspect the straight base geometry.
    """
    points = mesh.points if use_curved_points else mesh.base_points
    if points.shape[1] == 2:
        points = np.hstack([points, np.zeros((points.shape[0], 1))])
    cells = mesh.cells
    ne, k = cells.shape
    ctype = VTK_CELL_TYPES[mesh.element_type]

    lines: "list[str]" = [
        "# vtk DataFile Version 3.0",
        f"repro mesh {mesh.name or 'unnamed'}",
        "ASCII",
        "DATASET UNSTRUCTURED_GRID",
        f"POINTS {points.shape[0]} double",
    ]
    lines.extend(" ".join(f"{x:.10g}" for x in p) for p in points)
    lines.append(f"CELLS {ne} {ne * (k + 1)}")
    lines.extend(
        f"{k} " + " ".join(str(int(x)) for x in row) for row in cells
    )
    lines.append(f"CELL_TYPES {ne}")
    lines.extend([str(ctype)] * ne)

    if cell_data:
        lines.append(f"CELL_DATA {ne}")
        for name, values in cell_data.items():
            values = np.asarray(values)
            if values.shape != (ne,):
                raise MeshError(
                    f"cell_data[{name!r}] must have one value per element"
                    f" ({ne}), got shape {values.shape}"
                )
            kind = "int" if values.dtype.kind in "iu" else "double"
            lines.append(f"SCALARS {name} {kind} 1")
            lines.append("LOOKUP_TABLE default")
            if kind == "int":
                lines.extend(str(int(v)) for v in values)
            else:
                lines.extend(f"{float(v):.10g}" for v in values)

    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
