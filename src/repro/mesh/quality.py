"""Mesh inspection: boundary faces and element-quality metrics.

Production sweep codes need the boundary faces (inflow/outflow
conditions enter there) and sanity metrics on element shapes —
especially here, where curved transforms and deterministic jitter could
silently invert elements and corrupt the sweep-graph construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import VERTEX_DTYPE
from .core import Mesh
from .elements import FACES, ElementType

__all__ = ["BoundaryFaces", "boundary_faces", "MeshQuality", "mesh_quality"]


@dataclass(frozen=True)
class BoundaryFaces:
    """Faces owned by exactly one element (the domain boundary)."""

    element: np.ndarray          # (nb,) owning element
    nodes: np.ndarray            # (nb, max_nodes) padded with -1
    node_counts: np.ndarray      # (nb,)

    @property
    def num_faces(self) -> int:
        return self.element.size


def boundary_faces(mesh: Mesh) -> BoundaryFaces:
    """Extract all boundary faces (single-owner faces) of *mesh*.

    Faces glued by an identification record are interior and excluded —
    on the *recorded* (elem-A) side.  The partner element's own boundary
    face is not linked to the record (identifications are single-sided,
    like an MFEM periodic master/slave pair), so it still appears here;
    callers that need the fully-glued boundary subtract one face per
    identification record.
    """
    face_defs = FACES[mesh.element_type]
    ne = mesh.num_elements
    max_nodes = max(len(f) for f in face_defs)
    parts, counts_parts = [], []
    for f in face_defs:
        block = mesh.cells[:, list(f)]
        if block.shape[1] < max_nodes:
            pad = np.full((ne, max_nodes - block.shape[1]), -1, dtype=VERTEX_DTYPE)
            block = np.hstack([block, pad])
        parts.append(block)
        counts_parts.append(np.full(ne, len(f), dtype=VERTEX_DTYPE))
    nf_per = len(face_defs)
    all_nodes = np.stack(parts, axis=1).reshape(ne * nf_per, max_nodes)
    all_counts = np.stack(counts_parts, axis=1).reshape(ne * nf_per)
    owner = np.repeat(np.arange(ne, dtype=VERTEX_DTYPE), nf_per)

    key = np.sort(all_nodes, axis=1)
    order = np.lexsort(key.T[::-1])
    key_sorted = key[order]
    same_prev = np.zeros(order.size, dtype=bool)
    same_prev[1:] = np.all(key_sorted[1:] == key_sorted[:-1], axis=1)
    same_next = np.zeros(order.size, dtype=bool)
    same_next[:-1] = same_prev[1:]
    solo = ~(same_prev | same_next)
    picked = order[solo]
    # exclude faces glued by identification (they are interior)
    if mesh.identified_faces is not None:
        _, _, inodes, icounts = mesh.identified_faces
        pad = max_nodes - inodes.shape[1]
        if pad > 0:
            inodes = np.hstack(
                [inodes, np.full((inodes.shape[0], pad), -1, dtype=VERTEX_DTYPE)]
            )
        glued = np.sort(inodes, axis=1)
        n = max(mesh.num_points, 1)
        enc = lambda rows: (rows.astype(np.int64) + 1) @ (
            (np.int64(n + 1)) ** np.arange(max_nodes, dtype=np.int64)
        )
        glued_keys = set(enc(glued).tolist())
        keep = np.asarray(
            [int(k) not in glued_keys for k in enc(key[picked])], dtype=bool
        )
        picked = picked[keep]
    return BoundaryFaces(
        element=owner[picked],
        nodes=all_nodes[picked],
        node_counts=all_counts[picked],
    )


@dataclass(frozen=True)
class MeshQuality:
    """Summary shape metrics over the (curved) elements."""

    min_edge_length: float
    max_edge_length: float
    max_aspect_ratio: float
    inverted_elements: int

    @property
    def is_valid(self) -> bool:
        return self.inverted_elements == 0 and self.min_edge_length > 0


def mesh_quality(mesh: Mesh) -> MeshQuality:
    """Edge-length statistics and an inversion check.

    Inversion test: the signed corner-Jacobian determinant of every
    element is compared against the mesh's majority orientation; an
    element is *inverted* when its sign differs from the majority (or is
    zero).  A globally negatively-oriented parametric mesh is fine — the
    sweep construction only needs consistency — but sign flips inside
    one mesh mean jitter or a transform has folded elements over.
    """
    pts = mesh.points
    cells = mesh.cells
    et = mesh.element_type
    # edge lengths: use each element's local face edges as a proxy set
    edges = set()
    for f in FACES[et]:
        ring = list(f)
        for a, b in zip(ring, ring[1:] + ring[:1]):
            if len(ring) == 2 and (b, a) in edges:
                continue
            edges.add((a, b))
    a_idx = np.asarray([e[0] for e in edges])
    b_idx = np.asarray([e[1] for e in edges])
    vec = pts[cells[:, a_idx]] - pts[cells[:, b_idx]]  # (ne, k, e)
    lengths = np.linalg.norm(vec, axis=-1)
    per_elem_min = lengths.min(axis=1)
    per_elem_max = lengths.max(axis=1)
    aspect = per_elem_max / np.maximum(per_elem_min, 1e-300)

    # corner Jacobian determinant
    if et in (ElementType.HEX,):
        j = _det3(pts, cells, 0, 1, 3, 4)
    elif et is ElementType.TET:
        j = _det3(pts, cells, 0, 1, 2, 3)
    elif et is ElementType.WEDGE:
        j = _det3(pts, cells, 0, 1, 2, 3)
    else:  # QUAD
        if mesh.embedding_dim == 2:
            v1 = pts[cells[:, 1]] - pts[cells[:, 0]]
            v2 = pts[cells[:, 3]] - pts[cells[:, 0]]
            j = v1[:, 0] * v2[:, 1] - v1[:, 1] * v2[:, 0]
        else:
            # surface quads cannot invert in-plane; use patch area
            v1 = pts[cells[:, 1]] - pts[cells[:, 0]]
            v2 = pts[cells[:, 3]] - pts[cells[:, 0]]
            j = np.linalg.norm(np.cross(v1, v2), axis=-1)
    positives = int(np.count_nonzero(j > 0))
    negatives = int(np.count_nonzero(j < 0))
    zeros = int(np.count_nonzero(j == 0))
    inverted = min(positives, negatives) + zeros
    return MeshQuality(
        min_edge_length=float(per_elem_min.min(initial=np.inf)),
        max_edge_length=float(per_elem_max.max(initial=0.0)),
        max_aspect_ratio=float(aspect.max(initial=1.0)),
        inverted_elements=inverted,
    )


def _det3(pts: np.ndarray, cells: np.ndarray, o: int, a: int, b: int, c: int) -> np.ndarray:
    va = pts[cells[:, a]] - pts[cells[:, o]]
    vb = pts[cells[:, b]] - pts[cells[:, o]]
    vc = pts[cells[:, c]] - pts[cells[:, o]]
    return np.einsum("ij,ij->i", np.cross(va, vb), vc)
