"""Reference element definitions.

Node orderings follow the VTK/MFEM convention.  ``FACES[etype]`` lists
each element face as a tuple of local node indices ordered so that the
right-hand-rule normal of the first three nodes points *outward* from the
element (verified by ``tests/test_mesh_elements.py`` on unit elements).
For 2-D elements the "faces" are edges, listed counter-clockwise so the
outward normal is the tangent rotated by -90 degrees.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["ElementType", "FACES", "ELEMENT_DIM", "NODES_PER_ELEMENT"]


class ElementType(Enum):
    """Supported element shapes (Table 4 of the paper)."""

    QUAD = "quad"
    HEX = "hex"
    TET = "tet"
    WEDGE = "wedge"


#: local node count per element type
NODES_PER_ELEMENT = {
    ElementType.QUAD: 4,
    ElementType.HEX: 8,
    ElementType.TET: 4,
    ElementType.WEDGE: 6,
}

#: topological dimension of each element type
ELEMENT_DIM = {
    ElementType.QUAD: 2,
    ElementType.HEX: 3,
    ElementType.TET: 3,
    ElementType.WEDGE: 3,
}

#: outward-oriented local faces per element type
FACES: "dict[ElementType, tuple[tuple[int, ...], ...]]" = {
    # unit quad (0,0) (1,0) (1,1) (0,1), CCW: outward edge normals
    ElementType.QUAD: ((0, 1), (1, 2), (2, 3), (3, 0)),
    # VTK hexahedron: bottom 0-3, top 4-7
    ElementType.HEX: (
        (0, 3, 2, 1),  # z- (bottom)
        (4, 5, 6, 7),  # z+ (top)
        (0, 1, 5, 4),  # y-
        (1, 2, 6, 5),  # x+
        (2, 3, 7, 6),  # y+
        (3, 0, 4, 7),  # x-
    ),
    # VTK tetrahedron
    ElementType.TET: (
        (0, 2, 1),
        (0, 1, 3),
        (1, 2, 3),
        (0, 3, 2),
    ),
    # VTK wedge: bottom triangle 0-2, top triangle 3-5
    ElementType.WEDGE: (
        (0, 2, 1),      # bottom
        (3, 4, 5),      # top
        (0, 1, 4, 3),   # quad side
        (1, 2, 5, 4),   # quad side
        (2, 0, 3, 5),   # quad side
    ),
}
