"""Sweep-graph construction (paper §4.1).

Given a mesh and a discrete ordinate Omega, build the directed graph that
orders the mesh elements for an upwind transport sweep:

* one graph vertex per mesh element;
* for every interior face between elements ``(e1, e2)`` and every face
  quadrature point ``x_i`` with outward (w.r.t. e1) normal ``n(x_i)``:
  an edge ``e1 -> e2`` if ``Omega . n(x_i) > 0``, else ``e2 -> e1``
  (the paper's exact rule);
* duplicate directions from multiple quadrature points are deduplicated,
  so a face contributes one edge — or two opposing edges when the dot
  product changes sign across the face (a *re-entrant* face, Fig. 4),
  which is precisely how cycles (SCCs) enter these graphs.

The face set and quadrature normals depend only on the mesh, so they are
computed once and reused across all ordinates via :class:`SweepGraphBuilder`.
"""

from __future__ import annotations

import numpy as np

from ..errors import MeshError
from ..graph.csr import CSRGraph
from ..types import FLOAT_DTYPE, VERTEX_DTYPE
from .core import Mesh
from .faces import FaceSet, interior_faces
from .geometry import face_quadrature_normals
from .quadrature import ordinates_for

__all__ = ["SweepGraphBuilder", "build_sweep_graph", "sweep_graphs"]


class SweepGraphBuilder:
    """Precomputes face normals once; builds one graph per ordinate."""

    def __init__(self, mesh: Mesh, *, points_per_dim: int = 2) -> None:
        self.mesh = mesh
        self.faces: FaceSet = interior_faces(mesh)
        self.normals = face_quadrature_normals(mesh, self.faces, points_per_dim)
        if self.normals.shape[-1] != mesh.embedding_dim:
            raise MeshError("normal dimension mismatch")

    @property
    def num_reentrant_candidates(self) -> int:
        """Faces whose quadrature normals are not all parallel (diagnostic)."""
        if self.normals.size == 0:
            return 0
        n = self.normals / (
            np.linalg.norm(self.normals, axis=-1, keepdims=True) + 1e-300
        )
        spread = np.linalg.norm(n - n[:, :1, :], axis=-1).max(axis=1)
        return int(np.count_nonzero(spread > 1e-9))

    def build(self, omega: np.ndarray, *, name: str = "") -> CSRGraph:
        """Sweep graph for ordinate *omega* (unit direction vector)."""
        omega = np.asarray(omega, dtype=FLOAT_DTYPE).ravel()
        if omega.size != self.mesh.embedding_dim:
            raise MeshError(
                f"ordinate must have dim {self.mesh.embedding_dim}, got {omega.size}"
            )
        dots = np.einsum("fqe,e->fq", self.normals, omega)  # (nf, q)
        forward = np.any(dots > 0.0, axis=1)   # e1 -> e2 from some point
        backward = np.any(dots <= 0.0, axis=1)  # e2 -> e1 ("otherwise" rule)
        e1, e2 = self.faces.elem1, self.faces.elem2
        src = np.concatenate([e1[forward], e2[backward]])
        dst = np.concatenate([e2[forward], e1[backward]])
        return CSRGraph.from_edges(
            src.astype(VERTEX_DTYPE, copy=False),
            dst.astype(VERTEX_DTYPE, copy=False),
            self.mesh.num_elements,
            name=name or f"{self.mesh.name}-sweep",
        )


def build_sweep_graph(mesh: Mesh, omega: np.ndarray, *, points_per_dim: int = 2) -> CSRGraph:
    """One-shot convenience wrapper around :class:`SweepGraphBuilder`."""
    return SweepGraphBuilder(mesh, points_per_dim=points_per_dim).build(omega)


def sweep_graphs(
    mesh: Mesh, num_ordinates: int, *, points_per_dim: int = 2
) -> "list[tuple[np.ndarray, CSRGraph]]":
    """Sweep graphs for a full ordinate set; returns (omega, graph) pairs."""
    builder = SweepGraphBuilder(mesh, points_per_dim=points_per_dim)
    out = []
    for i, omega in enumerate(ordinates_for(mesh.embedding_dim, num_ordinates)):
        out.append((omega, builder.build(omega, name=f"{mesh.name}-o{i}")))
    return out
