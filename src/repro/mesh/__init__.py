"""Radiative-transfer mesh substrate: geometries, ordinates, sweep graphs."""

from .elements import ELEMENT_DIM, FACES, NODES_PER_ELEMENT, ElementType
from .core import Mesh
from .faces import FaceSet, interior_faces
from .geometry import face_quadrature_normals, quadrature_points_1d, triangle_quadrature
from .quadrature import (
    level_symmetric_s4,
    level_symmetric_s6,
    ordinates_2d,
    ordinates_3d,
    ordinates_for,
)
from .transform import (
    compose,
    cylinder_map,
    klein_map,
    mobius_map,
    sinusoidal_wobble,
    torus_map,
    twist_about_z,
)
from .builders import (
    beam_hex,
    hex_to_tets,
    hex_to_wedges,
    jitter_points,
    klein_bottle,
    mobius_strip,
    parametric_hex_grid,
    parametric_quad_grid,
    star,
    structured_hex_grid,
    toroid_hex,
    toroid_wedge,
    torch_hex,
    torch_tet,
    twist_hex,
)
from .quality import BoundaryFaces, MeshQuality, boundary_faces, mesh_quality
from .unstructured import delaunay_tet_mesh, unstructured_box_tet, unstructured_torch_tet
from .refine import refine_uniform
from .vtkio import VTK_CELL_TYPES, write_vtk
from .sweepgraph import SweepGraphBuilder, build_sweep_graph, sweep_graphs

__all__ = [
    "ELEMENT_DIM",
    "FACES",
    "NODES_PER_ELEMENT",
    "ElementType",
    "Mesh",
    "FaceSet",
    "interior_faces",
    "face_quadrature_normals",
    "quadrature_points_1d",
    "triangle_quadrature",
    "level_symmetric_s4",
    "level_symmetric_s6",
    "ordinates_2d",
    "ordinates_3d",
    "ordinates_for",
    "compose",
    "cylinder_map",
    "klein_map",
    "mobius_map",
    "sinusoidal_wobble",
    "torus_map",
    "twist_about_z",
    "beam_hex",
    "hex_to_tets",
    "hex_to_wedges",
    "jitter_points",
    "klein_bottle",
    "mobius_strip",
    "parametric_hex_grid",
    "parametric_quad_grid",
    "star",
    "structured_hex_grid",
    "toroid_hex",
    "toroid_wedge",
    "torch_hex",
    "torch_tet",
    "twist_hex",
    "delaunay_tet_mesh",
    "unstructured_box_tet",
    "unstructured_torch_tet",
    "BoundaryFaces",
    "MeshQuality",
    "boundary_faces",
    "mesh_quality",
    "refine_uniform",
    "VTK_CELL_TYPES",
    "write_vtk",
    "SweepGraphBuilder",
    "build_sweep_graph",
    "sweep_graphs",
]
