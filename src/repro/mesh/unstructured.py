"""Genuinely unstructured tetrahedral meshes via Delaunay triangulation.

The torch meshes of Tables 1-2 come from an unstructured mesher; our
structured-plus-jitter surrogate reproduces their SCC statistics, but a
skeptical reader may ask whether truly unstructured connectivity behaves
differently.  This module answers that: scipy's Delaunay triangulation
of a point cloud yields an unstructured conforming tet mesh, and the
sweep graphs built on it exhibit the same scattered small-SCC structure
(asserted in ``tests/test_mesh_unstructured.py``).

Sliver handling: Delaunay triangulations of random points contain
near-degenerate tets whose face normals are numerically unstable; tets
with volume below ``min_volume_fraction`` of the median are dropped.
Orientation: scipy emits simplices with arbitrary handedness, so every
tet is permuted to positive orientation before use (the geometry code
relies on outward-by-node-order faces).
"""

from __future__ import annotations

import numpy as np

from ..errors import MeshError
from ..types import FLOAT_DTYPE, VERTEX_DTYPE
from .core import Mesh
from .elements import ElementType

__all__ = ["delaunay_tet_mesh", "unstructured_torch_tet", "unstructured_box_tet"]


def delaunay_tet_mesh(
    points: np.ndarray,
    *,
    min_volume_fraction: float = 1e-3,
    name: str = "delaunay",
) -> Mesh:
    """Tet mesh of the convex hull of *points* (scipy Delaunay).

    Raises :class:`MeshError` for degenerate inputs (fewer than 5
    non-coplanar points).
    """
    from scipy.spatial import Delaunay, QhullError

    points = np.ascontiguousarray(points, dtype=FLOAT_DTYPE)
    if points.ndim != 2 or points.shape[1] != 3:
        raise MeshError(f"points must be (n, 3), got {points.shape}")
    if points.shape[0] < 5:
        raise MeshError("need at least 5 points for a 3-D triangulation")
    try:
        tri = Delaunay(points)
    except QhullError as e:  # pragma: no cover - depends on scipy internals
        raise MeshError(f"Delaunay triangulation failed: {e}") from e
    cells = tri.simplices.astype(VERTEX_DTYPE)
    # signed volumes; fix orientation and drop slivers
    v = _signed_volumes(points, cells)
    flip = v < 0
    cells[flip] = cells[flip][:, [0, 2, 1, 3]]
    v = np.abs(v)
    med = np.median(v[v > 0]) if np.any(v > 0) else 0.0
    keep = v > min_volume_fraction * med
    if not keep.any():
        raise MeshError("all tetrahedra degenerate after sliver filtering")
    return Mesh(points, cells[keep], ElementType.TET, name=name)


def _signed_volumes(points: np.ndarray, cells: np.ndarray) -> np.ndarray:
    a = points[cells[:, 1]] - points[cells[:, 0]]
    b = points[cells[:, 2]] - points[cells[:, 0]]
    c = points[cells[:, 3]] - points[cells[:, 0]]
    return np.einsum("ij,ij->i", np.cross(a, b), c) / 6.0


def _halton(n: int, dim: int = 3) -> np.ndarray:
    """Deterministic low-discrepancy points in [0, 1)^dim (Halton)."""
    primes = (2, 3, 5)[:dim]
    out = np.empty((n, dim), dtype=FLOAT_DTYPE)
    for d, p in enumerate(primes):
        i = np.arange(1, n + 1, dtype=np.int64)
        f = np.zeros(n, dtype=FLOAT_DTYPE)
        denom = np.ones(n, dtype=FLOAT_DTYPE) * p
        x = i.copy()
        while np.any(x > 0):
            f += (x % p) / denom
            x //= p
            denom *= p
        out[:, d] = f
    return out


def unstructured_box_tet(num_points: int = 500, *, name: str = "unstructured-box") -> Mesh:
    """Unstructured tet mesh of the unit cube (Halton interior points).

    Deterministic (low-discrepancy points, no RNG) and reasonably graded.
    """
    if num_points < 8:
        raise MeshError("need at least 8 points")
    interior = _halton(num_points)
    corners = np.array(
        [[x, y, z] for x in (0.0, 1.0) for y in (0.0, 1.0) for z in (0.0, 1.0)],
        dtype=FLOAT_DTYPE,
    )
    pts = np.vstack([corners, interior])
    return delaunay_tet_mesh(pts, name=name)


def unstructured_torch_tet(
    num_points: int = 2000, *, name: str = "torch-tet-unstructured"
) -> Mesh:
    """Unstructured tet mesh of the tapered torch body.

    Halton points in cylindrical coordinates mapped to the same tapered-
    cylinder geometry as :func:`repro.mesh.builders.torch_hex`, plus hull
    rings so the boundary is covered.  The resulting sweep graphs carry
    the torch family's signature: mostly trivial SCCs with scattered
    small clusters.
    """
    if num_points < 50:
        raise MeshError("need at least 50 points for the torch geometry")
    u = _halton(num_points)
    theta = 2.0 * np.pi * u[:, 0]
    radial = 0.25 + 0.75 * np.sqrt(u[:, 1])
    z = u[:, 2]
    taper = 1.0 - 0.45 * z**2
    r = radial * taper
    pts = np.stack([r * np.cos(theta), r * np.sin(theta), 4.0 * z], axis=1)
    # boundary rings at both ends to close the hull sensibly
    ring_t = np.linspace(0, 2 * np.pi, 24, endpoint=False)
    rings = []
    for zz in (0.0, 1.0):
        tp = 1.0 - 0.45 * zz**2
        for rr in (0.25 * tp, 1.0 * tp):
            rings.append(
                np.stack(
                    [rr * np.cos(ring_t), rr * np.sin(ring_t),
                     np.full_like(ring_t, 4.0 * zz)],
                    axis=1,
                )
            )
    pts = np.vstack([pts] + rings)
    return delaunay_tet_mesh(pts, name=name)
