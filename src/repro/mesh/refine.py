"""Uniform mesh refinement.

Splits every element into 2^d children using topological midpoints
(midpoint identity is keyed by the sorted parent-node tuple, so shared
edges/faces refine consistently across neighbouring elements without any
coordinate tolerance).  This is how the paper's large meshes relate to
the MFEM sample meshes — uniform refinements of coarse geometry — and it
lets users scale any builder output up by exact factors of 8 (3-D) or 4
(2-D).

The curved-geometry ``transform`` carries over unchanged: midpoints are
created in base (straight) space and the transform continues to be
evaluated at face quadrature points, exactly like refining an
isoparametric mesh while keeping the geometric map.

Meshes with ``identified_faces`` (twist-hex, mobius, klein) are refused:
refining the identification pairing is geometry-specific, so rebuild
those at higher resolution via their builders instead.
"""

from __future__ import annotations

import numpy as np

from ..errors import MeshError
from ..types import FLOAT_DTYPE, VERTEX_DTYPE
from .core import Mesh
from .elements import ElementType

__all__ = ["refine_uniform"]


class _MidpointFactory:
    """Allocates one node per distinct sorted parent-node tuple."""

    def __init__(self, points: np.ndarray) -> None:
        self.points: "list[np.ndarray]" = [points]
        self.count = points.shape[0]
        self.cache: "dict[tuple[int, ...], int]" = {}
        self._base = points

    def mid(self, cells: np.ndarray, locals_: "tuple[int, ...]") -> np.ndarray:
        """Vectorized midpoint nodes for every cell's node subset.

        ``cells`` is the (ne, k) connectivity; ``locals_`` the local node
        indices whose average defines the new point.  Returns (ne,) node
        IDs, deduplicated across elements.
        """
        sub = cells[:, list(locals_)]
        keys = np.sort(sub, axis=1)
        uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
        ids = np.empty(uniq.shape[0], dtype=VERTEX_DTYPE)
        new_pts = []
        centroids = self._base[uniq].mean(axis=1)  # (u, e)
        for i in range(uniq.shape[0]):
            key = tuple(int(x) for x in uniq[i])
            nid = self.cache.get(key)
            if nid is None:
                nid = self.count
                self.cache[key] = nid
                self.count += 1
                new_pts.append(centroids[i])
            ids[i] = nid
        if new_pts:
            self.points.append(np.asarray(new_pts, dtype=FLOAT_DTYPE))
        return ids[inverse]

    def all_points(self) -> np.ndarray:
        return np.concatenate(self.points, axis=0)


def refine_uniform(mesh: Mesh, times: int = 1) -> Mesh:
    """Refine *mesh* uniformly *times* times."""
    if times < 0:
        raise MeshError(f"times must be >= 0, got {times}")
    out = mesh
    for _ in range(times):
        out = _refine_once(out)
    return out


def _refine_once(mesh: Mesh) -> Mesh:
    if mesh.identified_faces is not None:
        raise MeshError(
            "cannot uniformly refine a mesh with identified faces; rebuild"
            " it at higher resolution via its builder"
        )
    fac = _MidpointFactory(mesh.base_points)
    c = mesh.cells
    et = mesh.element_type
    if et is ElementType.QUAD:
        children = _refine_quads(c, fac)
    elif et is ElementType.HEX:
        children = _refine_hexes(c, fac)
    elif et is ElementType.TET:
        children = _refine_tets(c, fac)
    elif et is ElementType.WEDGE:
        children = _refine_wedges(c, fac)
    else:  # pragma: no cover - enum is closed
        raise MeshError(f"unsupported element type {et}")
    return Mesh(
        fac.all_points(),
        children,
        et,
        transform=mesh.transform,
        order=mesh.order,
        name=mesh.name,
    )


def _refine_quads(c: np.ndarray, fac: _MidpointFactory) -> np.ndarray:
    m01 = fac.mid(c, (0, 1))
    m12 = fac.mid(c, (1, 2))
    m23 = fac.mid(c, (2, 3))
    m30 = fac.mid(c, (3, 0))
    ctr = fac.mid(c, (0, 1, 2, 3))
    kids = [
        (c[:, 0], m01, ctr, m30),
        (m01, c[:, 1], m12, ctr),
        (ctr, m12, c[:, 2], m23),
        (m30, ctr, m23, c[:, 3]),
    ]
    return np.stack([np.stack(k, axis=1) for k in kids], axis=1).reshape(-1, 4)


def _refine_hexes(c: np.ndarray, fac: _MidpointFactory) -> np.ndarray:
    # a refined structured hex is a 3x3x3 lattice of corner/edge/face/center
    # nodes; build the lattice per element then emit the 8 children
    n = {}
    corners = {(0, 0, 0): 0, (2, 0, 0): 1, (2, 2, 0): 2, (0, 2, 0): 3,
               (0, 0, 2): 4, (2, 0, 2): 5, (2, 2, 2): 6, (0, 2, 2): 7}
    for pos, local in corners.items():
        n[pos] = c[:, local]
    # edges: the 12 hex edges in VTK order
    edges = [
        (0, 1), (1, 2), (2, 3), (3, 0),
        (4, 5), (5, 6), (6, 7), (7, 4),
        (0, 4), (1, 5), (2, 6), (3, 7),
    ]
    inv = {v: k for k, v in corners.items()}
    for a, b in edges:
        pa, pb = inv[a], inv[b]
        pos = tuple((x + y) // 2 for x, y in zip(pa, pb))
        n[pos] = fac.mid(c, (a, b))
    # faces
    from .elements import FACES

    for face in FACES[ElementType.HEX]:
        pts = [inv[l] for l in face]
        pos = tuple(sum(p[i] for p in pts) // 4 for i in range(3))
        n[pos] = fac.mid(c, face)
    # center
    n[(1, 1, 1)] = fac.mid(c, tuple(range(8)))

    def cell(x, y, z):
        # child hex with lower corner (x, y, z) of the 2x2x2 block
        return [
            n[(x, y, z)], n[(x + 1, y, z)], n[(x + 1, y + 1, z)], n[(x, y + 1, z)],
            n[(x, y, z + 1)], n[(x + 1, y, z + 1)], n[(x + 1, y + 1, z + 1)],
            n[(x, y + 1, z + 1)],
        ]

    kids = [cell(x, y, z) for x in (0, 1) for y in (0, 1) for z in (0, 1)]
    return np.stack(
        [np.stack(k, axis=1) for k in kids], axis=1
    ).reshape(-1, 8)


def _refine_tets(c: np.ndarray, fac: _MidpointFactory) -> np.ndarray:
    m01 = fac.mid(c, (0, 1))
    m02 = fac.mid(c, (0, 2))
    m03 = fac.mid(c, (0, 3))
    m12 = fac.mid(c, (1, 2))
    m13 = fac.mid(c, (1, 3))
    m23 = fac.mid(c, (2, 3))
    v0, v1, v2, v3 = c[:, 0], c[:, 1], c[:, 2], c[:, 3]
    # 4 corner tets + 4 tets from the interior octahedron (diagonal m01-m23)
    kids = [
        (v0, m01, m02, m03),
        (m01, v1, m12, m13),
        (m02, m12, v2, m23),
        (m03, m13, m23, v3),
        (m01, m12, m02, m23),
        (m01, m13, m12, m23),
        (m01, m03, m13, m23),
        (m01, m02, m03, m23),
    ]
    return np.stack([np.stack(k, axis=1) for k in kids], axis=1).reshape(-1, 4)


def _refine_wedges(c: np.ndarray, fac: _MidpointFactory) -> np.ndarray:
    # bottom triangle (0,1,2), top (3,4,5)
    b01 = fac.mid(c, (0, 1))
    b12 = fac.mid(c, (1, 2))
    b20 = fac.mid(c, (2, 0))
    t34 = fac.mid(c, (3, 4))
    t45 = fac.mid(c, (4, 5))
    t53 = fac.mid(c, (5, 3))
    v03 = fac.mid(c, (0, 3))
    v14 = fac.mid(c, (1, 4))
    v25 = fac.mid(c, (2, 5))
    q014 = fac.mid(c, (0, 1, 4, 3))
    q125 = fac.mid(c, (1, 2, 5, 4))
    q203 = fac.mid(c, (2, 0, 3, 5))
    v = [c[:, i] for i in range(6)]
    # lower layer: bottom triangle 4-split extruded to the mid layer
    lower = [
        (v[0], b01, b20, v03, q014, q203),
        (b01, v[1], b12, q014, v14, q125),
        (b20, b12, v[2], q203, q125, v25),
        (b01, b12, b20, q014, q125, q203),
    ]
    upper = [
        (v03, q014, q203, v[3], t34, t53),
        (q014, v14, q125, t34, v[4], t45),
        (q203, q125, v25, t53, t45, v[5]),
        (q014, q125, q203, t34, t45, t53),
    ]
    kids = lower + upper
    return np.stack([np.stack(k, axis=1) for k in kids], axis=1).reshape(-1, 6)
