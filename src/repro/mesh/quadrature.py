"""Discrete ordinates (angular quadrature directions).

Transport sweeps solve the RTE for a set of discrete directions
("ordinates"); the paper builds one sweep graph per ordinate (N_Omega
graphs per mesh).  The original work uses MFEM/level-symmetric sets; we
provide:

* :func:`ordinates_2d` — N uniformly spread unit vectors in the plane,
  offset so none aligns with a mesh axis (axis-aligned ordinates produce
  degenerate zero dot products on structured meshes);
* :func:`ordinates_3d` — a deterministic Fibonacci-sphere set, the
  standard way to spread N near-uniform directions for arbitrary N
  (level-symmetric S_N sets only exist for specific counts);
* :func:`level_symmetric_s4` / :func:`level_symmetric_s6` — classic
  octant-symmetric S_4 (24 directions) and S_6 (48) sets for users who
  want textbook quadratures.
"""

from __future__ import annotations

import numpy as np

from ..errors import MeshError
from ..types import FLOAT_DTYPE

__all__ = [
    "ordinates_2d",
    "ordinates_3d",
    "level_symmetric_s4",
    "level_symmetric_s6",
    "ordinates_for",
]


def ordinates_2d(n: int, *, offset: float = 0.15) -> np.ndarray:
    """``(n, 2)`` unit vectors at uniformly spaced angles plus an offset."""
    if n < 1:
        raise MeshError(f"need n >= 1 ordinates, got {n}")
    theta = offset + 2.0 * np.pi * np.arange(n) / n
    return np.stack([np.cos(theta), np.sin(theta)], axis=1).astype(FLOAT_DTYPE)


def ordinates_3d(n: int) -> np.ndarray:
    """``(n, 3)`` Fibonacci-sphere unit vectors (deterministic, well spread)."""
    if n < 1:
        raise MeshError(f"need n >= 1 ordinates, got {n}")
    i = np.arange(n, dtype=FLOAT_DTYPE) + 0.5
    phi = np.pi * (3.0 - np.sqrt(5.0)) * i  # golden angle
    z = 1.0 - 2.0 * i / n
    r = np.sqrt(np.maximum(0.0, 1.0 - z * z))
    pts = np.stack([r * np.cos(phi), r * np.sin(phi), z], axis=1)
    # tiny fixed rotation so no ordinate is exactly axis-aligned
    return (pts @ _rotation_matrix()).astype(FLOAT_DTYPE)


def _rotation_matrix() -> np.ndarray:
    a, b = 0.3, 0.2  # fixed small angles
    rz = np.array(
        [[np.cos(a), -np.sin(a), 0], [np.sin(a), np.cos(a), 0], [0, 0, 1]]
    )
    rx = np.array(
        [[1, 0, 0], [0, np.cos(b), -np.sin(b)], [0, np.sin(b), np.cos(b)]]
    )
    return rz @ rx


def level_symmetric_s4() -> np.ndarray:
    """S_4 level-symmetric set: 3 direction cosines per octant x 8 = 24."""
    mu = 0.3500212  # standard S4 cosine
    eta = np.sqrt(1.0 - 2.0 * mu * mu)
    base = np.array([[mu, mu, eta], [mu, eta, mu], [eta, mu, mu]])
    return _octant_expand(base)


def level_symmetric_s6() -> np.ndarray:
    """S_6 level-symmetric set: 6 directions per octant x 8 = 48."""
    m1, m2 = 0.2666355, 0.6815076
    m3 = np.sqrt(1.0 - 2.0 * m1 * m1)  # completes the (m1, m1, m3) triple
    base = np.array(
        [
            [m1, m1, m3],
            [m1, m3, m1],
            [m3, m1, m1],
            [m1, m2, m2],
            [m2, m1, m2],
            [m2, m2, m1],
        ]
    )
    return _octant_expand(base)


def _octant_expand(base: np.ndarray) -> np.ndarray:
    signs = np.array(
        [[sx, sy, sz] for sx in (1, -1) for sy in (1, -1) for sz in (1, -1)],
        dtype=FLOAT_DTYPE,
    )
    out = (base[None, :, :] * signs[:, None, :]).reshape(-1, 3)
    return out.astype(FLOAT_DTYPE)


def ordinates_for(dim: int, n: int) -> np.ndarray:
    """Dispatch on embedding dimension."""
    if dim == 2:
        return ordinates_2d(n)
    if dim == 3:
        return ordinates_3d(n)
    raise MeshError(f"ordinates only defined for dim 2 or 3, got {dim}")
