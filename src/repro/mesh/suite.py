"""The paper's mesh workloads (Tables 1, 2, 4) at configurable scale.

Each :class:`MeshGroupSpec` names one mesh family, its builder, the
element count and ordinate count the paper used, and the paper's measured
SCC statistics (for EXPERIMENTS.md comparisons).  ``small_mesh_suite`` /
``large_mesh_suite`` instantiate the groups at a default laptop scale
(``REPRO_FULL=1`` switches to paper scale) and build one sweep graph per
ordinate, exactly like the evaluation in §4.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from ..graph.csr import CSRGraph
from .builders import (
    beam_hex,
    klein_bottle,
    mobius_strip,
    star,
    toroid_hex,
    toroid_wedge,
    torch_hex,
    torch_tet,
    twist_hex,
)
from .core import Mesh
from .sweepgraph import sweep_graphs

__all__ = [
    "MeshGroupSpec",
    "MeshGroup",
    "SMALL_MESH_SPECS",
    "LARGE_MESH_SPECS",
    "small_mesh_suite",
    "large_mesh_suite",
    "build_group",
    "default_mesh_scale",
]


@dataclass(frozen=True)
class MeshGroupSpec:
    """One row-group of Table 1 or 2."""

    name: str
    table: str                      # "small" | "large"
    element_type: str               # Table 4
    order: int                      # Table 4
    paper_ordinates: int            # N_Omega
    paper_vertices: int
    paper_edges: int
    builder: Callable[[int], Mesh]
    #: builder resolution parameter that reproduces paper_vertices
    paper_n: int
    #: paper SCC statistics: (min SCCs, max SCCs, min largest, max largest,
    #: min DAG depth, max DAG depth)
    paper_sccs: "tuple[int, int, int, int, int, int]"

    def elements_for(self, n: int) -> int:
        """Element count the builder produces at resolution n (approx)."""
        return self.builder(max(n, 1)).num_elements  # pragma: no cover


@dataclass
class MeshGroup:
    """An instantiated group: the mesh and its per-ordinate sweep graphs."""

    spec: MeshGroupSpec
    mesh: Mesh
    graphs: "list[CSRGraph]"

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_ordinates(self) -> int:
        return len(self.graphs)


SMALL_MESH_SPECS: "tuple[MeshGroupSpec, ...]" = (
    MeshGroupSpec("beam-hex", "small", "Hexahedral", 1, 30, 262_144, 769_000,
                  beam_hex, 32, (262_144, 262_144, 1, 1, 318, 318)),
    MeshGroupSpec("star", "small", "Quadrilateral", 1, 8, 327_680, 654_000,
                  star, 256, (327_680, 327_680, 1, 1, 1_534, 1_534)),
    MeshGroupSpec("torch-hex", "small", "Hexahedral", 1, 32, 264_064, 782_000,
                  torch_hex, 11, (263_213, 263_519, 5, 8, 286, 364)),
    MeshGroupSpec("torch-tet", "small", "Tetrahedral", 1, 32, 515_360, 1_008_000,
                  torch_tet, 8, (513_410, 514_425, 4, 6, 484, 1_335)),
    MeshGroupSpec("toroid-hex", "small", "Hexahedral", 3, 32, 196_608, 581_000,
                  toroid_hex, 16, (189_045, 193_745, 32, 420, 220, 697)),
    MeshGroupSpec("toroid-wedge", "small", "Wedge", 3, 32, 196_608, 486_000,
                  toroid_wedge, 13, (189_981, 193_467, 2, 200, 282, 346)),
)

LARGE_MESH_SPECS: "tuple[MeshGroupSpec, ...]" = (
    MeshGroupSpec("klein-bottle", "large", "Quadrilateral", 3, 8, 8_388_608, 19_000_000,
                  klein_bottle, 1448, (1, 75_750, 8_312_856, 8_388_608, 1, 4)),
    MeshGroupSpec("mobius-strip", "large", "Quadrilateral", 3, 8, 4_194_304, 11_000_000,
                  mobius_strip, 1448, (758_836, 4_194_304, 1, 3_246_558, 1, 15_652)),
    MeshGroupSpec("torch-hex", "large", "Hexahedral", 1, 32, 2_112_512, 6_000_000,
                  torch_hex, 22, (2_109_019, 2_110_311, 6, 16, 583, 752)),
    MeshGroupSpec("torch-tet", "large", "Tetrahedral", 1, 32, 4_122_880, 6_000_000,
                  torch_tet, 15, (4_113_688, 4_117_636, 4, 6, 1_019, 2_745)),
    MeshGroupSpec("toroid-hex", "large", "Hexahedral", 3, 32, 1_572_864, 5_000_000,
                  toroid_hex, 32, (1_535_516, 1_561_334, 64, 1_504, 444, 1_865)),
    MeshGroupSpec("toroid-wedge", "large", "Wedge", 3, 32, 1_572_864, 4_000_000,
                  toroid_wedge, 25, (1_542_117, 1_560_181, 2, 747, 570, 703)),
    MeshGroupSpec("twist-hex", "large", "Hexahedral", 3, 61, 6_291_456, 19_000_000,
                  twist_hex, 46, (1, 1, 6_291_456, 6_291_456, 1, 1)),
)


def default_mesh_scale(table: str) -> float:
    """Linear resolution scale factor (applied to the builder's n).

    Full scale when ``REPRO_FULL=1``; otherwise small meshes run at ~1/32
    of the paper's element counts and large meshes at ~1/128 so the whole
    harness stays laptop-sized (element count scales with n^2 or n^3, so
    the *n* factors below are the cube/square roots of those ratios).
    """
    if os.environ.get("REPRO_FULL", "") == "1":
        return 1.0
    return 0.32 if table == "small" else 0.2


def default_num_ordinates(spec: MeshGroupSpec) -> int:
    if os.environ.get("REPRO_FULL", "") == "1":
        return spec.paper_ordinates
    return min(spec.paper_ordinates, 4)


def build_group(
    spec: MeshGroupSpec,
    *,
    scale: "float | None" = None,
    num_ordinates: "int | None" = None,
) -> MeshGroup:
    """Instantiate one mesh group at the requested scale."""
    if scale is None:
        scale = default_mesh_scale(spec.table)
    if num_ordinates is None:
        num_ordinates = default_num_ordinates(spec)
    n = max(2, int(round(spec.paper_n * scale)))
    mesh = spec.builder(n)
    graphs = [g for _, g in sweep_graphs(mesh, num_ordinates)]
    return MeshGroup(spec=spec, mesh=mesh, graphs=graphs)


def small_mesh_suite(
    *, scale: "float | None" = None, num_ordinates: "int | None" = None,
    names: "list[str] | None" = None,
) -> "list[MeshGroup]":
    """All Table 1 groups (optionally a named subset)."""
    specs = [s for s in SMALL_MESH_SPECS if names is None or s.name in names]
    return [build_group(s, scale=scale, num_ordinates=num_ordinates) for s in specs]


def large_mesh_suite(
    *, scale: "float | None" = None, num_ordinates: "int | None" = None,
    names: "list[str] | None" = None,
) -> "list[MeshGroup]":
    """All Table 2 groups (optionally a named subset)."""
    specs = [s for s in LARGE_MESH_SPECS if names is None or s.name in names]
    return [build_group(s, scale=scale, num_ordinates=num_ordinates) for s in specs]
