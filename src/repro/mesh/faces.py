"""Interior-face extraction.

An *interior face* is a face (2-D: edge; 3-D: triangle/quad) shared by
exactly two elements.  The sweep-graph construction (§4.1) iterates over
interior faces: each becomes one or two directed graph edges between the
adjacent elements depending on the ordinate/normal signs.

Extraction is fully vectorized: all element faces are emitted as padded
node-index rows, canonicalized by sorting within the row, lexsorted, and
scanned for adjacent duplicates.  A face shared by more than two elements
is a topology error (non-manifold mesh).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MeshTopologyError
from ..types import VERTEX_DTYPE
from .core import Mesh
from .elements import FACES

__all__ = ["FaceSet", "interior_faces"]


@dataclass(frozen=True)
class FaceSet:
    """Interior faces of a mesh.

    Attributes
    ----------
    elem1, elem2:
        ``(nf,)`` adjacent element indices; the stored node order is the
        face as seen from ``elem1`` (outward orientation w.r.t. elem1).
    nodes:
        ``(nf, max_nodes)`` face corner node indices, padded with -1 for
        triangle faces in wedge meshes.
    node_counts:
        ``(nf,)`` number of valid nodes per face (2, 3, or 4).
    """

    elem1: np.ndarray
    elem2: np.ndarray
    nodes: np.ndarray
    node_counts: np.ndarray

    @property
    def num_faces(self) -> int:
        return self.elem1.size


def interior_faces(mesh: Mesh) -> FaceSet:
    """Extract all interior faces of *mesh* (see module docstring)."""
    face_defs = FACES[mesh.element_type]
    ne = mesh.num_elements
    max_nodes = max(len(f) for f in face_defs)

    all_nodes_parts = []
    all_counts_parts = []
    for f in face_defs:
        block = mesh.cells[:, list(f)]
        if block.shape[1] < max_nodes:
            pad = np.full((ne, max_nodes - block.shape[1]), -1, dtype=VERTEX_DTYPE)
            block = np.hstack([block, pad])
        all_nodes_parts.append(block)
        all_counts_parts.append(np.full(ne, len(f), dtype=VERTEX_DTYPE))
    # interleave per element so ordering is (elem0 faces..., elem1 faces...)
    nf_per = len(face_defs)
    all_nodes = np.stack(all_nodes_parts, axis=1).reshape(ne * nf_per, max_nodes)
    all_counts = np.stack(all_counts_parts, axis=1).reshape(ne * nf_per)
    owner = np.repeat(np.arange(ne, dtype=VERTEX_DTYPE), nf_per)

    # canonical key: sorted node indices (padding -1 sorts first, harmless)
    key = np.sort(all_nodes, axis=1)
    order = np.lexsort(key.T[::-1])
    key_sorted = key[order]
    same_as_prev = np.all(key_sorted[1:] == key_sorted[:-1], axis=1)
    # detect non-manifold: three consecutive identical keys
    if same_as_prev.size >= 2 and np.any(same_as_prev[1:] & same_as_prev[:-1]):
        raise MeshTopologyError("face shared by more than two elements")
    match_idx = np.flatnonzero(same_as_prev)  # pairs (match_idx, match_idx+1)
    first = order[match_idx]
    second = order[match_idx + 1]
    elem1 = owner[first]
    elem2 = owner[second]
    if np.any(elem1 == elem2):
        raise MeshTopologyError("element shares a face with itself")
    elem1 = elem1.astype(VERTEX_DTYPE, copy=False)
    elem2 = elem2.astype(VERTEX_DTYPE, copy=False)
    nodes = all_nodes[first]
    counts = all_counts[first]
    # append periodic/twisted identification faces (see Mesh docstring);
    # elem1 is the gluing owner, so its geometry defines the face normals
    if mesh.identified_faces is not None:
        ea, eb, inodes, icounts = mesh.identified_faces
        pad = nodes.shape[1] - inodes.shape[1]
        if pad < 0:
            raise MeshTopologyError("identified face has too many nodes")
        if pad > 0:
            inodes = np.hstack(
                [inodes, np.full((inodes.shape[0], pad), -1, dtype=VERTEX_DTYPE)]
            )
        elem1 = np.concatenate([elem1, ea])
        elem2 = np.concatenate([elem2, eb])
        nodes = np.vstack([nodes, inodes])
        counts = np.concatenate([counts, icounts])
    return FaceSet(
        elem1=elem1,
        elem2=elem2,
        nodes=nodes,
        node_counts=counts,
    )
