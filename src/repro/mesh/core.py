"""Mesh container.

A :class:`Mesh` stores straight-sided *base* geometry (points + fixed-size
element connectivity) and, for high-order ("curved") meshes, a smooth
coordinate transform applied on top.  Keeping the base geometry and the
transform separate is what lets the face-geometry code evaluate outward
normals at arbitrary quadrature points of the *curved* surface: a face is
parametrized bilinearly on the base corners and pushed through the
transform, exactly like an isoparametric high-order element (the
mechanism behind the paper's re-entrant faces, Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..errors import MeshError, MeshTopologyError
from ..types import FLOAT_DTYPE, VERTEX_DTYPE
from .elements import ELEMENT_DIM, NODES_PER_ELEMENT, ElementType

__all__ = ["Mesh"]

Transform = Callable[[np.ndarray], np.ndarray]


@dataclass
class Mesh:
    """Unstructured single-element-type mesh.

    Parameters
    ----------
    base_points:
        ``(np, e)`` float array of straight-geometry node coordinates;
        ``e`` is the embedding dimension (2 or 3).  Surface meshes in 3-D
        (Mobius strip, Klein bottle) have 2-D elements with ``e == 3``.
    cells:
        ``(ne, k)`` int array of element connectivity, VTK node order.
    element_type:
        shape of every element.
    transform:
        optional smooth map ``R^e -> R^e`` giving the curved geometry;
        ``None`` means straight (order-1) elements.
    order:
        geometric order reported in Table 4 (1 = straight, 3 = the paper's
        cubically-curved meshes).  Informational; the geometry itself is
        exact through ``transform``.
    """

    base_points: np.ndarray
    cells: np.ndarray
    element_type: ElementType
    transform: Optional[Transform] = None
    order: int = 1
    name: str = ""
    #: optional periodic/twisted identification: (elemA, elemB, nodesA,
    #: countsA) — each row glues a boundary face of elemA (given by its
    #: node indices, padded with -1) to elemB, like an MFEM periodic mesh.
    #: The geometry need not match across the seam; the mismatch ("the
    #: coordinate chart jumps") is precisely what creates the global sweep
    #: cycles of the twist-hex / klein-bottle / mobius inputs.
    identified_faces: "Optional[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]" = None
    _points_cache: "np.ndarray | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.base_points = np.ascontiguousarray(self.base_points, dtype=FLOAT_DTYPE)
        self.cells = np.ascontiguousarray(self.cells, dtype=VERTEX_DTYPE)
        if self.base_points.ndim != 2 or self.base_points.shape[1] not in (2, 3):
            raise MeshError(
                f"base_points must be (np, 2|3), got {self.base_points.shape}"
            )
        k = NODES_PER_ELEMENT[self.element_type]
        if self.cells.ndim != 2 or self.cells.shape[1] != k:
            raise MeshError(
                f"{self.element_type.value} cells must be (ne, {k}),"
                f" got {self.cells.shape}"
            )
        if self.cells.size:
            lo, hi = int(self.cells.min()), int(self.cells.max())
            if lo < 0 or hi >= self.base_points.shape[0]:
                raise MeshTopologyError(
                    f"cell connectivity out of range [0, {self.base_points.shape[0]})"
                )
        if self.element_dim > self.embedding_dim:
            raise MeshError(
                f"{self.element_type.value} elements need embedding dim >="
                f" {self.element_dim}, got {self.embedding_dim}"
            )
        if self.identified_faces is not None:
            ea, eb, nodes, counts = self.identified_faces
            ea = np.ascontiguousarray(ea, dtype=VERTEX_DTYPE)
            eb = np.ascontiguousarray(eb, dtype=VERTEX_DTYPE)
            nodes = np.ascontiguousarray(nodes, dtype=VERTEX_DTYPE)
            counts = np.ascontiguousarray(counts, dtype=VERTEX_DTYPE)
            if not (ea.shape == eb.shape == counts.shape) or nodes.shape[0] != ea.size:
                raise MeshTopologyError("identified_faces arrays are inconsistent")
            if ea.size and (
                max(int(ea.max()), int(eb.max())) >= self.num_elements
                or min(int(ea.min()), int(eb.min())) < 0
            ):
                raise MeshTopologyError("identified_faces element index out of range")
            self.identified_faces = (ea, eb, nodes, counts)

    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        return self.base_points.shape[0]

    @property
    def num_elements(self) -> int:
        return self.cells.shape[0]

    @property
    def embedding_dim(self) -> int:
        return self.base_points.shape[1]

    @property
    def element_dim(self) -> int:
        return ELEMENT_DIM[self.element_type]

    @property
    def is_curved(self) -> bool:
        return self.transform is not None

    # ------------------------------------------------------------------
    def map_points(self, pts: np.ndarray) -> np.ndarray:
        """Apply the curved-geometry transform (identity when straight)."""
        if self.transform is None:
            return pts
        out = np.asarray(self.transform(pts), dtype=FLOAT_DTYPE)
        if out.shape != pts.shape:
            raise MeshError(
                f"transform changed point-array shape {pts.shape} -> {out.shape}"
            )
        return out

    @property
    def points(self) -> np.ndarray:
        """Curved node coordinates (cached)."""
        if self._points_cache is None:
            self._points_cache = self.map_points(self.base_points)
        return self._points_cache

    def element_centroids(self) -> np.ndarray:
        """``(ne, e)`` centroids of the curved elements (vertex average)."""
        return self.points[self.cells].mean(axis=1)

    def bounding_box(self) -> "tuple[np.ndarray, np.ndarray]":
        p = self.points
        return p.min(axis=0), p.max(axis=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        curved = f" order={self.order}" if self.is_curved else ""
        return (
            f"<Mesh{label} {self.element_type.value}"
            f" ne={self.num_elements} np={self.num_points}{curved}>"
        )
