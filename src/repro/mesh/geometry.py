"""Face quadrature points and outward normals on (possibly curved) meshes.

For every interior face we evaluate the outward unit normal (w.r.t.
``elem1``) at several quadrature points of the *curved* face.  On a
straight mesh the normal is constant per planar face; on a curved mesh
(or a straight mesh with non-planar bilinear quad faces) it varies across
the face — the ingredient that creates the paper's re-entrant faces.

Geometry evaluation: a face is parametrized on its base (straight)
corner nodes — linearly for edges, barycentrically for triangles,
bilinearly for quads — and pushed through the mesh's smooth transform.
Tangent vectors of the curved face are obtained by central differences of
the transform along the exact base-tangent directions::

    t(w) = (phi(b + eps*w) - phi(b - eps*w)) / (2*eps)

which equals J_phi(b) @ w up to O(eps^2) and is exact for straight meshes.
Only normal *directions* matter for the sweep construction, so no
normalization or Jacobian weighting is applied.
"""

from __future__ import annotations

import numpy as np

from ..errors import MeshError
from ..types import FLOAT_DTYPE
from .core import Mesh
from .faces import FaceSet

__all__ = ["face_quadrature_normals", "quadrature_points_1d", "triangle_quadrature"]

_EPS = 1e-5

#: Gauss-Legendre abscissae on [0, 1]
_GAUSS_1D = {
    1: np.array([0.5]),
    2: np.array([0.2113248654051871, 0.7886751345948129]),
    3: np.array([0.1127016653792583, 0.5, 0.8872983346207417]),
    4: np.array(
        [0.0694318442029737, 0.3300094782075719, 0.6699905217924281, 0.9305681557970263]
    ),
}

#: symmetric interior points of the unit triangle (barycentric)
_TRI_POINTS = {
    1: np.array([[1 / 3, 1 / 3, 1 / 3]]),
    2: np.array([[2 / 3, 1 / 6, 1 / 6], [1 / 6, 2 / 3, 1 / 6], [1 / 6, 1 / 6, 2 / 3]]),
    3: np.array(
        [
            [1 / 3, 1 / 3, 1 / 3],
            [0.6, 0.2, 0.2],
            [0.2, 0.6, 0.2],
            [0.2, 0.2, 0.6],
        ]
    ),
}


def quadrature_points_1d(n: int) -> np.ndarray:
    """Gauss points on [0, 1] (n = 1..4)."""
    if n not in _GAUSS_1D:
        raise MeshError(f"unsupported 1-D quadrature order {n}")
    return _GAUSS_1D[n].copy()


def triangle_quadrature(n: int) -> np.ndarray:
    """Barycentric interior points of the unit triangle (n = 1..3)."""
    if n not in _TRI_POINTS:
        raise MeshError(f"unsupported triangle quadrature order {n}")
    return _TRI_POINTS[n].copy()


def _transform_tangent(mesh: Mesh, base: np.ndarray, direction: np.ndarray) -> np.ndarray:
    """Central-difference pushforward of *direction* at *base* points.

    ``base`` and ``direction`` are (..., e); returns (..., e).
    """
    if mesh.transform is None:
        return direction
    shape = base.shape
    flat_b = base.reshape(-1, shape[-1])
    flat_d = direction.reshape(-1, shape[-1])
    plus = mesh.map_points(flat_b + _EPS * flat_d)
    minus = mesh.map_points(flat_b - _EPS * flat_d)
    return ((plus - minus) / (2.0 * _EPS)).reshape(shape)


def _cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.cross(a, b)


def face_quadrature_normals(
    mesh: Mesh, faces: FaceSet, points_per_dim: int = 2
) -> np.ndarray:
    """Outward normals at quadrature points of every interior face.

    Returns ``(nf, q, e)`` where ``q`` is the per-face quadrature count
    (faces with fewer natural points — triangles among quads — repeat
    their last point so the array stays rectangular; repeated points are
    harmless for the sign tests the sweep construction performs).
    Normals are oriented out of ``faces.elem1`` by a face-center centroid
    test applied uniformly to all of a face's points.
    """
    nf = faces.num_faces
    e = mesh.embedding_dim
    if nf == 0:
        return np.empty((0, 0, e), dtype=FLOAT_DTYPE)

    counts = faces.node_counts
    max_q = _max_points(mesh, points_per_dim)
    normals = np.zeros((nf, max_q, e), dtype=FLOAT_DTYPE)

    for count in np.unique(counts):
        sel = np.flatnonzero(counts == count)
        block = _normals_for_count(mesh, faces, sel, int(count), points_per_dim)
        q = block.shape[1]
        normals[sel, :q] = block
        if q < max_q:  # pad by repeating the last quadrature point
            normals[sel, q:] = block[:, -1:, :]

    # Orientation comes from elem1's stored node order (FACES lists faces
    # outward; 2-D edges are CCW).  A geometric centroid test would break
    # on periodic/identified meshes (twist-hex, klein-bottle), where an
    # element's centroid straddles the identification seam.
    return normals


def _max_points(mesh: Mesh, ppd: int) -> int:
    if mesh.element_dim == 2:
        return ppd  # edges
    # 3-D: quad faces dominate (ppd^2); triangles have fewer
    return ppd * ppd


def _normals_for_count(
    mesh: Mesh, faces: FaceSet, sel: np.ndarray, count: int, ppd: int
) -> np.ndarray:
    nodes = faces.nodes[sel]
    if count == 2:
        return _edge_normals(mesh, faces, sel, nodes[:, :2], ppd)
    if count == 3:
        return _tri_normals(mesh, nodes[:, :3], ppd)
    if count == 4:
        return _quad_normals(mesh, nodes[:, :4], ppd)
    raise MeshError(f"unsupported face node count {count}")


def _edge_normals(
    mesh: Mesh, faces: FaceSet, sel: np.ndarray, nodes: np.ndarray, ppd: int
) -> np.ndarray:
    """Edges of 2-D elements: in-plane (2-D) or in-surface (3-D) normals."""
    base = mesh.base_points
    p0 = base[nodes[:, 0]]  # (k, e)
    p1 = base[nodes[:, 1]]
    s = quadrature_points_1d(ppd)  # (q,)
    b = p0[:, None, :] + s[None, :, None] * (p1 - p0)[:, None, :]  # (k, q, e)
    t_edge_base = np.broadcast_to((p1 - p0)[:, None, :], b.shape)
    t_edge = _transform_tangent(mesh, b, t_edge_base)
    if mesh.embedding_dim == 2:
        # CCW boundary edge: outward normal is the tangent rotated by -90
        n = np.stack([t_edge[..., 1], -t_edge[..., 0]], axis=-1)
        return n
    # Surface mesh in 3-D: outward in-plane conormal.  t_in points from the
    # edge into elem1, so the component of t_in orthogonal to the edge is
    # the *inward* conormal; negate it.  This is intrinsic to elem1 and
    # stays valid on non-orientable and identified (seam) meshes.
    cells1 = mesh.cells[faces.elem1[sel]]
    centroid1 = base[cells1].mean(axis=1)  # (k, e) base centroid of elem1
    t_in_base = centroid1[:, None, :] - b  # (k, q, e), points into elem1
    t_in = _transform_tangent(mesh, b, t_in_base)
    n_surf = _cross(t_edge, t_in)
    inward = _cross(n_surf, t_edge)
    return -inward


def _tri_normals(mesh: Mesh, nodes: np.ndarray, ppd: int) -> np.ndarray:
    base = mesh.base_points
    p0, p1, p2 = base[nodes[:, 0]], base[nodes[:, 1]], base[nodes[:, 2]]
    bary = triangle_quadrature(min(ppd, 3))  # (q, 3)
    b = (
        bary[None, :, 0, None] * p0[:, None, :]
        + bary[None, :, 1, None] * p1[:, None, :]
        + bary[None, :, 2, None] * p2[:, None, :]
    )
    t1 = _transform_tangent(mesh, b, np.broadcast_to((p1 - p0)[:, None, :], b.shape))
    t2 = _transform_tangent(mesh, b, np.broadcast_to((p2 - p0)[:, None, :], b.shape))
    return _cross(t1, t2)


def _quad_normals(mesh: Mesh, nodes: np.ndarray, ppd: int) -> np.ndarray:
    base = mesh.base_points
    p = base[nodes]  # (k, 4, e) corners in face order
    s = quadrature_points_1d(ppd)
    u, v = np.meshgrid(s, s, indexing="ij")
    u, v = u.ravel(), v.ravel()  # (q,)
    # bilinear shape functions on corner order (0,0) (1,0) (1,1) (0,1)
    shp = np.stack(
        [(1 - u) * (1 - v), u * (1 - v), u * v, (1 - u) * v], axis=0
    )  # (4, q)
    dshp_du = np.stack([-(1 - v), (1 - v), v, -v], axis=0)
    dshp_dv = np.stack([-(1 - u), -u, u, (1 - u)], axis=0)
    b = np.einsum("cq,kce->kqe", shp, p)
    tu_base = np.einsum("cq,kce->kqe", dshp_du, p)
    tv_base = np.einsum("cq,kce->kqe", dshp_dv, p)
    tu = _transform_tangent(mesh, b, tu_base)
    tv = _transform_tangent(mesh, b, tv_base)
    return _cross(tu, tv)
