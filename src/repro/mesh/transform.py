"""Smooth coordinate transforms used to curve meshes.

The paper's high-order (order-3) meshes are curved versions of simple
geometries; the curvature is what creates re-entrant faces and hence
SCCs.  Each factory below returns a vectorized map ``(n, e) -> (n, e)``
suitable as :attr:`repro.mesh.core.Mesh.transform`.

All transforms are smooth (C^inf) and deterministic.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..types import FLOAT_DTYPE

__all__ = [
    "twist_about_z",
    "sinusoidal_wobble",
    "torus_map",
    "mobius_map",
    "klein_map",
    "cylinder_map",
    "compose",
]

Transform = Callable[[np.ndarray], np.ndarray]


def compose(*transforms: Transform) -> Transform:
    """Left-to-right composition of transforms."""

    def _composed(p: np.ndarray) -> np.ndarray:
        for t in transforms:
            p = t(p)
        return p

    return _composed


def twist_about_z(turns: float, z_extent: float) -> Transform:
    """Rotate the xy-plane by an angle proportional to z.

    ``turns`` full rotations over ``z_extent`` — the paper's twist-hex
    meshes use the MFEM twist miniapp with 3 and 6 twists; strong twists
    wind the sweep ordering around the axis into one giant cycle.
    """
    rate = 2.0 * np.pi * turns / z_extent

    def _twist(p: np.ndarray) -> np.ndarray:
        p = np.asarray(p, dtype=FLOAT_DTYPE)
        ang = rate * p[..., 2]
        c, s = np.cos(ang), np.sin(ang)
        out = p.copy()
        out[..., 0] = c * p[..., 0] - s * p[..., 1]
        out[..., 1] = s * p[..., 0] + c * p[..., 1]
        return out

    return _twist


def sinusoidal_wobble(amplitude: float, frequency: float, axes: "tuple[int, ...]" = (0, 1, 2)) -> Transform:
    """Smooth periodic perturbation: each axis bends with the others.

    This is the generic "high-order curvature" surrogate: gentle
    amplitudes curve faces enough to flip quadrature-point normal signs
    near inflection lines, producing scattered clusters of small SCCs
    exactly like the paper's order-3 toroid meshes.
    """

    def _wobble(p: np.ndarray) -> np.ndarray:
        p = np.asarray(p, dtype=FLOAT_DTYPE)
        out = p.copy()
        e = p.shape[-1]
        for ax in axes:
            if ax >= e:
                continue
            others = [a for a in range(e) if a != ax]
            bend = np.zeros(p.shape[:-1], dtype=FLOAT_DTYPE)
            for o in others:
                bend = bend + np.sin(frequency * p[..., o] + 0.7 * ax)
            out[..., ax] = p[..., ax] + amplitude * bend
        return out

    return _wobble


def torus_map(major_radius: float, minor_radius: float, box: "tuple[float, float, float]") -> Transform:
    """Map a rectangular box onto a solid torus.

    Box coordinates ``(x, y, z) in [0, bx] x [0, by] x [0, bz]`` map to
    poloidal angle, radial depth, and toroidal angle respectively.
    """
    bx, by, bz = box

    def _torus(p: np.ndarray) -> np.ndarray:
        p = np.asarray(p, dtype=FLOAT_DTYPE)
        pol = 2.0 * np.pi * p[..., 0] / bx
        r = minor_radius * (0.35 + 0.65 * p[..., 1] / by)
        tor = 2.0 * np.pi * p[..., 2] / bz
        ring = major_radius + r * np.cos(pol)
        return np.stack(
            [ring * np.cos(tor), ring * np.sin(tor), r * np.sin(pol)], axis=-1
        )

    return _torus


def mobius_map(radius: float, width: float, length: float) -> Transform:
    """Map a flat strip ``(x in [0, length], y in [-w/2, w/2])`` to a
    Mobius band (half twist per revolution).  2-D input, 3-D output."""

    def _mobius(p: np.ndarray) -> np.ndarray:
        p = np.asarray(p, dtype=FLOAT_DTYPE)
        u = 2.0 * np.pi * p[..., 0] / length
        v = p[..., 1]
        half = u / 2.0
        ring = radius + v * np.cos(half)
        return np.stack(
            [ring * np.cos(u), ring * np.sin(u), v * np.sin(half)], axis=-1
        )

    return _mobius


def klein_map(scale: float, length: float, width: float) -> Transform:
    """Figure-8 immersion of the Klein bottle from a flat rectangle.

    ``x in [0, length]`` is the tube direction, ``y in [0, width]`` the
    meridian.  2-D input, 3-D output.
    """

    def _klein(p: np.ndarray) -> np.ndarray:
        p = np.asarray(p, dtype=FLOAT_DTYPE)
        u = 2.0 * np.pi * p[..., 0] / length
        v = 2.0 * np.pi * p[..., 1] / width
        r = 2.0 + np.cos(u / 2.0) * np.sin(v) - np.sin(u / 2.0) * np.sin(2.0 * v)
        return np.stack(
            [
                scale * r * np.cos(u),
                scale * r * np.sin(u),
                scale
                * (np.sin(u / 2.0) * np.sin(v) + np.cos(u / 2.0) * np.sin(2.0 * v)),
            ],
            axis=-1,
        )

    return _klein


def cylinder_map(radius: float, box: "tuple[float, float, float]") -> Transform:
    """Map a box onto a solid cylinder (torch-body geometry).

    ``x`` is azimuthal, ``y`` radial (with a solid core offset), ``z``
    axial with a nozzle-like contraction toward one end.
    """
    bx, by, bz = box

    def _cyl(p: np.ndarray) -> np.ndarray:
        p = np.asarray(p, dtype=FLOAT_DTYPE)
        theta = 2.0 * np.pi * p[..., 0] / bx
        taper = 1.0 - 0.45 * (p[..., 2] / bz) ** 2  # nozzle contraction
        r = radius * (0.25 + 0.75 * p[..., 1] / by) * taper
        return np.stack(
            [r * np.cos(theta), r * np.sin(theta), p[..., 2]], axis=-1
        )

    return _cyl
