"""Builders for the paper's mesh geometries (Table 4).

Each function reproduces one named mesh family:

=============  =============  =====  ==========================================
mesh           element type   order  geometry here
=============  =============  =====  ==========================================
beam-hex       hexahedral     1      straight structured beam (8:1:1)
star           quadrilateral  1      2-D five-pointed star (polar quad grid)
torch-hex      hexahedral     1      plasma-torch cylinder, jittered vertices
torch-tet      tetrahedral    1      same geometry, hexes split into 6 tets
toroid-hex     hexahedral     3      closed solid torus + smooth wobble
toroid-wedge   wedge          3      same torus, hexes split into 2 wedges
mobius-strip   quadrilateral  3      Mobius band surface mesh (+ wobble)
klein-bottle   quadrilateral  3      figure-8 Klein-bottle immersion (+ wobble)
twist-hex      hexahedral     3      closed square-section ring, twisted
=============  =============  =====  ==========================================

Construction idioms:

* *Baked* parametric coordinates: closed geometries (torus, Mobius, Klein,
  twisted ring) are built by evaluating the parametric map at grid nodes
  and welding the periodic seams, so connectivity is genuinely periodic
  and bilinear quad faces are non-planar (varying normals).
* *Transforms* (``mesh.transform``): order-3 curvature on top of the baked
  shape comes from a smooth ambient-space wobble, evaluated exactly at
  face quadrature points by :mod:`repro.mesh.geometry` — the source of
  re-entrant faces.
* *Deterministic jitter*: the torch meshes are low-order but unstructured
  in character; a smooth deterministic vertex jitter reproduces the
  irregular planar-face cycle structure of real unstructured meshes.
"""

from __future__ import annotations

import numpy as np

from ..errors import MeshError
from ..types import FLOAT_DTYPE, VERTEX_DTYPE
from .core import Mesh
from .elements import ElementType
from .transform import sinusoidal_wobble

__all__ = [
    "structured_hex_grid",
    "parametric_hex_grid",
    "parametric_quad_grid",
    "hex_to_tets",
    "hex_to_wedges",
    "jitter_points",
    "beam_hex",
    "star",
    "torch_hex",
    "torch_tet",
    "toroid_hex",
    "toroid_wedge",
    "mobius_strip",
    "klein_bottle",
    "twist_hex",
]


# ---------------------------------------------------------------------------
# grid machinery
# ---------------------------------------------------------------------------

def _node_ids_3d(nx: int, ny: int, nz: int, periodic: "tuple[bool, bool, bool]") -> np.ndarray:
    """Node-index lattice with periodic axes welded by index wrap-around."""
    px, py, pz = periodic
    gx = nx if px else nx + 1
    gy = ny if py else ny + 1
    gz = nz if pz else nz + 1
    ids = np.arange(gx * gy * gz, dtype=VERTEX_DTYPE).reshape(gx, gy, gz)
    ix = np.arange(nx + 1) % gx if px else np.arange(nx + 1)
    iy = np.arange(ny + 1) % gy if py else np.arange(ny + 1)
    iz = np.arange(nz + 1) % gz if pz else np.arange(nz + 1)
    return ids[np.ix_(ix, iy, iz)]


def _hex_cells(nid: np.ndarray) -> np.ndarray:
    """VTK hex connectivity from a (nx+1, ny+1, nz+1) node-id lattice."""
    c000 = nid[:-1, :-1, :-1]
    c100 = nid[1:, :-1, :-1]
    c110 = nid[1:, 1:, :-1]
    c010 = nid[:-1, 1:, :-1]
    c001 = nid[:-1, :-1, 1:]
    c101 = nid[1:, :-1, 1:]
    c111 = nid[1:, 1:, 1:]
    c011 = nid[:-1, 1:, 1:]
    cells = np.stack(
        [c000, c100, c110, c010, c001, c101, c111, c011], axis=-1
    ).reshape(-1, 8)
    return cells.astype(VERTEX_DTYPE)


def structured_hex_grid(
    shape: "tuple[int, int, int]",
    extents: "tuple[float, float, float]" = (1.0, 1.0, 1.0),
    *,
    name: str = "",
) -> Mesh:
    """Axis-aligned box of ``nx*ny*nz`` unit-order hexahedra."""
    nx, ny, nz = shape
    if min(nx, ny, nz) < 1:
        raise MeshError(f"hex grid needs positive shape, got {shape}")
    xs = np.linspace(0.0, extents[0], nx + 1)
    ys = np.linspace(0.0, extents[1], ny + 1)
    zs = np.linspace(0.0, extents[2], nz + 1)
    X, Y, Z = np.meshgrid(xs, ys, zs, indexing="ij")
    points = np.stack([X, Y, Z], axis=-1).reshape(-1, 3)
    nid = np.arange((nx + 1) * (ny + 1) * (nz + 1), dtype=VERTEX_DTYPE).reshape(
        nx + 1, ny + 1, nz + 1
    )
    return Mesh(points, _hex_cells(nid), ElementType.HEX, name=name)


def parametric_hex_grid(
    shape: "tuple[int, int, int]",
    param_fn,
    *,
    periodic: "tuple[bool, bool, bool]" = (False, False, False),
    name: str = "",
) -> Mesh:
    """Hex grid whose node coordinates come from ``param_fn(u, v, w)``.

    ``param_fn`` receives unit-cube parameter arrays and returns ``(..., 3)``
    coordinates; periodic axes are welded (node count = cell count along
    that axis), so ``param_fn`` must agree at parameter 0 and 1 there.
    """
    nx, ny, nz = shape
    periodic = tuple(bool(p) for p in periodic)
    gx = nx if periodic[0] else nx + 1
    gy = ny if periodic[1] else ny + 1
    gz = nz if periodic[2] else nz + 1
    u = (np.arange(gx) / nx)
    v = (np.arange(gy) / ny)
    w = (np.arange(gz) / nz)
    U, V, W = np.meshgrid(u, v, w, indexing="ij")
    pts = np.asarray(param_fn(U, V, W), dtype=FLOAT_DTYPE)
    if pts.shape != (gx, gy, gz, 3):
        raise MeshError(
            f"param_fn must return shape {(gx, gy, gz, 3)}, got {pts.shape}"
        )
    nid = _node_ids_3d(nx, ny, nz, periodic)
    return Mesh(pts.reshape(-1, 3), _hex_cells(nid), ElementType.HEX, name=name)


def parametric_quad_grid(
    shape: "tuple[int, int]",
    param_fn,
    *,
    identify: str = "none",
    name: str = "",
    order: int = 1,
    transform=None,
) -> Mesh:
    """Quad surface grid from ``param_fn(u, v) -> (..., 2|3)`` coordinates.

    ``identify`` welds seams topologically:

    * ``"none"``    — open patch;
    * ``"cyl-u"``   — u periodic (cylinder/annulus);
    * ``"mobius"``  — ``(u+1, v) ~ (u, 1-v)``;
    * ``"klein"``   — ``(u+1, v) ~ (u, 1-v)`` and v periodic;
    * ``"torus"``   — u and v periodic.

    ``param_fn`` must satisfy the chosen identification exactly.
    """
    nu, nv = shape
    if min(nu, nv) < 1:
        raise MeshError(f"quad grid needs positive shape, got {shape}")
    # full node lattice ids, then weld
    nid = np.arange((nu + 1) * (nv + 1), dtype=VERTEX_DTYPE).reshape(nu + 1, nv + 1)
    if identify in ("cyl-u", "torus"):
        nid[nu, :] = nid[0, :]
    elif identify in ("mobius", "klein"):
        nid[nu, :] = nid[0, ::-1]
    elif identify != "none":
        raise MeshError(f"unknown identification {identify!r}")
    if identify in ("torus", "klein"):
        nid[:, nv] = nid[:, 0]
        # re-apply the u seam in case the corner got overwritten
        if identify == "klein":
            nid[nu, :] = nid[0, ::-1]
        else:
            nid[nu, :] = nid[0, :]
    # compress ids to a dense range
    used, dense = np.unique(nid, return_inverse=True)
    nid = dense.reshape(nid.shape).astype(VERTEX_DTYPE)
    # coordinates: evaluate param_fn on the full lattice, take first owner
    uu = np.arange(nu + 1) / nu
    vv = np.arange(nv + 1) / nv
    U, V = np.meshgrid(uu, vv, indexing="ij")
    pts_full = np.asarray(param_fn(U, V), dtype=FLOAT_DTYPE)
    e = pts_full.shape[-1]
    if pts_full.shape != (nu + 1, nv + 1, e) or e not in (2, 3):
        raise MeshError(f"param_fn returned bad shape {pts_full.shape}")
    npts = int(nid.max()) + 1
    points = np.zeros((npts, e), dtype=FLOAT_DTYPE)
    points[nid.ravel()] = pts_full.reshape(-1, e)
    # CCW quad cells
    c00 = nid[:-1, :-1]
    c10 = nid[1:, :-1]
    c11 = nid[1:, 1:]
    c01 = nid[:-1, 1:]
    cells = np.stack([c00, c10, c11, c01], axis=-1).reshape(-1, 4)
    return Mesh(
        points, cells, ElementType.QUAD, transform=transform, order=order, name=name
    )


# ---------------------------------------------------------------------------
# element splitting
# ---------------------------------------------------------------------------

#: 6-tet decomposition of a hex around the 0-6 diagonal; neighbouring
#: structured hexes produce matching face diagonals (verified in tests).
_HEX_TO_TETS = ((0, 1, 2, 6), (0, 2, 3, 6), (0, 3, 7, 6), (0, 7, 4, 6), (0, 4, 5, 6), (0, 5, 1, 6))

#: 2-wedge decomposition of a hex along the 0-2 / 4-6 diagonal plane.
_HEX_TO_WEDGES = ((0, 1, 2, 4, 5, 6), (0, 2, 3, 4, 6, 7))


def hex_to_tets(mesh: Mesh) -> Mesh:
    """Split every hex into 6 tets (conforming on structured grids)."""
    if mesh.element_type is not ElementType.HEX:
        raise MeshError("hex_to_tets requires a hex mesh")
    parts = [mesh.cells[:, list(t)] for t in _HEX_TO_TETS]
    cells = np.stack(parts, axis=1).reshape(-1, 4)
    return Mesh(
        mesh.base_points,
        cells,
        ElementType.TET,
        transform=mesh.transform,
        order=mesh.order,
        name=mesh.name,
    )


def hex_to_wedges(mesh: Mesh) -> Mesh:
    """Split every hex into 2 wedges (conforming on structured grids)."""
    if mesh.element_type is not ElementType.HEX:
        raise MeshError("hex_to_wedges requires a hex mesh")
    parts = [mesh.cells[:, list(w)] for w in _HEX_TO_WEDGES]
    cells = np.stack(parts, axis=1).reshape(-1, 6)
    return Mesh(
        mesh.base_points,
        cells,
        ElementType.WEDGE,
        transform=mesh.transform,
        order=mesh.order,
        name=mesh.name,
    )


def jitter_points(points: np.ndarray, amplitude: float, *, fixed: "np.ndarray | None" = None) -> np.ndarray:
    """Deterministic smooth vertex jitter (unstructured-mesh surrogate).

    Perturbs each coordinate by a product of incommensurate sinusoids of
    the other coordinates — smooth, reproducible, and resolution-stable
    (the perturbation field is a function of position, not of index).
    ``fixed`` masks nodes to keep (e.g. boundaries).
    """
    p = np.asarray(points, dtype=FLOAT_DTYPE)
    out = p.copy()
    e = p.shape[1]
    freqs = (9.3, 12.7, 7.9)
    for ax in range(e):
        wob = np.ones(p.shape[0], dtype=FLOAT_DTYPE)
        for o in range(e):
            if o == ax:
                continue
            wob = wob * np.sin(freqs[(ax + o) % 3] * p[:, o] + 0.71 * (ax + 1) + o)
        out[:, ax] += amplitude * wob
    if fixed is not None:
        out[fixed] = p[fixed]
    return out


# ---------------------------------------------------------------------------
# the named meshes
# ---------------------------------------------------------------------------

def beam_hex(n: int = 16, *, name: str = "beam-hex") -> Mesh:
    """Straight 8:1:1 beam of ``8*n^3`` hexes (order 1; all-trivial SCCs)."""
    m = structured_hex_grid((8 * n, n, n), (8.0, 1.0, 1.0), name=name)
    return m


def star(n: int = 64, *, points_count: int = 5, name: str = "star") -> Mesh:
    """2-D five-pointed star: polar quad grid with R(theta) boundary.

    ``n`` controls resolution; elements = ``n * 5n`` (radial x angular).
    A small inner radius avoids the degenerate pole.  Order 1, acyclic
    sweep graphs with a deep DAG (Table 1: depth ~ perimeter).
    """
    nt, nr = 5 * n, n

    def fn(U, V):
        theta = 2.0 * np.pi * U
        rmax = 1.0 + 0.45 * np.cos(points_count * theta)
        r = 0.08 + (rmax - 0.08) * V
        return np.stack([r * np.cos(theta), r * np.sin(theta)], axis=-1)

    return parametric_quad_grid((nt, nr), fn, identify="cyl-u", name=name)


def _torch_transform():
    """Box -> tapered cylinder shell (the torch body with a nozzle).

    Applied as a :attr:`Mesh.transform`, so element *faces* follow the
    curved geometry exactly (evaluated at quadrature points), the way a
    mesh fitted to a curved domain behaves.  The base box is
    ``[0,1] x [0,1] x [0,1]`` (azimuthal, radial, axial).
    """

    def fn(p: np.ndarray) -> np.ndarray:
        p = np.asarray(p, dtype=FLOAT_DTYPE)
        theta = 1.75 * np.pi * p[..., 0]  # open shell (a slit avoids a seam)
        taper = 1.0 - 0.45 * p[..., 2] ** 2
        r = (0.25 + 0.75 * p[..., 1]) * taper
        return np.stack(
            [r * np.cos(theta), r * np.sin(theta), 4.0 * p[..., 2]], axis=-1
        )

    return fn


def torch_hex(n: int = 12, *, jitter: float = 0.012, name: str = "torch-hex") -> Mesh:
    """Plasma-torch body: tapered cylinder shell, jittered vertices.

    Order 1 elements on a curved domain: faces follow the cylinder taper
    (via the mesh transform) and the deterministic jitter makes the mesh
    irregular, which together give the scattered size 2-8 SCCs of the
    torch rows in Tables 1-2.  Elements = ``12n * 2n * 8n``.
    """
    shape = (12 * n, 2 * n, 8 * n)
    m = structured_hex_grid(shape, (1.0, 1.0, 1.0), name=name)
    pts = jitter_points(m.base_points * np.array([9.0, 1.5, 6.0]), jitter)
    pts = pts / np.array([9.0, 1.5, 6.0])
    return Mesh(pts, m.cells, ElementType.HEX, transform=_torch_transform(), name=name)


def torch_tet(n: int = 10, *, jitter: float = 0.012, name: str = "torch-tet") -> Mesh:
    """Tetrahedral representation of the torch (6 tets per hex).

    Tet faces are planar in the base box but curved through the torch
    transform, so re-entrant faces (and hence small SCC clusters) appear
    exactly as in real curved-domain tet meshes.
    """
    return hex_to_tets(torch_hex(n, jitter=jitter, name=name))


def _torus_param(major: float = 2.0, minor: float = 0.7):
    def fn(U, V, W):
        pol = 2.0 * np.pi * U
        r = minor * (0.35 + 0.65 * V)
        tor = 2.0 * np.pi * W
        ring = major + r * np.cos(pol)
        return np.stack(
            [ring * np.cos(tor), ring * np.sin(tor), r * np.sin(pol)], axis=-1
        )

    return fn


def toroid_hex(n: int = 10, *, wobble: float = 0.05, name: str = "toroid-hex") -> Mesh:
    """Closed solid torus of hexes, order-3 curvature via ambient wobble.

    Elements = ``4n * n * 12n``; poloidal and toroidal directions are
    topologically periodic (welded seams).  The wobble curves faces so
    quadrature normals change sign locally: clusters of small SCCs.
    """
    shape = (4 * n, n, 12 * n)
    m = parametric_hex_grid(
        shape, _torus_param(), periodic=(True, False, True), name=name
    )
    return Mesh(
        m.base_points,
        m.cells,
        ElementType.HEX,
        transform=sinusoidal_wobble(wobble, 2.2),
        order=3,
        name=name,
    )


def toroid_wedge(n: int = 10, *, wobble: float = 0.05, name: str = "toroid-wedge") -> Mesh:
    """Wedge version of the toroid (2 wedges per hex, order 3)."""
    base = toroid_hex(n, wobble=wobble, name=name)
    return hex_to_wedges(base)


def _quad_grid_open(nu: int, nv: int, fn, *, name: str, order: int, transform=None):
    """Open quad patch plus the (nu+1, nv+1) node-id lattice (for gluing)."""
    m = parametric_quad_grid((nu, nv), fn, identify="none", name=name, order=order, transform=transform)
    nid = np.arange((nu + 1) * (nv + 1), dtype=VERTEX_DTYPE).reshape(nu + 1, nv + 1)
    return m, nid


def _quad_cell_index(nu: int, nv: int):
    """Element index of quad-grid cell (i, j) (i-major, matching builders)."""
    return lambda i, j: i * nv + j


def _flat_quad_chart(nu: int, nv: int, extents: "tuple[float, float]") -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Open flat rectangle chart: (points, cells, node-id lattice)."""
    xs = np.linspace(0.0, extents[0], nu + 1)
    ys = np.linspace(0.0, extents[1], nv + 1)
    X, Y = np.meshgrid(xs, ys, indexing="ij")
    points = np.stack([X, Y], axis=-1).reshape(-1, 2)
    nid = np.arange((nu + 1) * (nv + 1), dtype=VERTEX_DTYPE).reshape(nu + 1, nv + 1)
    c00, c10, c11, c01 = nid[:-1, :-1], nid[1:, :-1], nid[1:, 1:], nid[:-1, 1:]
    cells = np.stack([c00, c10, c11, c01], axis=-1).reshape(-1, 4)
    return points.astype(FLOAT_DTYPE), cells.astype(VERTEX_DTYPE), nid


def mobius_strip(n: int = 64, *, name: str = "mobius-strip") -> Mesh:
    """Mobius band: flat rectangle chart with a reflected x-identification.

    Elements = ``2n * n`` on a quarter-annulus arc chart; element
    ``(nu-1, j)`` glues to ``(0, nv-1-j)`` with the radial coordinate
    reflected (the Mobius quotient).  The chart tangent rotates 90
    degrees along the arc, so a sweep-monotone path through the chart
    back to the seam exists only for ordinates in the opposing quadrants
    — those develop one giant SCC through the glued seam — while the
    remaining ordinates stay completely acyclic.  This reproduces the
    extreme per-ordinate variability of Table 2's mobius-strip row
    (1 .. |V| SCCs, largest 1 .. 0.77|V|).
    """
    nu, nv = 2 * n, n
    radius, width = 2.0, 0.8
    xs = np.arange(nu + 1) / nu
    ys = np.arange(nv + 1) / nv
    U, V = np.meshgrid(xs, ys, indexing="ij")
    theta = 0.5 * np.pi * U  # quarter-arc chart: tangent rotates 90 deg
    r = radius + width * (V - 0.5)
    points = np.stack([r * np.cos(theta), r * np.sin(theta)], axis=-1).reshape(-1, 2)
    nid = np.arange((nu + 1) * (nv + 1), dtype=VERTEX_DTYPE).reshape(nu + 1, nv + 1)
    c00, c10, c11, c01 = nid[:-1, :-1], nid[1:, :-1], nid[1:, 1:], nid[:-1, 1:]
    cells = np.stack([c00, c10, c11, c01], axis=-1).reshape(-1, 4)
    cell = _quad_cell_index(nu, nv)
    j = np.arange(nv, dtype=VERTEX_DTYPE)
    elem_a = np.asarray([cell(nu - 1, int(jj)) for jj in j], dtype=VERTEX_DTYPE)
    elem_b = np.asarray([cell(0, int(nv - 1 - jj)) for jj in j], dtype=VERTEX_DTYPE)
    # A's x+ boundary edge in A's CCW order: (c10, c11) = (nid[nu,j], nid[nu,j+1])
    nodes_a = np.stack([nid[nu, :-1], nid[nu, 1:]], axis=1).astype(VERTEX_DTYPE)
    counts = np.full(nv, 2, dtype=VERTEX_DTYPE)
    return Mesh(
        points,
        cells,
        ElementType.QUAD,
        order=3,
        name=name,
        identified_faces=(elem_a, elem_b, nodes_a, counts),
    )


def klein_bottle(n: int = 32, *, name: str = "klein-bottle") -> Mesh:
    """Klein bottle: flat rectangle chart, x glued with reflection and y
    glued periodically — the flat Klein-bottle quotient (the surface has
    no embedding in 3-D, so the abstract flat model is the honest one).

    Elements = ``2n * 2n``.  On the flat quotient every constant wind has
    closed flow lines (two x-wraps close any line; y-columns are directed
    cycles outright), so every ordinate yields one giant SCC spanning the
    mesh — Table 2's klein-bottle row (largest SCC ~ |V| for all 8
    ordinates, DAG depth 1-4).
    """
    nu, nv = 2 * n, 2 * n
    points, cells, nid = _flat_quad_chart(nu, nv, (2.0, 2.0))
    cell = _quad_cell_index(nu, nv)
    j = np.arange(nv, dtype=VERTEX_DTYPE)
    i = np.arange(nu, dtype=VERTEX_DTYPE)
    # x-seam, reflected (Mobius-style)
    ea_x = np.asarray([cell(nu - 1, int(jj)) for jj in j], dtype=VERTEX_DTYPE)
    eb_x = np.asarray([cell(0, int(nv - 1 - jj)) for jj in j], dtype=VERTEX_DTYPE)
    nodes_x = np.stack([nid[nu, :-1], nid[nu, 1:]], axis=1).astype(VERTEX_DTYPE)
    # y-seam, plain periodic; A's y+ edge in CCW order is (c11, c01)
    ea_y = np.asarray([cell(int(ii), nv - 1) for ii in i], dtype=VERTEX_DTYPE)
    eb_y = np.asarray([cell(int(ii), 0) for ii in i], dtype=VERTEX_DTYPE)
    nodes_y = np.stack([nid[1:, nv], nid[:-1, nv]], axis=1).astype(VERTEX_DTYPE)
    elem_a = np.concatenate([ea_x, ea_y])
    elem_b = np.concatenate([eb_x, eb_y])
    nodes_a = np.vstack([nodes_x, nodes_y])
    counts = np.full(elem_a.size, 2, dtype=VERTEX_DTYPE)
    return Mesh(
        points,
        cells,
        ElementType.QUAD,
        order=3,
        name=name,
        identified_faces=(elem_a, elem_b, nodes_a, counts),
    )


def twist_hex(n: int = 8, *, twists: int = 3, name: str = "twist-hex") -> Mesh:
    """The MFEM twist miniapp: a z-periodic bar whose ends are glued with
    a rotation of ``twists`` quarter turns (Table 4: twists 3 and 6).

    Elements = ``2n * 2n * 16n``.  The bar itself is straight; the glued
    identification means every ordinate with a nonzero axial component
    drives flux around the periodic direction forever — the sweep graph
    is a single SCC containing every element (Table 2: twist-hex, 1 SCC,
    DAG depth 1, for all ordinates).
    """
    m_cs = 2 * n
    nz = 16 * n
    half_w = 0.6
    length = 6.0
    mesh = structured_hex_grid(
        (m_cs, m_cs, nz), (2 * half_w, 2 * half_w, length), name=name
    )

    # element (i, j, k) index in the structured grid (i-major, then j, k)
    def cell(i, j, k):
        return (i * m_cs + j) * nz + k

    # rotate cross-section CELL (i, j) by `twists` quarter turns
    def rot_cell(i, j, times):
        for _ in range(times % 4):
            i, j = j, m_cs - 1 - i
        return i, j

    nid = np.arange((m_cs + 1) * (m_cs + 1) * (nz + 1), dtype=VERTEX_DTYPE).reshape(
        m_cs + 1, m_cs + 1, nz + 1
    )
    elem_a = []
    elem_b = []
    nodes_a = []
    for i in range(m_cs):
        for j in range(m_cs):
            ri, rj = rot_cell(i, j, twists)
            elem_a.append(cell(i, j, nz - 1))
            elem_b.append(cell(ri, rj, 0))
            # A's top face (local 4,5,6,7) = nodes at the z = L plane
            nodes_a.append(
                [nid[i, j, nz], nid[i + 1, j, nz], nid[i + 1, j + 1, nz], nid[i, j + 1, nz]]
            )
    return Mesh(
        mesh.base_points,
        mesh.cells,
        ElementType.HEX,
        order=3,
        name=name,
        identified_faces=(
            np.asarray(elem_a, dtype=VERTEX_DTYPE),
            np.asarray(elem_b, dtype=VERTEX_DTYPE),
            np.asarray(nodes_a, dtype=VERTEX_DTYPE),
            np.full(len(elem_a), 4, dtype=VERTEX_DTYPE),
        ),
    )
