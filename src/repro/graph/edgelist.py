"""COO edge-list container used as the SCC worklist representation.

The ECL-SCC implementation is *edge-based* (paper §3.3): each outer
iteration consumes a worklist of edges and Phase 3 emits a (usually
smaller) worklist instead of rebuilding a CSR graph.  :class:`EdgeList`
is that worklist: two parallel arrays plus the vertex-count context.

It intentionally stays mutable-by-replacement: all operations return new
instances; the arrays themselves are never written in place by library
code once wrapped.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..errors import GraphFormatError
from ..types import VERTEX_DTYPE, as_vertex_array
from .csr import CSRGraph

__all__ = ["EdgeList"]


class EdgeList:
    """Parallel ``src``/``dst`` arrays describing directed edges.

    Parameters
    ----------
    src, dst:
        equal-length integer arrays with entries in ``[0, num_vertices)``.
    num_vertices:
        the vertex-space size; defaults to ``max(src, dst) + 1``.
    """

    __slots__ = ("src", "dst", "num_vertices")

    def __init__(
        self,
        src: "np.ndarray | Iterable[int]",
        dst: "np.ndarray | Iterable[int]",
        num_vertices: "int | None" = None,
        *,
        validate: bool = True,
    ) -> None:
        self.src = as_vertex_array(src, "src")
        self.dst = as_vertex_array(dst, "dst")
        if self.src.shape != self.dst.shape:
            raise GraphFormatError(
                f"src and dst must have equal length, got {self.src.size} and {self.dst.size}"
            )
        if num_vertices is None:
            num_vertices = int(
                max(self.src.max(initial=-1), self.dst.max(initial=-1)) + 1
            )
        self.num_vertices = int(num_vertices)
        if validate:
            if self.num_vertices < 0:
                raise GraphFormatError(
                    f"num_vertices must be >= 0, got {self.num_vertices}"
                )
            if self.src.size:
                lo = min(int(self.src.min()), int(self.dst.min()))
                hi = max(int(self.src.max()), int(self.dst.max()))
                if lo < 0 or hi >= self.num_vertices:
                    raise GraphFormatError(
                        f"edge endpoints must lie in [0, {self.num_vertices}),"
                        f" found range [{lo}, {hi}]"
                    )

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: CSRGraph) -> "EdgeList":
        """Edge list of *graph* in CSR order."""
        src, dst = graph.edges()
        return cls(src, dst, graph.num_vertices, validate=False)

    @classmethod
    def empty(cls, num_vertices: int = 0) -> "EdgeList":
        return cls(
            np.empty(0, dtype=VERTEX_DTYPE),
            np.empty(0, dtype=VERTEX_DTYPE),
            num_vertices,
            validate=False,
        )

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return self.src.size

    def __len__(self) -> int:
        return self.src.size

    def to_graph(self, *, name: str = "") -> CSRGraph:
        return CSRGraph.from_edges(self.src, self.dst, self.num_vertices, name=name)

    def select(self, mask: np.ndarray) -> "EdgeList":
        """Keep only edges where boolean *mask* is True."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != self.src.shape:
            raise GraphFormatError(
                "mask must be a boolean array parallel to the edge arrays"
            )
        return EdgeList(
            self.src[mask], self.dst[mask], self.num_vertices, validate=False
        )

    def reversed(self) -> "EdgeList":
        """Edge list with every edge direction flipped."""
        return EdgeList(self.dst, self.src, self.num_vertices, validate=False)

    def concatenate(self, other: "EdgeList") -> "EdgeList":
        """Union (as multisets) of two edge lists over the same vertex space."""
        if other.num_vertices != self.num_vertices:
            raise GraphFormatError(
                "cannot concatenate edge lists over different vertex spaces"
                f" ({self.num_vertices} vs {other.num_vertices})"
            )
        return EdgeList(
            np.concatenate([self.src, other.src]),
            np.concatenate([self.dst, other.dst]),
            self.num_vertices,
            validate=False,
        )

    def dedup(self) -> "EdgeList":
        """Remove duplicate (src, dst) pairs; order not preserved."""
        if self.src.size == 0:
            return self
        n = max(self.num_vertices, 1)
        key = self.src * np.int64(n) + self.dst
        _, keep = np.unique(key, return_index=True)
        return EdgeList(
            self.src[keep], self.dst[keep], self.num_vertices, validate=False
        )

    def sorted_by_src(self) -> "EdgeList":
        order = np.argsort(self.src, kind="stable")
        return EdgeList(
            self.src[order], self.dst[order], self.num_vertices, validate=False
        )

    def sorted_by_dst(self) -> "EdgeList":
        order = np.argsort(self.dst, kind="stable")
        return EdgeList(
            self.src[order], self.dst[order], self.num_vertices, validate=False
        )

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.src, self.dst

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<EdgeList |V|={self.num_vertices} |E|={self.num_edges}>"
