"""Interoperability: SciPy sparse matrices and NetworkX digraphs.

Bridges in both directions, plus :func:`scipy_scc` — SciPy's compiled
``connected_components(connection="strong")`` wrapped to this library's
max-member-ID label convention.  The test suite uses it (and NetworkX's
``strongly_connected_components``) as *independent third-party oracles*
on top of our own Tarjan/Kosaraju, so a common bug in the in-repo
implementations cannot self-validate.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphFormatError
from ..types import VERTEX_DTYPE
from .csr import CSRGraph

__all__ = [
    "from_scipy_sparse",
    "to_scipy_sparse",
    "from_networkx",
    "to_networkx",
    "scipy_scc",
]


def from_scipy_sparse(matrix) -> CSRGraph:
    """Adjacency matrix -> digraph: ``A[i, j] != 0`` becomes edge i -> j.

    Accepts any SciPy sparse format (converted to CSR internally).
    Explicit zeros are dropped; values are otherwise ignored.
    """
    from scipy import sparse

    if not sparse.issparse(matrix):
        raise GraphFormatError("from_scipy_sparse expects a scipy.sparse matrix")
    if matrix.shape[0] != matrix.shape[1]:
        raise GraphFormatError(
            f"adjacency matrix must be square, got {matrix.shape}"
        )
    csr = matrix.tocsr()
    csr.eliminate_zeros()
    return CSRGraph(
        csr.indptr.astype(np.int64), csr.indices.astype(VERTEX_DTYPE)
    )


def to_scipy_sparse(graph: CSRGraph):
    """Digraph -> CSR adjacency matrix with unit weights.

    Duplicate edges sum, so the value of ``A[i, j]`` is the edge
    multiplicity.
    """
    from scipy import sparse

    n = graph.num_vertices
    data = np.ones(graph.num_edges, dtype=np.int64)
    mat = sparse.csr_matrix(
        (data, graph.indices.copy(), graph.indptr.copy()), shape=(n, n)
    )
    mat.sum_duplicates()
    return mat


def from_networkx(nx_graph) -> CSRGraph:
    """NetworkX DiGraph -> CSRGraph; nodes must be hashable, any labels.

    Node order follows ``nx_graph.nodes`` iteration order; the returned
    graph's vertex ``i`` is the i-th node in that order.
    """
    import networkx as nx

    if not isinstance(nx_graph, (nx.DiGraph, nx.MultiDiGraph)):
        raise GraphFormatError("from_networkx expects a DiGraph/MultiDiGraph")
    nodes = list(nx_graph.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    src = np.fromiter(
        (index[u] for u, _ in nx_graph.edges()), dtype=VERTEX_DTYPE,
        count=nx_graph.number_of_edges(),
    )
    dst = np.fromiter(
        (index[v] for _, v in nx_graph.edges()), dtype=VERTEX_DTYPE,
        count=nx_graph.number_of_edges(),
    )
    return CSRGraph.from_edges(src, dst, len(nodes))


def to_networkx(graph: CSRGraph):
    """CSRGraph -> NetworkX MultiDiGraph (multiplicity preserved)."""
    import networkx as nx

    g = nx.MultiDiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    src, dst = graph.edges()
    g.add_edges_from(zip(src.tolist(), dst.tolist()))
    return g


def scipy_scc(graph: CSRGraph) -> np.ndarray:
    """SCC labels via SciPy's compiled Tarjan, max-member normalized."""
    from scipy.sparse import csgraph

    from ..engine.primitives import normalize_labels_to_max

    if graph.num_vertices == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    _, labels = csgraph.connected_components(
        to_scipy_sparse(graph), directed=True, connection="strong"
    )
    return normalize_labels_to_max(labels.astype(VERTEX_DTYPE))
