"""Graph property reports: degrees, weak components, reachability BFS.

These feed the Table 1/2/3 property rows and a couple of the baselines
(Hong's method uses weakly connected components; FB uses BFS reach sets).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import VERTEX_DTYPE
from .csr import CSRGraph

__all__ = [
    "DegreeStats",
    "degree_stats",
    "bfs_reach",
    "bfs_levels",
    "weakly_connected_components",
    "graph_diameter_estimate",
]


@dataclass(frozen=True)
class DegreeStats:
    """Degree summary matching the columns of Tables 1-3."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    max_in_degree: int
    max_out_degree: int

    def as_row(self) -> "dict[str, float | int]":
        return {
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "avg_deg": round(self.avg_degree, 2),
            "max_din": self.max_in_degree,
            "max_dout": self.max_out_degree,
        }


def degree_stats(graph: CSRGraph) -> DegreeStats:
    """Compute the degree summary used in the paper's input tables."""
    n, m = graph.num_vertices, graph.num_edges
    return DegreeStats(
        num_vertices=n,
        num_edges=m,
        avg_degree=(m / n) if n else 0.0,
        max_in_degree=int(graph.in_degree().max(initial=0)),
        max_out_degree=int(graph.out_degree().max(initial=0)),
    )


def bfs_reach(graph: CSRGraph, sources: np.ndarray, *, mask: "np.ndarray | None" = None) -> np.ndarray:
    """Boolean reach set of a frontier BFS from *sources*.

    ``mask`` (optional boolean per-vertex array) restricts traversal to a
    subgraph: only vertices with ``mask[v]`` may be visited.  Sources
    outside the mask are ignored.  Runs level-synchronously with NumPy
    frontier expansion — the same data-parallel structure a GPU BFS has.
    """
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    sources = np.asarray(sources, dtype=VERTEX_DTYPE).ravel()
    if mask is not None:
        sources = sources[mask[sources]]
    visited[sources] = True
    frontier = np.unique(sources)
    indptr, indices = graph.indptr, graph.indices
    while frontier.size:
        counts = indptr[frontier + 1] - indptr[frontier]
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.repeat(indptr[frontier], counts) + _ragged_arange(counts)
        nxt = indices[offsets]
        if mask is not None:
            nxt = nxt[mask[nxt]]
        nxt = nxt[~visited[nxt]]
        frontier = np.unique(nxt)
        visited[frontier] = True
    return visited


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Per-vertex BFS distance from *source* (-1 for unreachable)."""
    n = graph.num_vertices
    level = np.full(n, -1, dtype=VERTEX_DTYPE)
    level[source] = 0
    frontier = np.asarray([source], dtype=VERTEX_DTYPE)
    depth = 0
    indptr, indices = graph.indptr, graph.indices
    while frontier.size:
        depth += 1
        counts = indptr[frontier + 1] - indptr[frontier]
        if int(counts.sum()) == 0:
            break
        offsets = np.repeat(indptr[frontier], counts) + _ragged_arange(counts)
        nxt = indices[offsets]
        nxt = nxt[level[nxt] < 0]
        frontier = np.unique(nxt)
        level[frontier] = depth
    return level


def weakly_connected_components(graph: CSRGraph) -> np.ndarray:
    """Per-vertex weak-component label via label propagation (min ID).

    Pointer-jumping label propagation on the symmetrized edge set —
    O(E log V) vectorized rounds, no recursion.  Labels are the minimum
    vertex ID in each component (so they are *not* dense; densify with
    :func:`repro.graph.condensation.compact_labels` if needed).
    """
    n = graph.num_vertices
    label = np.arange(n, dtype=VERTEX_DTYPE)
    src, dst = graph.edges()
    if src.size == 0:
        return label
    us = np.concatenate([src, dst])
    vs = np.concatenate([dst, src])
    while True:
        # hook: every vertex adopts the min label among itself + neighbours
        gathered = label[vs]
        new = label.copy()
        np.minimum.at(new, us, gathered)
        # pointer jumping (path compression) until stable
        while True:
            jumped = new[new]
            if np.array_equal(jumped, new):
                break
            new = jumped
        if np.array_equal(new, label):
            return label
        label = new


def graph_diameter_estimate(graph: CSRGraph, samples: int = 4, seed: int = 0) -> int:
    """Lower-bound estimate of directed diameter via sampled BFS sweeps."""
    n = graph.num_vertices
    if n == 0:
        return 0
    rng = np.random.default_rng(seed)
    best = 0
    for _ in range(samples):
        v = int(rng.integers(n))
        lv = bfs_levels(graph, v)
        best = max(best, int(lv.max(initial=0)))
    return best


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    ids = np.arange(total, dtype=VERTEX_DTYPE)
    resets = np.repeat(np.cumsum(counts) - counts, counts)
    return ids - resets
