"""Graph file I/O: Matrix Market, plain edge lists, DIMACS.

The original evaluation reads SuiteSparse ``.mtx`` files; this module
implements enough of each format for round-tripping the graphs this
library generates and for loading real matrices if a user has them on
disk.  Parsing is vectorized (``np.loadtxt`` on the body) — a 60M-edge
file parses in seconds, not minutes.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import IOFormatError
from ..types import VERTEX_DTYPE
from .csr import CSRGraph

__all__ = [
    "read_matrix_market",
    "write_matrix_market",
    "read_edge_list",
    "write_edge_list",
    "read_dimacs",
    "write_dimacs",
    "read_npz",
    "write_npz",
]

PathLike = Union[str, Path]


def _open_text(path: PathLike):
    return open(path, "rt", encoding="utf-8")


# ---------------------------------------------------------------------------
# Matrix Market (coordinate pattern / integer / real; general or symmetric)
# ---------------------------------------------------------------------------

def read_matrix_market(path: PathLike) -> CSRGraph:
    """Read a MatrixMarket coordinate file as a digraph (A[i,j] => i -> j).

    Symmetric matrices produce both edge directions, matching how the SCC
    literature treats structurally-symmetric matrices like cage14.
    Values (if present) are ignored — only the pattern matters for SCCs.
    """
    with _open_text(path) as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise IOFormatError(f"{path}: missing MatrixMarket header")
        parts = header.split()
        if len(parts) < 5 or parts[1].lower() != "matrix" or parts[2].lower() != "coordinate":
            raise IOFormatError(f"{path}: only 'matrix coordinate' supported")
        symmetry = parts[4].lower()
        if symmetry not in ("general", "symmetric", "skew-symmetric"):
            raise IOFormatError(f"{path}: unsupported symmetry {symmetry!r}")
        # skip comments
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        try:
            rows, cols, nnz = (int(x) for x in line.split()[:3])
        except ValueError as e:
            raise IOFormatError(f"{path}: bad size line {line!r}") from e
        if nnz > 0:
            body = np.loadtxt(fh, dtype=np.float64, ndmin=2, max_rows=nnz)
        else:
            body = np.empty((0, 2))
    if body.size == 0:
        body = body.reshape(0, 2)
    if body.shape[0] != nnz:
        raise IOFormatError(
            f"{path}: expected {nnz} entries, found {body.shape[0]}"
        )
    src = body[:, 0].astype(VERTEX_DTYPE) - 1
    dst = body[:, 1].astype(VERTEX_DTYPE) - 1
    n = max(rows, cols)
    if symmetry in ("symmetric", "skew-symmetric"):
        off = src != dst
        src, dst = np.concatenate([src, dst[off]]), np.concatenate([dst, src[off]])
    return CSRGraph.from_edges(src, dst, n, name=Path(path).stem)


def write_matrix_market(path: PathLike, graph: CSRGraph) -> None:
    """Write *graph* as a general pattern coordinate MatrixMarket file."""
    src, dst = graph.edges()
    n = graph.num_vertices
    with open(path, "wt", encoding="utf-8") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern general\n")
        fh.write(f"% written by repro; |V|={n} |E|={graph.num_edges}\n")
        fh.write(f"{n} {n} {graph.num_edges}\n")
        buf = _io.StringIO()
        np.savetxt(buf, np.column_stack([src + 1, dst + 1]), fmt="%d %d")
        fh.write(buf.getvalue())


# ---------------------------------------------------------------------------
# Plain edge lists ("src dst" per line, '#' comments)
# ---------------------------------------------------------------------------

def read_edge_list(path: PathLike, *, zero_based: bool = True) -> CSRGraph:
    """Read a whitespace-separated edge list (SNAP style)."""
    try:
        body = np.loadtxt(path, dtype=np.int64, comments="#", ndmin=2)
    except ValueError as e:
        raise IOFormatError(f"{path}: could not parse edge list") from e
    if body.size == 0:
        return CSRGraph.empty(0, name=Path(path).stem)
    if body.shape[1] < 2:
        raise IOFormatError(f"{path}: need at least two columns")
    src = body[:, 0].astype(VERTEX_DTYPE)
    dst = body[:, 1].astype(VERTEX_DTYPE)
    if not zero_based:
        src, dst = src - 1, dst - 1
    if src.min(initial=0) < 0 or dst.min(initial=0) < 0:
        raise IOFormatError(f"{path}: negative vertex IDs")
    return CSRGraph.from_edges(src, dst, name=Path(path).stem)


def write_edge_list(path: PathLike, graph: CSRGraph) -> None:
    """Write *graph* as a zero-based whitespace edge list ('# ' header)."""
    src, dst = graph.edges()
    header = f"# repro edge list |V|={graph.num_vertices} |E|={graph.num_edges}"
    np.savetxt(path, np.column_stack([src, dst]), fmt="%d", header=header)


# ---------------------------------------------------------------------------
# DIMACS (9th challenge 'sp' format, weights ignored)
# ---------------------------------------------------------------------------

def read_dimacs(path: PathLike) -> CSRGraph:
    """Read DIMACS shortest-path format ('p sp N M', 'a u v [w]' lines)."""
    n = None
    srcs: "list[str]" = []
    with _open_text(path) as fh:
        arc_lines = []
        for line in fh:
            if line.startswith("c") or not line.strip():
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) < 4:
                    raise IOFormatError(f"{path}: bad problem line {line!r}")
                n = int(parts[2])
            elif line.startswith("a"):
                arc_lines.append(line[1:])
            else:
                raise IOFormatError(f"{path}: unexpected line {line!r}")
    if n is None:
        raise IOFormatError(f"{path}: missing 'p' problem line")
    if arc_lines:
        body = np.loadtxt(_io.StringIO("".join(arc_lines)), dtype=np.int64, ndmin=2)
        src = body[:, 0].astype(VERTEX_DTYPE) - 1
        dst = body[:, 1].astype(VERTEX_DTYPE) - 1
    else:
        src = dst = np.empty(0, dtype=VERTEX_DTYPE)
    return CSRGraph.from_edges(src, dst, n, name=Path(path).stem)


def write_dimacs(path: PathLike, graph: CSRGraph) -> None:
    """Write *graph* in DIMACS 'sp' format with unit arc weights."""
    src, dst = graph.edges()
    with open(path, "wt", encoding="utf-8") as fh:
        fh.write("c written by repro\n")
        fh.write(f"p sp {graph.num_vertices} {graph.num_edges}\n")
        buf = _io.StringIO()
        np.savetxt(
            buf, np.column_stack([src + 1, dst + 1]), fmt="a %d %d 1"
        )
        fh.write(buf.getvalue())


# ---------------------------------------------------------------------------
# NPZ (binary CSR) — fast caching of generated workloads
# ---------------------------------------------------------------------------

def write_npz(path: PathLike, graph: CSRGraph) -> None:
    """Write *graph* as a compressed ``.npz`` CSR bundle (fast round trip)."""
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        name=np.array(graph.name),
    )


def read_npz(path: PathLike) -> CSRGraph:
    """Read a graph written by :func:`write_npz`."""
    try:
        with np.load(path, allow_pickle=False) as data:
            indptr = data["indptr"]
            indices = data["indices"]
            name = str(data["name"]) if "name" in data else ""
    except (KeyError, ValueError, OSError) as e:
        raise IOFormatError(f"{path}: not a repro graph npz bundle") from e
    return CSRGraph(indptr, indices, name=name)
