"""Graph substrate: containers, transforms, generators, and I/O.

Public surface::

    from repro.graph import CSRGraph, EdgeList
    g = CSRGraph.from_edges([0, 1, 2], [1, 2, 0])
"""

from .csr import CSRGraph
from .edgelist import EdgeList
from .build import (
    from_networkx,
    from_scipy_sparse,
    scipy_scc,
    to_networkx,
    to_scipy_sparse,
)
from .ops import (
    add_edges,
    disjoint_union,
    induced_subgraph,
    permute_random,
    relabel,
    remove_edges_mask,
    replicate,
)
from .condensation import compact_labels, condense, dag_depth, topological_levels
from .properties import (
    DegreeStats,
    bfs_levels,
    bfs_reach,
    degree_stats,
    graph_diameter_estimate,
    weakly_connected_components,
)
from .generators import (
    complete_digraph,
    cycle_graph,
    dag_chain_of_cliques,
    grid_dag,
    path_graph,
    planted_scc_graph,
    random_gnm,
    random_gnp,
    random_tournament,
    scc_ladder,
)
from .rmat import preferential_attachment_digraph, rmat_graph
from .suite import (
    POWER_LAW_SPECS,
    PowerLawSpec,
    build_powerlaw,
    default_scale,
    powerlaw_suite,
)
from .io import (
    read_dimacs,
    read_edge_list,
    read_matrix_market,
    read_npz,
    write_dimacs,
    write_edge_list,
    write_matrix_market,
    write_npz,
)

__all__ = [
    "CSRGraph",
    "EdgeList",
    "from_networkx",
    "from_scipy_sparse",
    "scipy_scc",
    "to_networkx",
    "to_scipy_sparse",
    "add_edges",
    "disjoint_union",
    "induced_subgraph",
    "permute_random",
    "relabel",
    "remove_edges_mask",
    "replicate",
    "compact_labels",
    "condense",
    "dag_depth",
    "topological_levels",
    "DegreeStats",
    "bfs_levels",
    "bfs_reach",
    "degree_stats",
    "graph_diameter_estimate",
    "weakly_connected_components",
    "complete_digraph",
    "cycle_graph",
    "dag_chain_of_cliques",
    "grid_dag",
    "path_graph",
    "planted_scc_graph",
    "random_gnm",
    "random_gnp",
    "random_tournament",
    "scc_ladder",
    "preferential_attachment_digraph",
    "rmat_graph",
    "POWER_LAW_SPECS",
    "PowerLawSpec",
    "build_powerlaw",
    "default_scale",
    "powerlaw_suite",
    "read_dimacs",
    "read_edge_list",
    "read_matrix_market",
    "read_npz",
    "write_dimacs",
    "write_edge_list",
    "write_matrix_market",
    "write_npz",
]
