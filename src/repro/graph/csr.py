"""Compressed-sparse-row directed graph.

:class:`CSRGraph` is the central immutable graph container of the library.
It stores out-edges in CSR form (``indptr``, ``indices``) and lazily caches
the transpose (in-edge CSR) and the flat COO edge arrays that the
edge-centric SCC kernels consume.

Design notes
------------
* Vertices are dense integers ``0..n-1``; the SCC algorithms in this
  library treat the vertex ID itself as data (max-ID propagation), so the
  container guarantees IDs are contiguous.
* Parallel (duplicate) edges and self-loops are permitted — they occur
  naturally in sweep graphs built from re-entrant faces and in raw
  SuiteSparse-style inputs — and every algorithm must tolerate them.
  ``dedup()`` produces a simple graph when one is wanted.
* The container is logically immutable.  Mutating the underlying arrays
  after construction is undefined behaviour; all transformation helpers
  return new graphs.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from ..errors import GraphFormatError
from ..types import INDPTR_DTYPE, VERTEX_DTYPE, as_indptr_array, as_vertex_array

__all__ = ["CSRGraph"]


class CSRGraph:
    """Immutable directed graph in CSR (out-adjacency) form.

    Parameters
    ----------
    indptr:
        ``(n+1,)`` nondecreasing int array, ``indptr[0] == 0`` and
        ``indptr[-1] == m``.
    indices:
        ``(m,)`` int array of edge destinations, each in ``[0, n)``.
    validate:
        When True (default) the arrays are checked; pass False only for
        arrays produced by trusted internal code on hot paths.
    """

    __slots__ = ("indptr", "indices", "_transpose", "_src", "_name")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        validate: bool = True,
        name: str = "",
    ) -> None:
        self.indptr = as_indptr_array(indptr, "indptr")
        self.indices = as_vertex_array(indices, "indices")
        self._transpose: "CSRGraph | None" = None
        self._src: "np.ndarray | None" = None
        self._name = str(name)
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        src: "np.ndarray | Iterable[int]",
        dst: "np.ndarray | Iterable[int]",
        num_vertices: "int | None" = None,
        *,
        name: str = "",
    ) -> "CSRGraph":
        """Build a graph from parallel ``src``/``dst`` edge arrays.

        ``num_vertices`` defaults to ``max(src, dst) + 1`` (0 for no edges).
        Duplicate edges are preserved; edge order within a source's
        adjacency list follows the input order (stable counting sort).
        """
        s = as_vertex_array(src, "src")
        d = as_vertex_array(dst, "dst")
        if s.shape != d.shape:
            raise GraphFormatError(
                f"src and dst must have equal length, got {s.size} and {d.size}"
            )
        if num_vertices is None:
            num_vertices = int(max(s.max(initial=-1), d.max(initial=-1)) + 1)
        n = int(num_vertices)
        if n < 0:
            raise GraphFormatError(f"num_vertices must be >= 0, got {n}")
        if s.size:
            lo = min(int(s.min()), int(d.min()))
            hi = max(int(s.max()), int(d.max()))
            if lo < 0 or hi >= n:
                raise GraphFormatError(
                    f"edge endpoints must lie in [0, {n}), found range [{lo}, {hi}]"
                )
        counts = np.bincount(s, minlength=n).astype(INDPTR_DTYPE, copy=False)
        indptr = np.zeros(n + 1, dtype=INDPTR_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(s, kind="stable")
        indices = d[order]
        return cls(indptr, indices, validate=False, name=name)

    @classmethod
    def empty(cls, num_vertices: int = 0, *, name: str = "") -> "CSRGraph":
        """Graph with *num_vertices* vertices and no edges."""
        n = int(num_vertices)
        if n < 0:
            raise GraphFormatError(f"num_vertices must be >= 0, got {n}")
        return cls(
            np.zeros(n + 1, dtype=INDPTR_DTYPE),
            np.empty(0, dtype=VERTEX_DTYPE),
            validate=False,
            name=name,
        )

    @classmethod
    def from_adjacency(
        cls, adjacency: Sequence[Sequence[int]], *, name: str = ""
    ) -> "CSRGraph":
        """Build from a list-of-lists out-adjacency description.

        Convenient in tests: ``CSRGraph.from_adjacency([[1], [2], [0]])`` is
        the 3-cycle.
        """
        n = len(adjacency)
        counts = np.fromiter((len(a) for a in adjacency), dtype=INDPTR_DTYPE, count=n)
        indptr = np.zeros(n + 1, dtype=INDPTR_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        flat: list[int] = []
        for a in adjacency:
            flat.extend(int(x) for x in a)
        indices = np.asarray(flat, dtype=VERTEX_DTYPE)
        return cls(indptr, indices, name=name)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        return self.indices.size

    @property
    def name(self) -> str:
        return self._name

    def with_name(self, name: str) -> "CSRGraph":
        """Return a shallow copy carrying *name* (shares arrays)."""
        g = CSRGraph(self.indptr, self.indices, validate=False, name=name)
        g._transpose = self._transpose
        g._src = self._src
        return g

    def out_degree(self) -> np.ndarray:
        """``(n,)`` array of out-degrees."""
        return np.diff(self.indptr)

    def in_degree(self) -> np.ndarray:
        """``(n,)`` array of in-degrees."""
        return np.bincount(self.indices, minlength=self.num_vertices).astype(
            VERTEX_DTYPE, copy=False
        )

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbours of vertex *v* (a view into ``indices``)."""
        v = int(v)
        if not 0 <= v < self.num_vertices:
            raise IndexError(f"vertex {v} out of range [0, {self.num_vertices})")
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    # ------------------------------------------------------------------
    # derived forms (cached)
    # ------------------------------------------------------------------
    def edge_sources(self) -> np.ndarray:
        """``(m,)`` array of edge sources aligned with ``indices`` (cached)."""
        if self._src is None:
            self._src = np.repeat(
                np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self.out_degree()
            )
        return self._src

    def edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Edge arrays ``(src, dst)`` in CSR order."""
        return self.edge_sources(), self.indices

    def transpose(self) -> "CSRGraph":
        """Reverse graph (in-adjacency of ``self``), cached both ways."""
        if self._transpose is None:
            src, dst = self.edges()
            t = CSRGraph.from_edges(
                dst, src, self.num_vertices, name=self._name + ".T" if self._name else ""
            )
            t._transpose = self
            self._transpose = t
        return self._transpose

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def dedup(self) -> "CSRGraph":
        """Return a copy with duplicate edges removed (self-loops kept once)."""
        src, dst = self.edges()
        if src.size == 0:
            return CSRGraph.empty(self.num_vertices, name=self._name)
        key = src * np.int64(self.num_vertices if self.num_vertices else 1) + dst
        _, keep = np.unique(key, return_index=True)
        return CSRGraph.from_edges(
            src[keep], dst[keep], self.num_vertices, name=self._name
        )

    def without_self_loops(self) -> "CSRGraph":
        """Return a copy with all self-loop edges removed."""
        src, dst = self.edges()
        keep = src != dst
        return CSRGraph.from_edges(
            src[keep], dst[keep], self.num_vertices, name=self._name
        )

    def reverse_copy(self) -> "CSRGraph":
        """Freshly built reverse graph (no cache sharing)."""
        src, dst = self.edges()
        return CSRGraph.from_edges(dst, src, self.num_vertices)

    # ------------------------------------------------------------------
    # comparisons / misc
    # ------------------------------------------------------------------
    def same_structure(self, other: "CSRGraph") -> bool:
        """True iff both graphs have identical vertex count and edge multiset."""
        if self.num_vertices != other.num_vertices:
            return False
        if self.num_edges != other.num_edges:
            return False
        a_src, a_dst = self.edges()
        b_src, b_dst = other.edges()
        n = max(self.num_vertices, 1)
        a = np.sort(a_src * np.int64(n) + a_dst)
        b = np.sort(b_src * np.int64(n) + b_dst)
        return bool(np.array_equal(a, b))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self._name!r}" if self._name else ""
        return (
            f"<CSRGraph{label} |V|={self.num_vertices} |E|={self.num_edges}>"
        )

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        indptr, indices = self.indptr, self.indices
        if indptr.size < 1:
            raise GraphFormatError("indptr must have at least one entry")
        if indptr[0] != 0:
            raise GraphFormatError(f"indptr[0] must be 0, got {indptr[0]}")
        if np.any(np.diff(indptr) < 0):
            raise GraphFormatError("indptr must be nondecreasing")
        if indptr[-1] != indices.size:
            raise GraphFormatError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) ({indices.size})"
            )
        n = indptr.size - 1
        if indices.size:
            lo, hi = int(indices.min()), int(indices.max())
            if lo < 0 or hi >= n:
                raise GraphFormatError(
                    f"edge destinations must lie in [0, {n}), found [{lo}, {hi}]"
                )
