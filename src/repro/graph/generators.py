"""Synthetic digraph generators for tests and microbenchmarks.

The generators here produce *structurally controlled* inputs: graphs whose
SCC layout (count, sizes, DAG depth) is known by construction.  They are
used by the unit/property tests to validate the SCC codes and by the
kernel microbenchmarks; the paper-matched workloads live in
:mod:`repro.graph.suite` (power-law) and :mod:`repro.mesh.suite` (meshes).
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphFormatError
from ..types import VERTEX_DTYPE
from .csr import CSRGraph
from .ops import disjoint_union, permute_random

__all__ = [
    "cycle_graph",
    "path_graph",
    "complete_digraph",
    "random_gnm",
    "random_gnp",
    "dag_chain_of_cliques",
    "scc_ladder",
    "grid_dag",
    "planted_scc_graph",
    "random_tournament",
]


def cycle_graph(n: int) -> CSRGraph:
    """Directed n-cycle 0 -> 1 -> ... -> n-1 -> 0 (one SCC, longest cycle n)."""
    if n < 1:
        raise GraphFormatError("cycle_graph needs n >= 1")
    v = np.arange(n, dtype=VERTEX_DTYPE)
    return CSRGraph.from_edges(v, (v + 1) % n, n, name=f"cycle{n}")


def path_graph(n: int) -> CSRGraph:
    """Directed path 0 -> 1 -> ... -> n-1 (n trivial SCCs, DAG depth n)."""
    if n < 1:
        raise GraphFormatError("path_graph needs n >= 1")
    v = np.arange(n - 1, dtype=VERTEX_DTYPE)
    return CSRGraph.from_edges(v, v + 1, n, name=f"path{n}")


def complete_digraph(n: int) -> CSRGraph:
    """All ordered pairs (u, v), u != v (one SCC)."""
    u, v = np.meshgrid(np.arange(n, dtype=VERTEX_DTYPE), np.arange(n, dtype=VERTEX_DTYPE))
    src, dst = u.ravel(), v.ravel()
    keep = src != dst
    return CSRGraph.from_edges(src[keep], dst[keep], n, name=f"K{n}")


def random_gnm(n: int, m: int, seed: "int | None" = None, *, self_loops: bool = False) -> CSRGraph:
    """Uniform random digraph with n vertices and m edges (with replacement)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m, dtype=VERTEX_DTYPE)
    dst = rng.integers(0, n, size=m, dtype=VERTEX_DTYPE)
    if not self_loops and n > 1:
        loops = src == dst
        dst[loops] = (dst[loops] + 1) % n
    return CSRGraph.from_edges(src, dst, n, name=f"gnm_{n}_{m}")


def random_gnp(n: int, p: float, seed: "int | None" = None) -> CSRGraph:
    """Erdos-Renyi digraph: each ordered pair independently with prob p."""
    rng = np.random.default_rng(seed)
    m_expect = p * n * (n - 1)
    if m_expect > 5e7:
        raise GraphFormatError("random_gnp parameters would produce too many edges")
    # sample pair indices directly for small n
    mask = rng.random((n, n)) < p
    np.fill_diagonal(mask, False)
    src, dst = np.nonzero(mask)
    return CSRGraph.from_edges(
        src.astype(VERTEX_DTYPE), dst.astype(VERTEX_DTYPE), n, name=f"gnp_{n}"
    )


def dag_chain_of_cliques(k: int, clique: int, seed: "int | None" = None) -> CSRGraph:
    """Chain of k bidirectional cliques of size ``clique`` linked forward.

    Produces exactly k SCCs of equal size forming a DAG path of depth k —
    the adversarial deep-DAG shape the paper's mesh graphs approximate.
    Vertex IDs are randomly permuted so max-ID propagation sees a generic
    labelling.
    """
    blocks = [complete_digraph(clique) for _ in range(k)]
    g = disjoint_union(blocks)
    # link clique i's vertex 0 to clique i+1's vertex 0
    link_src = (np.arange(k - 1, dtype=VERTEX_DTYPE)) * clique
    link_dst = link_src + clique
    src, dst = g.edges()
    g = CSRGraph.from_edges(
        np.concatenate([src, link_src]),
        np.concatenate([dst, link_dst]),
        g.num_vertices,
        name=f"chain{k}x{clique}",
    )
    g, _ = permute_random(g, seed)
    return g.with_name(f"chain{k}x{clique}")


def scc_ladder(rungs: int) -> CSRGraph:
    """Ladder of 2-cycles: pairs (2i, 2i+1) mutually linked, plus 2i -> 2i+2.

    rungs SCCs of size 2 in a depth-``rungs`` DAG; the canonical Trim-2
    workload.
    """
    if rungs < 1:
        raise GraphFormatError("scc_ladder needs rungs >= 1")
    i = np.arange(rungs, dtype=VERTEX_DTYPE)
    a, b = 2 * i, 2 * i + 1
    src = np.concatenate([a, b, a[:-1]])
    dst = np.concatenate([b, a, a[:-1] + 2])
    return CSRGraph.from_edges(src, dst, 2 * rungs, name=f"ladder{rungs}")


def grid_dag(rows: int, cols: int) -> CSRGraph:
    """Acyclic 2-D grid: edges right and down.  All-trivial SCCs, deep DAG.

    This mimics the structured beam-hex / star sweep graphs (constant
    degree <= 2, DAG depth rows+cols-1).
    """
    idx = np.arange(rows * cols, dtype=VERTEX_DTYPE).reshape(rows, cols)
    right_src, right_dst = idx[:, :-1].ravel(), idx[:, 1:].ravel()
    down_src, down_dst = idx[:-1, :].ravel(), idx[1:, :].ravel()
    return CSRGraph.from_edges(
        np.concatenate([right_src, down_src]),
        np.concatenate([right_dst, down_dst]),
        rows * cols,
        name=f"grid{rows}x{cols}",
    )


def planted_scc_graph(
    sizes: "list[int]",
    *,
    extra_dag_edges: int = 0,
    intra_extra: int = 1,
    seed: "int | None" = None,
) -> "tuple[CSRGraph, np.ndarray]":
    """Digraph with SCCs of exactly the given sizes; returns (graph, truth).

    Each component of size s >= 2 is a directed cycle over its vertices
    plus ``intra_extra * s`` random intra-component chords; size-1
    components are isolated (possibly receiving DAG edges).  Components are
    then topologically ordered and ``extra_dag_edges`` forward edges are
    added between random earlier/later components, guaranteeing the
    component structure is preserved.  ``truth[v]`` is the planted
    component index of vertex v.  Vertex IDs are randomly permuted.
    """
    rng = np.random.default_rng(seed)
    total = int(sum(sizes))
    truth = np.empty(total, dtype=VERTEX_DTYPE)
    srcs: "list[np.ndarray]" = []
    dsts: "list[np.ndarray]" = []
    starts = np.cumsum([0] + list(sizes))[:-1]
    for ci, (s0, size) in enumerate(zip(starts, sizes)):
        vs = np.arange(s0, s0 + size, dtype=VERTEX_DTYPE)
        truth[vs] = ci
        if size >= 2:
            srcs.append(vs)
            dsts.append(np.roll(vs, -1))
            k = intra_extra * size
            srcs.append(rng.choice(vs, size=k))
            dsts.append(rng.choice(vs, size=k))
    # forward DAG edges between components (earlier index -> later index)
    if extra_dag_edges and len(sizes) >= 2:
        ca = rng.integers(0, len(sizes) - 1, size=extra_dag_edges)
        cb = ca + 1 + rng.integers(
            0, np.maximum(len(sizes) - 1 - ca, 1), size=extra_dag_edges
        )
        cb = np.minimum(cb, len(sizes) - 1)
        ok = cb > ca
        ca, cb = ca[ok], cb[ok]
        pick = lambda comp: starts[comp] + (
            rng.integers(0, 1 << 30, size=comp.size) % np.asarray(sizes)[comp]
        )
        srcs.append(pick(ca).astype(VERTEX_DTYPE))
        dsts.append(pick(cb).astype(VERTEX_DTYPE))
    src = np.concatenate(srcs) if srcs else np.empty(0, dtype=VERTEX_DTYPE)
    dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=VERTEX_DTYPE)
    g = CSRGraph.from_edges(src, dst, total, name="planted")
    perm = rng.permutation(total).astype(VERTEX_DTYPE)
    from .ops import relabel  # local import to avoid cycle at module load

    g = relabel(g, perm)
    truth_perm = np.empty(total, dtype=VERTEX_DTYPE)
    truth_perm[perm] = truth
    return g.with_name("planted"), truth_perm


def random_tournament(n: int, seed: "int | None" = None) -> CSRGraph:
    """Random tournament: exactly one direction for every vertex pair.

    Tournaments on n >= some small size are almost surely strongly
    connected, giving a cheap one-giant-SCC stress input.
    """
    rng = np.random.default_rng(seed)
    iu = np.triu_indices(n, k=1)
    u = iu[0].astype(VERTEX_DTYPE)
    v = iu[1].astype(VERTEX_DTYPE)
    flip = rng.random(u.size) < 0.5
    src = np.where(flip, v, u)
    dst = np.where(flip, u, v)
    return CSRGraph.from_edges(src, dst, n, name=f"tournament{n}")
