"""Synthetic stand-ins for the paper's ten SuiteSparse power-law graphs.

The paper evaluates on ten graphs from the SuiteSparse Matrix Collection
(Table 3).  Offline we cannot fetch them, so for each graph we build a
synthetic replacement planted with the structural features the paper's
analysis depends on, taken from the graph's published Table 3 row:

* total vertex and edge counts (scaled down by default),
* the giant-SCC fraction,
* the number of trivial (size-1) and size-2 SCCs,
* the SCC-DAG depth,
* the hub degrees (max in/out degree).

Construction ("bow-tie with levels"): vertices are partitioned into
``depth`` topological levels; one level hosts the giant SCC (a directed
cycle over its vertices plus heavy-tailed chords — strongly connected by
construction), other levels host trivial SCCs and reciprocal 2-cycles.
All inter-level edges point from a lower level to a strictly higher one,
so the planted SCC structure is exact, not approximate: the number of
SCCs, their sizes, and the DAG depth are known by construction and the
test suite verifies them against Tarjan.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..errors import GraphFormatError
from ..types import VERTEX_DTYPE
from .csr import CSRGraph

__all__ = [
    "PowerLawSpec",
    "POWER_LAW_SPECS",
    "build_powerlaw",
    "powerlaw_suite",
    "default_scale",
    "engine_corpus",
]


@dataclass(frozen=True)
class PowerLawSpec:
    """Published Table 3 row plus the generator's structural knobs."""

    name: str
    vertices: int
    edges: int
    num_sccs: int
    size1_sccs: int
    size2_sccs: int
    largest_scc: int
    dag_depth: int
    max_din: int
    max_dout: int

    @property
    def giant_fraction(self) -> float:
        return self.largest_scc / self.vertices


#: Table 3 of the paper, verbatim.
POWER_LAW_SPECS: "tuple[PowerLawSpec, ...]" = (
    PowerLawSpec("cage14", 1_505_785, 27_130_349, 1, 1, 0, 1_505_785, 1, 41, 41),
    PowerLawSpec("circuit5M", 5_558_326, 59_524_291, 647, 15, 453, 5_555_791, 1, 1_290_501, 1_290_501),
    PowerLawSpec("com-Youtube", 1_134_890, 2_987_624, 1_134_890, 1_134_890, 0, 1, 704, 28_576, 4_256),
    PowerLawSpec("flickr", 820_878, 9_837_214, 277_277, 269_944, 4_345, 527_476, 5, 8_549, 10_272),
    PowerLawSpec("Freescale1", 3_428_755, 18_920_347, 1_061, 1, 0, 3_408_803, 1, 25, 27),
    PowerLawSpec("Freescale2", 2_999_349, 23_042_677, 55_085, 1, 54_423, 2_888_522, 1, 30_478, 30_167),
    PowerLawSpec("soc-LiveJournal1", 4_847_571, 68_993_773, 971_232, 947_776, 16_875, 3_828_682, 24, 13_906, 20_293),
    PowerLawSpec("web-Google", 916_428, 5_105_039, 412_479, 399_605, 4_169, 434_818, 34, 6_326, 456),
    PowerLawSpec("wiki-Talk", 2_394_385, 5_021_410, 2_281_879, 2_281_311, 529, 111_881, 8, 3_311, 100_022),
    PowerLawSpec("wikipedia", 3_148_440, 39_383_235, 1_040_035, 1_037_369, 2_001, 2_104_115, 85, 168_685, 6_576),
)

_SPEC_BY_NAME = {s.name: s for s in POWER_LAW_SPECS}


def default_scale() -> float:
    """Workload scale: 1.0 at paper size when ``REPRO_FULL=1``, else 1/32."""
    return 1.0 if os.environ.get("REPRO_FULL", "") == "1" else 1.0 / 32.0


def _zipf_indices(rng: np.random.Generator, count: int, universe: int, alpha: float = 1.2) -> np.ndarray:
    """Heavy-tailed indices in [0, universe): inverse-CDF of a bounded zipf."""
    if universe <= 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    u = rng.random(count)
    # bounded Pareto inverse CDF mapped to integer indices
    x = (universe ** (1.0 - alpha) - 1.0) * u + 1.0
    idx = np.floor(x ** (1.0 / (1.0 - alpha))).astype(VERTEX_DTYPE) - 1
    return np.clip(idx, 0, universe - 1)


def build_powerlaw(name: str, scale: "float | None" = None, seed: int = 0) -> "tuple[CSRGraph, dict]":
    """Build the synthetic stand-in for Table 3 graph *name*.

    Returns ``(graph, planted)`` where *planted* records the structure the
    generator planted: ``num_sccs``, ``size1``, ``size2``, ``largest``,
    ``dag_depth`` — at the *scaled* size.  The test suite asserts these
    against Tarjan's output on the generated graph.
    """
    if name not in _SPEC_BY_NAME:
        raise GraphFormatError(
            f"unknown power-law graph {name!r}; known: {sorted(_SPEC_BY_NAME)}"
        )
    spec = _SPEC_BY_NAME[name]
    if scale is None:
        scale = default_scale()
    # zlib.crc32 is a stable per-name salt; the builtin hash() is salted
    # per *process* (PYTHONHASHSEED), which silently made every run
    # generate a different graph — fatal for bench-regression gating
    rng = np.random.default_rng(seed ^ (zlib.crc32(name.encode()) & 0x7FFFFFFF))

    n = max(64, int(round(spec.vertices * scale)))
    m_target = max(n, int(round(spec.edges * scale)))
    giant = max(1, int(round(spec.largest_scc * scale)))
    giant = min(giant, n)
    size2 = int(round(spec.size2_sccs * scale))
    depth = spec.dag_depth
    # scale deep DAGs down too: depth cannot exceed available non-giant levels
    if scale < 1.0 and depth > 4:
        depth = max(4, int(round(depth * max(scale * 4, 0.25))))
    periphery = n - giant
    has_giant = giant >= 2
    # number of levels besides the giant's own level
    extra_levels = max(depth - (1 if has_giant else 0), 0)
    if periphery == 0:
        extra_levels = 0
    if extra_levels > periphery:
        extra_levels = periphery
    size2 = min(size2, periphery // 2)

    # --- assign vertices to levels --------------------------------------
    # layout: [pre-levels ...] [giant level] [post-levels ...]
    pre_levels = extra_levels // 2
    level_sizes: "list[int]" = []
    if extra_levels:
        base = periphery // extra_levels
        rem = periphery - base * extra_levels
        level_sizes = [base + (1 if i < rem else 0) for i in range(extra_levels)]
        # drop empty levels (tiny scaled graphs)
        level_sizes = [s for s in level_sizes if s > 0]
        pre_levels = min(pre_levels, len(level_sizes) // 2)
        post_levels = len(level_sizes) - pre_levels
    # vertex blocks in rank order: pre levels, giant, post levels.  Depth-1
    # graphs (giant + disconnected small SCCs, e.g. Freescale2) place their
    # periphery in an "iso" block that receives no inter-block edges.
    blocks: "list[tuple[str, int]]" = []
    for i in range(pre_levels):
        blocks.append(("pre", level_sizes[i]))
    blocks.append(("giant", giant))
    for i in range(pre_levels, len(level_sizes)):
        blocks.append(("post", level_sizes[i]))
    if extra_levels == 0 and periphery > 0:
        blocks.append(("iso", periphery))

    starts = np.cumsum([0] + [b[1] for b in blocks])
    rank_of = np.empty(n, dtype=VERTEX_DTYPE)
    giant_start = giant_stop = 0
    for bi, (kind, size) in enumerate(blocks):
        rank_of[starts[bi] : starts[bi + 1]] = bi
        if kind == "giant":
            giant_start, giant_stop = int(starts[bi]), int(starts[bi + 1])

    srcs: "list[np.ndarray]" = []
    dsts: "list[np.ndarray]" = []

    # --- giant SCC: hamiltonian cycle + heavy-tailed chords -------------
    edges_used = 0
    if giant >= 2:
        gv = np.arange(giant_start, giant_stop, dtype=VERTEX_DTYPE)
        srcs.append(gv)
        dsts.append(np.roll(gv, -1))
        edges_used += giant
        # intra-giant chords proportional to giant's share of paper edges
        paper_intra_share = min(0.9, spec.largest_scc / spec.vertices)
        chords = max(0, int(m_target * paper_intra_share) - giant)
        if chords:
            a = giant_start + _zipf_indices(rng, chords, giant)
            b = giant_start + rng.integers(0, giant, size=chords, dtype=VERTEX_DTYPE)
            srcs.append(a.astype(VERTEX_DTYPE))
            dsts.append(b)
            edges_used += chords

    # --- size-2 SCCs: reciprocal pairs inside periphery levels ----------
    if size2 > 0 and periphery >= 2:
        # take pairs from the first periphery block(s); both ends same level
        periph_ids = np.concatenate(
            [
                np.arange(starts[bi], starts[bi + 1], dtype=VERTEX_DTYPE)
                for bi, (kind, sz) in enumerate(blocks)
                if kind != "giant" and sz > 0
            ]
        ) if any(k != "giant" for k, _ in blocks) else np.empty(0, dtype=VERTEX_DTYPE)
        # pair consecutive ids within the same level to stay level-consistent
        same_level = rank_of[periph_ids[:-1]] == rank_of[periph_ids[1:]] if periph_ids.size > 1 else np.empty(0, dtype=bool)
        cand_a = periph_ids[:-1][same_level]
        cand_b = periph_ids[1:][same_level]
        # avoid overlapping pairs: take every other candidate
        cand_a, cand_b = cand_a[::2], cand_b[::2]
        take = min(size2, cand_a.size)
        pa, pb = cand_a[:take], cand_b[:take]
        srcs.extend([pa, pb])
        dsts.extend([pb, pa])
        edges_used += 2 * take
        size2 = take
    else:
        size2 = 0

    # --- inter-level DAG edges ------------------------------------------
    remaining = max(0, m_target - edges_used)
    num_blocks = len(blocks)
    if remaining and extra_levels == 0 and giant >= 2:
        # depth-1 graphs: leftover budget becomes intra-giant chords so the
        # "iso" block stays disconnected (condensation must be edgeless)
        a = giant_start + _zipf_indices(rng, remaining, giant)
        b = giant_start + rng.integers(0, giant, size=remaining, dtype=VERTEX_DTYPE)
        srcs.append(a.astype(VERTEX_DTYPE))
        dsts.append(b)
        remaining = 0
    if remaining and num_blocks >= 2:
        # sample source block biased to adjacency: edge from block i to j>i
        bi_src = rng.integers(0, num_blocks - 1, size=remaining)
        span = rng.geometric(0.7, size=remaining)
        bi_dst = np.minimum(bi_src + span, num_blocks - 1)
        ok = bi_dst > bi_src
        bi_src, bi_dst = bi_src[ok], bi_dst[ok]
        sizes_arr = np.asarray([b[1] for b in blocks], dtype=VERTEX_DTYPE)
        s_off = starts[bi_src] + (
            rng.integers(0, 1 << 62, size=bi_src.size) % sizes_arr[bi_src]
        )
        d_off = starts[bi_dst] + (
            rng.integers(0, 1 << 62, size=bi_dst.size) % sizes_arr[bi_dst]
        )
        srcs.append(s_off.astype(VERTEX_DTYPE))
        dsts.append(d_off.astype(VERTEX_DTYPE))

    # --- hubs -------------------------------------------------------------
    # One high-out-degree and one high-in-degree vertex, degree scaled.
    hub_out_deg = min(n - 1, max(4, int(round(spec.max_dout * scale))))
    hub_in_deg = min(n - 1, max(4, int(round(spec.max_din * scale))))
    if giant >= 2:
        hub = giant_start  # hub inside the giant: extra edges stay intra-SCC
        t = giant_start + rng.integers(0, giant, size=hub_out_deg, dtype=VERTEX_DTYPE)
        srcs.append(np.full(hub_out_deg, hub, dtype=VERTEX_DTYPE))
        dsts.append(t)
        s = giant_start + rng.integers(0, giant, size=hub_in_deg, dtype=VERTEX_DTYPE)
        srcs.append(s)
        dsts.append(np.full(hub_in_deg, hub, dtype=VERTEX_DTYPE))
    elif num_blocks >= 2:
        # DAG-only graph (e.g. com-Youtube): hub in first block fanning out
        hub = int(starts[0])
        later = rng.integers(int(starts[1]), n, size=hub_out_deg, dtype=VERTEX_DTYPE)
        srcs.append(np.full(hub_out_deg, hub, dtype=VERTEX_DTYPE))
        dsts.append(later)
        sink = n - 1
        earlier = rng.integers(0, max(int(starts[num_blocks - 1]), 1), size=hub_in_deg, dtype=VERTEX_DTYPE)
        srcs.append(earlier)
        dsts.append(np.full(hub_in_deg, sink, dtype=VERTEX_DTYPE))

    src = np.concatenate(srcs) if srcs else np.empty(0, dtype=VERTEX_DTYPE)
    dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=VERTEX_DTYPE)
    # drop accidental self-loops (harmless but keep graphs simple-ish)
    keep = src != dst
    src, dst = src[keep], dst[keep]

    # random ID permutation so IDs are uninformative
    perm = rng.permutation(n).astype(VERTEX_DTYPE)
    g = CSRGraph.from_edges(perm[src], perm[dst], n, name=name)

    planted_largest = giant if giant >= 2 else 1
    planted_size1 = n - (giant if giant >= 2 else 0) - 2 * size2
    if giant == 1:
        planted_size1 = n - 2 * size2
    planted = {
        "num_sccs": planted_size1 + size2 + (1 if giant >= 2 else 0),
        "size1": planted_size1,
        "size2": size2,
        "largest": planted_largest,
        "dag_depth_planted_levels": num_blocks,
        "scale": scale,
        "spec": spec,
    }
    return g, planted


def engine_corpus() -> "list[tuple[str, CSRGraph]]":
    """The named 27-graph engine-comparison corpus.

    This is the canonical definition of the corpus the test suite's
    ``small_graphs``/``random_graphs`` fixtures and the
    ``repro bench engines`` regression gate share: 15 hand-built
    structural corner cases followed by 12 seeded random workloads.
    Everything is deterministic (fixed seeds, no salted hashing), so
    committed engine-matrix baselines replay bit for bit.
    """
    from .generators import (
        complete_digraph,
        cycle_graph,
        dag_chain_of_cliques,
        grid_dag,
        path_graph,
        planted_scc_graph,
        random_gnm,
        scc_ladder,
    )

    corpus: "list[tuple[str, CSRGraph]]" = [
        ("empty-0", CSRGraph.empty(0)),
        ("empty-1", CSRGraph.empty(1)),
        ("empty-5", CSRGraph.empty(5)),
        ("self-loop", CSRGraph.from_adjacency([[0]])),
        ("two-cycle", CSRGraph.from_adjacency([[1], [0]])),
        ("single-edge", CSRGraph.from_adjacency([[1], []])),
        ("dup-edges", CSRGraph.from_adjacency([[1, 1], [0]])),
        ("loops-2cycle", CSRGraph.from_adjacency([[0, 1], [1, 0]])),
        ("cycle-3", cycle_graph(3)),
        ("cycle-17", cycle_graph(17)),
        ("path-9", path_graph(9)),
        ("complete-5", complete_digraph(5)),
        ("ladder-6", scc_ladder(6)),
        ("grid-4x5", grid_dag(4, 5)),
        ("cliques-5x3", dag_chain_of_cliques(5, 3, seed=0)),
    ]
    for seed in range(6):
        corpus.append(
            (f"gnm-s{seed}",
             random_gnm(40 + 10 * seed, 100 + 30 * seed, seed=seed))
        )
        g, _ = planted_scc_graph(
            [3, 1, 5, 2, 7, 1, 1, 4], extra_dag_edges=10, seed=seed
        )
        corpus.append((f"planted-s{seed}", g))
    return corpus


def powerlaw_suite(
    scale: "float | None" = None,
    seed: int = 0,
    names: "Iterable[str] | None" = None,
) -> "list[tuple[CSRGraph, dict]]":
    """Build all (or the named subset of) Table 3 stand-ins."""
    if names is None:
        names = [s.name for s in POWER_LAW_SPECS]
    return [build_powerlaw(nm, scale=scale, seed=seed) for nm in names]
