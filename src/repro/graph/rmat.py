"""Kronecker / R-MAT power-law digraph generator.

The paper's second input class comes from the SuiteSparse Matrix
Collection: web crawls, social networks, and circuit matrices whose degree
distributions are heavy-tailed and which typically contain one giant SCC.
Offline we cannot download those matrices, so :mod:`repro.graph.suite`
synthesizes stand-ins; the R-MAT generator here is its workhorse because
R-MAT reproduces the two properties the paper's analysis leans on —
power-law degrees (a few huge hubs) and a giant bow-tie SCC.

Implementation follows Chakrabarti, Zhan & Faloutsos (SDM '04): each edge
independently descends a 2^k x 2^k adjacency matrix choosing quadrants
with probabilities (a, b, c, d).  Fully vectorized: all edges descend all
k levels simultaneously as bit operations.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphFormatError
from ..types import VERTEX_DTYPE
from .csr import CSRGraph

__all__ = ["rmat_graph", "preferential_attachment_digraph"]


def rmat_graph(
    scale: int,
    edge_factor: float,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: "int | None" = None,
    dedup: bool = False,
    permute: bool = True,
) -> CSRGraph:
    """R-MAT digraph with ``2**scale`` vertices, ``edge_factor * n`` edges.

    Parameters follow the Graph500 convention; ``d = 1 - a - b - c``.
    With ``permute`` (default) vertex IDs are shuffled so ID order carries
    no structural information — important because ECL-SCC propagates IDs.
    """
    if scale < 1 or scale > 28:
        raise GraphFormatError(f"scale must be in [1, 28], got {scale}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphFormatError("R-MAT probabilities must be nonnegative")
    n = 1 << scale
    m = int(round(edge_factor * n))
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=VERTEX_DTYPE)
    dst = np.zeros(m, dtype=VERTEX_DTYPE)
    # Descend the recursive quadrants: at each level decide (row bit, col bit).
    p_row1 = c + d          # probability the row bit is 1
    for level in range(scale):
        r = rng.random(m)
        row_bit = (r < p_row1).astype(VERTEX_DTYPE)
        # conditional probability the col bit is 1 given the row bit
        r2 = rng.random(m)
        p_col1_row0 = b / (a + b) if (a + b) > 0 else 0.0
        p_col1_row1 = d / (c + d) if (c + d) > 0 else 0.0
        col_p = np.where(row_bit == 1, p_col1_row1, p_col1_row0)
        col_bit = (r2 < col_p).astype(VERTEX_DTYPE)
        src = (src << 1) | row_bit
        dst = (dst << 1) | col_bit
    if permute:
        perm = rng.permutation(n).astype(VERTEX_DTYPE)
        src, dst = perm[src], perm[dst]
    g = CSRGraph.from_edges(src, dst, n, name=f"rmat{scale}")
    if dedup:
        g = g.dedup()
    return g


def preferential_attachment_digraph(
    n: int,
    out_degree: int,
    *,
    back_prob: float = 0.3,
    seed: "int | None" = None,
) -> CSRGraph:
    """Directed preferential-attachment graph (Bollobas-style, vectorized).

    Each new vertex v attaches ``out_degree`` out-edges to targets chosen
    preferentially among earlier vertices; with probability ``back_prob``
    an attachment is reciprocated, creating 2-cycles that seed a giant SCC.
    Used for the social-network-like suite entries (soc-LiveJournal,
    flickr) whose giant SCC coexists with many trivial SCCs.

    The preferential choice is approximated by sampling targets as
    ``floor(u * v)`` with u ~ U[0,1)^alpha biased to low IDs *after* a
    random permutation — a standard O(m) trick that preserves the
    heavy-tail shape without per-edge Python loops.
    """
    if n < 2 or out_degree < 1:
        raise GraphFormatError("need n >= 2 and out_degree >= 1")
    rng = np.random.default_rng(seed)
    v = np.repeat(np.arange(1, n, dtype=VERTEX_DTYPE), out_degree)
    # preferential target: squaring a uniform biases toward early (high-degree)
    u = rng.random(v.size)
    t = (u * u * v).astype(VERTEX_DTYPE)
    back = rng.random(v.size) < back_prob
    src = np.concatenate([v, t[back]])
    dst = np.concatenate([t, v[back]])
    perm = rng.permutation(n).astype(VERTEX_DTYPE)
    return CSRGraph.from_edges(perm[src], perm[dst], n, name=f"pa{n}")
