"""Whole-graph transformations: relabelling, subgraphs, permutations.

These are the structural operations the SCC algorithms and the benchmark
harness need around the core kernels: extracting the subgraph a recursive
Forward-Backward call works on, randomly permuting vertex IDs (ECL-SCC's
expected complexity assumes random IDs), and replicating graphs for the
"expanded meshes" experiment of §5.1.4.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphFormatError
from ..types import NO_VERTEX, VERTEX_DTYPE, as_vertex_array
from .csr import CSRGraph

__all__ = [
    "relabel",
    "permute_random",
    "induced_subgraph",
    "remove_edges_mask",
    "disjoint_union",
    "replicate",
    "add_edges",
]


def relabel(graph: CSRGraph, mapping: np.ndarray) -> CSRGraph:
    """Rename every vertex ``v`` to ``mapping[v]``.

    *mapping* must be a permutation of ``0..n-1``; this is checked because a
    non-bijective mapping silently merges vertices, which is almost never
    what a caller wants (use :func:`repro.graph.condensation.condense` for
    contractions).
    """
    mapping = as_vertex_array(mapping, "mapping")
    n = graph.num_vertices
    if mapping.size != n:
        raise GraphFormatError(
            f"mapping must have length {n}, got {mapping.size}"
        )
    if n:
        seen = np.zeros(n, dtype=bool)
        if mapping.min() < 0 or mapping.max() >= n:
            raise GraphFormatError("mapping values must lie in [0, n)")
        seen[mapping] = True
        if not seen.all():
            raise GraphFormatError("mapping must be a permutation of 0..n-1")
    src, dst = graph.edges()
    return CSRGraph.from_edges(mapping[src], mapping[dst], n, name=graph.name)


def permute_random(graph: CSRGraph, seed: "int | None" = None) -> "tuple[CSRGraph, np.ndarray]":
    """Randomly permute vertex IDs; returns ``(new_graph, mapping)``.

    ``mapping[old] == new``.  Useful because ECL-SCC's expected iteration
    count assumes vertex IDs are randomly distributed over the topology.
    """
    rng = np.random.default_rng(seed)
    mapping = rng.permutation(graph.num_vertices).astype(VERTEX_DTYPE)
    return relabel(graph, mapping), mapping


def induced_subgraph(graph: CSRGraph, vertices: np.ndarray) -> "tuple[CSRGraph, np.ndarray]":
    """Subgraph induced by *vertices* with compacted IDs.

    Returns ``(subgraph, original_ids)`` where ``original_ids[i]`` is the
    original label of subgraph vertex ``i``.  *vertices* may be a boolean
    mask of length ``n`` or an array of unique vertex IDs.
    """
    n = graph.num_vertices
    vertices = np.asarray(vertices)
    if vertices.dtype == np.bool_:
        if vertices.size != n:
            raise GraphFormatError(
                f"boolean vertex mask must have length {n}, got {vertices.size}"
            )
        original = np.flatnonzero(vertices).astype(VERTEX_DTYPE)
        member = vertices
    else:
        original = as_vertex_array(vertices, "vertices")
        if original.size and (original.min() < 0 or original.max() >= n):
            raise GraphFormatError("vertex IDs out of range")
        if np.unique(original).size != original.size:
            raise GraphFormatError("vertex IDs must be unique")
        member = np.zeros(n, dtype=bool)
        member[original] = True
    new_id = np.full(n, NO_VERTEX, dtype=VERTEX_DTYPE)
    new_id[original] = np.arange(original.size, dtype=VERTEX_DTYPE)
    src, dst = graph.edges()
    keep = member[src] & member[dst]
    sub = CSRGraph.from_edges(new_id[src[keep]], new_id[dst[keep]], original.size)
    return sub, original


def remove_edges_mask(graph: CSRGraph, remove: np.ndarray) -> CSRGraph:
    """Remove edges flagged True in *remove* (parallel to CSR edge order)."""
    remove = np.asarray(remove)
    if remove.dtype != np.bool_ or remove.size != graph.num_edges:
        raise GraphFormatError(
            "remove must be a boolean array with one entry per edge"
        )
    src, dst = graph.edges()
    keep = ~remove
    return CSRGraph.from_edges(src[keep], dst[keep], graph.num_vertices, name=graph.name)


def add_edges(graph: CSRGraph, src: np.ndarray, dst: np.ndarray) -> CSRGraph:
    """Return *graph* plus the given extra edges (multigraph semantics)."""
    s0, d0 = graph.edges()
    s1 = as_vertex_array(src, "src")
    d1 = as_vertex_array(dst, "dst")
    return CSRGraph.from_edges(
        np.concatenate([s0, s1]),
        np.concatenate([d0, d1]),
        graph.num_vertices,
        name=graph.name,
    )


def disjoint_union(graphs: "list[CSRGraph]") -> CSRGraph:
    """Disjoint union; vertex IDs of component k are shifted by sum of sizes."""
    if not graphs:
        return CSRGraph.empty(0)
    offsets = np.cumsum([0] + [g.num_vertices for g in graphs])
    srcs, dsts = [], []
    for off, g in zip(offsets[:-1], graphs):
        s, d = g.edges()
        srcs.append(s + off)
        dsts.append(d + off)
    return CSRGraph.from_edges(
        np.concatenate(srcs) if srcs else np.empty(0, dtype=VERTEX_DTYPE),
        np.concatenate(dsts) if dsts else np.empty(0, dtype=VERTEX_DTYPE),
        int(offsets[-1]),
    )


def replicate(graph: CSRGraph, copies: int, *, name: str = "") -> CSRGraph:
    """*copies* disjoint copies of *graph* (the §5.1.4 'expanded' inputs).

    The paper expands twist-hex and toroid-hex by replicating the mesh 10x;
    structurally the sweep graph of a replicated mesh is the disjoint union
    of per-copy sweep graphs, which is what this produces.
    """
    if copies < 1:
        raise GraphFormatError(f"copies must be >= 1, got {copies}")
    n, (src, dst) = graph.num_vertices, graph.edges()
    offs = (np.arange(copies, dtype=VERTEX_DTYPE) * n)[:, None]
    big_src = (src[None, :] + offs).ravel()
    big_dst = (dst[None, :] + offs).ravel()
    return CSRGraph.from_edges(big_src, big_dst, n * copies, name=name or graph.name)
