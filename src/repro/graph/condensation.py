"""SCC condensation and DAG-depth computation.

Contracting each SCC of a digraph to a single vertex yields a DAG (the
*condensation*).  Two quantities from the paper live here:

* the condensation graph itself (used by the sweep scheduler and by the
  Forward-Backward baselines' analyses), and
* the **DAG depth** — the number of vertices on the longest directed path
  of the condensation — reported in Tables 1-3 and central to the paper's
  performance story (ECL-SCC needs ~log(depth) iterations, trim-based
  codes need ~depth).
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphValidationError
from ..types import VERTEX_DTYPE, as_vertex_array
from .csr import CSRGraph

__all__ = ["condense", "compact_labels", "dag_depth", "topological_levels"]


def compact_labels(labels: np.ndarray) -> np.ndarray:
    """Renumber arbitrary SCC labels to dense ``0..k-1`` (order of first ID).

    SCC algorithms in this library label each component by an arbitrary
    representative vertex ID (ECL-SCC: the max ID in the component).  Dense
    labels are what the condensation and histogram code wants.
    """
    labels = as_vertex_array(labels, "labels")
    _, dense = np.unique(labels, return_inverse=True)
    return dense.astype(VERTEX_DTYPE, copy=False)


def condense(graph: CSRGraph, labels: np.ndarray) -> "tuple[CSRGraph, np.ndarray]":
    """Contract each SCC to one vertex.

    Parameters
    ----------
    graph:
        the original digraph.
    labels:
        per-vertex component labels (arbitrary integers; densified here).

    Returns
    -------
    (dag, dense_labels):
        *dag* is the condensation with duplicate inter-component edges
        removed and no self-loops; ``dense_labels[v]`` is the condensation
        vertex of original vertex ``v``.
    """
    labels = as_vertex_array(labels, "labels")
    if labels.size != graph.num_vertices:
        raise GraphValidationError(
            f"labels must have one entry per vertex ({graph.num_vertices}),"
            f" got {labels.size}"
        )
    dense = compact_labels(labels)
    k = int(dense.max()) + 1 if dense.size else 0
    src, dst = graph.edges()
    csrc, cdst = dense[src], dense[dst]
    keep = csrc != cdst
    dag = CSRGraph.from_edges(csrc[keep], cdst[keep], k).dedup()
    return dag, dense


def topological_levels(dag: CSRGraph) -> np.ndarray:
    """Longest-path level of every vertex of a DAG (sources are level 0).

    ``level[v]`` is the maximum number of edges on any path ending at ``v``.
    Raises :class:`GraphValidationError` if *dag* contains a cycle.

    Implementation: vectorized Kahn peeling — repeatedly strip the current
    zero-in-degree frontier and bump the levels of its successors.  Each
    round is O(edges out of frontier); total O(V + E).
    """
    n = dag.num_vertices
    level = np.zeros(n, dtype=VERTEX_DTYPE)
    indeg = dag.in_degree().copy()
    frontier = np.flatnonzero(indeg == 0).astype(VERTEX_DTYPE)
    processed = frontier.size
    indptr, indices = dag.indptr, dag.indices
    while frontier.size:
        # gather all out-edges of the frontier
        starts = indptr[frontier]
        stops = indptr[frontier + 1]
        counts = stops - starts
        total = int(counts.sum())
        if total == 0:
            break
        # flat indices of the frontier's adjacency slices
        offsets = np.repeat(starts, counts) + _ragged_arange(counts)
        heads = indices[offsets]
        tails_level = np.repeat(level[frontier], counts)
        # successors' level = max over incoming frontier edges of level+1
        np.maximum.at(level, heads, tails_level + 1)
        # decrement in-degrees (duplicate heads decrement multiple times)
        np.subtract.at(indeg, heads, 1)
        frontier = heads[indeg[heads] == 0]
        frontier = np.unique(frontier)
        processed += frontier.size
    if processed != n:
        raise GraphValidationError(
            "topological_levels called on a graph containing a cycle"
        )
    return level


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(c)`` for each c in *counts*, vectorized."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    ids = np.arange(total, dtype=VERTEX_DTYPE)
    resets = np.repeat(np.cumsum(counts) - counts, counts)
    return ids - resets


def dag_depth(graph: CSRGraph, labels: np.ndarray) -> int:
    """DAG depth of the SCC condensation, in *vertices* (paper convention).

    A graph whose condensation is a single vertex (one SCC, or a single
    vertex) has depth 1, matching Tables 2 and 3 (e.g. twist-hex depth 1).
    An empty graph has depth 0.
    """
    dag, _ = condense(graph, labels)
    if dag.num_vertices == 0:
        return 0
    return int(topological_levels(dag).max()) + 1
