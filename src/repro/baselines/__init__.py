"""Reference oracles and the paper's comparison codes.

* :func:`tarjan_scc`, :func:`kosaraju_scc` — serial verification oracles;
* :func:`fb_scc`, :func:`fbtrim_scc` — the Forward-Backward lineage;
* :func:`gpu_scc` — Li et al. 2017, the fastest prior GPU code;
* :func:`ispan_scc` — Ji et al. 2018, the fastest parallel CPU code;
* :func:`hong_scc` — Hong et al. 2013.

Every entry point returns an :class:`~repro.results.AlgoResult` (labels,
num_sccs, device, trace) and accepts ``tracer=`` for per-phase spans;
the legacy bare-array / ``(labels, device)`` tuple behaviors remain
available through deprecation shims on the result object.

The shared reach/trim/normalize primitives these codes are composed of
live in :mod:`repro.engine`; they are re-exported here (and via the
``.reach`` / ``.trim`` shim modules) for backward compatibility.
"""

from ..engine.primitives import (
    active_degrees,
    colored_fb_rounds,
    frontier_expand,
    masked_bfs,
    normalize_labels_to_max,
    trim1,
    trim2,
    trim3,
)
from .tarjan import tarjan_scc
from .kosaraju import kosaraju_scc
from .fb import fb_scc
from .fbtrim import fbtrim_scc
from .gpu_scc import gpu_scc
from .ispan import ispan_scc
from .hong import hong_scc
from .coloring import coloring_scc
from .multistep import multistep_scc

__all__ = [
    "normalize_labels_to_max",
    "tarjan_scc",
    "kosaraju_scc",
    "active_degrees",
    "trim1",
    "trim2",
    "trim3",
    "colored_fb_rounds",
    "frontier_expand",
    "masked_bfs",
    "fb_scc",
    "fbtrim_scc",
    "gpu_scc",
    "ispan_scc",
    "hong_scc",
    "coloring_scc",
    "multistep_scc",
]
