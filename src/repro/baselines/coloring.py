"""Coloring SCC (Orzan 2004 / the FB-coloring of Barnat et al.).

The other classical parallel SCC scheme the GPU literature builds on:

1. *Forward color propagation*: every vertex starts with its own ID as
   its color; colors propagate along edges taking maxima until a fixed
   point.  Afterwards ``color[v]`` is the largest ID that reaches ``v``,
   so each color class is closed under predecessors within the class and
   the vertex ``r == color[r]`` ("root") reaches every member of its
   class... backwards.  Concretely:
2. *Backward sweep*: the SCC of root ``r`` is exactly the set of
   vertices with color ``r`` that can reach ``r`` within the class
   (equivalently: backward-reachable from ``r`` along same-color edges).
3. Detected SCCs retire; the remainder repeats with fresh colors.

Note the relationship to ECL-SCC: step 1 is *half* of ECL-SCC's Phase 2
(the ``sig_in`` propagation).  ECL-SCC replaces the per-root backward
BFS with the second (out-)signature and an edge-removal step, which is
what removes the BFS's diameter-bound level count — implementing both
side by side makes that lineage measurable.
"""

from __future__ import annotations

import numpy as np

from ..device.executor import VirtualDevice
from ..device.spec import TITAN_V, DeviceSpec
from ..engine import (
    ArrayBackend,
    charge_relaxation_round,
    charge_vertex_scan,
    colored_reach,
    get_backend,
)
from ..errors import ConvergenceError
from ..graph.csr import CSRGraph
from ..profile.ledger import attach_ledger
from ..results import AlgoResult, count_sccs
from ..trace import Tracer, ensure_tracer
from ..types import NO_VERTEX, VERTEX_DTYPE

__all__ = ["coloring_scc"]


def coloring_scc(
    graph: CSRGraph,
    *,
    device: "VirtualDevice | DeviceSpec | None" = None,
    backend: "ArrayBackend | str | None" = None,
    tracer: "Tracer | None" = None,
) -> AlgoResult:
    """Orzan-style coloring SCC.  Labels use the max-member-ID convention
    like every other code in this library.  Returns an
    :class:`~repro.results.AlgoResult` (still unpackable as the legacy
    ``(labels, device)`` tuple)."""
    if device is None:
        device = VirtualDevice(TITAN_V)
    elif isinstance(device, DeviceSpec):
        device = VirtualDevice(device)
    be = get_backend(backend)
    tr = ensure_tracer(tracer)
    attach_ledger(device, tr)
    n = graph.num_vertices
    labels = np.full(n, NO_VERTEX, dtype=VERTEX_DTYPE)
    if n == 0:
        return AlgoResult(
            labels=labels, num_sccs=0, device=device,
            trace=tr.trace if tr.enabled else None,
        )
    src, dst = graph.edges()
    gt = graph.transpose()
    active = np.ones(n, dtype=bool)
    outer = 0
    while active.any():
        outer += 1
        if outer > n + 2:
            raise ConvergenceError("coloring SCC failed to converge")
        with tr.span("outer-iteration", index=outer):
            # ---- forward max-color propagation over active edges --------
            color = np.arange(n, dtype=VERTEX_DTYPE)
            live = active[src] & active[dst]
            s, d = src[live], dst[live]
            rounds = 0
            with tr.span("color-propagation", edges=int(s.size)) as cp:
                while True:
                    rounds += 1
                    if rounds > n + 2:
                        raise ConvergenceError(
                            "color propagation failed to converge"
                        )
                    before = color[d]
                    np.maximum.at(color, d, color[s])
                    charge_relaxation_round(device, edges=int(s.size))
                    if not np.any(color[d] > before):
                        break
                cp.set(rounds=rounds)
            # ---- backward sweeps from every root within its color -------
            # the SCC of root r is the set of vertices with color r that
            # reach r within the class: a same-color multi-source reverse
            # traversal, i.e. colored_reach on the memoized transpose
            with tr.span("backward-sweep"):
                roots = np.flatnonzero(active & (color == np.arange(n)))
                visited = colored_reach(gt, roots, color, active, device,
                                        backend=be)
            # visited vertices form complete SCCs labelled by their color root
            found = visited & active
            labels[found] = color[found]
            active &= ~found
            charge_vertex_scan(
                device, be, num_vertices=n,
                worklist_size=int(np.count_nonzero(active)),
            )
    # colors are root IDs = max ID reaching the SCC; the root is the max
    # *member* too (it reaches itself), so labels are already normalized
    return AlgoResult(
        labels=labels,
        num_sccs=count_sccs(labels),
        device=device,
        trace=tr.trace if tr.enabled else None,
    )
