"""Compatibility shim: trim primitives live in :mod:`repro.engine`.

Trim-1/2/3 peeling (McLendon, Yuede/iSpan) used to be implemented here;
the shared, device-accounted implementations now live in
:mod:`repro.engine.primitives`.  This module re-exports them so
historical import paths keep working.
"""

from __future__ import annotations

from ..engine.primitives import active_degrees, trim1, trim2, trim3

__all__ = ["active_degrees", "trim1", "trim2", "trim3"]
