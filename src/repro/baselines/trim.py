"""Trim steps: peeling size-1/2/3 SCCs (McLendon, Yuede/iSpan).

Trim-1 removes vertices with no active in-edges or no active out-edges
(they are trivial SCCs); it iterates because removals expose new
candidates — on a deep mesh DAG this takes ~DAG-depth rounds, each a
kernel launch, which is exactly why trim-based codes lose to ECL-SCC on
meshes (paper §5.1.1).  Trim-2 removes isolated 2-cycles, Trim-3 small
triangles (the dominant of Yuede's five patterns), both defined on the
*active* subgraph.

All steps share the same contract: operate on ``active`` (bool mask) and
``labels`` in place, labelling removed vertices with the max member ID
of their small SCC, and report work to the device.
"""

from __future__ import annotations

import numpy as np

from ..device.executor import VirtualDevice
from ..graph.csr import CSRGraph
from ..types import VERTEX_DTYPE

__all__ = ["active_degrees", "trim1", "trim2", "trim3"]


def active_degrees(graph: CSRGraph, active: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """(in_deg, out_deg) counting only edges between active vertices."""
    src, dst = graph.edges()
    live = active[src] & active[dst]
    n = graph.num_vertices
    out_deg = np.bincount(src[live], minlength=n).astype(VERTEX_DTYPE)
    in_deg = np.bincount(dst[live], minlength=n).astype(VERTEX_DTYPE)
    return in_deg, out_deg


def trim1(
    graph: CSRGraph,
    active: np.ndarray,
    labels: np.ndarray,
    dev: VirtualDevice,
    *,
    max_rounds: "int | None" = None,
) -> "tuple[int, int]":
    """Iterated Trim-1.  Returns ``(removed, rounds)``.

    Degree maintenance is decremental (the standard GPU formulation):
    active degrees are computed once, and removing a vertex decrements
    its neighbours' counters, so the total edge work is O(E) across all
    rounds.  What iterates is the per-round *vertex scan* — every round
    launches a kernel that checks all vertex flags — which is exactly why
    trim-based codes pay ~DAG-depth launches on deep meshes (§5.1.1).
    """
    n = graph.num_vertices
    removed_total = 0
    rounds = 0
    bound = max_rounds or (n + 2)
    in_deg, out_deg = active_degrees(graph, active)
    dev.launch(edges=graph.num_edges, bytes_per_edge=16)
    gt = graph.transpose()
    frontier = np.flatnonzero(active & ((in_deg == 0) | (out_deg == 0)))
    dev.launch(vertices=n, bytes_per_vertex=8)
    rounds = 1
    while frontier.size:
        rounds += 1
        if rounds > bound:  # pragma: no cover - safety net
            raise RuntimeError("trim1 failed to converge")
        labels[frontier] = frontier  # a trivial SCC's max member is itself
        active[frontier] = False
        removed_total += frontier.size
        # decrement neighbour degrees along the removed vertices' edges
        fwd = _expand(graph, frontier)
        bwd = _expand(gt, frontier)
        np.subtract.at(in_deg, fwd, 1)
        np.subtract.at(out_deg, bwd, 1)
        # per-round kernel: scan all vertex flags, then the decrements
        dev.launch(vertices=n, bytes_per_vertex=8)
        dev.launch(edges=int(fwd.size + bwd.size), bytes_per_edge=16)
        cand = np.unique(np.concatenate([fwd, bwd]))
        cand = cand[active[cand]]
        frontier = cand[(in_deg[cand] <= 0) | (out_deg[cand] <= 0)]
    return removed_total, rounds


def _expand(graph: CSRGraph, frontier: np.ndarray) -> np.ndarray:
    """All out-neighbours of *frontier* (duplicates preserved)."""
    indptr, indices = graph.indptr, graph.indices
    counts = indptr[frontier + 1] - indptr[frontier]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    offsets = np.repeat(indptr[frontier], counts)
    ids = np.arange(total, dtype=VERTEX_DTYPE)
    resets = np.repeat(np.cumsum(counts) - counts, counts)
    return indices[offsets + (ids - resets)]


def trim2(
    graph: CSRGraph,
    active: np.ndarray,
    labels: np.ndarray,
    dev: VirtualDevice,
) -> int:
    """One Trim-2 pass: remove isolated 2-cycles.  Returns removals.

    A pair (u, v) qualifies when u <-> v and neither vertex has any other
    active in- or out-edge (Fig. 2b of the paper).
    """
    in_deg, out_deg = active_degrees(graph, active)
    src, dst = graph.edges()
    live = active[src] & active[dst]
    s, d = src[live], dst[live]
    dev.launch(edges=graph.num_edges, bytes_per_edge=24)
    # candidate endpoints: degree exactly 1 in both directions
    cand = active & (in_deg == 1) & (out_deg == 1)
    pick = cand[s] & cand[d]
    s2, d2 = s[pick], d[pick]
    if s2.size == 0:
        return 0
    # reciprocal test via edge-key membership
    n = max(graph.num_vertices, 1)
    keys = s2 * np.int64(n) + d2
    rev = d2 * np.int64(n) + s2
    recip = np.isin(rev, keys, assume_unique=False)
    u, v = s2[recip], d2[recip]
    # each pair appears as both (u, v) and (v, u); keep one orientation
    once = u < v
    u, v = u[once], v[once]
    if u.size == 0:
        return 0
    dev.launch(vertices=int(cand.sum()), bytes_per_vertex=16)
    pair_label = np.maximum(u, v)
    labels[u] = pair_label
    labels[v] = pair_label
    active[u] = False
    active[v] = False
    return int(u.size)


def trim3(
    graph: CSRGraph,
    active: np.ndarray,
    labels: np.ndarray,
    dev: VirtualDevice,
) -> int:
    """One Trim-3 pass: remove isolated size-3 SCCs (Yuede's 5 patterns).

    There are exactly five strongly connected 3-vertex digraphs up to
    isomorphism — the plain 3-cycle, the 3-cycle with one, two, or three
    reverse chords, and the bidirectional path — matching the five
    patterns of the iSpan paper.  A triple qualifies when it induces one
    of them *and* none of its members has any other active edge.

    Detection: every qualifying triple contains at least one member
    adjacent to both others (the middle of a bidirectional path, or any
    vertex of a 3-cycle), so triples are enumerated from vertices with
    exactly two distinct active neighbours, then validated for closure
    (no external edges) and strong connectivity (on 3 vertices: every
    member has an internal in- and out-edge).  Returns vertices removed.
    """
    n = graph.num_vertices
    src, dst = graph.edges()
    live = active[src] & active[dst] & (src != dst)
    s, d = src[live], dst[live]
    dev.launch(edges=graph.num_edges, bytes_per_edge=24)
    if s.size == 0:
        return 0
    # distinct undirected neighbour pairs (v, w), v != w, both active
    big = np.int64(max(n, 1))
    und = np.concatenate([s * big + d, d * big + s])
    und = np.unique(und)
    v = und // big
    w = und % big
    # vertices with exactly two distinct neighbours seed candidate triples
    deg = np.bincount(v, minlength=n)
    seeds = np.flatnonzero(deg == 2)
    if seeds.size == 0:
        return 0
    order = np.argsort(v, kind="stable")
    starts = np.searchsorted(v[order], seeds)
    n1 = w[order][starts]
    n2 = w[order][starts + 1]
    triple = np.sort(np.stack([seeds, n1, n2], axis=1), axis=1)
    triple = np.unique(triple, axis=0)
    a, b, c = triple[:, 0], triple[:, 1], triple[:, 2]
    ok = (a != b) & (b != c)
    a, b, c = a[ok], b[ok], c[ok]
    if a.size == 0:
        return 0
    # closure: each member's distinct-neighbour set lies inside the triple
    # (deg <= 2 plus both neighbours being members implies containment)
    dir_keys = np.unique(s * big + d)

    def has_edge(x, y):
        return np.isin(x * big + y, dir_keys)

    e = {}
    for name, (x, y) in {
        "ab": (a, b), "ba": (b, a), "bc": (b, c),
        "cb": (c, b), "ac": (a, c), "ca": (c, a),
    }.items():
        e[name] = has_edge(x, y)
    closed = (deg[a] <= 2) & (deg[b] <= 2) & (deg[c] <= 2)
    # neighbours of each member must be members: count internal undirected
    # adjacencies per member and compare with its distinct degree
    adj_a = (e["ab"] | e["ba"]).astype(np.int64) + (e["ac"] | e["ca"]).astype(np.int64)
    adj_b = (e["ab"] | e["ba"]).astype(np.int64) + (e["bc"] | e["cb"]).astype(np.int64)
    adj_c = (e["ac"] | e["ca"]).astype(np.int64) + (e["bc"] | e["cb"]).astype(np.int64)
    closed &= (adj_a == deg[a]) & (adj_b == deg[b]) & (adj_c == deg[c])
    # strong connectivity on 3 vertices: internal in- and out-degree >= 1
    out_a, in_a = e["ab"] | e["ac"], e["ba"] | e["ca"]
    out_b, in_b = e["ba"] | e["bc"], e["ab"] | e["cb"]
    out_c, in_c = e["ca"] | e["cb"], e["ac"] | e["bc"]
    sc = out_a & in_a & out_b & in_b & out_c & in_c
    pick = closed & sc
    if not pick.any():
        return 0
    a, b, c = a[pick], b[pick], c[pick]
    label = np.maximum(np.maximum(a, b), c)
    for arr in (a, b, c):
        labels[arr] = label
        active[arr] = False
    dev.launch(vertices=int(seeds.size), bytes_per_vertex=16)
    return int(3 * a.size)
