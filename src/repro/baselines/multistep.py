"""The Multistep method (Slota, Rajamanickam & Madduri, IPDPS 2014).

One of the fastest shared-memory SCC frameworks before iSpan, and part
of the prior-work lineage the paper positions against.  The recipe:

1. **Trim**: iterated Trim-1 (optionally Trim-2);
2. **FW-BW**: a single forward/backward reach from a high-degree pivot
   detects the giant SCC of power-law inputs;
3. **Coloring**: the remainder — many small SCCs — is finished with the
   Orzan coloring scheme, which handles high SCC counts better than
   recursive FB.

Reimplemented here on the virtual device so the benchmark suite can
place it between GPU-SCC and iSpan in the comparison tables.
"""

from __future__ import annotations

import numpy as np

from ..device.executor import VirtualDevice
from ..device.spec import XEON_6226R, DeviceSpec
from ..engine import (
    ArrayBackend,
    get_backend,
    pivot_fb_step,
    select_pivot,
    trim1,
    trim2,
)
from ..graph.csr import CSRGraph
from ..profile.ledger import attach_ledger
from ..graph.ops import induced_subgraph
from ..results import AlgoResult, count_sccs
from ..trace import Tracer, ensure_tracer
from ..types import NO_VERTEX, VERTEX_DTYPE
from .coloring import coloring_scc

__all__ = ["multistep_scc"]


def multistep_scc(
    graph: CSRGraph,
    *,
    device: "VirtualDevice | DeviceSpec | None" = None,
    use_trim2: bool = True,
    backend: "ArrayBackend | str | None" = None,
    tracer: "Tracer | None" = None,
) -> AlgoResult:
    """Slota et al.'s Multistep method.  Returns an
    :class:`~repro.results.AlgoResult` (still unpackable as the legacy
    ``(labels, device)`` tuple)."""
    if device is None:
        device = VirtualDevice(XEON_6226R)
    elif isinstance(device, DeviceSpec):
        device = VirtualDevice(device)
    be = get_backend(backend)
    tr = ensure_tracer(tracer)
    attach_ledger(device, tr)
    n = graph.num_vertices
    labels = np.full(n, NO_VERTEX, dtype=VERTEX_DTYPE)
    if n == 0:
        return AlgoResult(
            labels=labels, num_sccs=0, device=device,
            trace=tr.trace if tr.enabled else None,
        )

    active = np.ones(n, dtype=bool)
    # step 1: trim
    with tr.span("step1-trim"):
        trim1(graph, active, labels, device, backend=be, tracer=tr)
        if use_trim2 and active.any():
            if trim2(graph, active, labels, device, backend=be, tracer=tr):
                trim1(graph, active, labels, device, backend=be, tracer=tr)

    # step 2: one FW-BW from the max-total-degree pivot
    with tr.span("step2-fwbw"):
        if active.any():
            pivot = select_pivot(
                graph, active, device,
                strategy="max-degree", charge="serial", backend=be,
            )
            pivot_fb_step(
                graph, active, labels, device, pivot, backend=be, tracer=tr
            )
            trim1(graph, active, labels, device, backend=be, tracer=tr)

    # step 3: coloring SCC on the remaining induced subgraph
    with tr.span("step3-coloring", remaining=int(active.sum())):
        if active.any():
            sub, original = induced_subgraph(graph, active)
            sub_res = coloring_scc(
                sub, device=device.spec, backend=be, tracer=tr
            )
            device.counters.merge(sub_res.device.counters)
            # `original` is sorted ascending, so the compaction is monotone:
            # the max sub-index of a component maps to its max original ID,
            # and labels stay max-member-normalized through the lookup.
            labels[original] = original[sub_res.labels]
            active[original] = False

    assert not np.any(labels == NO_VERTEX)
    return AlgoResult(
        labels=labels,
        num_sccs=count_sccs(labels),
        device=device,
        trace=tr.trace if tr.enabled else None,
    )
