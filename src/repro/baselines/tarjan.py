"""Iterative Tarjan SCC — the verification oracle.

The paper verifies every ECL-SCC run against Tarjan's algorithm (§4); we
do the same.  This implementation is fully iterative (explicit DFS stack)
so it handles million-vertex deep meshes without touching Python's
recursion limit, and it avoids per-neighbour Python work where possible by
walking CSR slices with integer cursors.

Output convention (shared by every SCC code in this library): a per-vertex
``labels`` array where two vertices have equal labels iff they are in the
same SCC, and each label is the **maximum vertex ID** inside its component.
Normalizing all algorithms to the max-ID convention makes outputs directly
comparable with ``np.array_equal`` — no canonicalization pass needed in
tests or verification.

Like every ``*_scc`` entry point, :func:`tarjan_scc` returns an
:class:`~repro.results.AlgoResult`; the result still behaves like the
bare label array it historically returned (deprecated).
"""

from __future__ import annotations

import numpy as np

from ..engine.primitives import normalize_labels_to_max
from ..graph.csr import CSRGraph
from ..results import AlgoResult, count_sccs
from ..trace import Tracer, ensure_tracer
from ..types import VERTEX_DTYPE

__all__ = ["tarjan_scc", "normalize_labels_to_max"]


def tarjan_scc(
    graph: CSRGraph, *, tracer: "Tracer | None" = None
) -> AlgoResult:
    """Tarjan's algorithm; labels are max-ID-normalized per-vertex.

    O(V + E) time, iterative.  Lowlink bookkeeping follows the classic
    formulation; the DFS stack stores (vertex, next-edge-cursor) pairs.
    Returns an :class:`~repro.results.AlgoResult` with ``device=None``
    (the oracle runs serially, outside the device model).
    """
    tr = ensure_tracer(tracer)
    with tr.span("tarjan-dfs", vertices=graph.num_vertices):
        labels = _tarjan_labels(graph)
    return AlgoResult(
        labels=labels,
        num_sccs=count_sccs(labels),
        trace=tr.trace if tr.enabled else None,
    )


def _tarjan_labels(graph: CSRGraph) -> np.ndarray:
    n = graph.num_vertices
    indptr = graph.indptr
    indices = graph.indices

    UNVISITED = -1
    index = np.full(n, UNVISITED, dtype=VERTEX_DTYPE)
    lowlink = np.zeros(n, dtype=VERTEX_DTYPE)
    on_stack = np.zeros(n, dtype=bool)
    labels = np.full(n, UNVISITED, dtype=VERTEX_DTYPE)

    scc_stack: "list[int]" = []
    next_index = 0

    # Explicit DFS state: parallel lists acting as the call stack.
    dfs_v: "list[int]" = []
    dfs_cursor: "list[int]" = []

    for root in range(n):
        if index[root] != UNVISITED:
            continue
        dfs_v.append(root)
        dfs_cursor.append(int(indptr[root]))
        index[root] = lowlink[root] = next_index
        next_index += 1
        scc_stack.append(root)
        on_stack[root] = True

        while dfs_v:
            v = dfs_v[-1]
            cursor = dfs_cursor[-1]
            end = int(indptr[v + 1])
            advanced = False
            while cursor < end:
                w = int(indices[cursor])
                cursor += 1
                if index[w] == UNVISITED:
                    # descend
                    dfs_cursor[-1] = cursor
                    dfs_v.append(w)
                    dfs_cursor.append(int(indptr[w]))
                    index[w] = lowlink[w] = next_index
                    next_index += 1
                    scc_stack.append(w)
                    on_stack[w] = True
                    advanced = True
                    break
                elif on_stack[w]:
                    if index[w] < lowlink[v]:
                        lowlink[v] = index[w]
            if advanced:
                continue
            # v finished
            dfs_v.pop()
            dfs_cursor.pop()
            if lowlink[v] == index[v]:
                # pop component; label with max member ID
                comp: "list[int]" = []
                while True:
                    w = scc_stack.pop()
                    on_stack[w] = False
                    comp.append(w)
                    if w == v:
                        break
                rep = max(comp)
                for w in comp:
                    labels[w] = rep
            if dfs_v:
                parent = dfs_v[-1]
                if lowlink[v] < lowlink[parent]:
                    lowlink[parent] = lowlink[v]
    return labels
