"""The Forward-Backward algorithm (Fleischer et al. 2000).

The plain divide-and-conquer formulation with an explicit task queue:
pick a pivot, compute forward and backward reach sets, emit their
intersection as an SCC, and recurse on the three remainder sets.  This
is the ancestor of every parallel SCC code the paper compares against,
kept here both as a third correctness oracle and as the textbook
baseline for the benchmark suite.
"""

from __future__ import annotations

import numpy as np

from ..device.executor import VirtualDevice
from ..device.spec import RYZEN_2950X, DeviceSpec
from ..engine import (
    ArrayBackend,
    backward_reach,
    charge_vertex_scan,
    forward_reach,
    get_backend,
    select_pivot,
)
from ..engine.accounting import PAIR_FLAG_BYTES
from ..graph.csr import CSRGraph
from ..profile.ledger import attach_ledger
from ..results import AlgoResult, count_sccs
from ..trace import Tracer, ensure_tracer
from ..types import NO_VERTEX, VERTEX_DTYPE

__all__ = ["fb_scc"]


def fb_scc(
    graph: CSRGraph,
    *,
    device: "VirtualDevice | DeviceSpec | None" = None,
    pivot: str = "max",
    backend: "ArrayBackend | str | None" = None,
    tracer: "Tracer | None" = None,
) -> AlgoResult:
    """Forward-Backward SCC decomposition.

    Parameters
    ----------
    pivot:
        ``"max"`` — highest vertex ID in the task (deterministic, and
        labels come out max-normalized for free); ``"first"`` — lowest.

    Returns an :class:`~repro.results.AlgoResult` with max-member-ID
    labels (still unpackable as the legacy ``(labels, device)`` tuple).
    """
    if device is None:
        device = VirtualDevice(RYZEN_2950X)
    elif isinstance(device, DeviceSpec):
        device = VirtualDevice(device)
    be = get_backend(backend)
    tr = ensure_tracer(tracer)
    attach_ledger(device, tr)
    n = graph.num_vertices
    labels = np.full(n, NO_VERTEX, dtype=VERTEX_DTYPE)
    if n == 0:
        return AlgoResult(
            labels=labels, num_sccs=0, device=device,
            trace=tr.trace if tr.enabled else None,
        )
    # task queue of vertex-index arrays (subgraphs); masks are rebuilt per
    # task — the textbook formulation, not the coloring one
    queue: "list[np.ndarray]" = [np.arange(n, dtype=VERTEX_DTYPE)]
    mask = np.zeros(n, dtype=bool)
    strategy = "max-id" if pivot == "max" else "min-id"
    while queue:
        task = queue.pop()
        if task.size == 0:
            continue
        if task.size == 1:
            labels[task[0]] = task[0]
            continue
        with tr.span("fb-task", size=int(task.size)):
            mask[:] = False
            mask[task] = True
            p = select_pivot(
                graph, mask, device, strategy=strategy, charge="none"
            )
            fwd, _ = forward_reach(
                graph, np.asarray([p]), mask, device, backend=be, tracer=tr
            )
            bwd, _ = backward_reach(
                graph, np.asarray([p]), mask, device, backend=be, tracer=tr
            )
            scc = fwd & bwd & mask
            scc_idx = np.flatnonzero(scc)
            labels[scc_idx] = scc_idx.max()
            tr.counter("scc-detected", size=int(scc_idx.size))
            # emit the task's SCC labels: a task-sized kernel (the task
            # queue is already worklist-driven under either backend)
            charge_vertex_scan(
                device, be, num_vertices=task.size,
                worklist_size=task.size, bytes_per_vertex=PAIR_FLAG_BYTES,
            )
            fwd_only = np.flatnonzero(fwd & ~scc & mask)
            bwd_only = np.flatnonzero(bwd & ~scc & mask)
            rest = np.flatnonzero(mask & ~fwd & ~bwd)
            for sub in (fwd_only, bwd_only, rest):
                if sub.size:
                    queue.append(sub.astype(VERTEX_DTYPE))
    return AlgoResult(
        labels=labels,
        num_sccs=count_sccs(labels),
        device=device,
        trace=tr.trace if tr.enabled else None,
    )
