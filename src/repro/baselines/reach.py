"""Compatibility shim: reachability primitives live in :mod:`repro.engine`.

The instrumented reachability machinery (:func:`masked_bfs`,
:func:`colored_fb_rounds`, :func:`frontier_expand`) used to be
implemented here per-baseline; it is now shared by every algorithm via
:mod:`repro.engine.primitives`.  This module re-exports the engine
implementations so historical import paths keep working.
"""

from __future__ import annotations

from ..engine.primitives import (
    colored_fb_rounds,
    colored_reach,
    frontier_expand,
    masked_bfs,
)

# private alias kept for callers of the pre-engine helper name
_colored_reach = colored_reach

__all__ = ["masked_bfs", "colored_fb_rounds", "frontier_expand"]
