"""Shared reachability machinery for the FB-family baselines.

Two instrumented primitives:

* :func:`masked_bfs` — level-synchronous BFS restricted to an active
  vertex mask, reporting one kernel launch (GPU) / parallel barrier (CPU)
  per frontier level, the cost structure that makes BFS-based SCC codes
  slow on high-diameter meshes.

* :func:`colored_fb_rounds` — the coloring formulation of the
  Forward-Backward decomposition used by the GPU codes (Barnat et al.,
  Li et al.): every current partition ("color") selects a pivot by a
  winning concurrent write, all forward/backward searches of all colors
  advance together level-synchronously, and each round splits every
  color into up to four parts (SCC, forward-only, backward-only,
  neither).  Rounds repeat until every vertex is assigned.
"""

from __future__ import annotations

import numpy as np

from ..device.executor import VirtualDevice
from ..errors import ConvergenceError
from ..graph.csr import CSRGraph
from ..types import NO_VERTEX, VERTEX_DTYPE

__all__ = ["masked_bfs", "colored_fb_rounds", "frontier_expand"]


def frontier_expand(graph: CSRGraph, frontier: np.ndarray) -> np.ndarray:
    """All out-neighbours of *frontier* (with duplicates)."""
    indptr, indices = graph.indptr, graph.indices
    counts = indptr[frontier + 1] - indptr[frontier]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    offsets = np.repeat(indptr[frontier], counts)
    ids = np.arange(total, dtype=VERTEX_DTYPE)
    resets = np.repeat(np.cumsum(counts) - counts, counts)
    return indices[offsets + (ids - resets)]


def masked_bfs(
    graph: CSRGraph,
    sources: np.ndarray,
    active: np.ndarray,
    dev: VirtualDevice,
    *,
    serial_level_cost: int = 0,
) -> "tuple[np.ndarray, int]":
    """Level-synchronous BFS within ``active``; returns (visited, levels).

    Each level costs one launch/barrier plus the touched edges; callers
    modelling CPU codes with tiny frontiers pass ``serial_level_cost`` to
    charge the per-level critical-path overhead.
    """
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    sources = np.asarray(sources, dtype=VERTEX_DTYPE).ravel()
    sources = sources[active[sources]]
    visited[sources] = True
    frontier = np.unique(sources)
    levels = 0
    while frontier.size:
        levels += 1
        nxt = frontier_expand(graph, frontier)
        # topology-driven level kernel: scan every vertex's status flag,
        # then expand the frontier's adjacency (Barnat/Li formulation)
        dev.launch(
            edges=int(nxt.size) + int(frontier.size),
            vertices=n,
            bytes_per_vertex=8,
            bytes_per_edge=24,
        )
        if serial_level_cost:
            dev.serial(serial_level_cost)
        if nxt.size == 0:
            break
        nxt = nxt[active[nxt] & ~visited[nxt]]
        frontier = np.unique(nxt)
        visited[frontier] = True
    return visited, levels


def colored_fb_rounds(
    graph: CSRGraph,
    active: np.ndarray,
    labels: np.ndarray,
    dev: VirtualDevice,
    *,
    max_rounds: "int | None" = None,
    serial_level_cost: int = 0,
) -> int:
    """Run coloring-FB until every active vertex is labelled.

    ``labels`` is updated in place with the max-member-ID of each SCC
    found; ``active`` is cleared as vertices are assigned.  Returns the
    number of FB rounds (each internally costs its BFS levels).

    Pivot selection follows Barnat's "winning write": every vertex of a
    color writes its ID to the color's slot and the maximum wins — one
    launch, modelled by a segment-max here.
    """
    n = graph.num_vertices
    gt = graph.transpose()
    color = np.zeros(n, dtype=VERTEX_DTYPE)  # one initial partition
    rounds = 0
    bound = max_rounds or (n + 2)
    while True:
        act_idx = np.flatnonzero(active)
        if act_idx.size == 0:
            return rounds
        rounds += 1
        if rounds > bound:
            raise ConvergenceError("coloring FB exceeded its round bound")
        # --- pivot per color: winning concurrent write (one launch) ------
        col = color[act_idx]
        order = np.argsort(col, kind="stable")
        col_sorted = col[order]
        group_starts = np.flatnonzero(
            np.concatenate([[True], col_sorted[1:] != col_sorted[:-1]])
        )
        pivots = np.maximum.reduceat(act_idx[order], group_starts)
        dev.launch(vertices=act_idx.size, atomics=act_idx.size)
        # --- forward/backward reach from all pivots simultaneously -------
        fwd = _colored_reach(graph, pivots, color, active, dev, serial_level_cost)
        bwd = _colored_reach(gt, pivots, color, active, dev, serial_level_cost)
        scc = fwd & bwd & active
        # label each found SCC with its pivot's color-group max (the pivot
        # IS the max active ID of its color by construction)
        pivot_of_color = np.full(int(color[act_idx].max()) + 1, NO_VERTEX, dtype=VERTEX_DTYPE)
        pivot_of_color[col_sorted[group_starts]] = pivots
        scc_idx = np.flatnonzero(scc)
        labels[scc_idx] = pivot_of_color[color[scc_idx]]
        active[scc_idx] = False
        dev.launch(vertices=act_idx.size)
        # --- split colors: quadrant encoding then compaction -------------
        still = np.flatnonzero(active)
        if still.size == 0:
            return rounds
        quad = 2 * fwd[still].astype(np.int64) + bwd[still].astype(np.int64)
        new_color = color[still] * 4 + quad
        _, dense = np.unique(new_color, return_inverse=True)
        color[still] = dense
        dev.launch(vertices=still.size)


def _colored_reach(
    graph: CSRGraph,
    pivots: np.ndarray,
    color: np.ndarray,
    active: np.ndarray,
    dev: VirtualDevice,
    serial_level_cost: int,
) -> np.ndarray:
    """Multi-source BFS where expansion stays within the source's color."""
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    visited[pivots] = True
    frontier = np.unique(pivots)
    while frontier.size:
        indptr, indices = graph.indptr, graph.indices
        counts = indptr[frontier + 1] - indptr[frontier]
        total = int(counts.sum())
        # topology-driven level kernel (see masked_bfs)
        dev.launch(
            edges=total + int(frontier.size),
            vertices=n,
            bytes_per_vertex=8,
            bytes_per_edge=24,
        )
        if serial_level_cost:
            dev.serial(serial_level_cost)
        if total == 0:
            break
        offsets = np.repeat(indptr[frontier], counts)
        ids = np.arange(total, dtype=VERTEX_DTYPE)
        resets = np.repeat(np.cumsum(counts) - counts, counts)
        nxt = indices[offsets + (ids - resets)]
        src_col = np.repeat(color[frontier], counts)
        ok = active[nxt] & ~visited[nxt] & (color[nxt] == src_col)
        frontier = np.unique(nxt[ok])
        visited[frontier] = True
    return visited
