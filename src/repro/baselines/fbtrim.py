"""FB-Trim (McLendon et al. 2005): Trim-1 peeling + Forward-Backward.

The classic recipe: repeatedly trim trivial SCCs, then run the FB
decomposition on whatever survives.  Kept as the direct ancestor of
GPU-SCC and iSpan and as an additional benchmark point.
"""

from __future__ import annotations

import numpy as np

from ..device.executor import VirtualDevice
from ..device.spec import RYZEN_2950X, DeviceSpec
from ..engine import ArrayBackend, colored_fb_rounds, get_backend, trim1, trim2
from ..graph.csr import CSRGraph
from ..profile.ledger import attach_ledger
from ..results import AlgoResult, count_sccs
from ..trace import Tracer, ensure_tracer
from ..types import NO_VERTEX, VERTEX_DTYPE

__all__ = ["fbtrim_scc"]


def fbtrim_scc(
    graph: CSRGraph,
    *,
    device: "VirtualDevice | DeviceSpec | None" = None,
    use_trim2: bool = True,
    backend: "ArrayBackend | str | None" = None,
    tracer: "Tracer | None" = None,
) -> AlgoResult:
    """Trim-1 (+ optional Trim-2), then coloring-FB on the remainder.

    Returns an :class:`~repro.results.AlgoResult` (still unpackable as
    the legacy ``(labels, device)`` tuple)."""
    if device is None:
        device = VirtualDevice(RYZEN_2950X)
    elif isinstance(device, DeviceSpec):
        device = VirtualDevice(device)
    be = get_backend(backend)
    tr = ensure_tracer(tracer)
    attach_ledger(device, tr)
    n = graph.num_vertices
    labels = np.full(n, NO_VERTEX, dtype=VERTEX_DTYPE)
    active = np.ones(n, dtype=bool)
    if n == 0:
        return AlgoResult(
            labels=labels, num_sccs=0, device=device,
            trace=tr.trace if tr.enabled else None,
        )
    with tr.span("trim"):
        trim1(graph, active, labels, device, backend=be, tracer=tr)
        if use_trim2:
            while trim2(graph, active, labels, device, backend=be, tracer=tr):
                trim1(graph, active, labels, device, backend=be, tracer=tr)
    with tr.span("coloring-fb", remaining=int(active.sum())):
        if active.any():
            colored_fb_rounds(
                graph, active, labels, device, backend=be, tracer=tr
            )
    assert not np.any(labels == NO_VERTEX)
    return AlgoResult(
        labels=labels,
        num_sccs=count_sccs(labels),
        device=device,
        trace=tr.trace if tr.enabled else None,
    )
