"""FB-Trim (McLendon et al. 2005): Trim-1 peeling + Forward-Backward.

The classic recipe: repeatedly trim trivial SCCs, then run the FB
decomposition on whatever survives.  Kept as the direct ancestor of
GPU-SCC and iSpan and as an additional benchmark point.
"""

from __future__ import annotations

import numpy as np

from ..device.executor import VirtualDevice
from ..device.spec import RYZEN_2950X, DeviceSpec
from ..graph.csr import CSRGraph
from ..types import NO_VERTEX, VERTEX_DTYPE
from .reach import colored_fb_rounds
from .trim import trim1, trim2

__all__ = ["fbtrim_scc"]


def fbtrim_scc(
    graph: CSRGraph,
    *,
    device: "VirtualDevice | DeviceSpec | None" = None,
    use_trim2: bool = True,
) -> "tuple[np.ndarray, VirtualDevice]":
    """Trim-1 (+ optional Trim-2), then coloring-FB on the remainder."""
    if device is None:
        device = VirtualDevice(RYZEN_2950X)
    elif isinstance(device, DeviceSpec):
        device = VirtualDevice(device)
    n = graph.num_vertices
    labels = np.full(n, NO_VERTEX, dtype=VERTEX_DTYPE)
    active = np.ones(n, dtype=bool)
    if n == 0:
        return labels, device
    trim1(graph, active, labels, device)
    if use_trim2:
        while trim2(graph, active, labels, device):
            trim1(graph, active, labels, device)
    if active.any():
        colored_fb_rounds(graph, active, labels, device)
    assert not np.any(labels == NO_VERTEX)
    return labels, device
