"""iSpan (Ji, Liu & Huang, SC '18) — the paper's fastest parallel CPU code.

Phase structure per the publication, reproduced on the virtual CPU:

1. Trim-1 (iterated) before large-SCC detection;
2. large-SCC detection with spanning trees: forward and backward
   traversals from a hub pivot (maximum total degree).  iSpan's Rsync
   relaxes synchronization, which we model as a reduced per-level
   barrier charge, but each traversal level still has a critical-path
   cost — on high-diameter meshes the frontiers hold only a handful of
   vertices, so the traversal is effectively serial;
3. Trim-1, Trim-2 and Trim-3 after the large SCC;
4. residual small-SCC detection: FB over the remaining subgraphs.
   iSpan processes these with *task parallelism*; tasks are tiny and
   data-dependent on meshes, so we charge the per-level critical path to
   serial work exactly as phase 2 does.

Why it collapses on meshes (paper Tables 5-6: minutes-to-hours): mesh
graphs have no giant SCC, so phase 2 does an expensive full traversal
that detects almost nothing, and phases 3-4 peel a DAG whose depth is in
the hundreds-to-thousands, paying the per-level critical path each time
while frontiers are far narrower than the machine's thread count.
"""

from __future__ import annotations

import numpy as np

from ..device.executor import VirtualDevice
from ..device.spec import XEON_6226R, DeviceSpec
from ..engine import (
    ArrayBackend,
    colored_fb_rounds,
    get_backend,
    pivot_fb_step,
    select_pivot,
    trim1,
    trim2,
    trim3,
)
from ..graph.csr import CSRGraph
from ..profile.ledger import attach_ledger
from ..results import AlgoResult, count_sccs
from ..trace import Tracer, ensure_tracer
from ..types import NO_VERTEX, VERTEX_DTYPE

__all__ = ["ispan_scc"]

#: critical-path operations charged per traversal level (loop control,
#: Rsync flag checks, work-stealing) — one constant for all inputs.
_LEVEL_SERIAL_OPS = 400


def ispan_scc(
    graph: CSRGraph,
    *,
    device: "VirtualDevice | DeviceSpec | None" = None,
    backend: "ArrayBackend | str | None" = None,
    tracer: "Tracer | None" = None,
) -> AlgoResult:
    """iSpan on the virtual CPU.  Returns an
    :class:`~repro.results.AlgoResult` (still unpackable as the legacy
    ``(labels, device)`` tuple)."""
    if device is None:
        device = VirtualDevice(XEON_6226R)
    elif isinstance(device, DeviceSpec):
        device = VirtualDevice(device)
    be = get_backend(backend)
    tr = ensure_tracer(tracer)
    attach_ledger(device, tr)
    n = graph.num_vertices
    labels = np.full(n, NO_VERTEX, dtype=VERTEX_DTYPE)
    active = np.ones(n, dtype=bool)
    if n == 0:
        return AlgoResult(
            labels=labels, num_sccs=0, device=device,
            trace=tr.trace if tr.enabled else None,
        )

    # phase 1: Trim-1 before the large-SCC search
    with tr.span("phase1-trim"):
        trim1(graph, active, labels, device, backend=be, tracer=tr)

    # phase 2: spanning-tree forward/backward from the hub vertex
    with tr.span("phase2-giant-scc"):
        if active.any():
            hub = select_pivot(
                graph, active, device,
                strategy="max-degree", charge="serial", backend=be,
            )
            pivot_fb_step(
                graph, active, labels, device, hub,
                serial_level_cost=_LEVEL_SERIAL_OPS, backend=be, tracer=tr,
            )

    # phase 3: Trim-1, Trim-2, Trim-3
    with tr.span("phase3-retrim"):
        if active.any():
            trim1(graph, active, labels, device, backend=be, tracer=tr)
        if active.any():
            if trim2(graph, active, labels, device, backend=be, tracer=tr):
                trim1(graph, active, labels, device, backend=be, tracer=tr)
        if active.any():
            if trim3(graph, active, labels, device, backend=be, tracer=tr):
                trim1(graph, active, labels, device, backend=be, tracer=tr)

    # phase 4: task-parallel FB on the residual subgraphs
    with tr.span("phase4-residual-fb", remaining=int(active.sum())):
        if active.any():
            colored_fb_rounds(
                graph, active, labels, device,
                serial_level_cost=_LEVEL_SERIAL_OPS, backend=be, tracer=tr,
            )

    assert not np.any(labels == NO_VERTEX)
    return AlgoResult(
        labels=labels,
        num_sccs=count_sccs(labels),
        device=device,
        trace=tr.trace if tr.enabled else None,
    )
