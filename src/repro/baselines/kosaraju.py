"""Kosaraju–Sharir SCC — second, independent verification oracle.

Having two serial oracles with different algorithmic structure (Tarjan's
lowlink DFS vs Kosaraju's two-pass finish-order DFS) means a bug in one
oracle cannot silently validate a matching bug in a parallel code: the
test suite cross-checks all algorithms against both.

Iterative, CSR-cursor based, same max-ID label convention as
:func:`repro.baselines.tarjan.tarjan_scc`.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..results import AlgoResult, count_sccs
from ..trace import Tracer, ensure_tracer
from ..types import VERTEX_DTYPE
from .tarjan import normalize_labels_to_max

__all__ = ["kosaraju_scc"]


def kosaraju_scc(
    graph: CSRGraph, *, tracer: "Tracer | None" = None
) -> AlgoResult:
    """Kosaraju's algorithm; labels are max-ID-normalized per-vertex.

    Returns an :class:`~repro.results.AlgoResult` with ``device=None``
    (serial oracle, outside the device model)."""
    tr = ensure_tracer(tracer)
    n = graph.num_vertices
    indptr, indices = graph.indptr, graph.indices

    # Pass 1: DFS finish order on G.
    with tr.span("kosaraju-pass1", vertices=n):
        visited = np.zeros(n, dtype=bool)
        finish_order = np.empty(n, dtype=VERTEX_DTYPE)
        fo_cursor = 0
        dfs_v: "list[int]" = []
        dfs_cursor: "list[int]" = []
        for root in range(n):
            if visited[root]:
                continue
            visited[root] = True
            dfs_v.append(root)
            dfs_cursor.append(int(indptr[root]))
            while dfs_v:
                v = dfs_v[-1]
                cursor = dfs_cursor[-1]
                end = int(indptr[v + 1])
                advanced = False
                while cursor < end:
                    w = int(indices[cursor])
                    cursor += 1
                    if not visited[w]:
                        visited[w] = True
                        dfs_cursor[-1] = cursor
                        dfs_v.append(w)
                        dfs_cursor.append(int(indptr[w]))
                        advanced = True
                        break
                if advanced:
                    continue
                dfs_v.pop()
                dfs_cursor.pop()
                finish_order[fo_cursor] = v
                fo_cursor += 1

    # Pass 2: DFS on G^T in reverse finish order; each tree is one SCC.
    with tr.span("kosaraju-pass2", vertices=n):
        gt = graph.transpose()
        t_indptr, t_indices = gt.indptr, gt.indices
        labels = np.full(n, -1, dtype=VERTEX_DTYPE)
        stack: "list[int]" = []
        for i in range(n - 1, -1, -1):
            root = int(finish_order[i])
            if labels[root] != -1:
                continue
            labels[root] = root
            stack.append(root)
            while stack:
                v = stack.pop()
                for cursor in range(int(t_indptr[v]), int(t_indptr[v + 1])):
                    w = int(t_indices[cursor])
                    if labels[w] == -1:
                        labels[w] = root
                        stack.append(w)
        labels = normalize_labels_to_max(labels)
    return AlgoResult(
        labels=labels,
        num_sccs=count_sccs(labels),
        trace=tr.trace if tr.enabled else None,
    )
