"""GPU-SCC (Li et al. 2017) — the paper's fastest prior GPU code.

Phase structure per the publication, reproduced on the virtual GPU:

1. iterated Trim-1 (two kernel launches per round);
2. "large SCC" phase: forward/backward level-synchronous BFS from a
   single high-degree pivot over the whole remaining graph, with
   topology-driven load balancing — detects the giant SCC of power-law
   inputs in one shot;
3. another trim round (Trim-1 + Trim-2);
4. "small SCC" phase: coloring-FB over all remaining partitions
   simultaneously (WCC-style colors, one pivot per color by winning
   write), iterated to completion.

Cost character (and why the paper beats it on meshes): phases 1 and 4
launch kernels proportional to the trim depth and the BFS diameters of
the residual subgraphs, which on mesh inputs scale with the DAG depth —
thousands of nearly-empty launches — while ECL-SCC needs ~log(depth)
rounds of full-width work.
"""

from __future__ import annotations

import numpy as np

from ..device.executor import VirtualDevice
from ..device.spec import TITAN_V, DeviceSpec
from ..engine import (
    ArrayBackend,
    colored_fb_rounds,
    get_backend,
    pivot_fb_step,
    select_pivot,
    trim1,
    trim2,
)
from ..graph.csr import CSRGraph
from ..profile.ledger import attach_ledger
from ..results import AlgoResult, count_sccs
from ..trace import Tracer, ensure_tracer
from ..types import NO_VERTEX, VERTEX_DTYPE

__all__ = ["gpu_scc"]


def gpu_scc(
    graph: CSRGraph,
    *,
    device: "VirtualDevice | DeviceSpec | None" = None,
    backend: "ArrayBackend | str | None" = None,
    tracer: "Tracer | None" = None,
) -> AlgoResult:
    """Li et al.'s GPU SCC algorithm on the virtual device.

    Returns an :class:`~repro.results.AlgoResult` with max-member-ID
    labels (still unpackable as the legacy ``(labels, device)`` tuple).
    """
    if device is None:
        device = VirtualDevice(TITAN_V)
    elif isinstance(device, DeviceSpec):
        device = VirtualDevice(device)
    be = get_backend(backend)
    tr = ensure_tracer(tracer)
    attach_ledger(device, tr)
    n = graph.num_vertices
    labels = np.full(n, NO_VERTEX, dtype=VERTEX_DTYPE)
    active = np.ones(n, dtype=bool)
    if n == 0:
        return AlgoResult(
            labels=labels, num_sccs=0, device=device,
            trace=tr.trace if tr.enabled else None,
        )

    # phase 1: iterated Trim-1
    with tr.span("phase1-trim"):
        trim1(graph, active, labels, device, backend=be, tracer=tr)

    # phase 2: giant-SCC detection from a high-degree pivot
    with tr.span("phase2-giant-scc"):
        if active.any():
            pivot = select_pivot(
                graph, active, device,
                strategy="max-degree", charge="atomic", backend=be,
            )
            pivot_fb_step(
                graph, active, labels, device, pivot, backend=be, tracer=tr
            )

    # phase 3: re-trim (Trim-1 then Trim-2 then Trim-1 again)
    with tr.span("phase3-retrim"):
        if active.any():
            trim1(graph, active, labels, device, backend=be, tracer=tr)
        if active.any():
            if trim2(graph, active, labels, device, backend=be, tracer=tr):
                trim1(graph, active, labels, device, backend=be, tracer=tr)

    # phase 4: coloring-FB over everything that remains
    with tr.span("phase4-coloring-fb", remaining=int(active.sum())):
        if active.any():
            colored_fb_rounds(
                graph, active, labels, device, backend=be, tracer=tr
            )

    assert not np.any(labels == NO_VERTEX)
    return AlgoResult(
        labels=labels,
        num_sccs=count_sccs(labels),
        device=device,
        trace=tr.trace if tr.enabled else None,
    )
