"""Hong, Rodia & Olukotun (SC '13): FB-Trim with a WCC task phase.

The first parallel CPU method to handle real-world power-law graphs
well.  Phase structure per the publication:

1. Trim-1 (size-1), one pass of Trim-2 (size-2);
2. the giant SCC via forward/backward reach from a high-degree pivot
   (data-parallel phase);
3. weakly-connected-component decomposition of the remainder; each WCC
   becomes an independent *task* processed by FB recursion (task-parallel
   phase).

Included for completeness of the lineage (the paper discusses it as the
basis of the GPU codes) and as an extra benchmark point on the CPU side.
"""

from __future__ import annotations

import numpy as np

from ..device.executor import VirtualDevice
from ..device.spec import XEON_6226R, DeviceSpec
from ..engine import (
    ArrayBackend,
    colored_fb_rounds,
    get_backend,
    pivot_fb_step,
    select_pivot,
    trim1,
    trim2,
)
from ..graph.csr import CSRGraph
from ..profile.ledger import attach_ledger
from ..graph.properties import weakly_connected_components
from ..results import AlgoResult, count_sccs
from ..trace import Tracer, ensure_tracer
from ..types import NO_VERTEX, VERTEX_DTYPE

__all__ = ["hong_scc"]


def hong_scc(
    graph: CSRGraph,
    *,
    device: "VirtualDevice | DeviceSpec | None" = None,
    backend: "ArrayBackend | str | None" = None,
    tracer: "Tracer | None" = None,
) -> AlgoResult:
    """Hong et al.'s method on the virtual CPU.  Returns an
    :class:`~repro.results.AlgoResult` (still unpackable as the legacy
    ``(labels, device)`` tuple)."""
    if device is None:
        device = VirtualDevice(XEON_6226R)
    elif isinstance(device, DeviceSpec):
        device = VirtualDevice(device)
    be = get_backend(backend)
    tr = ensure_tracer(tracer)
    attach_ledger(device, tr)
    n = graph.num_vertices
    labels = np.full(n, NO_VERTEX, dtype=VERTEX_DTYPE)
    active = np.ones(n, dtype=bool)
    if n == 0:
        return AlgoResult(
            labels=labels, num_sccs=0, device=device,
            trace=tr.trace if tr.enabled else None,
        )

    with tr.span("phase1-trim"):
        trim1(graph, active, labels, device, backend=be, tracer=tr)
        if active.any():
            trim2(graph, active, labels, device, backend=be, tracer=tr)
            trim1(graph, active, labels, device, backend=be, tracer=tr)

    with tr.span("phase2-giant-scc"):
        if active.any():
            pivot = select_pivot(
                graph, active, device,
                strategy="max-degree", charge="serial", backend=be,
            )
            pivot_fb_step(
                graph, active, labels, device, pivot, backend=be, tracer=tr
            )

    with tr.span("phase3-wcc-fb", remaining=int(active.sum())):
        if active.any():
            # WCC decomposition of the remainder (label propagation), then
            # FB within each WCC.  The colors of colored_fb_rounds start
            # from the WCC labels, so components are processed as
            # independent tasks.
            wcc = weakly_connected_components(graph)
            device.launch(edges=graph.num_edges, vertices=n, bytes_per_edge=24)
            _fb_with_initial_colors(graph, active, labels, device, wcc, be)

    assert not np.any(labels == NO_VERTEX)
    return AlgoResult(
        labels=labels,
        num_sccs=count_sccs(labels),
        device=device,
        trace=tr.trace if tr.enabled else None,
    )


def _fb_with_initial_colors(
    graph: CSRGraph,
    active: np.ndarray,
    labels: np.ndarray,
    dev: VirtualDevice,
    init_colors: np.ndarray,
    backend: ArrayBackend,
) -> None:
    """Coloring-FB seeded with an initial partition (WCC labels)."""
    # The shared engine initializes its own colors; seeding is equivalent
    # to one extra split round, which we emulate by running the engine on
    # each WCC's vertex set via masking.  WCC counts are small for the
    # paper's workloads, but guard against pathological fragmentation by
    # falling back to a single run when there are many components.
    act_idx = np.flatnonzero(active)
    comps = np.unique(init_colors[act_idx])
    if comps.size > 64:
        colored_fb_rounds(graph, active, labels, dev, backend=backend)
        return
    for comp in comps:
        sub_active = active & (init_colors == comp)
        if sub_active.any():
            colored_fb_rounds(graph, sub_active, labels, dev, backend=backend)
            active &= ~(init_colors == comp)
