"""The unified solve API: :func:`solve` and :class:`Solver`.

Running an algorithm used to require knowing the bench harness
(:func:`repro.bench.run_algorithm`) and its positional ``(graph,
algorithm, device)`` contract.  This module is the front door that
subsumes it:

* :func:`solve` — one call for the static question: ``solve(g)`` runs
  ECL-SCC on the default device and returns the
  :class:`~repro.bench.RunResult`; every axis (``algorithm``,
  ``engine``, ``backend``, ``device``, ``options``, ``faults``,
  ``tracer``, verification, wall timing) is a keyword.
* :class:`Solver` — the same axes frozen into a reusable
  configuration: ``Solver(engine="frontier").solve(g)`` for snapshots,
  ``Solver(...).dynamic(g)`` for a mutable
  :class:`~repro.dynamic.DynamicGraph` handle with the same
  configuration.  A static solve is exactly the degenerate dynamic
  case: ``Solver().dynamic(g).query()`` yields the same labels as
  ``Solver().solve(g)``.

Legacy spellings are accepted with ``DeprecationWarning`` shims:
``solve(g, algo="ecl-scc")`` (old bench scripts) and
``solve(g, frontier_phase2=True)`` (PR 4's bool flag, folded into
``engine="frontier"`` — see :class:`repro.core.options.EclOptions`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from .bench.runners import RunResult, run_algorithm
from .core.options import EclOptions
from .device.spec import A100, DeviceSpec
from .dynamic.graph import DynamicGraph
from .errors import AlgorithmError
from .faults.plan import FaultPlan
from .graph.csr import CSRGraph
from .trace import Tracer

__all__ = ["solve", "Solver"]


@dataclass(frozen=True)
class Solver:
    """A reusable solve configuration (every axis of the pipeline).

    Attributes
    ----------
    algorithm:
        registered algorithm name (default ``"ecl-scc"``; see
        :data:`repro.bench.ALGORITHM_NAMES`).
    device:
        :class:`~repro.device.DeviceSpec` the run is modelled on.
    engine:
        ECL-SCC Phase-2 engine name, validated against the registry
        (``None`` keeps the options' resolution).
    backend:
        registered :class:`~repro.engine.ArrayBackend` name.
    options:
        base :class:`~repro.core.options.EclOptions`.
    faults:
        optional :class:`~repro.faults.FaultPlan` injected per run.
    """

    algorithm: str = "ecl-scc"
    device: DeviceSpec = field(default_factory=lambda: A100)
    engine: "str | None" = None
    backend: "str | None" = None
    options: "EclOptions | None" = None
    faults: "FaultPlan | None" = None

    def solve(
        self,
        graph: CSRGraph,
        *,
        tracer: "Tracer | None" = None,
        verify: bool = False,
        time_wall: bool = False,
        repeats: int = 9,
    ) -> RunResult:
        """Solve one static snapshot under this configuration."""
        return run_algorithm(
            graph,
            self.algorithm,
            self.device,
            options=self.options,
            backend=self.backend,
            engine=self.engine,
            tracer=tracer,
            faults=self.faults,
            verify=verify,
            time_wall=time_wall,
            repeats=repeats,
        )

    def dynamic(
        self,
        graph: CSRGraph,
        *,
        tracer: "Tracer | None" = None,
    ) -> DynamicGraph:
        """A mutable :class:`~repro.dynamic.DynamicGraph` handle.

        The handle maintains labels incrementally under batched edge
        insertions/deletions; its internal re-solves default to the
        frontier engine when this solver does not pin one.  Only
        ECL-SCC has incremental maintenance semantics.
        """
        if self.algorithm != "ecl-scc":
            raise AlgorithmError(
                "dynamic maintenance is only supported for 'ecl-scc',"
                f" not {self.algorithm!r}"
            )
        return DynamicGraph(
            graph,
            options=self.options,
            engine=self.engine,
            backend=self.backend,
            tracer=tracer,
            faults=self.faults,
        )


def solve(
    graph: CSRGraph,
    algorithm: "str | None" = None,
    *,
    device: "DeviceSpec | None" = None,
    engine: "str | None" = None,
    backend: "str | None" = None,
    options: "EclOptions | None" = None,
    faults: "FaultPlan | None" = None,
    tracer: "Tracer | None" = None,
    verify: bool = False,
    time_wall: bool = False,
    repeats: int = 9,
    **legacy,
) -> RunResult:
    """Solve *graph* for SCCs — the one-call front door.

    ``solve(g)`` runs ECL-SCC on the default device;
    ``solve(g, "ispan")`` runs a baseline; ``engine=`` / ``backend=`` /
    ``options=`` / ``faults=`` select the pipeline axes exactly as
    :class:`Solver` does (this function is ``Solver(...).solve(...)``).

    Deprecated spellings (``DeprecationWarning``): ``algo=`` for the
    algorithm name and ``frontier_phase2=True`` for
    ``engine="frontier"``.
    """
    if "algo" in legacy:
        warnings.warn(
            "solve(algo=...) is deprecated; pass the algorithm name"
            " positionally or as algorithm=...",
            DeprecationWarning,
            stacklevel=2,
        )
        if algorithm is not None:
            raise AlgorithmError("pass either algorithm= or algo=, not both")
        algorithm = legacy.pop("algo")
    if "frontier_phase2" in legacy:
        warnings.warn(
            "solve(frontier_phase2=...) is deprecated; pass"
            " engine='frontier' instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if legacy.pop("frontier_phase2") and engine is None:
            engine = "frontier"
    if legacy:
        raise TypeError(
            "solve() got unexpected keyword arguments: "
            + ", ".join(sorted(legacy))
        )
    solver = Solver(
        algorithm=algorithm or "ecl-scc",
        device=device if device is not None else A100,
        engine=engine,
        backend=backend,
        options=options,
        faults=faults,
    )
    return solver.solve(
        graph, tracer=tracer, verify=verify,
        time_wall=time_wall, repeats=repeats,
    )
