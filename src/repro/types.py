"""Shared array conventions and small typed helpers.

The whole library standardizes on:

* ``VERTEX_DTYPE`` (``int64``) for vertex IDs, signatures, and labels.
  The paper's CUDA code uses 32-bit IDs; we use 64-bit to avoid overflow
  concerns on the expanded (10x) meshes and because NumPy indexing is
  int64-native.  ``int32`` inputs are accepted and widened at the boundary.
* ``INDPTR_DTYPE`` (``int64``) for CSR offsets.
* C-contiguous 1-D arrays everywhere; functions may assume this after
  calling :func:`as_vertex_array`.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = [
    "VERTEX_DTYPE",
    "INDPTR_DTYPE",
    "FLOAT_DTYPE",
    "NO_VERTEX",
    "as_vertex_array",
    "as_indptr_array",
    "is_sorted",
    "check_1d",
]

#: dtype used for vertex IDs, edge endpoints, signatures, and SCC labels.
VERTEX_DTYPE = np.dtype(np.int64)

#: dtype used for CSR ``indptr`` offset arrays.
INDPTR_DTYPE = np.dtype(np.int64)

#: dtype used for geometric/physical quantities (mesh coordinates, fluxes).
FLOAT_DTYPE = np.dtype(np.float64)

#: Sentinel for "no vertex" / "unassigned" in ID-valued arrays.
NO_VERTEX = np.int64(-1)


def check_1d(a: np.ndarray, name: str) -> np.ndarray:
    """Raise ``ValueError`` unless *a* is a 1-D ndarray; return it unchanged."""
    if not isinstance(a, np.ndarray):
        raise TypeError(f"{name} must be a numpy array, got {type(a).__name__}")
    if a.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {a.shape}")
    return a


def as_vertex_array(a: "np.ndarray | Iterable[int]", name: str = "array") -> np.ndarray:
    """Convert *a* to a contiguous 1-D ``VERTEX_DTYPE`` array.

    Accepts any integer-typed array or iterable.  Floating inputs are
    rejected rather than truncated: silently flooring vertex IDs has been a
    real bug source in graph code.
    """
    arr = np.asarray(a)
    if arr.size == 0:
        # empty Python lists arrive as float64; there is nothing to truncate
        arr = arr.astype(VERTEX_DTYPE)
    if arr.dtype.kind == "f":
        raise TypeError(f"{name} must be integer-typed, got {arr.dtype}")
    if arr.dtype.kind == "b":
        raise TypeError(f"{name} must be integer-typed, got bool")
    arr = np.ascontiguousarray(arr, dtype=VERTEX_DTYPE)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def as_indptr_array(a: "np.ndarray | Iterable[int]", name: str = "indptr") -> np.ndarray:
    """Convert *a* to a contiguous 1-D ``INDPTR_DTYPE`` array."""
    arr = np.asarray(a)
    if arr.dtype.kind not in "iu":
        raise TypeError(f"{name} must be integer-typed, got {arr.dtype}")
    arr = np.ascontiguousarray(arr, dtype=INDPTR_DTYPE)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def is_sorted(a: np.ndarray) -> bool:
    """True iff 1-D array *a* is sorted in nondecreasing order."""
    if a.size <= 1:
        return True
    return bool(np.all(a[:-1] <= a[1:]))
