"""Timing protocol from §4 of the paper.

"Whenever reasonable, we ran each experiment nine times and report the
median runtime" — :func:`median_time` implements that, with a smaller
repeat count for slow runs (the paper did the same for iSpan).  Only the
SCC computation is timed; graph construction, verification and output
are excluded by construction (the callable passed in does only the SCC
work).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["TimedRun", "median_time"]


@dataclass(frozen=True)
class TimedRun:
    """Wall-clock timing summary of repeated runs."""

    median_s: float
    min_s: float
    max_s: float
    repeats: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TimedRun median={self.median_s * 1e3:.3f}ms x{self.repeats}>"


def median_time(
    fn: Callable[[], object],
    *,
    repeats: int = 9,
    slow_threshold_s: float = 1.0,
) -> TimedRun:
    """Run *fn* repeatedly; median wall time (paper protocol).

    After the first run, if a single run exceeds ``slow_threshold_s`` the
    repeat count drops to 3 (and to 1 beyond 10x the threshold), mirroring
    the paper's reduced repeats for very slow configurations.
    """
    times: "list[float]" = []
    t0 = time.perf_counter()
    fn()
    first = time.perf_counter() - t0
    times.append(first)
    if first > 10 * slow_threshold_s:
        total = 1
    elif first > slow_threshold_s:
        total = 3
    else:
        total = repeats
    for _ in range(total - 1):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    times.sort()
    mid = times[len(times) // 2] if len(times) % 2 else (
        0.5 * (times[len(times) // 2 - 1] + times[len(times) // 2])
    )
    return TimedRun(median_s=mid, min_s=times[0], max_s=times[-1], repeats=len(times))
