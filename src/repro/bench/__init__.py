"""Benchmark harness: timing protocol, throughput metric, experiments."""

from .timing import TimedRun, median_time
from .throughput import geometric_mean, throughput_mvs
from .runners import ALGORITHM_NAMES, RunResult, run_algorithm
from .formatting import format_seconds, render_series, render_table
from .export import export_json, to_jsonable
from .experiments import (
    RUNTIME_COLUMNS,
    ExperimentResult,
    ablation_figure,
    expanded_meshes,
    mesh_table_properties,
    powerlaw_table_properties,
    runtime_table,
    throughput_figures,
)

__all__ = [
    "TimedRun",
    "median_time",
    "geometric_mean",
    "throughput_mvs",
    "ALGORITHM_NAMES",
    "RunResult",
    "run_algorithm",
    "format_seconds",
    "render_series",
    "render_table",
    "export_json",
    "to_jsonable",
    "RUNTIME_COLUMNS",
    "ExperimentResult",
    "ablation_figure",
    "expanded_meshes",
    "mesh_table_properties",
    "powerlaw_table_properties",
    "runtime_table",
    "throughput_figures",
]
