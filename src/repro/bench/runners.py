"""Unified algorithm runner for the benchmark harness.

One entry point, :func:`run_algorithm`, runs any of the SCC codes on any
virtual device, optionally wall-clock timing it with the paper's
median-of-9 protocol and verifying the labels against Tarjan.  The
returned :class:`RunResult` carries both the *model* runtime (virtual
device cost estimate — the number the paper-style tables use) and the
Python wall time (reported alongside for transparency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..analysis.verify import verify_labels
from ..core.eclscc import ecl_scc
from ..core.minmax import minmax_scc
from ..core.options import EclOptions
from ..baselines import (
    coloring_scc,
    fb_scc,
    fbtrim_scc,
    gpu_scc,
    hong_scc,
    ispan_scc,
    kosaraju_scc,
    multistep_scc,
    tarjan_scc,
)
from ..device.executor import VirtualDevice
from ..device.spec import DeviceSpec
from ..errors import AlgorithmError
from ..graph.csr import CSRGraph
from .timing import TimedRun, median_time

__all__ = ["RunResult", "run_algorithm", "ALGORITHM_NAMES"]

ALGORITHM_NAMES = (
    "ecl-scc",
    "ecl-scc-minmax",
    "gpu-scc",
    "ispan",
    "hong",
    "multistep",
    "coloring",
    "fb",
    "fb-trim",
    "tarjan",
    "kosaraju",
)


@dataclass
class RunResult:
    """Outcome of one (algorithm, device, graph) benchmark cell."""

    algorithm: str
    device: str
    graph_name: str
    num_vertices: int
    num_edges: int
    num_sccs: int
    model_seconds: float
    wall: Optional[TimedRun]
    counters: "dict[str, int]"
    labels: np.ndarray

    @property
    def model_throughput_mvs(self) -> float:
        return self.num_vertices / self.model_seconds / 1e6

    @property
    def wall_throughput_mvs(self) -> float:
        if self.wall is None:
            return float("nan")
        return self.num_vertices / self.wall.median_s / 1e6


def _execute(
    name: str, graph: CSRGraph, spec: DeviceSpec, options: "EclOptions | None"
) -> "tuple[np.ndarray, VirtualDevice, int]":
    """One run; returns (labels, device, signature_arrays)."""
    if name == "ecl-scc":
        res = ecl_scc(graph, options=options, device=spec)
        return res.labels, res.device, 2
    if name == "ecl-scc-minmax":
        res = minmax_scc(graph, device=spec)
        return res.labels, res.device, 4
    if name == "gpu-scc":
        labels, dev = gpu_scc(graph, device=spec)
        return labels, dev, 1
    if name == "ispan":
        labels, dev = ispan_scc(graph, device=spec)
        return labels, dev, 1
    if name == "hong":
        labels, dev = hong_scc(graph, device=spec)
        return labels, dev, 1
    if name == "multistep":
        labels, dev = multistep_scc(graph, device=spec)
        return labels, dev, 1
    if name == "coloring":
        labels, dev = coloring_scc(graph, device=spec)
        return labels, dev, 1
    if name == "fb":
        labels, dev = fb_scc(graph, device=spec)
        return labels, dev, 1
    if name == "fb-trim":
        labels, dev = fbtrim_scc(graph, device=spec)
        return labels, dev, 1
    if name in ("tarjan", "kosaraju"):
        fn: Callable = tarjan_scc if name == "tarjan" else kosaraju_scc
        dev = VirtualDevice(spec)
        labels = fn(graph)
        # serial oracle: all work on the critical path
        dev.serial(4 * (graph.num_vertices + graph.num_edges))
        return labels, dev, 1
    raise AlgorithmError(f"unknown algorithm {name!r}; known: {ALGORITHM_NAMES}")


def run_algorithm(
    graph: CSRGraph,
    algorithm: str,
    device: DeviceSpec,
    *,
    options: "EclOptions | None" = None,
    time_wall: bool = False,
    repeats: int = 9,
    verify: bool = False,
) -> RunResult:
    """Run *algorithm* on *graph* against the *device* model.

    ``time_wall`` additionally measures Python wall time with the
    median-of-N protocol (each repeat uses a fresh device so counters
    stay single-run).  ``verify`` checks labels against Tarjan (paper
    §4 methodology) — skipped for the oracles themselves.
    """
    labels, dev, sigs = _execute(algorithm, graph, device, options)
    estimate = dev.estimate(graph.num_vertices, graph.num_edges, signatures=sigs)
    wall = None
    if time_wall:
        wall = median_time(
            lambda: _execute(algorithm, graph, device, options), repeats=repeats
        )
    if verify and algorithm not in ("tarjan", "kosaraju"):
        verify_labels(graph, labels)
    return RunResult(
        algorithm=algorithm,
        device=device.name,
        graph_name=graph.name or "graph",
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        num_sccs=int(np.unique(labels).size) if labels.size else 0,
        model_seconds=estimate.total,
        wall=wall,
        counters=dev.counters.snapshot(),
        labels=labels,
    )
