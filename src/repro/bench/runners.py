"""Unified algorithm runner for the benchmark harness.

One entry point, :func:`run_algorithm`, runs any of the SCC codes on any
virtual device, optionally wall-clock timing it with the paper's
median-of-9 protocol and verifying the labels against Tarjan.  The
returned :class:`RunResult` carries both the *model* runtime (virtual
device cost estimate — the number the paper-style tables use) and the
Python wall time (reported alongside for transparency).

Every algorithm returns an :class:`~repro.results.AlgoResult`, so the
dispatch here is a flat registry instead of the old per-algorithm
unpacking if-chain; pass ``tracer=`` to record the run's phase spans
(attached to the result as ``RunResult.trace``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..analysis.verify import verify_labels
from ..core.eclscc import ecl_scc
from ..core.minmax import minmax_scc
from ..core.options import EclOptions, engine_options
from ..baselines import (
    coloring_scc,
    fb_scc,
    fbtrim_scc,
    gpu_scc,
    hong_scc,
    ispan_scc,
    kosaraju_scc,
    multistep_scc,
    tarjan_scc,
)
from ..device.executor import VirtualDevice
from ..device.spec import DeviceSpec
from ..engine import ArrayBackend
from ..errors import AlgorithmError
from ..faults.plan import FaultPlan
from ..graph.csr import CSRGraph
from ..profile.ledger import attach_ledger
from ..results import AlgoResult
from ..trace import NULL_TRACER, Trace, Tracer, ensure_tracer
from .timing import TimedRun, median_time

__all__ = ["RunResult", "run_algorithm", "ALGORITHM_NAMES"]


def _run_oracle(fn: Callable, graph: CSRGraph, spec: DeviceSpec, tracer) -> AlgoResult:
    """Serial oracle run: attach a device charged with all-serial work."""
    dev = VirtualDevice(spec)
    res = fn(graph, tracer=tracer)
    tr = ensure_tracer(tracer)
    attach_ledger(dev, tr)
    # serial oracle: all work on the critical path
    with tr.span("serial-oracle"):
        dev.serial(4 * (graph.num_vertices + graph.num_edges))
    res.device = dev
    return res


#: name -> callable(graph, spec, options, tracer, backend) -> AlgoResult
_DISPATCH: "dict[str, Callable[..., AlgoResult]]" = {
    "ecl-scc": lambda g, spec, opts, tr, be=None: ecl_scc(
        g, options=opts, device=spec, backend=be, tracer=tr
    ),
    "ecl-scc-minmax": lambda g, spec, opts, tr, be=None: minmax_scc(
        g, device=spec, backend=be, tracer=tr
    ),
    "gpu-scc": lambda g, spec, opts, tr, be=None: gpu_scc(
        g, device=spec, backend=be, tracer=tr
    ),
    "ispan": lambda g, spec, opts, tr, be=None: ispan_scc(
        g, device=spec, backend=be, tracer=tr
    ),
    "hong": lambda g, spec, opts, tr, be=None: hong_scc(
        g, device=spec, backend=be, tracer=tr
    ),
    "multistep": lambda g, spec, opts, tr, be=None: multistep_scc(
        g, device=spec, backend=be, tracer=tr
    ),
    "coloring": lambda g, spec, opts, tr, be=None: coloring_scc(
        g, device=spec, backend=be, tracer=tr
    ),
    "fb": lambda g, spec, opts, tr, be=None: fb_scc(
        g, device=spec, backend=be, tracer=tr
    ),
    "fb-trim": lambda g, spec, opts, tr, be=None: fbtrim_scc(
        g, device=spec, backend=be, tracer=tr
    ),
    "tarjan": lambda g, spec, opts, tr, be=None: _run_oracle(tarjan_scc, g, spec, tr),
    "kosaraju": lambda g, spec, opts, tr, be=None: _run_oracle(
        kosaraju_scc, g, spec, tr
    ),
}

ALGORITHM_NAMES = (
    "ecl-scc",
    "ecl-scc-minmax",
    "gpu-scc",
    "ispan",
    "hong",
    "multistep",
    "coloring",
    "fb",
    "fb-trim",
    "tarjan",
    "kosaraju",
)

#: signature arrays resident per vertex (memory term of the cost model)
_SIGNATURE_ARRAYS = {"ecl-scc": 2, "ecl-scc-minmax": 4}


@dataclass
class RunResult:
    """Outcome of one (algorithm, device, graph) benchmark cell."""

    algorithm: str
    device: str
    graph_name: str
    num_vertices: int
    num_edges: int
    num_sccs: int
    model_seconds: float
    wall: Optional[TimedRun]
    counters: "dict[str, int]"
    labels: np.ndarray
    trace: Optional[Trace] = None
    status: str = "clean"
    fault_report: Optional[object] = None
    #: the adaptive scheduler's per-round decisions (``ecl-scc`` with
    #: ``engine="adaptive"`` only; None otherwise)
    decision_log: Optional[list] = None

    @property
    def model_throughput_mvs(self) -> float:
        return self.num_vertices / self.model_seconds / 1e6

    @property
    def wall_throughput_mvs(self) -> float:
        if self.wall is None:
            return float("nan")
        return self.num_vertices / self.wall.median_s / 1e6


def _execute(
    name: str,
    graph: CSRGraph,
    spec: DeviceSpec,
    options: "EclOptions | None",
    tracer: "Tracer | None" = None,
    backend: "ArrayBackend | str | None" = None,
    faults: "FaultPlan | None" = None,
) -> AlgoResult:
    """One run of *name* on *graph*; returns the algorithm's AlgoResult."""
    try:
        fn = _DISPATCH[name]
    except KeyError:
        raise AlgorithmError(
            f"unknown algorithm {name!r}; known: {ALGORITHM_NAMES}"
        ) from None
    if faults is not None:
        # only ECL-SCC's monotone re-sweeping loops give injected faults
        # sound recovery semantics; the one-shot BFS baselines would
        # silently return wrong labels under the same perturbations
        if name != "ecl-scc":
            raise AlgorithmError(
                f"fault injection is only supported for 'ecl-scc', not"
                f" {name!r}"
            )
        return ecl_scc(
            graph, options=options, device=spec, backend=backend,
            tracer=tracer, faults=faults,
        )
    return fn(graph, spec, options, tracer, backend)


def run_algorithm(
    graph: CSRGraph,
    algorithm: str,
    device: DeviceSpec,
    *,
    options: "EclOptions | None" = None,
    backend: "ArrayBackend | str | None" = None,
    engine: "str | None" = None,
    time_wall: bool = False,
    repeats: int = 9,
    verify: bool = False,
    tracer: "Tracer | None" = None,
    faults: "FaultPlan | None" = None,
) -> RunResult:
    """Run *algorithm* on *graph* against the *device* model.

    ``backend`` selects the registered :class:`~repro.engine.ArrayBackend`
    the run's engine primitives account against (default: the dense
    backend, which reproduces the historical launch costs; the oracles
    ignore it).  ``engine`` selects ECL-SCC's Phase-2 engine by name —
    any entry of :data:`~repro.core.options.ENGINE_NAMES`, applied on
    top of ``options`` via
    :func:`~repro.core.options.engine_options`; only ``ecl-scc``
    has multiple Phase-2 engines, so passing it for any other algorithm
    raises :class:`~repro.errors.AlgorithmError`.  The ``adaptive``
    engine's per-round policy decisions are carried on the result as
    ``RunResult.decision_log``.
    ``time_wall`` additionally measures Python wall time
    with the median-of-N protocol (each repeat uses a fresh device so
    counters stay single-run; repeats run untraced so the caller's
    tracer sees exactly one run).  ``verify`` checks labels against
    Tarjan (paper §4 methodology) — skipped for the oracles themselves.
    ``tracer`` records the run's phase spans; the trace is carried on
    the result.  ``faults`` injects a :class:`~repro.faults.FaultPlan`
    (``ecl-scc`` only — the baselines have no sound recovery
    semantics); the outcome lands in ``RunResult.status`` /
    ``RunResult.fault_report``.
    """
    if engine is not None:
        if algorithm != "ecl-scc":
            raise AlgorithmError(
                f"engine selection is only supported for 'ecl-scc', not"
                f" {algorithm!r}"
            )
        options = engine_options(engine, options)
    res = _execute(algorithm, graph, device, options, tracer, backend, faults)
    sigs = _SIGNATURE_ARRAYS.get(algorithm, 1)
    estimate = res.device.estimate(
        graph.num_vertices, graph.num_edges, signatures=sigs
    )
    wall = None
    if time_wall:
        wall = median_time(
            lambda: _execute(
                algorithm, graph, device, options, NULL_TRACER, backend, faults
            ),
            repeats=repeats,
        )
    if verify and algorithm not in ("tarjan", "kosaraju"):
        verify_labels(graph, res.labels)
    return RunResult(
        algorithm=algorithm,
        device=device.name,
        graph_name=graph.name or "graph",
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        num_sccs=res.num_sccs,
        model_seconds=estimate.total,
        wall=wall,
        counters=res.device.counters.snapshot(),
        labels=res.labels,
        trace=res.trace,
        status=res.status,
        fault_report=res.fault_report,
        decision_log=getattr(res, "decision_log", None),
    )
