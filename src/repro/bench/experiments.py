"""One entry point per paper table/figure (see DESIGN.md experiment index).

Every function returns plain data (dicts/lists) plus a rendered ASCII
block, so the pytest-benchmark harness, the examples, and the
EXPERIMENTS.md generator all share one implementation.

Device-column convention for the runtime tables (paper Tables 5-7):
ECL-SCC and GPU-SCC on the Titan V and A100 models; iSpan on the Ryzen
and Xeon models.  Runtimes are virtual-device estimates ("model
seconds"); Python wall time is recorded alongside in the raw results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..analysis.sccstats import scc_statistics
from ..baselines.tarjan import tarjan_scc
from ..core.options import ablation_variants
from ..device.spec import A100, RYZEN_2950X, TITAN_V, XEON_6226R
from ..graph.csr import CSRGraph
from ..graph.ops import replicate
from ..graph.suite import powerlaw_suite
from ..mesh.suite import large_mesh_suite, small_mesh_suite
from .formatting import format_seconds, render_series, render_table
from .runners import RunResult, run_algorithm
from .throughput import geometric_mean

__all__ = [
    "ExperimentResult",
    "mesh_table_properties",
    "powerlaw_table_properties",
    "runtime_table",
    "throughput_figures",
    "ablation_figure",
    "expanded_meshes",
    "RUNTIME_COLUMNS",
]

#: the six columns of Tables 5-7: (label, algorithm, device)
RUNTIME_COLUMNS = (
    ("ECL-SCC Titan V", "ecl-scc", TITAN_V),
    ("ECL-SCC A100", "ecl-scc", A100),
    ("GPU-SCC Titan V", "gpu-scc", TITAN_V),
    ("GPU-SCC A100", "gpu-scc", A100),
    ("iSpan Ryzen", "ispan", RYZEN_2950X),
    ("iSpan Xeon", "ispan", XEON_6226R),
)


@dataclass
class ExperimentResult:
    """Structured output of one experiment."""

    name: str
    rendered: str
    rows: "list[dict]" = field(default_factory=list)
    series: "dict[str, dict[str, float]]" = field(default_factory=dict)
    raw: dict = field(default_factory=dict)
    elapsed_s: float = 0.0


# ---------------------------------------------------------------------------
# Tables 1-3: input properties
# ---------------------------------------------------------------------------

def mesh_table_properties(kind: str, **suite_kwargs) -> ExperimentResult:
    """Table 1 (kind='small') / Table 2 (kind='large') at the active scale."""
    t0 = time.perf_counter()
    suite = small_mesh_suite(**suite_kwargs) if kind == "small" else large_mesh_suite(**suite_kwargs)
    rows = []
    for grp in suite:
        stats = [scc_statistics(g, tarjan_scc(g)) for g in grp.graphs]
        rows.append(
            {
                "graph": grp.name,
                "N_ord": len(grp.graphs),
                "vertices": stats[0].num_vertices,
                "edges": int(np.mean([s.num_edges for s in stats])),
                "avg_deg": round(float(np.mean([s.avg_degree for s in stats])), 2),
                "max_din": max(s.max_in_degree for s in stats),
                "max_dout": max(s.max_out_degree for s in stats),
                "min_sccs": min(s.num_sccs for s in stats),
                "max_sccs": max(s.num_sccs for s in stats),
                "min_size1": min(s.size1_sccs for s in stats),
                "max_size1": max(s.size1_sccs for s in stats),
                "min_size2": min(s.size2_sccs for s in stats),
                "max_size2": max(s.size2_sccs for s in stats),
                "min_largest": min(s.largest_scc for s in stats),
                "max_largest": max(s.largest_scc for s in stats),
                "min_depth": min(s.dag_depth for s in stats),
                "max_depth": max(s.dag_depth for s in stats),
                "paper": grp.spec.paper_sccs,
            }
        )
    headers = [
        "graph", "N_ord", "vertices", "edges", "avg_deg", "max_din", "max_dout",
        "min_sccs", "max_sccs", "min_size1", "max_size1", "min_size2",
        "max_size2", "min_largest", "max_largest", "min_depth", "max_depth",
    ]
    table = render_table(
        headers,
        [[r[h] for h in headers] for r in rows],
        title=f"Table {'1' if kind == 'small' else '2'}: {kind} mesh graphs (scaled)",
    )
    return ExperimentResult(
        name=f"table{'1' if kind == 'small' else '2'}",
        rendered=table,
        rows=rows,
        raw={"suite": suite},
        elapsed_s=time.perf_counter() - t0,
    )


def powerlaw_table_properties(**suite_kwargs) -> ExperimentResult:
    """Table 3 at the active scale."""
    t0 = time.perf_counter()
    rows = []
    graphs = []
    for g, planted in powerlaw_suite(**suite_kwargs):
        s = scc_statistics(g, tarjan_scc(g))
        graphs.append(g)
        rows.append({"graph": g.name, **s.as_row(), "planted": planted})
    headers = [
        "graph", "vertices", "edges", "avg_deg", "max_din", "max_dout",
        "sccs", "size1", "size2", "largest", "dag_depth",
    ]
    table = render_table(
        headers,
        [[r[h] for h in headers] for r in rows],
        title="Table 3: power-law graphs (synthetic stand-ins, scaled)",
    )
    return ExperimentResult(
        name="table3",
        rendered=table,
        rows=rows,
        raw={"graphs": graphs},
        elapsed_s=time.perf_counter() - t0,
    )


# ---------------------------------------------------------------------------
# Tables 5-7 and Figures 5-13: runtimes and throughputs
# ---------------------------------------------------------------------------

def runtime_table(
    groups: "Sequence[tuple[str, list[CSRGraph]]]",
    *,
    table_name: str,
    columns=RUNTIME_COLUMNS,
    verify: bool = True,
) -> ExperimentResult:
    """Average model runtime per group and column (the Table 5/6/7 shape).

    ``groups`` is a list of (group name, graphs); mesh groups average the
    runtime across ordinates before computing throughput, exactly like
    the paper (§4); power-law "groups" hold a single graph.
    """
    t0 = time.perf_counter()
    rows = []
    raw_runs: "dict[tuple[str, str], list[RunResult]]" = {}
    for gname, graphs in groups:
        row: "dict[str, object]" = {"graph": gname, "vertices": graphs[0].num_vertices}
        for label, algo, spec in columns:
            runs = [
                run_algorithm(g, algo, spec, verify=verify and algo == "ecl-scc")
                for g in graphs
            ]
            raw_runs[(gname, label)] = runs
            row[label] = float(np.mean([r.model_seconds for r in runs]))
            row[label + " wall"] = float(np.mean([r.wall.median_s if r.wall else np.nan for r in runs])) if any(r.wall for r in runs) else float("nan")
        rows.append(row)
    headers = ["graph"] + [c[0] for c in columns]
    table = render_table(
        headers,
        [[r["graph"]] + [format_seconds(float(r[c[0]])) for c in columns] for r in rows],
        title=f"{table_name}: average model runtime (seconds)",
    )
    return ExperimentResult(
        name=table_name,
        rendered=table,
        rows=rows,
        raw={"runs": raw_runs},
        elapsed_s=time.perf_counter() - t0,
    )


def throughput_figures(
    runtime_result: ExperimentResult,
    *,
    figure_name: str,
    columns=RUNTIME_COLUMNS,
) -> ExperimentResult:
    """Figures 5-13: throughput series (Mv/s) + geometric means."""
    t0 = time.perf_counter()
    series: "dict[str, dict[str, float]]" = {c[0]: {} for c in columns}
    for row in runtime_result.rows:
        v = int(row["vertices"])
        for label, _, _ in columns:
            secs = float(row[label])  # type: ignore[arg-type]
            series[label][str(row["graph"])] = v / secs / 1e6
    for label in list(series):
        vals = list(series[label].values())
        series[label]["geomean"] = geometric_mean(vals)
    rendered = render_series(series, title=f"{figure_name}: throughput (Mv/s)")
    return ExperimentResult(
        name=figure_name,
        rendered=rendered,
        series=series,
        raw={"runtime": runtime_result},
        elapsed_s=time.perf_counter() - t0,
    )


# ---------------------------------------------------------------------------
# Figure 14: optimization ablation
# ---------------------------------------------------------------------------

def ablation_figure(
    classes: "Sequence[tuple[str, list[CSRGraph]]]",
    *,
    device=A100,
) -> ExperimentResult:
    """Figure 14: geomean throughput per input class per ECL-SCC variant."""
    t0 = time.perf_counter()
    variants = ablation_variants()
    series: "dict[str, dict[str, float]]" = {v: {} for v in variants}
    raw: dict = {}
    for cname, graphs in classes:
        for vname, opts in variants.items():
            runs = [
                run_algorithm(g, "ecl-scc", device, options=opts) for g in graphs
            ]
            raw[(cname, vname)] = runs
            series[vname][cname] = geometric_mean(
                [r.model_throughput_mvs for r in runs]
            )
    rendered = render_series(
        series, title=f"Figure 14: ECL-SCC ablation on {device.name} (geomean Mv/s)"
    )
    return ExperimentResult(
        name="figure14",
        rendered=rendered,
        series=series,
        raw=raw,
        elapsed_s=time.perf_counter() - t0,
    )


# ---------------------------------------------------------------------------
# §5.1.4: expanded meshes
# ---------------------------------------------------------------------------

def expanded_meshes(*, copies: int = 10, **suite_kwargs) -> ExperimentResult:
    """Replicate twist-hex and toroid-hex 10x and compare ECL vs GPU-SCC
    (A100) vs iSpan (Xeon), the §5.1.4 experiment."""
    t0 = time.perf_counter()
    groups = []
    for name in ("twist-hex", "toroid-hex"):
        suite = large_mesh_suite(names=[name], num_ordinates=1, **suite_kwargs)
        g = suite[0].graphs[0]
        big = replicate(g, copies, name=f"{name}-x{copies}")
        groups.append((big.name, [big]))
    cols = (
        ("ECL-SCC A100", "ecl-scc", A100),
        ("GPU-SCC A100", "gpu-scc", A100),
        ("iSpan Xeon", "ispan", XEON_6226R),
    )
    res = runtime_table(groups, table_name="expanded-meshes", columns=cols)
    res.elapsed_s = time.perf_counter() - t0
    return res
