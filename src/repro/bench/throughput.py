"""Throughput metric and geometric means (paper §4).

The paper's primary metric: *throughput* = vertices / runtime, reported
in millions of completed vertices per second (Mv/s), with geometric
means across inputs.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["throughput_mvs", "geometric_mean"]


def throughput_mvs(num_vertices: int, runtime_s: float) -> float:
    """Millions of completed vertices per second."""
    if runtime_s <= 0:
        raise ValueError(f"runtime must be positive, got {runtime_s}")
    return num_vertices / runtime_s / 1e6


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; empty input yields 0, non-positive values raise."""
    vals = list(values)
    if not vals:
        return 0.0
    acc = 0.0
    for v in vals:
        if v <= 0:
            raise ValueError(f"geometric mean needs positive values, got {v}")
        acc += math.log(v)
    return math.exp(acc / len(vals))
