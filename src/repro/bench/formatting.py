"""ASCII renderers for paper-style tables and figure series."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["render_table", "render_series", "format_seconds"]


def format_seconds(s: float) -> str:
    """Paper-style runtime formatting (seconds with 4 decimals)."""
    if s != s:  # NaN
        return "-"
    if s >= 100:
        return f"{s:.1f}"
    return f"{s:.4f}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Monospace table with right-aligned numeric columns."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Mapping[str, float]],
    *,
    title: str = "",
    unit: str = "Mv/s",
    width: int = 40,
) -> str:
    """Figure-style output: one bar chart block per x-axis input.

    ``series`` maps series name -> {input name -> value}; mirrors the
    paper's grouped bar charts (x: inputs, y: throughput).
    """
    lines = []
    if title:
        lines.append(title)
    inputs: "list[str]" = []
    for vals in series.values():
        for k in vals:
            if k not in inputs:
                inputs.append(k)
    peak = max(
        (v for vals in series.values() for v in vals.values() if v == v), default=1.0
    )
    name_w = max((len(s) for s in series), default=4)
    for inp in inputs:
        lines.append(f"{inp}:")
        for sname, vals in series.items():
            v = vals.get(inp, float("nan"))
            if v != v:
                bar, label = "", "-"
            else:
                bar = "#" * max(1, int(round(width * v / peak))) if v > 0 else ""
                label = f"{v:.3f} {unit}"
            lines.append(f"  {sname.ljust(name_w)} |{bar} {label}")
    return "\n".join(lines)


def _fmt(c: object) -> str:
    if isinstance(c, float):
        if c != c:
            return "-"
        if abs(c) >= 1000 or (abs(c) < 0.01 and c != 0):
            return f"{c:.3g}"
        return f"{c:.4f}" if abs(c) < 10 else f"{c:.2f}"
    return str(c)
