"""Machine-readable export of experiment results.

``export_json`` writes an :class:`~repro.bench.experiments.ExperimentResult`
as JSON next to its rendered text, so downstream analysis (plotting, CI
regression tracking) can consume the numbers without re-running the
experiments.  NumPy scalars/arrays are converted to plain Python types;
non-serializable raw payloads (graph objects, run lists) are summarized
rather than dumped.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

import numpy as np

from .experiments import ExperimentResult
from .runners import RunResult

__all__ = ["export_json", "to_jsonable"]


def to_jsonable(obj: Any) -> Any:
    """Best-effort conversion of benchmark payloads to JSON-safe values."""
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        if obj.size > 64:
            return {
                "__array__": True,
                "shape": list(obj.shape),
                "dtype": str(obj.dtype),
                "head": obj.ravel()[:8].tolist(),
            }
        return obj.tolist()
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, RunResult):
        return {
            "algorithm": obj.algorithm,
            "device": obj.device,
            "graph": obj.graph_name,
            "vertices": obj.num_vertices,
            "edges": obj.num_edges,
            "num_sccs": obj.num_sccs,
            "model_seconds": obj.model_seconds,
            "wall_median_seconds": obj.wall.median_s if obj.wall else None,
            "counters": to_jsonable(obj.counters),
        }
    # dataclass-like fallbacks (specs, suites, ...): summarize by repr
    return {"__repr__": repr(obj)}


def export_json(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write *result* to *path* as JSON; returns the path."""
    payload = {
        "name": result.name,
        "elapsed_s": result.elapsed_s,
        "rows": to_jsonable(result.rows),
        "series": to_jsonable(result.series),
        "raw": to_jsonable(
            {str(k): v for k, v in result.raw.items()}
        ),
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
