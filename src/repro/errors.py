"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` on wrong argument types, etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "GraphValidationError",
    "MeshError",
    "MeshTopologyError",
    "DeviceError",
    "AlgorithmError",
    "ConvergenceError",
    "VerificationError",
    "IOFormatError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError, ValueError):
    """An array bundle does not describe a structurally valid graph.

    Raised when constructing a :class:`repro.graph.CSRGraph` or
    :class:`repro.graph.EdgeList` from arrays whose shapes, dtypes, or value
    ranges are inconsistent (e.g. ``indptr`` not monotone, vertex IDs out of
    range, mismatched ``src``/``dst`` lengths).
    """


class GraphValidationError(ReproError, ValueError):
    """A graph violates a semantic precondition of an operation.

    Distinct from :class:`GraphFormatError`: the arrays are well formed but
    the graph cannot be used for the requested purpose (e.g. requesting a
    sweep schedule on a graph whose condensation was not computed).
    """


class MeshError(ReproError, ValueError):
    """Base class for mesh-construction failures."""


class MeshTopologyError(MeshError):
    """A mesh has inconsistent connectivity (bad face sharing, orphan nodes)."""


class DeviceError(ReproError, ValueError):
    """A virtual-device configuration is invalid (e.g. zero SMs)."""


class AlgorithmError(ReproError, RuntimeError):
    """An SCC algorithm reached an internal inconsistency."""


class ConvergenceError(AlgorithmError):
    """An iterative phase exceeded its iteration safety bound.

    All fixed-point loops in the library carry a generous iteration cap
    (a small multiple of the theoretical worst case).  Hitting the cap
    indicates a bug rather than a slow input, so it raises instead of
    silently returning partial results.
    """


class VerificationError(ReproError, AssertionError):
    """An SCC labelling failed verification against a reference oracle."""


class IOFormatError(ReproError, ValueError):
    """A graph file could not be parsed in the declared format."""
