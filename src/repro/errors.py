"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` on wrong argument types, etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "GraphValidationError",
    "MeshError",
    "MeshTopologyError",
    "DeviceError",
    "AlgorithmError",
    "ConvergenceError",
    "VerificationError",
    "IOFormatError",
    "FaultError",
    "FaultPlanError",
    "RankLossError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError, ValueError):
    """An array bundle does not describe a structurally valid graph.

    Raised when constructing a :class:`repro.graph.CSRGraph` or
    :class:`repro.graph.EdgeList` from arrays whose shapes, dtypes, or value
    ranges are inconsistent (e.g. ``indptr`` not monotone, vertex IDs out of
    range, mismatched ``src``/``dst`` lengths).
    """


class GraphValidationError(ReproError, ValueError):
    """A graph violates a semantic precondition of an operation.

    Distinct from :class:`GraphFormatError`: the arrays are well formed but
    the graph cannot be used for the requested purpose (e.g. requesting a
    sweep schedule on a graph whose condensation was not computed).
    """


class MeshError(ReproError, ValueError):
    """Base class for mesh-construction failures."""


class MeshTopologyError(MeshError):
    """A mesh has inconsistent connectivity (bad face sharing, orphan nodes)."""


class DeviceError(ReproError, ValueError):
    """A virtual-device configuration is invalid (e.g. zero SMs)."""


class AlgorithmError(ReproError, RuntimeError):
    """An SCC algorithm reached an internal inconsistency."""


class ConvergenceError(AlgorithmError):
    """An iterative phase exceeded its iteration safety bound.

    All fixed-point loops in the library carry a generous iteration cap
    (a small multiple of the theoretical worst case).  Hitting the cap
    indicates a bug rather than a slow input, so it raises instead of
    discarding the run silently — but the raise no longer discards
    *progress*: raise sites attach the state they had when the bound
    tripped, so callers (and the :mod:`repro.faults` degradation path)
    can inspect how far the run got.

    Attributes
    ----------
    iterations:
        loop iterations completed when the bound tripped (None if the
        raise site predates the payload contract).
    labels:
        partial per-vertex label array (``NO_VERTEX`` where unknown).
    sig_in / sig_out:
        the signature arrays at the time of the raise, when the failing
        loop had them in scope.
    active_count:
        number of vertices still active (not yet completed).
    """

    def __init__(
        self,
        message: str,
        *,
        iterations: "int | None" = None,
        labels=None,
        sig_in=None,
        sig_out=None,
        active_count: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.labels = labels
        self.sig_in = sig_in
        self.sig_out = sig_out
        self.active_count = active_count

    def partial_state(self) -> "dict[str, object]":
        """The attached progress payload as a plain dict (None values kept)."""
        return {
            "iterations": self.iterations,
            "labels": self.labels,
            "sig_in": self.sig_in,
            "sig_out": self.sig_out,
            "active_count": self.active_count,
        }


class VerificationError(ReproError, AssertionError):
    """An SCC labelling failed verification against a reference oracle."""


class IOFormatError(ReproError, ValueError):
    """A graph file could not be parsed in the declared format."""


class FaultError(ReproError, RuntimeError):
    """Base class for fault-injection and recovery failures.

    Raised by :mod:`repro.faults` when injected faults exceed what the
    recovery machinery can absorb (e.g. self-healing failed to converge
    to verified-correct labels within its attempt bound).
    """


class FaultPlanError(FaultError, ValueError):
    """A :class:`repro.faults.FaultPlan` is malformed (bad rates/knobs)."""


class RankLossError(FaultError):
    """A virtual-cluster rank was lost and failover was disabled.

    Carries a structured payload so callers can degrade gracefully
    instead of losing the whole run.

    Attributes
    ----------
    rank:
        the rank that crashed.
    superstep:
        global superstep index at which the loss became permanent.
    retries:
        retry attempts made before giving up.
    labels:
        partial per-vertex labels at the time of the loss.
    iterations:
        outer iterations completed.
    fault_report:
        the run's :class:`repro.faults.FaultReport` (faults observed up
        to the loss), or None.
    """

    def __init__(
        self,
        message: str,
        *,
        rank: "int | None" = None,
        superstep: "int | None" = None,
        retries: "int | None" = None,
        labels=None,
        iterations: "int | None" = None,
        fault_report=None,
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.superstep = superstep
        self.retries = retries
        self.labels = labels
        self.iterations = iterations
        self.fault_report = fault_report
