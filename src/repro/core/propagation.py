"""Phase 2 of ECL-SCC: maximum-signature propagation to a fixed point.

Three engines implement the modelled kernel organizations:

* :func:`propagate_sync` — one kernel launch per global relaxation round
  (the baseline organization; Fig. 14's "no async" bar).
* :func:`propagate_async` — the asynchronous organization of §3.3/§3.4:
  each thread block iterates the edges assigned to it to a *local* fixed
  point inside a single launch, so one launch covers many relaxation
  rounds.  Blocks see each other's published values opportunistically;
  because max-propagation is monotonic and we re-sweep until a global
  fixed point, any interleaving yields the same result (the paper's
  "resilient to temporary priority inversions" argument).
* :func:`propagate_frontier` — a persistent vertex-worklist kernel in
  the style of iSpan/GPU-SCC worklist codes: only edges incident to
  vertices whose signatures changed are re-relaxed, and the driver seeds
  each outer iteration from the *invalidated* vertices only
  (cross-iteration frontier reuse) instead of re-relaxing every
  surviving edge to quiescence.
* :func:`propagate_adaptive` — the frontier engine's drain structure
  with the round step delegated to a per-round
  :class:`~repro.engine.policy.PropagationPolicy` picked by an
  :class:`~repro.engine.scheduler.AdaptiveScheduler` from frontier
  density, average frontier degree, and the running
  launch-overhead/bandwidth ratio.

The frontier engine's own round step *is* the registered ``frontier``
policy (:class:`~repro.engine.policy.FrontierPushPolicy`) — one code
path, so the static engine and the adaptive engine's frontier rounds can
never diverge in labels or charges.

All engines converge to the same unique fixed point: max-propagation is
monotone, every engine terminates only when no plain relaxation can make
progress, and the fixed point of a monotone join semilattice iteration
is schedule-independent — which is why labels are bit-identical across
engines.

Vectorization: a relaxation round is a *segment maximum* — for every
vertex, the max of candidate values over its incident worklist edges.  We
precompute, once per outer iteration (the worklist only changes in Phase
3), a sorted edge permutation and group boundaries per endpoint, and each
round is then a gather + ``np.maximum.reduceat`` + masked store.  This is
the scatter-free formulation recommended by the HPC guide (``ufunc.at`` is
an order of magnitude slower than ``reduceat`` on grouped data).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device.executor import VirtualDevice
from ..engine.accounting import (
    charge_frontier_compaction,
    charge_frontier_launch,
    charge_relaxation_round,
)
from ..engine.backend import ArrayBackend
from ..engine.policy import RoundState, get_policy
from ..engine.primitives import build_vertex_incidence
from ..engine.scheduler import AdaptiveScheduler
from ..errors import ConvergenceError
from ..trace import NULL_TRACER, Tracer
from ..types import VERTEX_DTYPE
from .options import EclOptions
from .signatures import Signatures
from .worklist import VertexFrontier

__all__ = [
    "EdgeGrouping",
    "BlockPartition",
    "propagate_sync",
    "propagate_async",
    "propagate_frontier",
    "propagate_adaptive",
]


@dataclass(frozen=True)
class EdgeGrouping:
    """Segment-max scaffolding for one static edge array pair.

    ``relax_*`` performs one Jacobi relaxation round over these edges:
    every edge (u -> v) proposes ``sig_out[v]`` to u's out-signature and
    ``sig_in[u]`` to v's in-signature (Algorithm 1 lines 10-11).
    """

    src: np.ndarray
    dst: np.ndarray
    # grouping of edges by source vertex (for out-signature maxima)
    order_by_src: np.ndarray
    group_src: np.ndarray        # unique source vertices
    starts_src: np.ndarray       # reduceat boundaries into order_by_src
    # grouping of edges by destination vertex (for in-signature maxima)
    order_by_dst: np.ndarray
    group_dst: np.ndarray
    starts_dst: np.ndarray
    touched: np.ndarray          # unique endpoint vertices of this edge set

    @classmethod
    def build(cls, src: np.ndarray, dst: np.ndarray) -> "EdgeGrouping":
        order_s = np.argsort(src, kind="stable")
        group_s, starts_s = np.unique(src[order_s], return_index=True)
        order_d = np.argsort(dst, kind="stable")
        group_d, starts_d = np.unique(dst[order_d], return_index=True)
        touched = np.union1d(group_s, group_d)
        return cls(
            src=src,
            dst=dst,
            order_by_src=order_s,
            group_src=group_s.astype(VERTEX_DTYPE, copy=False),
            starts_src=starts_s,
            order_by_dst=order_d,
            group_dst=group_d.astype(VERTEX_DTYPE, copy=False),
            starts_dst=starts_d,
            touched=touched.astype(VERTEX_DTYPE, copy=False),
        )

    @property
    def num_edges(self) -> int:
        return self.src.size

    # ------------------------------------------------------------------
    def relax(self, sigs: Signatures, *, compress: bool) -> bool:
        """One relaxation round; returns True if any signature rose.

        With ``compress`` the candidate read is ``sig[sig[w]]`` instead of
        ``sig[w]`` (the paper's ``out[out[v]]`` read) — never worse because
        signatures are monotone and self-improving.
        """
        changed = False
        sig_out, sig_in = sigs.sig_out, sigs.sig_in
        # u_out <- max over out-edges (u -> v) of v's out-signature
        cand = sig_out[self.dst]
        if compress:
            cand = sig_out[cand]
        grouped = cand[self.order_by_src]
        best = np.maximum.reduceat(grouped, self.starts_src)
        cur = sig_out[self.group_src]
        upd = best > cur
        if upd.any():
            sig_out[self.group_src[upd]] = best[upd]
            changed = True
        # v_in <- max over in-edges (u -> v) of u's in-signature
        cand = sig_in[self.src]
        if compress:
            cand = sig_in[cand]
        grouped = cand[self.order_by_dst]
        best = np.maximum.reduceat(grouped, self.starts_dst)
        cur = sig_in[self.group_dst]
        upd = best > cur
        if upd.any():
            sig_in[self.group_dst[upd]] = best[upd]
            changed = True
        return changed

    def relax_masked(
        self,
        sigs: Signatures,
        edge_active: "np.ndarray | None",
        num_vertices: int,
        *,
        compress: bool,
    ) -> np.ndarray:
        """One relaxation round over a subset of edges.

        ``edge_active`` is a boolean mask parallel to ``src``/``dst``
        (``None`` means all edges).  Inactive edges are neutralized by
        substituting -1 candidates, so the precomputed grouping is reused
        unchanged.  Returns a per-vertex boolean array marking vertices
        whose signature rose this round.
        """
        changed_v = np.zeros(num_vertices, dtype=bool)
        sig_out, sig_in = sigs.sig_out, sigs.sig_in
        # out-signatures
        cand = sig_out[self.dst]
        if compress:
            cand = sig_out[cand]
        if edge_active is not None:
            cand = np.where(edge_active, cand, -1)
        best = np.maximum.reduceat(cand[self.order_by_src], self.starts_src)
        upd = best > sig_out[self.group_src]
        if upd.any():
            winners = self.group_src[upd]
            sig_out[winners] = best[upd]
            changed_v[winners] = True
        # in-signatures
        cand = sig_in[self.src]
        if compress:
            cand = sig_in[cand]
        if edge_active is not None:
            cand = np.where(edge_active, cand, -1)
        best = np.maximum.reduceat(cand[self.order_by_dst], self.starts_dst)
        upd = best > sig_in[self.group_dst]
        if upd.any():
            winners = self.group_dst[upd]
            sig_in[winners] = best[upd]
            changed_v[winners] = True
        return changed_v


@dataclass(frozen=True)
class BlockPartition:
    """Edge worklist split into contiguous per-thread-block chunks.

    Holds one :class:`EdgeGrouping` over the *whole* worklist plus the
    chunk boundaries; the async engine neutralizes the edges of exited
    blocks instead of materializing per-block groupings, which keeps the
    per-round cost a handful of full-array NumPy operations.
    """

    grouping: EdgeGrouping
    bounds: np.ndarray          # (blocks+1,) edge offsets, strictly increasing
    chunk_sizes: np.ndarray     # (blocks,)

    @classmethod
    def build(cls, src: np.ndarray, dst: np.ndarray, bounds: np.ndarray) -> "BlockPartition":
        bounds = np.unique(np.asarray(bounds, dtype=np.int64))
        if bounds.size < 2:
            bounds = np.asarray([0, src.size], dtype=np.int64)
        return cls(
            grouping=EdgeGrouping.build(src, dst),
            bounds=bounds,
            chunk_sizes=np.diff(bounds),
        )

    @property
    def num_blocks(self) -> int:
        return self.bounds.size - 1

    @property
    def num_edges(self) -> int:
        return self.grouping.num_edges


def _bounds_check(
    rounds: int, bound: int, where: str, sigs: "Signatures | None" = None
) -> None:
    if rounds > bound:
        payload: "dict[str, object]" = {"iterations": rounds - 1}
        if sigs is not None:
            # attach progress so callers can degrade instead of losing the run
            payload.update(
                sig_in=sigs.sig_in.copy(),
                sig_out=sigs.sig_out.copy(),
                active_count=int(np.count_nonzero(sigs.sig_in != sigs.sig_out)),
            )
        raise ConvergenceError(
            f"{where} exceeded its round bound ({bound}); this indicates a bug"
            " in the propagation engine (max-propagation must converge in"
            " <= |V| rounds)",
            **payload,
        )


def propagate_sync(
    sigs: Signatures,
    grouping: EdgeGrouping,
    dev: VirtualDevice,
    opts: EclOptions,
    num_vertices: int,
    *,
    tracer: Tracer = NULL_TRACER,
) -> int:
    """Synchronous Phase 2: one launch per global round.  Returns rounds.

    Every round relaxes all worklist edges once; with path compression it
    additionally pointer-jumps both signature arrays and applies the
    feedback rule over the worklist's endpoint vertices.  The final
    (no-change) round is counted and launched — the real code must also
    run one extra kernel to discover quiescence.
    """
    bound = opts.rounds_bound(num_vertices)
    rounds = 0
    blocks = dev.blocks_for(grouping.num_edges)
    if opts.persistent_threads:
        blocks = min(blocks, dev.grid_blocks(persistent=True))
    while True:
        rounds += 1
        _bounds_check(rounds, bound, "propagate_sync", sigs)
        tracer.counter("relaxation-round", engine="sync")
        changed = grouping.relax(sigs, compress=opts.path_compression)
        extra_vertex_work = 0
        if opts.path_compression:
            changed |= sigs.pointer_jump()
            changed |= sigs.feedback(grouping.touched)
            extra_vertex_work = num_vertices + grouping.touched.size
        charge_relaxation_round(
            dev,
            edges=grouping.num_edges,
            vertices=extra_vertex_work,
            blocks=blocks,
        )
        if not changed:
            return rounds


def propagate_async(
    sigs: Signatures,
    partition: BlockPartition,
    dev: VirtualDevice,
    opts: EclOptions,
    num_vertices: int,
    *,
    tracer: Tracer = NULL_TRACER,
) -> "tuple[int, int]":
    """Asynchronous Phase 2 (§3.3): block-internal iteration per launch.

    Returns ``(launches, total_rounds)``.

    Model: within one kernel launch, all resident thread blocks iterate
    concurrently over their own edge chunks, observing each other's
    published signature values (max-propagation is monotonic, so any
    interleaving converges to the same fixed point — the paper's
    "priority inversion" resilience).  A block whose round produces no
    visible progress at any of its endpoints terminates *for that
    launch*; its edges stop relaxing until the host relaunches.  A launch
    ends when every block has terminated; launches repeat until a launch
    observes no change at all.

    Simulation: lockstep rounds with the edges of exited blocks excluded.
    While most blocks are active the round is a full-array segment-max
    with neutralized candidates; once the active front shrinks, rounds
    switch to a scatter-max over just the active blocks' edges, so wall
    time tracks the work the modelled device actually performs.  Work
    accounting is honest about the persistent-thread trade-off: every
    round of a still-running block processes *all* of its edges,
    converged or not, so large persistent-thread chunks buy fewer
    launches with more total edge work.
    """
    # the shared engine-safe bound: a value crossing a block boundary only
    # advances at the next launch, so cross-launch round totals can reach
    # ~|V| + #launches (see EclOptions.max_rounds); max_rounds overrides.
    bound = opts.rounds_bound(num_vertices)
    launches = 0
    total_rounds = 0
    g = partition.grouping
    src, dst = g.src, g.dst
    touched = g.touched
    bounds = partition.bounds
    chunk_sizes = partition.chunk_sizes
    nblocks = partition.num_blocks
    # persistent grids never exceed the resident-block count, regardless of
    # how the caller partitioned the worklist (same clamp as propagate_sync)
    grid = nblocks
    if opts.persistent_threads:
        grid = min(grid, dev.grid_blocks(persistent=True))
    m = g.num_edges
    while True:
        launches += 1
        _bounds_check(launches, bound, "propagate_async launches", sigs)
        running = np.ones(nblocks, dtype=bool)
        launch_changed = False
        launch_edge_work = 0
        launch_vertex_work = 0
        while running.any():
            total_rounds += 1
            _bounds_check(total_rounds, bound, "propagate_async rounds", sigs)
            tracer.counter("relaxation-round", engine="async")
            active_edges = int(chunk_sizes[running].sum())
            launch_edge_work += active_edges
            sig_in, sig_out = sigs.sig_in, sigs.sig_out
            changed_v = np.zeros(num_vertices, dtype=bool)
            if active_edges > m // 4:
                # ---- full-width round: neutralized segment max ----------
                edge_active = (
                    None if running.all() else np.repeat(running, chunk_sizes)
                )
                changed_v |= g.relax_masked(
                    sigs, edge_active, num_vertices, compress=opts.path_compression
                )
                sig_in, sig_out = sigs.sig_in, sigs.sig_out
                if opts.path_compression:
                    # pointer doubling (the in[in]/out[out] reads of §3.3)
                    ji = sig_in[sig_in]
                    jo = sig_out[sig_out]
                    changed_v |= ji != sig_in
                    changed_v |= jo != sig_out
                    sigs.sig_in, sigs.sig_out = sig_in, sig_out = ji, jo
                    # signature feedback over the worklist endpoints
                    in_t = sig_in[touched]
                    out_t = sig_out[touched]
                    before = sig_in[out_t]
                    np.maximum.at(sig_in, out_t, in_t)
                    upd = sig_in[out_t] > before
                    changed_v[out_t[upd]] = True
                    before = sig_out[in_t]
                    np.maximum.at(sig_out, in_t, out_t)
                    upd = sig_out[in_t] > before
                    changed_v[in_t[upd]] = True
                    launch_vertex_work += num_vertices + touched.size
                # deactivate: a block exits when no endpoint of its edges moved
                if changed_v.any():
                    launch_changed = True
                    upd_edge = changed_v[src] | changed_v[dst]
                    alive = (
                        np.maximum.reduceat(upd_edge.astype(np.int8), bounds[:-1]) > 0
                    )
                    running &= alive
                else:
                    running[:] = False
            else:
                # ---- narrow front: scatter-max over active edges only ----
                rb = np.flatnonzero(running)
                idx = np.concatenate(
                    [np.arange(bounds[i], bounds[i + 1]) for i in rb]
                )
                s, d = src[idx], dst[idx]
                cand = sig_out[d]
                if opts.path_compression:
                    cand = sig_out[cand]
                before = sig_out[s]
                np.maximum.at(sig_out, s, cand)
                w = s[sig_out[s] > before]
                changed_v[w] = True
                cand = sig_in[s]
                if opts.path_compression:
                    cand = sig_in[cand]
                before = sig_in[d]
                np.maximum.at(sig_in, d, cand)
                w = d[sig_in[d] > before]
                changed_v[w] = True
                if opts.path_compression:
                    e = np.concatenate([s, d])
                    # pointer doubling restricted to the active endpoints
                    ji = sig_in[sig_in[e]]
                    upd = ji > sig_in[e]
                    sig_in[e[upd]] = ji[upd]
                    changed_v[e[upd]] = True
                    jo = sig_out[sig_out[e]]
                    upd = jo > sig_out[e]
                    sig_out[e[upd]] = jo[upd]
                    changed_v[e[upd]] = True
                    # feedback restricted to the active endpoints
                    in_t = sig_in[e]
                    out_t = sig_out[e]
                    before = sig_in[out_t]
                    np.maximum.at(sig_in, out_t, in_t)
                    upd = sig_in[out_t] > before
                    changed_v[out_t[upd]] = True
                    before = sig_out[in_t]
                    np.maximum.at(sig_out, in_t, out_t)
                    upd = sig_out[in_t] > before
                    changed_v[in_t[upd]] = True
                    launch_vertex_work += 2 * e.size
                if changed_v.any():
                    launch_changed = True
                    upd_sub = changed_v[s] | changed_v[d]
                    # per-active-block boundaries within the subset
                    sub_bounds = np.concatenate(
                        [[0], np.cumsum(chunk_sizes[rb])]
                    )[:-1]
                    alive_sub = (
                        np.maximum.reduceat(upd_sub.astype(np.int8), sub_bounds) > 0
                    )
                    running[rb[~alive_sub]] = False
                else:
                    running[:] = False
        charge_relaxation_round(
            dev,
            edges=launch_edge_work,
            vertices=launch_vertex_work,
            blocks=grid,
        )
        if not launch_changed:
            return launches, total_rounds


def propagate_frontier(
    sigs: Signatures,
    grouping: EdgeGrouping,
    dev: VirtualDevice,
    opts: EclOptions,
    num_vertices: int,
    *,
    seed: np.ndarray,
    backend: ArrayBackend,
    reinit: int = 0,
    tracer: Tracer = NULL_TRACER,
) -> "tuple[int, int]":
    """Frontier Phase 2: persistent vertex worklist seeded by *seed*.

    Returns ``(launches, rounds)``.

    Model: one kernel compacts the invalidation flags into a vertex
    worklist (one atomic slot claim per seed vertex), then a single
    persistent kernel drains it — each in-kernel round gathers the edges
    incident to the current frontier, scatter-maxes both signature
    directions over exactly those edges, applies pointer jumping and
    signature feedback restricted to the touched endpoints, and enqueues
    every vertex whose signature rose into the next frontier
    (double-buffered, :class:`~repro.core.worklist.VertexFrontier`).
    The kernel exits when the frontier drains.

    Correctness: an edge not incident to any changed vertex relaxes to
    the values it already has, so skipping it cannot miss progress; an
    empty frontier therefore certifies plain-relaxation quiescence, and
    monotone max-propagation has a unique, schedule-independent fixed
    point — labels are bit-identical to the dense engines.  ``seed``
    must contain every vertex whose signature differs from its dense
    re-initialized state (the driver passes the invalidated set:
    unfinished vertices plus removed-edge endpoints).

    Accounting: the seed compaction is one backend-swept launch, fused
    with the driver's partial Phase-1 re-init (``reinit`` invalidated
    vertices write their identity pair in the same sweep — both passes
    read the same invalidation flags, so a real kernel does them
    together); the drain is *one* launch whose per-round work
    (active-adjacent edges only, racy scatter-max, next-frontier
    enqueues) is charged as in-kernel traffic without further launches —
    this is what makes the engine win on launch-dominated mesh graphs.
    """
    bound = opts.rounds_bound(num_vertices)
    src, dst = grouping.src, grouping.dst
    indptr, edge_ids = build_vertex_incidence(src, dst, num_vertices)
    frontier = VertexFrontier.seeded(seed, num_vertices)
    charge_frontier_compaction(
        dev, backend, num_vertices=num_vertices, frontier_size=frontier.size,
        reinit=reinit,
    )
    launches = 1
    if frontier.size == 0:
        # the host sees an empty worklist and skips the drain launch
        return launches, 0
    blocks = dev.blocks_for(max(grouping.num_edges, frontier.size))
    if opts.persistent_threads:
        blocks = min(blocks, dev.grid_blocks(persistent=True))
    charge_frontier_launch(dev, blocks=blocks)
    launches += 1
    rounds = 0
    # the round step is the registered "frontier" policy — the same code
    # object the adaptive engine dispatches, so the two cannot diverge
    policy = get_policy("frontier")
    state = RoundState(
        sigs=sigs,
        grouping=grouping,
        indptr=indptr,
        edge_ids=edge_ids,
        frontier=frontier.vertices,
        num_vertices=num_vertices,
        compress=opts.path_compression,
    )
    while frontier.size:
        rounds += 1
        _bounds_check(rounds, bound, "propagate_frontier", sigs)
        tracer.counter("relaxation-round", engine="frontier")
        state.frontier = frontier.vertices
        changed_v = policy.run_round(state, dev)
        frontier.advance(changed_v)
    return launches, rounds


def propagate_adaptive(
    sigs: Signatures,
    grouping: EdgeGrouping,
    dev: VirtualDevice,
    opts: EclOptions,
    num_vertices: int,
    *,
    seed: np.ndarray,
    backend: ArrayBackend,
    scheduler: AdaptiveScheduler,
    reinit: int = 0,
    outer: int = 0,
    recovery: bool = False,
    tracer: Tracer = NULL_TRACER,
) -> "tuple[int, int]":
    """Adaptive Phase 2: the frontier drain with per-round policy selection.

    Returns ``(launches, rounds)``.

    Structurally identical to :func:`propagate_frontier` — one
    backend-swept seed compaction (fused with the partial Phase-1
    re-init) plus one persistent drain launch — but before each in-kernel
    round the *scheduler* picks the round's
    :class:`~repro.engine.policy.PropagationPolicy`: a frontier push
    round gathers only the frontier-incident edges, a dense pull round
    re-relaxes the whole worklist (charged as in-kernel work of the same
    drain, :func:`~repro.engine.accounting.charge_dense_round` — no extra
    launch).  Kernel-launch counts are therefore *identical* to the
    frontier engine whatever the policy mix, and the golden frontier
    launch counts cover both engines.

    Correctness of mixing: every policy is a monotone step of the same
    max-propagation semilattice and returns the exact changed-vertex set,
    so the frontier invariant ("frontier = vertices whose signature
    changed last round") survives a dense round — edges not incident to
    a changed vertex relax to values they already hold — and the drain
    still terminates exactly at plain-relaxation quiescence, reaching the
    same schedule-independent fixed point.  Labels stay bit-identical to
    the dense engines.

    The scheduler's inputs are fed here: structural launches via
    ``note_launches`` (the latency side of the ratio) and per-round
    counter deltas via ``account_round`` (the bandwidth side), both
    backend-invariant.  With ``recovery=True`` (post-restore
    re-propagation) the policy is forced to ``frontier``, the density
    scan is skipped, and the tallies are left untouched, so a fault plan
    cannot perturb the main rounds' decision sequence.
    """
    bound = opts.rounds_bound(num_vertices)
    src, dst = grouping.src, grouping.dst
    indptr, edge_ids = build_vertex_incidence(src, dst, num_vertices)
    frontier = VertexFrontier.seeded(seed, num_vertices)
    charge_frontier_compaction(
        dev, backend, num_vertices=num_vertices, frontier_size=frontier.size,
        reinit=reinit,
    )
    launches = 1
    if not recovery:
        scheduler.note_launches(1)
    if frontier.size == 0:
        # the host sees an empty worklist and skips the drain launch
        return launches, 0
    blocks = dev.blocks_for(max(grouping.num_edges, frontier.size))
    if opts.persistent_threads:
        blocks = min(blocks, dev.grid_blocks(persistent=True))
    charge_frontier_launch(dev, blocks=blocks)
    launches += 1
    if not recovery:
        scheduler.note_launches(1, blocks=blocks)
    rounds = 0
    state = RoundState(
        sigs=sigs,
        grouping=grouping,
        indptr=indptr,
        edge_ids=edge_ids,
        frontier=frontier.vertices,
        num_vertices=num_vertices,
        compress=opts.path_compression,
    )
    while frontier.size:
        rounds += 1
        _bounds_check(rounds, bound, "propagate_adaptive", sigs)
        state.frontier = frontier.vertices
        policy = scheduler.decide(
            dev,
            frontier=frontier.vertices,
            indptr=indptr,
            worklist_edges=grouping.num_edges,
            touched=grouping.touched.size,
            num_vertices=num_vertices,
            compress=opts.path_compression,
            outer=outer,
            round_no=rounds,
            recovery=recovery,
        )
        tracer.counter("relaxation-round", engine="adaptive", policy=policy.name)
        before = dev.counters.snapshot()
        changed_v = policy.run_round(state, dev)
        if not recovery:
            scheduler.account_round(before, dev.counters.snapshot())
        frontier.advance(changed_v)
    return launches, rounds
