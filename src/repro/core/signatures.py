"""Signature arrays for ECL-SCC (paper §3, Algorithm 1 lines 3-6).

Each vertex v carries two signature values:

* ``sig_in[v]``  — the maximum vertex ID found so far on any path *into* v
  (an ancestor of v, or v itself), and
* ``sig_out[v]`` — the maximum vertex ID found so far on any path *out of*
  v (a descendant of v, or v itself).

Both are initialized to ``v`` and only ever increase (the max operation is
monotonic — the paper's termination argument, §3.2.2).  The invariant that
makes path compression legal is maintained throughout:

    ``sig_in[v]`` can reach v; v can reach ``sig_out[v]``   (in the current
    worklist graph, or the value equals v).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import VERTEX_DTYPE

__all__ = ["Signatures"]


@dataclass
class Signatures:
    """The pair of per-vertex signature arrays."""

    sig_in: np.ndarray
    sig_out: np.ndarray

    @classmethod
    def identity(cls, num_vertices: int) -> "Signatures":
        """Phase-1 initialization: ``v_in = v_out = v_id`` for every v."""
        return cls(
            np.arange(num_vertices, dtype=VERTEX_DTYPE),
            np.arange(num_vertices, dtype=VERTEX_DTYPE),
        )

    def reinit(self, vertices: "np.ndarray | None" = None) -> None:
        """In-place Phase-1 re-initialization (avoids reallocating).

        With *vertices*, only that subset returns to its identity
        signature — the frontier engine's partial re-init, which leaves
        completed vertices' (label:label) pairs untouched (they are at
        their fixed point already; re-deriving them is pure waste).
        """
        if vertices is None:
            n = self.sig_in.size
            self.sig_in[:] = np.arange(n, dtype=VERTEX_DTYPE)
            self.sig_out[:] = np.arange(n, dtype=VERTEX_DTYPE)
        else:
            ids = np.asarray(vertices).astype(VERTEX_DTYPE, copy=False)
            self.sig_in[ids] = ids
            self.sig_out[ids] = ids

    def completed(self) -> np.ndarray:
        """Boolean mask of vertices whose signatures match (SCC identified)."""
        return self.sig_in == self.sig_out

    def pointer_jump(self) -> bool:
        """One pointer-doubling step on both arrays; True if anything moved.

        ``sig_out[v]`` names a descendant y; y's own ``sig_out`` names a
        descendant of y, hence of v, and is >= y by monotonicity — so
        ``sig_out <- sig_out[sig_out]`` is a pure improvement.  Symmetric
        for ``sig_in``.  This is the first half of the paper's
        path-compression optimization (using ``in[in[v]]``/``out[out[v]]``).
        """
        jumped_in = self.sig_in[self.sig_in]
        jumped_out = self.sig_out[self.sig_out]
        changed = not (
            np.array_equal(jumped_in, self.sig_in)
            and np.array_equal(jumped_out, self.sig_out)
        )
        self.sig_in = jumped_in
        self.sig_out = jumped_out
        return changed

    def feedback(self, vertices: "np.ndarray | None" = None) -> bool:
        """The paper's signature-feedback rule (§3.3, second refinement).

        For a vertex v with signature x:y (x = ``sig_in[v]``, an ancestor;
        y = ``sig_out[v]``, a descendant):

        * every descendant of v shares v's ancestors, so y's in-signature
          may absorb v's:  ``sig_in[y] <- max(sig_in[y], sig_in[v])``;
        * every ancestor of v shares v's descendants, so x's out-signature
          may absorb v's: ``sig_out[x] <- max(sig_out[x], sig_out[v])``.

        This is the provably-safe reading of the paper's "update the
        signature of vertex s with value t" step and matches its stated
        justification sentence verbatim.  Returns True if any value rose.
        """
        if vertices is None:
            sig_in_v = self.sig_in
            sig_out_v = self.sig_out
        else:
            sig_in_v = self.sig_in[vertices]
            sig_out_v = self.sig_out[vertices]
        # change detection via gathers at the touched targets only — a full
        # array compare would make each feedback call O(n)
        changed = False
        before = self.sig_in[sig_out_v]
        np.maximum.at(self.sig_in, sig_out_v, sig_in_v)
        if np.any(self.sig_in[sig_out_v] > before):
            changed = True
        before = self.sig_out[sig_in_v]
        np.maximum.at(self.sig_out, sig_in_v, sig_out_v)
        if np.any(self.sig_out[sig_in_v] > before):
            changed = True
        return changed
