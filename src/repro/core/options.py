"""Configuration of the ECL-SCC implementation.

:class:`EclOptions` exposes exactly the four code optimizations the paper
evaluates in Figure 14, plus the simulation knobs and safety bounds.  The
ablation benchmark flips these flags one at a time.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..errors import AlgorithmError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> core)
    from ..faults.plan import FaultPlan

__all__ = [
    "EclOptions",
    "ALL_ON",
    "ALL_OFF",
    "ENGINE_NAMES",
    "ablation_variants",
    "engine_options",
    "validate_engine",
]

#: The Phase-2 engine registry: every name ``EclOptions.engine``,
#: :func:`engine_options`, ``run_algorithm(engine=)``, and ``--engine``
#: accept.  New engines register here (CLI ``--engine`` help and choices
#: are derived from this tuple, never hand-maintained).
ENGINE_NAMES = ("sync", "async", "atomic", "frontier", "adaptive")


def validate_engine(engine: str) -> str:
    """Check *engine* against the registry; raise a helpful error if unknown.

    This is the *single* validation path for engine names: direct
    construction, ``dataclasses.replace`` copies (which round-trip every
    field through the generated ``__init__`` and hence ``__post_init__``),
    and :func:`engine_options` all funnel through here — an invalid name
    can never be smuggled into a frozen :class:`EclOptions` instance
    (regression-tested in ``tests/test_core_options_signatures.py``).
    """
    if engine not in ENGINE_NAMES:
        raise AlgorithmError(
            f"unknown engine {engine!r}; valid choices: "
            + ", ".join(ENGINE_NAMES)
        )
    return engine


@dataclass(frozen=True)
class EclOptions:
    """Toggles for ECL-SCC's optimizations (paper §3.3-3.4, Fig. 14).

    Attributes
    ----------
    async_phase2:
        thread blocks iterate their edge chunk to a *local* fixed point
        inside a single kernel launch, instead of one launch per global
        relaxation round.  Cuts kernel launches by ~an order of magnitude.
    remove_scc_edges:
        Phase 3 also drops edges inside already-detected SCCs (not only
        edges spanning different SCCs), shrinking later worklists.
    path_compression:
        propagate ``sig[sig[v]]`` instead of ``sig[v]`` (pointer jumping)
        and apply the paper's signature-feedback rule, so values traverse
        a c-cycle in O(log c) rounds instead of O(c).
    persistent_threads:
        launch only as many thread blocks as the device keeps resident;
        each block owns a large contiguous edge chunk (multiple edges per
        thread).  Interacts with ``async_phase2``: larger chunks converge
        further per launch but keep processing already-converged edges.
    block_edges:
        edge-chunk size per block when ``persistent_threads`` is False
        (one edge per thread x 512 threads).  Exposed for tests.
    max_outer_iterations:
        safety bound on Algorithm 1's outer loop; the theoretical maximum
        is |V| (each iteration finishes >= 1 SCC).  Exceeding it raises
        :class:`~repro.errors.ConvergenceError`.
    max_rounds:
        safety bound on Phase-2 relaxation rounds per outer iteration.
        The auto value (``3|V| + 16``) covers every engine's worst case:
        the sync engine needs at most ``|V| + 1`` global rounds, but the
        async engine's block-local iteration counts *local* rounds — a
        value crossing a block boundary only advances at the next launch,
        so its cross-launch total can reach ``~|V| + #launches``.
    engine:
        name of the Phase-2 engine, validated against the engine
        registry (:data:`ENGINE_NAMES`).  The default ``""`` derives
        the engine from the paper's ablation flags (``atomic_phase2``
        wins, then ``async_phase2`` picks async over sync); an explicit
        name overrides both.  ``"frontier"`` selects the persistent
        vertex-worklist kernel with *cross-iteration frontier reuse*:
        after Phase 3 removes edges, the next outer iteration
        re-initializes and re-propagates only the invalidated vertices
        (unfinished vertices plus endpoints of removed edges) instead
        of re-relaxing every surviving edge to quiescence.
        ``"adaptive"`` keeps the frontier engine's drain structure but
        lets an :class:`~repro.engine.scheduler.AdaptiveScheduler` pick
        the propagation policy (dense pull sweep vs. frontier push
        worklist, :mod:`repro.engine.policy`) *per round* from frontier
        density, average frontier degree, and the running
        launch-overhead/bandwidth ratio.
    backend:
        name of the registered :class:`~repro.engine.ArrayBackend` the
        run's primitives account against (``"dense"`` reproduces the
        historical full-array sweeps; ``"frontier"`` models worklist
        kernels).  Validated when the run resolves it via
        :func:`~repro.engine.get_backend`.
    faults:
        optional :class:`~repro.faults.FaultPlan`; when set, the run
        injects the plan's seeded faults and engages the recovery
        machinery (checkpoint/restart, verification-guarded healing).
        ``None`` (the default) is a fault-free run.
    """

    async_phase2: bool = True
    remove_scc_edges: bool = True
    path_compression: bool = True
    persistent_threads: bool = True
    #: use the two-atomic-max Phase 2 the paper rejected (§3.4) instead of
    #: the atomic-free engine; overrides ``async_phase2``.  For the
    #: atomic-vs-atomic-free ablation (benchmarks/test_ext_atomic.py).
    atomic_phase2: bool = False
    engine: str = ""
    block_edges: int = 512
    max_outer_iterations: int = 0  # 0 = auto (|V| + 2)
    max_rounds: int = 0  # 0 = auto (3|V| + 16, see docstring)
    backend: str = "dense"
    faults: "FaultPlan | None" = None

    def __post_init__(self) -> None:
        if self.engine:
            validate_engine(self.engine)
        if self.block_edges < 1:
            raise AlgorithmError(f"block_edges must be >= 1, got {self.block_edges}")
        if self.max_outer_iterations < 0 or self.max_rounds < 0:
            raise AlgorithmError("iteration bounds must be >= 0 (0 = auto)")

    # ------------------------------------------------------------------
    def outer_bound(self, num_vertices: int) -> int:
        return self.max_outer_iterations or (num_vertices + 2)

    def rounds_bound(self, num_vertices: int) -> int:
        """Phase-2 round bound honored by *every* engine.

        ``max_rounds`` wins when set; the auto value ``3|V| + 16`` is the
        shared engine-safe ceiling (the async engine's cross-launch round
        total can exceed ``|V| + 2`` — see the ``max_rounds`` docs).
        """
        return self.max_rounds or (3 * num_vertices + 16)

    @property
    def phase2_engine(self) -> str:
        """Resolved name of the Phase-2 engine these options select.

        An explicit ``engine`` wins; otherwise the paper's ablation
        flags decide (``atomic_phase2``, then ``async_phase2``).
        """
        if self.engine:
            return self.engine
        if self.atomic_phase2:
            return "atomic"
        return "async" if self.async_phase2 else "sync"

    def disabling(self, flag: str) -> "EclOptions":
        """Copy with one optimization turned off (ablation helper)."""
        if flag not in (
            "async_phase2",
            "remove_scc_edges",
            "path_compression",
            "persistent_threads",
        ):
            raise AlgorithmError(f"unknown optimization flag {flag!r}")
        return replace(self, **{flag: False})


def _frontier_phase2_shim(self: EclOptions) -> bool:
    """Deprecated read access to the folded PR 4 bool flag."""
    warnings.warn(
        "EclOptions.frontier_phase2 is deprecated; compare"
        " EclOptions.phase2_engine == 'frontier' instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return self.phase2_engine == "frontier"


# ``frontier_phase2`` (PR 4's bool flag) is deliberately NOT a dataclass
# field: dataclasses.replace() round-trips every field through the
# constructor, and the shim keyword must stay invisible to the internal
# replace() calls (engine_options, disabling, per-run fault stripping) or
# each of them would re-fire the DeprecationWarning.  Instead the
# generated __init__ is wrapped to accept the legacy keyword, and a class
# property serves the deprecated *read* path.
_dataclass_init = EclOptions.__init__


def _init_with_shim(self, *args, frontier_phase2=None, **kwargs) -> None:
    if frontier_phase2 is not None:
        warnings.warn(
            "EclOptions(frontier_phase2=...) is deprecated; pass"
            " engine='frontier' instead",
            DeprecationWarning,
            stacklevel=2,
        )
        engine_given = len(args) >= 6 or bool(kwargs.get("engine"))
        if frontier_phase2 and not engine_given:
            kwargs["engine"] = "frontier"
    _dataclass_init(self, *args, **kwargs)


_init_with_shim.__doc__ = _dataclass_init.__doc__
EclOptions.__init__ = _init_with_shim  # type: ignore[method-assign]
EclOptions.frontier_phase2 = property(_frontier_phase2_shim)  # type: ignore[assignment]


#: all optimizations enabled — the configuration the paper ships.
ALL_ON = EclOptions()

#: all four optimizations disabled — Fig. 14's "all off" bar.
ALL_OFF = EclOptions(
    async_phase2=False,
    remove_scc_edges=False,
    path_compression=False,
    persistent_threads=False,
)


def engine_options(engine: str, base: "EclOptions | None" = None) -> EclOptions:
    """Options selecting a named Phase-2 *engine*, from *base* (default ALL_ON).

    Thin shim over the ``EclOptions.engine`` field (which this helper
    predates): the engine is an orthogonal axis to ``backend`` — the
    backend decides what vertex scans cost, the engine decides how
    Phase 2 reaches its fixed point (``sync`` = one launch per global
    round, ``async`` = block-local iteration, ``atomic`` = the rejected
    two-atomic-max variant, ``frontier`` = persistent worklist with
    cross-iteration frontier reuse, ``adaptive`` = the frontier drain
    with per-round policy selection).  Unknown names raise listing the
    registry.
    """
    base = ALL_ON if base is None else base
    return replace(base, engine=validate_engine(engine))


def ablation_variants() -> "dict[str, EclOptions]":
    """The six configurations of Figure 14."""
    return {
        "all on": ALL_ON,
        "no async": ALL_ON.disabling("async_phase2"),
        "no SCC-edge removal": ALL_ON.disabling("remove_scc_edges"),
        "no path compression": ALL_ON.disabling("path_compression"),
        "no persistent threads": ALL_ON.disabling("persistent_threads"),
        "all off": ALL_OFF,
    }
