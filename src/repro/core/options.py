"""Configuration of the ECL-SCC implementation.

:class:`EclOptions` exposes exactly the four code optimizations the paper
evaluates in Figure 14, plus the simulation knobs and safety bounds.  The
ablation benchmark flips these flags one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..errors import AlgorithmError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> core)
    from ..faults.plan import FaultPlan

__all__ = ["EclOptions", "ALL_ON", "ALL_OFF", "ablation_variants"]


@dataclass(frozen=True)
class EclOptions:
    """Toggles for ECL-SCC's optimizations (paper §3.3-3.4, Fig. 14).

    Attributes
    ----------
    async_phase2:
        thread blocks iterate their edge chunk to a *local* fixed point
        inside a single kernel launch, instead of one launch per global
        relaxation round.  Cuts kernel launches by ~an order of magnitude.
    remove_scc_edges:
        Phase 3 also drops edges inside already-detected SCCs (not only
        edges spanning different SCCs), shrinking later worklists.
    path_compression:
        propagate ``sig[sig[v]]`` instead of ``sig[v]`` (pointer jumping)
        and apply the paper's signature-feedback rule, so values traverse
        a c-cycle in O(log c) rounds instead of O(c).
    persistent_threads:
        launch only as many thread blocks as the device keeps resident;
        each block owns a large contiguous edge chunk (multiple edges per
        thread).  Interacts with ``async_phase2``: larger chunks converge
        further per launch but keep processing already-converged edges.
    block_edges:
        edge-chunk size per block when ``persistent_threads`` is False
        (one edge per thread x 512 threads).  Exposed for tests.
    max_outer_iterations:
        safety bound on Algorithm 1's outer loop; the theoretical maximum
        is |V| (each iteration finishes >= 1 SCC).  Exceeding it raises
        :class:`~repro.errors.ConvergenceError`.
    max_rounds:
        safety bound on Phase-2 relaxation rounds per outer iteration;
        the theoretical maximum is O(longest path) <= |V| rounds.
    backend:
        name of the registered :class:`~repro.engine.ArrayBackend` the
        run's primitives account against (``"dense"`` reproduces the
        historical full-array sweeps; ``"frontier"`` models worklist
        kernels).  Validated when the run resolves it via
        :func:`~repro.engine.get_backend`.
    faults:
        optional :class:`~repro.faults.FaultPlan`; when set, the run
        injects the plan's seeded faults and engages the recovery
        machinery (checkpoint/restart, verification-guarded healing).
        ``None`` (the default) is a fault-free run.
    """

    async_phase2: bool = True
    remove_scc_edges: bool = True
    path_compression: bool = True
    persistent_threads: bool = True
    #: use the two-atomic-max Phase 2 the paper rejected (§3.4) instead of
    #: the atomic-free engine; overrides ``async_phase2``.  For the
    #: atomic-vs-atomic-free ablation (benchmarks/test_ext_atomic.py).
    atomic_phase2: bool = False
    block_edges: int = 512
    max_outer_iterations: int = 0  # 0 = auto (|V| + 2)
    max_rounds: int = 0  # 0 = auto (|V| + 2)
    backend: str = "dense"
    faults: "FaultPlan | None" = None

    def __post_init__(self) -> None:
        if self.block_edges < 1:
            raise AlgorithmError(f"block_edges must be >= 1, got {self.block_edges}")
        if self.max_outer_iterations < 0 or self.max_rounds < 0:
            raise AlgorithmError("iteration bounds must be >= 0 (0 = auto)")

    # ------------------------------------------------------------------
    def outer_bound(self, num_vertices: int) -> int:
        return self.max_outer_iterations or (num_vertices + 2)

    def rounds_bound(self, num_vertices: int) -> int:
        return self.max_rounds or (num_vertices + 2)

    def disabling(self, flag: str) -> "EclOptions":
        """Copy with one optimization turned off (ablation helper)."""
        if flag not in (
            "async_phase2",
            "remove_scc_edges",
            "path_compression",
            "persistent_threads",
        ):
            raise AlgorithmError(f"unknown optimization flag {flag!r}")
        return replace(self, **{flag: False})


#: all optimizations enabled — the configuration the paper ships.
ALL_ON = EclOptions()

#: all four optimizations disabled — Fig. 14's "all off" bar.
ALL_OFF = EclOptions(
    async_phase2=False,
    remove_scc_edges=False,
    path_compression=False,
    persistent_threads=False,
)


def ablation_variants() -> "dict[str, EclOptions]":
    """The six configurations of Figure 14."""
    return {
        "all on": ALL_ON,
        "no async": ALL_ON.disabling("async_phase2"),
        "no SCC-edge removal": ALL_ON.disabling("remove_scc_edges"),
        "no path compression": ALL_ON.disabling("path_compression"),
        "no persistent threads": ALL_ON.disabling("persistent_threads"),
        "all off": ALL_OFF,
    }
