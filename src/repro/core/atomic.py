"""The atomic-max formulation of Phase 2 (paper §3.4, first sentence).

"Phase 2 can easily be implemented with two atomic max operations.
However, as it represents the most performance critical section of our
code, we opted for a faster atomic-free implementation."

This module implements the variant the authors rejected so the trade-off
can be measured (``benchmarks/test_ext_atomic.py``).  Semantically the
fixed point is identical — the difference is purely in the device cost:
every edge relaxation issues two atomic RMWs (``atomicMax`` on the
source's out-signature and the destination's in-signature) instead of
the monotonic race-and-retry writes of the shipped kernel, and those
atomics serialize per cache line on real hardware.

The simulation uses ``np.maximum.at`` (an exact scatter-max, which is
what a pair of atomicMax loops guarantees) and reports two atomics per
edge per round to the device model.
"""

from __future__ import annotations

import numpy as np

from ..device.executor import VirtualDevice
from ..engine.accounting import charge_relaxation_round
from ..errors import ConvergenceError
from ..trace import NULL_TRACER, Tracer
from .options import EclOptions
from .signatures import Signatures

__all__ = ["propagate_atomic"]


def propagate_atomic(
    sigs: Signatures,
    src: np.ndarray,
    dst: np.ndarray,
    dev: VirtualDevice,
    opts: EclOptions,
    num_vertices: int,
    *,
    tracer: Tracer = NULL_TRACER,
) -> int:
    """Phase 2 with two atomic max operations per edge.  Returns rounds.

    Rounds iterate to the same fixed point as the reduceat engine; path
    compression (when enabled in *opts*) applies the same pointer-jump
    and feedback steps so results stay bit-identical across engines.
    """
    bound = opts.rounds_bound(num_vertices)
    rounds = 0
    m = src.size
    while True:
        rounds += 1
        if rounds > bound:
            raise ConvergenceError(
                "propagate_atomic failed to converge",
                iterations=rounds - 1,
                sig_in=sigs.sig_in.copy(),
                sig_out=sigs.sig_out.copy(),
                active_count=int(
                    np.count_nonzero(sigs.sig_in != sigs.sig_out)
                ),
            )
        tracer.counter("relaxation-round", engine="atomic")
        sig_in, sig_out = sigs.sig_in, sigs.sig_out
        changed = False
        # u_out <- atomicMax(u_out, v_out)
        cand = sig_out[dst]
        if opts.path_compression:
            cand = sig_out[cand]
        before = sig_out[src]
        np.maximum.at(sig_out, src, cand)
        if np.any(sig_out[src] > before):
            changed = True
        # v_in <- atomicMax(v_in, u_in)
        cand = sig_in[src]
        if opts.path_compression:
            cand = sig_in[cand]
        before = sig_in[dst]
        np.maximum.at(sig_in, dst, cand)
        if np.any(sig_in[dst] > before):
            changed = True
        extra_vertex_work = 0
        if opts.path_compression:
            changed |= sigs.pointer_jump()
            changed |= sigs.feedback()
            extra_vertex_work = 2 * num_vertices
        charge_relaxation_round(
            dev, edges=m, vertices=extra_vertex_work, atomics=2 * m
        )
        if not changed:
            return rounds
