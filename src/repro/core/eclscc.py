"""The ECL-SCC driver: Algorithm 1 with the paper's optimizations.

``ecl_scc(graph)`` returns an :class:`EclResult` whose ``labels`` array
maps every vertex to the maximum vertex ID of its strongly connected
component — the paper's output convention ("the final signature of each
vertex will be the highest ID among all vertices in the same SCC").

The run is always instrumented: ``device`` defaults to a
:class:`~repro.device.VirtualDevice` modelling an NVIDIA A100, so every
call collects kernel-launch / traffic counts and an estimated device
runtime.  Pass a different :class:`~repro.device.VirtualDevice` (or a
bare :class:`~repro.device.DeviceSpec`, wrapped automatically) to model
other hardware; there is no un-instrumented mode.  Pass a
:class:`~repro.trace.Tracer` to additionally record per-phase spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..device.costmodel import CostBreakdown
from ..device.executor import VirtualDevice
from ..device.spec import A100, DeviceSpec
from ..engine import (
    ArrayBackend,
    charge_vertex_scan,
    get_backend,
    normalize_labels_to_max,
)
from ..engine.accounting import SIGNATURE_PAIR_BYTES
from ..engine.scheduler import AdaptiveScheduler, PolicyDecision
from ..errors import ConvergenceError
from ..faults.inject import FaultInjector
from ..faults.plan import FaultPlan
from ..faults.recovery import CheckpointStore, heal_labels
from ..graph.csr import CSRGraph
from ..profile.ledger import attach_ledger
from ..results import AlgoResult
from ..trace import Tracer, ensure_tracer
from ..types import NO_VERTEX, VERTEX_DTYPE
from .options import ALL_ON, EclOptions
from .propagation import (
    BlockPartition,
    EdgeGrouping,
    propagate_adaptive,
    propagate_async,
    propagate_frontier,
    propagate_sync,
)
from .signatures import Signatures
from .worklist import DoubleBufferWorklist, phase3_filter

__all__ = ["EclResult", "ecl_scc"]


@dataclass(eq=False)
class EclResult(AlgoResult):
    """Outcome of one ECL-SCC run (extends :class:`~repro.results.AlgoResult`).

    Attributes
    ----------
    labels:
        per-vertex SCC label = max vertex ID in the component.
    num_sccs:
        number of distinct components.
    outer_iterations:
        iterations of Algorithm 1's outer loop.
    propagation_rounds:
        total Phase-2 relaxation rounds across all outer iterations.
    kernel_launches:
        total kernels launched (the async optimization's target metric).
    edges_final:
        worklist size at termination (0 when SCC-edge removal is on and
        the graph decomposed fully).
    completed_per_iteration:
        vertices finishing in each outer iteration (diagnostic; the paper
        argues >= 1 SCC per cluster completes per iteration).
    permutation_seed:
        the RNG seed of the internal vertex relabelling when the run used
        ``randomize_ids=True`` (None otherwise) — enough to reproduce the
        exact permutation via :func:`repro.graph.ops.permute_random`.
    decision_log:
        the adaptive scheduler's per-round
        :class:`~repro.engine.scheduler.PolicyDecision` records, in order
        (None for every other engine).  Fault-recovery rounds appear
        flagged ``recovery=True``.
    device:
        the virtual device used, with its counters.
    trace:
        the recorded :class:`~repro.trace.Trace` (None without a tracer).
    estimate:
        cost-model runtime breakdown on that device (None without device).
    """

    # base fields (labels, num_sccs, device, trace) come from AlgoResult;
    # the defaulted base fields force defaults here — construct by keyword
    outer_iterations: int = 0
    propagation_rounds: int = 0
    kernel_launches: int = 0
    edges_final: int = 0
    completed_per_iteration: "list[int]" = field(default_factory=list)
    permutation_seed: "int | None" = None
    estimate: "CostBreakdown | None" = None
    decision_log: "list[PolicyDecision] | None" = None

    @property
    def estimated_seconds(self) -> float:
        return self.estimate.total if self.estimate else float("nan")


def ecl_scc(
    graph: CSRGraph,
    *,
    options: "EclOptions | None" = None,
    device: "VirtualDevice | DeviceSpec | None" = None,
    backend: "ArrayBackend | str | None" = None,
    randomize_ids: bool = False,
    seed: int = 0,
    tracer: "Tracer | None" = None,
    faults: "FaultPlan | None" = None,
) -> EclResult:
    """Detect all SCCs of *graph* with the ECL-SCC algorithm.

    Parameters
    ----------
    graph:
        any directed graph (duplicate edges and self-loops tolerated).
    options:
        optimization toggles; defaults to all optimizations on.
    device:
        virtual device to instrument against; a bare
        :class:`~repro.device.DeviceSpec` is wrapped automatically.
        Defaults to an A100 model.
    backend:
        :class:`~repro.engine.ArrayBackend` (or registered name) the
        vertex-scan accounting sweeps against; overrides
        ``options.backend``.  The default dense backend reproduces the
        historical full-array launch costs bit-for-bit.
    tracer:
        optional :class:`~repro.trace.Tracer`; records one
        ``outer-iteration`` span per loop iteration with nested
        ``phase1-init`` / ``phase2-propagate`` / ``phase3-filter``
        spans, and a ``relaxation-round`` counter per Phase-2 round.
        The recorded trace is attached as ``result.trace``.
    randomize_ids:
        run the algorithm under a random internal vertex relabelling and
        map the labels back.  ECL-SCC's expected O(log) round counts
        assume randomly distributed IDs (§3); structured numberings (mesh
        row-major order, sequential cycles) can otherwise degrade
        propagation to one hop per round — see
        ``benchmarks/test_ext_id_ordering.py``.  Costs one O(V+E)
        shuffle; labels returned refer to the *original* IDs (still
        max-member normalized).
    faults:
        optional :class:`~repro.faults.FaultPlan`; overrides
        ``options.faults``.  The run injects the plan's seeded faults
        (signature regressions during Phase 2, crash/restart of the
        outer loop, bit-flips in the harvested labels) and recovers via
        checkpoints and verification-guarded self-healing.  The outcome
        is summarized in ``result.status`` / ``result.fault_report``;
        every fault and recovery action is also a trace event and is
        charged to the device cost model.

    Notes
    -----
    Algorithm 1's loop structure is preserved exactly: Phase 1
    re-initializes *all* signatures each iteration; Phase 2 propagates
    maxima to a fixed point; Phase 3 filters the edge worklist; the loop
    exits once every vertex satisfies ``v_in == v_out``.  Labels are
    frozen the first time a vertex completes — later iterations
    re-derive the same value for still-listed vertices but never touch
    recorded labels.
    """
    opts = options or ALL_ON
    plan = faults if faults is not None else opts.faults
    if device is None:
        device = VirtualDevice(A100)
    elif isinstance(device, DeviceSpec):
        device = VirtualDevice(device)
    be = get_backend(backend if backend is not None else opts.backend)
    tr = ensure_tracer(tracer)
    attach_ledger(device, tr)

    if randomize_ids and graph.num_vertices > 1:
        from ..graph.ops import permute_random

        permuted, mapping = permute_random(graph, seed)
        inner = ecl_scc(
            permuted, options=opts, device=device, backend=be,
            seed=seed, tracer=tracer, faults=plan,
        )
        # map back: original vertex v ran as mapping[v]; its component
        # label is a permuted ID, so normalize over original IDs
        inner.labels = normalize_labels_to_max(inner.labels[mapping])
        inner.permutation_seed = seed
        return inner

    n = graph.num_vertices
    labels = np.full(n, NO_VERTEX, dtype=VERTEX_DTYPE)
    completed_per_iteration: "list[int]" = []
    if n == 0:
        return EclResult(
            labels=labels,
            num_sccs=0,
            outer_iterations=0,
            propagation_rounds=0,
            kernel_launches=0,
            edges_final=0,
            device=device,
            trace=tr.trace if tr.enabled else None,
            estimate=device.estimate(0, 0),
        )

    src, dst = graph.edges()
    wl = DoubleBufferWorklist(src.copy(), dst.copy())
    sigs = Signatures.identity(n)
    active = np.ones(n, dtype=bool)
    outer = 0
    total_rounds = 0
    outer_bound = opts.outer_bound(n)
    engine = opts.phase2_engine
    # the frontier and adaptive engines share the reuse driver shape:
    # persistent worklist drain, partial Phase-1 re-init, cross-iteration
    # invalidation seeding — adaptive additionally routes each in-kernel
    # round through a scheduler-picked propagation policy
    use_reuse = engine in ("frontier", "adaptive")
    scheduler = (
        AdaptiveScheduler(
            device.spec, num_vertices=n, num_edges=graph.num_edges, tracer=tr
        )
        if engine == "adaptive"
        else None
    )
    # cross-iteration invalidation set of the reuse engines: vertices
    # whose signatures must be re-initialized and re-propagated this
    # iteration (everything on iteration 1; afterwards the still-active
    # vertices plus the endpoints of the edges Phase 3 removed)
    invalidated = np.ones(n, dtype=bool) if use_reuse else None

    injector: "FaultInjector | None" = None
    store: "CheckpointStore | None" = None
    if plan is not None:
        injector = FaultInjector(plan, tracer=tr)
        store = CheckpointStore(plan.checkpoint_every, injector=injector)

    while active.any():
        # checkpoint at the top of the iteration (0 = genesis), so the
        # counter copy predates this iteration's charges — restoring and
        # re-executing then recharges the exact same sequence
        if store is not None and store.due(outer):
            store.save(
                outer=outer, labels=labels, active=active, wl=wl,
                total_rounds=total_rounds,
                completed_per_iteration=completed_per_iteration,
                device=device,
                sigs=sigs if use_reuse else None,
                invalidated=invalidated,
                scheduler=scheduler,
            )
        outer += 1
        if outer > outer_bound:
            raise ConvergenceError(
                f"ECL-SCC exceeded {outer_bound} outer iterations; each"
                " iteration must complete at least one SCC per cluster",
                iterations=outer - 1,
                labels=labels.copy(),
                sig_in=sigs.sig_in.copy(),
                sig_out=sigs.sig_out.copy(),
                active_count=int(np.count_nonzero(active)),
            )
        if injector is not None and injector.crash_due(outer):
            ckpt = store.restore(
                labels=labels, active=active, wl=wl, device=device,
                crashed_at=outer,
                sigs=sigs if use_reuse else None,
                invalidated=invalidated,
                scheduler=scheduler,
            )
            outer = ckpt.outer
            total_rounds = ckpt.total_rounds
            completed_per_iteration[:] = ckpt.completed_per_iteration
            continue
        with tr.span("outer-iteration", index=outer) as outer_span:
            # ---- Phase 1: (re)initialize signatures ----------------------
            with tr.span("phase1-init"):
                if use_reuse:
                    # partial re-init: completed vertices keep their
                    # (label:label) fixed-point pairs — they are never
                    # read again (all their worklist edges are gone or
                    # already quiescent), so re-deriving them is waste
                    inv_ids = np.flatnonzero(invalidated)
                    sigs.reinit(inv_ids)
                    if not wl.num_edges:
                        # no Phase-2 compaction launch to fuse into
                        charge_vertex_scan(
                            device, be, num_vertices=n,
                            worklist_size=int(inv_ids.size),
                            bytes_per_vertex=SIGNATURE_PAIR_BYTES,
                        )
                    # else: the re-init write is charged inside the
                    # Phase-2 seed-compaction launch (same flag sweep)
                else:
                    sigs.reinit()
                    charge_vertex_scan(
                        device, be, num_vertices=n,
                        worklist_size=int(np.count_nonzero(active)),
                        bytes_per_vertex=SIGNATURE_PAIR_BYTES,
                    )

            # ---- Phase 2: propagate maxima to a fixed point ---------------
            rounds = 0
            dlen = len(scheduler.decisions) if scheduler is not None else 0
            with tr.span("phase2-propagate", edges=wl.num_edges) as p2:
                if wl.num_edges:
                    if use_reuse:
                        grouping = EdgeGrouping.build(wl.src, wl.dst)
                        in_wl = np.zeros(n, dtype=bool)
                        in_wl[grouping.touched] = True

                        def run_reuse(
                            seed_ids: np.ndarray,
                            reinit: int = 0,
                            recovery: bool = False,
                        ) -> int:
                            if scheduler is not None:
                                _, r = propagate_adaptive(
                                    sigs, grouping, device, opts, n,
                                    seed=seed_ids, backend=be,
                                    scheduler=scheduler, reinit=reinit,
                                    outer=outer, recovery=recovery,
                                    tracer=tr,
                                )
                            else:
                                _, r = propagate_frontier(
                                    sigs, grouping, device, opts, n,
                                    seed=seed_ids, backend=be, reinit=reinit,
                                    tracer=tr,
                                )
                            return r

                        rounds = run_reuse(
                            np.flatnonzero(invalidated & in_wl),
                            reinit=int(inv_ids.size),
                        )
                        if injector is not None:
                            # regressed vertices are the only ones below
                            # their fixed point, so they alone re-seed
                            # the worklist (diffed against a pre-perturb
                            # snapshot; monotone re-convergence).  The
                            # adaptive scheduler treats these re-drains as
                            # recovery: forced frontier policy, no scan,
                            # tallies untouched — a fault plan cannot
                            # perturb the main rounds' decision sequence
                            while True:
                                snap_in = sigs.sig_in.copy()
                                snap_out = sigs.sig_out.copy()
                                if not injector.perturb_propagation(sigs, outer):
                                    break
                                regressed = np.flatnonzero(
                                    (sigs.sig_in != snap_in)
                                    | (sigs.sig_out != snap_out)
                                )
                                rounds += run_reuse(regressed, recovery=True)
                        total_rounds += rounds
                    elif engine == "atomic":
                        from .atomic import propagate_atomic

                        def run_phase2() -> int:
                            return propagate_atomic(
                                sigs, wl.src, wl.dst, device, opts, n,
                                tracer=tr,
                            )
                    elif engine == "async":
                        bounds = device.partition_edges(
                            wl.num_edges,
                            persistent=opts.persistent_threads,
                            block_edges=None
                            if opts.persistent_threads
                            else opts.block_edges,
                        )
                        partition = BlockPartition.build(wl.src, wl.dst, bounds)

                        def run_phase2() -> int:
                            _, r = propagate_async(
                                sigs, partition, device, opts, n, tracer=tr
                            )
                            return r
                    else:
                        grouping = EdgeGrouping.build(wl.src, wl.dst)

                        def run_phase2() -> int:
                            return propagate_sync(
                                sigs, grouping, device, opts, n, tracer=tr
                            )

                    if not use_reuse:
                        rounds = run_phase2()
                        if injector is not None:
                            # stale reads / lost updates regress signatures
                            # toward the phase-start snapshot; monotone
                            # max-propagation re-converges to the same fixed
                            # point, charged as real extra rounds
                            while injector.perturb_propagation(sigs, outer):
                                rounds += run_phase2()
                        total_rounds += rounds
                p2.set(rounds=rounds)
                if scheduler is not None:
                    picked = scheduler.decisions[dlen:]
                    counts: "dict[str, int]" = {}
                    for d in picked:
                        counts[d.policy] = counts.get(d.policy, 0) + 1
                    p2.set(
                        **{
                            "rounds_" + name.replace("-", "_"): count
                            for name, count in counts.items()
                        }
                    )

            # ---- completion detection -------------------------------------
            done = sigs.completed()
            newly = done & active
            labels[newly] = sigs.sig_in[newly]
            completed_per_iteration.append(int(np.count_nonzero(newly)))
            scanned = int(np.count_nonzero(active))
            active &= ~done
            charge_vertex_scan(
                device, be, num_vertices=n, worklist_size=scanned,
                bytes_per_vertex=SIGNATURE_PAIR_BYTES,
            )
            outer_span.set(completed=int(np.count_nonzero(newly)))

            # ---- Phase 3: remove edges that span SCCs ---------------------
            with tr.span("phase3-filter"):
                if use_reuse:
                    # next iteration re-initializes the still-unfinished
                    # vertices plus every endpoint of a removed edge (a
                    # dropped edge is the only event that can lower a
                    # vertex's next fixed point)
                    invalidated = active.copy()
                    if wl.num_edges:
                        phase3_filter(
                            wl, sigs, device, opts, tracer=tr,
                            invalidate=invalidated,
                        )
                elif wl.num_edges:
                    phase3_filter(wl, sigs, device, opts, tracer=tr)
        if not opts.remove_scc_edges and not active.any():
            # baseline termination: all signatures matched (Alg. 1 line 20)
            break

    assert not np.any(labels == NO_VERTEX), "every vertex must be labelled"
    status = "clean"
    report = None
    if injector is not None:
        if plan.bitflips:
            flipped = injector.flip_label_bits(labels, n)
            if flipped.size:
                # verification-guarded self-healing: find the vertex set
                # violating the max-propagation fixed-point invariant and
                # re-solve it as an induced subgraph (charged to `device`)
                with tr.span("self-heal", flipped=int(flipped.size)):
                    heal_labels(
                        graph, labels, device=device,
                        options=replace(opts, faults=None), backend=be,
                        injector=injector, tracer=tr,
                    )
        status = injector.status()
        report = injector.report
    num_sccs = int(np.unique(labels).size)
    return EclResult(
        labels=labels,
        num_sccs=num_sccs,
        outer_iterations=outer,
        propagation_rounds=total_rounds,
        kernel_launches=device.counters.kernel_launches,
        edges_final=wl.num_edges,
        completed_per_iteration=completed_per_iteration,
        device=device,
        trace=tr.trace if tr.enabled else None,
        estimate=device.estimate(n, graph.num_edges),
        status=status,
        fault_report=report,
        decision_log=scheduler.decisions if scheduler is not None else None,
    )
