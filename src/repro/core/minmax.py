"""The 4-signature (min+max) ECL-SCC variant (paper §3.3, last paragraph).

The paper sketches an alternative that tracks two *minimum* signatures in
addition to the two maximums; each outer iteration then separates at
least two SCCs per cluster (the max-SCC and the min-SCC), halving the
expected iteration count at the price of doubling signature memory.  The
authors measured but did not ship it; we implement it as an extension and
benchmark the trade-off (``benchmarks/test_ext_minmax.py``).

Correctness mirrors the max-only argument symmetrically: at a Phase-2
fixed point ``min_in[v]`` is the smallest ID among ancestors-or-self and
``min_out[v]`` the smallest among descendants-or-self; their equality
forces the common value to lie in v's SCC and equal the SCC minimum, so
completion-by-min identifies components exactly like completion-by-max.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device.executor import VirtualDevice
from ..device.spec import A100, DeviceSpec
from ..engine import (
    ArrayBackend,
    charge_edge_filter,
    charge_relaxation_round,
    charge_vertex_scan,
    get_backend,
    normalize_labels_to_max,
    scc_edge_filter_mask,
)
from ..engine.accounting import QUAD_SIGNATURE_EDGE_BYTES
from ..errors import ConvergenceError
from ..graph.csr import CSRGraph
from ..profile.ledger import attach_ledger
from ..trace import Tracer, ensure_tracer
from ..types import NO_VERTEX, VERTEX_DTYPE
from .eclscc import EclResult

#: four signature arrays touched per vertex in init/completion scans
_QUAD_VERTEX_BYTES = 32

__all__ = ["minmax_scc"]


@dataclass
class _Quad:
    max_in: np.ndarray
    max_out: np.ndarray
    min_in: np.ndarray
    min_out: np.ndarray

    @classmethod
    def identity(cls, n: int) -> "_Quad":
        ident = np.arange(n, dtype=VERTEX_DTYPE)
        return cls(ident.copy(), ident.copy(), ident.copy(), ident.copy())

    def reinit(self) -> None:
        n = self.max_in.size
        ident = np.arange(n, dtype=VERTEX_DTYPE)
        for a in (self.max_in, self.max_out, self.min_in, self.min_out):
            a[:] = ident


def _relax(quad: _Quad, src, dst, order_s, starts_s, grp_s, order_d, starts_d, grp_d) -> bool:
    """One Jacobi round over all four signature arrays."""
    changed = False
    # out-signatures: per-source extrema of destination values
    for sig, ufunc, cmp in (
        (quad.max_out, np.maximum, np.greater),
        (quad.min_out, np.minimum, np.less),
    ):
        best = ufunc.reduceat(sig[dst][order_s], starts_s)
        cur = sig[grp_s]
        upd = cmp(best, cur)
        if upd.any():
            sig[grp_s[upd]] = best[upd]
            changed = True
    # in-signatures: per-destination extrema of source values
    for sig, ufunc, cmp in (
        (quad.max_in, np.maximum, np.greater),
        (quad.min_in, np.minimum, np.less),
    ):
        best = ufunc.reduceat(sig[src][order_d], starts_d)
        cur = sig[grp_d]
        upd = cmp(best, cur)
        if upd.any():
            sig[grp_d[upd]] = best[upd]
            changed = True
    return changed


def minmax_scc(
    graph: CSRGraph,
    *,
    device: "VirtualDevice | DeviceSpec | None" = None,
    backend: "ArrayBackend | str | None" = None,
    tracer: "Tracer | None" = None,
) -> EclResult:
    """ECL-SCC with 2 max + 2 min signatures.  Same result contract as
    :func:`repro.core.eclscc.ecl_scc` (labels = max ID per component),
    and the same trace shape when *tracer* is passed."""
    if device is None:
        device = VirtualDevice(A100)
    elif isinstance(device, DeviceSpec):
        device = VirtualDevice(device)
    be = get_backend(backend)
    tr = ensure_tracer(tracer)
    attach_ledger(device, tr)
    n = graph.num_vertices
    labels = np.full(n, NO_VERTEX, dtype=VERTEX_DTYPE)
    if n == 0:
        return EclResult(
            labels=labels, num_sccs=0, outer_iterations=0, propagation_rounds=0,
            kernel_launches=0, edges_final=0, device=device,
            trace=tr.trace if tr.enabled else None,
            estimate=device.estimate(0, 0, signatures=4),
        )
    src, dst = (a.copy() for a in graph.edges())
    quad = _Quad.identity(n)
    active = np.ones(n, dtype=bool)
    outer = 0
    total_rounds = 0
    completed_per_iteration: "list[int]" = []
    # interim labels carry completed-by-min components as negative codes so
    # they cannot collide with completed-by-max labels (vertex IDs >= 0)
    while active.any():
        outer += 1
        if outer > n + 2:
            raise ConvergenceError("minmax ECL-SCC failed to converge")
        with tr.span("outer-iteration", index=outer) as outer_span:
            with tr.span("phase1-init"):
                quad.reinit()
                charge_vertex_scan(
                    device, be, num_vertices=n,
                    worklist_size=int(np.count_nonzero(active)),
                    bytes_per_vertex=_QUAD_VERTEX_BYTES,
                )
            rounds = 0
            with tr.span("phase2-propagate", edges=int(src.size)) as p2:
                if src.size:
                    order_s = np.argsort(src, kind="stable")
                    grp_s, starts_s = np.unique(src[order_s], return_index=True)
                    order_d = np.argsort(dst, kind="stable")
                    grp_d, starts_d = np.unique(dst[order_d], return_index=True)
                    while True:
                        rounds += 1
                        if rounds > n + 2:
                            raise ConvergenceError(
                                "minmax Phase 2 failed to converge"
                            )
                        tr.counter("relaxation-round", engine="minmax")
                        changed = _relax(
                            quad, src, dst,
                            order_s, starts_s, grp_s, order_d, starts_d, grp_d,
                        )
                        charge_relaxation_round(
                            device, edges=int(src.size),
                            bytes_per_edge=QUAD_SIGNATURE_EDGE_BYTES,
                            streamed=False,
                        )
                        if not changed:
                            break
                    total_rounds += rounds
                p2.set(rounds=rounds)
            done_max = quad.max_in == quad.max_out
            done_min = quad.min_in == quad.min_out
            done = done_max | done_min
            newly = done & active
            # prefer the max label; fall back to the (negated) min label
            lab = np.where(done_max, quad.max_in, -quad.min_in - 1)
            labels[newly] = lab[newly]
            completed_per_iteration.append(int(np.count_nonzero(newly)))
            scanned = int(np.count_nonzero(active))
            active &= ~done
            charge_vertex_scan(
                device, be, num_vertices=n, worklist_size=scanned,
                bytes_per_vertex=_QUAD_VERTEX_BYTES,
            )
            outer_span.set(completed=int(np.count_nonzero(newly)))
            with tr.span("phase3-filter"):
                if src.size:
                    keep = (
                        scc_edge_filter_mask(
                            quad.max_in, quad.max_out, src, dst,
                            drop_completed=False,
                        )
                        & scc_edge_filter_mask(
                            quad.min_in, quad.min_out, src, dst,
                            drop_completed=False,
                        )
                        & ~done[src]
                    )
                    kept = int(np.count_nonzero(keep))
                    charge_edge_filter(
                        device, edges=int(src.size), kept=kept,
                        bytes_per_edge=QUAD_SIGNATURE_EDGE_BYTES,
                        streamed=False,
                    )
                    tr.counter("edges-kept", kept)
                    tr.counter("edges-removed", int(src.size - kept))
                    src, dst = src[keep], dst[keep]

    # normalize: negative (min-identified) codes -> max member ID
    labels = normalize_labels_to_max(labels)
    return EclResult(
        labels=labels,
        num_sccs=int(np.unique(labels).size),
        outer_iterations=outer,
        propagation_rounds=total_rounds,
        kernel_launches=device.counters.kernel_launches,
        edges_final=int(src.size),
        completed_per_iteration=completed_per_iteration,
        device=device,
        trace=tr.trace if tr.enabled else None,
        estimate=device.estimate(n, graph.num_edges, signatures=4),
    )
