"""Phase 3 of ECL-SCC: edge removal via double-buffered worklists.

The implementation never rebuilds a CSR graph (paper §3.3): the graph
lives as an edge worklist, and Phase 3 compacts the surviving edges into
the *other* buffer, after which the buffers swap roles.  In CUDA the
compaction slot is claimed with one atomic add per surviving edge; the
device accounting below records exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device.executor import VirtualDevice
from ..engine.accounting import charge_edge_filter
from ..errors import AlgorithmError
from ..engine.primitives import scc_edge_filter_mask
from ..trace import NULL_TRACER, Tracer
from .options import EclOptions
from .signatures import Signatures

__all__ = ["DoubleBufferWorklist", "VertexFrontier", "phase3_filter"]


@dataclass
class DoubleBufferWorklist:
    """Front/back edge-buffer pair; ``swap`` exchanges them in O(1).

    ``generation`` counts compaction passes actually executed — it bumps
    exactly once per :meth:`replace` and never for a skipped pass (an
    already-empty worklist has nothing to compact).
    """

    src: np.ndarray
    dst: np.ndarray
    generation: int = 0

    @property
    def num_edges(self) -> int:
        return self.src.size

    def replace(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Install the freshly-compacted back buffer (the pointer swap).

        The back buffer keeps the front buffer's integer dtypes: a naive
        ``np.array([])`` is float64, and letting that through on the
        zero-survivor path would poison every later index operation.
        """
        src = np.asarray(src)
        dst = np.asarray(dst)
        if src.dtype != self.src.dtype:
            src = src.astype(self.src.dtype, copy=False)
        if dst.dtype != self.dst.dtype:
            dst = dst.astype(self.dst.dtype, copy=False)
        self.src = src
        self.dst = dst
        self.generation += 1


@dataclass
class VertexFrontier:
    """Double-buffered *vertex* worklist for the frontier Phase-2 engine.

    The front buffer holds the unique, sorted ids of vertices whose
    signatures changed last round; :meth:`advance` compacts the changed
    flags into the back buffer and swaps, mirroring
    :class:`DoubleBufferWorklist`'s pointer-swap discipline over vertices
    instead of edges.
    """

    vertices: np.ndarray
    generation: int = 0

    @classmethod
    def seeded(cls, seed: np.ndarray, num_vertices: int) -> "VertexFrontier":
        """Initial frontier from the invalidated-vertex seed set."""
        seed = np.asarray(seed, dtype=np.int64)
        if seed.size and (seed.min() < 0 or seed.max() >= num_vertices):
            raise AlgorithmError("frontier seed contains out-of-range vertex ids")
        return cls(vertices=np.unique(seed))

    @property
    def size(self) -> int:
        return self.vertices.size

    def advance(self, changed: np.ndarray) -> None:
        """Compact the changed-vertex flags into the back buffer and swap."""
        self.vertices = np.flatnonzero(changed).astype(np.int64, copy=False)
        self.generation += 1


def phase3_filter(
    wl: DoubleBufferWorklist,
    sigs: Signatures,
    dev: VirtualDevice,
    opts: EclOptions,
    *,
    tracer: Tracer = NULL_TRACER,
    invalidate: "np.ndarray | None" = None,
) -> "tuple[int, int]":
    """Remove edges that cannot be intra-SCC (Algorithm 1 lines 15-19).

    An edge (u -> v) survives iff both signature pairs match:
    ``u_in == v_in and u_out == v_out``.  Mismatched signatures prove the
    endpoints are in different SCCs (paper §3.2.1), so dropping the edge
    is always safe; matched signatures may still be a cluster remnant, so
    the edge is kept for the next iteration.

    With ``opts.remove_scc_edges`` the filter additionally drops edges
    whose endpoints are already *completed* (``in == out``): a kept edge
    between completed vertices lies inside a detected SCC and is dead
    weight (the paper's second optimization).

    ``invalidate``, when given, is an ``num_vertices``-sized boolean
    mask the filter ORs the removed edges' endpoints into — the frontier
    engine's cross-iteration invalidation set (a dropped edge is the
    only event that can change a surviving vertex's next fixed point).

    Returns ``(kept, removed)``.  An already-empty worklist is a no-op:
    no kernel is charged and ``generation`` does not bump.
    """
    src, dst = wl.src, wl.dst
    if src.size == 0:
        return 0, 0
    keep = scc_edge_filter_mask(
        sigs.sig_in, sigs.sig_out, src, dst,
        drop_completed=opts.remove_scc_edges,
    )
    kept = int(np.count_nonzero(keep))
    removed = src.size - kept
    # one pass over the worklist; an atomic slot request per kept edge
    charge_edge_filter(dev, edges=src.size, kept=kept)
    tracer.counter("edges-kept", kept)
    tracer.counter("edges-removed", removed)
    if invalidate is not None and removed:
        dropped = ~keep
        invalidate[src[dropped]] = True
        invalidate[dst[dropped]] = True
    wl.replace(src[keep], dst[keep])
    return kept, removed
