"""Phase 3 of ECL-SCC: edge removal via double-buffered worklists.

The implementation never rebuilds a CSR graph (paper §3.3): the graph
lives as an edge worklist, and Phase 3 compacts the surviving edges into
the *other* buffer, after which the buffers swap roles.  In CUDA the
compaction slot is claimed with one atomic add per surviving edge; the
device accounting below records exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device.executor import VirtualDevice
from ..engine.accounting import charge_edge_filter
from ..engine.primitives import scc_edge_filter_mask
from ..trace import NULL_TRACER, Tracer
from .options import EclOptions
from .signatures import Signatures

__all__ = ["DoubleBufferWorklist", "phase3_filter"]


@dataclass
class DoubleBufferWorklist:
    """Front/back edge-buffer pair; ``swap`` exchanges them in O(1)."""

    src: np.ndarray
    dst: np.ndarray
    generation: int = 0

    @property
    def num_edges(self) -> int:
        return self.src.size

    def replace(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Install the freshly-compacted back buffer (the pointer swap)."""
        self.src = src
        self.dst = dst
        self.generation += 1


def phase3_filter(
    wl: DoubleBufferWorklist,
    sigs: Signatures,
    dev: VirtualDevice,
    opts: EclOptions,
    *,
    tracer: Tracer = NULL_TRACER,
) -> "tuple[int, int]":
    """Remove edges that cannot be intra-SCC (Algorithm 1 lines 15-19).

    An edge (u -> v) survives iff both signature pairs match:
    ``u_in == v_in and u_out == v_out``.  Mismatched signatures prove the
    endpoints are in different SCCs (paper §3.2.1), so dropping the edge
    is always safe; matched signatures may still be a cluster remnant, so
    the edge is kept for the next iteration.

    With ``opts.remove_scc_edges`` the filter additionally drops edges
    whose endpoints are already *completed* (``in == out``): a kept edge
    between completed vertices lies inside a detected SCC and is dead
    weight (the paper's second optimization).

    Returns ``(kept, removed)``.
    """
    src, dst = wl.src, wl.dst
    keep = scc_edge_filter_mask(
        sigs.sig_in, sigs.sig_out, src, dst,
        drop_completed=opts.remove_scc_edges,
    )
    kept = int(np.count_nonzero(keep))
    removed = src.size - kept
    # one pass over the worklist; an atomic slot request per kept edge
    charge_edge_filter(dev, edges=src.size, kept=kept)
    tracer.counter("edges-kept", kept)
    tracer.counter("edges-removed", removed)
    wl.replace(src[keep], dst[keep])
    return kept, removed
