"""The paper's contribution: the ECL-SCC algorithm.

Typical use::

    from repro.core import ecl_scc
    result = ecl_scc(graph)
    result.labels        # per-vertex SCC labels (max member ID)
"""

from .options import (
    ALL_OFF,
    ALL_ON,
    ENGINE_NAMES,
    EclOptions,
    ablation_variants,
    engine_options,
)
from .signatures import Signatures
from .propagation import (
    BlockPartition,
    EdgeGrouping,
    propagate_async,
    propagate_frontier,
    propagate_sync,
)
from .worklist import DoubleBufferWorklist, VertexFrontier, phase3_filter
from .eclscc import EclResult, ecl_scc
from .reference import ecl_scc_reference
from .minmax import minmax_scc

__all__ = [
    "ALL_OFF",
    "ALL_ON",
    "EclOptions",
    "ablation_variants",
    "engine_options",
    "ENGINE_NAMES",
    "Signatures",
    "BlockPartition",
    "EdgeGrouping",
    "propagate_async",
    "propagate_frontier",
    "propagate_sync",
    "DoubleBufferWorklist",
    "VertexFrontier",
    "phase3_filter",
    "EclResult",
    "ecl_scc",
    "ecl_scc_reference",
    "minmax_scc",
]
