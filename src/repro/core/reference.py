"""Direct, unoptimized transcription of Algorithm 1.

This is the executable specification: no worklist tricks, no path
compression, no async blocks — just the paper's pseudocode over an edge
array, kept deliberately close to the listing (including re-deriving the
edge set with boolean masks instead of compaction).  The optimized driver
in :mod:`repro.core.eclscc` is tested for exact label agreement with this
reference, which in turn is tested against Tarjan.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError
from ..graph.csr import CSRGraph
from ..types import VERTEX_DTYPE

__all__ = ["ecl_scc_reference"]


def ecl_scc_reference(graph: CSRGraph) -> np.ndarray:
    """Algorithm 1, literally.  Returns per-vertex max-ID SCC labels."""
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    src0, dst0 = graph.edges()
    alive = np.ones(src0.size, dtype=bool)  # E in Alg. 1 (line 17 removes)
    converged = False
    outer = 0
    sig_in = np.arange(n, dtype=VERTEX_DTYPE)
    sig_out = np.arange(n, dtype=VERTEX_DTYPE)
    while not converged:
        outer += 1
        if outer > n + 2:
            raise ConvergenceError("reference ECL-SCC failed to converge")
        # Phase 1: initialize vertex signatures (lines 3-6)
        sig_in[:] = np.arange(n, dtype=VERTEX_DTYPE)
        sig_out[:] = np.arange(n, dtype=VERTEX_DTYPE)
        src, dst = src0[alive], dst0[alive]
        # Phase 2: propagate max values (lines 7-14)
        updated = True
        rounds = 0
        while updated:
            rounds += 1
            if rounds > n + 2:
                raise ConvergenceError("reference Phase 2 failed to converge")
            updated = False
            # u_out <- max(u_out, v_out) for all edges (u -> v)
            new_out = sig_out.copy()
            np.maximum.at(new_out, src, sig_out[dst])
            # v_in <- max(u_in, v_in)
            new_in = sig_in.copy()
            np.maximum.at(new_in, dst, sig_in[src])
            if not np.array_equal(new_out, sig_out):
                sig_out = new_out
                updated = True
            if not np.array_equal(new_in, sig_in):
                sig_in = new_in
                updated = True
        # Phase 3: remove edges that span SCCs (lines 15-19)
        mismatch = (sig_in[src0] != sig_in[dst0]) | (sig_out[src0] != sig_out[dst0])
        alive &= ~mismatch
        # line 20
        converged = bool(np.all(sig_in == sig_out))
    return sig_in.copy()
