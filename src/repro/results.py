"""The unified algorithm-result API: :class:`AlgoResult`.

Historically the ``*_scc`` entry points disagreed on their return type:
``tarjan_scc`` returned a bare label array, ``gpu_scc`` and friends
returned ad-hoc ``(labels, device)`` tuples, and ``ecl_scc`` returned
the rich :class:`~repro.core.eclscc.EclResult`.  Every entry point now
returns an :class:`AlgoResult` (or a subclass) carrying::

    result.labels     # per-vertex SCC labels (max member ID)
    result.num_sccs   # number of distinct components
    result.device     # VirtualDevice with counters (None for oracles)
    result.trace      # repro.trace.Trace when a tracer was passed

Backward compatibility ("deprecation shims"): an :class:`AlgoResult`
still *behaves* like both legacy contracts —

* tuple style: ``labels, dev = gpu_scc(g)`` and ``gpu_scc(g)[0]`` keep
  working (``DeprecationWarning``);
* bare-array style: ``np.asarray(result)`` yields the labels, unknown
  attributes (``result.tolist()``, ``result.size``) delegate to the
  label array, ``result == x`` compares labels elementwise, and array
  indexing (``result[mask]``) indexes the labels — so
  ``np.array_equal(tarjan_scc(g), ...)`` and every label-consuming
  helper keep working (``DeprecationWarning`` on attribute delegation).

New code should use the named fields.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

__all__ = ["AlgoResult", "Status", "count_sccs", "coerce_labels"]


class Status(str, enum.Enum):
    """Outcome classification of one algorithm run.

    Promoted from the ad-hoc strings of PR 3 so callers (notably
    :mod:`repro.serve`) can switch on terminal states safely.  The
    ``str`` mixin is the string-compat shim: every member *is* its
    legacy string (``Status.CLEAN == "clean"``, f-strings and
    ``json.dumps`` render the bare value), so existing comparisons and
    serializations are unchanged.

    Members
    -------
    CLEAN:
        no faults observed.
    RECOVERED:
        faults were injected and absorbed; labels verified.
    DEGRADED:
        permanent capacity loss absorbed by failover; labels correct,
        cost profile changed.
    """

    CLEAN = "clean"
    RECOVERED = "recovered"
    DEGRADED = "degraded"

    def __str__(self) -> str:  # stable across Python 3.10/3.11+
        return self.value

    __format__ = str.__format__


def count_sccs(labels: np.ndarray) -> int:
    """Number of distinct SCC labels (0 for an empty labelling)."""
    labels = np.asarray(labels)
    return int(np.unique(labels).size) if labels.size else 0


def coerce_labels(labels_or_result: Any) -> np.ndarray:
    """Accept an :class:`AlgoResult` or a bare array; return the array."""
    if isinstance(labels_or_result, AlgoResult):
        return np.asarray(labels_or_result.labels)
    return np.asarray(labels_or_result)


def _deprecated(how: str) -> None:
    warnings.warn(
        f"accessing an AlgoResult {how} is deprecated; use the named"
        " fields (.labels, .num_sccs, .device, .trace) instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(eq=False)
class AlgoResult:
    """Outcome of one SCC-algorithm run — the unified return contract.

    Attributes
    ----------
    labels:
        per-vertex SCC label = max vertex ID in the component.
    num_sccs:
        number of distinct components.
    device:
        the :class:`~repro.device.executor.VirtualDevice` the run was
        instrumented against, with its counters (None for serial
        oracles run without a device).
    trace:
        the :class:`~repro.trace.Trace` recorded by the ``tracer=``
        argument, or None when tracing was off.
    status:
        a :class:`Status` member — :attr:`Status.CLEAN` (no faults
        observed), :attr:`Status.RECOVERED` (faults were injected and
        absorbed; labels verified), or :attr:`Status.DEGRADED`
        (permanent loss absorbed by failover).  Always CLEAN when no
        :class:`~repro.faults.FaultPlan` was active.  Known legacy
        strings passed by constructors are coerced to the enum;
        ``result.status == "clean"`` keeps working via the ``str``
        mixin.
    fault_report:
        the run's :class:`~repro.faults.FaultReport` (every injected
        fault and recovery action), or None without a fault plan.
    """

    labels: np.ndarray
    num_sccs: int
    device: Optional[Any] = None
    trace: Optional[Any] = None
    status: "Status | str" = Status.CLEAN
    fault_report: Optional[Any] = None

    def __post_init__(self):
        # string-compat shim: constructors may still pass the legacy
        # strings; known values become Status members, unknown strings
        # pass through untouched (callers can extend the vocabulary)
        if not isinstance(self.status, Status):
            try:
                self.status = Status(self.status)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # legacy (labels, device) tuple contract
    # ------------------------------------------------------------------
    def __iter__(self):
        _deprecated("as a (labels, device) tuple")
        return iter((self.labels, self.device))

    def __getitem__(self, key):
        # The tuple contract only ever existed for device-returning
        # algorithms; oracle results (device=None) were bare arrays, so
        # integer keys on them must index the labels (``truth[v]``).
        if (
            self.device is not None
            and isinstance(key, (int, np.integer))
            and key in (0, 1)
        ):
            _deprecated("by tuple position")
            return self.labels if key == 0 else self.device
        # everything else is legacy bare-array indexing (masks, slices,
        # fancy indices, negative positions)
        return self.labels[key]

    # ------------------------------------------------------------------
    # legacy bare-array contract
    # ------------------------------------------------------------------
    def __array__(self, dtype=None, copy=None):
        arr = np.asarray(self.labels)
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        if copy:
            arr = arr.copy()
        return arr

    def __getattr__(self, name: str):
        # only called for attributes missing on the instance/class;
        # delegate to the label array so `.tolist()`, `.size`, `.max()`
        # etc. keep working for legacy bare-array call sites
        if name.startswith("_") or name == "labels":
            raise AttributeError(name)
        labels = self.__dict__.get("labels")
        if labels is None:
            raise AttributeError(name)
        try:
            value = getattr(labels, name)
        except AttributeError:
            raise AttributeError(
                f"{type(self).__name__!s} has no attribute {name!r}"
            ) from None
        _deprecated(f"as a bare label array (.{name})")
        return value

    def __eq__(self, other):
        if isinstance(other, AlgoResult):
            return self is other or (
                np.array_equal(self.labels, other.labels)
                and self.num_sccs == other.num_sccs
            )
        return np.asarray(self.labels) == other

    def __ne__(self, other):
        result = self.__eq__(other)
        if isinstance(result, np.ndarray):
            return ~result
        return not result

    __hash__ = object.__hash__
