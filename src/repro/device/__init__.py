"""Virtual hardware: device specs, operation counters, cost model.

See DESIGN.md §"Substitutions" — this package stands in for the CUDA /
OpenMP hardware of the original evaluation.
"""

from .spec import (
    A100,
    ALL_DEVICES,
    RYZEN_2950X,
    TITAN_V,
    XEON_6226R,
    DeviceSpec,
    device_by_name,
)
from .counters import KernelCounters
from .costmodel import (
    TERM_NAMES,
    CostBreakdown,
    CostModel,
    cost_terms,
    effective_bandwidth,
    estimate_runtime,
    working_set_of_graph,
)
from .executor import THREADS_PER_BLOCK, VirtualDevice

__all__ = [
    "A100",
    "ALL_DEVICES",
    "RYZEN_2950X",
    "TITAN_V",
    "XEON_6226R",
    "DeviceSpec",
    "device_by_name",
    "KernelCounters",
    "CostBreakdown",
    "CostModel",
    "cost_terms",
    "effective_bandwidth",
    "TERM_NAMES",
    "estimate_runtime",
    "working_set_of_graph",
    "THREADS_PER_BLOCK",
    "VirtualDevice",
]
