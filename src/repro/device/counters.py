"""Operation counters filled in by the instrumented algorithms.

Every SCC code in this library reports what its kernels *would do* on the
target device: how many kernels are launched, how many edge/vertex work
items each processes, how many bytes of global memory it touches, how
many atomic operations it issues, and how much inherently serial work it
performs.  The counters are the interface between algorithm and cost
model — the algorithms never see device parameters, the cost model never
sees graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KernelCounters"]


@dataclass
class KernelCounters:
    """Accumulated device-operation counts for one algorithm run.

    Attributes
    ----------
    kernel_launches:
        number of device kernel launches (GPU) or parallel regions (CPU).
    global_barriers:
        device-wide synchronization points (>= kernel_launches on GPUs,
        where every launch implies a barrier; tracked separately because
        the async Phase-2 optimization removes barriers *within* a launch).
    edge_work:
        total edge relaxations/inspections across all kernels.
    vertex_work:
        total vertex-sized work items across all kernels.
    bytes_moved:
        irregular (gather/scatter) global-memory traffic in bytes.
    bytes_streamed:
        sequential streaming traffic in bytes (contiguous worklist reads);
        costed at near-peak bandwidth instead of the irregular fraction.
    atomics:
        atomic read-modify-write operations issued.
    serial_work:
        operations on the critical path that cannot be parallelized
        (e.g. the sequential portion of a spanning-tree hook, host-side
        bookkeeping between kernels).
    rounds:
        algorithm-level iteration count (outer iterations x propagation
        rounds); reported for analysis, not costed directly.
    notes:
        free-form per-phase annotations for debugging/reporting.
    """

    kernel_launches: int = 0
    global_barriers: int = 0
    edge_work: int = 0
    vertex_work: int = 0
    bytes_moved: int = 0
    atomics: int = 0
    serial_work: int = 0
    rounds: int = 0
    blocks_scheduled: int = 0
    bytes_streamed: int = 0
    notes: "dict[str, float]" = field(default_factory=dict)

    # ------------------------------------------------------------------
    def launch(
        self,
        *,
        edges: int = 0,
        vertices: int = 0,
        bytes_per_edge: int = 24,
        bytes_per_vertex: int = 16,
        atomics: int = 0,
        barriers: int = 1,
        blocks: "int | None" = None,
        streamed_bytes: int = 0,
    ) -> None:
        """Record one kernel launch and the work it performs.

        ``bytes_per_edge`` defaults to 24: reading a (src, dst) pair plus
        one signature load or store of 8 bytes — a deliberately coarse
        but uniform convention used by *all* algorithms.

        ``blocks`` is the grid size; when omitted it defaults to one
        512-thread block per 512 work items (the non-persistent launch
        configuration).  Persistent-thread kernels pass their resident
        grid size explicitly.
        """
        self.kernel_launches += 1
        self.global_barriers += barriers
        self.edge_work += edges
        self.vertex_work += vertices
        self.bytes_moved += edges * bytes_per_edge + vertices * bytes_per_vertex
        self.bytes_streamed += streamed_bytes
        self.atomics += atomics
        if blocks is None:
            blocks = max(1, -(-(edges + vertices) // 512))
        self.blocks_scheduled += blocks

    def work(
        self,
        *,
        edges: int = 0,
        vertices: int = 0,
        bytes_per_edge: int = 24,
        bytes_per_vertex: int = 16,
        atomics: int = 0,
        streamed_bytes: int = 0,
    ) -> None:
        """Record work performed *inside* an already-launched kernel.

        Persistent worklist kernels iterate in-kernel instead of
        relaunching, so their per-round traffic must be charged without
        incrementing ``kernel_launches``/``global_barriers`` (a grid-wide
        software barrier inside a persistent kernel costs memory traffic,
        not a launch).  Same byte conventions as :meth:`launch`.
        """
        self.edge_work += edges
        self.vertex_work += vertices
        self.bytes_moved += edges * bytes_per_edge + vertices * bytes_per_vertex
        self.bytes_streamed += streamed_bytes
        self.atomics += atomics

    def serial(self, ops: int) -> None:
        """Record *ops* operations of inherently serial (critical-path) work."""
        self.serial_work += ops

    def round(self, count: int = 1) -> None:
        self.rounds += count

    def note(self, key: str, value: float) -> None:
        self.notes[key] = self.notes.get(key, 0.0) + value

    # ------------------------------------------------------------------
    def merge(self, other: "KernelCounters") -> None:
        """Accumulate *other* into self (for multi-stage algorithms)."""
        self.kernel_launches += other.kernel_launches
        self.global_barriers += other.global_barriers
        self.edge_work += other.edge_work
        self.vertex_work += other.vertex_work
        self.bytes_moved += other.bytes_moved
        self.atomics += other.atomics
        self.serial_work += other.serial_work
        self.rounds += other.rounds
        self.blocks_scheduled += other.blocks_scheduled
        self.bytes_streamed += other.bytes_streamed
        for k, v in other.notes.items():
            self.note(k, v)

    def snapshot(self) -> "dict[str, int]":
        return {
            "kernel_launches": self.kernel_launches,
            "global_barriers": self.global_barriers,
            "edge_work": self.edge_work,
            "vertex_work": self.vertex_work,
            "bytes_moved": self.bytes_moved,
            "atomics": self.atomics,
            "serial_work": self.serial_work,
            "rounds": self.rounds,
            "blocks_scheduled": self.blocks_scheduled,
            "bytes_streamed": self.bytes_streamed,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.snapshot()
        inner = " ".join(f"{k}={v}" for k, v in s.items() if v)
        return f"<KernelCounters {inner}>"
