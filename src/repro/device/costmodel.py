"""Analytic cost model: operation counts x device spec -> estimated seconds.

The model is deliberately simple and *global* — the same four terms with
the same constants are applied to every algorithm on every input, so it
cannot be tuned to favour one code:

GPU::

    t = launches * t_launch + blocks * t_dispatch
      + bytes / (BW * eff(working_set))
      + atomics * t_atomic / channels
      + serial_work / clock

CPU::

    t = barriers * t_barrier
      + max(parallel_ops / (lanes * clock * ipc), bytes / BW)
      + serial_work / (clock * ipc)

``eff`` models that irregular gather/scatter traffic achieves a fraction
of peak DRAM bandwidth, rising when the working set fits in the last-level
cache (the paper's §5.1.4 notes most small meshes fit in cache, which is
why they also test expanded meshes).

The constants (IRREGULAR_EFF, CACHE_BOOST, OPS_PER_EDGE, ...) are fixed
here once; they were chosen from first principles (cache-line utilisation
of 8-byte random accesses out of 64-byte lines ~= 0.125-0.35; ~10 arithmetic
ops per edge relaxation) and sanity-checked against the paper's absolute
runtimes, not fitted per input.
"""

from __future__ import annotations

from dataclasses import dataclass

from .counters import KernelCounters
from .spec import DeviceSpec

__all__ = [
    "CostModel",
    "CostBreakdown",
    "estimate_runtime",
    "cost_terms",
    "effective_bandwidth",
    "TERM_NAMES",
]

#: fraction of peak DRAM bandwidth achieved by irregular graph traffic.
IRREGULAR_EFF = 0.30
#: bandwidth multiplier when the working set fits in the last-level cache.
CACHE_BOOST = 3.0
#: arithmetic operations charged per edge work item on CPUs.
OPS_PER_EDGE = 10.0
#: arithmetic operations charged per vertex work item on CPUs.
OPS_PER_VERTEX = 4.0
#: effective cost of one atomic RMW, nanoseconds, before dividing by
#: the number of memory channels (approximated by SM/core count).
ATOMIC_NS = 20.0
#: GPU block-dispatch cost, nanoseconds per thread block scheduled (the
#: gigathread engine's issue rate); why persistent-thread grids help
#: kernels that relaunch over very large worklists.
BLOCK_DISPATCH_NS = 25.0
#: fraction of peak bandwidth achieved by sequential streaming traffic.
STREAM_EFF = 0.75


@dataclass(frozen=True)
class CostBreakdown:
    """Per-term cost decomposition (seconds)."""

    launch: float
    memory: float
    compute: float
    atomic: float
    serial: float

    @property
    def total(self) -> float:
        return self.launch + self.memory + self.compute + self.atomic + self.serial

    def as_dict(self) -> "dict[str, float]":
        return {
            "launch": self.launch,
            "memory": self.memory,
            "compute": self.compute,
            "atomic": self.atomic,
            "serial": self.serial,
            "total": self.total,
        }


#: names of the linear cost terms returned by :func:`cost_terms`, in
#: report order.  ``irregular``/``streamed`` split the breakdown's
#: ``memory`` column by traffic kind; ``compute`` is nonzero only on
#: CPUs (before the roofline decides the memory-vs-compute winner).
TERM_NAMES = ("launch", "irregular", "streamed", "atomic", "serial", "compute")


def effective_bandwidth(spec: DeviceSpec, working_set_bytes: float) -> float:
    """Irregular-access bandwidth in bytes/second for a given footprint."""
    bw = spec.mem_bw_gbs * 1e9 * IRREGULAR_EFF
    if working_set_bytes and working_set_bytes <= spec.l2_mb * 1e6:
        bw *= CACHE_BOOST
    return bw


def cost_terms(
    counters, spec: DeviceSpec, *, working_set_bytes: float = 0.0
) -> "dict[str, float]":
    """Linear (pre-roofline) cost terms for *counters* on *spec*, seconds.

    The per-term arithmetic lives here once so that whole-run estimates
    (:meth:`CostModel.estimate`) and per-launch attribution
    (``repro.profile``) cannot drift apart: every term is linear in its
    counter, so per-launch terms sum to the run total exactly (modulo
    float rounding).  *counters* is duck-typed — anything exposing the
    :class:`~repro.device.KernelCounters` count attributes works,
    including :class:`~repro.trace.LaunchRecord` deltas.

    The CPU memory-vs-compute roofline is *not* applied here (it is a
    global max over the whole run, not per launch); callers that need
    breakdown semantics apply it on top, as ``estimate`` does.
    """
    s = spec
    clock_hz = s.clock_ghz * 1e9
    serial = counters.serial_work / (clock_hz * s.ipc)
    irregular = counters.bytes_moved / effective_bandwidth(s, working_set_bytes)
    streamed = counters.bytes_streamed / (s.mem_bw_gbs * 1e9 * STREAM_EFF)
    atomic = counters.atomics * ATOMIC_NS * 1e-9 / s.sms
    if s.kind == "gpu":
        launch = (
            counters.kernel_launches * s.launch_us * 1e-6
            + counters.blocks_scheduled * BLOCK_DISPATCH_NS * 1e-9
        )
        # GPU compute is almost always hidden behind memory for graph
        # kernels; charge nothing extra.
        compute = 0.0
    else:
        launch = counters.global_barriers * s.launch_us * 1e-6
        ops = counters.edge_work * OPS_PER_EDGE + counters.vertex_work * OPS_PER_VERTEX
        compute = ops / (s.lanes * clock_hz * s.ipc)
    return {
        "launch": launch,
        "irregular": irregular,
        "streamed": streamed,
        "atomic": atomic,
        "serial": serial,
        "compute": compute,
    }


class CostModel:
    """Maps :class:`KernelCounters` to estimated runtimes on a device."""

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    def effective_bandwidth(self, working_set_bytes: float) -> float:
        """Irregular-access bandwidth in bytes/second for a given footprint."""
        return effective_bandwidth(self.spec, working_set_bytes)

    def estimate(
        self, counters: KernelCounters, *, working_set_bytes: float = 0.0
    ) -> CostBreakdown:
        """Estimated runtime decomposition for one algorithm run.

        ``working_set_bytes`` should be the resident footprint of the run
        (graph arrays + signature arrays); callers get it from
        :func:`working_set_of_graph`.
        """
        t = cost_terms(counters, self.spec, working_set_bytes=working_set_bytes)
        memory = t["irregular"] + t["streamed"]
        if self.spec.kind == "gpu":
            return CostBreakdown(t["launch"], memory, 0.0, t["atomic"], t["serial"])
        # CPU roofline: the larger of compute and memory binds; report in
        # the dominating column, zero in the other.
        compute = t["compute"]
        if compute >= memory:
            memory = 0.0
        else:
            compute = 0.0
        return CostBreakdown(t["launch"], memory, compute, t["atomic"], t["serial"])


def estimate_runtime(
    counters: KernelCounters, spec: DeviceSpec, *, working_set_bytes: float = 0.0
) -> float:
    """Convenience wrapper: total estimated seconds."""
    return CostModel(spec).estimate(counters, working_set_bytes=working_set_bytes).total


def working_set_of_graph(num_vertices: int, num_edges: int, signatures: int = 2) -> float:
    """Resident bytes of a CSR graph + per-vertex signature arrays.

    8-byte IDs: indptr (n+1) + indices (m) + src worklist (m) + dst (m)
    + ``signatures`` per-vertex arrays.
    """
    return 8.0 * ((num_vertices + 1) + 3 * num_edges + signatures * num_vertices)
