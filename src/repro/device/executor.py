"""Virtual device executor.

:class:`VirtualDevice` bundles a :class:`~repro.device.spec.DeviceSpec`
with a fresh :class:`~repro.device.counters.KernelCounters` and exposes
the launch-accounting helpers the instrumented algorithms call.  It also
implements the *launch-configuration* arithmetic from the paper (§3.4):
512 threads per block, persistent-thread grids sized to the device's
resident-thread capacity, and edge-to-block partitioning for the
asynchronous Phase-2 kernel.
"""

from __future__ import annotations

import numpy as np

from ..errors import DeviceError
from .counters import KernelCounters
from .costmodel import CostBreakdown, CostModel, working_set_of_graph
from .spec import DeviceSpec

__all__ = ["VirtualDevice", "THREADS_PER_BLOCK"]

#: ECL-SCC launches all kernels with 512 threads per block (paper §3.4).
THREADS_PER_BLOCK = 512


class VirtualDevice:
    """A device spec plus run counters; one instance per algorithm run.

    With ``profile=True`` every launch's work size is also appended to
    ``launch_history`` — the measured per-step parallelism profile used
    by ``benchmarks/test_ext_parallelism.py``.

    ``ledger`` is normally ``None`` (the zero-overhead path: one ``is
    None`` check per charge).  :func:`repro.profile.attach_ledger` sets
    it to a :class:`~repro.profile.LaunchLedger` when a recording tracer
    is active, after which every ``launch``/``work``/``serial`` charge
    is also recorded as a per-phase
    :class:`~repro.trace.LaunchRecord` delta.
    """

    def __init__(self, spec: DeviceSpec, *, profile: bool = False) -> None:
        self.spec = spec
        self.counters = KernelCounters()
        self.profile = profile
        self.launch_history: "list[tuple[int, int]]" = []
        self.ledger = None
        self._working_set_bytes = 0.0

    # ------------------------------------------------------------------
    # launch configuration
    # ------------------------------------------------------------------
    def grid_blocks(self, *, persistent: bool) -> int:
        """Number of thread blocks launched.

        Persistent-thread mode launches only as many blocks as the device
        can keep resident (threads_resident / 512); otherwise one thread
        per work item would be launched (callers then compute blocks from
        work size themselves).
        """
        if not persistent:
            raise DeviceError(
                "grid_blocks(persistent=False) is work-size dependent;"
                " use blocks_for(work_items)"
            )
        return max(1, self.spec.threads_resident // THREADS_PER_BLOCK)

    def blocks_for(self, work_items: int) -> int:
        """Blocks needed at one thread per work item."""
        return max(1, -(-int(work_items) // THREADS_PER_BLOCK))

    def partition_edges(
        self,
        num_edges: int,
        *,
        persistent: bool,
        block_edges: "int | None" = None,
    ) -> np.ndarray:
        """Block boundaries for distributing ``num_edges`` across blocks.

        Returns an ``indptr``-style array of length ``blocks+1``.  In
        persistent mode each resident block receives a contiguous chunk
        (multiple edges per thread); otherwise each block gets exactly
        ``block_edges`` edges (default: one edge per thread, i.e. 512).
        Used by the asynchronous Phase-2 simulation, where a block
        iterates its own chunk to a local fixed point.
        """
        if num_edges <= 0:
            return np.zeros(1, dtype=np.int64)
        if persistent:
            blocks = min(self.grid_blocks(persistent=True), self.blocks_for(num_edges))
        elif block_edges is not None:
            blocks = max(1, -(-num_edges // block_edges))
        else:
            blocks = self.blocks_for(num_edges)
        bounds = np.linspace(0, num_edges, blocks + 1).astype(np.int64)
        return bounds

    # ------------------------------------------------------------------
    # accounting passthroughs
    # ------------------------------------------------------------------
    def launch(self, **kwargs) -> None:
        if self.ledger is None:
            self.counters.launch(**kwargs)
        else:
            before = self.counters.snapshot()
            self.counters.launch(**kwargs)
            self.ledger.record("launch", before, self.counters.snapshot())
        if self.profile:
            self.launch_history.append(
                (int(kwargs.get("edges", 0)), int(kwargs.get("vertices", 0)))
            )

    def work(self, **kwargs) -> None:
        """In-kernel work of a persistent kernel (no launch recorded)."""
        if self.ledger is None:
            self.counters.work(**kwargs)
        else:
            before = self.counters.snapshot()
            self.counters.work(**kwargs)
            self.ledger.record("work", before, self.counters.snapshot())

    def serial(self, ops: int) -> None:
        if self.ledger is None:
            self.counters.serial(ops)
        else:
            before = self.counters.snapshot()
            self.counters.serial(ops)
            self.ledger.record("serial", before, self.counters.snapshot())

    def round(self, count: int = 1) -> None:
        if self.ledger is None:
            self.counters.round(count)
        else:
            before = self.counters.snapshot()
            self.counters.round(count)
            self.ledger.record("round", before, self.counters.snapshot())

    def note(self, key: str, value: float) -> None:
        self.counters.note(key, value)

    # ------------------------------------------------------------------
    def estimate(self, num_vertices: int, num_edges: int, signatures: int = 2) -> CostBreakdown:
        """Cost estimate for the accumulated counters on this run's graph."""
        ws = working_set_of_graph(num_vertices, num_edges, signatures)
        self._working_set_bytes = ws
        return CostModel(self.spec).estimate(self.counters, working_set_bytes=ws)

    @property
    def working_set_bytes(self) -> float:
        """Footprint of the most recent :meth:`estimate` call (0 before)."""
        return self._working_set_bytes

    @property
    def seconds(self) -> float:
        """Total modelled seconds for the counters accumulated so far.

        Uses the working set memoized by the last :meth:`estimate` call —
        the same footprint the run's ``model_seconds`` was computed with,
        so per-phase attributions can be checked against it exactly.
        """
        return CostModel(self.spec).estimate(
            self.counters, working_set_bytes=self._working_set_bytes
        ).total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<VirtualDevice {self.spec.name} {self.counters!r}>"
