"""Virtual hardware specifications.

The paper evaluates on two NVIDIA GPUs (Volta Titan V, Ampere A100) and
two CPU hosts (AMD Ryzen Threadripper 2950X, dual Intel Xeon Gold 6226R).
We have none of that hardware; instead every algorithm in this library is
written as a sequence of data-parallel *kernels* whose work it reports to
a :class:`~repro.device.counters.KernelCounters`, and the analytic cost
model (:mod:`repro.device.costmodel`) converts those counts to estimated
runtimes using the published parameters below.

Parameter sources: the paper's §4 hardware description (processing
elements, SM counts, cache sizes, peak bandwidths) plus vendor datasheets
for clocks.  Two calibration constants (memory efficiency for irregular
gathers, kernel-launch latency) are fixed once, globally — never tuned
per input — so relative results remain honest.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceError

__all__ = [
    "DeviceSpec",
    "TITAN_V",
    "A100",
    "RYZEN_2950X",
    "XEON_6226R",
    "ALL_DEVICES",
    "device_by_name",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of one execution platform.

    Attributes
    ----------
    name:
        human-readable label used in benchmark tables.
    kind:
        ``"gpu"`` or ``"cpu"`` — selects which cost terms dominate
        (GPUs pay per-launch latency; CPUs pay per-barrier sync and have
        far fewer lanes).
    lanes:
        hardware parallelism: CUDA cores for GPUs, hardware threads for
        CPUs.
    sms:
        streaming multiprocessors (GPU) or cores (CPU); bounds the number
        of concurrently resident thread blocks.
    clock_ghz:
        sustained clock.
    mem_bw_gbs:
        peak global-memory bandwidth (GB/s).
    launch_us:
        latency of one kernel launch (GPU) or one parallel-region
        fork/join barrier (CPU), microseconds.
    l2_mb:
        last-level cache size in MB (reported for context; the cost model
        uses it to pick a cached-bandwidth multiplier for small inputs).
    ipc:
        sustained scalar instructions/cycle per lane for compute-bound
        phases.
    """

    name: str
    kind: str
    lanes: int
    sms: int
    clock_ghz: float
    mem_bw_gbs: float
    launch_us: float
    l2_mb: float
    ipc: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("gpu", "cpu"):
            raise DeviceError(f"kind must be 'gpu' or 'cpu', got {self.kind!r}")
        if self.lanes <= 0 or self.sms <= 0:
            raise DeviceError("lanes and sms must be positive")
        if min(self.clock_ghz, self.mem_bw_gbs, self.launch_us) <= 0:
            raise DeviceError("clock, bandwidth and launch latency must be positive")

    @property
    def threads_resident(self) -> int:
        """Threads the device can schedule concurrently.

        GPUs: 2048 threads per SM (Volta/Ampere max residency).  CPUs: one
        per hardware thread.  This is what the persistent-thread launch
        configuration targets (paper §3.4).
        """
        if self.kind == "gpu":
            return self.sms * 2048
        return self.lanes


#: NVIDIA Titan V (Volta): 5120 cores / 80 SMs, 4.5 MB L2, 652 GB/s (§4).
TITAN_V = DeviceSpec(
    name="Titan V",
    kind="gpu",
    lanes=5120,
    sms=80,
    clock_ghz=1.455,
    mem_bw_gbs=652.0,
    launch_us=5.0,
    l2_mb=4.5,
)

#: NVIDIA A100 (Ampere): 6912 cores / 108 SMs, 40 MB L2, 1555 GB/s (§4).
A100 = DeviceSpec(
    name="A100",
    kind="gpu",
    lanes=6912,
    sms=108,
    clock_ghz=1.41,
    mem_bw_gbs=1555.0,
    launch_us=5.0,
    l2_mb=40.0,
)

#: AMD Ryzen Threadripper 2950X: 16C/32T @ 3.5 GHz, 32 MB L3 (§4).
RYZEN_2950X = DeviceSpec(
    name="Ryzen 2950X",
    kind="cpu",
    lanes=32,
    sms=16,
    clock_ghz=3.5,
    mem_bw_gbs=50.0,
    launch_us=15.0,
    l2_mb=32.0,
    ipc=2.0,
)

#: Dual Intel Xeon Gold 6226R: 32C/64T @ 2.9 GHz, 2 x 44 MB L3 (§4).
XEON_6226R = DeviceSpec(
    name="Xeon 6226R",
    kind="cpu",
    lanes=64,
    sms=32,
    clock_ghz=2.9,
    mem_bw_gbs=120.0,
    launch_us=20.0,
    l2_mb=88.0,
    ipc=2.0,
)

ALL_DEVICES = (TITAN_V, A100, RYZEN_2950X, XEON_6226R)


def device_by_name(name: str) -> DeviceSpec:
    """Look up a built-in device by (case-insensitive) name."""
    for d in ALL_DEVICES:
        if d.name.lower() == name.lower():
            return d
    raise DeviceError(
        f"unknown device {name!r}; known: {[d.name for d in ALL_DEVICES]}"
    )
