"""Shared SCC engine: primitives, array backends, device accounting.

This package is the seam between the algorithms and everything below
them.  The nine baselines and the core ECL-SCC implementations compose
the device-accounted primitives in :mod:`repro.engine.primitives`; the
primitives charge the device through :mod:`repro.engine.accounting`;
and a pluggable :class:`~repro.engine.backend.ArrayBackend` decides how
the modelled kernels sweep vertex state (topology-driven ``"dense"`` vs
worklist-driven ``"frontier"``).  Labels never depend on the backend —
only the accounting does.

Since PR 7 the Phase-2 round step itself is pluggable too: a
:class:`~repro.engine.policy.PropagationPolicy` (dense pull sweep,
frontier push worklist, dense push) performs one relaxation round, and
the :class:`~repro.engine.scheduler.AdaptiveScheduler` picks the policy
per round for the ``adaptive`` engine.  Labels never depend on the
policy sequence either — monotone max-propagation has a
schedule-independent fixed point.
"""

from .accounting import (
    ADJACENCY_EDGE_BYTES,
    DEGREE_EDGE_BYTES,
    PAIR_FLAG_BYTES,
    QUAD_SIGNATURE_EDGE_BYTES,
    SIGNATURE_PAIR_BYTES,
    STATUS_FLAG_BYTES,
    charge_degree_pass,
    charge_dense_round,
    charge_edge_filter,
    charge_frontier_compaction,
    charge_frontier_launch,
    charge_frontier_level,
    charge_frontier_round,
    charge_relaxation_round,
    charge_scheduler_scan,
    charge_serial_scan,
    charge_vertex_scan,
    charge_winning_write,
)
from .backend import (
    DEFAULT_BACKEND,
    ArrayBackend,
    DenseNumpyBackend,
    FrontierBackend,
    backend_names,
    get_backend,
    register_backend,
)
from .policy import (
    DEFAULT_POLICIES,
    DensePullPolicy,
    DensePushPolicy,
    FrontierPushPolicy,
    PropagationPolicy,
    RoundState,
    RoundStats,
    get_policy,
    policy_names,
    register_policy,
)
from .primitives import (
    active_degrees,
    backward_reach,
    build_vertex_incidence,
    incident_edges,
    colored_fb_rounds,
    colored_reach,
    forward_reach,
    frontier_expand,
    masked_bfs,
    normalize_labels_to_max,
    pivot_fb_step,
    scc_edge_filter_mask,
    select_pivot,
    trim1,
    trim2,
    trim3,
)
from .scheduler import (
    DENSITY_THRESHOLD,
    LAUNCH_BOUND_RATIO,
    AdaptiveScheduler,
    PolicyDecision,
)

__all__ = [
    # backends
    "ArrayBackend",
    "DenseNumpyBackend",
    "FrontierBackend",
    "register_backend",
    "get_backend",
    "backend_names",
    "DEFAULT_BACKEND",
    # accounting
    "STATUS_FLAG_BYTES",
    "ADJACENCY_EDGE_BYTES",
    "DEGREE_EDGE_BYTES",
    "PAIR_FLAG_BYTES",
    "SIGNATURE_PAIR_BYTES",
    "QUAD_SIGNATURE_EDGE_BYTES",
    "charge_frontier_level",
    "charge_degree_pass",
    "charge_vertex_scan",
    "charge_winning_write",
    "charge_serial_scan",
    "charge_relaxation_round",
    "charge_edge_filter",
    "charge_frontier_compaction",
    "charge_frontier_launch",
    "charge_frontier_round",
    "charge_dense_round",
    "charge_scheduler_scan",
    # policies + scheduler
    "PropagationPolicy",
    "RoundState",
    "RoundStats",
    "DensePullPolicy",
    "DensePushPolicy",
    "FrontierPushPolicy",
    "register_policy",
    "get_policy",
    "policy_names",
    "DEFAULT_POLICIES",
    "AdaptiveScheduler",
    "PolicyDecision",
    "DENSITY_THRESHOLD",
    "LAUNCH_BOUND_RATIO",
    # primitives
    "frontier_expand",
    "masked_bfs",
    "forward_reach",
    "backward_reach",
    "colored_fb_rounds",
    "colored_reach",
    "active_degrees",
    "trim1",
    "trim2",
    "trim3",
    "select_pivot",
    "pivot_fb_step",
    "scc_edge_filter_mask",
    "normalize_labels_to_max",
    "build_vertex_incidence",
    "incident_edges",
]
