"""Shared SCC engine: primitives, array backends, device accounting.

This package is the seam between the algorithms and everything below
them.  The nine baselines and the core ECL-SCC implementations compose
the device-accounted primitives in :mod:`repro.engine.primitives`; the
primitives charge the device through :mod:`repro.engine.accounting`;
and a pluggable :class:`~repro.engine.backend.ArrayBackend` decides how
the modelled kernels sweep vertex state (topology-driven ``"dense"`` vs
worklist-driven ``"frontier"``).  Labels never depend on the backend —
only the accounting does.
"""

from .accounting import (
    ADJACENCY_EDGE_BYTES,
    DEGREE_EDGE_BYTES,
    PAIR_FLAG_BYTES,
    QUAD_SIGNATURE_EDGE_BYTES,
    SIGNATURE_PAIR_BYTES,
    STATUS_FLAG_BYTES,
    charge_degree_pass,
    charge_edge_filter,
    charge_frontier_compaction,
    charge_frontier_launch,
    charge_frontier_level,
    charge_frontier_round,
    charge_relaxation_round,
    charge_serial_scan,
    charge_vertex_scan,
    charge_winning_write,
)
from .backend import (
    DEFAULT_BACKEND,
    ArrayBackend,
    DenseNumpyBackend,
    FrontierBackend,
    backend_names,
    get_backend,
    register_backend,
)
from .primitives import (
    active_degrees,
    backward_reach,
    build_vertex_incidence,
    incident_edges,
    colored_fb_rounds,
    colored_reach,
    forward_reach,
    frontier_expand,
    masked_bfs,
    normalize_labels_to_max,
    pivot_fb_step,
    scc_edge_filter_mask,
    select_pivot,
    trim1,
    trim2,
    trim3,
)

__all__ = [
    # backends
    "ArrayBackend",
    "DenseNumpyBackend",
    "FrontierBackend",
    "register_backend",
    "get_backend",
    "backend_names",
    "DEFAULT_BACKEND",
    # accounting
    "STATUS_FLAG_BYTES",
    "ADJACENCY_EDGE_BYTES",
    "DEGREE_EDGE_BYTES",
    "PAIR_FLAG_BYTES",
    "SIGNATURE_PAIR_BYTES",
    "QUAD_SIGNATURE_EDGE_BYTES",
    "charge_frontier_level",
    "charge_degree_pass",
    "charge_vertex_scan",
    "charge_winning_write",
    "charge_serial_scan",
    "charge_relaxation_round",
    "charge_edge_filter",
    "charge_frontier_compaction",
    "charge_frontier_launch",
    "charge_frontier_round",
    # primitives
    "frontier_expand",
    "masked_bfs",
    "forward_reach",
    "backward_reach",
    "colored_fb_rounds",
    "colored_reach",
    "active_degrees",
    "trim1",
    "trim2",
    "trim3",
    "select_pivot",
    "pivot_fb_step",
    "scc_edge_filter_mask",
    "normalize_labels_to_max",
    "build_vertex_incidence",
    "incident_edges",
]
