"""Device accounting rules for the engine primitives.

Historically every baseline hand-placed its own ``device.launch(...)``
calls, so byte conventions and sweep widths drifted between algorithms.
This module is now the *only* place that translates a primitive-level
event ("one BFS level", "one degree pass", "one status-flag scan") into
:class:`~repro.device.executor.VirtualDevice` counter updates — every
algorithm's counters are derived from the same rules, and a backend can
change the modelled kernel organization in exactly one place.

Byte conventions (uniform across all algorithms, see
``docs/performance_model.md``):

* ``STATUS_FLAG_BYTES`` (8)   — read+write of one per-vertex status flag;
* ``ADJACENCY_EDGE_BYTES`` (24) — (src, dst) pair plus one 8-byte
  signature/flag gather per edge;
* ``DEGREE_EDGE_BYTES`` (16)  — (src, dst) pair for a counting pass;
* ``PAIR_FLAG_BYTES`` (16)    — two status flags (pair/triple removal).
"""

from __future__ import annotations

from ..device.executor import VirtualDevice
from .backend import ArrayBackend

__all__ = [
    "STATUS_FLAG_BYTES",
    "ADJACENCY_EDGE_BYTES",
    "DEGREE_EDGE_BYTES",
    "PAIR_FLAG_BYTES",
    "SIGNATURE_PAIR_BYTES",
    "QUAD_SIGNATURE_EDGE_BYTES",
    "charge_frontier_level",
    "charge_degree_pass",
    "charge_vertex_scan",
    "charge_winning_write",
    "charge_serial_scan",
    "charge_relaxation_round",
    "charge_edge_filter",
    "charge_frontier_compaction",
    "charge_frontier_launch",
    "charge_frontier_round",
    "charge_dense_round",
    "charge_scheduler_scan",
    "charge_update_insert",
    "charge_update_delete",
    "charge_label_rewrite",
    "charge_condensation_build",
]

#: read+write of one per-vertex status flag.
STATUS_FLAG_BYTES = 8
#: (src, dst) pair plus one 8-byte signature/flag access per edge.
ADJACENCY_EDGE_BYTES = 24
#: (src, dst) pair for a degree-counting pass.
DEGREE_EDGE_BYTES = 16
#: two status flags per vertex (trim-2/trim-3 pair checks, init).
PAIR_FLAG_BYTES = 16
#: one in+out signature pair (ECL-SCC vertex kernels).
SIGNATURE_PAIR_BYTES = 16
#: a 4-signature (min+max) edge relaxation: two pairs read + store.
QUAD_SIGNATURE_EDGE_BYTES = 80


def charge_frontier_level(
    dev: VirtualDevice,
    backend: ArrayBackend,
    *,
    num_vertices: int,
    frontier_size: int,
    expanded_edges: int,
    serial_ops: int = 0,
) -> None:
    """One level of a (multi-source) frontier traversal.

    The kernel reads every status flag the backend sweeps, then expands
    the frontier's adjacency.  ``serial_ops`` charges the per-level
    critical path of CPU codes with tiny frontiers (iSpan's Rsync loop
    control) to the device's serial counter.
    """
    dev.launch(
        edges=int(expanded_edges) + int(frontier_size),
        vertices=backend.sweep_vertices(num_vertices, frontier_size),
        bytes_per_vertex=STATUS_FLAG_BYTES,
        bytes_per_edge=ADJACENCY_EDGE_BYTES,
    )
    if serial_ops:
        dev.serial(serial_ops)


def charge_degree_pass(
    dev: VirtualDevice,
    *,
    edges: int,
    bytes_per_edge: int = DEGREE_EDGE_BYTES,
) -> None:
    """One edge-centric counting/candidate pass (degrees, pair scans)."""
    dev.launch(edges=int(edges), bytes_per_edge=bytes_per_edge)


def charge_vertex_scan(
    dev: VirtualDevice,
    backend: ArrayBackend,
    *,
    num_vertices: int,
    worklist_size: int,
    bytes_per_vertex: int = STATUS_FLAG_BYTES,
) -> None:
    """One vertex-state kernel (flag scan, label assign, split)."""
    dev.launch(
        vertices=backend.sweep_vertices(num_vertices, worklist_size),
        bytes_per_vertex=bytes_per_vertex,
    )


def charge_winning_write(
    dev: VirtualDevice,
    backend: ArrayBackend,
    *,
    num_vertices: int,
    candidates: int,
) -> None:
    """Pivot selection by concurrent winning write (one atomic each)."""
    dev.launch(
        vertices=backend.sweep_vertices(num_vertices, candidates),
        atomics=int(candidates),
    )


def charge_serial_scan(dev: VirtualDevice, ops: int) -> None:
    """A host-side / critical-path scan (CPU pivot selection)."""
    dev.serial(int(ops))


def charge_relaxation_round(
    dev: VirtualDevice,
    *,
    edges: int,
    vertices: int = 0,
    blocks: "int | None" = None,
    atomics: int = 0,
    bytes_per_edge: int = ADJACENCY_EDGE_BYTES,
    streamed: bool = True,
) -> None:
    """One signature-relaxation launch over an edge worklist.

    Worklist ``(src, dst)`` pairs stream contiguously (unless the
    engine re-gathers them, ``streamed=False``); signature
    gathers/stores are irregular.  Used by every Phase-2 engine (sync,
    async, atomic, minmax).
    """
    dev.launch(
        edges=int(edges),
        vertices=int(vertices),
        bytes_per_edge=bytes_per_edge,
        streamed_bytes=PAIR_FLAG_BYTES * int(edges) if streamed else 0,
        blocks=blocks,
        atomics=atomics,
    )
    dev.round()


def charge_frontier_compaction(
    dev: VirtualDevice,
    backend: ArrayBackend,
    *,
    num_vertices: int,
    frontier_size: int,
    reinit: int = 0,
) -> None:
    """Seed-compaction launch of the frontier Phase-2 engine.

    One kernel scans the invalidation flags (backend-swept) and claims a
    vertex-worklist slot per seed vertex with an atomic add.  The
    frontier driver's partial Phase-1 re-init sweeps the *same* flags,
    so it is fused into this kernel: ``reinit`` invalidated vertices
    additionally write their identity signature pair here instead of in
    a separate Phase-1 launch — one launch per iteration saved, which
    matters on launch-dominated mesh graphs.
    """
    dev.launch(
        vertices=backend.sweep_vertices(num_vertices, frontier_size),
        bytes_per_vertex=STATUS_FLAG_BYTES,
        streamed_bytes=SIGNATURE_PAIR_BYTES * int(reinit),
        atomics=int(frontier_size),
    )


def charge_frontier_launch(dev: VirtualDevice, *, blocks: int) -> None:
    """The single persistent vertex-worklist launch of the frontier engine.

    The kernel iterates in-kernel until the worklist drains; the
    per-round work inside it is charged via :func:`charge_frontier_round`
    (traffic without launches).
    """
    dev.launch(blocks=int(blocks))


def charge_frontier_round(
    dev: VirtualDevice,
    *,
    edges: int,
    frontier_size: int,
    vertices: int = 0,
    enqueues: int = 0,
) -> None:
    """One in-kernel round of the persistent frontier worklist.

    ``edges`` active-adjacent edges are gathered through the worklist
    indirection — irregular traffic, so the ``(src, dst)`` pair loses the
    streaming discount the dense engines get — and relaxed by
    scatter-max with plain racy writes: monotone max-propagation
    tolerates lost updates (the paper's §3.4 argument for rejecting the
    two-atomic-max kernel applies unchanged — a lost write is re-derived
    once the winning vertex re-enters the frontier), so the relax itself
    costs no atomics.  The compacted vertex worklist (``frontier_size``
    8-byte entries) streams contiguously.  ``vertices`` compression work
    items (pointer jump + feedback over touched endpoints) update
    signature pairs, and ``enqueues`` changed vertices claim
    next-frontier slots with one atomic add each.
    """
    dev.work(
        edges=int(edges),
        vertices=int(vertices),
        bytes_per_edge=ADJACENCY_EDGE_BYTES + PAIR_FLAG_BYTES,
        bytes_per_vertex=SIGNATURE_PAIR_BYTES,
        streamed_bytes=STATUS_FLAG_BYTES * int(frontier_size),
        atomics=int(enqueues),
    )
    dev.round()


def charge_dense_round(
    dev: VirtualDevice,
    *,
    edges: int,
    vertices: int = 0,
    enqueues: int = 0,
) -> None:
    """One in-kernel *dense* relaxation round of the adaptive engine.

    Same traffic conventions as :func:`charge_relaxation_round` — the
    worklist ``(src, dst)`` pairs stream contiguously, the signature
    gathers/stores are irregular — but charged as in-kernel work of the
    already-launched persistent drain (no launch, no barrier): the
    adaptive engine keeps the frontier engine's one-launch drain
    structure and only swaps the per-round strategy, so a dense round
    inside it must not pay a launch the modelled kernel never makes.
    ``vertices`` compression work items (pointer jump + feedback) update
    signature pairs; ``enqueues`` changed vertices claim next-frontier
    slots with one atomic add each (the dense round still produces the
    frontier the next round may consume).
    """
    dev.work(
        edges=int(edges),
        vertices=int(vertices),
        bytes_per_edge=ADJACENCY_EDGE_BYTES,
        bytes_per_vertex=SIGNATURE_PAIR_BYTES,
        streamed_bytes=PAIR_FLAG_BYTES * int(edges),
        atomics=int(enqueues),
    )
    dev.round()


def charge_scheduler_scan(dev: VirtualDevice, *, frontier_size: int) -> None:
    """The adaptive scheduler's per-round density scan.

    Before picking a policy the scheduler gathers the incidence degree of
    every frontier vertex (one 8-byte ``indptr`` delta each) and reduces
    them — a real device-accounted kernel step, charged as in-kernel work
    of the persistent drain.  Deliberately *not* backend-swept and
    independent of the tracer/ledger, so scheduling decisions (which feed
    back on accumulated charges) stay bit-identical across backends and
    across traced/untraced runs.
    """
    dev.work(vertices=int(frontier_size), bytes_per_vertex=STATUS_FLAG_BYTES)


def charge_update_insert(dev: VirtualDevice, *, batch: int) -> None:
    """One edge-insertion batch of the dynamic engine (repro.dynamic).

    The batch's ``(src, dst)`` pairs append contiguously to the resident
    edge array (streamed; one atomic tail-pointer claim per edge) while
    each endpoint's current SCC label is gathered to classify the edge
    as intra- or inter-component (irregular).
    """
    dev.launch(
        edges=int(batch),
        bytes_per_edge=ADJACENCY_EDGE_BYTES,
        streamed_bytes=DEGREE_EDGE_BYTES * int(batch),
        atomics=int(batch),
    )


def charge_update_delete(
    dev: VirtualDevice, *, probed: int, requested: int
) -> None:
    """One edge-deletion batch of the dynamic engine (repro.dynamic).

    One warp per requested deletion scans its source vertex's adjacency
    list (``probed`` edges inspected in total) and tombstones the
    matching resident instance with one atomic claim; the batch's own
    ``(src, dst)`` keys stream through the cache.  Compaction of the
    tombstoned slots is deferred and amortized — a deletion batch must
    cost the probed adjacency volume, never O(|E|), or incremental
    maintenance could not beat recomputation.
    """
    dev.launch(
        edges=int(probed),
        bytes_per_edge=ADJACENCY_EDGE_BYTES,
        streamed_bytes=DEGREE_EDGE_BYTES * int(requested),
        atomics=int(requested),
    )


def charge_label_rewrite(
    dev: VirtualDevice,
    backend: ArrayBackend,
    *,
    num_vertices: int,
    touched: int,
) -> None:
    """Rewrite the maintained SCC labels of ``touched`` vertices.

    Backend-swept like every vertex-state kernel: the dense backend
    scans all labels, the frontier backend touches only the worklist.
    """
    dev.launch(
        vertices=backend.sweep_vertices(num_vertices, touched),
        bytes_per_vertex=STATUS_FLAG_BYTES,
    )


def charge_condensation_build(dev: VirtualDevice, *, edges: int) -> None:
    """Map every resident edge into condensation (component) space.

    One edge-centric pass: the pair streams, the two per-endpoint label
    gathers are irregular — the dynamic engine rebuilds its cached
    condensation DAG with exactly this kernel.
    """
    dev.launch(edges=int(edges), bytes_per_edge=ADJACENCY_EDGE_BYTES)


def charge_edge_filter(
    dev: VirtualDevice,
    *,
    edges: int,
    kept: int,
    bytes_per_edge: int = ADJACENCY_EDGE_BYTES,
    streamed: bool = True,
) -> None:
    """One worklist-compaction pass (one atomic slot claim per survivor)."""
    dev.launch(
        edges=int(edges),
        bytes_per_edge=bytes_per_edge,
        streamed_bytes=PAIR_FLAG_BYTES * int(edges) if streamed else 0,
        atomics=int(kept),
    )
